// Benchmarks reproducing every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index), the design-choice ablations
// called out in DESIGN.md §5, and microbenchmarks of the hot substrates.
//
// The per-figure benchmarks wrap the same harnesses cmd/experiments runs;
// one benchmark "op" regenerates the whole table/figure at quick scale and
// reports the headline quantity via b.ReportMetric, so `go test -bench=.`
// both exercises and documents the reproduction.
package eefei

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/core"
	"eefei/internal/dataset"
	"eefei/internal/energy"
	"eefei/internal/experiments"
	"eefei/internal/faultnet"
	"eefei/internal/fl"
	"eefei/internal/flnet"
	"eefei/internal/mat"
	"eefei/internal/ml"
	"eefei/internal/optim"
	"eefei/internal/sim"
)

// benchSetup lazily builds the shared quick-scale experiment substrate.
var (
	benchSetupOnce sync.Once
	benchSetupVal  *experiments.Setup
	benchSetupErr  error
)

func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	benchSetupOnce.Do(func() {
		benchSetupVal, benchSetupErr = experiments.NewSetup(experiments.Quick)
	})
	if benchSetupErr != nil {
		b.Fatalf("setup: %v", benchSetupErr)
	}
	return benchSetupVal
}

// --- one benchmark per table / figure ----------------------------------------

func BenchmarkTable1StepDuration(b *testing.B) {
	var lastC0 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(uint64(i + 1))
		if err != nil {
			b.Fatalf("Table1: %v", err)
		}
		lastC0 = res.SimC0
	}
	b.ReportMetric(lastC0*1e5, "c0e5(paper=7.79)")
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if err := experiments.RenderTable2(io.Discard, rows); err != nil {
			b.Fatalf("RenderTable2: %v", err)
		}
	}
}

func BenchmarkFigure3PowerTrace(b *testing.B) {
	setup := benchSetup(b)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(setup, uint64(i+1))
		if err != nil {
			b.Fatalf("Figure3: %v", err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds(paper=2)")
}

func BenchmarkFigure4FixedE(b *testing.B) {
	setup := benchSetup(b)
	var tAtTarget int
	for i := 0; i < b.N; i++ {
		// Reduced sweep: the two extreme K values at the pinned E=40.
		res, err := experiments.Figure5(setup, experiments.SweepConfig{
			Ks: []int{1, 20}, PinnedE: 40,
		})
		if err != nil {
			b.Fatalf("K sweep: %v", err)
		}
		tAtTarget = res.Points[len(res.Points)-1].EmpiricalRounds
	}
	b.ReportMetric(float64(tAtTarget), "T@K=20")
}

func BenchmarkFigure4FixedK(b *testing.B) {
	setup := benchSetup(b)
	var uShape float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(setup, experiments.SweepConfig{
			Es: []int{1, 20, 100}, PinnedK: 10,
		})
		if err != nil {
			b.Fatalf("E sweep: %v", err)
		}
		// E·T at the middle point relative to the ends characterizes the
		// Fig.-4d U-shape (paper: 5600 / 3600 / 6000).
		mid := res.Points[1]
		uShape = float64(mid.Param * mid.EmpiricalRounds)
	}
	b.ReportMetric(uShape, "E·T@E=20")
}

func BenchmarkFigure5EnergyVsK(b *testing.B) {
	setup := benchSetup(b)
	var kStar int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(setup, experiments.SweepConfig{
			Ks: []int{1, 2, 5, 10, 20},
		})
		if err != nil {
			b.Fatalf("Figure5: %v", err)
		}
		kStar = res.KStarTheory
	}
	b.ReportMetric(float64(kStar), "K*(paper=1)")
}

func BenchmarkFigure6EnergyVsE(b *testing.B) {
	setup := benchSetup(b)
	var savings float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(setup, experiments.SweepConfig{})
		if err != nil {
			b.Fatalf("Figure6: %v", err)
		}
		savings = res.MeasuredSavings
	}
	b.ReportMetric(100*savings, "%savings(paper=49.8@paper-scale)")
}

// --- design-choice ablations (DESIGN.md §5) -----------------------------------

// BenchmarkAblationACSClosedForm times Algorithm 1 with the closed-form
// partial minimizers of Eqs. (15)/(17).
func BenchmarkAblationACSClosedForm(b *testing.B) {
	p := core.DefaultProblem()
	cfg := core.DefaultPlannerConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(p, cfg); err != nil {
			b.Fatalf("Solve: %v", err)
		}
	}
}

// BenchmarkAblationACSNumeric replaces the closed forms with golden-section
// searches: same answer, measurably slower — the value of Eqs. (15)/(17).
func BenchmarkAblationACSNumeric(b *testing.B) {
	p := core.DefaultProblem()
	cfg := core.DefaultPlannerConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveNumeric(p, cfg); err != nil {
			b.Fatalf("SolveNumeric: %v", err)
		}
	}
}

// BenchmarkAblationGridSearch is the brute-force integer baseline ACS is
// compared against.
func BenchmarkAblationGridSearch(b *testing.B) {
	p := core.DefaultProblem()
	eMax := int(p.EMax(1)) + 1
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveGrid(p, eMax); err != nil {
			b.Fatalf("SolveGrid: %v", err)
		}
	}
}

// BenchmarkAblationActivation compares the paper's Table-II sigmoid head
// against the softmax head on one federated round.
func BenchmarkAblationActivation(b *testing.B) {
	setup := benchSetup(b)
	for _, act := range []ml.Activation{ml.Softmax, ml.Sigmoid} {
		b.Run(act.String(), func(b *testing.B) {
			cfg := fl.Config{
				ClientsPerRound: 5, LocalEpochs: 5, LearningRate: 0.1,
				Activation: act, Seed: 1,
			}
			for i := 0; i < b.N; i++ {
				engine, err := fl.NewEngine(cfg, setup.Shards)
				if err != nil {
					b.Fatalf("NewEngine: %v", err)
				}
				if _, err := engine.Round(); err != nil {
					b.Fatalf("Round: %v", err)
				}
			}
		})
	}
}

// BenchmarkAblationEmpiricalT compares the bound's T* with an actual
// trained-to-target round count at the planner's optimum.
func BenchmarkAblationEmpiricalT(b *testing.B) {
	setup := benchSetup(b)
	var tEmp int
	for i := 0; i < b.N; i++ {
		res, err := setup.RunTraining(1, 20, uint64(i+1))
		if err != nil {
			b.Fatalf("RunTraining: %v", err)
		}
		tEmp = experiments.RoundsToAccuracy(res.History, setup.AccuracyTarget)
	}
	b.ReportMetric(float64(tEmp), "T_emp(K=1,E=20)")
}

// --- substrate microbenchmarks -------------------------------------------------

func BenchmarkMatDot784(b *testing.B) {
	rng := mat.NewRNG(1)
	x := make([]float64, 784)
	y := make([]float64, 784)
	for i := range x {
		x[i], y[i] = rng.Norm(), rng.Norm()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += mat.Dot(x, y)
	}
	_ = sink
}

func BenchmarkMatMul64(b *testing.B) {
	rng := mat.NewRNG(2)
	a := mat.NewDense(64, 64)
	c := mat.NewDense(64, 64)
	dst := mat.NewDense(64, 64)
	for i := range a.RawData() {
		a.RawData()[i], c.RawData()[i] = rng.Norm(), rng.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mat.Mul(dst, a, c); err != nil {
			b.Fatalf("Mul: %v", err)
		}
	}
}

func BenchmarkSGDEpochFullBatch(b *testing.B) {
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 1000
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		b.Fatalf("Synthesize: %v", err)
	}
	model := ml.NewModel(d.Classes, d.Dim(), ml.Softmax)
	sgd, err := ml.NewSGD(ml.SGDConfig{LearningRate: 0.1})
	if err != nil {
		b.Fatalf("NewSGD: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sgd.Epoch(model, d); err != nil {
			b.Fatalf("Epoch: %v", err)
		}
	}
}

func BenchmarkModelSerialize(b *testing.B) {
	m := ml.NewModel(10, 784, ml.Softmax)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := m.MarshalBinary()
		if err != nil {
			b.Fatalf("MarshalBinary: %v", err)
		}
		var back ml.Model
		if err := back.UnmarshalBinary(data); err != nil {
			b.Fatalf("UnmarshalBinary: %v", err)
		}
	}
}

func BenchmarkTraceRecordAndIntegrate(b *testing.B) {
	pm := energy.DefaultPiPowerModel()
	tm := energy.DefaultPiTimeModel()
	meter, err := energy.NewMeter(pm, 1000, 1)
	if err != nil {
		b.Fatalf("NewMeter: %v", err)
	}
	sched := energy.RoundSchedule(tm, 40, 2000, 2)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		trace, err := meter.Record(sched)
		if err != nil {
			b.Fatalf("Record: %v", err)
		}
		sink += trace.Energy()
	}
	_ = sink
}

func BenchmarkTraceSegmentation(b *testing.B) {
	pm := energy.DefaultPiPowerModel()
	tm := energy.DefaultPiTimeModel()
	meter, err := energy.NewMeter(pm, 1000, 1)
	if err != nil {
		b.Fatalf("NewMeter: %v", err)
	}
	trace, err := meter.Record(energy.RoundSchedule(tm, 40, 2000, 2))
	if err != nil {
		b.Fatalf("Record: %v", err)
	}
	seg, err := energy.NewSegmenter(pm, 10)
	if err != nil {
		b.Fatalf("NewSegmenter: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seg.Segment(trace); err != nil {
			b.Fatalf("Segment: %v", err)
		}
	}
}

func BenchmarkGoldenSection(b *testing.B) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	for i := 0; i < b.N; i++ {
		if _, err := optim.GoldenSection(f, -100, 100, 1e-9); err != nil {
			b.Fatalf("GoldenSection: %v", err)
		}
	}
}

func BenchmarkFedAvgRound(b *testing.B) {
	setup := benchSetup(b)
	cfg := fl.Config{ClientsPerRound: 10, LocalEpochs: 5, LearningRate: 0.1, Seed: 1}
	engine, err := fl.NewEngine(cfg, setup.Shards)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	// One warmup round populates the pool's goroutine-stack free lists so
	// allocs/op is the steady-state count, stable at small -benchtime.
	if _, err := engine.Round(); err != nil {
		b.Fatalf("warmup Round: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Round(); err != nil {
			b.Fatalf("Round: %v", err)
		}
	}
}

// --- extension benches ----------------------------------------------------------

func BenchmarkQuantizeModel8(b *testing.B) {
	m := ml.NewModel(10, 784, ml.Softmax)
	rng := mat.NewRNG(3)
	for i := range m.W.RawData() {
		m.W.RawData()[i] = rng.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := ml.QuantizeModel(m, ml.Quant8)
		if err != nil {
			b.Fatalf("QuantizeModel: %v", err)
		}
		if _, err := ml.DequantizeModel(data); err != nil {
			b.Fatalf("DequantizeModel: %v", err)
		}
	}
}

func BenchmarkStragglerReport(b *testing.B) {
	fleet, err := sim.NewDeviceFleet(energy.DefaultPiDeviceModel(), 20,
		sim.Heterogeneity{SpeedSpread: 0.3, Seed: 1})
	if err != nil {
		b.Fatalf("NewDeviceFleet: %v", err)
	}
	samples := make([]int, 20)
	sel := make([]int, 20)
	for i := range samples {
		samples[i] = 3000
		sel[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Stragglers(sel, 40, samples); err != nil {
			b.Fatalf("Stragglers: %v", err)
		}
	}
}

func BenchmarkSensitivityAnalysis(b *testing.B) {
	p := core.DefaultProblem()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sensitivity(p, 0.1); err != nil {
			b.Fatalf("Sensitivity: %v", err)
		}
	}
}

func BenchmarkParetoFrontier(b *testing.B) {
	p := core.DefaultProblem()
	tm := energy.DefaultPiTimeModel()
	for i := 0; i < b.N; i++ {
		if _, err := core.ParetoFrontier(p, tm, 3000, 500); err != nil {
			b.Fatalf("ParetoFrontier: %v", err)
		}
	}
}

// BenchmarkAblationACSInteger times the integer-domain ACS variant.
func BenchmarkAblationACSInteger(b *testing.B) {
	p := core.DefaultProblem()
	cfg := core.DefaultPlannerConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveInteger(p, cfg); err != nil {
			b.Fatalf("SolveInteger: %v", err)
		}
	}
}

// BenchmarkRoundWithFaults measures the per-round cost of routing edge
// connections through faultnet wrappers configured to inject nothing (0%
// fault rate) against bare TCP: the wrapper's bookkeeping overhead, which
// should be noise next to local training.
func BenchmarkRoundWithFaults(b *testing.B) {
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 200
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		b.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, 2)
	if err != nil {
		b.Fatalf("Partition: %v", err)
	}

	runCluster := func(b *testing.B, dial func(string, time.Duration) (net.Conn, error)) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen: %v", err)
		}
		coord, err := flnet.NewCoordinator(flnet.CoordinatorConfig{
			FL: fl.Config{
				ClientsPerRound: 2,
				LocalEpochs:     1,
				LearningRate:    0.5,
				Seed:            1,
			},
			Classes:      train.Classes,
			Features:     train.Dim(),
			RoundTimeout: 30 * time.Second,
			JoinTimeout:  10 * time.Second,
		}, ln, test)
		if err != nil {
			b.Fatalf("NewCoordinator: %v", err)
		}
		defer coord.Shutdown()

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_ = flnet.RunEdgeServer(context.Background(), flnet.EdgeConfig{
					Addr:  coord.Addr().String(),
					Shard: shards[i],
					Seed:  uint64(i + 1),
					Dial:  dial,
				})
			}(i)
		}
		if err := coord.WaitForClients(ctx, 2); err != nil {
			b.Fatalf("WaitForClients: %v", err)
		}
		if _, err := coord.Round(ctx); err != nil { // warmup: steady-state allocs
			b.Fatalf("warmup Round: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coord.Round(ctx); err != nil {
				b.Fatalf("Round: %v", err)
			}
		}
		b.StopTimer()
		// Shutdown must precede waiting on the edges: they exit only after
		// the coordinator's farewell (or the listener closing).
		coord.Shutdown()
		wg.Wait()
	}

	b.Run("direct", func(b *testing.B) {
		runCluster(b, nil)
	})
	b.Run("faultnet-0pct", func(b *testing.B) {
		runCluster(b, faultnet.New(faultnet.Config{Seed: 1}).TCPDialer())
	})
}
