module eefei

go 1.22
