package eefei

import (
	"io"
	"time"

	"eefei/internal/core"
	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/ml"
	"eefei/internal/sim"
)

// This file exposes the analysis and extension surface of the library:
// plan sensitivity, the energy/time Pareto frontier, per-term energy
// breakdowns, lossy model-upload compression, heterogeneous fleets, and
// power-trace persistence.

// Analysis types, re-exported.
type (
	// SensitivityRow reports the plan's response to a perturbed constant.
	SensitivityRow = core.SensitivityRow
	// ParetoPoint is one energy/time trade-off.
	ParetoPoint = core.ParetoPoint
	// Breakdown splits a configuration's energy into compute vs
	// communication.
	Breakdown = core.Breakdown
	// QuantBits selects the lossy upload codec width.
	QuantBits = ml.QuantBits
	// Heterogeneity describes per-server device spread.
	Heterogeneity = sim.Heterogeneity
	// DeviceFleet holds realized per-server device models.
	DeviceFleet = sim.DeviceFleet
	// StragglerReport quantifies synchronous-round idle waste.
	StragglerReport = sim.StragglerReport
)

// Quantization widths, re-exported.
const (
	Quant8  = ml.Quant8
	Quant16 = ml.Quant16
)

// Sensitivity re-solves the problem under ±delta relative perturbations of
// every constant; see core.Sensitivity.
func Sensitivity(p Problem, delta float64) ([]SensitivityRow, error) {
	return core.Sensitivity(p, delta)
}

// PlanDuration predicts the wall-clock time of executing a plan.
func PlanDuration(plan Plan, tm TimeModel, samplesPerServer int) time.Duration {
	return core.PlanDuration(plan, tm, samplesPerServer)
}

// ParetoFrontier enumerates the non-dominated energy/time configurations.
func ParetoFrontier(p Problem, tm TimeModel, samplesPerServer, eMax int) ([]ParetoPoint, error) {
	return core.ParetoFrontier(p, tm, samplesPerServer, eMax)
}

// EnergyBreakdown splits Ê(K, E) into its compute and communication terms.
func EnergyBreakdown(p Problem, k, e int) (Breakdown, error) {
	return core.EnergyBreakdown(p, k, e)
}

// QuantizeModel losslessly-shaped lossy compression of model parameters for
// upload (8 or 16 bits per parameter); DequantizeModel inverts it.
func QuantizeModel(m *Model, bits QuantBits) ([]byte, error) {
	return ml.QuantizeModel(m, bits)
}

// DequantizeModel decodes a QuantizeModel payload.
func DequantizeModel(data []byte) (*Model, error) {
	return ml.DequantizeModel(data)
}

// NewDeviceFleet realizes n per-server device models around a nominal model
// with the given heterogeneity.
func NewDeviceFleet(nominal DeviceModel, n int, h Heterogeneity) (*DeviceFleet, error) {
	return sim.NewDeviceFleet(nominal, n, h)
}

// SaveTrace / LoadTrace persist 1 kHz power captures in the library's
// binary container.
var (
	SaveTrace = energy.SaveTrace
	LoadTrace = energy.LoadTrace
)

// Asynchronous federated learning, re-exported.
type (
	// AsyncConfig parameterizes staleness-weighted asynchronous FL.
	AsyncConfig = fl.AsyncConfig
	// AsyncUpdate records one asynchronous global update.
	AsyncUpdate = fl.AsyncUpdate
	// AsyncEngine runs FedAsync-style training over in-memory shards.
	AsyncEngine = fl.AsyncEngine
	// AsyncOption customizes an AsyncEngine (worker-pool sizes).
	AsyncOption = fl.AsyncOption
)

// NewAsyncEngine builds an asynchronous engine over the shards; test may be
// nil. Results are bit-identical for every worker-pool option: completion
// order comes from the engine's deterministic virtual-time scheduler, never
// from goroutine scheduling.
func NewAsyncEngine(cfg AsyncConfig, shards []*Dataset, test *Dataset, opts ...AsyncOption) (*AsyncEngine, error) {
	return fl.NewAsyncEngine(cfg, shards, test, opts...)
}

// Async engine options and stop-condition constructors, re-exported.
var (
	// WithAsyncParallelism caps concurrent local-training workers.
	WithAsyncParallelism = fl.WithAsyncParallelism
	// WithAsyncEvalParallelism caps the post-update evaluation workers.
	WithAsyncEvalParallelism = fl.WithAsyncEvalParallelism
	// MaxAsyncSteps stops after n asynchronous updates.
	MaxAsyncSteps = fl.MaxAsyncSteps
	// AsyncTargetAccuracy stops at a test-accuracy threshold.
	AsyncTargetAccuracy = fl.AsyncTargetAccuracy
)

// Per-round observability, re-exported: attach a RoundObserver (or a
// TraceWriter over an io.Writer) to an Engine or AsyncEngine via
// SetRoundObserver to stream one RoundStats per round/step.
type (
	// RoundStats is one round's phase timings and pool occupancy.
	RoundStats = fl.RoundStats
	// RoundObserver consumes RoundStats after each round or async step.
	RoundObserver = fl.RoundObserver
	// FuncObserver adapts a function to the RoundObserver interface.
	FuncObserver = fl.FuncObserver
	// TraceWriter is a RoundObserver that streams JSONL (cmd/tracefmt
	// renders the files it writes).
	TraceWriter = fl.TraceWriter
)

// NewTraceWriter streams each observed round as one JSON line on w.
func NewTraceWriter(w io.Writer) *TraceWriter { return fl.NewTraceWriter(w) }

// First-principles constant estimation, re-exported: derive σ², L and
// ‖ω0−ω*‖² from a dataset plus a near-optimal reference model, then
// aggregate them into bound constants via PhysicalConstants.Aggregate.
type EstimateOptions = core.EstimateOptions

// EstimatePhysical assembles PhysicalConstants from data; see
// core.EstimatePhysical.
func EstimatePhysical(reference *Model, shards []*Dataset, learningRate float64,
	alpha0, alpha1, alpha2 float64, opts EstimateOptions) (PhysicalConstants, error) {
	return core.EstimatePhysical(reference, shards, learningRate, alpha0, alpha1, alpha2, opts)
}

// EstimateGradientVariance computes the bound's σ² at a reference model.
func EstimateGradientVariance(reference *Model, shards []*Dataset) (float64, error) {
	return core.EstimateGradientVariance(reference, shards)
}
