#!/usr/bin/env bash
# bench.sh — run the repo's benchmark suite with fixed seeds and emit the
# BENCH_<date>.json perf artifact (ns/op, B/op, allocs/op per benchmark).
#
# Packages covered: the root package (paper figure/table pins, including the
# flnet fault-injection round), internal/fl (FedAvg round, async step, global
# loss), internal/ml (evaluator + SGD epochs), internal/mat (GEMM, matvec,
# RNG), internal/energy (calibrator observe), internal/flnet (the pooled
# networked round over loopback TCP plus the downlink encode paths — the
# allocs/op and B/op pins behind the zero-copy wire protocol — and the
# datagram round BenchmarkDgramRoundWire at loss 0 and 10%), and
# internal/fldgram (packet codec + ARQ frame path of the lossy transport).
#
# The suite runs in two passes with different iteration counts:
#
#   - Hot-path benchmarks (everything in internal/*, plus the root-package
#     set matched by GATED) run at BENCH_TIME (default 25x). These are the
#     benchmarks the verify.sh regression gate holds to zero allocs/op
#     growth; 25 iterations amortize the scheduler's occasional cold
#     goroutine spawn (floor(total/25) drops it) so the count is exactly
#     reproducible run-to-run.
#   - Experiment-harness benchmarks (root Figure*/Ablation*/Table*) run at
#     BENCH_TIME_HARNESS (default 5x) — one op is an entire multi-round
#     training sweep, so 25x would take tens of minutes, and the gate
#     excludes them anyway (-skip, DESIGN.md §7).
#
# A new root-package benchmark must be added to GATED (or match HARNESS) or
# it will not appear in the artifact. internal/* benchmarks are picked up
# automatically.
#
# Environment knobs:
#   BENCH_DATE   — artifact date stamp (default: today, YYYY-MM-DD)
#   BENCH_TIME   — -benchtime for the gated pass (default 25x)
#   BENCH_TIME_HARNESS — -benchtime for the harness pass (default 5x)
#   BENCH_FILTER — when set, run a single pass with this -bench regexp at
#                  BENCH_TIME instead of the two-pass suite
set -euo pipefail
cd "$(dirname "$0")/.."

DATE="${BENCH_DATE:-$(date +%F)}"
TIME="${BENCH_TIME:-25x}"
HARNESS_TIME="${BENCH_TIME_HARNESS:-5x}"
OUT="BENCH_${DATE}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

HARNESS='^Benchmark(Figure|Ablation|Table)'
GATED='^Benchmark(Mat|SGD|Model|Trace|Golden|FedAvg|Quantize|Straggler|Sensitivity|Pareto|RoundWithFaults)'

if [ -n "${BENCH_FILTER:-}" ]; then
    echo "bench: single pass, -bench='${BENCH_FILTER}' -benchtime=${TIME} ..." >&2
    go test -run='^$' -bench="$BENCH_FILTER" -benchmem -benchtime="$TIME" \
        . ./internal/fl ./internal/ml ./internal/mat ./internal/energy \
        ./internal/flnet ./internal/fldgram | tee "$RAW" >&2
else
    echo "bench: harness pass -benchtime=${HARNESS_TIME}, gated pass -benchtime=${TIME} ..." >&2
    {
        go test -run='^$' -bench="$HARNESS" -benchmem -benchtime="$HARNESS_TIME" .
        go test -run='^$' -bench="$GATED" -benchmem -benchtime="$TIME" .
        go test -run='^$' -bench=. -benchmem -benchtime="$TIME" \
            ./internal/fl ./internal/ml ./internal/mat ./internal/energy \
            ./internal/flnet ./internal/fldgram
    } | tee "$RAW" >&2
fi

go run ./cmd/benchfmt -date "$DATE" <"$RAW" >"$OUT"
echo "bench: wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2
