#!/usr/bin/env bash
# bench.sh — run the repo's benchmark suite with fixed seeds and emit the
# BENCH_<date>.json perf artifact (ns/op, B/op, allocs/op per benchmark).
#
# Packages covered: the root package (paper figure/table pins, including the
# flnet fault-injection round), internal/fl (FedAvg round + global loss),
# internal/ml (evaluator + SGD epochs), and internal/mat (GEMM, matvec, RNG).
#
# Environment knobs:
#   BENCH_DATE  — artifact date stamp (default: today, YYYY-MM-DD)
#   BENCH_TIME  — -benchtime value (default 5x; fixed iteration counts keep
#                 the artifact stable across machines)
#   BENCH_FILTER — -bench regexp (default '.', everything)
set -euo pipefail
cd "$(dirname "$0")/.."

DATE="${BENCH_DATE:-$(date +%F)}"
TIME="${BENCH_TIME:-5x}"
FILTER="${BENCH_FILTER:-.}"
OUT="BENCH_${DATE}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "bench: running go test -bench='${FILTER}' -benchtime=${TIME} ..." >&2
go test -run='^$' -bench="$FILTER" -benchmem -benchtime="$TIME" \
    . ./internal/fl ./internal/ml ./internal/mat | tee "$RAW" >&2

go run ./cmd/benchfmt -date "$DATE" <"$RAW" >"$OUT"
echo "bench: wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2
