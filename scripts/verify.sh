#!/usr/bin/env bash
# Full verification of the EE-FEI repository: build, vet, tests, examples,
# experiment regeneration, and one-shot benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"; echo "$unformatted"; exit 1
fi

echo "== tests =="
go test ./...

echo "== tests (race detector) =="
go test -race ./...

echo "== examples =="
go run ./examples/quickstart
go run ./examples/energy_planner
go run ./examples/federated_mnist | tail -4
go run ./examples/networked_fl | tail -3
go run ./examples/networked_fl -fault-drop-kb 30 | tail -3
go run ./examples/async_fl | tail -3

echo "== experiments (quick scale) =="
go run ./cmd/experiments

echo "== planner CLI =="
go run ./cmd/eefei-plan -grid

echo "== benches (single shot, all packages) =="
# Smoke-run every benchmark once so a panic or regression in a bench-only
# code path (worker pools, blocked GEMM, evaluator scratch) fails verify.
# scripts/bench.sh is the tool for real measurements and BENCH_*.json.
go test -bench=. -benchmem -benchtime=1x -run='^$' ./...

echo "ALL VERIFICATIONS PASSED"
