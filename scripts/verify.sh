#!/usr/bin/env bash
# Full verification of the EE-FEI repository: build, vet, tests, examples,
# experiment regeneration, and one-shot benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"; echo "$unformatted"; exit 1
fi

echo "== tests =="
go test ./...

echo "== tests (race detector) =="
go test -race ./...

echo "== observer determinism/race (explicit) =="
# Contracts pinned under the race detector even if the full -race sweep
# above is ever narrowed: bit-identical training with a mutating
# RoundObserver attached (pool claims counters included), the async
# engine's pool-size independence (same seed, worker counts 1..GOMAXPROCS,
# byte-identical weights and histories — the virtual-time event queue, not
# goroutine order, decides the update stream), and the batched GEMM forward
# pass matching the per-sample sequential reference bit for bit at every
# worker count (kernel layer in internal/mat, metric/gradient layer in
# internal/ml).
go test -race -run 'Observer|SpawnGate|TraceWriter|AsyncPoolBitIdentical' ./internal/fl ./internal/flnet
go test -race -run 'BitIdentical|Forward|Metrics' ./internal/mat ./internal/ml

echo "== sweep golden/resume/bit-identity (race detector, explicit) =="
# The (K, E) sweep subsystem's contracts pinned under -race even if the
# full -race sweep above is ever narrowed: the checked-in Quick-scale 3×3
# golden checkpoint + frontier CSV byte-compared, resume from a killed
# sweep's prefix byte-identical to an uninterrupted run, worker counts
# {1,2,4,GOMAXPROCS} bit-identical, parallel dataset synthesis matching
# workers=1, and the CLI artifact/resume paths. The Full tier itself
# (60k samples, 100 servers) is opt-in only:
#   EEFEI_FULL_SCALE=1 go test ./internal/experiments -run FullScaleSweep -timeout 30m
go test -race -run 'Sweep|Frontier|ParseScale|ScaleString|TestSplitSamples' ./internal/experiments ./cmd/experiments
go test -race -run 'SynthesizeParallel|SynthesizePairParallel' ./internal/dataset

echo "== wire protocol v2 interop/residual (race detector, explicit) =="
# The pooled v2 wire path's contracts pinned under -race even if the full
# -race sweep above is ever narrowed: lossless v2 bit-identical to the
# seed protocol at fleet sizes {1,2,4,GOMAXPROCS}, mixed v1/v2 fleets
# training in one cluster, the error-feedback residual downlink shrinking
# bytes ≥4× at Quant8 while still converging, rejoin resetting to a full
# send then resuming residuals, the v2 handshake/header decode error
# tables, and the 0 allocs/op frame read/write pin. The byte→joules radio
# pricing rides with the Calibrator section below.
go test -race -run 'LosslessV2|MixedProtocol|Residual|TrainRequestV2|Handshake|Negotiate|WriteFrameAllocationFree' ./internal/flnet
go test -race -run 'RadioModel|RadioPricing' ./internal/energy

echo "== datagram transport ARQ/determinism (race detector, explicit) =="
# The lossy-transport contracts pinned under -race even if the full -race
# sweep above is ever narrowed: the fldgram stop-and-wait ARQ (fragmentation,
# CRC-rejected mutations, dup/reorder absorption, deterministic same-seed
# attempt counters, UDP mux listener), the packet-level faultnet injector,
# training over fldgram at 10% injected loss matching the TCP history record
# for record with bit-identical same-seed weights and the measured ρ/p of
# Eq. 4 within 5% of analytic, the residual-quantized downlink under
# connection chaos with rejoins, and the reconnect-lifecycle backoff
# schedule's seed determinism.
go test -race ./internal/fldgram
go test -race -run 'PacketInjector' ./internal/faultnet
go test -race -run 'Dgram|ChaosQuantized|RetryBackoffDeterministic' ./internal/flnet

echo "== reassembly fuzzer (smoke) =="
# A short live-fuzz burst on top of the checked-in corpus (which every plain
# `go test` replays): hostile fragment streams must never panic nor deliver
# corrupted bytes. Longer runs: go test -fuzz FuzzReassembly ./internal/fldgram
go test -run='^$' -fuzz 'FuzzReassembly' -fuzztime 5s ./internal/fldgram

echo "== calibration round-trip (race detector, explicit) =="
# The trace→energy loop under -race: the Calibrator observer accumulating a
# measured ledger live (closed-loop refit onto DefaultPiTimeModel, replay
# parity, non-perturbation of training) and the tracefmt -energy offline
# replay path over the checked-in golden trace.
go test -race -run 'Calibrator' ./internal/energy
go test -race -run 'Energy|RunEnergyFlag' ./cmd/tracefmt

echo "== examples =="
go run ./examples/quickstart
go run ./examples/energy_planner
go run ./examples/federated_mnist | tail -4
go run ./examples/networked_fl | tail -3
go run ./examples/networked_fl -fault-drop-kb 30 | tail -3
go run ./examples/async_fl | tail -3
go run ./examples/async_fl -workers 1 -steps 40 | tail -3

echo "== experiments (quick scale) =="
go run ./cmd/experiments

echo "== planner CLI =="
go run ./cmd/eefei-plan -grid

echo "== benches (single shot, all packages) =="
# Smoke-run every benchmark once so a panic or regression in a bench-only
# code path (worker pools, blocked GEMM, evaluator scratch, the batched
# forward kernels BenchmarkMatMulT / BenchmarkMatAddMulTA /
# BenchmarkEvaluatorMetrics) fails verify. scripts/bench.sh is the tool
# for real measurements and BENCH_*.json.
go test -bench=. -benchmem -benchtime=1x -run='^$' ./...

echo "== bench regression gate =="
# Re-measure the pinned packages and diff against the committed baseline
# (policy in DESIGN.md §7). Two tiers:
#
#   1. Strict: >BENCH_TOL% ns/op regression (default 15) or ANY allocs/op
#      growth fails. -min-ns keeps sub-100µs micro-benchmarks out of the
#      wall-clock comparison (scheduler jitter dominates there).
#   2. Allocs-only fallback: on throttled shared runners wall-clock swings
#      far beyond any usable tolerance, so unless BENCH_STRICT=1 a strict
#      failure downgrades ns to advisory and hard-gates only allocs/op and
#      benchmark coverage (a huge -min-ns skips every ns comparison).
#
# Allocation counts are deterministic for hot-path benchmarks: each warms
# up its worker pool before b.ResetTimer(), and 25 iterations amortize the
# scheduler's occasional cold goroutine spawn, so allocs/op is exactly
# reproducible and tier 2 catches real regressions. That includes the
# async hot path: BenchmarkAsyncStep/eval=1 is pinned at 0 allocs/op (the
# engine-side contract behind TestAsyncStepAllocationFree), and the pooled
# wire path: BenchmarkRoundWire's allocs/op and B/op are the zero-copy
# protocol's pins (full K=10 loopback round; warm round before the timer
# makes the count exact), with BenchmarkEncodeResidual pinned at 0
# allocs/op. Experiment-harness
# benchmarks (root Figure*/Ablation*/Table*) run a whole multi-round sweep
# per op and their allocs/op genuinely jitters — they are not re-measured
# here and -skip exempts them from the coverage rule; the 1x smoke run
# above still executes them. Keep GATED in sync with scripts/bench.sh.
BASELINE="BENCH_2026-08-06.json"
SKIP='^eefei\.Benchmark(Figure|Ablation|Table)'
GATED='^Benchmark(Mat|SGD|Model|Trace|Golden|FedAvg|Quantize|Straggler|Sensitivity|Pareto|RoundWithFaults)'
FRESH="$(mktemp)"
trap 'rm -f "$FRESH"' EXIT
{
    go test -run='^$' -bench="$GATED" -benchmem -benchtime=25x .
    go test -run='^$' -bench=. -benchmem -benchtime=25x \
        ./internal/fl ./internal/ml ./internal/mat ./internal/energy \
        ./internal/flnet ./internal/fldgram
} | go run ./cmd/benchfmt -date regression-gate >"$FRESH"
if ! go run ./cmd/benchfmt -diff "$BASELINE" "$FRESH" \
        -tol "${BENCH_TOL:-15}" -min-ns 100000 -skip "$SKIP"; then
    if [ "${BENCH_STRICT:-0}" = "1" ]; then
        echo "bench gate: strict comparison failed (BENCH_STRICT=1)" >&2
        exit 1
    fi
    echo "bench gate: ns/op outside tolerance on this runner; re-checking allocs/op only"
    go run ./cmd/benchfmt -diff "$BASELINE" "$FRESH" -min-ns 1000000000000 -skip "$SKIP"
fi

echo "ALL VERIFICATIONS PASSED"
