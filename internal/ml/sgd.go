package ml

import (
	"fmt"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// SGDConfig holds the optimizer hyper-parameters from the paper's Table II:
// learning rate 0.01 with multiplicative decay 0.99 per global round, full
// batch (BatchSize = 0 means "use the whole shard").
type SGDConfig struct {
	// LearningRate is the initial step size γ.
	LearningRate float64
	// Decay multiplies the learning rate once per DecayEvery local epochs;
	// the paper decays per global round, which callers express by setting
	// DecayEvery to the local epoch count E.
	Decay float64
	// DecayEvery is the number of epochs between decay applications.
	// Zero disables decay.
	DecayEvery int
	// BatchSize is the mini-batch size n_k; 0 selects full-batch SGD, the
	// paper's setting.
	BatchSize int
	// ProximalMu enables FedProx-style local training: each step also pulls
	// the model toward a reference (the round's global model) with strength
	// µ, damping client drift on heterogeneous shards. Zero disables it;
	// the reference is supplied via SetProximalRef.
	ProximalMu float64
	// Seed drives mini-batch shuffling (unused for full batch).
	Seed uint64
}

// DefaultSGDConfig mirrors Table II.
func DefaultSGDConfig() SGDConfig {
	return SGDConfig{LearningRate: 0.01, Decay: 0.99, DecayEvery: 1}
}

// SGD performs gradient-descent epochs over a dataset, tracking the decayed
// learning rate across calls so that a federated client can run E epochs per
// round and keep decaying round over round.
type SGD struct {
	cfg     SGDConfig
	lr      float64
	step    int // epochs performed so far, drives decay
	rng     *mat.RNG
	grad    *Model     // reusable gradient accumulator
	fwd     fwdScratch // reusable batched-forward chunk scratch
	perm    []int      // reusable mini-batch shuffle buffer
	proxRef *Model     // FedProx anchor; nil disables the proximal pull
}

// SetProximalRef anchors FedProx local training to ref (typically the
// round's global model). The reference is not copied; callers must not
// mutate it during training. A nil ref disables the proximal term.
func (s *SGD) SetProximalRef(ref *Model) { s.proxRef = ref }

// applyProximal pulls m toward the proximal reference after a gradient
// step: m ← m − lr·µ·(m − ref).
func (s *SGD) applyProximal(m *Model) {
	if s.cfg.ProximalMu <= 0 || s.proxRef == nil {
		return
	}
	scale := s.lr * s.cfg.ProximalMu
	w, r := m.W.RawData(), s.proxRef.W.RawData()
	for i := range w {
		w[i] -= scale * (w[i] - r[i])
	}
	for i := range m.B {
		m.B[i] -= scale * (m.B[i] - s.proxRef.B[i])
	}
}

// NewSGD validates cfg and returns an optimizer.
func NewSGD(cfg SGDConfig) (*SGD, error) {
	s := &SGD{}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset revalidates and adopts cfg, rewinds the decay schedule, reseeds the
// shuffle stream in place, and clears any proximal reference — while keeping
// the gradient accumulator and scratch buffers. A federated worker calls
// Reset once per (client, round) assignment so that training allocates
// nothing after the first round, and the resulting streams depend only on
// cfg.Seed, never on which worker ran the client.
func (s *SGD) Reset(cfg SGDConfig) error {
	if cfg.LearningRate <= 0 {
		return fmt.Errorf("ml: learning rate %v must be positive", cfg.LearningRate)
	}
	if cfg.Decay < 0 || cfg.Decay > 1 {
		return fmt.Errorf("ml: decay %v outside [0,1]", cfg.Decay)
	}
	if cfg.BatchSize < 0 {
		return fmt.Errorf("ml: batch size %v negative", cfg.BatchSize)
	}
	if cfg.ProximalMu < 0 {
		return fmt.Errorf("ml: proximal mu %v negative", cfg.ProximalMu)
	}
	s.cfg = cfg
	s.lr = cfg.LearningRate
	s.step = 0
	s.proxRef = nil
	if s.rng == nil {
		s.rng = mat.NewRNG(cfg.Seed)
	} else {
		s.rng.Reseed(cfg.Seed)
	}
	return nil
}

// LearningRate returns the current (decayed) step size.
func (s *SGD) LearningRate() float64 { return s.lr }

// EpochsRun returns how many epochs this optimizer has performed.
func (s *SGD) EpochsRun() int { return s.step }

// Epoch performs one pass over d, updating m in place, and returns the mean
// loss measured at the start of the pass.
func (s *SGD) Epoch(m *Model, d *dataset.Dataset) (float64, error) {
	if d.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("epoch on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	if s.grad == nil || s.grad.Classes() != m.Classes() || s.grad.Features() != m.Features() {
		s.grad = NewModel(m.Classes(), m.Features(), m.Act)
	}

	var loss float64
	if s.cfg.BatchSize <= 0 || s.cfg.BatchSize >= d.Len() {
		// Full-batch gradient descent (the paper's setting).
		s.grad.Zero()
		l, err := gradientRows(m, d, nil, s.grad, &s.fwd)
		if err != nil {
			return 0, fmt.Errorf("epoch gradient: %w", err)
		}
		loss = l
		if err := m.AddScaled(-s.lr, s.grad); err != nil {
			return 0, fmt.Errorf("epoch update: %w", err)
		}
		s.applyProximal(m)
	} else {
		// Mini-batch pass in shuffled order. The shuffle buffer is reused
		// across epochs and batches are permutation slices fed straight to
		// the gradient core — no subset datasets are materialized.
		if len(s.perm) != d.Len() {
			s.perm = make([]int, d.Len())
		}
		s.rng.PermInto(s.perm)
		var batches, lossSum float64
		for start := 0; start < len(s.perm); start += s.cfg.BatchSize {
			end := start + s.cfg.BatchSize
			if end > len(s.perm) {
				end = len(s.perm)
			}
			s.grad.Zero()
			l, err := gradientRows(m, d, s.perm[start:end], s.grad, &s.fwd)
			if err != nil {
				return 0, fmt.Errorf("epoch gradient: %w", err)
			}
			lossSum += l
			batches++
			if err := m.AddScaled(-s.lr, s.grad); err != nil {
				return 0, fmt.Errorf("epoch update: %w", err)
			}
			s.applyProximal(m)
		}
		loss = lossSum / batches
	}

	s.step++
	if s.cfg.DecayEvery > 0 && s.cfg.Decay > 0 && s.step%s.cfg.DecayEvery == 0 {
		s.lr *= s.cfg.Decay
	}
	return loss, nil
}

// Train runs epochs passes over d and returns the loss trajectory (one entry
// per epoch, measured at the start of each pass).
func (s *SGD) Train(m *Model, d *dataset.Dataset, epochs int) ([]float64, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("ml: epochs %d must be positive", epochs)
	}
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		l, err := s.Epoch(m, d)
		if err != nil {
			return losses, fmt.Errorf("epoch %d: %w", e, err)
		}
		losses = append(losses, l)
	}
	return losses, nil
}

// TrainFinal runs epochs passes over d like Train but returns only the final
// epoch's loss, allocating nothing. Hot loops (the federated engine trains
// K clients per round) use this to skip the trajectory slice.
func (s *SGD) TrainFinal(m *Model, d *dataset.Dataset, epochs int) (float64, error) {
	if epochs <= 0 {
		return 0, fmt.Errorf("ml: epochs %d must be positive", epochs)
	}
	var last float64
	for e := 0; e < epochs; e++ {
		l, err := s.Epoch(m, d)
		if err != nil {
			return 0, fmt.Errorf("epoch %d: %w", e, err)
		}
		last = l
	}
	return last, nil
}
