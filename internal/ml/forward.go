package ml

import (
	"fmt"
	"math"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// Batched forward pass: logits for a whole row-block are computed as one
// X_chunk·Wᵀ product (mat.MulT) plus a bias broadcast, instead of a matvec
// per sample. The blocked kernel accumulates every output element in exactly
// Dot's order and multiplication is commutative, so each logits row is
// bit-identical to Model.Logits on that sample — every metric and gradient
// derived here matches the per-sample sequential reference bit for bit.
// Blocks are evalChunk rows so the scratch footprint stays fixed and the
// X block + logits block stay cache-resident.

// fwdScratch owns the reusable buffers of one batched forward stream. Each
// owner (an Evaluator worker, an SGD, a PredictBatch call) holds its own, so
// warm passes perform zero heap allocations. The zero value is ready to use;
// buffers are sized lazily on first use and re-sized only when the model
// shape changes.
type fwdScratch struct {
	// logits is the evalChunk×classes logits/probability block. Rows double
	// as the in-place delta matrix on the gradient path.
	logits *mat.Dense
	// xrows is the evalChunk×features gather buffer for non-contiguous row
	// selections (mini-batch permutation slices). Contiguous passes never
	// touch it.
	xrows *mat.Dense
}

// ensureLogits returns the logits block, (re)allocating when the class count
// changes.
func (sc *fwdScratch) ensureLogits(classes int) *mat.Dense {
	if sc.logits == nil || sc.logits.Cols() != classes {
		sc.logits = mat.NewDense(evalChunk, classes)
	}
	return sc.logits
}

// ensureX returns the gather buffer, (re)allocating when the feature count
// changes.
func (sc *fwdScratch) ensureX(features int) *mat.Dense {
	if sc.xrows == nil || sc.xrows.Cols() != features {
		sc.xrows = mat.NewDense(evalChunk, features)
	}
	return sc.xrows
}

// forwardRowRange runs the batched forward pass over rows [lo, hi) of d and
// returns the summed (not averaged) loss and/or the correct-prediction count,
// per wantLoss/wantHits. Hits are argmax over raw logits (the head is
// monotonic, so activation cannot change the argmax) and the loss matches
// lossSampleRef exactly: softmax loss reads only p_y = e_y/Σe — skipping the
// other divisions is bit-identical because softmaxInPlace computes each
// probability as an independent e_i/Σe division.
func forwardRowRange(m *Model, d *dataset.Dataset, lo, hi int, sc *fwdScratch, wantLoss, wantHits bool) (lossSum float64, hits int, err error) {
	logits := sc.ensureLogits(m.Classes())
	for blo := lo; blo < hi; blo += evalChunk {
		bhi := blo + evalChunk
		if bhi > hi {
			bhi = hi
		}
		x := d.X.SliceRows(blo, bhi)
		lg := logits.SliceRows(0, bhi-blo)
		if err := mat.MulT(&lg, &x, m.W); err != nil {
			return 0, 0, fmt.Errorf("batched logits: %w", err)
		}
		for r := 0; r < lg.Rows(); r++ {
			row := lg.Row(r)
			mat.Axpy(row, 1, m.B)
			y := d.Labels[blo+r]
			if wantHits && mat.ArgMax(row) == y {
				hits++
			}
			if !wantLoss {
				continue
			}
			switch m.Act {
			case Sigmoid:
				for i, z := range row {
					row[i] = sigmoid(z)
				}
				lossSum += sampleLoss(Sigmoid, row, y)
			default:
				lossSum += softmaxLogitsLoss(row, y)
			}
		}
	}
	return lossSum, hits, nil
}

// softmaxLogitsLoss returns the cross-entropy −log(max(softmax(z)[y], ε))
// straight from logits, without storing or normalizing the full probability
// row. The max-shift, the exponentials, and the Σe accumulation run in
// exactly softmaxInPlace's order and p_y is the same e_y/Σe division, so the
// result is bit-identical to softmaxInPlace + sampleLoss.
func softmaxLogitsLoss(z []float64, y int) float64 {
	maxZ := math.Inf(-1)
	for _, v := range z {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum, ey float64
	for i, v := range z {
		e := math.Exp(v - maxZ)
		if i == y {
			ey = e
		}
		sum += e
	}
	var total float64
	total -= math.Log(math.Max(ey/sum, epsLog))
	return total
}

// predictRowRange writes the argmax class of every row in [lo, hi) of d into
// out[lo:hi] using the batched forward pass.
func predictRowRange(m *Model, d *dataset.Dataset, lo, hi int, sc *fwdScratch, out []int) error {
	logits := sc.ensureLogits(m.Classes())
	for blo := lo; blo < hi; blo += evalChunk {
		bhi := blo + evalChunk
		if bhi > hi {
			bhi = hi
		}
		x := d.X.SliceRows(blo, bhi)
		lg := logits.SliceRows(0, bhi-blo)
		if err := mat.MulT(&lg, &x, m.W); err != nil {
			return fmt.Errorf("batched logits: %w", err)
		}
		for r := 0; r < lg.Rows(); r++ {
			row := lg.Row(r)
			mat.Axpy(row, 1, m.B)
			out[blo+r] = mat.ArgMax(row)
		}
	}
	return nil
}
