// Package ml implements the learning substrate the paper trains: a linear
// multi-class classifier (multinomial logistic regression with a softmax
// head, or the paper's Table-II "sigmoid" one-vs-all head), full-batch and
// mini-batch SGD with multiplicative learning-rate decay, the associated
// losses and metrics, and deterministic binary (de)serialization of model
// parameters for the network protocol.
package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// Activation selects the classifier head.
type Activation int

const (
	// Softmax is standard multinomial logistic regression trained with
	// cross-entropy.
	Softmax Activation = iota + 1
	// Sigmoid is the one-vs-all head the paper's Table II lists, trained
	// with per-class binary cross-entropy.
	Sigmoid
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Softmax:
		return "softmax"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// ErrModelShape is returned (wrapped) when model and data dimensions clash.
var ErrModelShape = errors.New("ml: model/data dimension mismatch")

// Model is a linear classifier: logits = W·x + b with W of shape
// classes×features.
type Model struct {
	// W is the classes×features weight matrix.
	W *mat.Dense
	// B is the per-class bias vector.
	B []float64
	// Act selects the head used by Predict and the losses.
	Act Activation
}

// NewModel returns a zero-initialized linear model. Zero init is the
// convention for convex logistic regression (no symmetry breaking needed).
func NewModel(classes, features int, act Activation) *Model {
	return &Model{
		W:   mat.NewDense(classes, features),
		B:   make([]float64, classes),
		Act: act,
	}
}

// Classes returns the number of output classes.
func (m *Model) Classes() int { return m.W.Rows() }

// Features returns the input dimension.
func (m *Model) Features() int { return m.W.Cols() }

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	return &Model{W: m.W.Clone(), B: mat.Clone(m.B), Act: m.Act}
}

// Zero resets all parameters to zero in place.
func (m *Model) Zero() {
	m.W.Zero()
	for i := range m.B {
		m.B[i] = 0
	}
}

// CopyFrom copies parameters from src; shapes must match.
func (m *Model) CopyFrom(src *Model) error {
	if err := m.W.CopyFrom(src.W); err != nil {
		return fmt.Errorf("copy weights: %w", err)
	}
	if len(m.B) != len(src.B) {
		return fmt.Errorf("copy %d biases into %d: %w", len(src.B), len(m.B), ErrModelShape)
	}
	copy(m.B, src.B)
	m.Act = src.Act
	return nil
}

// AddScaled adds s·other to the parameters in place.
func (m *Model) AddScaled(s float64, other *Model) error {
	if err := m.W.AddScaled(s, other.W); err != nil {
		return fmt.Errorf("add weights: %w", err)
	}
	if len(m.B) != len(other.B) {
		return fmt.Errorf("add %d biases into %d: %w", len(other.B), len(m.B), ErrModelShape)
	}
	mat.Axpy(m.B, s, other.B)
	return nil
}

// Scale multiplies all parameters by s in place.
func (m *Model) Scale(s float64) {
	m.W.Scale(s)
	mat.Scale(m.B, s)
}

// ParamDistance returns the Euclidean distance between the parameter vectors
// of m and other (‖ω_m − ω_other‖₂), the quantity the convergence bound's
// A0 term measures.
func (m *Model) ParamDistance(other *Model) float64 {
	var ssq float64
	a, b := m.W.RawData(), other.W.RawData()
	for i := range a {
		d := a[i] - b[i]
		ssq += d * d
	}
	for i := range m.B {
		d := m.B[i] - other.B[i]
		ssq += d * d
	}
	return math.Sqrt(ssq)
}

// ParamCount returns the total number of scalar parameters.
func (m *Model) ParamCount() int {
	return m.W.Rows()*m.W.Cols() + len(m.B)
}

// Logits computes W·x + b into dst (length classes).
func (m *Model) Logits(dst, x []float64) error {
	if err := m.W.MulVec(dst, x); err != nil {
		return fmt.Errorf("logits: %w", err)
	}
	mat.Axpy(dst, 1, m.B)
	return nil
}

// Probabilities applies the model head to x, writing class probabilities
// (softmax) or per-class sigmoid scores into dst.
func (m *Model) Probabilities(dst, x []float64) error {
	if err := m.Logits(dst, x); err != nil {
		return err
	}
	switch m.Act {
	case Sigmoid:
		for i, z := range dst {
			dst[i] = sigmoid(z)
		}
	default: // Softmax, also the fallback for the zero value
		softmaxInPlace(dst)
	}
	return nil
}

// Predict returns the argmax class for sample x.
func (m *Model) Predict(x []float64) (int, error) {
	scores := make([]float64, m.Classes())
	if err := m.Logits(scores, x); err != nil {
		return 0, err
	}
	return mat.ArgMax(scores), nil
}

// LogitsBatch computes logits for every row of x into dst (x.Rows×classes):
// dst = x·Wᵀ + 1·bᵀ via the blocked transposed GEMM. Each dst row is
// bit-identical to Logits on the corresponding sample. dst must not alias x.
func (m *Model) LogitsBatch(dst, x *mat.Dense) error {
	if x.Cols() != m.Features() || dst.Rows() != x.Rows() || dst.Cols() != m.Classes() {
		return fmt.Errorf("batch logits %dx%d of %dx%d data with %dx%d model: %w",
			dst.Rows(), dst.Cols(), x.Rows(), x.Cols(), m.Classes(), m.Features(), ErrModelShape)
	}
	if err := mat.MulT(dst, x, m.W); err != nil {
		return fmt.Errorf("batch logits: %w", err)
	}
	for i := 0; i < dst.Rows(); i++ {
		mat.Axpy(dst.Row(i), 1, m.B)
	}
	return nil
}

// PredictBatch classifies every row of d and returns the predicted labels,
// scoring evalChunk-row blocks through the batched forward pass.
func (m *Model) PredictBatch(d *dataset.Dataset) ([]int, error) {
	if d.Dim() != m.Features() {
		return nil, fmt.Errorf("predict %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	out := make([]int, d.Len())
	var sc fwdScratch
	if err := predictRowRange(m, d, 0, d.Len(), &sc, out); err != nil {
		return nil, err
	}
	return out, nil
}

// softmaxInPlace converts logits to a probability simplex with the usual
// max-shift for numerical stability.
func softmaxInPlace(z []float64) {
	maxZ := math.Inf(-1)
	for _, v := range z {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - maxZ)
		z[i] = e
		sum += e
	}
	for i := range z {
		z[i] /= sum
	}
}

func sigmoid(z float64) float64 {
	// Branch keeps exp's argument non-positive so it cannot overflow.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// --- serialization ---------------------------------------------------------

// modelMagic guards the wire format. Bump the version byte when the layout
// changes.
var modelMagic = [4]byte{'E', 'F', 'M', 1}

// WriteTo serializes the model in a deterministic little-endian binary
// layout: magic, activation, classes, features, W row-major, B.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(modelMagic); err != nil {
		return n, fmt.Errorf("write magic: %w", err)
	}
	header := []uint32{uint32(m.Act), uint32(m.Classes()), uint32(m.Features())}
	if err := write(header); err != nil {
		return n, fmt.Errorf("write header: %w", err)
	}
	if err := write(m.W.RawData()); err != nil {
		return n, fmt.Errorf("write weights: %w", err)
	}
	if err := write(m.B); err != nil {
		return n, fmt.Errorf("write biases: %w", err)
	}
	return n, nil
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	var magic [4]byte
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("ml: bad model magic %x", magic)
	}
	var header [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	act, classes, features := Activation(header[0]), int(header[1]), int(header[2])
	const maxParams = 1 << 26 // 512 MiB of float64: cap against corrupt headers
	// Bound each dimension before multiplying so the product cannot overflow.
	if classes <= 0 || features <= 0 || classes > maxParams || features > maxParams ||
		classes*features > maxParams {
		return nil, fmt.Errorf("ml: implausible model shape %dx%d", classes, features)
	}
	m := NewModel(classes, features, act)
	if err := binary.Read(r, binary.LittleEndian, m.W.RawData()); err != nil {
		return nil, fmt.Errorf("read weights: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, m.B); err != nil {
		return nil, fmt.Errorf("read biases: %w", err)
	}
	return m, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, m.EncodedSize())), nil
}

// EncodedSize returns the exact byte length of the model's binary
// serialization: magic + header + parameters.
func (m *Model) EncodedSize() int {
	return 4 + 12 + m.ParamCount()*8
}

// AppendBinary appends the model's serialization to dst and returns the
// extended slice, byte-identical to MarshalBinary/WriteTo. It is the
// zero-copy encode path: the network layer appends directly into a pooled
// frame buffer instead of marshalling into an intermediate slice.
func (m *Model) AppendBinary(dst []byte) []byte {
	dst = slices.Grow(dst, m.EncodedSize())
	dst = append(dst, modelMagic[:]...)
	var h [12]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(m.Act))
	binary.LittleEndian.PutUint32(h[4:8], uint32(m.Classes()))
	binary.LittleEndian.PutUint32(h[8:12], uint32(m.Features()))
	dst = append(dst, h[:]...)
	dst = appendFloat64s(dst, m.W.RawData())
	dst = appendFloat64s(dst, m.B)
	return dst
}

// appendFloat64s appends the little-endian IEEE-754 encoding of vals.
func appendFloat64s(dst []byte, vals []float64) []byte {
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// UnmarshalBinaryReuse decodes data into m like UnmarshalBinary, but reuses
// m's existing parameter storage when the encoded shape matches — the decode
// path engines call round after round with a long-lived scratch model, so
// steady-state decoding allocates nothing. On a shape change it falls back
// to a fresh allocation.
func (m *Model) UnmarshalBinaryReuse(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("ml: model payload of %d bytes", len(data))
	}
	var magic [4]byte
	copy(magic[:], data[:4])
	if magic != modelMagic {
		return fmt.Errorf("ml: bad model magic %x", magic)
	}
	act := Activation(binary.LittleEndian.Uint32(data[4:8]))
	classes := int(binary.LittleEndian.Uint32(data[8:12]))
	features := int(binary.LittleEndian.Uint32(data[12:16]))
	const maxParams = 1 << 26
	if classes <= 0 || features <= 0 || classes > maxParams || features > maxParams ||
		classes*features > maxParams {
		return fmt.Errorf("ml: implausible model shape %dx%d", classes, features)
	}
	params := classes*features + classes
	if len(data) != 16+params*8 {
		return fmt.Errorf("ml: model payload %d bytes, want %d", len(data), 16+params*8)
	}
	if m.W == nil || m.W.Rows() != classes || m.W.Cols() != features || len(m.B) != classes {
		fresh := NewModel(classes, features, act)
		m.W, m.B = fresh.W, fresh.B
	}
	m.Act = act
	readFloat64s(m.W.RawData(), data[16:])
	readFloat64s(m.B, data[16+classes*features*8:])
	return nil
}

// readFloat64s fills dst from the little-endian encoding at the head of data.
func readFloat64s(dst []float64, data []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Model) UnmarshalBinary(data []byte) error {
	got, err := ReadModel(byteSliceReader{data: data, pos: new(int)})
	if err != nil {
		return err
	}
	*m = *got
	return nil
}

type byteSliceReader struct {
	data []byte
	pos  *int
}

func (r byteSliceReader) Read(p []byte) (int, error) {
	if *r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[*r.pos:])
	*r.pos += n
	return n, nil
}
