package ml

import (
	"fmt"
	"sync"

	"eefei/internal/dataset"
)

// evalChunk is the fixed row-block size evaluation passes are split into.
// Partial sums are always reduced in chunk order, so a metric's value
// depends only on this constant — never on how many workers computed the
// chunks. Changing it changes last-bit rounding of Loss.
const evalChunk = 256

// MinEvalRowsPerWorker is the spawn gate for evaluation fan-out: a parallel
// pass only spawns as many workers as leave each at least this many rows,
// mirroring mat's minRowsPerWorker. One evaluated row costs roughly a
// classes×features dot-product block — far less than a goroutine spawn —
// so small datasets (and small federated shards) evaluate sequentially.
// The gate only changes scheduling, never results: chunk/shard-order
// reduction keeps every worker count bit-identical.
const MinEvalRowsPerWorker = 512

// GatedWorkers caps a requested evaluation worker count so that each worker
// gets at least MinEvalRowsPerWorker of the rows, never returning less
// than 1. fl's shard-parallel global loss and the Evaluator's chunk
// fan-out share this gate.
func GatedWorkers(rows, workers int) int {
	if max := rows / MinEvalRowsPerWorker; workers > max {
		workers = max
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Evaluator computes dataset-level metrics (loss, accuracy) with reusable
// per-worker scratch buffers and optional data parallelism. The zero worker
// count evaluates inline on the calling goroutine.
//
// An Evaluator is not safe for concurrent use; it is meant to be owned by
// one evaluation loop (the federated engine keeps one per eval worker).
// Results are bit-for-bit identical for every worker count.
type Evaluator struct {
	workers int
	// m, d, and pass describe the in-flight evaluation; they are stored on
	// the struct (rather than captured by closures) so that a pass performs
	// zero heap allocations after warm-up.
	m    *Model
	d    *dataset.Dataset
	pass evalPass
	// scratch holds one batched-forward chunk scratch per worker; static
	// chunk assignment gives each exactly one owner.
	scratch []fwdScratch
	// sums buffers per-chunk partial results between the map and reduce
	// halves of a pass.
	sums []float64
	// hits buffers per-chunk correct-prediction counts for Accuracy.
	hits []int
	errs []error
}

// evalPass selects which metric(s) a chunk worker computes.
type evalPass int

const (
	passLoss evalPass = iota
	passAccuracy
	passMetrics
)

// NewEvaluator returns an evaluator that fans each pass out over up to
// workers goroutines; workers <= 1 evaluates inline.
func NewEvaluator(workers int) *Evaluator {
	if workers < 1 {
		workers = 1
	}
	return &Evaluator{workers: workers}
}

// prepare sizes the per-worker scratch for a pass over d with model m and
// returns the chunk count.
func (ev *Evaluator) prepare(m *Model, d *dataset.Dataset) (int, error) {
	if d.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("evaluate %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	chunks := (d.Len() + evalChunk - 1) / evalChunk
	if ev.scratch == nil {
		ev.scratch = make([]fwdScratch, ev.workers)
	}
	// The per-worker logits blocks themselves are sized inside the pass
	// (fwdScratch.ensureLogits), so idle workers of a gated pass never
	// allocate theirs.
	if cap(ev.sums) < chunks {
		ev.sums = make([]float64, chunks)
		ev.hits = make([]int, chunks)
		ev.errs = make([]error, chunks)
	}
	ev.sums = ev.sums[:chunks]
	ev.hits = ev.hits[:chunks]
	ev.errs = ev.errs[:chunks]
	return chunks, nil
}

// chunkWorker computes worker w's statically assigned chunks (w, w+workers,
// …) of the in-flight pass, writing per-chunk results into sums/hits/errs.
// Static assignment gives each scratch buffer exactly one owner.
func (ev *Evaluator) chunkWorker(w, workers int) {
	chunks := len(ev.sums)
	for chunk := w; chunk < chunks; chunk += workers {
		lo := chunk * evalChunk
		hi := lo + evalChunk
		if hi > ev.d.Len() {
			hi = ev.d.Len()
		}
		sc := &ev.scratch[w]
		wantLoss := ev.pass == passLoss || ev.pass == passMetrics
		wantHits := ev.pass == passAccuracy || ev.pass == passMetrics
		ev.sums[chunk], ev.hits[chunk], ev.errs[chunk] =
			forwardRowRange(ev.m, ev.d, lo, hi, sc, wantLoss, wantHits)
	}
}

// run executes one pass over every chunk of d and returns the first
// chunk-order error.
func (ev *Evaluator) run(m *Model, d *dataset.Dataset, pass evalPass) error {
	ev.m, ev.d, ev.pass = m, d, pass
	chunks := len(ev.sums)
	workers := GatedWorkers(d.Len(), ev.workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		ev.chunkWorker(0, 1)
	} else {
		// Kept out of line so the closure's captures (and the WaitGroup)
		// heap-allocate only when workers actually spawn; the sequential
		// path stays allocation-free.
		ev.runParallel(workers)
	}
	ev.m, ev.d = nil, nil
	for _, err := range ev.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runParallel fans the in-flight pass out over the given worker count.
func (ev *Evaluator) runParallel(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev.chunkWorker(w, workers)
		}(w)
	}
	wg.Wait()
}

// Loss computes the mean loss of m over d — the same metric as the
// package-level Loss, summed block-wise (see evalChunk).
func (ev *Evaluator) Loss(m *Model, d *dataset.Dataset) (float64, error) {
	if _, err := ev.prepare(m, d); err != nil {
		return 0, err
	}
	if err := ev.run(m, d, passLoss); err != nil {
		return 0, err
	}
	var total float64
	for _, s := range ev.sums {
		total += s
	}
	return total / float64(d.Len()), nil
}

// Accuracy computes the fraction of rows of d that m classifies correctly —
// the same metric as the package-level Accuracy, without materializing the
// prediction slice.
func (ev *Evaluator) Accuracy(m *Model, d *dataset.Dataset) (float64, error) {
	if _, err := ev.prepare(m, d); err != nil {
		return 0, err
	}
	if err := ev.run(m, d, passAccuracy); err != nil {
		return 0, err
	}
	total := 0
	for _, h := range ev.hits {
		total += h
	}
	return float64(total) / float64(d.Len()), nil
}

// Metrics computes mean loss and accuracy in one forward sweep — each chunk's
// logits block is reused for both the loss and the argmax — returning values
// bit-identical to calling Loss and Accuracy separately, at roughly half the
// compute.
func (ev *Evaluator) Metrics(m *Model, d *dataset.Dataset) (loss, accuracy float64, err error) {
	if _, err := ev.prepare(m, d); err != nil {
		return 0, 0, err
	}
	if err := ev.run(m, d, passMetrics); err != nil {
		return 0, 0, err
	}
	var total float64
	hits := 0
	for _, s := range ev.sums {
		total += s
	}
	for _, h := range ev.hits {
		hits += h
	}
	n := float64(d.Len())
	return total / n, float64(hits) / n, nil
}
