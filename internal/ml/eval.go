package ml

import (
	"fmt"
	"sync"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// evalChunk is the fixed row-block size evaluation passes are split into.
// Partial sums are always reduced in chunk order, so a metric's value
// depends only on this constant — never on how many workers computed the
// chunks. Changing it changes last-bit rounding of Loss.
const evalChunk = 256

// MinEvalRowsPerWorker is the spawn gate for evaluation fan-out: a parallel
// pass only spawns as many workers as leave each at least this many rows,
// mirroring mat's minRowsPerWorker. One evaluated row costs roughly a
// classes×features dot-product block — far less than a goroutine spawn —
// so small datasets (and small federated shards) evaluate sequentially.
// The gate only changes scheduling, never results: chunk/shard-order
// reduction keeps every worker count bit-identical.
const MinEvalRowsPerWorker = 512

// GatedWorkers caps a requested evaluation worker count so that each worker
// gets at least MinEvalRowsPerWorker of the rows, never returning less
// than 1. fl's shard-parallel global loss and the Evaluator's chunk
// fan-out share this gate.
func GatedWorkers(rows, workers int) int {
	if max := rows / MinEvalRowsPerWorker; workers > max {
		workers = max
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Evaluator computes dataset-level metrics (loss, accuracy) with reusable
// per-worker scratch buffers and optional data parallelism. The zero worker
// count evaluates inline on the calling goroutine.
//
// An Evaluator is not safe for concurrent use; it is meant to be owned by
// one evaluation loop (the federated engine keeps one per eval worker).
// Results are bit-for-bit identical for every worker count.
type Evaluator struct {
	workers int
	// m, d, and pass describe the in-flight evaluation; they are stored on
	// the struct (rather than captured by closures) so that a pass performs
	// zero heap allocations after warm-up.
	m    *Model
	d    *dataset.Dataset
	pass evalPass
	// scratch holds one classes-sized probability buffer per worker,
	// (re)sized lazily when the model shape changes.
	scratch [][]float64
	// sums buffers per-chunk partial results between the map and reduce
	// halves of a pass.
	sums []float64
	// hits buffers per-chunk correct-prediction counts for Accuracy.
	hits []int
	errs []error
}

// evalPass selects which metric a chunk worker computes.
type evalPass int

const (
	passLoss evalPass = iota
	passAccuracy
)

// NewEvaluator returns an evaluator that fans each pass out over up to
// workers goroutines; workers <= 1 evaluates inline.
func NewEvaluator(workers int) *Evaluator {
	if workers < 1 {
		workers = 1
	}
	return &Evaluator{workers: workers}
}

// prepare sizes the per-worker scratch for a pass over d with model m and
// returns the chunk count.
func (ev *Evaluator) prepare(m *Model, d *dataset.Dataset) (int, error) {
	if d.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("evaluate %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	chunks := (d.Len() + evalChunk - 1) / evalChunk
	if ev.scratch == nil {
		ev.scratch = make([][]float64, ev.workers)
	}
	for w := range ev.scratch {
		if len(ev.scratch[w]) != m.Classes() {
			ev.scratch[w] = make([]float64, m.Classes())
		}
	}
	if cap(ev.sums) < chunks {
		ev.sums = make([]float64, chunks)
		ev.hits = make([]int, chunks)
		ev.errs = make([]error, chunks)
	}
	ev.sums = ev.sums[:chunks]
	ev.hits = ev.hits[:chunks]
	ev.errs = ev.errs[:chunks]
	return chunks, nil
}

// chunkWorker computes worker w's statically assigned chunks (w, w+workers,
// …) of the in-flight pass, writing per-chunk results into sums/hits/errs.
// Static assignment gives each scratch buffer exactly one owner.
func (ev *Evaluator) chunkWorker(w, workers int) {
	chunks := len(ev.sums)
	for chunk := w; chunk < chunks; chunk += workers {
		lo := chunk * evalChunk
		hi := lo + evalChunk
		if hi > ev.d.Len() {
			hi = ev.d.Len()
		}
		switch ev.pass {
		case passLoss:
			ev.sums[chunk], ev.errs[chunk] = lossRowRange(ev.m, ev.d, lo, hi, ev.scratch[w])
		case passAccuracy:
			ev.hits[chunk], ev.errs[chunk] = accuracyRowRange(ev.m, ev.d, lo, hi, ev.scratch[w])
		}
	}
}

// run executes one pass over every chunk of d and returns the first
// chunk-order error.
func (ev *Evaluator) run(m *Model, d *dataset.Dataset, pass evalPass) error {
	ev.m, ev.d, ev.pass = m, d, pass
	chunks := len(ev.sums)
	workers := GatedWorkers(d.Len(), ev.workers)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		ev.chunkWorker(0, 1)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ev.chunkWorker(w, workers)
			}(w)
		}
		wg.Wait()
	}
	ev.m, ev.d = nil, nil
	for _, err := range ev.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// accuracyRowRange counts how many of rows [lo, hi) of d the model classifies
// correctly, using scores as logit scratch.
func accuracyRowRange(m *Model, d *dataset.Dataset, lo, hi int, scores []float64) (int, error) {
	correct := 0
	for i := lo; i < hi; i++ {
		if err := m.Logits(scores, d.X.Row(i)); err != nil {
			return 0, err
		}
		if mat.ArgMax(scores) == d.Labels[i] {
			correct++
		}
	}
	return correct, nil
}

// Loss computes the mean loss of m over d — the same metric as the
// package-level Loss, summed block-wise (see evalChunk).
func (ev *Evaluator) Loss(m *Model, d *dataset.Dataset) (float64, error) {
	if _, err := ev.prepare(m, d); err != nil {
		return 0, err
	}
	if err := ev.run(m, d, passLoss); err != nil {
		return 0, err
	}
	var total float64
	for _, s := range ev.sums {
		total += s
	}
	return total / float64(d.Len()), nil
}

// Accuracy computes the fraction of rows of d that m classifies correctly —
// the same metric as the package-level Accuracy, without materializing the
// prediction slice.
func (ev *Evaluator) Accuracy(m *Model, d *dataset.Dataset) (float64, error) {
	if _, err := ev.prepare(m, d); err != nil {
		return 0, err
	}
	if err := ev.run(m, d, passAccuracy); err != nil {
		return 0, err
	}
	total := 0
	for _, h := range ev.hits {
		total += h
	}
	return float64(total) / float64(d.Len()), nil
}
