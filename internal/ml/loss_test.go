package ml

import (
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

func twoClassToy(t *testing.T) *dataset.Dataset {
	t.Helper()
	// Two well-separated clusters in 2-D.
	x, err := mat.NewDenseData(6, 2, []float64{
		2, 2,
		2.5, 1.5,
		3, 2.5,
		-2, -2,
		-2.5, -1.5,
		-3, -2.5,
	})
	if err != nil {
		t.Fatalf("NewDenseData: %v", err)
	}
	return &dataset.Dataset{X: x, Labels: []int{0, 0, 0, 1, 1, 1}, Classes: 2}
}

func TestLossAtZeroIsLogClasses(t *testing.T) {
	// Softmax with zero weights assigns uniform probability 1/C, so the
	// cross-entropy is ln(C).
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	l, err := Loss(m, d)
	if err != nil {
		t.Fatalf("Loss: %v", err)
	}
	if math.Abs(l-math.Log(2)) > 1e-12 {
		t.Errorf("zero-model loss = %v, want ln 2 = %v", l, math.Log(2))
	}
}

func TestSigmoidLossAtZero(t *testing.T) {
	// Sigmoid head at zero weights: every class scores 0.5, so per sample the
	// loss is C·ln 2.
	d := twoClassToy(t)
	m := NewModel(2, 2, Sigmoid)
	l, err := Loss(m, d)
	if err != nil {
		t.Fatalf("Loss: %v", err)
	}
	if math.Abs(l-2*math.Log(2)) > 1e-12 {
		t.Errorf("zero-model sigmoid loss = %v, want 2·ln2", l)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	for _, act := range []Activation{Softmax, Sigmoid} {
		t.Run(act.String(), func(t *testing.T) {
			d := twoClassToy(t)
			m := NewModel(2, 2, act)
			// Non-trivial starting point.
			m.W.SetRow(0, []float64{0.1, -0.2})
			m.W.SetRow(1, []float64{-0.3, 0.4})
			m.B[0], m.B[1] = 0.05, -0.1

			grad := NewModel(2, 2, act)
			if _, err := Gradient(m, d, grad); err != nil {
				t.Fatalf("Gradient: %v", err)
			}

			const h = 1e-6
			check := func(get func() *float64, analytic float64, name string) {
				p := get()
				orig := *p
				*p = orig + h
				up, err := Loss(m, d)
				if err != nil {
					t.Fatalf("Loss: %v", err)
				}
				*p = orig - h
				down, err := Loss(m, d)
				if err != nil {
					t.Fatalf("Loss: %v", err)
				}
				*p = orig
				numeric := (up - down) / (2 * h)
				if math.Abs(numeric-analytic) > 1e-5 {
					t.Errorf("%s: analytic %v vs numeric %v", name, analytic, numeric)
				}
			}
			for c := 0; c < 2; c++ {
				for f := 0; f < 2; f++ {
					c, f := c, f
					check(func() *float64 { return &m.W.Row(c)[f] }, grad.W.At(c, f), "W")
				}
				c := c
				check(func() *float64 { return &m.B[c] }, grad.B[c], "B")
			}
		})
	}
}

func TestGradientReturnsLoss(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	grad := NewModel(2, 2, Softmax)
	viaGrad, err := Gradient(m, d, grad)
	if err != nil {
		t.Fatalf("Gradient: %v", err)
	}
	direct, err := Loss(m, d)
	if err != nil {
		t.Fatalf("Loss: %v", err)
	}
	if math.Abs(viaGrad-direct) > 1e-12 {
		t.Errorf("Gradient loss %v != Loss %v", viaGrad, direct)
	}
}

func TestGradientShapeErrors(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 3, Softmax) // wrong feature count
	grad := NewModel(2, 3, Softmax)
	if _, err := Gradient(m, d, grad); err == nil {
		t.Error("dimension mismatch must error")
	}
	m2 := NewModel(2, 2, Softmax)
	badGrad := NewModel(3, 2, Softmax)
	if _, err := Gradient(m2, d, badGrad); err == nil {
		t.Error("bad accumulator must error")
	}
}

func TestAccuracyAndConfusion(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	// A classifier aligned with the clusters: class 0 has positive coords.
	m.W.SetRow(0, []float64{1, 1})
	m.W.SetRow(1, []float64{-1, -1})
	acc, err := Accuracy(m, d)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc != 1 {
		t.Errorf("Accuracy = %v, want 1", acc)
	}
	cm, err := ConfusionMatrix(m, d)
	if err != nil {
		t.Fatalf("ConfusionMatrix: %v", err)
	}
	if cm.At(0, 0) != 3 || cm.At(1, 1) != 3 || cm.At(0, 1) != 0 || cm.At(1, 0) != 0 {
		t.Errorf("confusion = %v", cm)
	}
}

func TestGradientNormDecreasesNearOptimum(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	before, err := GradientNorm(m, d)
	if err != nil {
		t.Fatalf("GradientNorm: %v", err)
	}
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.5})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(m, d, 200); err != nil {
		t.Fatalf("Train: %v", err)
	}
	after, err := GradientNorm(m, d)
	if err != nil {
		t.Fatalf("GradientNorm: %v", err)
	}
	if after >= before {
		t.Errorf("gradient norm did not shrink: before %v, after %v", before, after)
	}
}
