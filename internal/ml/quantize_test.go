package ml

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"eefei/internal/mat"
)

func randomModel(seed uint64, classes, features int) *Model {
	rng := mat.NewRNG(seed)
	m := NewModel(classes, features, Softmax)
	for i := range m.W.RawData() {
		m.W.RawData()[i] = rng.NormScaled(0, 0.5)
	}
	for i := range m.B {
		m.B[i] = rng.NormScaled(0, 0.5)
	}
	return m
}

func TestQuantizeRoundTripWithinBound(t *testing.T) {
	for _, bits := range []QuantBits{Quant8, Quant16} {
		m := randomModel(1, 10, 64)
		data, err := QuantizeModel(m, bits)
		if err != nil {
			t.Fatalf("Quantize(%d): %v", bits, err)
		}
		back, err := DequantizeModel(data)
		if err != nil {
			t.Fatalf("Dequantize(%d): %v", bits, err)
		}
		if back.Classes() != 10 || back.Features() != 64 || back.Act != Softmax {
			t.Fatalf("shape lost: %dx%d %v", back.Classes(), back.Features(), back.Act)
		}
		bound := MaxQuantError(m, bits) * 1.01
		w, bw := m.W.RawData(), back.W.RawData()
		for i := range w {
			if math.Abs(w[i]-bw[i]) > bound {
				t.Fatalf("bits=%d: weight %d error %v exceeds bound %v",
					bits, i, math.Abs(w[i]-bw[i]), bound)
			}
		}
		for i := range m.B {
			if math.Abs(m.B[i]-back.B[i]) > bound {
				t.Fatalf("bits=%d: bias %d error exceeds bound", bits, i)
			}
		}
	}
}

func TestQuantize16TighterThan8(t *testing.T) {
	m := randomModel(2, 5, 20)
	e8 := MaxQuantError(m, Quant8)
	e16 := MaxQuantError(m, Quant16)
	if e16 >= e8 {
		t.Errorf("16-bit bound %v not tighter than 8-bit %v", e16, e8)
	}
	// Actual errors follow the same ordering.
	dist := func(bits QuantBits) float64 {
		data, err := QuantizeModel(m, bits)
		if err != nil {
			t.Fatalf("Quantize: %v", err)
		}
		back, err := DequantizeModel(data)
		if err != nil {
			t.Fatalf("Dequantize: %v", err)
		}
		return m.ParamDistance(back)
	}
	if dist(Quant16) >= dist(Quant8) {
		t.Error("16-bit reconstruction not better than 8-bit")
	}
}

func TestQuantizeZeroModel(t *testing.T) {
	m := NewModel(3, 4, Sigmoid)
	data, err := QuantizeModel(m, Quant8)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	back, err := DequantizeModel(data)
	if err != nil {
		t.Fatalf("Dequantize: %v", err)
	}
	if back.ParamDistance(m) != 0 {
		t.Error("zero model must round-trip exactly")
	}
	if back.Act != Sigmoid {
		t.Error("activation lost")
	}
}

func TestQuantizeRejectsBadInput(t *testing.T) {
	m := randomModel(3, 2, 2)
	if _, err := QuantizeModel(m, QuantBits(12)); !errors.Is(err, ErrQuantize) {
		t.Errorf("bad width = %v, want ErrQuantize", err)
	}
	m.W.Set(0, 0, math.NaN())
	if _, err := QuantizeModel(m, Quant8); !errors.Is(err, ErrQuantize) {
		t.Errorf("NaN = %v, want ErrQuantize", err)
	}
}

func TestDequantizeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"short":     {1, 2, 3},
		"bad magic": append([]byte("XXXX"), make([]byte, 30)...),
	}
	for name, data := range cases {
		if _, err := DequantizeModel(data); !errors.Is(err, ErrQuantize) {
			t.Errorf("%s = %v, want ErrQuantize", name, err)
		}
	}
	// Valid header, truncated body.
	m := randomModel(4, 2, 3)
	data, err := QuantizeModel(m, Quant8)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	if _, err := DequantizeModel(data[:len(data)-2]); !errors.Is(err, ErrQuantize) {
		t.Errorf("truncated = %v, want ErrQuantize", err)
	}
	// Trailing junk.
	if _, err := DequantizeModel(append(data, 0)); !errors.Is(err, ErrQuantize) {
		t.Errorf("trailing = %v, want ErrQuantize", err)
	}
}

func TestCompressionRatio(t *testing.T) {
	m := NewModel(10, 784, Softmax)
	r8 := CompressionRatio(m, Quant8)
	r16 := CompressionRatio(m, Quant16)
	if r8 < 7.5 || r8 > 8.5 {
		t.Errorf("8-bit ratio = %v, want ≈8", r8)
	}
	if r16 < 3.7 || r16 > 4.3 {
		t.Errorf("16-bit ratio = %v, want ≈4", r16)
	}
	data, err := QuantizeModel(m, Quant8)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	if len(data) != QuantizedSize(10, 784, Quant8) {
		t.Errorf("payload %d bytes, QuantizedSize says %d", len(data), QuantizedSize(10, 784, Quant8))
	}
}

func TestQuantizedModelStillAccurate(t *testing.T) {
	// Train a model, quantize at 8 bits, and verify the accuracy drop on the
	// training toy set is negligible — the premise of the upload-energy
	// ablation.
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.5})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(m, d, 100); err != nil {
		t.Fatalf("Train: %v", err)
	}
	data, err := QuantizeModel(m, Quant8)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	back, err := DequantizeModel(data)
	if err != nil {
		t.Fatalf("Dequantize: %v", err)
	}
	accFull, err := Accuracy(m, d)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	accQuant, err := Accuracy(back, d)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if accQuant < accFull-1e-9 {
		t.Errorf("quantized accuracy %v below full-precision %v", accQuant, accFull)
	}
}

// Property: round-trip error never exceeds the documented bound for random
// shapes and widths.
func TestQuantErrorBoundProperty(t *testing.T) {
	f := func(seed uint64, wide bool) bool {
		bits := Quant8
		if wide {
			bits = Quant16
		}
		rng := mat.NewRNG(seed)
		m := randomModel(seed, 1+rng.Intn(6), 1+rng.Intn(30))
		data, err := QuantizeModel(m, bits)
		if err != nil {
			return false
		}
		back, err := DequantizeModel(data)
		if err != nil {
			return false
		}
		bound := MaxQuantError(m, bits) * 1.01
		w, bw := m.W.RawData(), back.W.RawData()
		for i := range w {
			if math.Abs(w[i]-bw[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
