package ml

import (
	"fmt"
	"math"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// epsLog floors probabilities inside logarithms so a saturated sigmoid or
// softmax cannot produce -Inf loss.
const epsLog = 1e-12

// Loss computes the mean loss of the model over d: cross-entropy for the
// softmax head, summed per-class binary cross-entropy for the sigmoid head.
// This is the F_k(ω) of the paper's Eq. (1).
//
// Loss allocates one chunk scratch per call; evaluation loops should hold an
// Evaluator, which reuses its scratch and can shard the pass over workers.
func Loss(m *Model, d *dataset.Dataset) (float64, error) {
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("loss on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	var sc fwdScratch
	total, _, err := forwardRowRange(m, d, 0, d.Len(), &sc, true, false)
	if err != nil {
		return 0, err
	}
	return total / float64(d.Len()), nil
}

// sampleLoss returns one sample's loss given its class probabilities.
func sampleLoss(act Activation, probs []float64, y int) float64 {
	var total float64
	switch act {
	case Sigmoid:
		for c, p := range probs {
			if c == y {
				total -= math.Log(math.Max(p, epsLog))
			} else {
				total -= math.Log(math.Max(1-p, epsLog))
			}
		}
	default:
		total -= math.Log(math.Max(probs[y], epsLog))
	}
	return total
}

// Gradient accumulates the mean gradient of the loss over the rows of d into
// grad (a model-shaped accumulator that the caller typically zeroes first),
// and returns the mean loss computed in the same pass.
//
// For both heads the per-sample gradient has the classic linear-model form
// (p − t)·xᵀ where t is the one-hot target, because the softmax/CE and
// sigmoid/BCE pairings share that derivative.
func Gradient(m *Model, d *dataset.Dataset, grad *Model) (float64, error) {
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("gradient on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	if grad.Classes() != m.Classes() || grad.Features() != m.Features() {
		return 0, fmt.Errorf("gradient accumulator %dx%d for model %dx%d: %w",
			grad.Classes(), grad.Features(), m.Classes(), m.Features(), ErrModelShape)
	}
	var sc fwdScratch
	return gradientRows(m, d, nil, grad, &sc)
}

// gradientRows accumulates the mean gradient over the given rows of d (nil
// rows selects every row) into grad using the caller's chunk scratch, and
// returns the mean loss over the same rows. It is the allocation-free core
// the SGD epoch loop runs: mini-batches pass permutation slices directly
// instead of materializing subset datasets.
//
// The pass is blocked like the evaluation forward: each evalChunk row-block
// gets its logits from one X_chunk·Wᵀ product, the probability rows are
// turned into deltas in place (p, or p−1 at the label), and the weight
// gradient takes the whole block's outer-product update through one
// mat.AddMulTA call. Per gradient element the contributions land in sample
// order with the same delta·invN coefficients (zero coefficients skipped) as
// the sequential per-sample Axpy formulation, so the result is bit-identical
// to it.
func gradientRows(m *Model, d *dataset.Dataset, rows []int, grad *Model, sc *fwdScratch) (float64, error) {
	n := d.Len()
	if rows != nil {
		n = len(rows)
	}
	if n == 0 {
		return 0, dataset.ErrEmpty
	}
	logits := sc.ensureLogits(m.Classes())
	var totalLoss float64
	invN := 1 / float64(n)
	for blo := 0; blo < n; blo += evalChunk {
		bhi := blo + evalChunk
		if bhi > n {
			bhi = n
		}
		// x is the block's sample matrix: a contiguous view for the
		// full-dataset pass, or the gather buffer for permutation slices.
		var x mat.Dense
		if rows == nil {
			x = d.X.SliceRows(blo, bhi)
		} else {
			xg := sc.ensureX(m.Features())
			for r, i := range rows[blo:bhi] {
				if i < 0 || i >= d.Len() {
					return 0, fmt.Errorf("gradient row %d outside [0,%d): %w", i, d.Len(), ErrModelShape)
				}
				copy(xg.Row(r), d.X.Row(i))
			}
			x = xg.SliceRows(0, bhi-blo)
		}
		lg := logits.SliceRows(0, bhi-blo)
		if err := mat.MulT(&lg, &x, m.W); err != nil {
			return 0, fmt.Errorf("batched logits: %w", err)
		}
		for r := 0; r < lg.Rows(); r++ {
			row := lg.Row(r)
			mat.Axpy(row, 1, m.B)
			switch m.Act {
			case Sigmoid:
				for i, z := range row {
					row[i] = sigmoid(z)
				}
			default:
				softmaxInPlace(row)
			}
			y := d.Labels[blo+r]
			if rows != nil {
				y = d.Labels[rows[blo+r]]
			}
			totalLoss += sampleLoss(m.Act, row, y)
			row[y] -= 1
			for c, delta := range row {
				grad.B[c] += delta * invN
			}
		}
		if err := mat.AddMulTA(grad.W, &lg, &x, invN); err != nil {
			return 0, fmt.Errorf("gradient accumulate: %w", err)
		}
	}
	return totalLoss * invN, nil
}

// GradientNorm returns ‖∇F(ω)‖₂ over d, used when estimating the bound
// constant σ² (variance of stochastic gradients at the optimum).
func GradientNorm(m *Model, d *dataset.Dataset) (float64, error) {
	grad := NewModel(m.Classes(), m.Features(), m.Act)
	if _, err := Gradient(m, d, grad); err != nil {
		return 0, err
	}
	zero := NewModel(m.Classes(), m.Features(), m.Act)
	return grad.ParamDistance(zero), nil
}

// Accuracy returns the fraction of samples in d the model classifies
// correctly.
func Accuracy(m *Model, d *dataset.Dataset) (float64, error) {
	preds, err := m.PredictBatch(d)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// ConfusionMatrix returns the classes×classes count matrix with true labels
// on rows and predictions on columns.
func ConfusionMatrix(m *Model, d *dataset.Dataset) (*mat.Dense, error) {
	preds, err := m.PredictBatch(d)
	if err != nil {
		return nil, err
	}
	cm := mat.NewDense(d.Classes, d.Classes)
	for i, p := range preds {
		cm.Set(d.Labels[i], p, cm.At(d.Labels[i], p)+1)
	}
	return cm, nil
}
