package ml

import (
	"fmt"
	"math"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// epsLog floors probabilities inside logarithms so a saturated sigmoid or
// softmax cannot produce -Inf loss.
const epsLog = 1e-12

// Loss computes the mean loss of the model over d: cross-entropy for the
// softmax head, summed per-class binary cross-entropy for the sigmoid head.
// This is the F_k(ω) of the paper's Eq. (1).
//
// Loss allocates one probability scratch per call; evaluation loops should
// hold an Evaluator, which reuses its scratch and can shard the pass over
// workers.
func Loss(m *Model, d *dataset.Dataset) (float64, error) {
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("loss on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	probs := make([]float64, m.Classes())
	total, err := lossRowRange(m, d, 0, d.Len(), probs)
	if err != nil {
		return 0, err
	}
	return total / float64(d.Len()), nil
}

// lossRowRange sums (not averages) the per-sample loss over rows [lo, hi)
// using the caller's probability scratch.
func lossRowRange(m *Model, d *dataset.Dataset, lo, hi int, probs []float64) (float64, error) {
	var total float64
	for i := lo; i < hi; i++ {
		if err := m.Probabilities(probs, d.X.Row(i)); err != nil {
			return 0, err
		}
		total += sampleLoss(m.Act, probs, d.Labels[i])
	}
	return total, nil
}

// sampleLoss returns one sample's loss given its class probabilities.
func sampleLoss(act Activation, probs []float64, y int) float64 {
	var total float64
	switch act {
	case Sigmoid:
		for c, p := range probs {
			if c == y {
				total -= math.Log(math.Max(p, epsLog))
			} else {
				total -= math.Log(math.Max(1-p, epsLog))
			}
		}
	default:
		total -= math.Log(math.Max(probs[y], epsLog))
	}
	return total
}

// Gradient accumulates the mean gradient of the loss over the rows of d into
// grad (a model-shaped accumulator that the caller typically zeroes first),
// and returns the mean loss computed in the same pass.
//
// For both heads the per-sample gradient has the classic linear-model form
// (p − t)·xᵀ where t is the one-hot target, because the softmax/CE and
// sigmoid/BCE pairings share that derivative.
func Gradient(m *Model, d *dataset.Dataset, grad *Model) (float64, error) {
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("gradient on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	if grad.Classes() != m.Classes() || grad.Features() != m.Features() {
		return 0, fmt.Errorf("gradient accumulator %dx%d for model %dx%d: %w",
			grad.Classes(), grad.Features(), m.Classes(), m.Features(), ErrModelShape)
	}
	return gradientRows(m, d, nil, grad, make([]float64, m.Classes()))
}

// gradientRows accumulates the mean gradient over the given rows of d (nil
// rows selects every row) into grad using the caller's probability scratch,
// and returns the mean loss over the same rows. It is the allocation-free
// core the SGD epoch loop runs: mini-batches pass permutation slices
// directly instead of materializing subset datasets.
func gradientRows(m *Model, d *dataset.Dataset, rows []int, grad *Model, probs []float64) (float64, error) {
	n := d.Len()
	if rows != nil {
		n = len(rows)
	}
	if n == 0 {
		return 0, dataset.ErrEmpty
	}
	var totalLoss float64
	invN := 1 / float64(n)
	for ii := 0; ii < n; ii++ {
		i := ii
		if rows != nil {
			i = rows[ii]
			if i < 0 || i >= d.Len() {
				return 0, fmt.Errorf("gradient row %d outside [0,%d): %w", i, d.Len(), ErrModelShape)
			}
		}
		x := d.X.Row(i)
		if err := m.Probabilities(probs, x); err != nil {
			return 0, err
		}
		y := d.Labels[i]
		totalLoss += sampleLoss(m.Act, probs, y)
		for c, p := range probs {
			delta := p
			if c == y {
				delta = p - 1
			}
			mat.Axpy(grad.W.Row(c), delta*invN, x)
			grad.B[c] += delta * invN
		}
	}
	return totalLoss * invN, nil
}

// GradientNorm returns ‖∇F(ω)‖₂ over d, used when estimating the bound
// constant σ² (variance of stochastic gradients at the optimum).
func GradientNorm(m *Model, d *dataset.Dataset) (float64, error) {
	grad := NewModel(m.Classes(), m.Features(), m.Act)
	if _, err := Gradient(m, d, grad); err != nil {
		return 0, err
	}
	zero := NewModel(m.Classes(), m.Features(), m.Act)
	return grad.ParamDistance(zero), nil
}

// Accuracy returns the fraction of samples in d the model classifies
// correctly.
func Accuracy(m *Model, d *dataset.Dataset) (float64, error) {
	preds, err := m.PredictBatch(d)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// ConfusionMatrix returns the classes×classes count matrix with true labels
// on rows and predictions on columns.
func ConfusionMatrix(m *Model, d *dataset.Dataset) (*mat.Dense, error) {
	preds, err := m.PredictBatch(d)
	if err != nil {
		return nil, err
	}
	cm := mat.NewDense(d.Classes, d.Classes)
	for i, p := range preds {
		cm.Set(d.Labels[i], p, cm.At(d.Labels[i], p)+1)
	}
	return cm, nil
}
