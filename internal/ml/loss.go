package ml

import (
	"fmt"
	"math"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// epsLog floors probabilities inside logarithms so a saturated sigmoid or
// softmax cannot produce -Inf loss.
const epsLog = 1e-12

// Loss computes the mean loss of the model over d: cross-entropy for the
// softmax head, summed per-class binary cross-entropy for the sigmoid head.
// This is the F_k(ω) of the paper's Eq. (1).
func Loss(m *Model, d *dataset.Dataset) (float64, error) {
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("loss on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	probs := make([]float64, m.Classes())
	var total float64
	for i := 0; i < d.Len(); i++ {
		if err := m.Probabilities(probs, d.X.Row(i)); err != nil {
			return 0, err
		}
		y := d.Labels[i]
		switch m.Act {
		case Sigmoid:
			for c, p := range probs {
				if c == y {
					total -= math.Log(math.Max(p, epsLog))
				} else {
					total -= math.Log(math.Max(1-p, epsLog))
				}
			}
		default:
			total -= math.Log(math.Max(probs[y], epsLog))
		}
	}
	return total / float64(d.Len()), nil
}

// Gradient accumulates the mean gradient of the loss over the rows of d into
// grad (a model-shaped accumulator that the caller typically zeroes first),
// and returns the mean loss computed in the same pass.
//
// For both heads the per-sample gradient has the classic linear-model form
// (p − t)·xᵀ where t is the one-hot target, because the softmax/CE and
// sigmoid/BCE pairings share that derivative.
func Gradient(m *Model, d *dataset.Dataset, grad *Model) (float64, error) {
	if d.Dim() != m.Features() {
		return 0, fmt.Errorf("gradient on %d-dim data with %d-dim model: %w", d.Dim(), m.Features(), ErrModelShape)
	}
	if grad.Classes() != m.Classes() || grad.Features() != m.Features() {
		return 0, fmt.Errorf("gradient accumulator %dx%d for model %dx%d: %w",
			grad.Classes(), grad.Features(), m.Classes(), m.Features(), ErrModelShape)
	}
	probs := make([]float64, m.Classes())
	var totalLoss float64
	invN := 1 / float64(d.Len())
	for i := 0; i < d.Len(); i++ {
		x := d.X.Row(i)
		if err := m.Probabilities(probs, x); err != nil {
			return 0, err
		}
		y := d.Labels[i]
		switch m.Act {
		case Sigmoid:
			for c, p := range probs {
				if c == y {
					totalLoss -= math.Log(math.Max(p, epsLog))
				} else {
					totalLoss -= math.Log(math.Max(1-p, epsLog))
				}
			}
		default:
			totalLoss -= math.Log(math.Max(probs[y], epsLog))
		}
		for c, p := range probs {
			delta := p
			if c == y {
				delta = p - 1
			}
			mat.Axpy(grad.W.Row(c), delta*invN, x)
			grad.B[c] += delta * invN
		}
	}
	return totalLoss * invN, nil
}

// GradientNorm returns ‖∇F(ω)‖₂ over d, used when estimating the bound
// constant σ² (variance of stochastic gradients at the optimum).
func GradientNorm(m *Model, d *dataset.Dataset) (float64, error) {
	grad := NewModel(m.Classes(), m.Features(), m.Act)
	if _, err := Gradient(m, d, grad); err != nil {
		return 0, err
	}
	zero := NewModel(m.Classes(), m.Features(), m.Act)
	return grad.ParamDistance(zero), nil
}

// Accuracy returns the fraction of samples in d the model classifies
// correctly.
func Accuracy(m *Model, d *dataset.Dataset) (float64, error) {
	preds, err := m.PredictBatch(d)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// ConfusionMatrix returns the classes×classes count matrix with true labels
// on rows and predictions on columns.
func ConfusionMatrix(m *Model, d *dataset.Dataset) (*mat.Dense, error) {
	preds, err := m.PredictBatch(d)
	if err != nil {
		return nil, err
	}
	cm := mat.NewDense(d.Classes, d.Classes)
	for i, p := range preds {
		cm.Set(d.Labels[i], p, cm.At(d.Labels[i], p)+1)
	}
	return cm, nil
}
