package ml

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
)

func TestNewSGDValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     SGDConfig
		wantErr bool
	}{
		{"default ok", DefaultSGDConfig(), false},
		{"zero lr", SGDConfig{LearningRate: 0}, true},
		{"negative lr", SGDConfig{LearningRate: -1}, true},
		{"decay above 1", SGDConfig{LearningRate: 0.1, Decay: 1.5}, true},
		{"negative batch", SGDConfig{LearningRate: 0.1, BatchSize: -1}, true},
		{"no decay ok", SGDConfig{LearningRate: 0.1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSGD(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewSGD err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSGDReducesLoss(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.2})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	losses, err := sgd.Train(m, d, 50)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: first %v, last %v", losses[0], losses[len(losses)-1])
	}
	acc, err := Accuracy(m, d)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc != 1 {
		t.Errorf("separable toy accuracy = %v, want 1", acc)
	}
}

func TestSGDMonotoneOnConvexFullBatch(t *testing.T) {
	// Full-batch GD with a small step on a convex loss must be monotone.
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.05})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	losses, err := sgd.Train(m, d, 100)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i := 1; i < len(losses); i++ {
		if losses[i] > losses[i-1]+1e-12 {
			t.Fatalf("loss increased at epoch %d: %v -> %v", i, losses[i-1], losses[i])
		}
	}
}

func TestSGDDecaySchedule(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.01, Decay: 0.99, DecayEvery: 1})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(m, d, 10); err != nil {
		t.Fatalf("Train: %v", err)
	}
	want := 0.01 * math.Pow(0.99, 10)
	if math.Abs(sgd.LearningRate()-want) > 1e-15 {
		t.Errorf("lr after 10 epochs = %v, want %v", sgd.LearningRate(), want)
	}
	if sgd.EpochsRun() != 10 {
		t.Errorf("EpochsRun = %d, want 10", sgd.EpochsRun())
	}
}

func TestSGDDecayEveryE(t *testing.T) {
	// Decaying once per E epochs (per global round, as the paper does).
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.01, Decay: 0.9, DecayEvery: 5})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(m, d, 9); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if math.Abs(sgd.LearningRate()-0.009) > 1e-15 {
		t.Errorf("lr after 9 epochs with DecayEvery=5 = %v, want 0.009", sgd.LearningRate())
	}
}

func TestSGDMiniBatchTrains(t *testing.T) {
	d := twoClassToy(t)
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.1, BatchSize: 2, Seed: 7})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	losses, err := sgd.Train(m, d, 40)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("mini-batch loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestSGDDeterministicAcrossRuns(t *testing.T) {
	d := twoClassToy(t)
	run := func() *Model {
		m := NewModel(2, 2, Softmax)
		sgd, err := NewSGD(SGDConfig{LearningRate: 0.1, BatchSize: 2, Seed: 3})
		if err != nil {
			t.Fatalf("NewSGD: %v", err)
		}
		if _, err := sgd.Train(m, d, 10); err != nil {
			t.Fatalf("Train: %v", err)
		}
		return m
	}
	if run().ParamDistance(run()) != 0 {
		t.Error("same-seed training must be bit-identical")
	}
}

func TestSGDEmptyDataset(t *testing.T) {
	m := NewModel(2, 2, Softmax)
	sgd, err := NewSGD(DefaultSGDConfig())
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Epoch(m, &dataset.Dataset{}); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("empty dataset = %v, want ErrEmpty", err)
	}
}

func TestSGDTrainBadEpochs(t *testing.T) {
	sgd, err := NewSGD(DefaultSGDConfig())
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(NewModel(2, 2, Softmax), twoClassToy(t), 0); err == nil {
		t.Error("0 epochs must error")
	}
}

func TestTrainOnSyntheticDigits(t *testing.T) {
	// End-to-end: the classifier must reach solid accuracy on the synthetic
	// MNIST substitute — this is the substrate of the paper's Fig. 4.
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 1000
	train, test, err := dataset.SynthesizePair(cfg, cfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	m := NewModel(train.Classes, train.Dim(), Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.5, Decay: 0.999, DecayEvery: 1})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(m, train, 150); err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc, err := Accuracy(m, test)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc < 0.85 {
		t.Errorf("synthetic-digit test accuracy = %.3f, want >= 0.85", acc)
	}
}
