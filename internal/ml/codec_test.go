package ml

import (
	"bytes"
	"math"
	"testing"
)

// The zero-copy codec paths (AppendBinary / UnmarshalBinaryReuse /
// AppendQuantized / DequantizeInto) exist so the wire protocol can encode
// into pooled frame buffers and decode into long-lived scratch models. They
// must stay byte-identical to the allocating paths and allocation-free once
// the scratch has warmed up.

func TestAppendBinaryMatchesMarshal(t *testing.T) {
	m := randomModel(3, 7, 13)
	want, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got := m.AppendBinary(nil)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendBinary diverges from MarshalBinary")
	}
	if len(got) != m.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", m.EncodedSize(), len(got))
	}
	// Appending after a prefix must leave the prefix alone.
	pre := []byte{9, 9, 9}
	full := m.AppendBinary(pre)
	if !bytes.Equal(full[:3], pre[:3]) || !bytes.Equal(full[3:], want) {
		t.Fatal("AppendBinary clobbered the destination prefix")
	}
}

func TestUnmarshalBinaryReuseRoundTrip(t *testing.T) {
	m := randomModel(11, 5, 9)
	data := m.AppendBinary(nil)

	var fresh Model
	if err := fresh.UnmarshalBinaryReuse(data); err != nil {
		t.Fatalf("decode into zero model: %v", err)
	}
	if fresh.ParamDistance(m) != 0 || fresh.Act != m.Act {
		t.Fatal("decode into zero model lost parameters")
	}

	// Reuse: same shape decodes into the existing storage.
	scratch := NewModel(5, 9, Sigmoid)
	w0, b0 := &scratch.W.RawData()[0], &scratch.B[0]
	if err := scratch.UnmarshalBinaryReuse(data); err != nil {
		t.Fatalf("decode into scratch: %v", err)
	}
	if scratch.ParamDistance(m) != 0 || scratch.Act != Softmax {
		t.Fatal("decode into scratch lost parameters")
	}
	if w0 != &scratch.W.RawData()[0] || b0 != &scratch.B[0] {
		t.Fatal("matching-shape decode reallocated the parameter storage")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := scratch.UnmarshalBinaryReuse(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm UnmarshalBinaryReuse allocates %.1f/op, want 0", allocs)
	}

	// Shape change falls back to fresh storage.
	other := randomModel(2, 3, 4)
	if err := scratch.UnmarshalBinaryReuse(other.AppendBinary(nil)); err != nil {
		t.Fatalf("decode across shapes: %v", err)
	}
	if scratch.ParamDistance(other) != 0 {
		t.Fatal("cross-shape decode lost parameters")
	}
}

func TestUnmarshalBinaryReuseRejectsGarbage(t *testing.T) {
	good := randomModel(1, 2, 3).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:10],
		"bad magic":  append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated":  good[:len(good)-1],
		"trailing":   append(bytes.Clone(good), 0),
		"zero shape": {'E', 'F', 'M', 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"huge shape": {'E', 'F', 'M', 1, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		var m Model
		if err := m.UnmarshalBinaryReuse(data); err == nil {
			t.Errorf("%s: decode accepted garbage", name)
		}
	}
}

func TestAppendQuantizedMatchesQuantizeModel(t *testing.T) {
	m := randomModel(5, 6, 8)
	for _, bits := range []QuantBits{Quant8, Quant16} {
		want, err := QuantizeModel(m, bits)
		if err != nil {
			t.Fatalf("QuantizeModel(%d): %v", bits, err)
		}
		got, err := AppendQuantized(nil, m, bits)
		if err != nil {
			t.Fatalf("AppendQuantized(%d): %v", bits, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("AppendQuantized(%d) diverges from QuantizeModel", bits)
		}
		pre := []byte{7}
		full, err := AppendQuantized(pre, m, bits)
		if err != nil {
			t.Fatalf("AppendQuantized with prefix: %v", err)
		}
		if full[0] != 7 || !bytes.Equal(full[1:], want) {
			t.Errorf("AppendQuantized(%d) clobbered the destination prefix", bits)
		}
	}
	if _, err := AppendQuantized(nil, m, 12); err == nil {
		t.Error("bits=12 must be rejected")
	}
}

func TestDequantizeIntoReuse(t *testing.T) {
	m := randomModel(9, 4, 6)
	data, err := QuantizeModel(m, Quant16)
	if err != nil {
		t.Fatalf("QuantizeModel: %v", err)
	}
	ref, err := DequantizeModel(data)
	if err != nil {
		t.Fatalf("DequantizeModel: %v", err)
	}
	scratch := NewModel(4, 6, Softmax)
	w0 := &scratch.W.RawData()[0]
	if err := scratch.DequantizeInto(data); err != nil {
		t.Fatalf("DequantizeInto: %v", err)
	}
	if scratch.ParamDistance(ref) != 0 {
		t.Fatal("DequantizeInto diverges from DequantizeModel")
	}
	if w0 != &scratch.W.RawData()[0] {
		t.Fatal("matching-shape dequantize reallocated the storage")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := scratch.DequantizeInto(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm DequantizeInto allocates %.1f/op, want 0", allocs)
	}
	if err := scratch.DequantizeInto(data[:len(data)-1]); err == nil {
		t.Error("truncated payload must be rejected")
	}
	if math.IsNaN(scratch.B[0]) {
		t.Error("failed decode left NaN in scratch")
	}
}
