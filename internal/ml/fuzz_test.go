package ml

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// Fuzzers for the two binary model decoders: corrupt payloads must error,
// never panic or over-allocate.

func FuzzReadModel(f *testing.F) {
	m := NewModel(3, 5, Softmax)
	m.W.Fill(0.5)
	good, err := m.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("EFM\x01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var back Model
		if err := back.UnmarshalBinary(data); err == nil {
			if back.Classes() <= 0 || back.Features() <= 0 {
				t.Fatal("accepted a model with non-positive dims")
			}
			if back.ParamCount() > 1<<26+1<<13 {
				t.Fatal("accepted an over-sized model")
			}
		}
	})
}

func FuzzDequantizeModel(f *testing.F) {
	m := NewModel(3, 5, Softmax)
	m.W.Fill(0.25)
	for _, bits := range []QuantBits{Quant8, Quant16} {
		data, err := QuantizeModel(m, bits)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("EFQ\x01short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := DequantizeModel(data)
		if err == nil {
			if back.Classes() <= 0 || back.Features() <= 0 {
				t.Fatal("accepted a model with non-positive dims")
			}
			for _, v := range back.W.RawData() {
				if v != v { // NaN check without importing math
					t.Fatal("dequantized NaN weight")
				}
			}
		}
	})
}

// FuzzBatchedForward drives the chunked-GEMM forward pass over randomized
// (rows, features, classes) shapes and data: it must never panic, must match
// the per-sample sequential reference bit for bit (loss sum, hit count, and
// batch predictions), and must reject shape mismatches with ErrModelShape.
func FuzzBatchedForward(f *testing.F) {
	f.Add(uint16(1), uint8(1), uint8(2), uint64(1), false)
	f.Add(uint16(256), uint8(64), uint8(10), uint64(7), false)
	f.Add(uint16(257), uint8(3), uint8(5), uint64(9), true)
	f.Add(uint16(600), uint8(17), uint8(12), uint64(42), false)
	f.Fuzz(func(t *testing.T, rowsRaw uint16, featRaw, classRaw uint8, seed uint64, sigmoidHead bool) {
		rows := 1 + int(rowsRaw)%600
		features := 1 + int(featRaw)%64
		classes := 2 + int(classRaw)%11
		act := Softmax
		if sigmoidHead {
			act = Sigmoid
		}
		rng := mat.NewRNG(seed)
		x := mat.NewDense(rows, features)
		for i := range x.RawData() {
			x.RawData()[i] = rng.Norm()
		}
		labels := make([]int, rows)
		for i := range labels {
			labels[i] = rng.Intn(classes)
		}
		d := &dataset.Dataset{X: x, Labels: labels, Classes: classes}
		m := NewModel(classes, features, act)
		for i := range m.W.RawData() {
			m.W.RawData()[i] = 0.2 * rng.Norm()
		}
		for i := range m.B {
			m.B[i] = 0.1 * rng.Norm()
		}

		var sc fwdScratch
		lossSum, hits, err := forwardRowRange(m, d, 0, rows, &sc, true, true)
		if err != nil {
			t.Fatalf("forwardRowRange(%dx%d, %d classes): %v", rows, features, classes, err)
		}
		probs := make([]float64, classes)
		var wantLoss float64
		wantHits := 0
		for i := 0; i < rows; i++ {
			if err := m.Logits(probs, d.X.Row(i)); err != nil {
				t.Fatalf("Logits(%d): %v", i, err)
			}
			if mat.ArgMax(probs) == labels[i] {
				wantHits++
			}
			if err := m.Probabilities(probs, d.X.Row(i)); err != nil {
				t.Fatalf("Probabilities(%d): %v", i, err)
			}
			wantLoss += sampleLoss(act, probs, labels[i])
		}
		if math.Float64bits(lossSum) != math.Float64bits(wantLoss) {
			t.Fatalf("%dx%dx%d %v: batched loss %v differs bitwise from per-sample reference %v",
				rows, features, classes, act, lossSum, wantLoss)
		}
		if hits != wantHits {
			t.Fatalf("%dx%dx%d: batched hits %d, reference %d", rows, features, classes, hits, wantHits)
		}
		preds, err := m.PredictBatch(d)
		if err != nil {
			t.Fatalf("PredictBatch: %v", err)
		}
		for i := range preds {
			want, err := m.Predict(d.X.Row(i))
			if err != nil {
				t.Fatalf("Predict(%d): %v", i, err)
			}
			if preds[i] != want {
				t.Fatalf("row %d: PredictBatch %d, Predict %d", i, preds[i], want)
			}
		}

		// Shape mismatches must surface as ErrModelShape, never a panic.
		wrong := NewModel(classes, features+1, act)
		if _, _, err := forwardRowRange(wrong, d, 0, rows, &sc, true, true); !errors.Is(err, ErrModelShape) && !errors.Is(err, mat.ErrShape) {
			t.Fatalf("feature mismatch = %v, want a shape error", err)
		}
		if _, err := wrong.PredictBatch(d); !errors.Is(err, ErrModelShape) {
			t.Fatalf("PredictBatch mismatch = %v, want ErrModelShape", err)
		}
	})
}
