package ml

import (
	"testing"
)

// Fuzzers for the two binary model decoders: corrupt payloads must error,
// never panic or over-allocate.

func FuzzReadModel(f *testing.F) {
	m := NewModel(3, 5, Softmax)
	m.W.Fill(0.5)
	good, err := m.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("EFM\x01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var back Model
		if err := back.UnmarshalBinary(data); err == nil {
			if back.Classes() <= 0 || back.Features() <= 0 {
				t.Fatal("accepted a model with non-positive dims")
			}
			if back.ParamCount() > 1<<26+1<<13 {
				t.Fatal("accepted an over-sized model")
			}
		}
	})
}

func FuzzDequantizeModel(f *testing.F) {
	m := NewModel(3, 5, Softmax)
	m.W.Fill(0.25)
	for _, bits := range []QuantBits{Quant8, Quant16} {
		data, err := QuantizeModel(m, bits)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("EFQ\x01short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := DequantizeModel(data)
		if err == nil {
			if back.Classes() <= 0 || back.Features() <= 0 {
				t.Fatal("accepted a model with non-positive dims")
			}
			for _, v := range back.W.RawData() {
				if v != v { // NaN check without importing math
					t.Fatal("dequantized NaN weight")
				}
			}
		}
	})
}
