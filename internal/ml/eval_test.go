package ml

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// evalFixture builds a trained-ish model and dataset large enough to span
// several evaluation chunks.
func evalFixture(t testing.TB, act Activation) (*Model, *dataset.Dataset) {
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 1200
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	m := NewModel(d.Classes, d.Dim(), act)
	rng := mat.NewRNG(7)
	for i := range m.W.RawData() {
		m.W.RawData()[i] = 0.05 * rng.Norm()
	}
	return m, d
}

func TestEvaluatorLossMatchesSequentialBitIdentical(t *testing.T) {
	for _, act := range []Activation{Softmax, Sigmoid} {
		m, d := evalFixture(t, act)
		want, err := NewEvaluator(1).Loss(m, d)
		if err != nil {
			t.Fatalf("sequential Loss: %v", err)
		}
		for _, workers := range []int{2, 3, 8, 100} {
			ev := NewEvaluator(workers)
			for pass := 0; pass < 2; pass++ { // second pass exercises scratch reuse
				got, err := ev.Loss(m, d)
				if err != nil {
					t.Fatalf("Loss(workers=%d): %v", workers, err)
				}
				if got != want {
					t.Errorf("%v workers=%d pass %d: loss %v != sequential %v", act, workers, pass, got, want)
				}
			}
		}
	}
}

func TestEvaluatorAccuracyMatchesPackageFunc(t *testing.T) {
	m, d := evalFixture(t, Softmax)
	want, err := Accuracy(m, d)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := NewEvaluator(workers).Accuracy(m, d)
		if err != nil {
			t.Fatalf("Evaluator.Accuracy(workers=%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: accuracy %v != package Accuracy %v", workers, got, want)
		}
	}
}

func TestEvaluatorLossCloseToPackageLoss(t *testing.T) {
	// Chunked reduction reassociates the float sum, so values may differ
	// from the strictly sequential package function only in the last bits.
	m, d := evalFixture(t, Softmax)
	seq, err := Loss(m, d)
	if err != nil {
		t.Fatalf("Loss: %v", err)
	}
	chunked, err := NewEvaluator(4).Loss(m, d)
	if err != nil {
		t.Fatalf("Evaluator.Loss: %v", err)
	}
	if diff := seq - chunked; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("chunked loss %v too far from sequential %v", chunked, seq)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	m, d := evalFixture(t, Softmax)
	ev := NewEvaluator(2)
	if _, err := ev.Loss(m, &dataset.Dataset{X: mat.NewDense(0, 0)}); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("empty dataset = %v, want ErrEmpty", err)
	}
	bad := NewModel(d.Classes, d.Dim()+1, Softmax)
	if _, err := ev.Loss(bad, d); !errors.Is(err, ErrModelShape) {
		t.Errorf("dim mismatch = %v, want ErrModelShape", err)
	}
	if _, err := ev.Accuracy(bad, d); !errors.Is(err, ErrModelShape) {
		t.Errorf("accuracy dim mismatch = %v, want ErrModelShape", err)
	}
	_ = m
}

func TestSGDResetReproducesFreshOptimizer(t *testing.T) {
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 300
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	sgdCfg := SGDConfig{LearningRate: 0.1, Decay: 0.95, DecayEvery: 1, BatchSize: 64, Seed: 5}

	train := func(s *SGD) []float64 {
		m := NewModel(d.Classes, d.Dim(), Softmax)
		losses, err := s.Train(m, d, 3)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		return losses
	}

	fresh, err := NewSGD(sgdCfg)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	want := train(fresh)

	// Dirty the optimizer with a different config, then Reset back.
	reused, err := NewSGD(SGDConfig{LearningRate: 9, BatchSize: 17, Seed: 999})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	train(reused)
	if err := reused.Reset(sgdCfg); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got := train(reused)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epoch %d: reset optimizer loss %v != fresh %v", i, got[i], want[i])
		}
	}
	if reused.LearningRate() == sgdCfg.LearningRate {
		t.Error("decay should have moved the learning rate during training")
	}
}

func TestSGDResetValidates(t *testing.T) {
	s, err := NewSGD(SGDConfig{LearningRate: 0.1})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	for _, bad := range []SGDConfig{
		{LearningRate: 0},
		{LearningRate: 0.1, Decay: 2},
		{LearningRate: 0.1, BatchSize: -1},
		{LearningRate: 0.1, ProximalMu: -1},
	} {
		if err := s.Reset(bad); err == nil {
			t.Errorf("Reset(%+v) must fail", bad)
		}
	}
}

func BenchmarkEvaluatorLoss(b *testing.B) {
	m, d := evalFixture(b, Softmax)
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(b *testing.B) {
			ev := NewEvaluator(workers)
			if _, err := ev.Loss(m, d); err != nil { // warmup: scratch + goroutine reuse
				b.Fatalf("warmup Loss: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Loss(m, d); err != nil {
					b.Fatalf("Loss: %v", err)
				}
			}
		})
	}
}

func BenchmarkSGDEpochMiniBatch(b *testing.B) {
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 1000
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		b.Fatalf("Synthesize: %v", err)
	}
	m := NewModel(d.Classes, d.Dim(), Softmax)
	sgd, err := NewSGD(SGDConfig{LearningRate: 0.1, BatchSize: 100})
	if err != nil {
		b.Fatalf("NewSGD: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sgd.Epoch(m, d); err != nil {
			b.Fatalf("Epoch: %v", err)
		}
	}
}

func TestGatedWorkers(t *testing.T) {
	tests := []struct {
		name          string
		rows, workers int
		want          int
	}{
		{"tiny dataset forces sequential", 100, 8, 1},
		{"just below one quota", MinEvalRowsPerWorker - 1, 4, 1},
		{"exactly one quota", MinEvalRowsPerWorker, 4, 1},
		{"two quotas cap at two", 2 * MinEvalRowsPerWorker, 8, 2},
		{"request below cap is kept", 10 * MinEvalRowsPerWorker, 3, 3},
		{"zero workers clamps to one", 10 * MinEvalRowsPerWorker, 0, 1},
		{"zero rows clamps to one", 0, 8, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GatedWorkers(tt.rows, tt.workers); got != tt.want {
				t.Errorf("GatedWorkers(%d, %d) = %d, want %d", tt.rows, tt.workers, got, tt.want)
			}
		})
	}
}

// TestEvaluatorSpawnGateBitIdentical pins that the min-work gate is pure
// scheduling: on a dataset small enough to be forced sequential, a
// many-worker Evaluator returns the exact bits of the one-worker result.
func TestEvaluatorSpawnGateBitIdentical(t *testing.T) {
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 300 // below MinEvalRowsPerWorker: gate forces 1 worker
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	m := NewModel(d.Classes, d.Dim(), Softmax)
	rng := mat.NewRNG(7)
	for i := range m.W.RawData() {
		m.W.RawData()[i] = 0.05 * rng.Norm()
	}
	want, err := NewEvaluator(1).Loss(m, d)
	if err != nil {
		t.Fatalf("sequential Loss: %v", err)
	}
	for _, workers := range []int{2, 8, 64} {
		got, err := NewEvaluator(workers).Loss(m, d)
		if err != nil {
			t.Fatalf("Loss(workers=%d): %v", workers, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("workers=%d: loss %v differs bit-wise from sequential %v", workers, got, want)
		}
	}
}
