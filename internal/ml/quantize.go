package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
)

// Model-upload energy is proportional to bytes on the air (Section IV),
// which makes lossy update compression a direct energy knob: quantizing the
// float64 parameters to q bits shrinks e^U by ~64/q at a bounded accuracy
// cost. This file implements symmetric per-tensor linear quantization to
// 8 or 16 bits with a deterministic binary container, plus the error bound
// callers use to decide whether the distortion is acceptable.

// ErrQuantize is returned (wrapped) for invalid quantization parameters or
// malformed quantized payloads.
var ErrQuantize = errors.New("ml: quantization error")

// QuantBits selects the quantization width.
type QuantBits int

const (
	// Quant8 stores each parameter in one byte (8× smaller than float64).
	Quant8 QuantBits = 8
	// Quant16 stores each parameter in two bytes (4× smaller).
	Quant16 QuantBits = 16
)

// quantMagic guards the quantized wire format.
var quantMagic = [4]byte{'E', 'F', 'Q', 1}

// QuantizeModel encodes m into a compact lossy representation: a header
// (shape, activation, bits), one scale per tensor (weights, biases), and
// the linearly quantized values. Decoding with DequantizeModel yields a
// model whose per-parameter error is at most MaxQuantError(m, bits).
func QuantizeModel(m *Model, bits QuantBits) ([]byte, error) {
	return AppendQuantized(nil, m, bits)
}

// AppendQuantized appends the quantized encoding of m to dst and returns the
// extended slice — byte-identical to QuantizeModel's output, but writing
// directly into a caller-owned (e.g. pooled frame) buffer.
func AppendQuantized(dst []byte, m *Model, bits QuantBits) ([]byte, error) {
	if bits != Quant8 && bits != Quant16 {
		return nil, fmt.Errorf("width %d bits: %w", bits, ErrQuantize)
	}
	w := m.W.RawData()
	out := slices.Grow(dst, QuantizedSize(m.Classes(), m.Features(), bits))
	out = append(out, quantMagic[:]...)
	var header [16]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(m.Act))
	binary.LittleEndian.PutUint32(header[4:8], uint32(m.Classes()))
	binary.LittleEndian.PutUint32(header[8:12], uint32(m.Features()))
	binary.LittleEndian.PutUint32(header[12:16], uint32(bits))
	out = append(out, header[:]...)

	var err error
	out, err = appendQuantTensor(out, w, bits)
	if err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	out, err = appendQuantTensor(out, m.B, bits)
	if err != nil {
		return nil, fmt.Errorf("biases: %w", err)
	}
	return out, nil
}

// appendQuantTensor writes [float64 scale][q-bit codes…] for one tensor.
// The symmetric scheme maps value v to round(v/scale) with
// scale = maxAbs / qMax, so zero is exactly representable.
func appendQuantTensor(dst []byte, vals []float64, bits QuantBits) ([]byte, error) {
	var maxAbs float64
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("non-finite value %v: %w", v, ErrQuantize)
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	qMax := float64(int32(1)<<(bits-1) - 1)
	scale := maxAbs / qMax
	if scale == 0 {
		scale = 1 // all-zero tensor: any scale decodes to zeros
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(scale))
	dst = append(dst, buf[:]...)
	for _, v := range vals {
		q := int32(math.Round(v / scale))
		switch bits {
		case Quant8:
			dst = append(dst, byte(int8(q)))
		case Quant16:
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(int16(q)))
			dst = append(dst, b[:]...)
		}
	}
	return dst, nil
}

// DequantizeModel decodes a payload produced by QuantizeModel.
func DequantizeModel(data []byte) (*Model, error) {
	var m Model
	if err := m.DequantizeInto(data); err != nil {
		return nil, err
	}
	return &m, nil
}

// DequantizeInto decodes a payload produced by QuantizeModel into m, reusing
// m's existing parameter storage when the encoded shape matches. Like
// Model.UnmarshalBinaryReuse it is the steady-state decode path: a long-lived
// scratch model makes repeated dequantization allocation-free.
func (m *Model) DequantizeInto(data []byte) error {
	if len(data) < 20 {
		return fmt.Errorf("payload of %d bytes: %w", len(data), ErrQuantize)
	}
	if data[0] != quantMagic[0] || data[1] != quantMagic[1] ||
		data[2] != quantMagic[2] || data[3] != quantMagic[3] {
		return fmt.Errorf("bad magic: %w", ErrQuantize)
	}
	act := Activation(binary.LittleEndian.Uint32(data[4:8]))
	classes := int(binary.LittleEndian.Uint32(data[8:12]))
	features := int(binary.LittleEndian.Uint32(data[12:16]))
	bits := QuantBits(binary.LittleEndian.Uint32(data[16:20]))
	if bits != Quant8 && bits != Quant16 {
		return fmt.Errorf("width %d bits: %w", bits, ErrQuantize)
	}
	const maxParams = 1 << 26
	if classes <= 0 || features <= 0 || classes > maxParams || features > maxParams ||
		classes*features > maxParams {
		return fmt.Errorf("implausible shape %dx%d: %w", classes, features, ErrQuantize)
	}
	if m.W == nil || m.W.Rows() != classes || m.W.Cols() != features || len(m.B) != classes {
		fresh := NewModel(classes, features, act)
		m.W, m.B = fresh.W, fresh.B
	}
	m.Act = act
	rest := data[20:]
	var err error
	rest, err = readQuantTensor(rest, m.W.RawData(), bits)
	if err != nil {
		return fmt.Errorf("weights: %w", err)
	}
	rest, err = readQuantTensor(rest, m.B, bits)
	if err != nil {
		return fmt.Errorf("biases: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%d trailing bytes: %w", len(rest), ErrQuantize)
	}
	return nil
}

func readQuantTensor(data []byte, dst []float64, bits QuantBits) ([]byte, error) {
	step := int(bits) / 8
	need := 8 + len(dst)*step
	if len(data) < need {
		return nil, fmt.Errorf("tensor needs %d bytes, have %d: %w", need, len(data), ErrQuantize)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("scale %v: %w", scale, ErrQuantize)
	}
	body := data[8:need]
	for i := range dst {
		var q int32
		switch bits {
		case Quant8:
			q = int32(int8(body[i]))
		case Quant16:
			q = int32(int16(binary.LittleEndian.Uint16(body[i*2:])))
		}
		dst[i] = float64(q) * scale
	}
	return data[need:], nil
}

// MaxQuantError returns the worst-case per-parameter reconstruction error
// of quantizing m at the given width: half a quantization step of the
// larger tensor scale.
func MaxQuantError(m *Model, bits QuantBits) float64 {
	qMax := float64(int32(1)<<(bits-1) - 1)
	var maxAbs float64
	for _, v := range m.W.RawData() {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	for _, v := range m.B {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs / qMax / 2
}

// QuantizedSize returns the payload size in bytes for a model of the given
// shape at the given width.
func QuantizedSize(classes, features int, bits QuantBits) int {
	params := classes*features + classes
	return 4 + 16 + 8 + 8 + params*int(bits)/8
}

// CompressionRatio returns the size of the float64 serialization divided by
// the quantized size.
func CompressionRatio(m *Model, bits QuantBits) float64 {
	full := 4 + 12 + m.ParamCount()*8
	return float64(full) / float64(QuantizedSize(m.Classes(), m.Features(), bits))
}
