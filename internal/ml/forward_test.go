package ml

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// The per-sample sequential reference the batched forward pass must match bit
// for bit: one Model.Logits / Model.Probabilities call per row, exactly the
// formulation the pre-GEMM code used.

// refLossSum sums per-sample losses over rows [lo, hi) via the per-sample path.
func refLossSum(t *testing.T, m *Model, d *dataset.Dataset, lo, hi int) float64 {
	t.Helper()
	probs := make([]float64, m.Classes())
	var total float64
	for i := lo; i < hi; i++ {
		if err := m.Probabilities(probs, d.X.Row(i)); err != nil {
			t.Fatalf("Probabilities(%d): %v", i, err)
		}
		total += sampleLoss(m.Act, probs, d.Labels[i])
	}
	return total
}

// refHits counts correct argmax-over-logits predictions via the per-sample path.
func refHits(t *testing.T, m *Model, d *dataset.Dataset, lo, hi int) int {
	t.Helper()
	scores := make([]float64, m.Classes())
	hits := 0
	for i := lo; i < hi; i++ {
		if err := m.Logits(scores, d.X.Row(i)); err != nil {
			t.Fatalf("Logits(%d): %v", i, err)
		}
		if mat.ArgMax(scores) == d.Labels[i] {
			hits++
		}
	}
	return hits
}

// refGradient is the sequential per-sample gradient accumulation (the
// pre-GEMM gradientRows): probabilities per row, then one Axpy per class with
// coefficient delta·invN, and the matching bias update.
func refGradient(t *testing.T, m *Model, d *dataset.Dataset, rows []int, grad *Model) float64 {
	t.Helper()
	n := d.Len()
	if rows != nil {
		n = len(rows)
	}
	probs := make([]float64, m.Classes())
	var totalLoss float64
	invN := 1 / float64(n)
	for ii := 0; ii < n; ii++ {
		i := ii
		if rows != nil {
			i = rows[ii]
		}
		x := d.X.Row(i)
		if err := m.Probabilities(probs, x); err != nil {
			t.Fatalf("Probabilities(%d): %v", i, err)
		}
		y := d.Labels[i]
		totalLoss += sampleLoss(m.Act, probs, y)
		for c, p := range probs {
			delta := p
			if c == y {
				delta = p - 1
			}
			mat.Axpy(grad.W.Row(c), delta*invN, x)
			grad.B[c] += delta * invN
		}
	}
	return totalLoss * invN
}

// forwardShapes exercises every block regime: sub-chunk, exact chunk,
// chunk+tail, tails of 1–3 rows past the 4-row micro-kernel blocks.
var forwardShapes = []int{1, 3, 4, 5, 255, 256, 257, 1200}

func forwardFixture(t testing.TB, samples int, act Activation) (*Model, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.QuickSyntheticConfig()
	if samples < 10*cfg.Classes {
		cfg.Classes = 3
	}
	cfg.Samples = samples
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	m := NewModel(d.Classes, d.Dim(), act)
	rng := mat.NewRNG(uint64(samples)*13 + 7)
	for i := range m.W.RawData() {
		m.W.RawData()[i] = 0.05 * rng.Norm()
	}
	for i := range m.B {
		m.B[i] = 0.01 * rng.Norm()
	}
	return m, d
}

func TestForwardRowRangeBitIdenticalToPerSampleReference(t *testing.T) {
	for _, act := range []Activation{Softmax, Sigmoid} {
		for _, samples := range forwardShapes {
			m, d := forwardFixture(t, samples, act)
			var sc fwdScratch
			lossSum, hits, err := forwardRowRange(m, d, 0, d.Len(), &sc, true, true)
			if err != nil {
				t.Fatalf("%v/%d: forwardRowRange: %v", act, samples, err)
			}
			wantLoss := refLossSum(t, m, d, 0, d.Len())
			if math.Float64bits(lossSum) != math.Float64bits(wantLoss) {
				t.Errorf("%v/%d: batched loss sum %v differs bitwise from per-sample reference %v",
					act, samples, lossSum, wantLoss)
			}
			if want := refHits(t, m, d, 0, d.Len()); hits != want {
				t.Errorf("%v/%d: batched hits = %d, want %d", act, samples, hits, want)
			}
			// Sub-range pass (offset into the dataset) through the same scratch.
			if samples > 5 {
				lo, hi := 2, samples-1
				lossSum, hits, err = forwardRowRange(m, d, lo, hi, &sc, true, true)
				if err != nil {
					t.Fatalf("%v/%d: sub-range: %v", act, samples, err)
				}
				if math.Float64bits(lossSum) != math.Float64bits(refLossSum(t, m, d, lo, hi)) {
					t.Errorf("%v/%d: sub-range loss differs from reference", act, samples)
				}
				if hits != refHits(t, m, d, lo, hi) {
					t.Errorf("%v/%d: sub-range hits differ from reference", act, samples)
				}
			}
		}
	}
}

func TestEvaluatorMetricsBitIdenticalToSeparatePasses(t *testing.T) {
	for _, act := range []Activation{Softmax, Sigmoid} {
		m, d := evalFixture(t, act)
		for _, workers := range []int{1, 2, 3, 8, 100} {
			ev := NewEvaluator(workers)
			wantLoss, err := ev.Loss(m, d)
			if err != nil {
				t.Fatalf("Loss: %v", err)
			}
			wantAcc, err := ev.Accuracy(m, d)
			if err != nil {
				t.Fatalf("Accuracy: %v", err)
			}
			for pass := 0; pass < 2; pass++ { // second pass exercises scratch reuse
				loss, acc, err := ev.Metrics(m, d)
				if err != nil {
					t.Fatalf("Metrics: %v", err)
				}
				if math.Float64bits(loss) != math.Float64bits(wantLoss) {
					t.Errorf("%v workers=%d pass %d: fused loss %v differs bitwise from separate pass %v",
						act, workers, pass, loss, wantLoss)
				}
				if math.Float64bits(acc) != math.Float64bits(wantAcc) {
					t.Errorf("%v workers=%d pass %d: fused accuracy %v differs bitwise from separate pass %v",
						act, workers, pass, acc, wantAcc)
				}
			}
		}
	}
}

func TestEvaluatorMetricsErrors(t *testing.T) {
	m, d := evalFixture(t, Softmax)
	bad := NewModel(d.Classes, d.Dim()+1, Softmax)
	if _, _, err := NewEvaluator(1).Metrics(bad, d); !errors.Is(err, ErrModelShape) {
		t.Errorf("dimension mismatch = %v, want ErrModelShape", err)
	}
	if _, _, err := NewEvaluator(1).Metrics(m, &dataset.Dataset{X: mat.NewDense(0, d.Dim()), Classes: d.Classes}); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("empty dataset = %v, want ErrEmpty", err)
	}
}

func TestPredictBatchBitIdenticalToPerSamplePredict(t *testing.T) {
	for _, samples := range forwardShapes {
		m, d := forwardFixture(t, samples, Softmax)
		got, err := m.PredictBatch(d)
		if err != nil {
			t.Fatalf("PredictBatch(%d): %v", samples, err)
		}
		for i := 0; i < d.Len(); i++ {
			want, err := m.Predict(d.X.Row(i))
			if err != nil {
				t.Fatalf("Predict(%d): %v", i, err)
			}
			if got[i] != want {
				t.Fatalf("samples=%d row %d: PredictBatch = %d, Predict = %d", samples, i, got[i], want)
			}
		}
	}
}

func TestLogitsBatchBitIdenticalToLogits(t *testing.T) {
	m, d := forwardFixture(t, 300, Softmax)
	dst := mat.NewDense(d.Len(), m.Classes())
	if err := m.LogitsBatch(dst, d.X); err != nil {
		t.Fatalf("LogitsBatch: %v", err)
	}
	row := make([]float64, m.Classes())
	for i := 0; i < d.Len(); i++ {
		if err := m.Logits(row, d.X.Row(i)); err != nil {
			t.Fatalf("Logits(%d): %v", i, err)
		}
		for c := range row {
			if math.Float64bits(dst.At(i, c)) != math.Float64bits(row[c]) {
				t.Fatalf("row %d class %d: batch logit %v differs bitwise from Logits %v",
					i, c, dst.At(i, c), row[c])
			}
		}
	}
}

func TestLogitsBatchShapeErrors(t *testing.T) {
	m := NewModel(3, 4, Softmax)
	x := mat.NewDense(5, 4)
	for _, dst := range []*mat.Dense{
		mat.NewDense(5, 2), // wrong classes
		mat.NewDense(4, 3), // wrong rows
	} {
		if err := m.LogitsBatch(dst, x); !errors.Is(err, ErrModelShape) {
			t.Errorf("LogitsBatch bad dst = %v, want ErrModelShape", err)
		}
	}
	if err := m.LogitsBatch(mat.NewDense(5, 3), mat.NewDense(5, 7)); !errors.Is(err, ErrModelShape) {
		t.Error("LogitsBatch feature mismatch must return ErrModelShape")
	}
}

func TestGradientBitIdenticalToPerSampleReference(t *testing.T) {
	for _, act := range []Activation{Softmax, Sigmoid} {
		for _, samples := range forwardShapes {
			m, d := forwardFixture(t, samples, act)
			want := NewModel(m.Classes(), m.Features(), act)
			wantLoss := refGradient(t, m, d, nil, want)
			got := NewModel(m.Classes(), m.Features(), act)
			gotLoss, err := Gradient(m, d, got)
			if err != nil {
				t.Fatalf("%v/%d: Gradient: %v", act, samples, err)
			}
			if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
				t.Errorf("%v/%d: batched loss %v differs bitwise from reference %v", act, samples, gotLoss, wantLoss)
			}
			gw, ww := got.W.RawData(), want.W.RawData()
			for i := range gw {
				if math.Float64bits(gw[i]) != math.Float64bits(ww[i]) {
					t.Fatalf("%v/%d: grad.W[%d] = %v differs bitwise from reference %v", act, samples, i, gw[i], ww[i])
				}
			}
			for i := range got.B {
				if math.Float64bits(got.B[i]) != math.Float64bits(want.B[i]) {
					t.Fatalf("%v/%d: grad.B[%d] = %v differs bitwise from reference %v", act, samples, i, got.B[i], want.B[i])
				}
			}
		}
	}
}

func TestGradientRowsSubsetBitIdenticalToReference(t *testing.T) {
	m, d := forwardFixture(t, 700, Softmax)
	// A shuffled subset spanning several chunks, as a mini-batch pass sees.
	rng := mat.NewRNG(99)
	rows := rng.Sample(d.Len(), 600)
	want := NewModel(m.Classes(), m.Features(), m.Act)
	wantLoss := refGradient(t, m, d, rows, want)
	got := NewModel(m.Classes(), m.Features(), m.Act)
	var sc fwdScratch
	gotLoss, err := gradientRows(m, d, rows, got, &sc)
	if err != nil {
		t.Fatalf("gradientRows: %v", err)
	}
	if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
		t.Errorf("subset loss %v differs bitwise from reference %v", gotLoss, wantLoss)
	}
	gw, ww := got.W.RawData(), want.W.RawData()
	for i := range gw {
		if math.Float64bits(gw[i]) != math.Float64bits(ww[i]) {
			t.Fatalf("subset grad.W[%d] differs bitwise from reference", i)
		}
	}
	for i := range got.B {
		if math.Float64bits(got.B[i]) != math.Float64bits(want.B[i]) {
			t.Fatalf("subset grad.B[%d] differs bitwise from reference", i)
		}
	}
}

func TestGradientRowsRejectsOutOfRangeRows(t *testing.T) {
	m, d := forwardFixture(t, 20, Softmax)
	grad := NewModel(m.Classes(), m.Features(), m.Act)
	var sc fwdScratch
	for _, bad := range [][]int{{0, 1, d.Len()}, {-1}, {0, 500}} {
		if _, err := gradientRows(m, d, bad, grad, &sc); !errors.Is(err, ErrModelShape) {
			t.Errorf("rows %v = %v, want ErrModelShape", bad, err)
		}
	}
}

// TestEvaluatorWarmPassesAllocationFree pins the scratch-ownership contract:
// once an Evaluator has run each pass once, further passes (including the
// fused Metrics pass) allocate nothing.
func TestEvaluatorWarmPassesAllocationFree(t *testing.T) {
	m, d := evalFixture(t, Softmax)
	ev := NewEvaluator(1)
	if _, err := ev.Loss(m, d); err != nil {
		t.Fatalf("warm-up Loss: %v", err)
	}
	if _, _, err := ev.Metrics(m, d); err != nil {
		t.Fatalf("warm-up Metrics: %v", err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ev.Loss(m, d); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Accuracy(m, d); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ev.Metrics(m, d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm evaluator passes allocate %v per run, want 0", allocs)
	}
}

func BenchmarkEvaluatorMetrics(b *testing.B) {
	m, d := evalFixture(b, Softmax)
	ev := NewEvaluator(1)
	if _, _, err := ev.Metrics(m, d); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.Metrics(m, d); err != nil {
			b.Fatalf("Metrics: %v", err)
		}
	}
}
