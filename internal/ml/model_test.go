package ml

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

func TestNewModelZeroInit(t *testing.T) {
	m := NewModel(3, 5, Softmax)
	if m.Classes() != 3 || m.Features() != 5 {
		t.Fatalf("shape = %dx%d, want 3x5", m.Classes(), m.Features())
	}
	if m.ParamCount() != 18 {
		t.Errorf("ParamCount = %d, want 18", m.ParamCount())
	}
	if n := m.W.FrobeniusNorm() + mat.Norm2(m.B); n != 0 {
		t.Error("new model must be zero")
	}
}

func TestActivationString(t *testing.T) {
	if Softmax.String() != "softmax" || Sigmoid.String() != "sigmoid" {
		t.Error("activation names wrong")
	}
	if Activation(99).String() == "" {
		t.Error("unknown activation must still print")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel(2, 2, Softmax)
	m.W.Set(0, 0, 1)
	c := m.Clone()
	c.W.Set(0, 0, 5)
	c.B[0] = 7
	if m.W.At(0, 0) != 1 || m.B[0] != 0 {
		t.Error("Clone must not share storage")
	}
}

func TestCopyFromAndScale(t *testing.T) {
	src := NewModel(2, 3, Sigmoid)
	src.W.Fill(2)
	src.B[1] = 4
	dst := NewModel(2, 3, Softmax)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if dst.Act != Sigmoid || dst.W.At(1, 2) != 2 || dst.B[1] != 4 {
		t.Error("CopyFrom incomplete")
	}
	dst.Scale(0.5)
	if dst.W.At(0, 0) != 1 || dst.B[1] != 2 {
		t.Error("Scale wrong")
	}
	bad := NewModel(3, 3, Softmax)
	if err := bad.CopyFrom(src); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestAddScaled(t *testing.T) {
	a := NewModel(2, 2, Softmax)
	b := NewModel(2, 2, Softmax)
	b.W.Fill(1)
	b.B[0] = 2
	if err := a.AddScaled(3, b); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	if a.W.At(1, 1) != 3 || a.B[0] != 6 {
		t.Error("AddScaled wrong values")
	}
	if err := a.AddScaled(1, NewModel(1, 2, Softmax)); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestParamDistance(t *testing.T) {
	a := NewModel(1, 2, Softmax)
	b := NewModel(1, 2, Softmax)
	b.W.Set(0, 0, 3)
	b.B[0] = 4
	if got := a.ParamDistance(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("ParamDistance = %v, want 5", got)
	}
	if a.ParamDistance(a) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestLogitsAndPredict(t *testing.T) {
	m := NewModel(3, 2, Softmax)
	m.W.SetRow(0, []float64{1, 0})
	m.W.SetRow(1, []float64{0, 1})
	m.W.SetRow(2, []float64{-1, -1})
	m.B[1] = 0.5

	logits := make([]float64, 3)
	if err := m.Logits(logits, []float64{2, 1}); err != nil {
		t.Fatalf("Logits: %v", err)
	}
	want := []float64{2, 1.5, -3}
	for i, w := range want {
		if math.Abs(logits[i]-w) > 1e-12 {
			t.Errorf("logit[%d] = %v, want %v", i, logits[i], w)
		}
	}
	pred, err := m.Predict([]float64{2, 1})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred != 0 {
		t.Errorf("Predict = %d, want 0", pred)
	}
}

func TestSoftmaxProbabilities(t *testing.T) {
	m := NewModel(3, 1, Softmax)
	m.W.SetRow(0, []float64{1})
	m.W.SetRow(1, []float64{2})
	m.W.SetRow(2, []float64{3})
	p := make([]float64, 3)
	if err := m.Probabilities(p, []float64{1}); err != nil {
		t.Fatalf("Probabilities: %v", err)
	}
	if math.Abs(mat.Sum(p)-1) > 1e-12 {
		t.Errorf("softmax sums to %v, want 1", mat.Sum(p))
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax ordering wrong: %v", p)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := NewModel(2, 1, Softmax)
	m.W.SetRow(0, []float64{1000})
	m.W.SetRow(1, []float64{-1000})
	p := make([]float64, 2)
	if err := m.Probabilities(p, []float64{1}); err != nil {
		t.Fatalf("Probabilities: %v", err)
	}
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Fatal("softmax must not produce NaN for extreme logits")
	}
	if math.Abs(p[0]-1) > 1e-9 {
		t.Errorf("p[0] = %v, want ≈1", p[0])
	}
}

func TestSigmoidProbabilities(t *testing.T) {
	m := NewModel(2, 1, Sigmoid)
	m.W.SetRow(0, []float64{0})
	m.W.SetRow(1, []float64{800})
	p := make([]float64, 2)
	if err := m.Probabilities(p, []float64{1}); err != nil {
		t.Fatalf("Probabilities: %v", err)
	}
	if math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v, want 0.5", p[0])
	}
	if math.IsNaN(p[1]) || math.Abs(p[1]-1) > 1e-9 {
		t.Errorf("sigmoid(800) = %v, want ≈1 without NaN", p[1])
	}
	// Negative extreme.
	m.W.SetRow(1, []float64{-800})
	if err := m.Probabilities(p, []float64{1}); err != nil {
		t.Fatalf("Probabilities: %v", err)
	}
	if math.IsNaN(p[1]) || p[1] > 1e-9 {
		t.Errorf("sigmoid(-800) = %v, want ≈0 without NaN", p[1])
	}
}

func TestPredictBatchShapeError(t *testing.T) {
	m := NewModel(2, 3, Softmax)
	d := &dataset.Dataset{X: mat.NewDense(2, 4), Labels: []int{0, 1}, Classes: 2}
	if _, err := m.PredictBatch(d); !errors.Is(err, ErrModelShape) {
		t.Errorf("PredictBatch mismatch = %v, want ErrModelShape", err)
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	rng := mat.NewRNG(13)
	m := NewModel(4, 7, Sigmoid)
	for i := range m.W.RawData() {
		m.W.RawData()[i] = rng.Norm()
	}
	for i := range m.B {
		m.B[i] = rng.Norm()
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("ReadModel: %v", err)
	}
	if back.Act != Sigmoid || back.Classes() != 4 || back.Features() != 7 {
		t.Fatalf("shape/activation lost: %v %dx%d", back.Act, back.Classes(), back.Features())
	}
	if m.ParamDistance(back) != 0 {
		t.Error("round-trip must be exact")
	}
}

func TestModelBinaryMarshaler(t *testing.T) {
	m := NewModel(2, 2, Softmax)
	m.W.Set(0, 1, 3.25)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var back Model
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if back.W.At(0, 1) != 3.25 {
		t.Error("binary round-trip lost data")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("nonsense data here"))); err == nil {
		t.Error("garbage must be rejected")
	}
	// Correct magic but absurd shape.
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	buf.Write([]byte{1, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0})
	if _, err := ReadModel(&buf); err == nil {
		t.Error("absurd shape must be rejected")
	}
}

// Property: serialization round-trips exactly for random small models.
func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mat.NewRNG(seed)
		classes := 1 + rng.Intn(5)
		features := 1 + rng.Intn(9)
		m := NewModel(classes, features, Softmax)
		for i := range m.W.RawData() {
			m.W.RawData()[i] = rng.Norm()
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var back Model
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return m.ParamDistance(&back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
