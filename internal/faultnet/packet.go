package faultnet

import (
	"fmt"
	"sync"

	"eefei/internal/mat"
)

// PacketConfig describes the fault distribution of a PacketInjector: a
// datagram-level counterpart of Config. Where Config keys stream faults to
// byte positions, a PacketInjector keys them to the packet index in one
// direction of one link — the natural unit for a datagram transport, where
// the carrier loses, duplicates, or reorders whole packets. The zero value
// injects nothing.
type PacketConfig struct {
	// Seed drives every fault decision. The same seed over the same packet
	// sequence reproduces the same fates.
	Seed uint64
	// LossProb is the probability that a packet is dropped in flight.
	LossProb float64
	// DupProb is the probability that a packet is delivered twice.
	DupProb float64
	// ReorderProb is the probability that a packet is held back and
	// released after the next one (a one-packet swap).
	ReorderProb float64
}

// Validate checks the configuration.
func (c PacketConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"loss", c.LossProb}, {"dup", c.DupProb}, {"reorder", c.ReorderProb}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("packet %s probability %v outside [0,1): %w", p.name, p.v, ErrInjected)
		}
	}
	return nil
}

// PacketFate is the injector's decision for one packet.
type PacketFate struct {
	// Drop loses the packet: it must not reach the receiver.
	Drop bool
	// Dup delivers the packet twice.
	Dup bool
	// Hold swaps the packet with the next one: the carrier holds it back
	// and releases it after the following packet.
	Hold bool
}

// PacketStats counts the faults a PacketInjector has decided so far.
type PacketStats struct {
	// Packets is the number of fates drawn.
	Packets int64
	// Dropped counts lost packets.
	Dropped int64
	// Duplicated counts double-delivered packets.
	Duplicated int64
	// Held counts packets swapped with their successor.
	Held int64
}

// PacketInjector draws a deterministic fate per packet. Each decision
// (drop, dup, hold) consumes from its own seed-derived RNG stream, and every
// configured stream advances exactly once per packet regardless of the other
// outcomes — so fates are a pure function of the packet index and the
// carrier's behaviour (latency, real loss) cannot shift where injected
// faults land. Safe for concurrent use; determinism requires that the
// packet order itself is deterministic (one injector per link direction).
type PacketInjector struct {
	mu      sync.Mutex
	cfg     PacketConfig
	loss    *mat.RNG
	dup     *mat.RNG
	reorder *mat.RNG
	stats   PacketStats
}

// NewPacketInjector builds a PacketInjector over the given configuration.
func NewPacketInjector(cfg PacketConfig) (*PacketInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pi := &PacketInjector{cfg: cfg}
	if cfg.LossProb > 0 {
		pi.loss = mat.NewRNG(subSeed(cfg.Seed, 0, 5))
	}
	if cfg.DupProb > 0 {
		pi.dup = mat.NewRNG(subSeed(cfg.Seed, 0, 6))
	}
	if cfg.ReorderProb > 0 {
		pi.reorder = mat.NewRNG(subSeed(cfg.Seed, 0, 7))
	}
	return pi, nil
}

// Next draws the fate of the next packet. A dropped packet's dup/hold flags
// are cleared (there is nothing left to duplicate or hold), but their RNG
// streams still advance.
func (pi *PacketInjector) Next() PacketFate {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	var f PacketFate
	if pi.loss != nil {
		f.Drop = pi.loss.Bernoulli(pi.cfg.LossProb)
	}
	if pi.dup != nil {
		f.Dup = pi.dup.Bernoulli(pi.cfg.DupProb)
	}
	if pi.reorder != nil {
		f.Hold = pi.reorder.Bernoulli(pi.cfg.ReorderProb)
	}
	if f.Drop {
		f.Dup, f.Hold = false, false
	}
	pi.stats.Packets++
	if f.Drop {
		pi.stats.Dropped++
	}
	if f.Dup {
		pi.stats.Duplicated++
	}
	if f.Hold {
		pi.stats.Held++
	}
	return f
}

// Stats returns a snapshot of the fault counters.
func (pi *PacketInjector) Stats() PacketStats {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.stats
}
