package faultnet

import (
	"errors"
	"math"
	"testing"
)

func TestPacketInjectorZeroConfigInert(t *testing.T) {
	pi, err := NewPacketInjector(PacketConfig{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if f := pi.Next(); f.Drop || f.Dup || f.Hold {
			t.Fatalf("packet %d: zero config injected %+v", i, f)
		}
	}
	s := pi.Stats()
	if s.Packets != 1000 || s.Dropped+s.Duplicated+s.Held != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPacketInjectorValidate(t *testing.T) {
	for _, cfg := range []PacketConfig{
		{LossProb: -0.1}, {LossProb: 1}, {DupProb: 1.5}, {ReorderProb: 1},
	} {
		if _, err := NewPacketInjector(cfg); !errors.Is(err, ErrInjected) {
			t.Errorf("config %+v: want ErrInjected, got %v", cfg, err)
		}
	}
}

func TestPacketInjectorDeterministic(t *testing.T) {
	cfg := PacketConfig{Seed: 77, LossProb: 0.2, DupProb: 0.1, ReorderProb: 0.05}
	draw := func() []PacketFate {
		pi, err := NewPacketInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fates := make([]PacketFate, 500)
		for i := range fates {
			fates[i] = pi.Next()
		}
		return fates
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPacketInjectorRates(t *testing.T) {
	const n = 20000
	cfg := PacketConfig{Seed: 3, LossProb: 0.3, DupProb: 0.15, ReorderProb: 0.1}
	pi, err := NewPacketInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f := pi.Next()
		if f.Drop && (f.Dup || f.Hold) {
			t.Fatal("dropped packet also duplicated/held")
		}
	}
	s := pi.Stats()
	if got := float64(s.Dropped) / n; math.Abs(got-cfg.LossProb) > 0.02 {
		t.Errorf("drop rate %.3f, want ≈ %.3f", got, cfg.LossProb)
	}
	// Dup/hold are cleared on drops, so their marginal rate is p·(1−loss).
	if got, want := float64(s.Duplicated)/n, cfg.DupProb*(1-cfg.LossProb); math.Abs(got-want) > 0.02 {
		t.Errorf("dup rate %.3f, want ≈ %.3f", got, want)
	}
	if got, want := float64(s.Held)/n, cfg.ReorderProb*(1-cfg.LossProb); math.Abs(got-want) > 0.02 {
		t.Errorf("hold rate %.3f, want ≈ %.3f", got, want)
	}
}
