package faultnet

import (
	"fmt"
	"net"
	"time"
)

// Listener wraps ln so every accepted connection carries injected faults.
// A refusal fate closes the inbound connection before any byte is exchanged
// (the peer sees an immediate EOF) and Accept moves on to the next one.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		f := l.in.newFate()
		if f.refuse {
			conn.Close()
			continue
		}
		return &faultConn{Conn: conn, in: l.in, fate: f}, nil
	}
}

// TCPDialer returns a dial function with the signature flnet.EdgeConfig.Dial
// expects: refusal fates fail the dial outright with ErrInjected, every
// other connection is fault-wrapped.
func (in *Injector) TCPDialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		f := in.newFate()
		if f.refuse {
			return nil, fmt.Errorf("dial %s (conn %d) refused: %w", addr, f.idx, ErrInjected)
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: conn, in: in, fate: f}, nil
	}
}
