// Package faultnet provides deterministic, seeded fault injection around
// net.Conn and net.Listener for testing the resilience of networked
// components — connection refusal, mid-stream disconnects, partial writes,
// read/write delays, and byte corruption, all reproducible from a seed.
//
// Reproducibility is the design center. Every fault decision is made either
// once per connection (refusal, disconnect position) or keyed to a position
// in the connection's byte stream (corruption offsets) — never to the number
// or size of individual I/O calls. TCP segmentation, io.ReadFull looping,
// and goroutine scheduling therefore cannot shift where faults land: two
// runs that push the same application bytes through connections created in
// the same order see identical faults. Injected delays are the one
// exception — they perturb timing, not data, so they draw from a dedicated
// RNG stream that cannot desynchronize the data-affecting decisions.
//
// Fault model, per connection:
//
//   - refusal: the connection is refused outright (dial error, or an
//     accepted inbound conn closed before any byte is exchanged)
//   - mid-stream disconnect: after a configured or exponentially
//     distributed number of transferred bytes the connection delivers one
//     final truncated read or write — a partial write on the wire — and
//     every subsequent operation fails with ErrInjected
//   - corruption: single received bytes are XOR-flipped at configured or
//     exponentially spaced offsets of the read stream
//   - delay: individual Read/Write calls are held for a fixed duration
//   - write chunking: writes are split into bounded chunks (not a fault by
//     itself, but it stresses frame-reassembly paths deterministically)
package faultnet

import (
	"errors"
	"sort"
	"sync"
	"time"

	"eefei/internal/mat"
)

// ErrInjected is returned (possibly wrapped) by every operation that fails
// because of an injected fault, so tests can tell injected failures from
// real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Config describes the fault distribution of an Injector. The zero value
// injects nothing: wrapped connections behave identically to the originals.
type Config struct {
	// Seed drives every random fault decision. The same seed over the same
	// connection-creation order and byte streams reproduces the same faults.
	Seed uint64

	// RefuseProb is the probability that a new connection is refused
	// outright (0 disables refusals).
	RefuseProb float64

	// DropMeanBytes, when > 0, gives every connection an exponentially
	// distributed lifespan measured in transferred bytes (reads + writes);
	// crossing it severs the connection mid-stream, delivering the prefix
	// of the in-flight operation first.
	DropMeanBytes float64

	// CorruptMeanBytes, when > 0, XOR-flips single received bytes at
	// exponentially spaced offsets of the read stream (mean gap = this).
	CorruptMeanBytes float64

	// DelayProb injects a Delay-long pause before individual Read and
	// Write calls with the given probability (0 disables).
	DelayProb float64
	// Delay is the pause injected by DelayProb faults.
	Delay time.Duration

	// WriteChunkBytes, when > 0, splits every write into chunks of at most
	// this many bytes (each forwarded separately to the underlying conn).
	WriteChunkBytes int

	// Plan pins the exact behaviour of specific connections by creation
	// index, overriding the probabilistic model above for those indices.
	Plan map[int]ConnPlan
}

// ConnPlan is a fully deterministic fault schedule for one connection.
type ConnPlan struct {
	// Refuse rejects the connection outright.
	Refuse bool
	// DropAfterBytes severs the connection once this many bytes have been
	// transferred in either direction (0 = never).
	DropAfterBytes int64
	// CorruptAtBytes lists read-stream offsets at which the received byte
	// is inverted (XOR 0xFF).
	CorruptAtBytes []int64
	// ReadDelay and WriteDelay pause every Read / Write call.
	ReadDelay, WriteDelay time.Duration
}

// Stats counts the faults an Injector has delivered so far.
type Stats struct {
	// Conns is the number of connections the injector has seen (including
	// refused ones).
	Conns int
	// Refused counts outright connection refusals.
	Refused int
	// Dropped counts mid-stream disconnects.
	Dropped int
	// PartialWrites counts writes truncated by a mid-stream disconnect.
	PartialWrites int
	// CorruptedBytes counts XOR-flipped bytes delivered to readers.
	CorruptedBytes int
	// Delays counts injected Read/Write pauses.
	Delays int
}

// Injector creates fault-wrapped connections and listeners. Connections are
// numbered in creation order; each number selects an independent,
// seed-derived fate, so an injector used from one goroutine (or whose
// connection order is otherwise fixed) is fully deterministic.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	next  int
	stats Stats
}

// New builds an Injector over the given configuration.
func New(cfg Config) *Injector {
	if cfg.Plan != nil {
		// Defensive copy with sorted corruption offsets so callers cannot
		// perturb decisions after the fact.
		plan := make(map[int]ConnPlan, len(cfg.Plan))
		for i, p := range cfg.Plan {
			offs := append([]int64(nil), p.CorruptAtBytes...)
			sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
			p.CorruptAtBytes = offs
			plan[i] = p
		}
		cfg.Plan = plan
	}
	return &Injector{cfg: cfg}
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Seed mixes the injector seed with a connection index and a stream tag so
// each concern of each connection gets an uncorrelated RNG.
func subSeed(seed uint64, idx int, stream uint64) uint64 {
	z := seed + uint64(idx+1)*0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	return z ^ (z >> 27)
}

// fate decides, at creation time, everything byte-position-keyed about the
// next connection.
type fate struct {
	idx    int
	refuse bool
	// dropAt is the cumulative transferred-byte count at which the conn
	// dies; negative means never.
	dropAt int64
	// corrupt yields successive read-stream corruption offsets (nil = none).
	corrupt *corruptStream
	// delayRNG drives probabilistic per-call delays (nil = none).
	delayRNG              *mat.RNG
	delayProb             float64
	delay                 time.Duration
	readDelay, writeDelay time.Duration
}

// corruptStream enumerates read-stream offsets to corrupt, either from a
// fixed plan or an exponential-gap process, with the XOR mask for each.
type corruptStream struct {
	fixed []int64
	rng   *mat.RNG
	mean  float64
	next  int64 // -1 = exhausted
}

func (cs *corruptStream) peek() int64 { return cs.next }

// take consumes the current offset and returns its XOR mask, advancing to
// the next one.
func (cs *corruptStream) take() byte {
	var mask byte = 0xFF
	if cs.rng != nil {
		mask = byte(cs.rng.Intn(255)) + 1 // 1..255: always changes the byte
		cs.next += int64(cs.rng.Exponential(1/cs.mean)) + 1
		return mask
	}
	cs.fixed = cs.fixed[1:]
	if len(cs.fixed) == 0 {
		cs.next = -1
	} else {
		cs.next = cs.fixed[0]
	}
	return mask
}

// newFate assigns the next connection index and draws its fate.
func (in *Injector) newFate() fate {
	in.mu.Lock()
	idx := in.next
	in.next++
	in.stats.Conns++
	in.mu.Unlock()

	f := fate{idx: idx, dropAt: -1}
	if plan, ok := in.cfg.Plan[idx]; ok {
		f.refuse = plan.Refuse
		if plan.DropAfterBytes > 0 {
			f.dropAt = plan.DropAfterBytes
		}
		if len(plan.CorruptAtBytes) > 0 {
			f.corrupt = &corruptStream{fixed: plan.CorruptAtBytes, next: plan.CorruptAtBytes[0]}
		}
		f.readDelay, f.writeDelay = plan.ReadDelay, plan.WriteDelay
	} else {
		if in.cfg.RefuseProb > 0 {
			f.refuse = mat.NewRNG(subSeed(in.cfg.Seed, idx, 1)).Bernoulli(in.cfg.RefuseProb)
		}
		if in.cfg.DropMeanBytes > 0 {
			rng := mat.NewRNG(subSeed(in.cfg.Seed, idx, 2))
			f.dropAt = int64(rng.Exponential(1/in.cfg.DropMeanBytes)) + 1
		}
		if in.cfg.CorruptMeanBytes > 0 {
			rng := mat.NewRNG(subSeed(in.cfg.Seed, idx, 3))
			cs := &corruptStream{rng: rng, mean: in.cfg.CorruptMeanBytes}
			cs.next = int64(rng.Exponential(1/cs.mean)) + 1
			f.corrupt = cs
		}
		if in.cfg.DelayProb > 0 && in.cfg.Delay > 0 {
			f.delayRNG = mat.NewRNG(subSeed(in.cfg.Seed, idx, 4))
			f.delayProb = in.cfg.DelayProb
			f.delay = in.cfg.Delay
		}
	}
	if f.refuse {
		in.mu.Lock()
		in.stats.Refused++
		in.mu.Unlock()
	}
	return f
}

func (in *Injector) countDrop() {
	in.mu.Lock()
	in.stats.Dropped++
	in.mu.Unlock()
}

func (in *Injector) countPartialWrite() {
	in.mu.Lock()
	in.stats.PartialWrites++
	in.mu.Unlock()
}

func (in *Injector) countCorrupt(n int) {
	in.mu.Lock()
	in.stats.CorruptedBytes += n
	in.mu.Unlock()
}

func (in *Injector) countDelay() {
	in.mu.Lock()
	in.stats.Delays++
	in.mu.Unlock()
}
