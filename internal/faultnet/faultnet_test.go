package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns a fault-wrapped client side of an in-memory duplex pipe
// plus the raw server side.
func pipePair(in *Injector) (wrapped, raw net.Conn) {
	cli, srv := net.Pipe()
	return in.Conn(cli), srv
}

// drain copies everything readable from c into a buffer until EOF/error.
func drain(c net.Conn, buf *bytes.Buffer, done chan<- struct{}) {
	io.Copy(buf, c) //nolint:errcheck — the error is the stop signal
	close(done)
}

// TestConnFaultModes drives every failure mode through a planned connection
// so the exact behaviour is assertable byte-for-byte.
func TestConnFaultModes(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 100)

	tests := []struct {
		name string
		plan ConnPlan
		// wantDelivered is how many payload bytes the peer must receive.
		wantDelivered int
		wantWriteErr  bool
		// corruptAt marks offsets whose delivered byte must differ.
		corruptAt []int64
	}{
		{name: "clean", plan: ConnPlan{}, wantDelivered: 100},
		{name: "drop-mid-stream", plan: ConnPlan{DropAfterBytes: 37}, wantDelivered: 37, wantWriteErr: true},
		{name: "drop-at-boundary", plan: ConnPlan{DropAfterBytes: 100}, wantDelivered: 100},
		{name: "corrupt-two-bytes", plan: ConnPlan{CorruptAtBytes: []int64{3, 90}}, wantDelivered: 100, corruptAt: []int64{3, 90}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			// The reader side is wrapped for corruption cases (corruption
			// applies to the read stream); the writer side for drop cases.
			in := New(Config{Plan: map[int]ConnPlan{0: tc.plan}})
			cli, srv := net.Pipe()
			var wrappedWriter, reader net.Conn
			if len(tc.plan.CorruptAtBytes) > 0 {
				wrappedWriter, reader = srv, in.Conn(cli)
			} else {
				wrappedWriter, reader = in.Conn(cli), srv
			}

			var got bytes.Buffer
			done := make(chan struct{})
			go func() {
				buf := make([]byte, 16) // small reads: byte-keyed faults must not care
				for {
					n, err := reader.Read(buf)
					got.Write(buf[:n])
					if err != nil {
						close(done)
						return
					}
				}
			}()

			n, err := wrappedWriter.Write(payload)
			if tc.wantWriteErr {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("write err = %v, want ErrInjected", err)
				}
				if n != tc.wantDelivered {
					t.Errorf("partial write delivered %d bytes, want %d", n, tc.wantDelivered)
				}
			} else if err != nil {
				t.Fatalf("write: %v", err)
			}
			wrappedWriter.Close()
			srv.Close()
			cli.Close()
			<-done

			if got.Len() != tc.wantDelivered {
				t.Fatalf("peer received %d bytes, want %d", got.Len(), tc.wantDelivered)
			}
			for i, b := range got.Bytes() {
				want := byte(0xAA)
				for _, off := range tc.corruptAt {
					if int64(i) == off {
						want = 0xAA ^ 0xFF
					}
				}
				if b != want {
					t.Errorf("byte %d = %#x, want %#x", i, b, want)
				}
			}
		})
	}
}

// TestDropIndependentOfChunking verifies the core determinism property: the
// drop point is a byte position, so slicing the same stream into different
// write sizes severs the connection after the same number of bytes.
func TestDropIndependentOfChunking(t *testing.T) {
	const dropAt = 1000
	for _, chunk := range []int{1, 7, 64, 999, 5000} {
		in := New(Config{Plan: map[int]ConnPlan{0: {DropAfterBytes: dropAt}}})
		wrapped, raw := pipePair(in)
		var got bytes.Buffer
		done := make(chan struct{})
		go drain(raw, &got, done)

		total := 0
		var err error
		buf := bytes.Repeat([]byte{1}, chunk)
		for err == nil {
			var n int
			n, err = wrapped.Write(buf)
			total += n
		}
		raw.Close()
		<-done
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("chunk %d: err = %v, want ErrInjected", chunk, err)
		}
		if total != dropAt || got.Len() != dropAt {
			t.Errorf("chunk %d: wrote %d / delivered %d bytes, want %d",
				chunk, total, got.Len(), dropAt)
		}
	}
}

// TestProbabilisticDeterminism: two injectors with the same seed must give
// identical fates to the same connection sequence.
func TestProbabilisticDeterminism(t *testing.T) {
	fates := func(seed uint64) []int64 {
		in := New(Config{Seed: seed, DropMeanBytes: 512, RefuseProb: 0.2})
		out := make([]int64, 20)
		for i := range out {
			f := in.newFate()
			if f.refuse {
				out[i] = -2
			} else {
				out[i] = f.dropAt
			}
		}
		return out
	}
	a, b, c := fates(42), fates(42), fates(43)
	sameAB, sameAC := true, true
	for i := range a {
		sameAB = sameAB && a[i] == b[i]
		sameAC = sameAC && a[i] == c[i]
	}
	if !sameAB {
		t.Errorf("same seed produced different fates: %v vs %v", a, b)
	}
	if sameAC {
		t.Errorf("different seeds produced identical fates: %v", a)
	}
	refusals := 0
	for _, v := range a {
		if v == -2 {
			refusals++
		}
	}
	if refusals == 0 || refusals == len(a) {
		t.Errorf("RefuseProb=0.2 refused %d of %d conns", refusals, len(a))
	}
}

func TestRefusedDialAndConn(t *testing.T) {
	in := New(Config{Plan: map[int]ConnPlan{0: {Refuse: true}, 1: {Refuse: true}}})
	if _, err := in.TCPDialer()("127.0.0.1:1", time.Second); !errors.Is(err, ErrInjected) {
		t.Errorf("refused dial = %v, want ErrInjected", err)
	}
	cli, srv := net.Pipe()
	defer srv.Close()
	c := in.Conn(cli)
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Errorf("refused conn read = %v, want ErrInjected", err)
	}
	if _, err := c.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Errorf("refused conn write = %v, want ErrInjected", err)
	}
	st := in.Stats()
	if st.Refused != 2 || st.Conns != 2 {
		t.Errorf("stats = %+v, want 2 refused of 2", st)
	}
}

func TestListenerRefusesAndWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	in := New(Config{Plan: map[int]ConnPlan{0: {Refuse: true}}})
	fln := in.Listener(ln)
	defer fln.Close()

	type result struct {
		refusedEOF bool
		err        error
	}
	results := make(chan result, 2)
	go func() {
		// First dial: refused — the client sees an immediate close.
		c1, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			results <- result{err: err}
			return
		}
		_, err = c1.Read(make([]byte, 1))
		results <- result{refusedEOF: errors.Is(err, io.EOF)}
		c1.Close()
		// Second dial: accepted and echoed back.
		c2, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			results <- result{err: err}
			return
		}
		defer c2.Close()
		if _, err := c2.Write([]byte("ping")); err != nil {
			results <- result{err: err}
			return
		}
		buf := make([]byte, 4)
		_, err = io.ReadFull(c2, buf)
		results <- result{err: err}
	}()

	// Accept must skip the refused conn and deliver the second one.
	conn, err := fln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer conn.Close()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatalf("echo: %v", err)
	}
	r1 := <-results
	if r1.err != nil || !r1.refusedEOF {
		t.Errorf("refused client: %+v, want clean EOF", r1)
	}
	if r2 := <-results; r2.err != nil {
		t.Errorf("accepted client: %v", r2.err)
	}
	if st := in.Stats(); st.Refused != 1 {
		t.Errorf("stats = %+v, want 1 refusal", st)
	}
}

func TestDelayInjection(t *testing.T) {
	in := New(Config{Plan: map[int]ConnPlan{0: {WriteDelay: 30 * time.Millisecond}}})
	wrapped, raw := pipePair(in)
	defer raw.Close()
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(raw, &got, done)

	start := time.Now()
	if _, err := wrapped.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("write returned after %v, want >= ~30ms delay", elapsed)
	}
	wrapped.Close()
	<-done
	if in.Stats().Delays != 1 {
		t.Errorf("stats = %+v, want 1 delay", in.Stats())
	}
}

func TestWriteChunking(t *testing.T) {
	// Count underlying writes through a middle conn.
	cli, srv := net.Pipe()
	counter := &countingConn{Conn: cli}
	in := New(Config{WriteChunkBytes: 10})
	wrapped := in.Conn(counter)
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(srv, &got, done)

	if _, err := wrapped.Write(bytes.Repeat([]byte{7}, 95)); err != nil {
		t.Fatalf("write: %v", err)
	}
	wrapped.Close()
	<-done
	if got.Len() != 95 {
		t.Errorf("delivered %d bytes, want 95", got.Len())
	}
	counter.mu.Lock()
	calls := counter.writes
	counter.mu.Unlock()
	if calls != 10 { // ceil(95/10)
		t.Errorf("underlying writes = %d, want 10", calls)
	}
}

type countingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

// TestCorruptionProbabilistic checks seeded corruption both corrupts and is
// reproducible across injectors.
func TestCorruptionProbabilistic(t *testing.T) {
	send := bytes.Repeat([]byte{0x55}, 4096)
	received := func(seed uint64) []byte {
		in := New(Config{Seed: seed, CorruptMeanBytes: 256})
		cli, srv := net.Pipe()
		wrapped := in.Conn(cli)
		go func() {
			srv.Write(send) //nolint:errcheck
			srv.Close()
		}()
		var got bytes.Buffer
		io.Copy(&got, wrapped) //nolint:errcheck
		if in.Stats().CorruptedBytes == 0 {
			t.Fatalf("seed %d: no corruption at mean gap 256 over 4096 bytes", seed)
		}
		return got.Bytes()
	}
	a, b := received(9), received(9)
	if !bytes.Equal(a, b) {
		t.Error("same seed corrupted different positions")
	}
	if bytes.Equal(a, send) {
		t.Error("corruption left the stream untouched")
	}
}

// TestZeroConfigIsTransparent: the zero config must behave exactly like the
// raw connection.
func TestZeroConfigIsTransparent(t *testing.T) {
	in := New(Config{})
	wrapped, raw := pipePair(in)
	payload := bytes.Repeat([]byte{0x42}, 10000)
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(raw, &got, done)
	if n, err := wrapped.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	wrapped.Close()
	<-done
	if !bytes.Equal(got.Bytes(), payload) {
		t.Error("zero-config wrapper altered the stream")
	}
	st := in.Stats()
	if st.Dropped+st.Refused+st.CorruptedBytes+st.Delays+st.PartialWrites != 0 {
		t.Errorf("zero config injected faults: %+v", st)
	}
}
