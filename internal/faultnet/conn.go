package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn wraps an existing connection with this injector's next fate. A
// refused fate yields a connection whose every operation fails immediately
// (the underlying conn is closed), so callers see a uniform net.Conn.
func (in *Injector) Conn(c net.Conn) net.Conn {
	f := in.newFate()
	if f.refuse {
		c.Close()
		return &refusedConn{Conn: c, idx: f.idx}
	}
	return &faultConn{Conn: c, in: in, fate: f}
}

// refusedConn fails every operation; only Close and the metadata accessors
// pass through.
type refusedConn struct {
	net.Conn
	idx int
}

func (c *refusedConn) err() error {
	return fmt.Errorf("conn %d refused: %w", c.idx, ErrInjected)
}

func (c *refusedConn) Read([]byte) (int, error)  { return 0, c.err() }
func (c *refusedConn) Write([]byte) (int, error) { return 0, c.err() }

// faultConn is a net.Conn whose byte streams carry the faults decided at
// creation. All fault positions are cumulative byte offsets, so the
// behaviour is independent of how reads and writes are sliced into calls.
type faultConn struct {
	net.Conn
	in   *Injector
	fate fate

	mu        sync.Mutex
	total     int64 // bytes transferred in either direction
	readTotal int64 // bytes delivered to Read callers
	dropped   bool
}

func (c *faultConn) dropErr() error {
	return fmt.Errorf("conn %d dropped after %d bytes: %w", c.fate.idx, c.total, ErrInjected)
}

// budget returns how many of want bytes may still flow before the drop
// threshold, or an error when the connection is already severed.
func (c *faultConn) budget(want int) (int, error) {
	if c.dropped {
		return 0, c.dropErr()
	}
	if c.fate.dropAt < 0 {
		return want, nil
	}
	left := c.fate.dropAt - c.total
	if left <= 0 {
		c.drop()
		return 0, c.dropErr()
	}
	if int64(want) > left {
		return int(left), nil
	}
	return want, nil
}

// drop severs the connection; the caller holds c.mu.
func (c *faultConn) drop() {
	if !c.dropped {
		c.dropped = true
		c.Conn.Close()
		c.in.countDrop()
	}
}

// maybeDelay sleeps outside the lock when this call drew a delay fault.
func (c *faultConn) maybeDelay(fixed time.Duration) {
	c.mu.Lock()
	d := fixed
	if c.fate.delayRNG != nil && c.fate.delayRNG.Bernoulli(c.fate.delayProb) {
		d += c.fate.delay
	}
	c.mu.Unlock()
	if d > 0 {
		c.in.countDelay()
		time.Sleep(d)
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.maybeDelay(c.fate.readDelay)
	c.mu.Lock()
	allowed, err := c.budget(len(p))
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if allowed == 0 { // zero-length caller read
		return c.Conn.Read(p)
	}
	n, err := c.Conn.Read(p[:allowed])
	if n <= 0 {
		return n, err
	}
	c.mu.Lock()
	// Corrupt any scheduled offsets that fall inside this chunk.
	if cs := c.fate.corrupt; cs != nil {
		corrupted := 0
		for cs.peek() >= 0 && cs.peek() < c.readTotal+int64(n) {
			off := cs.peek()
			mask := cs.take()
			if off >= c.readTotal { // earlier offsets were skipped bytes
				p[off-c.readTotal] ^= mask
				corrupted++
			}
		}
		if corrupted > 0 {
			c.in.countCorrupt(corrupted)
		}
	}
	c.readTotal += int64(n)
	c.total += int64(n)
	if c.fate.dropAt >= 0 && c.total >= c.fate.dropAt {
		// Deliver this final chunk, then sever: the next call fails.
		c.drop()
	}
	c.mu.Unlock()
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.maybeDelay(c.fate.writeDelay)
	c.mu.Lock()
	allowed, err := c.budget(len(p))
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	truncated := allowed < len(p)
	written := 0
	for written < allowed {
		chunk := allowed - written
		if c.in.cfg.WriteChunkBytes > 0 && chunk > c.in.cfg.WriteChunkBytes {
			chunk = c.in.cfg.WriteChunkBytes
		}
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		if err != nil {
			c.account(written)
			return written, err
		}
	}
	c.account(written)
	if truncated {
		// The prefix reached the wire; the rest never will — a partial
		// write followed by a severed connection.
		c.in.countPartialWrite()
		c.mu.Lock()
		c.drop()
		err := c.dropErr()
		c.mu.Unlock()
		return written, err
	}
	return written, nil
}

// account records n written bytes and severs the conn at the threshold.
func (c *faultConn) account(n int) {
	c.mu.Lock()
	c.total += int64(n)
	if c.fate.dropAt >= 0 && c.total >= c.fate.dropAt {
		c.drop()
	}
	c.mu.Unlock()
}
