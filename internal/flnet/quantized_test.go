package flnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/ml"
)

func TestQuantizedRequestRoundTrip(t *testing.T) {
	m := ml.NewModel(3, 4, ml.Softmax)
	req := TrainRequest{Round: 1, Epochs: 2, LearningRate: 0.1, ReplyBits: ml.Quant8, Model: m}
	payload, err := encodeTrainRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := decodeTrainRequest(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.ReplyBits != ml.Quant8 {
		t.Errorf("ReplyBits = %d, want 8", back.ReplyBits)
	}
}

func TestQuantizedReplyShrinksWire(t *testing.T) {
	m := ml.NewModel(10, 64, ml.Softmax)
	m.W.Fill(0.5)
	full := TrainReply{Round: 0, Loss: 1, Samples: 10, Bits: 0, Model: m}
	q8 := TrainReply{Round: 0, Loss: 1, Samples: 10, Bits: ml.Quant8, Model: m}

	fullPayload, err := encodeTrainReply(full)
	if err != nil {
		t.Fatalf("encode full: %v", err)
	}
	q8Payload, err := encodeTrainReply(q8)
	if err != nil {
		t.Fatalf("encode q8: %v", err)
	}
	if len(q8Payload)*6 > len(fullPayload) {
		t.Errorf("8-bit payload %d bytes vs full %d — expected ~8x shrink",
			len(q8Payload), len(fullPayload))
	}
	back, err := decodeTrainReply(q8Payload)
	if err != nil {
		t.Fatalf("decode q8: %v", err)
	}
	if back.Bits != ml.Quant8 || back.WireBytes != len(q8Payload)-20 {
		t.Errorf("metadata lost: bits=%d wire=%d", back.Bits, back.WireBytes)
	}
	// Reconstruction error bounded.
	bound := ml.MaxQuantError(m, ml.Quant8) * 1.01
	if d := back.Model.ParamDistance(m); d > bound*float64(m.ParamCount()) {
		t.Errorf("reconstruction distance %v too large", d)
	}
}

func TestInvalidQuantBitsRejected(t *testing.T) {
	m := ml.NewModel(2, 2, ml.Softmax)
	if _, err := encodeTrainReply(TrainReply{Bits: 12, Model: m}); err == nil {
		t.Error("bad reply bits must be rejected at encode")
	}
	req := TrainRequest{ReplyBits: 12, Model: m}
	payload, err := encodeTrainRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err) // encode does not validate; decode does
	}
	if _, err := decodeTrainRequest(payload); err == nil {
		t.Error("bad request bits must be rejected at decode")
	}
}

// TestQuantizedNetworkedTraining runs a full networked cluster with 8-bit
// uploads and verifies training still converges.
func TestQuantizedNetworkedTraining(t *testing.T) {
	const servers = 4
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 400
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: servers, LocalEpochs: 3, LearningRate: 0.3, Decay: 0.99, Seed: 1,
		},
		Classes:         train.Classes,
		Features:        train.Dim(),
		RoundTimeout:    30 * time.Second,
		JoinTimeout:     10 * time.Second,
		UploadQuantBits: ml.Quant8,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()

	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = RunEdgeServer(context.Background(), EdgeConfig{
				Addr: coord.Addr().String(), Shard: shards[i], Seed: uint64(i + 1),
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, servers); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	history, err := coord.Run(ctx, fl.MaxRounds(6))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wg.Wait()
	last := history[len(history)-1]
	if last.TrainLoss >= history[0].TrainLoss {
		t.Errorf("quantized training loss did not fall: %v -> %v",
			history[0].TrainLoss, last.TrainLoss)
	}
	if last.TestAccuracy < 0.5 {
		t.Errorf("quantized training accuracy = %v after 6 rounds", last.TestAccuracy)
	}
}

func TestCoordinatorRejectsBadQuantBits(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	_, err = NewCoordinator(CoordinatorConfig{
		FL:              fl.Config{ClientsPerRound: 1, LocalEpochs: 1, LearningRate: 0.1},
		Classes:         2,
		Features:        2,
		UploadQuantBits: 12,
	}, ln, nil)
	if err == nil {
		t.Error("bits=12 must be rejected")
	}
}
