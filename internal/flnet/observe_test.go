package flnet

import (
	"bytes"
	"context"
	"testing"
	"time"

	"eefei/internal/fl"
)

// TestCoordinatorObserver attaches the fl.RoundObserver to a live loopback
// cluster and checks the networked phase/fault telemetry: one record per
// completed round, Workers = K dispatch targets, train/evaluate phases
// timed (both network legs land in train), fault counters mirroring the
// RoundRecord, and the shared TraceWriter sink collecting every round.
func TestCoordinatorObserver(t *testing.T) {
	coord, wait := startCluster(t, 4, 3, 2)
	var buf bytes.Buffer
	tw := fl.NewTraceWriter(&buf)
	var stats []fl.RoundStats
	coord.SetRoundObserver(fl.FuncObserver(func(s fl.RoundStats) {
		stats = append(stats, s)
		tw.ObserveRound(s)
	}))
	coord.SetMemSampling(true)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, 4); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	const rounds = 3
	history, err := coord.Run(ctx, fl.MaxRounds(rounds))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	coord.Shutdown()
	for i, err := range wait() {
		if err != nil {
			t.Errorf("edge server %d: %v", i, err)
		}
	}

	if len(stats) != rounds {
		t.Fatalf("observed %d rounds, want %d", len(stats), rounds)
	}
	for i, s := range stats {
		rec := history[i]
		if s.Round != rec.Round {
			t.Errorf("stats[%d].Round = %d, record has %d", i, s.Round, rec.Round)
		}
		if s.Workers != 3 {
			t.Errorf("round %d: workers = %d, want K=3 dispatch targets", i, s.Workers)
		}
		if s.Train <= 0 || s.Evaluate <= 0 {
			t.Errorf("round %d: train %v / evaluate %v not timed", i, s.Train, s.Evaluate)
		}
		if sum := s.Select + s.Train + s.Aggregate + s.Evaluate; s.Total < sum {
			t.Errorf("round %d: total %v below phase sum %v", i, s.Total, sum)
		}
		if s.Dropped != len(rec.Dropped) || s.Rejoins != rec.Rejoins || s.Retries != rec.Retries {
			t.Errorf("round %d: fault telemetry (dropped %d, rejoins %d, retries %d) disagrees with record %+v",
				i, s.Dropped, s.Rejoins, s.Retries, rec)
		}
		if !s.MemSampled {
			t.Errorf("round %d: memstats not sampled", i)
		}
	}
	if tw.Err() != nil || tw.Lines() != rounds {
		t.Errorf("trace sink: %d lines, err %v", tw.Lines(), tw.Err())
	}
}
