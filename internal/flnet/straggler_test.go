package flnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
)

// TestStragglerToleranceDropsDeadClient verifies that with MinReplies set,
// a client that dies after joining does not kill the run: the round
// completes on the survivors and the dead client never gets selected again.
func TestStragglerToleranceDropsDeadClient(t *testing.T) {
	const servers = 4
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 400
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			// Select everyone each round so the dead client is hit round 0.
			ClientsPerRound: servers,
			LocalEpochs:     2,
			LearningRate:    0.2,
			Seed:            1,
		},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 5 * time.Second,
		JoinTimeout:  10 * time.Second,
		MinReplies:   servers - 1,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()

	// Three healthy edge servers…
	var wg sync.WaitGroup
	for i := 0; i < servers-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = RunEdgeServer(context.Background(), EdgeConfig{
				Addr: coord.Addr().String(), Shard: shards[i], Seed: uint64(i + 1),
			})
		}(i)
	}
	// …and one that joins, then dies before serving any request. The dial
	// must run concurrently with WaitForClients, which serves the handshake.
	deadIDCh := make(chan int, 1)
	dialErr := make(chan error, 1)
	go func() {
		dying, err := Dial(EdgeConfig{Addr: coord.Addr().String(), Shard: shards[servers-1], Seed: 99})
		if err != nil {
			dialErr <- err
			return
		}
		deadIDCh <- dying.ID()
		dying.Close()
		dialErr <- nil
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, servers); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	if err := <-dialErr; err != nil {
		t.Fatalf("Dial dying client: %v", err)
	}
	deadID := <-deadIDCh

	// The config asks for K=4 but only 3 are alive after the drop. Run one
	// full-fleet round that hits the dead client and survives on 3 replies.
	rec, err := coord.Round(ctx)
	if err != nil {
		t.Fatalf("first round with a dead client: %v", err)
	}
	if len(rec.Selected) != servers-1 {
		t.Errorf("survivors = %v, want %d of them", rec.Selected, servers-1)
	}
	for _, id := range rec.Selected {
		if id == deadID {
			t.Errorf("dead client %d listed among survivors %v", deadID, rec.Selected)
		}
	}

	coord.Shutdown()
	wg.Wait()
}

// TestStragglerToleranceMinRepliesEnforced verifies that a round still fails
// when fewer than MinReplies clients respond.
func TestStragglerToleranceMinRepliesEnforced(t *testing.T) {
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 100
	train, err := dataset.Synthesize(dcfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL:           fl.Config{ClientsPerRound: 2, LocalEpochs: 1, LearningRate: 0.1, Seed: 1},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 2 * time.Second,
		JoinTimeout:  5 * time.Second,
		MinReplies:   2, // both must answer
	}, ln, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()

	// Both clients join, then immediately die. Dials must run concurrently
	// with WaitForClients: the Welcome handshake is served from there.
	dialErrs := make(chan error, 2)
	go func() {
		for i := 0; i < 2; i++ {
			cl, err := Dial(EdgeConfig{Addr: coord.Addr().String(), Shard: shards[i], Seed: uint64(i)})
			if err != nil {
				dialErrs <- err
				return
			}
			cl.Close()
		}
		dialErrs <- nil
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, 2); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	if err := <-dialErrs; err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := coord.Round(ctx); err == nil {
		t.Error("round with zero replies must fail even with tolerance on")
	}
}
