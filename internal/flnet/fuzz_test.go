package flnet

import (
	"bytes"
	"net"
	"testing"
	"time"

	"eefei/internal/fl"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// Fuzzers for every decode path reachable from the network: a malicious or
// corrupt peer must produce errors, never panics or huge allocations.

func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, MsgJoin, encodeUint32(3000))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 1, byte(MsgShutdown)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are expected and fine.
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}

func FuzzDecodeTrainRequest(f *testing.F) {
	m := ml.NewModel(2, 3, ml.Softmax)
	good, err := encodeTrainRequest(TrainRequest{Round: 1, Epochs: 2, LearningRate: 0.1, Model: m})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeTrainRequest(data)
		if err == nil {
			// A successful decode must yield a usable model.
			if req.Model == nil || req.Model.Classes() <= 0 || req.Model.Features() <= 0 {
				t.Fatalf("decode accepted an unusable request: %+v", req)
			}
		}
	})
}

func FuzzDecodeTrainRequestV2(f *testing.F) {
	m := ml.NewModel(2, 3, ml.Softmax)
	full := appendTrainRequestV2Header(nil, TrainRequest{Round: 2, BaseRound: 2, Epochs: 1, LearningRate: 0.1})
	full = m.AppendBinary(full)
	f.Add(full)
	resid := appendTrainRequestV2Header(nil, TrainRequest{Round: 2, BaseRound: 1, DownBits: ml.Quant8, Epochs: 1, LearningRate: 0.1})
	resid, err := ml.AppendQuantized(resid, m, ml.Quant8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(resid)
	// Truncated residual: valid header, short quantized body.
	f.Add(resid[:len(resid)-3])
	// Header-only, empty, and a reserved-byte violation.
	f.Add(full[:trainReqV2HeaderLen])
	f.Add([]byte{})
	bad := append([]byte(nil), full...)
	bad[21] = 0xff
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, body, err := decodeTrainRequestV2(data)
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the header invariants the edge
		// relies on, and the body must either decode or error — no panics.
		if req.DownBits == 0 && req.BaseRound != req.Round {
			t.Fatalf("full request with base %d != round %d accepted", req.BaseRound, req.Round)
		}
		if req.BaseRound > req.Round {
			t.Fatalf("future base round accepted: %+v", req)
		}
		var scratch ml.Model
		if req.DownBits == 0 {
			_ = scratch.UnmarshalBinaryReuse(body)
		} else {
			_ = scratch.DequantizeInto(body)
		}
	})
}

func FuzzDecodeTrainReply(f *testing.F) {
	m := ml.NewModel(2, 3, ml.Sigmoid)
	full, err := encodeTrainReply(TrainReply{Round: 1, Loss: 0.5, Samples: 10, Model: m})
	if err != nil {
		f.Fatal(err)
	}
	quant, err := encodeTrainReply(TrainReply{Round: 1, Loss: 0.5, Samples: 10, Bits: ml.Quant8, Model: m})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(quant)
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeTrainReply(data)
		if err == nil {
			if rep.Model == nil || rep.Model.Classes() <= 0 {
				t.Fatalf("decode accepted an unusable reply: %+v", rep)
			}
		}
	})
}

// fuzzAddr / fuzzConn form a non-blocking net.Conn over an in-memory byte
// slice: reads drain the slice then return EOF, writes always succeed. The
// register handshake can therefore never block on it, so every fuzz
// iteration terminates — a hang would surface as the fuzzer timing out.
type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz" }

type fuzzConn struct{ r *bytes.Reader }

func (c *fuzzConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *fuzzConn) Close() error                       { return nil }
func (c *fuzzConn) LocalAddr() net.Addr                { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr               { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error        { return nil }
func (c *fuzzConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(t time.Time) error { return nil }

// FuzzRejoinHandshake feeds arbitrary bytes into the coordinator's
// registration handshake — the frame a reconnecting (or malicious) edge
// sends first. Malformed joins and re-registrations must produce errors,
// never panics, and must leave the roster consistent.
func FuzzRejoinHandshake(f *testing.F) {
	var join bytes.Buffer
	_ = writeFrame(&join, MsgJoin, encodeUint32(50))
	f.Add(join.Bytes())
	var rejoin bytes.Buffer
	_ = writeFrame(&rejoin, MsgRejoin, encodeRejoin(0, 50))
	f.Add(rejoin.Bytes())
	var unknown bytes.Buffer
	_ = writeFrame(&unknown, MsgRejoin, encodeRejoin(9999, 50))
	f.Add(unknown.Bytes())
	var short bytes.Buffer
	_ = writeFrame(&short, MsgRejoin, []byte{1, 2})
	f.Add(short.Bytes())
	var wrongType bytes.Buffer
	_ = writeFrame(&wrongType, MsgTrainReply, encodeRejoin(0, 50))
	f.Add(wrongType.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 42})
	f.Add([]byte{})
	// Versioned (v2) handshakes, plus mismatched version bytes: a versioned
	// body advertising v1, and a far-future version that must negotiate down.
	var joinV2 bytes.Buffer
	_ = writeFrame(&joinV2, MsgJoin, encodeJoin(50, ProtoV2))
	f.Add(joinV2.Bytes())
	var rejoinV2 bytes.Buffer
	_ = writeFrame(&rejoinV2, MsgRejoin, encodeRejoinProto(0, 50, ProtoV2))
	f.Add(rejoinV2.Bytes())
	var joinBadVer bytes.Buffer
	_ = writeFrame(&joinBadVer, MsgJoin, []byte{50, 0, 0, 0, ProtoV1})
	f.Add(joinBadVer.Bytes())
	var joinFuture bytes.Buffer
	_ = writeFrame(&joinFuture, MsgJoin, encodeJoin(50, 250))
	f.Add(joinFuture.Bytes())
	// Oversized length prefix: promises maxFrameBytes+1, must be rejected
	// deterministically before any allocation of that size.
	f.Add([]byte{0x04, 0x00, 0x00, 0x01, byte(MsgJoin)})

	f.Fuzz(func(t *testing.T, data []byte) {
		// A fresh in-package coordinator with one pre-registered client, so
		// rejoin frames can hit both the known-id and unknown-id paths.
		c := &Coordinator{
			cfg: CoordinatorConfig{
				FL:       fl.Config{ClientsPerRound: 1, LocalEpochs: 1, LearningRate: 0.1},
				Classes:  2,
				Features: 3,
			},
			rng: mat.NewRNG(1),
		}
		c.clients = []*clientConn{{
			id:        0,
			conn:      &fuzzConn{r: bytes.NewReader(nil)},
			samples:   5,
			connected: true,
		}}

		_ = c.register(&fuzzConn{r: bytes.NewReader(data)})

		// Roster invariants survive any input: slot 0 still exists under
		// its id, and at most one new slot was appended with the next id.
		if len(c.clients) < 1 || len(c.clients) > 2 {
			t.Fatalf("roster has %d slots after one handshake", len(c.clients))
		}
		for i, cl := range c.clients {
			if cl.id != i {
				t.Fatalf("slot %d holds id %d", i, cl.id)
			}
			if cl.conn == nil {
				t.Fatalf("slot %d lost its connection", i)
			}
		}
	})
}
