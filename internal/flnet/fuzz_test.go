package flnet

import (
	"bytes"
	"testing"

	"eefei/internal/ml"
)

// Fuzzers for every decode path reachable from the network: a malicious or
// corrupt peer must produce errors, never panics or huge allocations.

func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, MsgJoin, encodeUint32(3000))
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 1, byte(MsgShutdown)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are expected and fine.
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}

func FuzzDecodeTrainRequest(f *testing.F) {
	m := ml.NewModel(2, 3, ml.Softmax)
	good, err := encodeTrainRequest(TrainRequest{Round: 1, Epochs: 2, LearningRate: 0.1, Model: m})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeTrainRequest(data)
		if err == nil {
			// A successful decode must yield a usable model.
			if req.Model == nil || req.Model.Classes() <= 0 || req.Model.Features() <= 0 {
				t.Fatalf("decode accepted an unusable request: %+v", req)
			}
		}
	})
}

func FuzzDecodeTrainReply(f *testing.F) {
	m := ml.NewModel(2, 3, ml.Sigmoid)
	full, err := encodeTrainReply(TrainReply{Round: 1, Loss: 0.5, Samples: 10, Model: m})
	if err != nil {
		f.Fatal(err)
	}
	quant, err := encodeTrainReply(TrainReply{Round: 1, Loss: 0.5, Samples: 10, Bits: ml.Quant8, Model: m})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(quant)
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeTrainReply(data)
		if err == nil {
			if rep.Model == nil || rep.Model.Classes() <= 0 {
				t.Fatalf("decode accepted an unusable reply: %+v", rep)
			}
		}
	})
}
