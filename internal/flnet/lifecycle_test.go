package flnet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
)

// lifecycleCoordinator builds a minimal coordinator on a loopback listener
// for lifecycle edge-case tests.
func lifecycleCoordinator(t *testing.T, minReplies int) *Coordinator {
	t.Helper()
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 50
	test, err := dataset.Synthesize(dcfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: 1,
			LocalEpochs:     1,
			LearningRate:    0.5,
			Seed:            1,
		},
		Classes:      test.Classes,
		Features:     test.Dim(),
		RoundTimeout: 5 * time.Second,
		JoinTimeout:  30 * time.Second,
		MinReplies:   minReplies,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Shutdown)
	return coord
}

func TestWaitForClientsContextCancelMidWait(t *testing.T) {
	coord := lifecycleCoordinator(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- coord.WaitForClients(ctx, 1) }()
	time.Sleep(20 * time.Millisecond) // let the wait actually start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("WaitForClients after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForClients did not return after context cancel")
	}
}

// rawJoin registers a fake client over plain TCP and returns its conn. The
// fake never answers training requests, so a round against it hangs until
// something closes the connection.
func rawJoin(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := writeFrame(conn, MsgJoin, encodeUint32(10)); err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := expectFrame(conn, MsgWelcome); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	return conn
}

func TestShutdownWithRoundInFlight(t *testing.T) {
	coord := lifecycleCoordinator(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.AwaitRoster(ctx, 0, time.Second); err != nil {
		t.Fatalf("start accept loop: %v", err)
	}
	conn := rawJoin(t, coord.Addr().String())
	defer conn.Close()
	if err := coord.AwaitRoster(ctx, 1, 5*time.Second); err != nil {
		t.Fatalf("AwaitRoster: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := coord.Round(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // round is now blocked on the mute client
	coord.Shutdown()
	select {
	case err := <-done:
		if err == nil {
			t.Error("round over a shutdown coordinator reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Round did not unblock after Shutdown")
	}
}

func TestDoubleShutdown(t *testing.T) {
	coord := lifecycleCoordinator(t, 0)
	coord.Shutdown()
	coord.Shutdown() // must be idempotent, not panic on closed listener/conns
}

func TestRoundAfterShutdownErrors(t *testing.T) {
	coord := lifecycleCoordinator(t, 0)
	coord.Shutdown()
	if _, err := coord.Round(context.Background()); err == nil {
		t.Error("Round after Shutdown must error")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.AwaitRoster(ctx, 1, time.Second); err == nil {
		t.Error("AwaitRoster after Shutdown must error")
	}
}

func TestJoinAfterShutdownRefused(t *testing.T) {
	coord := lifecycleCoordinator(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	coord.AwaitRoster(ctx, 0, time.Second)
	coord.Shutdown()
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 20
	shard, err := dataset.Synthesize(dcfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if _, err := Dial(EdgeConfig{
		Addr:        coord.Addr().String(),
		Shard:       shard,
		DialTimeout: 2 * time.Second,
	}); err == nil {
		t.Error("Dial against a shut-down coordinator must fail")
	}
}
