package flnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"eefei/internal/mat"
)

func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name    string
		policy  RetryPolicy
		attempt int
		want    time.Duration
	}{
		{"first retry uses base", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Multiplier: 2}, 1, 100 * time.Millisecond},
		{"second doubles", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Multiplier: 2}, 2, 200 * time.Millisecond},
		{"third doubles again", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Multiplier: 2}, 3, 400 * time.Millisecond},
		{"fourth", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Multiplier: 2}, 4, 800 * time.Millisecond},
		{"cap applies", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}, 10, time.Second},
		{"triple multiplier", RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Minute, Multiplier: 3}, 3, 90 * time.Millisecond},
		{"attempt zero clamps to one", RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}, 0, 50 * time.Millisecond},
		{"zero base defaults to 100ms", RetryPolicy{Multiplier: 2, MaxDelay: time.Minute}, 1, 100 * time.Millisecond},
		{"zero cap defaults to 5s", RetryPolicy{BaseDelay: time.Second, Multiplier: 10}, 5, 5 * time.Second},
		{"sub-1 multiplier defaults to 2", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Minute, Multiplier: 0.5}, 2, 200 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Backoff(tc.attempt, nil); got != tc.want {
				t.Errorf("Backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   5 * time.Second,
		Multiplier: 2,
		JitterFrac: 0.2,
	}
	rng := mat.NewRNG(7)
	for attempt := 1; attempt <= 8; attempt++ {
		nominal := p.Backoff(attempt, nil) // jitter needs an rng; nil = exact
		got := p.Backoff(attempt, rng)
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if got < lo || got > hi {
			t.Errorf("attempt %d: jittered %v outside [%v, %v]", attempt, got, lo, hi)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := DefaultRetryPolicy()
	a, b := mat.NewRNG(99), mat.NewRNG(99)
	for attempt := 1; attempt <= 6; attempt++ {
		if da, db := p.Backoff(attempt, a), p.Backoff(attempt, b); da != db {
			t.Errorf("attempt %d: same-seed RNGs gave %v vs %v", attempt, da, db)
		}
	}
}

func TestRetryPolicyEnabled(t *testing.T) {
	if (RetryPolicy{}).Enabled() {
		t.Error("zero policy must be disabled")
	}
	if !(RetryPolicy{MaxAttempts: 1}).Enabled() {
		t.Error("MaxAttempts 1 must enable retries")
	}
	if !DefaultRetryPolicy().Enabled() {
		t.Error("default policy must be enabled")
	}
}

func TestSleepCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Errorf("sleepCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if err := sleepCtx(context.Background(), 0); err != nil {
		t.Errorf("zero-duration sleep = %v, want nil", err)
	}
	start := time.Now()
	if err := sleepCtx(context.Background(), 5*time.Millisecond); err != nil {
		t.Errorf("short sleep = %v, want nil", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("sleepCtx returned before the requested duration")
	}
}
