// Package flnet is the networked counterpart of package fl: a coordinator
// server and edge-server clients speaking a compact length-prefixed binary
// protocol over TCP. It exists so the system can actually be deployed the
// way the paper's prototype was — one coordinator laptop, N Raspberry-Pi
// edge servers on a LAN — rather than only simulated in-process.
//
// Wire format: every message is a frame
//
//	uint32   big-endian payload length (excluding these 4 bytes)
//	byte     message type
//	payload  type-specific binary (little-endian fixed-width fields,
//	         models in ml's own serialization)
//
// The protocol is strictly request/reply per connection, so no concurrent
// writes occur on a single conn.
package flnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"eefei/internal/ml"
)

// MsgType identifies a protocol frame.
type MsgType byte

const (
	// MsgJoin is sent by an edge server immediately after dialing:
	// payload = uint32 sample count of its local shard.
	MsgJoin MsgType = iota + 1
	// MsgWelcome is the coordinator's reply to MsgJoin:
	// payload = uint32 assigned client id.
	MsgWelcome
	// MsgTrainRequest asks a client to run local training:
	// payload = uint32 round, uint32 epochs, float64 learning rate,
	// serialized global model.
	MsgTrainRequest
	// MsgTrainReply returns the locally trained model:
	// payload = uint32 round, float64 final local loss, uint32 samples,
	// serialized local model.
	MsgTrainReply
	// MsgShutdown tells a client training is over; payload is empty.
	MsgShutdown
	// MsgRejoin re-registers a previously welcomed client after a
	// reconnect: payload = uint32 previously assigned client id, uint32
	// sample count. The coordinator replies MsgWelcome echoing the same id
	// and revives the client's roster slot.
	MsgRejoin
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	switch m {
	case MsgJoin:
		return "join"
	case MsgWelcome:
		return "welcome"
	case MsgTrainRequest:
		return "train-request"
	case MsgTrainReply:
		return "train-reply"
	case MsgShutdown:
		return "shutdown"
	case MsgRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// ErrProtocol is returned (wrapped) for malformed or unexpected frames.
var ErrProtocol = errors.New("flnet: protocol error")

// maxFrameBytes caps a frame so a corrupt peer cannot force a huge
// allocation; 64 MiB comfortably covers any linear model we train.
const maxFrameBytes = 64 << 20

// writeFrame sends one frame.
func writeFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > maxFrameBytes {
		return fmt.Errorf("frame of %d bytes exceeds cap: %w", len(payload), ErrProtocol)
	}
	header := make([]byte, 5)
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)+1))
	header[4] = byte(t)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("write %v header: %w", t, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write %v payload: %w", t, err)
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (MsgType, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, ErrProtocol)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("read frame body: %w", err)
	}
	return MsgType(body[0]), body[1:], nil
}

// expectFrame reads a frame and verifies its type.
func expectFrame(r io.Reader, want MsgType) ([]byte, error) {
	got, payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("got %v, want %v: %w", got, want, ErrProtocol)
	}
	return payload, nil
}

// --- message bodies ---------------------------------------------------------

// TrainRequest is the decoded form of MsgTrainRequest.
type TrainRequest struct {
	Round        int
	Epochs       int
	LearningRate float64
	// ReplyBits asks the client to quantize its uploaded model to the given
	// width (0 = full-precision float64). Quantized uploads shrink the
	// radio payload ~64/bits-fold — a direct e^U energy reduction.
	ReplyBits ml.QuantBits
	Model     *ml.Model
}

func encodeTrainRequest(req TrainRequest) ([]byte, error) {
	modelBytes, err := req.Model.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("encode request model: %w", err)
	}
	buf := make([]byte, 20, 20+len(modelBytes))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(req.Round))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(req.Epochs))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(req.LearningRate))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(req.ReplyBits))
	return append(buf, modelBytes...), nil
}

func decodeTrainRequest(payload []byte) (TrainRequest, error) {
	if len(payload) < 20 {
		return TrainRequest{}, fmt.Errorf("train request of %d bytes: %w", len(payload), ErrProtocol)
	}
	var req TrainRequest
	req.Round = int(binary.LittleEndian.Uint32(payload[0:4]))
	req.Epochs = int(binary.LittleEndian.Uint32(payload[4:8]))
	req.LearningRate = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:16]))
	req.ReplyBits = ml.QuantBits(binary.LittleEndian.Uint32(payload[16:20]))
	switch req.ReplyBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return TrainRequest{}, fmt.Errorf("reply bits %d: %w", req.ReplyBits, ErrProtocol)
	}
	var m ml.Model
	if err := m.UnmarshalBinary(payload[20:]); err != nil {
		return TrainRequest{}, fmt.Errorf("decode request model: %w", err)
	}
	req.Model = &m
	return req, nil
}

// TrainReply is the decoded form of MsgTrainReply.
type TrainReply struct {
	Round   int
	Loss    float64
	Samples int
	// Bits records the codec the model travelled in (0 = float64). The
	// decoded Model is always full precision; quantization error, if any,
	// was incurred on the wire.
	Bits ml.QuantBits
	// WireBytes is the size of the encoded model payload, which upload
	// energy is proportional to.
	WireBytes int
	Model     *ml.Model
}

func encodeTrainReply(rep TrainReply) ([]byte, error) {
	var modelBytes []byte
	var err error
	switch rep.Bits {
	case 0:
		modelBytes, err = rep.Model.MarshalBinary()
	case ml.Quant8, ml.Quant16:
		modelBytes, err = ml.QuantizeModel(rep.Model, rep.Bits)
	default:
		return nil, fmt.Errorf("reply bits %d: %w", rep.Bits, ErrProtocol)
	}
	if err != nil {
		return nil, fmt.Errorf("encode reply model: %w", err)
	}
	buf := make([]byte, 20, 20+len(modelBytes))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(rep.Round))
	binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(rep.Loss))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(rep.Samples))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(rep.Bits))
	return append(buf, modelBytes...), nil
}

func decodeTrainReply(payload []byte) (TrainReply, error) {
	if len(payload) < 20 {
		return TrainReply{}, fmt.Errorf("train reply of %d bytes: %w", len(payload), ErrProtocol)
	}
	var rep TrainReply
	rep.Round = int(binary.LittleEndian.Uint32(payload[0:4]))
	rep.Loss = math.Float64frombits(binary.LittleEndian.Uint64(payload[4:12]))
	rep.Samples = int(binary.LittleEndian.Uint32(payload[12:16]))
	rep.Bits = ml.QuantBits(binary.LittleEndian.Uint32(payload[16:20]))
	rep.WireBytes = len(payload) - 20
	body := payload[20:]
	switch rep.Bits {
	case 0:
		var m ml.Model
		if err := m.UnmarshalBinary(body); err != nil {
			return TrainReply{}, fmt.Errorf("decode reply model: %w", err)
		}
		rep.Model = &m
	case ml.Quant8, ml.Quant16:
		m, err := ml.DequantizeModel(body)
		if err != nil {
			return TrainReply{}, fmt.Errorf("decode quantized reply: %w", err)
		}
		rep.Model = m
	default:
		return TrainReply{}, fmt.Errorf("reply bits %d: %w", rep.Bits, ErrProtocol)
	}
	return rep, nil
}

func encodeUint32(v uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v)
	return buf
}

func decodeUint32(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("uint32 body of %d bytes: %w", len(payload), ErrProtocol)
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// encodeRejoin builds the MsgRejoin body: previously assigned id + samples.
func encodeRejoin(id, samples uint32) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:4], id)
	binary.LittleEndian.PutUint32(buf[4:8], samples)
	return buf
}

// decodeRejoin parses the MsgRejoin body.
func decodeRejoin(payload []byte) (id, samples uint32, err error) {
	if len(payload) != 8 {
		return 0, 0, fmt.Errorf("rejoin body of %d bytes: %w", len(payload), ErrProtocol)
	}
	return binary.LittleEndian.Uint32(payload[0:4]), binary.LittleEndian.Uint32(payload[4:8]), nil
}
