// Package flnet is the networked counterpart of package fl: a coordinator
// server and edge-server clients speaking a compact length-prefixed binary
// protocol over TCP. It exists so the system can actually be deployed the
// way the paper's prototype was — one coordinator laptop, N Raspberry-Pi
// edge servers on a LAN — rather than only simulated in-process.
//
// Wire format: every message is a frame
//
//	uint32   big-endian payload length (excluding these 4 bytes)
//	byte     message type
//	payload  type-specific binary (little-endian fixed-width fields,
//	         models in ml's own serialization)
//
// The protocol is strictly request/reply per connection, so no concurrent
// writes occur on a single conn.
//
// Two protocol versions share this framing. ProtoV1 is the seed protocol:
// 4-byte Join/Welcome bodies and a MsgTrainRequest that always carries the
// full float64 global model. ProtoV2 appends a version byte to the
// Join/Rejoin/Welcome handshake (a 4-byte Join is implicitly v1, which is
// the interop fallback) and extends MsgTrainRequest with a downlink codec:
// the global model may travel as a quantized residual against the last
// broadcast the client acknowledged, cutting downlink bytes ~64/bits-fold.
// The hot path on both ends runs over pooled frame buffers: one coalesced
// write per frame, reads into capacity-tracked scratch, and model bodies
// encoded/decoded directly in the frame buffer.
package flnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"eefei/internal/ml"
)

// MsgType identifies a protocol frame.
type MsgType byte

const (
	// MsgJoin is sent by an edge server immediately after dialing:
	// payload = uint32 sample count of its local shard, optionally followed
	// by one protocol-version byte (absent = ProtoV1).
	MsgJoin MsgType = iota + 1
	// MsgWelcome is the coordinator's reply to MsgJoin:
	// payload = uint32 assigned client id, followed by the negotiated
	// protocol version byte when the joiner advertised v2 or newer.
	MsgWelcome
	// MsgTrainRequest asks a client to run local training. V1 payload =
	// uint32 round, uint32 epochs, float64 learning rate, uint32 reply bits,
	// serialized global model. V2 payload: see trainReqV2HeaderLen.
	MsgTrainRequest
	// MsgTrainReply returns the locally trained model:
	// payload = uint32 round, float64 final local loss, uint32 samples,
	// serialized local model. Identical in v1 and v2.
	MsgTrainReply
	// MsgShutdown tells a client training is over; payload is empty.
	MsgShutdown
	// MsgRejoin re-registers a previously welcomed client after a
	// reconnect: payload = uint32 previously assigned client id, uint32
	// sample count, optional protocol-version byte (absent = ProtoV1). The
	// coordinator replies MsgWelcome echoing the same id and revives the
	// client's roster slot.
	MsgRejoin
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	switch m {
	case MsgJoin:
		return "join"
	case MsgWelcome:
		return "welcome"
	case MsgTrainRequest:
		return "train-request"
	case MsgTrainReply:
		return "train-reply"
	case MsgShutdown:
		return "shutdown"
	case MsgRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// Protocol versions carried in the handshake version byte. Negotiation is
// min(joiner's advertised version, ProtoV2); a version-less 4-byte Join is
// the v1 fallback, so a v1 edge interoperates with a v2 coordinator
// unchanged.
const (
	// ProtoV1 is the seed protocol: full float64 model downlink every round.
	ProtoV1 byte = 1
	// ProtoV2 adds the residual-quantized downlink codec to MsgTrainRequest.
	ProtoV2 byte = 2
)

// ErrProtocol is returned (wrapped) for malformed or unexpected frames.
var ErrProtocol = errors.New("flnet: protocol error")

// maxFrameBytes caps a frame so a corrupt peer cannot force a huge
// allocation; 64 MiB comfortably covers any linear model we train.
const maxFrameBytes = 64 << 20

// frameHeaderLen is the length prefix plus the type byte.
const frameHeaderLen = 5

// framePool recycles whole-frame buffers (header + payload built in one
// slice) across rounds and connections. Buffers are handed out with the
// header bytes reserved so payload encoders can append directly and
// finishFrame can patch the header in place for a single coalesced write.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// newFrame returns a pooled buffer primed with frameHeaderLen reserved
// bytes. Append the payload to *bp, then seal with finishFrame and release
// with freeFrame.
func newFrame() *[]byte {
	bp := framePool.Get().(*[]byte)
	*bp = append((*bp)[:0], 0, 0, 0, 0, 0)
	return bp
}

// freeFrame returns a frame buffer to the pool.
func freeFrame(bp *[]byte) { framePool.Put(bp) }

// finishFrame patches the length prefix and type byte into the header bytes
// reserved by newFrame and returns the complete wire image (aliasing *bp).
func finishFrame(bp *[]byte, t MsgType) ([]byte, error) {
	buf := *bp
	payload := len(buf) - frameHeaderLen
	if payload+1 > maxFrameBytes {
		return nil, fmt.Errorf("frame of %d bytes exceeds cap: %w", payload, ErrProtocol)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(payload+1))
	buf[4] = byte(t)
	return buf, nil
}

// writeFrame sends one frame as a single coalesced write — header, type and
// payload staged in a pooled buffer, so steady-state frames cost zero heap
// allocations and exactly one syscall on a net.Conn.
func writeFrame(w io.Writer, t MsgType, payload []byte) error {
	bp := newFrame()
	defer freeFrame(bp)
	*bp = append(*bp, payload...)
	buf, err := finishFrame(bp, t)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write %v frame: %w", t, err)
	}
	return nil
}

// writeFrameBuf seals a frame built directly in a pooled buffer (newFrame +
// payload appends) and writes it in one call, returning the bytes put on the
// wire. The buffer is not released; the caller owns it.
func writeFrameBuf(w io.Writer, t MsgType, bp *[]byte) (int, error) {
	buf, err := finishFrame(bp, t)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(buf); err != nil {
		return 0, fmt.Errorf("write %v frame: %w", t, err)
	}
	return len(buf), nil
}

// readFrame reads one frame into freshly allocated storage. Handshake and
// test paths use it; the per-round hot paths use readFrameInto.
func readFrame(r io.Reader) (MsgType, []byte, error) {
	var scratch []byte
	return readFrameInto(r, &scratch)
}

// readFrameInto reads one frame into *scratch, growing it only when the
// frame exceeds its capacity. The returned payload aliases *scratch and is
// valid until the next call with the same scratch. The length prefix is read
// into the scratch buffer too (not a stack array, which would escape through
// the io.Reader interface and cost one heap object per frame).
func readFrameInto(r io.Reader, scratch *[]byte) (MsgType, []byte, error) {
	if cap(*scratch) < 4 {
		*scratch = make([]byte, 0, 4096)
	}
	lenBuf := (*scratch)[:4]
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return 0, nil, fmt.Errorf("read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf)
	if n == 0 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, ErrProtocol)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("read frame body: %w", err)
	}
	return MsgType(body[0]), body[1:], nil
}

// expectFrame reads a frame and verifies its type.
func expectFrame(r io.Reader, want MsgType) ([]byte, error) {
	var scratch []byte
	return expectFrameInto(r, want, &scratch)
}

// expectFrameInto is expectFrame reading into reusable scratch.
func expectFrameInto(r io.Reader, want MsgType, scratch *[]byte) ([]byte, error) {
	got, payload, err := readFrameInto(r, scratch)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("got %v, want %v: %w", got, want, ErrProtocol)
	}
	return payload, nil
}

// --- message bodies ---------------------------------------------------------

// TrainRequest is the decoded form of MsgTrainRequest.
type TrainRequest struct {
	Round        int
	Epochs       int
	LearningRate float64
	// ReplyBits asks the client to quantize its uploaded model to the given
	// width (0 = full-precision float64). Quantized uploads shrink the
	// radio payload ~64/bits-fold — a direct e^U energy reduction.
	ReplyBits ml.QuantBits
	// DownBits records the codec the request's model body travelled in
	// (v2 only): 0 = full float64 model, Quant8/Quant16 = quantized
	// residual against the BaseRound broadcast.
	DownBits ml.QuantBits
	// BaseRound is the round whose broadcast the residual applies to; equal
	// to Round for full-model requests.
	BaseRound int
	Model     *ml.Model
}

func encodeTrainRequest(req TrainRequest) ([]byte, error) {
	buf := make([]byte, 0, trainReqV1HeaderLen+req.Model.EncodedSize())
	return appendTrainRequestV1(buf, req)
}

// trainReqV1HeaderLen is the fixed v1 request header: round, epochs, lr,
// reply bits.
const trainReqV1HeaderLen = 20

// appendTrainRequestV1 appends the seed-protocol request encoding to dst.
func appendTrainRequestV1(dst []byte, req TrainRequest) ([]byte, error) {
	var h [trainReqV1HeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(req.Round))
	binary.LittleEndian.PutUint32(h[4:8], uint32(req.Epochs))
	binary.LittleEndian.PutUint64(h[8:16], math.Float64bits(req.LearningRate))
	binary.LittleEndian.PutUint32(h[16:20], uint32(req.ReplyBits))
	dst = append(dst, h[:]...)
	return req.Model.AppendBinary(dst), nil
}

// decodeTrainRequestHeader parses the fixed v1 request header, returning the
// model body unparsed.
func decodeTrainRequestHeader(payload []byte) (req TrainRequest, body []byte, err error) {
	if len(payload) < trainReqV1HeaderLen {
		return TrainRequest{}, nil, fmt.Errorf("train request of %d bytes: %w", len(payload), ErrProtocol)
	}
	req.Round = int(binary.LittleEndian.Uint32(payload[0:4]))
	req.Epochs = int(binary.LittleEndian.Uint32(payload[4:8]))
	req.LearningRate = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:16]))
	req.ReplyBits = ml.QuantBits(binary.LittleEndian.Uint32(payload[16:20]))
	switch req.ReplyBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return TrainRequest{}, nil, fmt.Errorf("reply bits %d: %w", req.ReplyBits, ErrProtocol)
	}
	req.BaseRound = req.Round
	return req, payload[trainReqV1HeaderLen:], nil
}

func decodeTrainRequest(payload []byte) (TrainRequest, error) {
	req, body, err := decodeTrainRequestHeader(payload)
	if err != nil {
		return TrainRequest{}, err
	}
	var m ml.Model
	if err := m.UnmarshalBinary(body); err != nil {
		return TrainRequest{}, fmt.Errorf("decode request model: %w", err)
	}
	req.Model = &m
	return req, nil
}

// trainReqV2HeaderLen is the fixed v2 request header:
//
//	uint32  round
//	uint32  epochs
//	float64 learning rate
//	uint32  reply bits
//	uint8   downlink bits (0 = body is a full EFM model; 8/16 = body is an
//	        EFQ-quantized residual against the BaseRound broadcast)
//	uint8   reserved, must be zero
//	uint32  base round (== round for full-model requests)
//
// followed by the model body.
const trainReqV2HeaderLen = 26

// appendTrainRequestV2Header appends the v2 header to dst; the caller then
// appends the model body (ml.Model.AppendBinary or ml.AppendQuantized).
func appendTrainRequestV2Header(dst []byte, req TrainRequest) []byte {
	var h [trainReqV2HeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(req.Round))
	binary.LittleEndian.PutUint32(h[4:8], uint32(req.Epochs))
	binary.LittleEndian.PutUint64(h[8:16], math.Float64bits(req.LearningRate))
	binary.LittleEndian.PutUint32(h[16:20], uint32(req.ReplyBits))
	h[20] = byte(req.DownBits)
	h[21] = 0
	binary.LittleEndian.PutUint32(h[22:26], uint32(req.BaseRound))
	return append(dst, h[:]...)
}

// decodeTrainRequestV2 parses a v2 request header. The returned request's
// Model is nil; the raw model body (aliasing payload) comes back separately
// so the edge can decode it into long-lived scratch according to DownBits.
func decodeTrainRequestV2(payload []byte) (req TrainRequest, body []byte, err error) {
	if len(payload) < trainReqV2HeaderLen {
		return TrainRequest{}, nil, fmt.Errorf("v2 train request of %d bytes: %w", len(payload), ErrProtocol)
	}
	req.Round = int(binary.LittleEndian.Uint32(payload[0:4]))
	req.Epochs = int(binary.LittleEndian.Uint32(payload[4:8]))
	req.LearningRate = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:16]))
	req.ReplyBits = ml.QuantBits(binary.LittleEndian.Uint32(payload[16:20]))
	switch req.ReplyBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return TrainRequest{}, nil, fmt.Errorf("reply bits %d: %w", req.ReplyBits, ErrProtocol)
	}
	req.DownBits = ml.QuantBits(payload[20])
	switch req.DownBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return TrainRequest{}, nil, fmt.Errorf("downlink bits %d: %w", req.DownBits, ErrProtocol)
	}
	if payload[21] != 0 {
		return TrainRequest{}, nil, fmt.Errorf("reserved byte %d: %w", payload[21], ErrProtocol)
	}
	req.BaseRound = int(binary.LittleEndian.Uint32(payload[22:26]))
	if req.DownBits == 0 {
		if req.BaseRound != req.Round {
			return TrainRequest{}, nil, fmt.Errorf("full request base round %d != round %d: %w",
				req.BaseRound, req.Round, ErrProtocol)
		}
	} else if req.BaseRound > req.Round {
		return TrainRequest{}, nil, fmt.Errorf("residual base round %d > round %d: %w",
			req.BaseRound, req.Round, ErrProtocol)
	}
	body = payload[trainReqV2HeaderLen:]
	if len(body) == 0 {
		return TrainRequest{}, nil, fmt.Errorf("v2 train request without model body: %w", ErrProtocol)
	}
	return req, body, nil
}

// TrainReply is the decoded form of MsgTrainReply.
type TrainReply struct {
	Round   int
	Loss    float64
	Samples int
	// Bits records the codec the model travelled in (0 = float64). The
	// decoded Model is always full precision; quantization error, if any,
	// was incurred on the wire.
	Bits ml.QuantBits
	// WireBytes is the size of the encoded model payload, which upload
	// energy is proportional to.
	WireBytes int
	Model     *ml.Model
}

// trainRepHeaderLen is the fixed reply header: round, loss, samples, bits.
const trainRepHeaderLen = 20

// appendTrainReply appends the reply encoding (header + model in the
// rep.Bits codec) to dst — the zero-copy path writing straight into a
// pooled frame buffer.
func appendTrainReply(dst []byte, rep TrainReply) ([]byte, error) {
	var h [trainRepHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(rep.Round))
	binary.LittleEndian.PutUint64(h[4:12], math.Float64bits(rep.Loss))
	binary.LittleEndian.PutUint32(h[12:16], uint32(rep.Samples))
	binary.LittleEndian.PutUint32(h[16:20], uint32(rep.Bits))
	dst = append(dst, h[:]...)
	switch rep.Bits {
	case 0:
		return rep.Model.AppendBinary(dst), nil
	case ml.Quant8, ml.Quant16:
		out, err := ml.AppendQuantized(dst, rep.Model, rep.Bits)
		if err != nil {
			return nil, fmt.Errorf("encode reply model: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("reply bits %d: %w", rep.Bits, ErrProtocol)
	}
}

func encodeTrainReply(rep TrainReply) ([]byte, error) {
	return appendTrainReply(nil, rep)
}

// decodeTrainReplyInto decodes a reply, reusing m's parameter storage for
// the model body when shapes match (the coordinator keeps one scratch model
// per roster slot, making warm-round reply decoding allocation-free). On
// success rep.Model == m.
func decodeTrainReplyInto(payload []byte, m *ml.Model) (TrainReply, error) {
	if len(payload) < trainRepHeaderLen {
		return TrainReply{}, fmt.Errorf("train reply of %d bytes: %w", len(payload), ErrProtocol)
	}
	var rep TrainReply
	rep.Round = int(binary.LittleEndian.Uint32(payload[0:4]))
	rep.Loss = math.Float64frombits(binary.LittleEndian.Uint64(payload[4:12]))
	rep.Samples = int(binary.LittleEndian.Uint32(payload[12:16]))
	rep.Bits = ml.QuantBits(binary.LittleEndian.Uint32(payload[16:20]))
	rep.WireBytes = len(payload) - trainRepHeaderLen
	body := payload[trainRepHeaderLen:]
	switch rep.Bits {
	case 0:
		if err := m.UnmarshalBinaryReuse(body); err != nil {
			return TrainReply{}, fmt.Errorf("decode reply model: %w", err)
		}
	case ml.Quant8, ml.Quant16:
		if err := m.DequantizeInto(body); err != nil {
			return TrainReply{}, fmt.Errorf("decode quantized reply: %w", err)
		}
	default:
		return TrainReply{}, fmt.Errorf("reply bits %d: %w", rep.Bits, ErrProtocol)
	}
	rep.Model = m
	return rep, nil
}

func decodeTrainReply(payload []byte) (TrainReply, error) {
	var m ml.Model
	return decodeTrainReplyInto(payload, &m)
}

func encodeUint32(v uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v)
	return buf
}

func decodeUint32(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("uint32 body of %d bytes: %w", len(payload), ErrProtocol)
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// encodeJoin builds the MsgJoin body: shard sample count, plus the
// advertised protocol version when it is v2 or newer (a 4-byte body is the
// v1 fallback the seed coordinator understands).
func encodeJoin(samples uint32, proto byte) []byte {
	if proto <= ProtoV1 {
		return encodeUint32(samples)
	}
	buf := make([]byte, 5)
	binary.LittleEndian.PutUint32(buf[0:4], samples)
	buf[4] = proto
	return buf
}

// decodeJoin parses the MsgJoin body. A version-less 4-byte body advertises
// ProtoV1; a 5-byte body must advertise at least ProtoV2 (a v1 client never
// sends the version byte).
func decodeJoin(payload []byte) (samples uint32, proto byte, err error) {
	switch len(payload) {
	case 4:
		return binary.LittleEndian.Uint32(payload), ProtoV1, nil
	case 5:
		proto = payload[4]
		if proto < ProtoV2 {
			return 0, 0, fmt.Errorf("versioned join advertising v%d: %w", proto, ErrProtocol)
		}
		return binary.LittleEndian.Uint32(payload[0:4]), proto, nil
	default:
		return 0, 0, fmt.Errorf("join body of %d bytes: %w", len(payload), ErrProtocol)
	}
}

// encodeWelcome builds the MsgWelcome body: the assigned client id, plus the
// negotiated protocol version byte for v2+ clients (v1 clients receive the
// seed 4-byte body).
func encodeWelcome(id uint32, proto byte) []byte {
	if proto <= ProtoV1 {
		return encodeUint32(id)
	}
	buf := make([]byte, 5)
	binary.LittleEndian.PutUint32(buf[0:4], id)
	buf[4] = proto
	return buf
}

// decodeWelcome parses the MsgWelcome body; a 4-byte body negotiates v1.
func decodeWelcome(payload []byte) (id uint32, proto byte, err error) {
	switch len(payload) {
	case 4:
		return binary.LittleEndian.Uint32(payload), ProtoV1, nil
	case 5:
		proto = payload[4]
		if proto < ProtoV2 {
			return 0, 0, fmt.Errorf("versioned welcome negotiating v%d: %w", proto, ErrProtocol)
		}
		return binary.LittleEndian.Uint32(payload[0:4]), proto, nil
	default:
		return 0, 0, fmt.Errorf("welcome body of %d bytes: %w", len(payload), ErrProtocol)
	}
}

// encodeRejoin builds the MsgRejoin body: previously assigned id + samples,
// plus the advertised protocol version for v2+ clients.
func encodeRejoin(id, samples uint32) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:4], id)
	binary.LittleEndian.PutUint32(buf[4:8], samples)
	return buf
}

// encodeRejoinProto is encodeRejoin carrying a protocol version byte.
func encodeRejoinProto(id, samples uint32, proto byte) []byte {
	if proto <= ProtoV1 {
		return encodeRejoin(id, samples)
	}
	return append(encodeRejoin(id, samples), proto)
}

// decodeRejoin parses the MsgRejoin body; an 8-byte body advertises ProtoV1.
func decodeRejoin(payload []byte) (id, samples uint32, proto byte, err error) {
	switch len(payload) {
	case 8:
		proto = ProtoV1
	case 9:
		proto = payload[8]
		if proto < ProtoV2 {
			return 0, 0, 0, fmt.Errorf("versioned rejoin advertising v%d: %w", proto, ErrProtocol)
		}
	default:
		return 0, 0, 0, fmt.Errorf("rejoin body of %d bytes: %w", len(payload), ErrProtocol)
	}
	return binary.LittleEndian.Uint32(payload[0:4]), binary.LittleEndian.Uint32(payload[4:8]), proto, nil
}

// negotiate returns the protocol version the coordinator speaks with a
// client that advertised the given version.
func negotiate(advertised byte) byte {
	if advertised > ProtoV2 {
		return ProtoV2
	}
	return advertised
}
