package flnet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// ErrCoordinator is returned (wrapped) for coordinator-side failures.
var ErrCoordinator = errors.New("flnet: coordinator error")

// CoordinatorConfig configures a networked training run. The federated
// hyper-parameters reuse fl.Config.
type CoordinatorConfig struct {
	// FL carries K, E, learning rate, decay and seed. BatchSize is applied
	// by the edge servers locally.
	FL fl.Config
	// Classes and Features size the global model.
	Classes, Features int
	// RoundTimeout bounds one full round trip (send request + local
	// training + receive reply) per client. Zero selects 2 minutes.
	RoundTimeout time.Duration
	// JoinTimeout bounds the wait for the expected number of clients.
	// Zero selects 1 minute.
	JoinTimeout time.Duration
	// MinReplies enables straggler tolerance: a round succeeds as long as
	// at least this many of the K selected clients reply before the
	// timeout; the failed clients are dropped from the roster and the
	// aggregation proceeds over the survivors. Zero requires all K replies
	// (the paper's synchronous setting).
	MinReplies int
	// UploadQuantBits asks clients to quantize their uploaded models
	// (ml.Quant8 or ml.Quant16; 0 = full precision), cutting the e^U
	// upload energy roughly 64/bits-fold at a bounded accuracy cost.
	UploadQuantBits ml.QuantBits
}

// clientConn is one registered edge server.
type clientConn struct {
	id      int
	conn    net.Conn
	samples int
	// dead marks a client that failed a round; it is never selected again.
	dead bool
}

// Coordinator is the networked FedAvg coordinator: it owns the global model,
// accepts edge-server registrations, and drives synchronous rounds.
type Coordinator struct {
	cfg    CoordinatorConfig
	ln     net.Listener
	global *ml.Model
	test   *dataset.Dataset
	rng    *mat.RNG

	mu      sync.Mutex
	clients []*clientConn
	round   int
	history []fl.RoundRecord
}

// NewCoordinator wraps an already-open listener. The caller keeps ownership
// of the listener's lifetime; Close shuts down both.
func NewCoordinator(cfg CoordinatorConfig, ln net.Listener, test *dataset.Dataset) (*Coordinator, error) {
	if cfg.Classes <= 0 || cfg.Features <= 0 {
		return nil, fmt.Errorf("model shape %dx%d: %w", cfg.Classes, cfg.Features, ErrCoordinator)
	}
	if cfg.FL.LocalEpochs < 1 || cfg.FL.ClientsPerRound < 1 || cfg.FL.LearningRate <= 0 {
		return nil, fmt.Errorf("fl config %+v: %w", cfg.FL, ErrCoordinator)
	}
	switch cfg.UploadQuantBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return nil, fmt.Errorf("upload quant bits %d: %w", cfg.UploadQuantBits, ErrCoordinator)
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 2 * time.Minute
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = time.Minute
	}
	act := cfg.FL.Activation
	if act == 0 {
		act = ml.Softmax
	}
	return &Coordinator{
		cfg:    cfg,
		ln:     ln,
		global: ml.NewModel(cfg.Classes, cfg.Features, act),
		test:   test,
		rng:    mat.NewRNG(cfg.FL.Seed),
	}, nil
}

// Addr returns the listener address (useful with ":0" test listeners).
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Global returns the current global model.
func (c *Coordinator) Global() *ml.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.global
}

// History returns the completed round records.
func (c *Coordinator) History() []fl.RoundRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]fl.RoundRecord, len(c.history))
	copy(out, c.history)
	return out
}

// WaitForClients accepts registrations until n edge servers have joined or
// the context/join timeout expires.
func (c *Coordinator) WaitForClients(ctx context.Context, n int) error {
	if n < c.cfg.FL.ClientsPerRound {
		return fmt.Errorf("waiting for %d clients but K=%d: %w", n, c.cfg.FL.ClientsPerRound, ErrCoordinator)
	}
	deadline := time.Now().Add(c.cfg.JoinTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for {
		c.mu.Lock()
		joined := len(c.clients)
		c.mu.Unlock()
		if joined >= n {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("wait for clients: %w", err)
		}
		type deadliner interface{ SetDeadline(time.Time) error }
		if dl, ok := c.ln.(deadliner); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				return fmt.Errorf("set accept deadline: %w", err)
			}
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("accept (joined %d of %d): %w", joined, n, err)
		}
		if err := c.register(conn); err != nil {
			// A broken joiner should not kill the whole run; drop it.
			conn.Close()
			continue
		}
	}
}

// register performs the Join/Welcome handshake on a fresh connection.
func (c *Coordinator) register(conn net.Conn) error {
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return fmt.Errorf("handshake deadline: %w", err)
	}
	payload, err := expectFrame(conn, MsgJoin)
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}
	samples, err := decodeUint32(payload)
	if err != nil {
		return fmt.Errorf("join body: %w", err)
	}
	c.mu.Lock()
	id := len(c.clients)
	c.clients = append(c.clients, &clientConn{id: id, conn: conn, samples: int(samples)})
	c.mu.Unlock()
	if err := writeFrame(conn, MsgWelcome, encodeUint32(uint32(id))); err != nil {
		return fmt.Errorf("welcome: %w", err)
	}
	return conn.SetDeadline(time.Time{})
}

// Round runs one synchronous FedAvg round over the network.
func (c *Coordinator) Round(ctx context.Context) (fl.RoundRecord, error) {
	c.mu.Lock()
	alive := make([]int, 0, len(c.clients))
	for _, cl := range c.clients {
		if !cl.dead {
			alive = append(alive, cl.id)
		}
	}
	k := c.cfg.FL.ClientsPerRound
	round := c.round
	lr := c.cfg.FL.LearningRate
	if c.cfg.FL.Decay > 0 {
		lr *= math.Pow(c.cfg.FL.Decay, float64(round))
	}
	var selected []int
	if k <= len(alive) {
		for _, idx := range c.rng.Sample(len(alive), k) {
			selected = append(selected, alive[idx])
		}
	}
	globalSnapshot := c.global.Clone()
	c.mu.Unlock()

	if selected == nil {
		return fl.RoundRecord{}, fmt.Errorf("K=%d of %d alive clients: %w", k, len(alive), ErrCoordinator)
	}

	req := TrainRequest{
		Round:        round,
		Epochs:       c.cfg.FL.LocalEpochs,
		LearningRate: lr,
		ReplyBits:    c.cfg.UploadQuantBits,
		Model:        globalSnapshot,
	}
	reqPayload, err := encodeTrainRequest(req)
	if err != nil {
		return fl.RoundRecord{}, err
	}

	type outcome struct {
		slot int
		rep  TrainReply
		err  error
	}
	results := make([]outcome, len(selected))
	var wg sync.WaitGroup
	deadline := time.Now().Add(c.cfg.RoundTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for slot, id := range selected {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			c.mu.Lock()
			cl := c.clients[id]
			c.mu.Unlock()
			results[slot] = outcome{slot: slot}
			if err := cl.conn.SetDeadline(deadline); err != nil {
				results[slot].err = fmt.Errorf("client %d deadline: %w", id, err)
				return
			}
			if err := writeFrame(cl.conn, MsgTrainRequest, reqPayload); err != nil {
				results[slot].err = fmt.Errorf("client %d request: %w", id, err)
				return
			}
			payload, err := expectFrame(cl.conn, MsgTrainReply)
			if err != nil {
				results[slot].err = fmt.Errorf("client %d reply: %w", id, err)
				return
			}
			rep, err := decodeTrainReply(payload)
			if err != nil {
				results[slot].err = fmt.Errorf("client %d reply body: %w", id, err)
				return
			}
			if rep.Round != round {
				results[slot].err = fmt.Errorf("client %d replied for round %d, want %d: %w",
					id, rep.Round, round, ErrProtocol)
				return
			}
			results[slot].rep = rep
		}(slot, id)
	}
	wg.Wait()

	// Straggler tolerance: with MinReplies set, drop failed clients from the
	// roster and continue on the survivors; otherwise any failure aborts.
	var ok []outcome
	var dropped []int
	for slot, r := range results {
		if r.err != nil {
			if c.cfg.MinReplies <= 0 {
				return fl.RoundRecord{}, fmt.Errorf("round %d: %w", round, r.err)
			}
			dropped = append(dropped, selected[slot])
			continue
		}
		ok = append(ok, r)
	}
	if len(ok) == 0 || (c.cfg.MinReplies > 0 && len(ok) < c.cfg.MinReplies) {
		return fl.RoundRecord{}, fmt.Errorf("round %d: %d of %d replies (need %d): %w",
			round, len(ok), len(selected), c.cfg.MinReplies, ErrCoordinator)
	}
	if len(dropped) > 0 {
		c.mu.Lock()
		for _, id := range dropped {
			c.clients[id].dead = true
			c.clients[id].conn.Close()
		}
		c.mu.Unlock()
	}

	// Aggregate per Eq. (2) over the survivors.
	agg := ml.NewModel(c.cfg.Classes, c.cfg.Features, globalSnapshot.Act)
	for _, r := range ok {
		if err := agg.AddScaled(1/float64(len(ok)), r.rep.Model); err != nil {
			return fl.RoundRecord{}, fmt.Errorf("round %d aggregate: %w", round, err)
		}
	}

	survivors := make([]int, len(ok))
	for i, r := range ok {
		survivors[i] = selected[r.slot]
	}
	rec := fl.RoundRecord{
		Round:        round,
		Selected:     survivors,
		LearningRate: lr,
		TestAccuracy: math.NaN(),
		LocalLosses:  make([]float64, len(ok)),
	}
	var lossSum float64
	for i, r := range ok {
		rec.LocalLosses[i] = r.rep.Loss
		lossSum += r.rep.Loss
	}
	// Without the raw shards, the coordinator reports the mean of the
	// clients' final local losses as its training-loss proxy.
	rec.TrainLoss = lossSum / float64(len(ok))
	if c.test != nil {
		acc, err := ml.Accuracy(agg, c.test)
		if err != nil {
			return fl.RoundRecord{}, fmt.Errorf("round %d accuracy: %w", round, err)
		}
		rec.TestAccuracy = acc
	}

	c.mu.Lock()
	c.global = agg
	c.round++
	c.history = append(c.history, rec)
	c.mu.Unlock()
	return rec, nil
}

// Run drives rounds until stop fires, then broadcasts shutdown.
func (c *Coordinator) Run(ctx context.Context, stop fl.StopCondition) ([]fl.RoundRecord, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrCoordinator)
	}
	for !stop(c.History()) {
		if err := ctx.Err(); err != nil {
			return c.History(), fmt.Errorf("run: %w", err)
		}
		if _, err := c.Round(ctx); err != nil {
			return c.History(), err
		}
	}
	c.Shutdown()
	return c.History(), nil
}

// Shutdown notifies every client and closes all connections plus the
// listener. Safe to call multiple times.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cl := range clients {
		// Best-effort farewell; the close that follows is the real signal.
		cl.conn.SetDeadline(time.Now().Add(2 * time.Second))
		if err := writeFrame(cl.conn, MsgShutdown, nil); err != nil {
			// The client may already be gone — closing below is enough.
			_ = err
		}
		cl.conn.Close()
	}
	c.ln.Close()
}
