package flnet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// ErrCoordinator is returned (wrapped) for coordinator-side failures.
var ErrCoordinator = errors.New("flnet: coordinator error")

// handshakeTimeout bounds one Join/Rejoin + Welcome exchange.
const handshakeTimeout = 10 * time.Second

// CoordinatorConfig configures a networked training run. The federated
// hyper-parameters reuse fl.Config.
type CoordinatorConfig struct {
	// FL carries K, E, learning rate, decay and seed. BatchSize is applied
	// by the edge servers locally.
	FL fl.Config
	// Classes and Features size the global model.
	Classes, Features int
	// RoundTimeout bounds one full round trip (send request + local
	// training + receive reply) per client. Zero selects 2 minutes.
	RoundTimeout time.Duration
	// JoinTimeout bounds the wait for the expected number of clients.
	// Zero selects 1 minute.
	JoinTimeout time.Duration
	// MinReplies enables straggler/fault tolerance: a round succeeds as
	// long as at least this many of the K selected clients reply before
	// the timeout; the failed clients are marked disconnected (they may
	// rejoin later) and the aggregation proceeds over the survivors. Zero
	// requires all K replies (the paper's synchronous setting).
	MinReplies int
	// RejoinGrace, when > 0, lets a round repair itself: a selected client
	// whose connection fails mid-round is given this long to re-register,
	// after which the round's request is re-sent on the fresh connection
	// (repeatedly if needed, within the round timeout). Only when no
	// rejoin arrives inside the window is the client declared dropped.
	// This makes round outcomes independent of how reconnect latency
	// races the round boundary. Zero fails clients immediately.
	RejoinGrace time.Duration
	// UploadQuantBits asks clients to quantize their uploaded models
	// (ml.Quant8 or ml.Quant16; 0 = full precision), cutting the e^U
	// upload energy roughly 64/bits-fold at a bounded accuracy cost.
	UploadQuantBits ml.QuantBits
	// DownloadQuantBits broadcasts the global model to protocol-v2 clients
	// as a quantized residual against the last broadcast each client
	// acknowledged (ml.Quant8 or ml.Quant16; 0 = full precision, which is
	// bit-identical to the seed protocol). Coordinator-side error feedback
	// subtracts each round's quantization error from the next residual, so
	// the error never accumulates. Clients whose downlink state is unknown
	// (fresh joins, rejoins, v1 clients) receive the full model.
	DownloadQuantBits ml.QuantBits
}

// clientConn is one roster slot. A slot is created by MsgJoin and lives for
// the whole run; a client that fails mid-round is marked disconnected and
// its slot is revived in place when the client re-registers with MsgRejoin.
type clientConn struct {
	id      int
	conn    net.Conn
	samples int
	// connected marks a slot with a live connection; disconnected slots
	// are skipped by selection until they rejoin.
	connected bool
	// gen counts (re-)registrations of this slot. Round snapshots it so a
	// failure observed on a stale connection cannot mark a freshly
	// rejoined client disconnected.
	gen int
	// proto is the negotiated wire protocol version of the slot's current
	// connection.
	proto byte
	// lastSent is the global model exactly as this client's connection
	// last reconstructed it (error feedback: quantized residuals are
	// dequantized back, so lastSent carries the client's rounding, not the
	// coordinator's ideal). lastRound is the round of that broadcast.
	// pending stages the candidate successor while a round is in flight;
	// both are guarded by the coordinator mutex and reset on rejoin, since
	// a fresh connection holds no downlink state. Nil = next send is full.
	lastSent  *ml.Model
	pending   *ml.Model
	lastRound int
	// readBuf and repModel are the slot's reply-decode scratch, touched
	// only by the active round's goroutine for this slot (rounds are
	// serial, and each round selects a client at most once).
	readBuf  []byte
	repModel *ml.Model
}

// Coordinator is the networked FedAvg coordinator: it owns the global model,
// accepts edge-server registrations (and re-registrations, at any point of
// the run), and drives synchronous rounds that tolerate mid-round client
// failures.
type Coordinator struct {
	cfg      CoordinatorConfig
	ln       net.Listener
	global   *ml.Model
	test     *dataset.Dataset
	testEval *ml.Evaluator // owns the batched-forward scratch reused across rounds
	rng      *mat.RNG

	// Round-scratch models, reused across rounds so warm rounds stay off
	// the allocator: snap holds the round's global snapshot, spare is the
	// aggregation target (swapped with global at commit), resid and recon
	// build the residual downlink and its error-feedback reconstruction.
	// All are touched only by the single active Round call.
	snap  *ml.Model
	spare *ml.Model
	resid *ml.Model
	recon *ml.Model

	mu        sync.Mutex
	clients   []*clientConn
	round     int
	history   []fl.RoundRecord
	rejoins   int // re-registrations since the last completed round
	accepting bool
	down      bool
	roundObs  fl.RoundObserver
	sampleMem bool
}

// NewCoordinator wraps an already-open listener. The caller keeps ownership
// of the listener's lifetime; Close shuts down both.
func NewCoordinator(cfg CoordinatorConfig, ln net.Listener, test *dataset.Dataset) (*Coordinator, error) {
	if cfg.Classes <= 0 || cfg.Features <= 0 {
		return nil, fmt.Errorf("model shape %dx%d: %w", cfg.Classes, cfg.Features, ErrCoordinator)
	}
	if cfg.FL.LocalEpochs < 1 || cfg.FL.ClientsPerRound < 1 || cfg.FL.LearningRate <= 0 {
		return nil, fmt.Errorf("fl config %+v: %w", cfg.FL, ErrCoordinator)
	}
	switch cfg.UploadQuantBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return nil, fmt.Errorf("upload quant bits %d: %w", cfg.UploadQuantBits, ErrCoordinator)
	}
	switch cfg.DownloadQuantBits {
	case 0, ml.Quant8, ml.Quant16:
	default:
		return nil, fmt.Errorf("download quant bits %d: %w", cfg.DownloadQuantBits, ErrCoordinator)
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 2 * time.Minute
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = time.Minute
	}
	act := cfg.FL.Activation
	if act == 0 {
		act = ml.Softmax
	}
	return &Coordinator{
		cfg:      cfg,
		ln:       ln,
		global:   ml.NewModel(cfg.Classes, cfg.Features, act),
		test:     test,
		testEval: ml.NewEvaluator(1),
		rng:      mat.NewRNG(cfg.FL.Seed),
	}, nil
}

// Addr returns the listener address (useful with ":0" test listeners).
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Global returns a copy of the current global model. (A copy, because the
// coordinator recycles parameter storage across rounds; the returned model
// stays stable however many rounds run afterwards.)
func (c *Coordinator) Global() *ml.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.global.Clone()
}

// History returns the completed round records.
func (c *Coordinator) History() []fl.RoundRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]fl.RoundRecord, len(c.history))
	copy(out, c.history)
	return out
}

// SetRoundObserver attaches (or, with nil, detaches) a per-round
// observability sink. Networked rounds report the paper-phase timings with
// PhaseTrain covering the full request/reply exchange (local training plus
// both network legs), and fill the Dropped/Rejoins/Retries fault telemetry.
// Safe to call between rounds; a round in flight keeps the observer it
// started with.
func (c *Coordinator) SetRoundObserver(o fl.RoundObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roundObs = o
}

// SetMemSampling toggles per-round memstats sampling for observed rounds.
func (c *Coordinator) SetMemSampling(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sampleMem = on
}

// Connected returns how many roster slots currently hold a live connection.
func (c *Coordinator) Connected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, cl := range c.clients {
		if cl.connected {
			n++
		}
	}
	return n
}

// ensureAcceptLoop starts the background registration loop once. It runs
// until the listener closes, handling joins and mid-training rejoins alike.
func (c *Coordinator) ensureAcceptLoop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.accepting || c.down {
		return
	}
	c.accepting = true
	go c.acceptLoop()
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			// Listener closed (Shutdown) or fatally broken: stop.
			c.mu.Lock()
			c.accepting = false
			c.mu.Unlock()
			return
		}
		// Handshakes run concurrently so one stalled joiner cannot block
		// the fleet; each is bounded by handshakeTimeout.
		go func() {
			if err := c.register(conn); err != nil {
				// A broken joiner must not kill the run; drop it.
				conn.Close()
			}
		}()
	}
}

// register performs the Join/Welcome or Rejoin/Welcome handshake on a fresh
// connection. The Welcome echoes the negotiated protocol version back to
// v2+ joiners; version-less (v1) joiners get the seed 4-byte body.
func (c *Coordinator) register(conn net.Conn) error {
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return fmt.Errorf("handshake deadline: %w", err)
	}
	t, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	var id int
	var proto byte
	switch t {
	case MsgJoin:
		samples, adv, err := decodeJoin(payload)
		if err != nil {
			return fmt.Errorf("join body: %w", err)
		}
		proto = negotiate(adv)
		c.mu.Lock()
		if c.down {
			c.mu.Unlock()
			return fmt.Errorf("join after shutdown: %w", ErrCoordinator)
		}
		id = len(c.clients)
		c.clients = append(c.clients, &clientConn{
			id: id, conn: conn, samples: int(samples), connected: true, proto: proto,
		})
		c.mu.Unlock()
	case MsgRejoin:
		rid, samples, adv, err := decodeRejoin(payload)
		if err != nil {
			return fmt.Errorf("rejoin body: %w", err)
		}
		proto = negotiate(adv)
		c.mu.Lock()
		if c.down {
			c.mu.Unlock()
			return fmt.Errorf("rejoin after shutdown: %w", ErrCoordinator)
		}
		if int(rid) >= len(c.clients) {
			n := len(c.clients)
			c.mu.Unlock()
			return fmt.Errorf("rejoin of unknown client %d of %d: %w", rid, n, ErrProtocol)
		}
		cl := c.clients[rid]
		if cl.conn != nil && cl.conn != conn {
			cl.conn.Close()
		}
		cl.conn = conn
		cl.samples = int(samples)
		cl.connected = true
		cl.gen++
		cl.proto = proto
		// A fresh connection holds no downlink state: the next request
		// must carry the full model, and any in-flight pending
		// reconstruction is void.
		cl.lastSent = nil
		cl.pending = nil
		cl.lastRound = 0
		c.rejoins++
		id = int(rid)
		c.mu.Unlock()
	default:
		return fmt.Errorf("handshake got %v: %w", t, ErrProtocol)
	}
	if err := writeFrame(conn, MsgWelcome, encodeWelcome(uint32(id), proto)); err != nil {
		// The slot exists but its connection is already dead; leave it
		// disconnected so counts stay truthful. The client retries.
		c.mu.Lock()
		if id < len(c.clients) && c.clients[id].conn == conn {
			c.clients[id].connected = false
		}
		c.mu.Unlock()
		return fmt.Errorf("welcome: %w", err)
	}
	return conn.SetDeadline(time.Time{})
}

// WaitForClients accepts registrations until n edge servers have joined or
// the context/join timeout expires. Registration keeps running in the
// background afterwards, so clients can rejoin mid-training.
func (c *Coordinator) WaitForClients(ctx context.Context, n int) error {
	if n < c.cfg.FL.ClientsPerRound {
		return fmt.Errorf("waiting for %d clients but K=%d: %w", n, c.cfg.FL.ClientsPerRound, ErrCoordinator)
	}
	return c.awaitConnected(ctx, n, c.cfg.JoinTimeout, "wait for clients")
}

// AwaitRoster blocks until n clients are simultaneously connected, the
// timeout passes, or ctx ends. Callers use it between rounds to give
// dropped clients a window to reconnect before the next selection; a
// timeout is not fatal — the next round simply runs on the survivors.
func (c *Coordinator) AwaitRoster(ctx context.Context, n int, timeout time.Duration) error {
	return c.awaitConnected(ctx, n, timeout, "await roster")
}

func (c *Coordinator) awaitConnected(ctx context.Context, n int, timeout time.Duration, what string) error {
	c.ensureAcceptLoop()
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if c.Connected() >= n {
			return nil
		}
		c.mu.Lock()
		down := c.down
		c.mu.Unlock()
		if down {
			return fmt.Errorf("%s: coordinator shut down: %w", what, ErrCoordinator)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%s: %w", what, ctx.Err())
		case <-tick.C:
			if time.Now().After(deadline) {
				return fmt.Errorf("%s: %d of %d connected at timeout: %w",
					what, c.Connected(), n, ErrCoordinator)
			}
		}
	}
}

// awaitRejoin blocks until client id holds a registration newer than gen,
// the RejoinGrace window (capped by the round deadline) passes, or the
// coordinator shuts down. With RejoinGrace unset it declines immediately,
// preserving fail-fast rounds.
func (c *Coordinator) awaitRejoin(id, gen int, deadline time.Time) (net.Conn, int, byte, bool) {
	if c.cfg.RejoinGrace <= 0 {
		return nil, 0, 0, false
	}
	grace := time.Now().Add(c.cfg.RejoinGrace)
	if deadline.Before(grace) {
		grace = deadline
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		if c.down || id >= len(c.clients) {
			c.mu.Unlock()
			return nil, 0, 0, false
		}
		cl := c.clients[id]
		if cl.connected && cl.gen > gen {
			conn, g, p := cl.conn, cl.gen, cl.proto
			c.mu.Unlock()
			return conn, g, p, true
		}
		c.mu.Unlock()
		if time.Now().After(grace) {
			return nil, 0, 0, false
		}
		<-tick.C
	}
}

// buildFullFrame seals a pooled MsgTrainRequest frame carrying the full
// snapshot model at the given protocol version. The caller owns the
// returned buffer (freeFrame when done); the sealed image aliases it.
func (c *Coordinator) buildFullFrame(proto byte, req TrainRequest) (*[]byte, []byte, error) {
	bp := newFrame()
	var err error
	if proto >= ProtoV2 {
		req.DownBits = 0
		req.BaseRound = req.Round
		*bp = appendTrainRequestV2Header(*bp, req)
		*bp = c.snap.AppendBinary(*bp)
	} else {
		*bp, err = appendTrainRequestV1(*bp, req)
		if err != nil {
			freeFrame(bp)
			return nil, nil, err
		}
	}
	frame, err := finishFrame(bp, MsgTrainRequest)
	if err != nil {
		freeFrame(bp)
		return nil, nil, err
	}
	return bp, frame, nil
}

// buildResidualFrame seals a pooled v2 request frame carrying the global
// snapshot as a quantized residual against cl.lastSent, and stages the
// client's exact post-apply reconstruction in cl.pending (error feedback:
// the next residual is computed against what the client actually holds,
// rounding included, so quantization error cannot accumulate). Called with
// the coordinator mutex held.
func (c *Coordinator) buildResidualFrame(cl *clientConn, req TrainRequest, bits ml.QuantBits) (*[]byte, []byte, error) {
	if c.resid == nil {
		c.resid = c.snap.Clone()
	} else if err := c.resid.CopyFrom(c.snap); err != nil {
		return nil, nil, err
	}
	if err := c.resid.AddScaled(-1, cl.lastSent); err != nil {
		return nil, nil, err
	}
	req.DownBits = bits
	req.BaseRound = cl.lastRound
	bp := newFrame()
	*bp = appendTrainRequestV2Header(*bp, req)
	bodyStart := len(*bp)
	out, err := ml.AppendQuantized(*bp, c.resid, bits)
	if err != nil {
		freeFrame(bp)
		return nil, nil, err
	}
	*bp = out
	frame, err := finishFrame(bp, MsgTrainRequest)
	if err != nil {
		freeFrame(bp)
		return nil, nil, err
	}
	if c.recon == nil {
		c.recon = &ml.Model{}
	}
	if err := c.recon.DequantizeInto((*bp)[bodyStart:]); err != nil {
		freeFrame(bp)
		return nil, nil, err
	}
	if cl.pending == nil {
		cl.pending = cl.lastSent.Clone()
	} else if err := cl.pending.CopyFrom(cl.lastSent); err != nil {
		freeFrame(bp)
		return nil, nil, err
	}
	if err := cl.pending.AddScaled(1, c.recon); err != nil {
		freeFrame(bp)
		return nil, nil, err
	}
	return bp, frame, nil
}

// Round runs one synchronous FedAvg round over the network. With MinReplies
// set, clients that fail mid-round are dropped from the round (and marked
// disconnected until they rejoin) while the aggregation proceeds over the
// quorum of survivors; the round record lists the casualties.
func (c *Coordinator) Round(ctx context.Context) (fl.RoundRecord, error) {
	type target struct {
		id       int
		gen      int
		conn     net.Conn
		proto    byte
		cl       *clientConn
		frame    []byte // sealed request frame (shared between full-model targets)
		residual bool   // frame carries a quantized residual
	}
	c.mu.Lock()
	obs := c.roundObs
	var pc fl.PhaseClock
	if obs != nil {
		pc = fl.NewPhaseClock(c.sampleMem)
	}
	alive := make([]int, 0, len(c.clients))
	for _, cl := range c.clients {
		if cl.connected {
			alive = append(alive, cl.id)
		}
	}
	k := c.cfg.FL.ClientsPerRound
	round := c.round
	lr := c.cfg.FL.LearningRate
	if c.cfg.FL.Decay > 0 {
		lr *= math.Pow(c.cfg.FL.Decay, float64(round))
	}
	var targets []target
	if k <= len(alive) {
		for _, idx := range c.rng.Sample(len(alive), k) {
			cl := c.clients[alive[idx]]
			targets = append(targets, target{id: cl.id, gen: cl.gen, conn: cl.conn, proto: cl.proto, cl: cl})
		}
	}
	if targets == nil {
		nAlive := len(alive)
		c.mu.Unlock()
		return fl.RoundRecord{}, fmt.Errorf("K=%d of %d alive clients: %w", k, nAlive, ErrCoordinator)
	}

	// Snapshot the global into reusable scratch; the round works off the
	// snapshot so registrations racing the round see a consistent model.
	if c.snap == nil {
		c.snap = c.global.Clone()
	} else if err := c.snap.CopyFrom(c.global); err != nil {
		c.mu.Unlock()
		return fl.RoundRecord{}, fmt.Errorf("round %d snapshot: %w", round, err)
	}

	// Build the request frames while still holding the mutex: residuals
	// read (and stage) per-client downlink state. Full-model targets share
	// one sealed frame per protocol version; residual targets get their
	// own. All pooled buffers are released when the round returns.
	req := TrainRequest{
		Round:        round,
		Epochs:       c.cfg.FL.LocalEpochs,
		LearningRate: lr,
		ReplyBits:    c.cfg.UploadQuantBits,
		BaseRound:    round,
		Model:        c.snap,
	}
	var frames []*[]byte
	defer func() {
		for _, bp := range frames {
			freeFrame(bp)
		}
	}()
	var fullV1, fullV2 []byte
	downBits := c.cfg.DownloadQuantBits
	for i := range targets {
		tg := &targets[i]
		if tg.proto >= ProtoV2 && downBits != 0 && tg.cl.lastSent != nil {
			bp, frame, err := c.buildResidualFrame(tg.cl, req, downBits)
			if err != nil {
				c.mu.Unlock()
				return fl.RoundRecord{}, fmt.Errorf("round %d residual for client %d: %w", round, tg.id, err)
			}
			frames = append(frames, bp)
			tg.frame, tg.residual = frame, true
			continue
		}
		shared := &fullV1
		if tg.proto >= ProtoV2 {
			shared = &fullV2
		}
		if *shared == nil {
			bp, frame, err := c.buildFullFrame(tg.proto, req)
			if err != nil {
				c.mu.Unlock()
				return fl.RoundRecord{}, fmt.Errorf("round %d request: %w", round, err)
			}
			frames = append(frames, bp)
			*shared = frame
		}
		tg.frame = *shared
	}
	c.mu.Unlock()

	if obs != nil {
		pc.Lap(fl.PhaseSelect)
	}

	type outcome struct {
		slot    int
		rep     TrainReply
		retries int
		err     error
		// residual / proto describe the frame of the last delivery attempt,
		// which is what the downlink-state commit must mirror.
		residual bool
		proto    byte
	}
	results := make([]outcome, len(targets))
	// finalGen[slot] is the registration generation of the last connection
	// each goroutine actually used, so post-round failure marking cannot
	// clobber a connection it never touched. Each index is written only by
	// its own goroutine before wg.Wait.
	finalGen := make([]int, len(targets))
	// Downlink (coordinator→client) and uplink (client→coordinator) frame
	// bytes actually exchanged this round — the measured volume the radio
	// energy model prices.
	var txBytes, rxBytes atomic.Int64
	// Datagram transports additionally count packet attempts and
	// deliveries per direction (see dgramMetered); snapshot deltas around
	// each exchange accumulate here.
	var downAttempt, downDelivered, upAttempt, upDelivered atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(c.cfg.RoundTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	exchange := func(conn net.Conn, id int, frame []byte, cl *clientConn) (TrainReply, error) {
		if m, metered := conn.(dgramMetered); metered {
			// Delta the conn's lifetime counters around this exchange —
			// success or failure, the attempted bytes were spent.
			a0, d0, p0, r0 := m.DgramCounters()
			defer func() {
				a1, d1, p1, r1 := m.DgramCounters()
				downAttempt.Add(a1 - a0)
				downDelivered.Add(d1 - d0)
				upAttempt.Add(p1 - p0)
				upDelivered.Add(r1 - r0)
			}()
		}
		if err := conn.SetDeadline(deadline); err != nil {
			return TrainReply{}, fmt.Errorf("client %d deadline: %w", id, err)
		}
		if _, err := conn.Write(frame); err != nil {
			return TrainReply{}, fmt.Errorf("client %d request: %w", id, err)
		}
		txBytes.Add(int64(len(frame)))
		payload, err := expectFrameInto(conn, MsgTrainReply, &cl.readBuf)
		if err != nil {
			return TrainReply{}, fmt.Errorf("client %d reply: %w", id, err)
		}
		rxBytes.Add(int64(frameHeaderLen + len(payload)))
		if cl.repModel == nil {
			cl.repModel = &ml.Model{}
		}
		rep, err := decodeTrainReplyInto(payload, cl.repModel)
		if err != nil {
			return TrainReply{}, fmt.Errorf("client %d reply body: %w", id, err)
		}
		if rep.Round != round {
			return TrainReply{}, fmt.Errorf("client %d replied for round %d, want %d: %w",
				id, rep.Round, round, ErrProtocol)
		}
		return rep, nil
	}
	for slot, tg := range targets {
		wg.Add(1)
		go func(slot int, tg target) {
			defer wg.Done()
			o := outcome{slot: slot, residual: tg.residual, proto: tg.proto}
			conn, gen := tg.conn, tg.gen
			frame := tg.frame
			var retryBp *[]byte
			defer func() {
				if retryBp != nil {
					freeFrame(retryBp)
				}
			}()
			for {
				rep, err := exchange(conn, tg.id, frame, tg.cl)
				if err == nil {
					o.rep = rep
					break
				}
				// In-round repair: if the client re-registers within the
				// grace window, re-send this round's request on its fresh
				// connection instead of dropping it.
				nc, ng, nproto, ok := c.awaitRejoin(tg.id, gen, deadline)
				if !ok {
					o.err = err
					break
				}
				conn, gen = nc, ng
				o.retries++
				// The fresh connection lost all downlink state: re-send as a
				// full model at the rejoined connection's protocol version.
				o.residual = false
				o.proto = nproto
				if retryBp != nil {
					freeFrame(retryBp)
					retryBp = nil
				}
				var ferr error
				retryBp, frame, ferr = c.buildFullFrame(nproto, req)
				if ferr != nil {
					o.err = ferr
					break
				}
			}
			finalGen[slot] = gen
			results[slot] = o
		}(slot, tg)
	}
	wg.Wait()

	// Commit per-client downlink state for every delivered request — before
	// quorum filtering, because delivery is a property of the wire, not of
	// the round's outcome: an edge that received this broadcast holds it as
	// its base whether or not the round later reaches quorum. The gen check
	// skips slots that re-registered after the delivery (register already
	// reset their state to full-send).
	c.mu.Lock()
	for slot, tg := range targets {
		o := results[slot]
		if o.err != nil || tg.id >= len(c.clients) {
			continue
		}
		cl := c.clients[tg.id]
		if cl.gen != finalGen[slot] {
			continue
		}
		if o.proto < ProtoV2 {
			cl.lastSent = nil
			continue
		}
		if o.residual {
			// The staged reconstruction becomes the client's state; the
			// old state buffer is recycled as the next staging area.
			cl.lastSent, cl.pending = cl.pending, cl.lastSent
		} else if cl.lastSent == nil {
			cl.lastSent = c.snap.Clone()
		} else if err := cl.lastSent.CopyFrom(c.snap); err != nil {
			c.mu.Unlock()
			return fl.RoundRecord{}, fmt.Errorf("round %d downlink state: %w", round, err)
		}
		cl.lastRound = round
	}
	c.mu.Unlock()

	// Fault tolerance: with MinReplies set, drop failed clients from the
	// round and continue on the survivors; otherwise any failure aborts.
	var ok []outcome
	var dropped []int // slot indices
	for slot, r := range results {
		if r.err != nil {
			if c.cfg.MinReplies <= 0 {
				return fl.RoundRecord{}, fmt.Errorf("round %d: %w", round, r.err)
			}
			dropped = append(dropped, slot)
			continue
		}
		ok = append(ok, r)
	}
	if len(ok) == 0 || (c.cfg.MinReplies > 0 && len(ok) < c.cfg.MinReplies) {
		return fl.RoundRecord{}, fmt.Errorf("round %d: %d of %d replies (need %d): %w",
			round, len(ok), len(targets), c.cfg.MinReplies, ErrCoordinator)
	}
	if len(dropped) > 0 {
		c.mu.Lock()
		for _, slot := range dropped {
			id := targets[slot].id
			if id >= len(c.clients) {
				continue // roster was torn down by Shutdown
			}
			cl := c.clients[id]
			if cl.gen == finalGen[slot] {
				// Still the connection we failed on: mark it down. A
				// bumped gen means the client already rejoined — leave
				// the fresh connection alone.
				cl.connected = false
				cl.conn.Close()
			}
		}
		c.mu.Unlock()
	}
	if obs != nil {
		pc.Lap(fl.PhaseTrain)
	}

	// Aggregate per Eq. (2) over the survivors, into the spare model that
	// ping-pongs with the global at commit.
	if c.spare == nil {
		c.spare = ml.NewModel(c.cfg.Classes, c.cfg.Features, c.snap.Act)
	} else {
		c.spare.Zero()
		c.spare.Act = c.snap.Act
	}
	agg := c.spare
	for _, r := range ok {
		if err := agg.AddScaled(1/float64(len(ok)), r.rep.Model); err != nil {
			return fl.RoundRecord{}, fmt.Errorf("round %d aggregate: %w", round, err)
		}
	}
	if obs != nil {
		pc.Lap(fl.PhaseAggregate)
	}

	survivors := make([]int, len(ok))
	for i, r := range ok {
		survivors[i] = targets[r.slot].id
	}
	rec := fl.RoundRecord{
		Round:         round,
		Selected:      survivors,
		LearningRate:  lr,
		TestAccuracy:  math.NaN(),
		LocalLosses:   make([]float64, len(ok)),
		DownlinkBytes: txBytes.Load(),
		UplinkBytes:   rxBytes.Load(),

		DownlinkAttemptBytes:   downAttempt.Load(),
		DownlinkDeliveredBytes: downDelivered.Load(),
		UplinkAttemptBytes:     upAttempt.Load(),
		UplinkDeliveredBytes:   upDelivered.Load(),
	}
	for _, slot := range dropped {
		rec.Dropped = append(rec.Dropped, targets[slot].id)
	}
	for _, r := range ok {
		rec.Retries += r.retries
	}
	for _, slot := range dropped {
		rec.Retries += results[slot].retries
	}
	var lossSum float64
	for i, r := range ok {
		rec.LocalLosses[i] = r.rep.Loss
		lossSum += r.rep.Loss
	}
	// Without the raw shards, the coordinator reports the mean of the
	// clients' final local losses as its training-loss proxy.
	rec.TrainLoss = lossSum / float64(len(ok))
	if c.test != nil {
		// The evaluator reuses its chunk scratch round over round, keeping
		// warm rounds allocation-free where ml.Accuracy would allocate a
		// predictions slice and logits block per call. Bit-identical: hit
		// counts are integers, reduced in chunk order.
		acc, err := c.testEval.Accuracy(agg, c.test)
		if err != nil {
			return fl.RoundRecord{}, fmt.Errorf("round %d accuracy: %w", round, err)
		}
		rec.TestAccuracy = acc
	}
	if obs != nil {
		pc.Lap(fl.PhaseEvaluate)
	}

	c.mu.Lock()
	rec.Rejoins = c.rejoins
	c.rejoins = 0
	// Ping-pong: the aggregated spare becomes the global; the old global's
	// storage becomes next round's aggregation target.
	c.spare = c.global
	c.global = agg
	c.round++
	c.history = append(c.history, rec)
	c.mu.Unlock()
	if obs != nil {
		st := pc.Finish(rec.Round)
		st.Workers = len(targets)
		st.Dropped = len(rec.Dropped)
		st.Rejoins = rec.Rejoins
		st.Retries = rec.Retries
		st.DownlinkBytes = rec.DownlinkBytes
		st.UplinkBytes = rec.UplinkBytes
		st.DownlinkAttemptBytes = rec.DownlinkAttemptBytes
		st.DownlinkDeliveredBytes = rec.DownlinkDeliveredBytes
		st.UplinkAttemptBytes = rec.UplinkAttemptBytes
		st.UplinkDeliveredBytes = rec.UplinkDeliveredBytes
		obs.ObserveRound(st)
	}
	return rec, nil
}

// Run drives rounds until stop fires, then broadcasts shutdown.
func (c *Coordinator) Run(ctx context.Context, stop fl.StopCondition) ([]fl.RoundRecord, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrCoordinator)
	}
	for !stop(c.History()) {
		if err := ctx.Err(); err != nil {
			return c.History(), fmt.Errorf("run: %w", err)
		}
		if _, err := c.Round(ctx); err != nil {
			return c.History(), err
		}
	}
	c.Shutdown()
	return c.History(), nil
}

// Shutdown notifies every client and closes all connections plus the
// listener, which also stops the background registration loop. Safe to call
// multiple times and concurrently with rounds in flight (those rounds fail
// with connection errors).
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	c.down = true
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cl := range clients {
		if cl.conn == nil {
			continue
		}
		// Best-effort farewell; the close that follows is the real signal.
		cl.conn.SetDeadline(time.Now().Add(2 * time.Second))
		if err := writeFrame(cl.conn, MsgShutdown, nil); err != nil {
			// The client may already be gone — closing below is enough.
			_ = err
		}
		cl.conn.Close()
	}
	c.ln.Close()
}
