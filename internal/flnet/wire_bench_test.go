package flnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/ml"
)

// BenchmarkRoundWire measures one full networked FedAvg round over loopback
// TCP with the paper's K=10 fan-out: request encode + K conn writes, K local
// trainings, K reply reads + decodes, aggregation, evaluation. One local
// epoch over tiny shards keeps SGD cheap so the wire path (frame buffers,
// model encode/decode, syscalls) dominates — this is the benchmark the
// pooled zero-copy protocol is pinned by (allocs/op and B/op in
// BENCH_<date>.json behind the benchfmt gate).
func BenchmarkRoundWire(b *testing.B) {
	const servers, k = 10, 10
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 200
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		b.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		b.Fatalf("Partition: %v", err)
	}
	coord, cleanup := benchCluster(b, shards, test, CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: k,
			LocalEpochs:     1,
			LearningRate:    0.5,
			Decay:           0.99,
			Seed:            1,
		},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 30 * time.Second,
		JoinTimeout:  10 * time.Second,
	})
	defer cleanup()

	ctx := context.Background()
	// Warm round: edge-side training state, coordinator scratch, and the
	// frame pools all reach steady state before the timer starts.
	if _, err := coord.Round(ctx); err != nil {
		b.Fatalf("warm round: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Round(ctx); err != nil {
			b.Fatalf("round %d: %v", i, err)
		}
	}
}

// benchCluster starts a coordinator plus one edge server per shard over
// loopback TCP, waits for full registration, and returns a cleanup that
// shuts the fleet down.
func benchCluster(b *testing.B, shards []*dataset.Dataset, test *dataset.Dataset, cfg CoordinatorConfig) (*Coordinator, func()) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(cfg, ln, test)
	if err != nil {
		b.Fatalf("NewCoordinator: %v", err)
	}
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = RunEdgeServer(context.Background(), EdgeConfig{
				Addr:  coord.Addr().String(),
				Shard: shards[i],
				Seed:  uint64(i + 1),
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, len(shards)); err != nil {
		b.Fatalf("WaitForClients: %v", err)
	}
	return coord, func() {
		coord.Shutdown()
		wg.Wait()
	}
}

// BenchmarkEncodeTrainRequest isolates the downlink encode: one request
// frame carrying the full 10×64 global model — the per-round, per-client
// payload the residual path shrinks.
func BenchmarkEncodeTrainRequest(b *testing.B) {
	m := ml.NewModel(10, 64, ml.Softmax)
	m.W.Fill(0.25)
	req := TrainRequest{Round: 3, Epochs: 5, LearningRate: 0.1, Model: m}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := encodeTrainRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(payload) == 0 {
			b.Fatal("empty payload")
		}
	}
}

// BenchmarkEncodeResidual is the coordinator-side residual downlink build:
// subtract the client's last reconstruction from the snapshot, quantize the
// residual into a pooled frame, dequantize it back for error feedback, and
// stage the client's next state — everything buildResidualFrame does per
// selected v2 client per round, against the full-model encode above.
func BenchmarkEncodeResidual(b *testing.B) {
	snap := ml.NewModel(10, 64, ml.Softmax)
	snap.W.Fill(0.25)
	last := snap.Clone()
	last.W.Fill(0.249) // small drift, as between consecutive rounds
	c := &Coordinator{cfg: CoordinatorConfig{Classes: 10, Features: 64}, snap: snap}
	cl := &clientConn{lastSent: last, proto: ProtoV2}
	req := TrainRequest{Round: 3, Epochs: 5, LearningRate: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp, frame, err := c.buildResidualFrame(cl, req, ml.Quant8)
		if err != nil {
			b.Fatal(err)
		}
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
		freeFrame(bp)
	}
}
