package flnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/fldgram"
)

// BenchmarkDgramRoundWire is BenchmarkRoundWire's datagram twin: one full
// networked FedAvg round with the K=10 fan-out over loopback UDP through the
// fldgram stop-and-wait ARQ — fragmentation, per-fragment ACKs, reassembly.
// The loss=0 case prices the ARQ machinery itself against the TCP baseline;
// loss=10% adds the seeded injector so the geometric retransmission cost of
// the paper's Eq. 4 shows up as wall-clock (injected drops skip the RTO wait,
// so the overhead measured is the retransmitted bytes, not timer sleeps).
func BenchmarkDgramRoundWire(b *testing.B) {
	for _, bc := range []struct {
		name        string
		successProb float64
	}{
		{"loss=0", 1},
		{"loss=10%", 0.9},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const servers, k = 10, 10
			dcfg := dataset.QuickSyntheticConfig()
			dcfg.Samples = 200
			train, test, err := dataset.SynthesizePair(dcfg, dcfg)
			if err != nil {
				b.Fatalf("SynthesizePair: %v", err)
			}
			shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
			if err != nil {
				b.Fatalf("Partition: %v", err)
			}
			coord, cleanup := benchDgramCluster(b, shards, test, bc.successProb, CoordinatorConfig{
				FL: fl.Config{
					ClientsPerRound: k,
					LocalEpochs:     1,
					LearningRate:    0.5,
					Decay:           0.99,
					Seed:            1,
				},
				Classes:      train.Classes,
				Features:     train.Dim(),
				RoundTimeout: 30 * time.Second,
				JoinTimeout:  10 * time.Second,
			})
			defer cleanup()

			ctx := context.Background()
			if _, err := coord.Round(ctx); err != nil {
				b.Fatalf("warm round: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Round(ctx); err != nil {
					b.Fatalf("round %d: %v", i, err)
				}
			}
		})
	}
}

// benchDgramCluster mirrors benchCluster over the datagram transport: a
// fldgram UDP listener plus one fldgram-dialing edge per shard, with the
// given per-attempt delivery probability on both directions.
func benchDgramCluster(b *testing.B, shards []*dataset.Dataset, test *dataset.Dataset, successProb float64, cfg CoordinatorConfig) (*Coordinator, func()) {
	b.Helper()
	ln, err := fldgram.Listen("127.0.0.1:0", fldgram.Config{Seed: 1, SuccessProb: successProb})
	if err != nil {
		b.Fatalf("fldgram.Listen: %v", err)
	}
	coord, err := NewCoordinator(cfg, ln, test)
	if err != nil {
		b.Fatalf("NewCoordinator: %v", err)
	}
	var wg sync.WaitGroup
	for i := range shards {
		dial, err := fldgram.Dialer(fldgram.Config{Seed: uint64(i + 2), SuccessProb: successProb})
		if err != nil {
			b.Fatalf("fldgram.Dialer: %v", err)
		}
		wg.Add(1)
		go func(i int, dial func(string, time.Duration) (net.Conn, error)) {
			defer wg.Done()
			_ = RunEdgeServer(context.Background(), EdgeConfig{
				Addr:  coord.Addr().String(),
				Shard: shards[i],
				Seed:  uint64(i + 1),
				Dial:  dial,
			})
		}(i, dial)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, len(shards)); err != nil {
		b.Fatalf("WaitForClients: %v", err)
	}
	return coord, func() {
		coord.Shutdown()
		wg.Wait()
	}
}
