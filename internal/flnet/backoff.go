package flnet

import (
	"context"
	"fmt"
	"math"
	"time"

	"eefei/internal/mat"
)

// RetryPolicy governs how an edge server redials and re-registers after a
// connection failure: capped exponential backoff with deterministic,
// seed-driven jitter. The zero value disables retries entirely (a single
// attempt, fail fast — the pre-resilience behaviour).
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive failed connection attempts
	// tolerated before giving up; 0 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Zero selects 100 ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. Zero selects 5 s.
	MaxDelay time.Duration
	// Multiplier grows the delay per consecutive failure. Values below 1
	// (including zero) select 2.
	Multiplier float64
	// JitterFrac spreads each delay uniformly over ±this fraction, drawn
	// from the caller's seeded RNG so retry schedules stay reproducible.
	// Zero disables jitter.
	JitterFrac float64
}

// DefaultRetryPolicy is a sensible edge-deployment policy: six attempts,
// 100 ms growing to a 5 s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

// Enabled reports whether the policy performs any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// Backoff returns the delay before retry number attempt (1-based). The rng
// supplies the jitter draw; a nil rng disables jitter. Identical (policy,
// attempt, rng state) triples produce identical delays.
func (p RetryPolicy) Backoff(attempt int, rng *mat.RNG) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base) * math.Pow(mult, float64(attempt-1))
	if d > float64(maxd) {
		d = float64(maxd)
	}
	if p.JitterFrac > 0 && rng != nil {
		d *= 1 + p.JitterFrac*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// sleepCtx pauses for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("backoff: %w", err)
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("backoff: %w", ctx.Err())
	case <-t.C:
		return nil
	}
}
