package flnet

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/ml"
)

// --- protocol unit tests -----------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgJoin, []byte{1, 2, 3}); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if typ != MsgJoin || len(payload) != 3 || payload[2] != 3 {
		t.Errorf("round trip lost data: %v %v", typ, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgShutdown, nil); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if typ != MsgShutdown || len(payload) != 0 {
		t.Errorf("empty frame mangled: %v %v", typ, payload)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := readFrame(&buf); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized frame = %v, want ErrProtocol", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, byte(MsgJoin)}) // promises 10, delivers 1
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("truncated frame must error")
	}
}

func TestExpectFrameTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgJoin, []byte{0, 0, 0, 0}); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	if _, err := expectFrame(&buf, MsgWelcome); !errors.Is(err, ErrProtocol) {
		t.Errorf("type mismatch = %v, want ErrProtocol", err)
	}
}

func TestTrainRequestRoundTrip(t *testing.T) {
	m := ml.NewModel(3, 4, ml.Softmax)
	m.W.Set(1, 2, 7.5)
	req := TrainRequest{Round: 9, Epochs: 40, LearningRate: 0.01, Model: m}
	payload, err := encodeTrainRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := decodeTrainRequest(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Round != 9 || back.Epochs != 40 || back.LearningRate != 0.01 {
		t.Errorf("header lost: %+v", back)
	}
	if back.Model.ParamDistance(m) != 0 {
		t.Error("model lost in transit")
	}
}

func TestTrainReplyRoundTrip(t *testing.T) {
	m := ml.NewModel(2, 2, ml.Sigmoid)
	m.B[1] = -3
	rep := TrainReply{Round: 4, Loss: 0.125, Samples: 3000, Model: m}
	payload, err := encodeTrainReply(rep)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := decodeTrainReply(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Round != 4 || back.Loss != 0.125 || back.Samples != 3000 {
		t.Errorf("header lost: %+v", back)
	}
	if back.Model.ParamDistance(m) != 0 {
		t.Error("model lost in transit")
	}
}

func TestDecodeShortBodies(t *testing.T) {
	if _, err := decodeTrainRequest([]byte{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short request = %v, want ErrProtocol", err)
	}
	if _, err := decodeTrainReply([]byte{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short reply = %v, want ErrProtocol", err)
	}
	if _, err := decodeUint32([]byte{1}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short uint32 = %v, want ErrProtocol", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, m := range []MsgType{MsgJoin, MsgWelcome, MsgTrainRequest, MsgTrainReply, MsgShutdown} {
		if m.String() == "" {
			t.Errorf("MsgType %d has empty name", m)
		}
	}
	if MsgType(77).String() == "" {
		t.Error("unknown type must still print")
	}
}

// --- end-to-end tests ---------------------------------------------------------

// startCluster spins up a coordinator plus `servers` edge clients over
// loopback TCP and returns the coordinator and a wait function for the
// clients.
func startCluster(t *testing.T, servers, k, epochs int) (*Coordinator, func() []error) {
	t.Helper()
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 500
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: k,
			LocalEpochs:     epochs,
			LearningRate:    0.5,
			Decay:           0.99,
			Seed:            1,
		},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 30 * time.Second,
		JoinTimeout:  10 * time.Second,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	errs := make([]error, servers)
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunEdgeServer(context.Background(), EdgeConfig{
				Addr:  coord.Addr().String(),
				Shard: shards[i],
				Seed:  uint64(i + 1),
			})
		}(i)
	}
	wait := func() []error {
		wg.Wait()
		return errs
	}
	t.Cleanup(coord.Shutdown)
	return coord, wait
}

func TestNetworkedTrainingEndToEnd(t *testing.T) {
	coord, wait := startCluster(t, 5, 3, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, 5); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	history, err := coord.Run(ctx, fl.MaxRounds(8))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(history) != 8 {
		t.Fatalf("got %d rounds, want 8", len(history))
	}
	first, last := history[0], history[7]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("networked loss did not fall: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAccuracy < 0.5 {
		t.Errorf("networked accuracy = %v after 8 rounds", last.TestAccuracy)
	}
	for i, err := range wait() {
		if err != nil {
			t.Errorf("edge server %d exited with %v", i, err)
		}
	}
}

func TestNetworkedMatchesInProcess(t *testing.T) {
	// Same data, same seed, full participation (selection order irrelevant):
	// the networked run must match the in-process engine's aggregated model
	// trajectory.
	servers, k, epochs := 4, 4, 3
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 400
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	// In-process reference.
	flCfg := fl.Config{
		ClientsPerRound: k,
		LocalEpochs:     epochs,
		LearningRate:    0.5,
		Decay:           0.99,
		Seed:            1,
	}
	engine, err := fl.NewEngine(flCfg, shards, fl.WithTestSet(test))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := engine.Run(fl.MaxRounds(4)); err != nil {
		t.Fatalf("engine Run: %v", err)
	}

	// Networked run.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: flCfg, Classes: train.Classes, Features: train.Dim(),
		RoundTimeout: 30 * time.Second, JoinTimeout: 10 * time.Second,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = RunEdgeServer(context.Background(), EdgeConfig{
				Addr: coord.Addr().String(), Shard: shards[i], Seed: uint64(i + 1),
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, servers); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	history, err := coord.Run(ctx, fl.MaxRounds(4))
	if err != nil {
		t.Fatalf("coordinator Run: %v", err)
	}
	wg.Wait()

	// Full participation with full-batch SGD is deterministic: the global
	// models after 4 rounds must match bit-for-bit up to aggregation order
	// (the coordinator may sum clients in a different order, so allow tiny
	// float reordering noise).
	dist := engine.Global().ParamDistance(coord.Global())
	if dist > 1e-9 {
		t.Errorf("networked and in-process models diverged by %v", dist)
	}
	netAcc := history[3].TestAccuracy
	engAcc := engine.History()[3].TestAccuracy
	if netAcc != engAcc {
		t.Errorf("accuracy mismatch: networked %v vs in-process %v", netAcc, engAcc)
	}
}

func TestCoordinatorRejectsBadConfig(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := NewCoordinator(CoordinatorConfig{Classes: 0, Features: 5}, ln, nil); !errors.Is(err, ErrCoordinator) {
		t.Errorf("zero classes = %v, want ErrCoordinator", err)
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		Classes: 2, Features: 2,
		FL: fl.Config{ClientsPerRound: 0, LocalEpochs: 1, LearningRate: 1},
	}, ln, nil); !errors.Is(err, ErrCoordinator) {
		t.Errorf("K=0 = %v, want ErrCoordinator", err)
	}
}

func TestRoundWithoutEnoughClients(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL:      fl.Config{ClientsPerRound: 2, LocalEpochs: 1, LearningRate: 0.1},
		Classes: 2, Features: 2,
	}, ln, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()
	if _, err := coord.Round(context.Background()); !errors.Is(err, ErrCoordinator) {
		t.Errorf("round with no clients = %v, want ErrCoordinator", err)
	}
}

func TestDialFailsFast(t *testing.T) {
	shard := &dataset.Dataset{}
	if _, err := Dial(EdgeConfig{Addr: "127.0.0.1:1", Shard: shard}); !errors.Is(err, ErrEdge) {
		t.Errorf("empty shard = %v, want ErrEdge", err)
	}
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 20
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if _, err := Dial(EdgeConfig{Addr: "127.0.0.1:1", Shard: d, DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Error("dialing a dead port must fail")
	}
}

func TestEdgeServeContextCancel(t *testing.T) {
	// An edge server blocked on reads must unblock when its context dies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	// Fake coordinator: accept, answer the handshake, then go silent.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := expectFrame(conn, MsgJoin); err != nil {
			return
		}
		if err := writeFrame(conn, MsgWelcome, encodeUint32(0)); err != nil {
			return
		}
		// Hold the connection open silently.
		time.Sleep(5 * time.Second)
		conn.Close()
	}()

	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 20
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = RunEdgeServer(ctx, EdgeConfig{Addr: ln.Addr().String(), Shard: d})
	if err == nil {
		t.Fatal("cancelled serve must return an error")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("context cancellation did not unblock the read promptly")
	}
}

func TestWaitForClientsTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL:      fl.Config{ClientsPerRound: 1, LocalEpochs: 1, LearningRate: 0.1},
		Classes: 2, Features: 2,
		JoinTimeout: 200 * time.Millisecond,
	}, ln, nil)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()
	start := time.Now()
	if err := coord.WaitForClients(context.Background(), 3); err == nil {
		t.Error("waiting for clients that never come must fail")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("join timeout not honoured")
	}
}
