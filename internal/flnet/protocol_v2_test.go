package flnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/ml"
)

// --- v2 codec unit tests -----------------------------------------------------

func TestHandshakeCodecs(t *testing.T) {
	// Join: v1 stays the seed 4-byte body, v2 appends the version byte.
	if got := encodeJoin(7, ProtoV1); len(got) != 4 {
		t.Errorf("v1 join body = %d bytes, want 4", len(got))
	}
	samples, proto, err := decodeJoin(encodeJoin(7, ProtoV2))
	if err != nil || samples != 7 || proto != ProtoV2 {
		t.Errorf("v2 join round trip = (%d, v%d, %v)", samples, proto, err)
	}
	samples, proto, err = decodeJoin(encodeJoin(7, ProtoV1))
	if err != nil || samples != 7 || proto != ProtoV1 {
		t.Errorf("v1 join round trip = (%d, v%d, %v)", samples, proto, err)
	}

	// Welcome mirrors Join.
	id, proto, err := decodeWelcome(encodeWelcome(3, ProtoV2))
	if err != nil || id != 3 || proto != ProtoV2 {
		t.Errorf("v2 welcome round trip = (%d, v%d, %v)", id, proto, err)
	}
	id, proto, err = decodeWelcome(encodeWelcome(3, ProtoV1))
	if err != nil || id != 3 || proto != ProtoV1 {
		t.Errorf("v1 welcome round trip = (%d, v%d, %v)", id, proto, err)
	}

	// Rejoin: 8-byte body is v1, 9-byte carries the version.
	rid, samples, proto, err := decodeRejoin(encodeRejoinProto(4, 50, ProtoV2))
	if err != nil || rid != 4 || samples != 50 || proto != ProtoV2 {
		t.Errorf("v2 rejoin round trip = (%d, %d, v%d, %v)", rid, samples, proto, err)
	}
	rid, samples, proto, err = decodeRejoin(encodeRejoin(4, 50))
	if err != nil || rid != 4 || samples != 50 || proto != ProtoV1 {
		t.Errorf("v1 rejoin round trip = (%d, %d, v%d, %v)", rid, samples, proto, err)
	}
}

func TestHandshakeDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"join-empty", func() error { _, _, err := decodeJoin(nil); return err }()},
		{"join-3-bytes", func() error { _, _, err := decodeJoin([]byte{1, 2, 3}); return err }()},
		{"join-6-bytes", func() error { _, _, err := decodeJoin([]byte{1, 2, 3, 4, 5, 6}); return err }()},
		// A versioned body advertising v1 (or v0) is a contradiction: v1
		// clients never send the version byte.
		{"join-versioned-v1", func() error { _, _, err := decodeJoin([]byte{1, 0, 0, 0, 1}); return err }()},
		{"join-versioned-v0", func() error { _, _, err := decodeJoin([]byte{1, 0, 0, 0, 0}); return err }()},
		{"welcome-versioned-v1", func() error { _, _, err := decodeWelcome([]byte{1, 0, 0, 0, 1}); return err }()},
		{"welcome-short", func() error { _, _, err := decodeWelcome([]byte{1}); return err }()},
		{"rejoin-short", func() error { _, _, _, err := decodeRejoin([]byte{1, 2}); return err }()},
		{"rejoin-versioned-v0", func() error {
			_, _, _, err := decodeRejoin([]byte{0, 0, 0, 0, 1, 0, 0, 0, 0})
			return err
		}()},
		{"rejoin-10-bytes", func() error {
			_, _, _, err := decodeRejoin(make([]byte, 10))
			return err
		}()},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrProtocol) {
			t.Errorf("%s: err = %v, want ErrProtocol", tc.name, tc.err)
		}
	}
}

func TestNegotiate(t *testing.T) {
	for _, tc := range []struct{ adv, want byte }{
		{ProtoV1, ProtoV1},
		{ProtoV2, ProtoV2},
		{ProtoV2 + 1, ProtoV2}, // future client capped at what we speak
		{255, ProtoV2},
	} {
		if got := negotiate(tc.adv); got != tc.want {
			t.Errorf("negotiate(v%d) = v%d, want v%d", tc.adv, got, tc.want)
		}
	}
}

func TestTrainRequestV2RoundTrip(t *testing.T) {
	m := ml.NewModel(3, 4, ml.Softmax)
	m.W.Set(1, 2, -2.5)
	m.B[0] = 0.75

	// Full-model v2 request.
	full := TrainRequest{Round: 6, Epochs: 3, LearningRate: 0.25, ReplyBits: ml.Quant8, BaseRound: 6}
	buf := appendTrainRequestV2Header(nil, full)
	buf = m.AppendBinary(buf)
	back, body, err := decodeTrainRequestV2(buf)
	if err != nil {
		t.Fatalf("decode full v2: %v", err)
	}
	if back.Round != 6 || back.Epochs != 3 || back.LearningRate != 0.25 ||
		back.ReplyBits != ml.Quant8 || back.DownBits != 0 || back.BaseRound != 6 {
		t.Errorf("full v2 header lost: %+v", back)
	}
	var got ml.Model
	if err := got.UnmarshalBinary(body); err != nil {
		t.Fatalf("body: %v", err)
	}
	if got.ParamDistance(m) != 0 {
		t.Error("full v2 model lost in transit")
	}

	// Residual request against an earlier base round.
	res := TrainRequest{Round: 6, Epochs: 3, LearningRate: 0.25, DownBits: ml.Quant8, BaseRound: 5}
	buf2 := appendTrainRequestV2Header(nil, res)
	buf2, err = ml.AppendQuantized(buf2, m, ml.Quant8)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	back2, body2, err := decodeTrainRequestV2(buf2)
	if err != nil {
		t.Fatalf("decode residual v2: %v", err)
	}
	if back2.DownBits != ml.Quant8 || back2.BaseRound != 5 {
		t.Errorf("residual header lost: %+v", back2)
	}
	var resid ml.Model
	if err := resid.DequantizeInto(body2); err != nil {
		t.Fatalf("residual body: %v", err)
	}
	bound := ml.MaxQuantError(m, ml.Quant8) * 1.01
	if d := resid.ParamDistance(m); d > bound*float64(m.ParamCount()) {
		t.Errorf("residual reconstruction distance %v too large", d)
	}
}

// TestDecodeTrainRequestV2Errors is the malformed-frame table: every corrupt
// header shape a peer could send must produce a deterministic ErrProtocol.
func TestDecodeTrainRequestV2Errors(t *testing.T) {
	m := ml.NewModel(2, 2, ml.Softmax)
	good := appendTrainRequestV2Header(nil, TrainRequest{Round: 3, BaseRound: 3, Epochs: 1, LearningRate: 0.1})
	good = m.AppendBinary(good)

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"truncated-header", good[:trainReqV2HeaderLen-1]},
		{"header-only-no-body", good[:trainReqV2HeaderLen]},
		{"bad-reply-bits", corrupt(func(b []byte) []byte { b[16] = 12; return b })},
		{"bad-down-bits", corrupt(func(b []byte) []byte { b[20] = 7; return b })},
		{"reserved-nonzero", corrupt(func(b []byte) []byte { b[21] = 1; return b })},
		// Full-model requests must self-describe: BaseRound == Round.
		{"full-base-mismatch", corrupt(func(b []byte) []byte { b[22] = 99; return b })},
		// Residual from the future: BaseRound > Round.
		{"residual-future-base", corrupt(func(b []byte) []byte {
			b[20] = byte(ml.Quant8)
			b[22] = 9 // round is 3
			return b
		})},
	}
	for _, tc := range cases {
		_, _, err := decodeTrainRequestV2(tc.payload)
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: err = %v, want ErrProtocol", tc.name, err)
		}
	}

	// A truncated residual body passes the header but must fail the model
	// decode on the edge (DequantizeInto), not panic.
	res := appendTrainRequestV2Header(nil, TrainRequest{Round: 3, BaseRound: 2, DownBits: ml.Quant8, Epochs: 1, LearningRate: 0.1})
	full, err := ml.AppendQuantized(res, m, ml.Quant8)
	if err != nil {
		t.Fatal(err)
	}
	truncated := full[:len(full)-3]
	if _, body, err := decodeTrainRequestV2(truncated); err == nil {
		var scratch ml.Model
		if err := scratch.DequantizeInto(body); err == nil {
			t.Error("truncated residual body must fail to decode")
		}
	}
}

// TestEdgeRejectsProtocolMismatches drives the edge-side handshake guards: an
// unknown pinned version fails fast, and a coordinator negotiating a version
// higher than advertised is a protocol error.
func TestEdgeRejectsProtocolMismatches(t *testing.T) {
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 20
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}

	if _, err := Dial(EdgeConfig{Addr: "127.0.0.1:1", Shard: d, Protocol: 7}); !errors.Is(err, ErrEdge) {
		t.Errorf("unknown pinned protocol = %v, want ErrEdge", err)
	}

	// A (buggy or malicious) coordinator welcoming a v1 client at v2.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := expectFrame(conn, MsgJoin); err != nil {
			return
		}
		_ = writeFrame(conn, MsgWelcome, encodeWelcome(0, ProtoV2))
	}()
	_, err = Dial(EdgeConfig{
		Addr: ln.Addr().String(), Shard: d, Protocol: ProtoV1,
		DialTimeout: 2 * time.Second,
	})
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("negotiated above advertised = %v, want ErrProtocol", err)
	}
}

// --- allocation pins ---------------------------------------------------------

// TestWriteFrameAllocationFree pins the pooled frame path: steady-state
// writeFrame (header + payload coalesced in a pooled buffer) and
// readFrameInto with warm scratch must not touch the heap.
func TestWriteFrameAllocationFree(t *testing.T) {
	payload := make([]byte, 8192)
	// Warm the pool so the measured runs reuse a buffer.
	if err := writeFrame(io.Discard, MsgTrainRequest, payload); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := writeFrame(io.Discard, MsgTrainRequest, payload); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.1 {
		t.Errorf("writeFrame allocates %.1f objects per frame, want 0", avg)
	}

	var wire bytes.Buffer
	if err := writeFrame(&wire, MsgTrainRequest, payload); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), wire.Bytes()...)
	scratch := make([]byte, 0, len(frame))
	r := bytes.NewReader(frame)
	if avg := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		if _, _, err := readFrameInto(r, &scratch); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.1 {
		t.Errorf("readFrameInto allocates %.1f objects per frame, want 0", avg)
	}
}

// --- interop and bit-identity ------------------------------------------------

// residualCluster spins up a coordinator with the given downlink codec plus
// edges pinned at the given protocol versions, runs `rounds` rounds, and
// returns the coordinator (still up; t.Cleanup shuts it down) and history.
func residualCluster(t *testing.T, protos []byte, downBits ml.QuantBits, rounds int, stop fl.StopCondition) (*Coordinator, []fl.RoundRecord) {
	t.Helper()
	servers := len(protos)
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 400
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: servers, LocalEpochs: 3, LearningRate: 0.5, Decay: 0.99, Seed: 1,
		},
		Classes:           train.Classes,
		Features:          train.Dim(),
		RoundTimeout:      30 * time.Second,
		JoinTimeout:       10 * time.Second,
		DownloadQuantBits: downBits,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Shutdown)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// Join strictly in shard order so slot ids — and with them selection and
	// aggregation-sum order — are identical across clusters. Bit-identity
	// comparisons between two independently started fleets need this; a
	// racing join would only reorder floating-point sums.
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = RunEdgeServer(context.Background(), EdgeConfig{
				Addr: coord.Addr().String(), Shard: shards[i], Seed: uint64(i + 1),
				Protocol: protos[i],
			})
		}(i)
		if err := coord.AwaitRoster(ctx, i+1, 30*time.Second); err != nil {
			t.Fatalf("edge %d join: %v", i, err)
		}
	}
	if err := coord.WaitForClients(ctx, servers); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	if stop == nil {
		stop = fl.MaxRounds(rounds)
	}
	history, err := coord.Run(ctx, stop)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wg.Wait()
	return coord, history
}

// TestLosslessV2BitIdenticalToV1 pins the central compatibility promise: a
// lossless v2 run (version-negotiated handshake, v2 request framing, full
// model body) trains bit-identical weights to the seed v1 protocol, at
// several fleet sizes including GOMAXPROCS.
func TestLosslessV2BitIdenticalToV1(t *testing.T) {
	sizes := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 1 && p != 2 && p != 4 {
		sizes = append(sizes, p)
	}
	for _, servers := range sizes {
		v1 := make([]byte, servers)
		v2 := make([]byte, servers)
		for i := range v1 {
			v1[i], v2[i] = ProtoV1, ProtoV2
		}
		coordV1, histV1 := residualCluster(t, v1, 0, 3, nil)
		coordV2, histV2 := residualCluster(t, v2, 0, 3, nil)
		if d := coordV1.Global().ParamDistance(coordV2.Global()); d != 0 {
			t.Errorf("servers=%d: lossless v2 diverged from v1 by %v, want bit-identical", servers, d)
		}
		for r := range histV1 {
			if histV1[r].TrainLoss != histV2[r].TrainLoss || histV1[r].TestAccuracy != histV2[r].TestAccuracy {
				t.Errorf("servers=%d round %d: v1 (loss %v acc %v) vs v2 (loss %v acc %v)",
					servers, r, histV1[r].TrainLoss, histV1[r].TestAccuracy,
					histV2[r].TrainLoss, histV2[r].TestAccuracy)
			}
		}
	}
}

// TestMixedProtocolInterop runs one fleet with v1 and v2 edges side by side
// under a quantized downlink: v2 edges receive residuals, v1 edges full
// models, and the round still aggregates and converges.
func TestMixedProtocolInterop(t *testing.T) {
	_, history := residualCluster(t, []byte{ProtoV1, ProtoV2, ProtoV1, ProtoV2}, ml.Quant8, 6, nil)
	if len(history) != 6 {
		t.Fatalf("got %d rounds, want 6", len(history))
	}
	first, last := history[0], history[len(history)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("mixed-fleet loss did not fall: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAccuracy < 0.5 {
		t.Errorf("mixed-fleet accuracy = %v after 6 rounds", last.TestAccuracy)
	}
	for r, rec := range history {
		if rec.DownlinkBytes <= 0 || rec.UplinkBytes <= 0 {
			t.Errorf("round %d: bytes not counted: down %d up %d", r, rec.DownlinkBytes, rec.UplinkBytes)
		}
	}
}

// TestResidualDownlinkShrinksBytesAndConverges is the headline acceptance
// test: an 8-bit residual downlink cuts warm-round downlink bytes at least
// 4x against the lossless run, while still training to 0.9 test accuracy.
func TestResidualDownlinkShrinksBytesAndConverges(t *testing.T) {
	const servers = 4
	protos := []byte{ProtoV2, ProtoV2, ProtoV2, ProtoV2}
	stop := func(h []fl.RoundRecord) bool {
		return fl.TargetAccuracy(0.9)(h) || fl.MaxRounds(60)(h)
	}
	_, full := residualCluster(t, protos, 0, 0, stop)
	_, quant := residualCluster(t, protos, ml.Quant8, 0, stop)

	if acc := quant[len(quant)-1].TestAccuracy; acc < 0.9 {
		t.Errorf("quantized downlink final accuracy = %v, want >= 0.9 within %d rounds", acc, len(quant))
	}
	if len(full) < 2 || len(quant) < 2 {
		t.Fatalf("need at least 2 rounds, got full=%d quant=%d", len(full), len(quant))
	}
	// Round 0 is always a full broadcast (no base yet); warm rounds carry
	// residuals. Compare per-round downlink volume from round 1 on.
	fullPerRound := full[1].DownlinkBytes
	quantPerRound := quant[1].DownlinkBytes
	if quantPerRound*4 > fullPerRound {
		t.Errorf("warm-round downlink %dB (quantized) vs %dB (full) — want >= 4x reduction",
			quantPerRound, fullPerRound)
	}
	// Round 0 must match: both runs broadcast the full model.
	if quant[0].DownlinkBytes != full[0].DownlinkBytes {
		t.Errorf("cold-round downlink differs: %dB vs %dB", quant[0].DownlinkBytes, full[0].DownlinkBytes)
	}
}

// TestResidualSurvivesRejoin forces a mid-run reconnect under a quantized
// downlink: the rejoined connection must fall back to a full broadcast (its
// residual base is gone) and training must continue unperturbed.
func TestResidualSurvivesRejoin(t *testing.T) {
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 300
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: 2, LocalEpochs: 2, LearningRate: 0.3, Decay: 0.99, Seed: 1,
		},
		Classes:           train.Classes,
		Features:          train.Dim(),
		RoundTimeout:      30 * time.Second,
		JoinTimeout:       10 * time.Second,
		RejoinGrace:       10 * time.Second,
		DownloadQuantBits: ml.Quant8,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Shutdown()

	edgeCtx, stopEdges := context.WithCancel(context.Background())
	defer stopEdges()
	runEdge := func(i int) {
		_ = RunEdgeServer(edgeCtx, EdgeConfig{
			Addr: coord.Addr().String(), Shard: shards[i], Seed: uint64(i + 1),
			Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2},
		})
	}
	go runEdge(0)
	go runEdge(1)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.WaitForClients(ctx, 2); err != nil {
		t.Fatalf("WaitForClients: %v", err)
	}
	// Two rounds to establish residual state on both clients.
	for i := 0; i < 2; i++ {
		if _, err := coord.Round(ctx); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	// Kill client 0's connection between rounds; its retry loop rejoins.
	coord.mu.Lock()
	conn0 := coord.clients[0].conn
	coord.mu.Unlock()
	conn0.Close()
	if err := coord.AwaitRoster(ctx, 2, 10*time.Second); err != nil {
		t.Fatalf("AwaitRoster after kill: %v", err)
	}
	// The next rounds must succeed: round 3 re-sends the full model to the
	// rejoined client, later rounds go back to residuals.
	var recs []fl.RoundRecord
	for i := 0; i < 3; i++ {
		rec, err := coord.Round(ctx)
		if err != nil {
			t.Fatalf("post-rejoin round %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	// Final round should be back on residuals for both clients: strictly
	// fewer downlink bytes than the post-rejoin round that carried one full
	// model.
	if recs[2].DownlinkBytes >= recs[0].DownlinkBytes {
		t.Errorf("residuals did not resume after rejoin: %dB then %dB",
			recs[0].DownlinkBytes, recs[2].DownlinkBytes)
	}
}
