package flnet

import (
	"bytes"
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/fl"
	"eefei/internal/fldgram"
	"eefei/internal/iot"
)

// dgramRun is one training run over the datagram transport: the committed
// round history, the per-round byte-exact global model snapshots, and the
// aggregated edge-side uplink meter.
type dgramRun struct {
	history []fl.RoundRecord
	weights [][]byte
	meter   *fldgram.Meter
}

// runDgramTraining trains a 5-edge cluster (K=3) to `rounds` committed
// rounds over fldgram on a loopback UDP socket, with every data packet
// subject to the seeded per-attempt delivery probability successProb on both
// directions. successProb=1 disables injection (the transport still runs the
// full ARQ path). The small MTU forces multi-fragment frames so the
// geometric retransmission process gets a statistically meaningful number of
// draws per round.
func runDgramTraining(t *testing.T, seed uint64, rounds int, successProb float64) dgramRun {
	t.Helper()
	const servers, k = 5, 3
	const mtu = 256

	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 500
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	ln, err := fldgram.Listen("127.0.0.1:0", fldgram.Config{
		MTU:         mtu,
		Seed:        seed,
		SuccessProb: successProb,
	})
	if err != nil {
		t.Fatalf("fldgram.Listen: %v", err)
	}
	ccfg := CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: k,
			LocalEpochs:     5,
			LearningRate:    0.5,
			Decay:           0.99,
			Seed:            1,
		},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 30 * time.Second,
		JoinTimeout:  10 * time.Second,
		MinReplies:   2,
		RejoinGrace:  5 * time.Second,
	}
	coord, err := NewCoordinator(ccfg, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := coord.AwaitRoster(ctx, 0, time.Second); err != nil {
		t.Fatalf("start accept loop: %v", err)
	}

	meter := &fldgram.Meter{}
	errs := make([]error, servers)
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		dial, err := fldgram.Dialer(fldgram.Config{
			MTU:         mtu,
			Seed:        seed + uint64(i)*1000003 + 1,
			SuccessProb: successProb,
			Meter:       meter,
		})
		if err != nil {
			t.Fatalf("fldgram.Dialer: %v", err)
		}
		wg.Add(1)
		go func(i int, dial func(string, time.Duration) (net.Conn, error)) {
			defer wg.Done()
			errs[i] = RunEdgeServer(context.Background(), EdgeConfig{
				Addr:  coord.Addr().String(),
				Shard: shards[i],
				Seed:  uint64(i + 1),
				Retry: chaosRetry(),
				Dial:  dial,
			})
		}(i, dial)
		if err := coord.AwaitRoster(ctx, i+1, 10*time.Second); err != nil {
			t.Fatalf("edge %d never registered: %v", i, err)
		}
	}

	var weights [][]byte
	for len(coord.History()) < rounds {
		if _, err := coord.Round(ctx); err != nil {
			t.Fatalf("round failed over dgram transport: %v", err)
		}
		w, err := coord.Global().MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		weights = append(weights, w)
	}
	coord.Shutdown()
	wg.Wait()
	for i, err := range errs {
		if !edgeExitOK(err) {
			t.Errorf("edge %d exited with %v", i, err)
		}
	}
	return dgramRun{history: coord.History(), weights: weights, meter: meter}
}

// TestDgramTrainingMatchesStream is the transport-equivalence check: with
// ≥10% of data packets dropped by the seeded injector, the ARQ must repair
// every loss so the committed round history is identical — record for record
// — to the one a lossless TCP cluster produces from the same seeds. The
// transport may cost retransmissions; it may not change what the federation
// learns.
func TestDgramTrainingMatchesStream(t *testing.T) {
	const rounds = 8
	dgram := runDgramTraining(t, 77, rounds, 0.9)
	stream, _ := runChaosTraining(t, 77, rounds, 0, nil) // DropMeanBytes=0: plain TCP
	assertIdenticalHistories(t, dgram.history, stream)

	last := dgram.history[len(dgram.history)-1]
	if last.TestAccuracy < 0.5 {
		t.Errorf("accuracy over lossy dgram = %v, want >= 0.5", last.TestAccuracy)
	}
	var attempt, delivered int64
	for _, rec := range dgram.history {
		attempt += rec.DownlinkAttemptBytes + rec.UplinkAttemptBytes
		delivered += rec.DownlinkDeliveredBytes + rec.UplinkDeliveredBytes
	}
	if delivered == 0 {
		t.Fatal("round records carry no dgram byte counters")
	}
	if attempt <= delivered {
		t.Errorf("attempted %d <= delivered %d bytes: 10%% loss not exercised", attempt, delivered)
	}
}

// TestDgramSameSeedHistoriesIdentical: determinism contract over a real UDP
// socket at 10% injected loss — same seeds must reproduce bit-identical
// per-round global weights (byte-exact serializations), identical round
// records, and identical attempted/delivered byte counters.
func TestDgramSameSeedHistoriesIdentical(t *testing.T) {
	const rounds = 6
	a := runDgramTraining(t, 42, rounds, 0.9)
	b := runDgramTraining(t, 42, rounds, 0.9)
	assertIdenticalHistories(t, a.history, b.history)
	if len(a.weights) != len(b.weights) {
		t.Fatalf("weight history lengths differ: %d vs %d", len(a.weights), len(b.weights))
	}
	for i := range a.weights {
		if !bytes.Equal(a.weights[i], b.weights[i]) {
			t.Errorf("round %d: global weights differ between same-seed runs", i+1)
		}
	}
	for i := range a.history {
		ra, rb := a.history[i], b.history[i]
		if ra.DownlinkAttemptBytes != rb.DownlinkAttemptBytes ||
			ra.DownlinkDeliveredBytes != rb.DownlinkDeliveredBytes ||
			ra.UplinkAttemptBytes != rb.UplinkAttemptBytes ||
			ra.UplinkDeliveredBytes != rb.UplinkDeliveredBytes {
			t.Errorf("round %d: dgram byte counters differ: %+v vs %+v", i+1, ra, rb)
		}
	}
}

// TestDgramMeasuredEnergyMatchesAnalyticRho closes the Eq. 4 loop on
// measured bytes: over ≥20 rounds at per-attempt success probability p, the
// measured expected energy per delivered byte — ρ·(attempted/delivered),
// with both sides counted at wire size by the transport — must match the
// paper's analytic ρ/p within 5%. The injector is seeded, so the measured
// ratio is a deterministic draw from the geometric attempt process; the
// tolerance covers its finite-sample deviation from the mean.
func TestDgramMeasuredEnergyMatchesAnalyticRho(t *testing.T) {
	const rounds = 20
	const p = 0.9
	run := runDgramTraining(t, 7, rounds, p)

	var attempt, delivered int64
	for _, rec := range run.history {
		attempt += rec.DownlinkAttemptBytes + rec.UplinkAttemptBytes
		delivered += rec.DownlinkDeliveredBytes + rec.UplinkDeliveredBytes
	}
	if delivered == 0 {
		t.Fatal("no delivered bytes recorded")
	}
	rho := iot.NBIoTJoulesPerByte
	measured := rho * float64(attempt) / float64(delivered)
	analytic := rho / p
	rel := math.Abs(measured-analytic) / analytic
	t.Logf("coordinator ledger: %d attempted / %d delivered bytes; energy per delivered byte measured %.6g J vs analytic ρ/p %.6g J (%.2f%% off)",
		attempt, delivered, measured, analytic, 100*rel)
	if rel > 0.05 {
		t.Errorf("measured energy per delivered byte %.6g J vs analytic %.6g J: off by %.2f%%, want <= 5%%",
			measured, analytic, 100*rel)
	}

	// The edge-side Meter must tell the same story from the other end of the
	// link: it aggregates every dialer conn's uplink attempts.
	attempts, attemptBytes, deliv, delivBytes := run.meter.Totals()
	if deliv == 0 || attemptBytes <= delivBytes {
		t.Fatalf("edge meter %d/%d attempts, %d/%d bytes: loss not visible", attempts, deliv, attemptBytes, delivBytes)
	}
	meterMeasured := rho * float64(attemptBytes) / float64(delivBytes)
	if rel := math.Abs(meterMeasured-analytic) / analytic; rel > 0.05 {
		t.Errorf("edge meter energy per delivered byte %.6g J vs analytic %.6g J: off by %.2f%%",
			meterMeasured, analytic, 100*rel)
	}
}
