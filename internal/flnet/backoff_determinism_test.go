package flnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// scriptedCoordinator speaks just enough of the protocol for RunEdgeServer
// to register: read the Join/Rejoin, welcome the edge (echoing a rejoin id),
// then either vanish abruptly (forcing ErrConnLost and a reconnect) or shut
// down cleanly.
func scriptedCoordinator(c net.Conn, clean bool) {
	defer c.Close()
	typ, payload, err := readFrame(c)
	if err != nil {
		return
	}
	var id uint32
	if typ == MsgRejoin {
		id, _, _, _ = decodeRejoin(payload)
	}
	if err := writeFrame(c, MsgWelcome, encodeWelcome(id, ProtoV2)); err != nil {
		return
	}
	if clean {
		writeFrame(c, MsgShutdown, nil)
	}
}

// TestRetryBackoffDeterministicAcrossReconnects pins the full reconnect-
// lifecycle backoff schedule, not just a single Backoff call: the jitter RNG
// lives across the whole RunEdgeServer call, so a fixed seed must reproduce
// the identical delay sequence across a scripted run of dial failures,
// a successful registration, an abrupt mid-serve disconnect, more dial
// failures, and a clean shutdown — and the sequence must equal the one
// computed from a cloned RNG, proving the failure counter resets after each
// successful connection while the jitter stream does not.
func TestRetryBackoffDeterministicAcrossReconnects(t *testing.T) {
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 20
	shard, err := dataset.Synthesize(dcfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	policy := RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		JitterFrac:  0.5,
	}
	const seed = 1234

	run := func() []time.Duration {
		var mu sync.Mutex
		attempt := 0
		dial := func(addr string, timeout time.Duration) (net.Conn, error) {
			mu.Lock()
			attempt++
			a := attempt
			mu.Unlock()
			switch a {
			case 1, 2, 3, 5, 6:
				return nil, errors.New("connection refused")
			case 4:
				client, server := net.Pipe()
				go scriptedCoordinator(server, false) // abrupt: forces reconnect
				return client, nil
			default:
				client, server := net.Pipe()
				go scriptedCoordinator(server, true) // clean shutdown
				return client, nil
			}
		}
		var schedule []time.Duration
		err := RunEdgeServer(context.Background(), EdgeConfig{
			Addr:  "scripted",
			Shard: shard,
			Seed:  seed,
			Retry: policy,
			Dial:  dial,
			sleep: func(ctx context.Context, d time.Duration) error {
				schedule = append(schedule, d)
				return nil
			},
		})
		if err != nil {
			t.Fatalf("RunEdgeServer: %v", err)
		}
		if attempt != 7 {
			t.Fatalf("script consumed %d dial attempts, want 7", attempt)
		}
		return schedule
	}

	first := run()
	second := run()
	if len(first) != 5 {
		t.Fatalf("recorded %d backoffs, want 5: %v", len(first), first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("backoff %d differs across same-seed runs: %v vs %v", i, first[i], second[i])
		}
	}

	// The schedule must be explainable: attempts 1..3 before the first
	// connection, then the counter resets and attempts 1..2 precede the
	// second — all drawn from one continuous jitter stream seeded exactly
	// as RunEdgeServer seeds it.
	rng := mat.NewRNG(seed ^ 0x7c159e3779b97f4a)
	want := []time.Duration{
		policy.Backoff(1, rng),
		policy.Backoff(2, rng),
		policy.Backoff(3, rng),
		policy.Backoff(1, rng),
		policy.Backoff(2, rng),
	}
	for i := range want {
		if first[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v (jitter stream out of step)", i, first[i], want[i])
		}
	}
	// With jitter enabled the grown delays must actually differ from the
	// unjittered curve somewhere, or this test would pass vacuously.
	plain := []time.Duration{}
	prng := (*mat.RNG)(nil)
	for _, a := range []int{1, 2, 3, 1, 2} {
		plain = append(plain, policy.Backoff(a, prng))
	}
	same := true
	for i := range want {
		if want[i] != plain[i] {
			same = false
		}
	}
	if same {
		t.Error("jittered schedule identical to unjittered curve; jitter not exercised")
	}
}
