package flnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/ml"
)

// ErrEdge is returned (wrapped) for edge-server-side failures.
var ErrEdge = errors.New("flnet: edge server error")

// EdgeConfig configures one networked edge server.
type EdgeConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Shard is this server's local dataset.
	Shard *dataset.Dataset
	// BatchSize is the local mini-batch size; 0 selects full batch.
	BatchSize int
	// DialTimeout bounds the initial connection. Zero selects 10 s.
	DialTimeout time.Duration
	// Seed drives local mini-batch shuffling.
	Seed uint64
}

// EdgeServer is a connected, registered edge server.
type EdgeServer struct {
	cfg  EdgeConfig
	conn net.Conn
	id   int
	// roundsServed counts completed local-training requests.
	roundsServed int
}

// Dial connects to the coordinator and performs the Join/Welcome handshake.
func Dial(cfg EdgeConfig) (*EdgeServer, error) {
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("empty shard: %w", ErrEdge)
	}
	if err := cfg.Shard.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", cfg.Addr, err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake deadline: %w", err)
	}
	if err := writeFrame(conn, MsgJoin, encodeUint32(uint32(cfg.Shard.Len()))); err != nil {
		conn.Close()
		return nil, fmt.Errorf("join: %w", err)
	}
	payload, err := expectFrame(conn, MsgWelcome)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("welcome: %w", err)
	}
	id, err := decodeUint32(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("welcome body: %w", err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("clear deadline: %w", err)
	}
	return &EdgeServer{cfg: cfg, conn: conn, id: int(id)}, nil
}

// ID returns the coordinator-assigned client id.
func (e *EdgeServer) ID() int { return e.id }

// RoundsServed returns how many training requests this server has completed.
func (e *EdgeServer) RoundsServed() int { return e.roundsServed }

// Close tears down the connection.
func (e *EdgeServer) Close() error { return e.conn.Close() }

// Serve processes training requests until the coordinator shuts down, the
// connection drops, or ctx is cancelled. A clean shutdown (MsgShutdown or
// connection close after at least one round) returns nil.
func (e *EdgeServer) Serve(ctx context.Context) error {
	// Watch ctx in the background: cancelling unblocks the read below.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Force the blocked read to return.
			e.conn.SetReadDeadline(time.Now())
		case <-done:
		}
	}()

	for {
		t, payload, err := readFrame(e.conn)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("serve: %w", ctx.Err())
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				// Coordinator went away; treat as shutdown.
				return nil
			}
			return fmt.Errorf("serve: %w", err)
		}
		switch t {
		case MsgShutdown:
			return nil
		case MsgTrainRequest:
			if err := e.handleTrain(payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected %v: %w", t, ErrProtocol)
		}
	}
}

// handleTrain runs the requested local epochs and replies with the updated
// model.
func (e *EdgeServer) handleTrain(payload []byte) error {
	req, err := decodeTrainRequest(payload)
	if err != nil {
		return err
	}
	local := req.Model // the decoded copy is ours to mutate
	sgd, err := ml.NewSGD(ml.SGDConfig{
		LearningRate: req.LearningRate,
		BatchSize:    e.cfg.BatchSize,
		Seed:         e.cfg.Seed ^ uint64(req.Round)<<16,
	})
	if err != nil {
		return fmt.Errorf("round %d sgd: %w", req.Round, err)
	}
	losses, err := sgd.Train(local, e.cfg.Shard, req.Epochs)
	if err != nil {
		return fmt.Errorf("round %d train: %w", req.Round, err)
	}
	rep := TrainReply{
		Round:   req.Round,
		Loss:    losses[len(losses)-1],
		Samples: e.cfg.Shard.Len(),
		Bits:    req.ReplyBits,
		Model:   local,
	}
	repPayload, err := encodeTrainReply(rep)
	if err != nil {
		return err
	}
	if err := writeFrame(e.conn, MsgTrainReply, repPayload); err != nil {
		return fmt.Errorf("round %d reply: %w", req.Round, err)
	}
	e.roundsServed++
	return nil
}

// RunEdgeServer dials, serves until shutdown, and closes — the whole life of
// one edge-server process, as cmd/fededge uses it.
func RunEdgeServer(ctx context.Context, cfg EdgeConfig) error {
	srv, err := Dial(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	return srv.Serve(ctx)
}
