package flnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// ErrEdge is returned (wrapped) for edge-server-side failures.
var ErrEdge = errors.New("flnet: edge server error")

// ErrConnLost is returned (wrapped) by Serve when the coordinator link
// fails mid-stream — EOF, an I/O error, or an unsynchronized/corrupt frame
// — i.e. for every condition a reconnect could repair. A clean MsgShutdown
// returns nil instead.
var ErrConnLost = errors.New("flnet: connection lost")

// ErrRetriesExhausted is returned (wrapped) by RunEdgeServer once the retry
// policy's attempt budget is spent without a usable connection.
var ErrRetriesExhausted = errors.New("flnet: retries exhausted")

// EdgeConfig configures one networked edge server.
type EdgeConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Shard is this server's local dataset.
	Shard *dataset.Dataset
	// BatchSize is the local mini-batch size; 0 selects full batch.
	BatchSize int
	// DialTimeout bounds each connection attempt. Zero selects 10 s.
	DialTimeout time.Duration
	// Seed drives local mini-batch shuffling and retry jitter.
	Seed uint64
	// Protocol pins the wire protocol version this edge advertises
	// (ProtoV1 or ProtoV2). Zero advertises the newest version; the
	// coordinator's Welcome carries the negotiated one. Pin ProtoV1 when
	// talking to a pre-v2 coordinator, which rejects versioned handshakes.
	Protocol byte
	// Counters, when non-nil, accumulates frame-level TX/RX byte counts
	// across every connection this config opens (handshakes included) —
	// the measured transfer volume the radio energy model prices.
	Counters *WireCounters
	// Retry enables automatic redial plus re-registration after a
	// connection failure. The zero value keeps the legacy fail-fast
	// behaviour: one attempt, and an abrupt coordinator disappearance is
	// treated as shutdown.
	Retry RetryPolicy
	// Dial overrides the transport dialer — fault injection and tests hook
	// in here. Nil selects net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	// sleep overrides the backoff pause between reconnect attempts so tests
	// can record the schedule without waiting it out. Nil selects sleepCtx.
	sleep func(ctx context.Context, d time.Duration) error
}

func (cfg EdgeConfig) dialer() func(string, time.Duration) (net.Conn, error) {
	if cfg.Dial != nil {
		return cfg.Dial
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	}
}

// EdgeServer is a connected, registered edge server.
type EdgeServer struct {
	cfg   EdgeConfig
	conn  net.Conn
	id    int
	proto byte
	// roundsServed counts completed local-training requests.
	roundsServed int

	// Per-connection scratch for the zero-copy round path. readBuf is the
	// frame read scratch; base is the reconstructed global model the v2
	// residual downlink accumulates into (v1 overwrites it whole every
	// round); work is the model actually trained (a copy of base, so base
	// stays the pristine broadcast residuals apply to); resid is the
	// dequantized-residual scratch; sgd persists its shuffle scratch.
	readBuf   []byte
	base      *ml.Model
	haveBase  bool
	baseRound int
	work      *ml.Model
	resid     *ml.Model
	sgd       *ml.SGD
}

// Dial connects to the coordinator and performs the Join/Welcome handshake.
func Dial(cfg EdgeConfig) (*EdgeServer, error) {
	return dialAs(cfg, -1)
}

// dialAs performs one connection attempt. rejoinID < 0 registers fresh
// (MsgJoin); otherwise the edge re-registers its previous id (MsgRejoin)
// and the coordinator must echo it back.
func dialAs(cfg EdgeConfig, rejoinID int) (*EdgeServer, error) {
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("empty shard: %w", ErrEdge)
	}
	if err := cfg.Shard.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	advertised := cfg.Protocol
	switch advertised {
	case 0:
		advertised = ProtoV2
	case ProtoV1, ProtoV2:
	default:
		return nil, fmt.Errorf("protocol version %d: %w", advertised, ErrEdge)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := cfg.dialer()(cfg.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", cfg.Addr, err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake deadline: %w", err)
	}
	var regBody []byte
	var regType MsgType
	if rejoinID < 0 {
		regType = MsgJoin
		regBody = encodeJoin(uint32(cfg.Shard.Len()), advertised)
	} else {
		regType = MsgRejoin
		regBody = encodeRejoinProto(uint32(rejoinID), uint32(cfg.Shard.Len()), advertised)
	}
	if err := writeFrame(conn, regType, regBody); err != nil {
		conn.Close()
		return nil, fmt.Errorf("register: %w", err)
	}
	cfg.Counters.AddTx(frameHeaderLen + len(regBody))
	payload, err := expectFrame(conn, MsgWelcome)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("welcome: %w", err)
	}
	cfg.Counters.AddRx(frameHeaderLen + len(payload))
	id, proto, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("welcome body: %w", err)
	}
	if proto > advertised {
		conn.Close()
		return nil, fmt.Errorf("advertised v%d, coordinator negotiated v%d: %w",
			advertised, proto, ErrProtocol)
	}
	if rejoinID >= 0 && int(id) != rejoinID {
		conn.Close()
		return nil, fmt.Errorf("rejoin as %d welcomed as %d: %w", rejoinID, id, ErrProtocol)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("clear deadline: %w", err)
	}
	return &EdgeServer{cfg: cfg, conn: conn, id: int(id), proto: proto}, nil
}

// ID returns the coordinator-assigned client id.
func (e *EdgeServer) ID() int { return e.id }

// Protocol returns the negotiated wire protocol version.
func (e *EdgeServer) Protocol() byte { return e.proto }

// RoundsServed returns how many training requests this server has completed.
func (e *EdgeServer) RoundsServed() int { return e.roundsServed }

// Close tears down the connection.
func (e *EdgeServer) Close() error { return e.conn.Close() }

// Serve processes training requests until the coordinator shuts down, the
// connection drops, or ctx is cancelled. A clean shutdown (MsgShutdown)
// returns nil; connection failures of any kind — including corrupt or
// out-of-sync frames — return an error wrapping ErrConnLost so callers can
// reconnect; cancellation returns the context's error.
func (e *EdgeServer) Serve(ctx context.Context) error {
	// Watch ctx in the background: cancelling unblocks the read below.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Force the blocked read to return.
			e.conn.SetReadDeadline(time.Now())
		case <-done:
		}
	}()

	for {
		t, payload, err := readFrameInto(e.conn, &e.readBuf)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("serve: %w", ctx.Err())
			}
			return fmt.Errorf("serve read: %v: %w", err, ErrConnLost)
		}
		e.cfg.Counters.AddRx(frameHeaderLen + len(payload))
		switch t {
		case MsgShutdown:
			return nil
		case MsgTrainRequest:
			if err := e.handleTrain(payload); err != nil {
				if ctx.Err() != nil {
					return fmt.Errorf("serve: %w", ctx.Err())
				}
				return err
			}
		default:
			// An unexpected type means the stream is out of sync (e.g. a
			// corrupt length prefix): reconnecting is the only repair.
			return fmt.Errorf("unexpected %v frame: %w", t, ErrConnLost)
		}
	}
}

// decodeRequest parses a train request at the connection's negotiated
// version and reconstructs the broadcast global model into e.base: v1 and
// v2 full-model requests overwrite it, v2 residual requests apply the
// quantized delta against the broadcast this connection last acknowledged.
// Wire and state mismatches wrap ErrConnLost: a reconnect resets both ends
// to a full-model send, which is the repair.
func (e *EdgeServer) decodeRequest(payload []byte) (TrainRequest, error) {
	var req TrainRequest
	var body []byte
	var err error
	if e.proto >= ProtoV2 {
		req, body, err = decodeTrainRequestV2(payload)
	} else {
		req, body, err = decodeTrainRequestHeader(payload)
	}
	if err != nil {
		return TrainRequest{}, fmt.Errorf("train request: %v: %w", err, ErrConnLost)
	}
	if e.base == nil {
		e.base = &ml.Model{}
	}
	if req.DownBits == 0 {
		if err := e.base.UnmarshalBinaryReuse(body); err != nil {
			return TrainRequest{}, fmt.Errorf("round %d request model: %v: %w", req.Round, err, ErrConnLost)
		}
	} else {
		if !e.haveBase {
			return TrainRequest{}, fmt.Errorf("round %d residual without a base model: %w",
				req.Round, ErrConnLost)
		}
		if req.BaseRound != e.baseRound {
			return TrainRequest{}, fmt.Errorf("round %d residual against round %d, have round %d: %w",
				req.Round, req.BaseRound, e.baseRound, ErrConnLost)
		}
		if e.resid == nil {
			e.resid = &ml.Model{}
		}
		if err := e.resid.DequantizeInto(body); err != nil {
			return TrainRequest{}, fmt.Errorf("round %d residual: %v: %w", req.Round, err, ErrConnLost)
		}
		if err := e.base.AddScaled(1, e.resid); err != nil {
			return TrainRequest{}, fmt.Errorf("round %d apply residual: %v: %w", req.Round, err, ErrConnLost)
		}
	}
	e.haveBase = true
	e.baseRound = req.Round
	return req, nil
}

// handleTrain runs the requested local epochs and replies with the updated
// model. Wire-level failures wrap ErrConnLost; local training failures are
// returned as-is (retrying would rerun the same broken computation).
func (e *EdgeServer) handleTrain(payload []byte) error {
	req, err := e.decodeRequest(payload)
	if err != nil {
		return err
	}
	// Train a copy so base stays the pristine broadcast future residuals
	// apply to.
	if e.work == nil || e.work.Classes() != e.base.Classes() || e.work.Features() != e.base.Features() {
		e.work = e.base.Clone()
	} else if err := e.work.CopyFrom(e.base); err != nil {
		return fmt.Errorf("round %d work copy: %w", req.Round, err)
	}
	sgdCfg := ml.SGDConfig{
		LearningRate: req.LearningRate,
		BatchSize:    e.cfg.BatchSize,
		Seed:         e.cfg.Seed ^ uint64(req.Round)<<16,
	}
	if e.sgd == nil {
		e.sgd, err = ml.NewSGD(sgdCfg)
	} else {
		err = e.sgd.Reset(sgdCfg)
	}
	if err != nil {
		return fmt.Errorf("round %d sgd: %w", req.Round, err)
	}
	loss, err := e.sgd.TrainFinal(e.work, e.cfg.Shard, req.Epochs)
	if err != nil {
		return fmt.Errorf("round %d train: %w", req.Round, err)
	}
	rep := TrainReply{
		Round:   req.Round,
		Loss:    loss,
		Samples: e.cfg.Shard.Len(),
		Bits:    req.ReplyBits,
		Model:   e.work,
	}
	bp := newFrame()
	defer freeFrame(bp)
	out, err := appendTrainReply(*bp, rep)
	if err != nil {
		return err
	}
	*bp = out
	n, err := writeFrameBuf(e.conn, MsgTrainReply, bp)
	if err != nil {
		return fmt.Errorf("round %d reply: %v: %w", req.Round, err, ErrConnLost)
	}
	e.cfg.Counters.AddTx(n)
	e.roundsServed++
	return nil
}

// RunEdgeServer dials, serves, and — when cfg.Retry is enabled — redials
// with capped exponential backoff and re-registers under its original id
// after every lost connection: the whole life of one edge-server process,
// as cmd/fededge uses it. With retries disabled it preserves the legacy
// single-attempt behaviour, where an abrupt coordinator disappearance after
// registration counts as a shutdown.
func RunEdgeServer(ctx context.Context, cfg EdgeConfig) error {
	// The jitter stream is deliberately independent of the training seeds
	// derived from cfg.Seed elsewhere.
	jitter := mat.NewRNG(cfg.Seed ^ 0x7c159e3779b97f4a)
	sleep := cfg.sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	id := -1
	failures := 0
	for {
		srv, err := dialAs(cfg, id)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("connect: %w", ctx.Err())
			}
			failures++
			if failures > cfg.Retry.MaxAttempts {
				if !cfg.Retry.Enabled() {
					return err
				}
				return fmt.Errorf("connect failed %d times, last: %v: %w",
					failures, err, ErrRetriesExhausted)
			}
			if err := sleep(ctx, cfg.Retry.Backoff(failures, jitter)); err != nil {
				return err
			}
			continue
		}
		failures = 0
		id = srv.ID()
		err = srv.Serve(ctx)
		srv.Close()
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			return err
		case !errors.Is(err, ErrConnLost):
			return err
		case !cfg.Retry.Enabled():
			// Legacy semantics: the coordinator went away without a
			// farewell — treat as shutdown.
			return nil
		}
		// Connection lost with retries enabled: loop re-registers as id.
	}
}
