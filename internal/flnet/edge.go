package flnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// ErrEdge is returned (wrapped) for edge-server-side failures.
var ErrEdge = errors.New("flnet: edge server error")

// ErrConnLost is returned (wrapped) by Serve when the coordinator link
// fails mid-stream — EOF, an I/O error, or an unsynchronized/corrupt frame
// — i.e. for every condition a reconnect could repair. A clean MsgShutdown
// returns nil instead.
var ErrConnLost = errors.New("flnet: connection lost")

// ErrRetriesExhausted is returned (wrapped) by RunEdgeServer once the retry
// policy's attempt budget is spent without a usable connection.
var ErrRetriesExhausted = errors.New("flnet: retries exhausted")

// EdgeConfig configures one networked edge server.
type EdgeConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Shard is this server's local dataset.
	Shard *dataset.Dataset
	// BatchSize is the local mini-batch size; 0 selects full batch.
	BatchSize int
	// DialTimeout bounds each connection attempt. Zero selects 10 s.
	DialTimeout time.Duration
	// Seed drives local mini-batch shuffling and retry jitter.
	Seed uint64
	// Retry enables automatic redial plus re-registration after a
	// connection failure. The zero value keeps the legacy fail-fast
	// behaviour: one attempt, and an abrupt coordinator disappearance is
	// treated as shutdown.
	Retry RetryPolicy
	// Dial overrides the transport dialer — fault injection and tests hook
	// in here. Nil selects net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

func (cfg EdgeConfig) dialer() func(string, time.Duration) (net.Conn, error) {
	if cfg.Dial != nil {
		return cfg.Dial
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	}
}

// EdgeServer is a connected, registered edge server.
type EdgeServer struct {
	cfg  EdgeConfig
	conn net.Conn
	id   int
	// roundsServed counts completed local-training requests.
	roundsServed int
}

// Dial connects to the coordinator and performs the Join/Welcome handshake.
func Dial(cfg EdgeConfig) (*EdgeServer, error) {
	return dialAs(cfg, -1)
}

// dialAs performs one connection attempt. rejoinID < 0 registers fresh
// (MsgJoin); otherwise the edge re-registers its previous id (MsgRejoin)
// and the coordinator must echo it back.
func dialAs(cfg EdgeConfig, rejoinID int) (*EdgeServer, error) {
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("empty shard: %w", ErrEdge)
	}
	if err := cfg.Shard.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := cfg.dialer()(cfg.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", cfg.Addr, err)
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake deadline: %w", err)
	}
	if rejoinID < 0 {
		err = writeFrame(conn, MsgJoin, encodeUint32(uint32(cfg.Shard.Len())))
	} else {
		err = writeFrame(conn, MsgRejoin, encodeRejoin(uint32(rejoinID), uint32(cfg.Shard.Len())))
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("register: %w", err)
	}
	payload, err := expectFrame(conn, MsgWelcome)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("welcome: %w", err)
	}
	id, err := decodeUint32(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("welcome body: %w", err)
	}
	if rejoinID >= 0 && int(id) != rejoinID {
		conn.Close()
		return nil, fmt.Errorf("rejoin as %d welcomed as %d: %w", rejoinID, id, ErrProtocol)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("clear deadline: %w", err)
	}
	return &EdgeServer{cfg: cfg, conn: conn, id: int(id)}, nil
}

// ID returns the coordinator-assigned client id.
func (e *EdgeServer) ID() int { return e.id }

// RoundsServed returns how many training requests this server has completed.
func (e *EdgeServer) RoundsServed() int { return e.roundsServed }

// Close tears down the connection.
func (e *EdgeServer) Close() error { return e.conn.Close() }

// Serve processes training requests until the coordinator shuts down, the
// connection drops, or ctx is cancelled. A clean shutdown (MsgShutdown)
// returns nil; connection failures of any kind — including corrupt or
// out-of-sync frames — return an error wrapping ErrConnLost so callers can
// reconnect; cancellation returns the context's error.
func (e *EdgeServer) Serve(ctx context.Context) error {
	// Watch ctx in the background: cancelling unblocks the read below.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Force the blocked read to return.
			e.conn.SetReadDeadline(time.Now())
		case <-done:
		}
	}()

	for {
		t, payload, err := readFrame(e.conn)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("serve: %w", ctx.Err())
			}
			return fmt.Errorf("serve read: %v: %w", err, ErrConnLost)
		}
		switch t {
		case MsgShutdown:
			return nil
		case MsgTrainRequest:
			if err := e.handleTrain(payload); err != nil {
				if ctx.Err() != nil {
					return fmt.Errorf("serve: %w", ctx.Err())
				}
				return err
			}
		default:
			// An unexpected type means the stream is out of sync (e.g. a
			// corrupt length prefix): reconnecting is the only repair.
			return fmt.Errorf("unexpected %v frame: %w", t, ErrConnLost)
		}
	}
}

// handleTrain runs the requested local epochs and replies with the updated
// model. Wire-level failures wrap ErrConnLost; local training failures are
// returned as-is (retrying would rerun the same broken computation).
func (e *EdgeServer) handleTrain(payload []byte) error {
	req, err := decodeTrainRequest(payload)
	if err != nil {
		return fmt.Errorf("train request: %v: %w", err, ErrConnLost)
	}
	local := req.Model // the decoded copy is ours to mutate
	sgd, err := ml.NewSGD(ml.SGDConfig{
		LearningRate: req.LearningRate,
		BatchSize:    e.cfg.BatchSize,
		Seed:         e.cfg.Seed ^ uint64(req.Round)<<16,
	})
	if err != nil {
		return fmt.Errorf("round %d sgd: %w", req.Round, err)
	}
	losses, err := sgd.Train(local, e.cfg.Shard, req.Epochs)
	if err != nil {
		return fmt.Errorf("round %d train: %w", req.Round, err)
	}
	rep := TrainReply{
		Round:   req.Round,
		Loss:    losses[len(losses)-1],
		Samples: e.cfg.Shard.Len(),
		Bits:    req.ReplyBits,
		Model:   local,
	}
	repPayload, err := encodeTrainReply(rep)
	if err != nil {
		return err
	}
	if err := writeFrame(e.conn, MsgTrainReply, repPayload); err != nil {
		return fmt.Errorf("round %d reply: %v: %w", req.Round, err, ErrConnLost)
	}
	e.roundsServed++
	return nil
}

// RunEdgeServer dials, serves, and — when cfg.Retry is enabled — redials
// with capped exponential backoff and re-registers under its original id
// after every lost connection: the whole life of one edge-server process,
// as cmd/fededge uses it. With retries disabled it preserves the legacy
// single-attempt behaviour, where an abrupt coordinator disappearance after
// registration counts as a shutdown.
func RunEdgeServer(ctx context.Context, cfg EdgeConfig) error {
	// The jitter stream is deliberately independent of the training seeds
	// derived from cfg.Seed elsewhere.
	jitter := mat.NewRNG(cfg.Seed ^ 0x7c159e3779b97f4a)
	id := -1
	failures := 0
	for {
		srv, err := dialAs(cfg, id)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("connect: %w", ctx.Err())
			}
			failures++
			if failures > cfg.Retry.MaxAttempts {
				if !cfg.Retry.Enabled() {
					return err
				}
				return fmt.Errorf("connect failed %d times, last: %v: %w",
					failures, err, ErrRetriesExhausted)
			}
			if err := sleepCtx(ctx, cfg.Retry.Backoff(failures, jitter)); err != nil {
				return err
			}
			continue
		}
		failures = 0
		id = srv.ID()
		err = srv.Serve(ctx)
		srv.Close()
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			return err
		case !errors.Is(err, ErrConnLost):
			return err
		case !cfg.Retry.Enabled():
			// Legacy semantics: the coordinator went away without a
			// farewell — treat as shutdown.
			return nil
		}
		// Connection lost with retries enabled: loop re-registers as id.
	}
}
