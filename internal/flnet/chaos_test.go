package flnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/faultnet"
	"eefei/internal/fl"
	"eefei/internal/ml"
)

// chaosRetry is tuned for loopback tests: generous attempt budget, tiny
// delays, so a dropped edge rejoins within a few milliseconds.
func chaosRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 30,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

// edgeExitOK accepts the two legitimate chaos-run exits: a clean MsgShutdown
// (nil), or retries exhausted because the edge was mid-reconnect when the
// coordinator shut its listener.
func edgeExitOK(err error) bool {
	return err == nil || errors.Is(err, ErrRetriesExhausted)
}

// runChaosTraining trains a 5-edge cluster to `rounds` completed rounds with
// every edge connection routed through a seeded faultnet injector that
// severs connections at exponentially distributed byte positions. Edges are
// registered sequentially so the id↔shard mapping is identical across runs,
// and the coordinator's RejoinGrace lets every mid-round casualty repair
// itself via rejoin + re-sent request, so round outcomes do not depend on
// how reconnect latency races round boundaries. Failed rounds (quorum
// missed) are tolerated and retried; only committed rounds enter the
// history. A non-nil mutate hook adjusts the coordinator config (e.g. the
// residual-quantized downlink) before the cluster starts. Returns the
// history plus the per-edge injector fault counters.
func runChaosTraining(t *testing.T, seed uint64, rounds int, dropMeanBytes float64, mutate func(*CoordinatorConfig)) ([]fl.RoundRecord, []faultnet.Stats) {
	t.Helper()
	const servers, k = 5, 3

	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 500
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ccfg := CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: k,
			LocalEpochs:     5,
			LearningRate:    0.5,
			Decay:           0.99,
			Seed:            1,
		},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 30 * time.Second,
		JoinTimeout:  10 * time.Second,
		MinReplies:   2,
		RejoinGrace:  5 * time.Second,
	}
	if mutate != nil {
		mutate(&ccfg)
	}
	coord, err := NewCoordinator(ccfg, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Kick the background registration loop before the first edge dials.
	if err := coord.AwaitRoster(ctx, 0, time.Second); err != nil {
		t.Fatalf("start accept loop: %v", err)
	}

	// Sequential registration pins client id i to shard i in every run:
	// determinism of the round histories depends on it.
	errs := make([]error, servers)
	injectors := make([]*faultnet.Injector, servers)
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		inj := faultnet.New(faultnet.Config{
			Seed:          seed + uint64(i)*1000003,
			DropMeanBytes: dropMeanBytes,
		})
		injectors[i] = inj
		wg.Add(1)
		go func(i int, dial func(string, time.Duration) (net.Conn, error)) {
			defer wg.Done()
			errs[i] = RunEdgeServer(context.Background(), EdgeConfig{
				Addr:  coord.Addr().String(),
				Shard: shards[i],
				Seed:  uint64(i + 1),
				Retry: chaosRetry(),
				Dial:  dial,
			})
		}(i, inj.TCPDialer())
		if err := coord.AwaitRoster(ctx, i+1, 10*time.Second); err != nil {
			t.Fatalf("edge %d never registered: %v", i, err)
		}
	}

	failures := 0
	for len(coord.History()) < rounds {
		// Give dropped edges a window to rejoin; a timeout is not fatal —
		// the round just runs on the survivors.
		coord.AwaitRoster(ctx, servers, 5*time.Second)
		if _, err := coord.Round(ctx); err != nil {
			// Quorum missed: every selected client died this round. The
			// byte-position fault model makes this deterministic too, so
			// retrying keeps runs comparable.
			failures++
			if failures > rounds*3 {
				t.Fatalf("too many failed rounds (%d), last: %v", failures, err)
			}
		}
	}
	coord.Shutdown()
	wg.Wait()
	for i, err := range errs {
		if !edgeExitOK(err) {
			t.Errorf("edge %d exited with %v", i, err)
		}
	}
	stats := make([]faultnet.Stats, servers)
	for i, inj := range injectors {
		stats[i] = inj.Stats()
	}
	return coord.History(), stats
}

// TestChaosTrainingConvergesUnderFaults is the headline resilience test:
// with more than 10% of per-round client exchanges severed mid-stream,
// training must still reach the accuracy the fault-free cluster reaches,
// because every casualty rejoins (and the round repairs itself within the
// grace window or falls back to the quorum of survivors).
func TestChaosTrainingConvergesUnderFaults(t *testing.T) {
	history, stats := runChaosTraining(t, 42, 12, 30_000, nil)
	last := history[len(history)-1]
	if last.TestAccuracy < 0.5 {
		t.Errorf("accuracy under faults = %v after %d rounds, want >= 0.5",
			last.TestAccuracy, len(history))
	}

	participations, rejoins, retries := 0, 0, 0
	for _, rec := range history {
		participations += len(rec.Selected) + len(rec.Dropped)
		rejoins += rec.Rejoins
		retries += rec.Retries
	}
	// The injected fault rate is counted at the injectors (byte-position
	// keyed, so deterministic): severed connections per client-round
	// participation.
	drops := 0
	for _, s := range stats {
		drops += s.Dropped
	}
	rate := float64(drops) / float64(participations)
	t.Logf("injected drops: %d/%d participations = %.2f, rejoins: %d, in-round retries: %d",
		drops, participations, rate, rejoins, retries)
	if rate < 0.10 {
		t.Errorf("injected drop rate = %.2f, want >= 0.10 (tune DropMeanBytes)", rate)
	}
	if rejoins == 0 {
		t.Error("no rejoins recorded despite injected drops")
	}
	if retries == 0 {
		t.Error("no in-round repairs recorded despite injected drops")
	}
}

// TestChaosDeterministicHistories re-runs the identical chaos configuration
// and demands bit-identical round histories: same selections, same
// casualties, same losses and accuracies. Rejoins and Retries are excluded
// — both are wall-clock telemetry (a reconnect racing a round boundary may
// be counted in either neighbouring round, or repair a round on its first
// rather than second attempt) and are documented as such.
func TestChaosDeterministicHistories(t *testing.T) {
	a, statsA := runChaosTraining(t, 42, 8, 30_000, nil)
	b, statsB := runChaosTraining(t, 42, 8, 30_000, nil)
	for i := range statsA {
		if statsA[i].Dropped != statsB[i].Dropped || statsA[i].Conns != statsB[i].Conns {
			t.Errorf("edge %d: injector saw %+v vs %+v", i, statsA[i], statsB[i])
		}
	}
	assertIdenticalHistories(t, a, b)
}

// assertIdenticalHistories demands bit-identical training outcomes per
// round; Rejoins/Retries stay excluded as wall-clock telemetry.
func assertIdenticalHistories(t *testing.T, a, b []fl.RoundRecord) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.Round != rb.Round {
			t.Errorf("record %d: round %d vs %d", i, ra.Round, rb.Round)
		}
		if !equalInts(ra.Selected, rb.Selected) {
			t.Errorf("round %d: selected %v vs %v", ra.Round, ra.Selected, rb.Selected)
		}
		if !equalInts(ra.Dropped, rb.Dropped) {
			t.Errorf("round %d: dropped %v vs %v", ra.Round, ra.Dropped, rb.Dropped)
		}
		if ra.LearningRate != rb.LearningRate {
			t.Errorf("round %d: lr %v vs %v", ra.Round, ra.LearningRate, rb.LearningRate)
		}
		if ra.TrainLoss != rb.TrainLoss {
			t.Errorf("round %d: train loss %v vs %v", ra.Round, ra.TrainLoss, rb.TrainLoss)
		}
		if ra.TestAccuracy != rb.TestAccuracy {
			t.Errorf("round %d: accuracy %v vs %v", ra.Round, ra.TestAccuracy, rb.TestAccuracy)
		}
		if !equalFloats(ra.LocalLosses, rb.LocalLosses) {
			t.Errorf("round %d: local losses %v vs %v", ra.Round, ra.LocalLosses, rb.LocalLosses)
		}
	}
}

// quant8Downlink switches the coordinator to the v2 error-feedback
// residual-quantized downlink at 8 bits.
func quant8Downlink(cfg *CoordinatorConfig) { cfg.DownloadQuantBits = ml.Quant8 }

// TestChaosQuantizedDownlinkConvergesUnderFaults covers the gap the
// lossless chaos tests left open: the v2 residual-quantized downlink under
// ≥10% injected connection drops with rejoins. A rejoin resets the residual
// chain to a full send, so this exercises exactly the downlink-state commit
// and base-round tracking that faults can desynchronize.
func TestChaosQuantizedDownlinkConvergesUnderFaults(t *testing.T) {
	history, stats := runChaosTraining(t, 42, 12, 30_000, quant8Downlink)
	last := history[len(history)-1]
	if last.TestAccuracy < 0.5 {
		t.Errorf("accuracy with Quant8 downlink under faults = %v after %d rounds, want >= 0.5",
			last.TestAccuracy, len(history))
	}
	participations, rejoins := 0, 0
	for _, rec := range history {
		participations += len(rec.Selected) + len(rec.Dropped)
		rejoins += rec.Rejoins
	}
	drops := 0
	for _, s := range stats {
		drops += s.Dropped
	}
	rate := float64(drops) / float64(participations)
	t.Logf("quant8 chaos: injected drops %d/%d participations = %.2f, rejoins %d",
		drops, participations, rate, rejoins)
	if rate < 0.10 {
		t.Errorf("injected drop rate = %.2f, want >= 0.10 (tune DropMeanBytes)", rate)
	}
	if rejoins == 0 {
		t.Error("no rejoins recorded despite injected drops")
	}
}

// TestChaosQuantizedDownlinkDeterministicHistories pins same-seed
// bit-identical histories for the residual-quantized downlink under chaos:
// quantization error feedback accumulates state per connection, and a
// divergent reset after any rejoin would show up here.
func TestChaosQuantizedDownlinkDeterministicHistories(t *testing.T) {
	a, statsA := runChaosTraining(t, 42, 8, 30_000, quant8Downlink)
	b, statsB := runChaosTraining(t, 42, 8, 30_000, quant8Downlink)
	for i := range statsA {
		if statsA[i].Dropped != statsB[i].Dropped || statsA[i].Conns != statsB[i].Conns {
			t.Errorf("edge %d: injector saw %+v vs %+v", i, statsA[i], statsB[i])
		}
	}
	assertIdenticalHistories(t, a, b)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRejoinRestoresClientAfterMidRoundDrop pins the rejoin mechanics with a
// planned fault: edge 1's first connection severs at byte 2000 — mid-way
// through reading round 0's train request — so round 0 commits on edge 0
// alone and lists edge 1 as dropped; after the automatic rejoin, round 1
// selects both edges again under the same client id.
func TestRejoinRestoresClientAfterMidRoundDrop(t *testing.T) {
	const servers, k = 2, 2

	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 200
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		FL: fl.Config{
			ClientsPerRound: k,
			LocalEpochs:     2,
			LearningRate:    0.5,
			Seed:            1,
		},
		Classes:      train.Classes,
		Features:     train.Dim(),
		RoundTimeout: 30 * time.Second,
		JoinTimeout:  10 * time.Second,
		MinReplies:   1,
	}, ln, test)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.AwaitRoster(ctx, 0, time.Second); err != nil {
		t.Fatalf("start accept loop: %v", err)
	}

	errs := make([]error, servers)
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		cfg := EdgeConfig{
			Addr:  coord.Addr().String(),
			Shard: shards[i],
			Seed:  uint64(i + 1),
			Retry: chaosRetry(),
		}
		if i == 1 {
			inj := faultnet.New(faultnet.Config{
				Seed: 7,
				Plan: map[int]faultnet.ConnPlan{0: {DropAfterBytes: 2000}},
			})
			cfg.Dial = inj.TCPDialer()
		}
		wg.Add(1)
		go func(cfg EdgeConfig, i int) {
			defer wg.Done()
			errs[i] = RunEdgeServer(context.Background(), cfg)
		}(cfg, i)
		if err := coord.AwaitRoster(ctx, i+1, 10*time.Second); err != nil {
			t.Fatalf("edge %d never registered: %v", i, err)
		}
	}

	rec0, err := coord.Round(ctx)
	if err != nil {
		t.Fatalf("round 0: %v", err)
	}
	if !equalInts(rec0.Selected, []int{0}) || !equalInts(rec0.Dropped, []int{1}) {
		t.Fatalf("round 0 selected %v dropped %v, want [0] and [1]",
			rec0.Selected, rec0.Dropped)
	}

	if err := coord.AwaitRoster(ctx, servers, 10*time.Second); err != nil {
		t.Fatalf("edge 1 never rejoined: %v", err)
	}
	rec1, err := coord.Round(ctx)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if len(rec1.Selected) != 2 || len(rec1.Dropped) != 0 {
		t.Fatalf("round 1 selected %v dropped %v, want both edges back",
			rec1.Selected, rec1.Dropped)
	}
	if rec0.Rejoins+rec1.Rejoins < 1 {
		t.Error("no rejoin recorded across the two rounds")
	}

	coord.Shutdown()
	wg.Wait()
	for i, err := range errs {
		if !edgeExitOK(err) {
			t.Errorf("edge %d exited with %v", i, err)
		}
	}
}
