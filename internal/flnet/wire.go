package flnet

import "sync/atomic"

// WireCounters accumulates frame-level byte counts — every frame written to
// (TX) or read from (RX) the wire, 5-byte frame headers included. The
// counters are what the bytes→joules radio model prices, replacing the
// analytic time model's estimate of transfer volume with the measured
// truth. Safe for concurrent use; the zero value is ready. All methods
// tolerate a nil receiver so uninstrumented paths stay branch-free.
type WireCounters struct {
	tx, rx atomic.Int64
}

// AddTx records n bytes written to the wire.
func (w *WireCounters) AddTx(n int) {
	if w != nil {
		w.tx.Add(int64(n))
	}
}

// AddRx records n bytes read from the wire.
func (w *WireCounters) AddRx(n int) {
	if w != nil {
		w.rx.Add(int64(n))
	}
}

// Tx returns the total bytes written.
func (w *WireCounters) Tx() int64 {
	if w == nil {
		return 0
	}
	return w.tx.Load()
}

// Rx returns the total bytes read.
func (w *WireCounters) Rx() int64 {
	if w == nil {
		return 0
	}
	return w.rx.Load()
}

// dgramMetered is implemented by datagram transports that account
// per-attempt packet bytes (fldgram.Conn). The coordinator type-asserts
// its conns against this rather than importing the transport package: a
// stream conn simply isn't metered, and any future transport that counts
// attempts plugs in by exposing the same four lifetime counters — this
// side's attempted and acknowledged data bytes, the peer's cumulative
// attempted bytes as carried in packet headers, and the unique data bytes
// received (all wire sizes, datagram headers included).
type dgramMetered interface {
	DgramCounters() (txAttemptBytes, txDeliveredBytes, peerAttemptBytes, rxDeliveredBytes int64)
}
