package iot

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBandString(t *testing.T) {
	if Licensed.String() != "licensed" || Unlicensed.String() != "unlicensed" {
		t.Error("band names wrong")
	}
	if Band(9).String() == "" {
		t.Error("unknown band must still print")
	}
}

func TestDefaultNBIoTConfig(t *testing.T) {
	cfg := DefaultNBIoTConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// ρ = 785 bytes × 7.74 mJ/byte ≈ 6.08 J per sample.
	want := 785 * 7.74e-3
	if math.Abs(cfg.Rho()-want) > 1e-12 {
		t.Errorf("Rho = %v, want %v", cfg.Rho(), want)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*UplinkConfig)
		wantErr bool
	}{
		{"default", func(*UplinkConfig) {}, false},
		{"zero bytes", func(c *UplinkConfig) { c.SampleBytes = 0 }, true},
		{"zero energy", func(c *UplinkConfig) { c.JoulesPerByte = 0 }, true},
		{"bad band", func(c *UplinkConfig) { c.Band = Band(7) }, true},
		{"unlicensed ok", func(c *UplinkConfig) { c.Band = Unlicensed; c.SuccessProb = 0.5 }, false},
		{"unlicensed zero prob", func(c *UplinkConfig) { c.Band = Unlicensed; c.SuccessProb = 0 }, true},
		{"unlicensed prob above 1", func(c *UplinkConfig) { c.Band = Unlicensed; c.SuccessProb = 1.5 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultNBIoTConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRhoUnlicensedInflation(t *testing.T) {
	cfg := DefaultNBIoTConfig()
	cfg.Band = Unlicensed
	cfg.SuccessProb = 0.5
	licensed := DefaultNBIoTConfig().Rho()
	if got := cfg.Rho(); math.Abs(got-2*licensed) > 1e-12 {
		t.Errorf("Rho at p=0.5 = %v, want %v (doubled)", got, 2*licensed)
	}
}

func TestCollectionEnergyLinear(t *testing.T) {
	cfg := DefaultNBIoTConfig()
	// Eq. 4: e^I(n) = ρ·n, exactly linear.
	if got := cfg.CollectionEnergy(3000); math.Abs(got-3000*cfg.Rho()) > 1e-9 {
		t.Errorf("CollectionEnergy(3000) = %v", got)
	}
	if cfg.CollectionEnergy(0) != 0 || cfg.CollectionEnergy(-5) != 0 {
		t.Error("non-positive n must cost 0")
	}
}

func TestNewFleetValidation(t *testing.T) {
	cfg := DefaultNBIoTConfig()
	if _, err := NewFleet(cfg, 0, 1); !errors.Is(err, ErrUplink) {
		t.Errorf("0 devices = %v, want ErrUplink", err)
	}
	cfg.SampleBytes = 0
	if _, err := NewFleet(cfg, 5, 1); err == nil {
		t.Error("bad config must be rejected")
	}
}

func TestFleetCollectLicensedIsExact(t *testing.T) {
	fleet, err := NewFleet(DefaultNBIoTConfig(), 10, 1)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	j, err := fleet.Collect(100)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	want := fleet.Config().CollectionEnergy(100)
	if math.Abs(j-want) > 1e-9 {
		t.Errorf("licensed Collect = %v, want %v exactly", j, want)
	}
	attempts, delivered := fleet.Stats()
	if attempts != 100 || delivered != 100 {
		t.Errorf("stats = %d/%d, want 100/100", attempts, delivered)
	}
	if fleet.EmpiricalSuccessProb() != 1 {
		t.Error("licensed success prob must be 1")
	}
}

func TestFleetCollectUnlicensedMeanMatchesRho(t *testing.T) {
	cfg := DefaultNBIoTConfig()
	cfg.Band = Unlicensed
	cfg.SuccessProb = 0.6
	fleet, err := NewFleet(cfg, 10, 2)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	const n = 20000
	j, err := fleet.Collect(n)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	want := cfg.CollectionEnergy(n)
	if math.Abs(j-want)/want > 0.02 {
		t.Errorf("unlicensed mean energy = %v, want ≈%v", j, want)
	}
	if p := fleet.EmpiricalSuccessProb(); math.Abs(p-0.6) > 0.02 {
		t.Errorf("empirical success prob = %v, want ≈0.6", p)
	}
}

func TestFleetCollectNegative(t *testing.T) {
	fleet, err := NewFleet(DefaultNBIoTConfig(), 1, 1)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if _, err := fleet.Collect(-1); !errors.Is(err, ErrUplink) {
		t.Errorf("negative collect = %v, want ErrUplink", err)
	}
}

func TestFleetEmptyStats(t *testing.T) {
	fleet, err := NewFleet(DefaultNBIoTConfig(), 1, 1)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if fleet.EmpiricalSuccessProb() != 1 {
		t.Error("no attempts must report probability 1")
	}
	if fleet.Devices() != 1 {
		t.Error("Devices wrong")
	}
}

func TestSlottedALOHA(t *testing.T) {
	p0, err := SlottedALOHASuccessProb(0)
	if err != nil || p0 != 1 {
		t.Errorf("G=0: p=%v err=%v, want 1", p0, err)
	}
	p1, err := SlottedALOHASuccessProb(1)
	if err != nil || math.Abs(p1-math.Exp(-1)) > 1e-12 {
		t.Errorf("G=1: p=%v, want e^-1", p1)
	}
	if _, err := SlottedALOHASuccessProb(-1); !errors.Is(err, ErrUplink) {
		t.Errorf("negative load = %v, want ErrUplink", err)
	}
}

// Property: collection energy is monotone in n and exactly linear.
func TestCollectionEnergyLinearityProperty(t *testing.T) {
	f := func(nRaw uint16, probRaw uint8) bool {
		n := int(nRaw % 5000)
		cfg := DefaultNBIoTConfig()
		cfg.Band = Unlicensed
		cfg.SuccessProb = 0.05 + 0.95*float64(probRaw)/255
		single := cfg.CollectionEnergy(1)
		batch := cfg.CollectionEnergy(n)
		return math.Abs(batch-single*float64(n)) < 1e-6*(1+batch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
