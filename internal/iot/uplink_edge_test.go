package iot

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"eefei/internal/mat"
)

// TestUplinkSuccessProbEdges pins the boundary behaviour of the unlicensed
// delivery probability: p=1 degenerates to the licensed cost, a tiny p is
// valid and inflates ρ by exactly 1/p, and p=0 (an uplink that can never
// deliver) must be rejected rather than priced at +Inf.
func TestUplinkSuccessProbEdges(t *testing.T) {
	base := DefaultNBIoTConfig()
	perAttempt := float64(base.SampleBytes) * base.JoulesPerByte
	tests := []struct {
		name     string
		prob     float64
		wantErr  bool
		wantRho  float64
		wantNote string
	}{
		{"p exactly 1", 1, false, perAttempt, "every attempt delivers: no inflation"},
		{"tiny p", 1e-9, false, perAttempt / 1e-9, "valid but enormous inflation"},
		{"p exactly 0", 0, true, 0, "never delivers: rejected"},
		{"negative p", -0.25, true, 0, "rejected"},
		{"p above 1", 1 + 1e-12, true, 0, "rejected"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			cfg.Band = Unlicensed
			cfg.SuccessProb = tt.prob
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(p=%v) = %v, wantErr %v (%s)", tt.prob, err, tt.wantErr, tt.wantNote)
			}
			if tt.wantErr {
				if !errors.Is(err, ErrUplink) {
					t.Errorf("error %v does not wrap ErrUplink", err)
				}
				return
			}
			got := cfg.Rho()
			if math.Abs(got-tt.wantRho) > 1e-12*tt.wantRho {
				t.Errorf("Rho(p=%v) = %v, want %v (%s)", tt.prob, got, tt.wantRho, tt.wantNote)
			}
			if math.IsInf(got, 0) || math.IsNaN(got) {
				t.Errorf("Rho(p=%v) = %v, must stay finite", tt.prob, got)
			}
		})
	}
}

// TestLicensedIgnoresSuccessProb: the scheduled band has no contention, so
// SuccessProb must be inert there — any value, including garbage that would
// fail unlicensed validation, neither fails Validate nor perturbs Rho.
func TestLicensedIgnoresSuccessProb(t *testing.T) {
	want := DefaultNBIoTConfig().Rho()
	for _, p := range []float64{0, -1, 0.3, 1, 17, math.NaN()} {
		cfg := DefaultNBIoTConfig()
		cfg.SuccessProb = p
		if err := cfg.Validate(); err != nil {
			t.Errorf("licensed Validate(SuccessProb=%v) = %v, want nil", p, err)
		}
		if got := cfg.Rho(); got != want {
			t.Errorf("licensed Rho(SuccessProb=%v) = %v, want %v", p, got, want)
		}
	}
}

// Property (Eq. 4 closure at the model level): for any valid config, the
// unlicensed expected delivered-sample energy equals the licensed energy
// divided by p, to floating-point identity — the geometric retry count E=1/p
// is the only thing the band changes.
func TestUnlicensedRhoEqualsLicensedOverP(t *testing.T) {
	rng := mat.NewRNG(99)
	f := func(bytesRaw uint16, energyRaw, probRaw uint32) bool {
		cfg := UplinkConfig{
			SampleBytes:   1 + int(bytesRaw),
			JoulesPerByte: 1e-9 + 10*float64(energyRaw)/math.MaxUint32,
			// p uniform in (0, 1]; the rng draw just adds variety beyond
			// quick's generator without risking p=0.
			SuccessProb: math.Nextafter(0, 1) + (1-math.Nextafter(0, 1))*((float64(probRaw)+rng.Float64())/(math.MaxUint32+1)),
		}
		licensed := cfg
		licensed.Band = Licensed
		unlicensed := cfg
		unlicensed.Band = Unlicensed
		if err := licensed.Validate(); err != nil {
			return false
		}
		if err := unlicensed.Validate(); err != nil {
			return false
		}
		want := licensed.Rho() / cfg.SuccessProb
		got := unlicensed.Rho()
		return math.Abs(got-want) <= 1e-12*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
