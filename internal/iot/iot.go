// Package iot models the data-collection side of the FEI system: fleets of
// low-cost sensing devices uploading fixed-size samples to their edge
// server. Following the paper's Section IV-A, each upload costs a constant
// energy ρ per sample (NB-IoT: 7.74 mWs per byte), and devices on the
// unlicensed band suffer a fixed success probability per attempt due to
// collisions, which inflates the expected energy per *delivered* sample to
// ρ/p — still a constant, preserving Eq. (4): e^I_k(n_k) = ρ_k·n_k.
package iot

import (
	"errors"
	"fmt"
	"math"

	"eefei/internal/mat"
)

// NBIoTJoulesPerByte is the paper's NB-IoT figure: 7.74 mWs (= mJ) per byte.
const NBIoTJoulesPerByte = 7.74e-3

// ErrUplink is returned (wrapped) for invalid uplink configurations.
var ErrUplink = errors.New("iot: invalid uplink config")

// Band selects the radio regime of a device fleet.
type Band int

const (
	// Licensed is a scheduled band (e.g. NB-IoT): every attempt succeeds.
	Licensed Band = iota + 1
	// Unlicensed is a contention band: attempts succeed with a fixed
	// probability, so delivering a sample costs a geometric number of
	// attempts.
	Unlicensed
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case Licensed:
		return "licensed"
	case Unlicensed:
		return "unlicensed"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// UplinkConfig describes how one edge server's IoT fleet uploads samples.
type UplinkConfig struct {
	// SampleBytes is the wire size of one data sample. An MNIST-like
	// 28×28 gray-scale image with a label is 785 bytes.
	SampleBytes int
	// JoulesPerByte is the transmit energy per byte (ρ per byte).
	JoulesPerByte float64
	// Band selects the radio regime.
	Band Band
	// SuccessProb is the per-attempt delivery probability on the
	// unlicensed band; ignored for Licensed. The paper's model assumes it
	// is a fixed constant given static device positions.
	SuccessProb float64
}

// DefaultNBIoTConfig is the paper's reference uplink: NB-IoT (licensed) at
// 7.74 mJ per byte with 785-byte samples.
func DefaultNBIoTConfig() UplinkConfig {
	return UplinkConfig{
		SampleBytes:   785,
		JoulesPerByte: NBIoTJoulesPerByte,
		Band:          Licensed,
		SuccessProb:   1,
	}
}

// Validate checks the configuration.
func (c UplinkConfig) Validate() error {
	if c.SampleBytes <= 0 {
		return fmt.Errorf("sample bytes %d: %w", c.SampleBytes, ErrUplink)
	}
	if c.JoulesPerByte <= 0 {
		return fmt.Errorf("joules per byte %v: %w", c.JoulesPerByte, ErrUplink)
	}
	switch c.Band {
	case Licensed:
	case Unlicensed:
		if c.SuccessProb <= 0 || c.SuccessProb > 1 {
			return fmt.Errorf("success probability %v outside (0,1]: %w", c.SuccessProb, ErrUplink)
		}
	default:
		return fmt.Errorf("band %v: %w", c.Band, ErrUplink)
	}
	return nil
}

// Rho returns ρ_k, the expected energy to deliver one sample (paper Eq. 4):
// the per-attempt energy divided by the delivery probability.
func (c UplinkConfig) Rho() float64 {
	perAttempt := float64(c.SampleBytes) * c.JoulesPerByte
	if c.Band == Unlicensed && c.SuccessProb > 0 {
		return perAttempt / c.SuccessProb
	}
	return perAttempt
}

// CollectionEnergy returns e^I_k(n) = ρ_k·n, the expected energy for the
// fleet to deliver n samples.
func (c UplinkConfig) CollectionEnergy(samples int) float64 {
	if samples <= 0 {
		return 0
	}
	return c.Rho() * float64(samples)
}

// Fleet is a concrete collection of devices attached to one edge server; it
// simulates the stochastic attempt process so experiments can verify that
// the constant-ρ abstraction matches the simulated mean.
type Fleet struct {
	cfg     UplinkConfig
	devices int
	rng     *mat.RNG

	attempts  int64
	delivered int64
}

// NewFleet returns a fleet of the given size.
func NewFleet(cfg UplinkConfig, devices int, seed uint64) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if devices <= 0 {
		return nil, fmt.Errorf("fleet of %d devices: %w", devices, ErrUplink)
	}
	return &Fleet{cfg: cfg, devices: devices, rng: mat.NewRNG(seed)}, nil
}

// Devices returns the fleet size.
func (f *Fleet) Devices() int { return f.devices }

// Config returns the uplink configuration.
func (f *Fleet) Config() UplinkConfig { return f.cfg }

// Collect simulates delivering n samples: each sample is retried until an
// attempt succeeds (licensed band always succeeds on the first attempt).
// It returns the actual energy spent, which for the unlicensed band is a
// random variable with mean CollectionEnergy(n).
func (f *Fleet) Collect(samples int) (joules float64, err error) {
	if samples < 0 {
		return 0, fmt.Errorf("collect %d samples: %w", samples, ErrUplink)
	}
	perAttempt := float64(f.cfg.SampleBytes) * f.cfg.JoulesPerByte
	for i := 0; i < samples; i++ {
		for {
			f.attempts++
			joules += perAttempt
			if f.cfg.Band == Licensed || f.rng.Bernoulli(f.cfg.SuccessProb) {
				f.delivered++
				break
			}
		}
	}
	return joules, nil
}

// Stats reports the lifetime attempt and delivery counters, from which the
// empirical delivery probability can be computed.
func (f *Fleet) Stats() (attempts, delivered int64) {
	return f.attempts, f.delivered
}

// EmpiricalSuccessProb returns delivered/attempts, or 1 when no attempts
// have been made.
func (f *Fleet) EmpiricalSuccessProb() float64 {
	if f.attempts == 0 {
		return 1
	}
	return float64(f.delivered) / float64(f.attempts)
}

// SlottedALOHASuccessProb returns the classical slotted-ALOHA delivery
// probability e^{-G} for offered load G (expected transmissions per slot),
// the standard justification for the paper's fixed-probability assumption
// when device positions are static.
func SlottedALOHASuccessProb(offeredLoad float64) (float64, error) {
	if offeredLoad < 0 {
		return 0, fmt.Errorf("offered load %v: %w", offeredLoad, ErrUplink)
	}
	// p = e^{-G}; at G=0 the channel is empty and every attempt succeeds.
	return math.Exp(-offeredLoad), nil
}
