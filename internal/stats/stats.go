// Package stats provides the summary statistics the experiment harness uses
// when repeating stochastic runs across seeds: means, standard deviations,
// order statistics, normal-approximation confidence intervals, and a
// generic multi-seed repetition helper.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned (wrapped) for statistics over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range xs {
		sum += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ssq float64
		for _, v := range xs {
			d := v - s.Mean
			ssq += d * d
		}
		s.StdDev = math.Sqrt(ssq / float64(len(xs)-1))
	}
	var err error
	s.Median, err = Quantile(xs, 0.5)
	if err != nil {
		return Summary{}, err
	}
	return s, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by linear interpolation of
// the sorted sample.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// ConfidenceInterval95 returns the normal-approximation 95% confidence
// interval of the mean.
func ConfidenceInterval95(xs []float64) (lo, hi float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	const z95 = 1.959963984540054
	half := z95 * s.StdDev / math.Sqrt(float64(s.N))
	return s.Mean - half, s.Mean + half, nil
}

// String renders a summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.4g [%.4g, %.4g] median=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max, s.Median)
}

// Repeat runs f once per seed and summarizes the returned metric. Any run
// error aborts the repetition.
func Repeat(seeds []uint64, f func(seed uint64) (float64, error)) (Summary, error) {
	if len(seeds) == 0 {
		return Summary{}, ErrEmpty
	}
	out := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		v, err := f(seed)
		if err != nil {
			return Summary{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		out = append(out, v)
	}
	return Summarize(out)
}

// Seeds returns n deterministic, well-spread seeds starting at base.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*0x9e3779b97f4a7c15
	}
	return out
}

// WelchT computes Welch's t statistic for the difference of two sample
// means (positive when a's mean exceeds b's) — enough to flag whether an
// ablation's effect is larger than seed noise.
func WelchT(a, b []float64) (float64, error) {
	sa, err := Summarize(a)
	if err != nil {
		return 0, fmt.Errorf("first sample: %w", err)
	}
	sb, err := Summarize(b)
	if err != nil {
		return 0, fmt.Errorf("second sample: %w", err)
	}
	va := sa.StdDev * sa.StdDev / float64(sa.N)
	vb := sb.StdDev * sb.StdDev / float64(sb.N)
	if va+vb == 0 {
		if sa.Mean == sb.Mean {
			return 0, nil
		}
		return math.Inf(sign(sa.Mean - sb.Mean)), nil
	}
	return (sa.Mean - sb.Mean) / math.Sqrt(va+vb), nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
