package stats

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"eefei/internal/mat"
)

func TestSummarizeKnownSample(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev with n−1: Σ(x−5)² = 32, 32/7 ≈ 4.571, sqrt ≈ 2.138.
	if math.Abs(s.StdDev-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.StdDev != 0 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Interpolation between order statistics.
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil || math.Abs(got-3) > 1e-12 {
		t.Errorf("Quantile(0.3) = %v (%v), want 3", got, err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q>1 must error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("empty must error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile must not sort the caller's slice")
	}
}

func TestConfidenceInterval95(t *testing.T) {
	// Constant sample: degenerate CI collapses to the mean.
	lo, hi, err := ConfidenceInterval95([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatalf("CI: %v", err)
	}
	if lo != 5 || hi != 5 {
		t.Errorf("CI = [%v, %v], want [5,5]", lo, hi)
	}
	// Gaussian sample: the CI should contain the true mean.
	rng := mat.NewRNG(1)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormScaled(10, 2)
	}
	lo, hi, err = ConfidenceInterval95(xs)
	if err != nil {
		t.Fatalf("CI: %v", err)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI width %v too wide for n=400, σ=2", hi-lo)
	}
}

func TestRepeat(t *testing.T) {
	calls := 0
	s, err := Repeat(Seeds(1, 5), func(seed uint64) (float64, error) {
		calls++
		return float64(seed % 10), nil
	})
	if err != nil {
		t.Fatalf("Repeat: %v", err)
	}
	if calls != 5 || s.N != 5 {
		t.Errorf("calls=%d N=%d, want 5", calls, s.N)
	}
	// Error propagation.
	if _, err := Repeat(Seeds(1, 3), func(seed uint64) (float64, error) {
		return 0, fmt.Errorf("boom")
	}); err == nil {
		t.Error("run error must propagate")
	}
	if _, err := Repeat(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("no seeds must error")
	}
}

func TestSeedsDistinct(t *testing.T) {
	seeds := Seeds(7, 16)
	seen := make(map[uint64]bool)
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10.5}
	b := []float64{5, 5.5, 4.5, 5, 5.2}
	tStat, err := WelchT(a, b)
	if err != nil {
		t.Fatalf("WelchT: %v", err)
	}
	if tStat < 5 {
		t.Errorf("clearly separated samples: t = %v, want large positive", tStat)
	}
	back, err := WelchT(b, a)
	if err != nil {
		t.Fatalf("WelchT: %v", err)
	}
	if math.Abs(tStat+back) > 1e-9 {
		t.Error("WelchT must be antisymmetric")
	}
	// Identical constant samples → t = 0.
	z, err := WelchT([]float64{1, 1}, []float64{1, 1})
	if err != nil || z != 0 {
		t.Errorf("constant equal samples: t = %v (%v), want 0", z, err)
	}
	// Distinct constants → ±Inf.
	inf, err := WelchT([]float64{2, 2}, []float64{1, 1})
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("constant distinct samples: t = %v (%v), want +Inf", inf, err)
	}
	if _, err := WelchT(nil, a); err == nil {
		t.Error("empty sample must error")
	}
}

// Property: for any sample, Min ≤ Median ≤ Max and the mean lies within
// [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%50)
		rng := mat.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormScaled(0, 100)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
