package fl

import (
	"sort"

	"eefei/internal/mat"
)

// EnergyAwareSelector prefers the cheapest edge servers each round — the
// scheduling idea of the paper's reference [12] (energy-aware dynamic edge
// server scheduling). Cost is proportional to shard size (training energy
// is linear in n_k, Eq. 5), so the selector picks the K smallest shards,
// rotating among equal-cost servers across rounds so no server starves.
type EnergyAwareSelector struct {
	// Samples holds each server's shard size, indexed by client id.
	Samples []int
}

var _ Selector = EnergyAwareSelector{}

// Select implements Selector.
func (s EnergyAwareSelector) Select(_ *mat.RNG, n, k, round int) []int {
	type cost struct{ id, samples int }
	costs := make([]cost, n)
	for i := 0; i < n; i++ {
		samples := 0
		if i < len(s.Samples) {
			samples = s.Samples[i]
		}
		costs[i] = cost{id: i, samples: samples}
	}
	sort.Slice(costs, func(a, b int) bool {
		if costs[a].samples != costs[b].samples {
			return costs[a].samples < costs[b].samples
		}
		// Rotate ties by round so equal-cost servers share the load.
		return (costs[a].id+round)%n < (costs[b].id+round)%n
	})
	out := make([]int, k)
	for i := range out {
		out[i] = costs[i].id
	}
	return out
}

// WeightedRandomSelector samples K servers without replacement with
// probability proportional to shard size — the sampling scheme that makes
// unweighted FedAvg aggregation unbiased when shards are unequal.
type WeightedRandomSelector struct {
	// Samples holds each server's shard size, indexed by client id.
	Samples []int
}

var _ Selector = WeightedRandomSelector{}

// Select implements Selector.
func (s WeightedRandomSelector) Select(rng *mat.RNG, n, k, _ int) []int {
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		w := 1.0
		if i < len(s.Samples) && s.Samples[i] > 0 {
			w = float64(s.Samples[i])
		}
		weights[i] = w
	}
	picked := make([]int, 0, k)
	chosen := make([]bool, n)
	for len(picked) < k {
		var total float64
		for i, w := range weights {
			if !chosen[i] {
				total += w
			}
		}
		target := rng.Float64() * total
		var acc float64
		pick := -1
		for i, w := range weights {
			if chosen[i] {
				continue
			}
			acc += w
			if target < acc {
				pick = i
				break
			}
		}
		if pick == -1 { // float round-off at the far end
			for i := n - 1; i >= 0; i-- {
				if !chosen[i] {
					pick = i
					break
				}
			}
		}
		chosen[pick] = true
		picked = append(picked, pick)
	}
	return picked
}
