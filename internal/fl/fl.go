// Package fl implements the in-process federated-learning substrate the
// paper's FEI system runs: FedAvg coordination (Section III-A) across edge
// servers holding disjoint shards, with configurable client selection, local
// epoch counts E, per-round learning-rate decay, parallel local training,
// and stop conditions on rounds / loss / accuracy. The networked counterpart
// lives in package flnet; both share this package's aggregation logic.
package fl

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// ErrConfig is returned (wrapped) for invalid engine configurations.
var ErrConfig = errors.New("fl: invalid config")

// Config are the federated hyper-parameters of one training run.
type Config struct {
	// ClientsPerRound is K, the number of edge servers selected each round.
	ClientsPerRound int
	// LocalEpochs is E, the local SGD epochs per selected server per round.
	LocalEpochs int
	// LearningRate is γ at round 0.
	LearningRate float64
	// Decay multiplies the learning rate once per global round (paper:
	// 0.99). Zero disables decay.
	Decay float64
	// BatchSize is the local mini-batch size; 0 selects full batch (the
	// paper's setting).
	BatchSize int
	// Activation selects the classifier head.
	Activation ml.Activation
	// ProximalMu enables FedProx local training with strength µ (0 = plain
	// FedAvg, the paper's algorithm).
	ProximalMu float64
	// Seed drives client selection and any mini-batch shuffling.
	Seed uint64
}

// DefaultConfig mirrors the paper's Table II with K=10, E=40.
func DefaultConfig() Config {
	return Config{
		ClientsPerRound: 10,
		LocalEpochs:     40,
		LearningRate:    0.01,
		Decay:           0.99,
		Activation:      ml.Softmax,
		Seed:            1,
	}
}

// Validate checks the configuration against the number of available shards.
func (c Config) Validate(shards int) error {
	if c.ClientsPerRound < 1 || c.ClientsPerRound > shards {
		return fmt.Errorf("K=%d with %d shards: %w", c.ClientsPerRound, shards, ErrConfig)
	}
	if c.LocalEpochs < 1 {
		return fmt.Errorf("E=%d: %w", c.LocalEpochs, ErrConfig)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("learning rate %v: %w", c.LearningRate, ErrConfig)
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("decay %v: %w", c.Decay, ErrConfig)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("batch size %d: %w", c.BatchSize, ErrConfig)
	}
	if c.ProximalMu < 0 {
		return fmt.Errorf("proximal mu %v: %w", c.ProximalMu, ErrConfig)
	}
	return nil
}

// Selector chooses which clients participate in a round.
type Selector interface {
	// Select returns K distinct client indices out of n for round t.
	Select(rng *mat.RNG, n, k, round int) []int
}

// RandomSelector draws K clients uniformly without replacement each round —
// the paper's "randomly selected subset K_t ⊆ K".
type RandomSelector struct{}

var _ Selector = RandomSelector{}

// Select implements Selector.
func (RandomSelector) Select(rng *mat.RNG, n, k, _ int) []int {
	return rng.Sample(n, k)
}

// RoundRobinSelector cycles deterministically through clients, useful for
// reproducing traces where participation order matters.
type RoundRobinSelector struct{}

var _ Selector = RoundRobinSelector{}

// Select implements Selector.
func (RoundRobinSelector) Select(_ *mat.RNG, n, k, round int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = (round*k + i) % n
	}
	return out
}

// RoundRecord captures one global coordination round.
type RoundRecord struct {
	// Round is the zero-based round index t.
	Round int
	// Selected are the participating client indices K_t.
	Selected []int
	// TrainLoss is the global loss F(ω_{t+1}) over the union of all shards,
	// measured after aggregation.
	TrainLoss float64
	// TestAccuracy is the post-aggregation accuracy on the test set, or NaN
	// when no test set is attached.
	TestAccuracy float64
	// LearningRate is the γ used for this round's local training.
	LearningRate float64
	// LocalLosses holds each selected client's final local training loss,
	// parallel to Selected.
	LocalLosses []float64
	// Dropped lists clients that were selected this round but failed to
	// deliver an update before the round closed (networked runs with fault
	// tolerance only; nil for in-process training). Their local-training
	// and partial-upload energy is wasted work that experiments can charge
	// against the round.
	Dropped []int
	// Rejoins counts client re-registrations the coordinator accepted
	// since the previous completed round (networked runs only). It is
	// wall-clock telemetry: a reconnect racing a round boundary may be
	// attributed to either neighbouring round.
	Rejoins int
	// Retries counts in-round delivery repairs: a selected client whose
	// connection failed mid-round re-registered within the coordinator's
	// rejoin grace window and this round's request was re-sent on the
	// fresh connection (networked runs with RejoinGrace only). Like
	// Rejoins it is wall-clock telemetry — whether a failure is repaired
	// on the first or a later attempt depends on reconnect latency.
	Retries int
}

// Observer is notified after every completed round; the energy simulator
// hooks in here.
type Observer func(RoundRecord)

// Engine runs FedAvg over in-memory shards.
type Engine struct {
	cfg      Config
	shards   []*dataset.Dataset
	global   *ml.Model
	test     *dataset.Dataset
	selector Selector
	agg      Aggregator
	observer Observer
	rng      *mat.RNG
	parallel int
	round    int
	history  []RoundRecord
}

// Option customizes an Engine.
type Option func(*Engine)

// WithTestSet attaches a held-out evaluation set; rounds then report
// TestAccuracy.
func WithTestSet(test *dataset.Dataset) Option {
	return func(e *Engine) { e.test = test }
}

// WithSelector replaces the default RandomSelector.
func WithSelector(s Selector) Option {
	return func(e *Engine) { e.selector = s }
}

// WithAggregator replaces the default MeanAggregator (paper Eq. 2).
func WithAggregator(a Aggregator) Option {
	return func(e *Engine) { e.agg = a }
}

// WithObserver registers a per-round callback.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.observer = o }
}

// WithParallelism caps concurrent local-training goroutines; 1 forces
// sequential execution, 0 selects GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallel = n }
}

// NewEngine validates the config and builds an engine over the given shards.
// All shards must agree on dimensionality and class count.
func NewEngine(cfg Config, shards []*dataset.Dataset, opts ...Option) (*Engine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards: %w", ErrConfig)
	}
	if err := cfg.Validate(len(shards)); err != nil {
		return nil, err
	}
	dim, classes := shards[0].Dim(), shards[0].Classes
	for i, s := range shards {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.Dim() != dim || s.Classes != classes {
			return nil, fmt.Errorf("shard %d shape %d/%d differs from shard 0 %d/%d: %w",
				i, s.Dim(), s.Classes, dim, classes, ErrConfig)
		}
	}
	act := cfg.Activation
	if act == 0 {
		act = ml.Softmax
	}
	e := &Engine{
		cfg:      cfg,
		shards:   shards,
		global:   ml.NewModel(classes, dim, act),
		selector: RandomSelector{},
		agg:      MeanAggregator{},
		rng:      mat.NewRNG(cfg.Seed),
		parallel: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallel <= 0 {
		e.parallel = runtime.GOMAXPROCS(0)
	}
	return e, nil
}

// Global returns the current global model (live reference; callers must not
// mutate it mid-run).
func (e *Engine) Global() *ml.Model { return e.global }

// Rounds returns how many rounds have completed.
func (e *Engine) Rounds() int { return e.round }

// History returns the accumulated round records.
func (e *Engine) History() []RoundRecord { return e.history }

// Shards returns the number of edge servers.
func (e *Engine) Shards() int { return len(e.shards) }

// currentLR returns γ_t = γ0 · decay^t.
func (e *Engine) currentLR() float64 {
	if e.cfg.Decay == 0 {
		return e.cfg.LearningRate
	}
	return e.cfg.LearningRate * math.Pow(e.cfg.Decay, float64(e.round))
}

// localResult carries one client's round output.
type localResult struct {
	client int
	model  *ml.Model
	loss   float64
	err    error
}

// Round performs one full FedAvg round: select K_t, broadcast ω_t, train E
// local epochs on each selected shard, aggregate per Eq. (2), evaluate.
func (e *Engine) Round() (RoundRecord, error) {
	selected := e.selector.Select(e.rng, len(e.shards), e.cfg.ClientsPerRound, e.round)
	lr := e.currentLR()

	results := make([]localResult, len(selected))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.parallel)
	for i, c := range selected {
		wg.Add(1)
		go func(slot, client int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[slot] = e.trainLocal(client, lr)
		}(i, c)
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return RoundRecord{}, fmt.Errorf("round %d client %d: %w", e.round, r.client, r.err)
		}
	}

	// Aggregate (default: ω_{t+1} = (1/K) Σ ω_{k,t}, paper Eq. 2).
	updates := make([]Update, len(results))
	for i, r := range results {
		updates[i] = Update{Client: r.client, Model: r.model, Samples: e.shards[r.client].Len()}
	}
	if err := e.agg.Aggregate(e.global, updates); err != nil {
		return RoundRecord{}, fmt.Errorf("round %d: %w", e.round, err)
	}

	rec := RoundRecord{
		Round:        e.round,
		Selected:     selected,
		LearningRate: lr,
		TestAccuracy: math.NaN(),
		LocalLosses:  make([]float64, len(results)),
	}
	for i, r := range results {
		rec.LocalLosses[i] = r.loss
	}

	loss, err := e.GlobalLoss()
	if err != nil {
		return RoundRecord{}, fmt.Errorf("round %d global loss: %w", e.round, err)
	}
	rec.TrainLoss = loss

	if e.test != nil {
		acc, err := ml.Accuracy(e.global, e.test)
		if err != nil {
			return RoundRecord{}, fmt.Errorf("round %d accuracy: %w", e.round, err)
		}
		rec.TestAccuracy = acc
	}

	e.round++
	e.history = append(e.history, rec)
	if e.observer != nil {
		e.observer(rec)
	}
	return rec, nil
}

// trainLocal clones the global model and runs E epochs on one shard.
func (e *Engine) trainLocal(client int, lr float64) localResult {
	local := e.global.Clone()
	sgd, err := ml.NewSGD(ml.SGDConfig{
		LearningRate: lr,
		BatchSize:    e.cfg.BatchSize,
		ProximalMu:   e.cfg.ProximalMu,
		// Mini-batch order must not depend on goroutine scheduling: derive
		// the seed from (run seed, client, round).
		Seed: e.cfg.Seed ^ uint64(client)<<32 ^ uint64(e.round),
	})
	if err != nil {
		return localResult{client: client, err: err}
	}
	if e.cfg.ProximalMu > 0 {
		// The FedProx anchor is this round's immutable global snapshot.
		sgd.SetProximalRef(e.global)
	}
	losses, err := sgd.Train(local, e.shards[client], e.cfg.LocalEpochs)
	if err != nil {
		return localResult{client: client, err: err}
	}
	return localResult{client: client, model: local, loss: losses[len(losses)-1]}
}

// GlobalLoss evaluates the global objective F(ω) = Σ_k (n_k/n)·F_k(ω) over
// all shards.
func (e *Engine) GlobalLoss() (float64, error) {
	var weighted float64
	var total int
	for i, s := range e.shards {
		l, err := ml.Loss(e.global, s)
		if err != nil {
			return 0, fmt.Errorf("shard %d loss: %w", i, err)
		}
		weighted += l * float64(s.Len())
		total += s.Len()
	}
	return weighted / float64(total), nil
}

// StopCondition inspects the history after each round and reports whether
// training should stop.
type StopCondition func(history []RoundRecord) bool

// MaxRounds stops after n rounds.
func MaxRounds(n int) StopCondition {
	return func(h []RoundRecord) bool { return len(h) >= n }
}

// TargetAccuracy stops once the latest test accuracy reaches a.
func TargetAccuracy(a float64) StopCondition {
	return func(h []RoundRecord) bool {
		return len(h) > 0 && h[len(h)-1].TestAccuracy >= a
	}
}

// TargetLoss stops once the latest global training loss falls to l.
func TargetLoss(l float64) StopCondition {
	return func(h []RoundRecord) bool {
		return len(h) > 0 && h[len(h)-1].TrainLoss <= l
	}
}

// AnyOf stops when any of the given conditions holds.
func AnyOf(conds ...StopCondition) StopCondition {
	return func(h []RoundRecord) bool {
		for _, c := range conds {
			if c(h) {
				return true
			}
		}
		return false
	}
}

// Run executes rounds until stop fires and returns the records produced by
// this call. A nil stop is rejected — it would loop forever.
func (e *Engine) Run(stop StopCondition) ([]RoundRecord, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrConfig)
	}
	start := len(e.history)
	for !stop(e.history) {
		if _, err := e.Round(); err != nil {
			return e.history[start:], err
		}
	}
	return e.history[start:], nil
}
