// Package fl implements the in-process federated-learning substrate the
// paper's FEI system runs: FedAvg coordination (Section III-A) across edge
// servers holding disjoint shards, with configurable client selection, local
// epoch counts E, per-round learning-rate decay, parallel local training,
// and stop conditions on rounds / loss / accuracy. The networked counterpart
// lives in package flnet; both share this package's aggregation logic.
package fl

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// ErrConfig is returned (wrapped) for invalid engine configurations.
var ErrConfig = errors.New("fl: invalid config")

// Config are the federated hyper-parameters of one training run.
type Config struct {
	// ClientsPerRound is K, the number of edge servers selected each round.
	ClientsPerRound int
	// LocalEpochs is E, the local SGD epochs per selected server per round.
	LocalEpochs int
	// LearningRate is γ at round 0.
	LearningRate float64
	// Decay multiplies the learning rate once per global round (paper:
	// 0.99). Zero disables decay.
	Decay float64
	// BatchSize is the local mini-batch size; 0 selects full batch (the
	// paper's setting).
	BatchSize int
	// Activation selects the classifier head.
	Activation ml.Activation
	// ProximalMu enables FedProx local training with strength µ (0 = plain
	// FedAvg, the paper's algorithm).
	ProximalMu float64
	// Seed drives client selection and any mini-batch shuffling.
	Seed uint64
}

// DefaultConfig mirrors the paper's Table II with K=10, E=40.
func DefaultConfig() Config {
	return Config{
		ClientsPerRound: 10,
		LocalEpochs:     40,
		LearningRate:    0.01,
		Decay:           0.99,
		Activation:      ml.Softmax,
		Seed:            1,
	}
}

// Validate checks the configuration against the number of available shards.
func (c Config) Validate(shards int) error {
	if c.ClientsPerRound < 1 || c.ClientsPerRound > shards {
		return fmt.Errorf("K=%d with %d shards: %w", c.ClientsPerRound, shards, ErrConfig)
	}
	if c.LocalEpochs < 1 {
		return fmt.Errorf("E=%d: %w", c.LocalEpochs, ErrConfig)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("learning rate %v: %w", c.LearningRate, ErrConfig)
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("decay %v: %w", c.Decay, ErrConfig)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("batch size %d: %w", c.BatchSize, ErrConfig)
	}
	if c.ProximalMu < 0 {
		return fmt.Errorf("proximal mu %v: %w", c.ProximalMu, ErrConfig)
	}
	return nil
}

// Selector chooses which clients participate in a round.
type Selector interface {
	// Select returns K distinct client indices out of n for round t.
	Select(rng *mat.RNG, n, k, round int) []int
}

// RandomSelector draws K clients uniformly without replacement each round —
// the paper's "randomly selected subset K_t ⊆ K".
type RandomSelector struct{}

var _ Selector = RandomSelector{}

// Select implements Selector.
func (RandomSelector) Select(rng *mat.RNG, n, k, _ int) []int {
	return rng.Sample(n, k)
}

// RoundRobinSelector cycles deterministically through clients, useful for
// reproducing traces where participation order matters.
type RoundRobinSelector struct{}

var _ Selector = RoundRobinSelector{}

// Select implements Selector.
func (RoundRobinSelector) Select(_ *mat.RNG, n, k, round int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = (round*k + i) % n
	}
	return out
}

// RoundRecord captures one global coordination round.
type RoundRecord struct {
	// Round is the zero-based round index t.
	Round int
	// Selected are the participating client indices K_t.
	Selected []int
	// TrainLoss is the global loss F(ω_{t+1}) over the union of all shards,
	// measured after aggregation.
	TrainLoss float64
	// TestAccuracy is the post-aggregation accuracy on the test set, or NaN
	// when no test set is attached.
	TestAccuracy float64
	// LearningRate is the γ used for this round's local training.
	LearningRate float64
	// LocalLosses holds each selected client's final local training loss,
	// parallel to Selected.
	LocalLosses []float64
	// Dropped lists clients that were selected this round but failed to
	// deliver an update before the round closed (networked runs with fault
	// tolerance only; nil for in-process training). Their local-training
	// and partial-upload energy is wasted work that experiments can charge
	// against the round.
	Dropped []int
	// Rejoins counts client re-registrations the coordinator accepted
	// since the previous completed round (networked runs only). It is
	// wall-clock telemetry: a reconnect racing a round boundary may be
	// attributed to either neighbouring round.
	Rejoins int
	// Retries counts in-round delivery repairs: a selected client whose
	// connection failed mid-round re-registered within the coordinator's
	// rejoin grace window and this round's request was re-sent on the
	// fresh connection (networked runs with RejoinGrace only). Like
	// Rejoins it is wall-clock telemetry — whether a failure is repaired
	// on the first or a later attempt depends on reconnect latency.
	Retries int
	// DownlinkBytes / UplinkBytes are the frame bytes the coordinator
	// actually put on / took off the wire this round (networked runs only;
	// zero for in-process training): request frames to the selected
	// clients and their reply frames respectively, 5-byte frame headers
	// included. They are the measured transfer volume the bytes→joules
	// radio energy model prices, replacing the analytic estimate.
	DownlinkBytes int64
	UplinkBytes   int64
	// The *AttemptBytes / *DeliveredBytes pairs are only set when the round
	// ran over a datagram transport with per-attempt accounting
	// (fldgram): attempted counts every packet transmission including
	// retransmissions and injected drops — the energy the radio actually
	// spent — while delivered counts unique acknowledged packets, both at
	// wire size (datagram headers included). Their ratio is the measured
	// expected attempts per delivery, which Eq. 4 predicts converges to
	// 1/p on the unlicensed band. Zero on stream transports.
	DownlinkAttemptBytes   int64
	DownlinkDeliveredBytes int64
	UplinkAttemptBytes     int64
	UplinkDeliveredBytes   int64
}

// Observer is notified after every completed round; the energy simulator
// hooks in here.
type Observer func(RoundRecord)

// Engine runs FedAvg over in-memory shards.
//
// The per-round hot path is allocation-free after the first round: local
// training runs on a bounded worker pool whose per-slot scratch models and
// per-worker optimizers (each owning its gradient accumulator, batched-
// forward chunk scratch, shuffle buffer, and RNG stream) are reused round
// over round, the
// aggregate lands in a scratch model that is committed only when the whole
// round — including evaluation — succeeds, and global loss / test accuracy
// are computed by a shard-parallel map-reduce over per-worker evaluators.
// See DESIGN.md §7 for the scratch-ownership rules.
type Engine struct {
	cfg          Config
	shards       []*dataset.Dataset
	totalSamples int
	global       *ml.Model
	test         *dataset.Dataset
	selector     Selector
	agg          Aggregator
	observer     Observer
	roundObs     RoundObserver
	sampleMem    bool
	rng          *mat.RNG
	parallel     int
	evalParallel int
	round        int
	history      []RoundRecord

	// Round-loop scratch, all reused across rounds. localModels is indexed
	// by selection slot (each slot's result must survive until aggregation),
	// sgds by pool worker (a worker trains its claimed slots sequentially).
	localModels []*ml.Model
	sgds        []*ml.SGD
	results     []localResult
	updates     []Update
	aggScratch  *ml.Model
	// Evaluation scratch: the shard-parallel loss map-reduce (shared with
	// AsyncEngine) and a chunk-parallel evaluator for the test set.
	shardLoss shardLossMap
	testEval  *ml.Evaluator
}

// Option customizes an Engine.
type Option func(*Engine)

// WithTestSet attaches a held-out evaluation set; rounds then report
// TestAccuracy.
func WithTestSet(test *dataset.Dataset) Option {
	return func(e *Engine) { e.test = test }
}

// WithSelector replaces the default RandomSelector.
func WithSelector(s Selector) Option {
	return func(e *Engine) { e.selector = s }
}

// WithAggregator replaces the default MeanAggregator (paper Eq. 2).
func WithAggregator(a Aggregator) Option {
	return func(e *Engine) { e.agg = a }
}

// WithObserver registers a per-round callback.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.observer = o }
}

// WithRoundObserver attaches a per-round observability sink (phase timings,
// throughput, pool occupancy — see RoundStats). Nil detaches; with no
// observer the round loop takes no timestamps at all.
func WithRoundObserver(o RoundObserver) Option {
	return func(e *Engine) { e.roundObs = o }
}

// WithMemSampling opts the engine into sampling runtime.ReadMemStats around
// every observed round, filling RoundStats.Mallocs/AllocBytes. It has no
// effect without a RoundObserver.
func WithMemSampling() Option {
	return func(e *Engine) { e.sampleMem = true }
}

// WithParallelism caps concurrent local-training workers; 1 forces
// sequential execution, 0 selects GOMAXPROCS. Results are bit-identical for
// every setting: a client's training stream is derived from (seed, client,
// round), never from which worker ran it.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallel = n }
}

// WithEvalParallelism caps the workers used for post-aggregation evaluation
// (global loss over the shards, accuracy over the test set); 1 forces
// sequential evaluation, 0 selects GOMAXPROCS. Results are bit-identical
// for every setting: per-shard losses are reduced in shard order and the
// test pass uses a fixed chunk decomposition.
func WithEvalParallelism(n int) Option {
	return func(e *Engine) { e.evalParallel = n }
}

// NewEngine validates the config and builds an engine over the given shards.
// All shards must agree on dimensionality and class count.
func NewEngine(cfg Config, shards []*dataset.Dataset, opts ...Option) (*Engine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards: %w", ErrConfig)
	}
	if err := cfg.Validate(len(shards)); err != nil {
		return nil, err
	}
	dim, classes := shards[0].Dim(), shards[0].Classes
	for i, s := range shards {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.Dim() != dim || s.Classes != classes {
			return nil, fmt.Errorf("shard %d shape %d/%d differs from shard 0 %d/%d: %w",
				i, s.Dim(), s.Classes, dim, classes, ErrConfig)
		}
	}
	act := cfg.Activation
	if act == 0 {
		act = ml.Softmax
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	e := &Engine{
		cfg:          cfg,
		shards:       shards,
		totalSamples: total,
		global:       ml.NewModel(classes, dim, act),
		selector:     RandomSelector{},
		agg:          MeanAggregator{},
		rng:          mat.NewRNG(cfg.Seed),
		parallel:     runtime.GOMAXPROCS(0),
		evalParallel: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallel <= 0 {
		e.parallel = runtime.GOMAXPROCS(0)
	}
	if e.evalParallel <= 0 {
		e.evalParallel = runtime.GOMAXPROCS(0)
	}
	e.aggScratch = ml.NewModel(classes, dim, act)
	e.shardLoss.init(len(shards))
	return e, nil
}

// Global returns the current global model (live reference; callers must not
// mutate it mid-run).
func (e *Engine) Global() *ml.Model { return e.global }

// Rounds returns how many rounds have completed.
func (e *Engine) Rounds() int { return e.round }

// History returns the accumulated round records.
func (e *Engine) History() []RoundRecord { return e.history }

// SetRoundObserver attaches (or, with nil, detaches) the per-round
// observability sink after construction — cmd/feisim uses this to wire its
// -trace flag through the simulator. Must not be called while Round runs.
func (e *Engine) SetRoundObserver(o RoundObserver) { e.roundObs = o }

// SetMemSampling toggles per-round memstats sampling (see WithMemSampling).
func (e *Engine) SetMemSampling(on bool) { e.sampleMem = on }

// Shards returns the number of edge servers.
func (e *Engine) Shards() int { return len(e.shards) }

// currentLR returns γ_t = γ0 · decay^t.
func (e *Engine) currentLR() float64 {
	if e.cfg.Decay == 0 {
		return e.cfg.LearningRate
	}
	return e.cfg.LearningRate * math.Pow(e.cfg.Decay, float64(e.round))
}

// localResult carries one client's round output. worker records which pool
// worker trained the slot — observability only (WorkerClaims); it costs
// nothing to track, unlike a shared counter, which would have to be heap-
// allocated into the pool closure even on unobserved rounds.
type localResult struct {
	client int
	worker int
	model  *ml.Model
	loss   float64
	err    error
}

// Round performs one full FedAvg round: select K_t, broadcast ω_t, train E
// local epochs on each selected shard, aggregate per Eq. (2), evaluate.
//
// The round commits atomically: the aggregate is formed in a scratch model
// and evaluated there, and only if every stage succeeds are the global
// model, round counter, and history advanced together. A failed round
// leaves the engine exactly as it was, so callers can retry or abort
// without inheriting a half-advanced state.
func (e *Engine) Round() (RoundRecord, error) {
	// Observability is pay-for-use: with no observer attached the round
	// takes no timestamps and allocates nothing extra.
	obs := e.roundObs
	var pc PhaseClock
	if obs != nil {
		pc = NewPhaseClock(e.sampleMem)
	}

	selected := e.selector.Select(e.rng, len(e.shards), e.cfg.ClientsPerRound, e.round)
	lr := e.currentLR()
	e.ensureRoundScratch(len(selected))
	results := e.results[:len(selected)]

	// Bounded worker pool: each of up to e.parallel workers owns one SGD
	// (and thereby its gradient/probability/shuffle buffers and RNG object)
	// and claims selection slots off a shared cursor. Which worker trains
	// which client is scheduling-dependent, but harmless: a client's
	// training stream is reseeded from (seed, client, round) on every
	// assignment, so the trajectory is identical for any pool size.
	workers := e.parallel
	if workers > len(selected) {
		workers = len(selected)
	}
	if obs != nil {
		pc.Lap(PhaseSelect)
	}
	if workers <= 1 {
		for i, c := range selected {
			results[i] = e.trainLocal(0, i, c, lr)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(selected) {
						return
					}
					results[i] = e.trainLocal(w, i, selected[i], lr)
				}
			}(w)
		}
		wg.Wait()
	}
	// claims[w] counts the selection slots worker w trained — the pool
	// occupancy an observer sees. Built after the pool from the per-slot
	// worker tags so nothing observer-related is captured by (and therefore
	// heap-allocated into) the worker closure on unobserved rounds.
	var claims []int
	if obs != nil {
		claims = make([]int, workers)
		for i := range results {
			if results[i].err == nil {
				claims[results[i].worker]++
			}
		}
	}

	for _, r := range results {
		if r.err != nil {
			return RoundRecord{}, fmt.Errorf("round %d client %d: %w", e.round, r.client, r.err)
		}
	}
	if obs != nil {
		pc.Lap(PhaseTrain)
	}

	// Aggregate (default: ω_{t+1} = (1/K) Σ ω_{k,t}, paper Eq. 2) into the
	// scratch model; the engine's state is untouched until the commit below.
	updates := e.updates[:len(results)]
	for i, r := range results {
		updates[i] = Update{Client: r.client, Model: r.model, Samples: e.shards[r.client].Len()}
	}
	if err := e.agg.Aggregate(e.aggScratch, updates); err != nil {
		return RoundRecord{}, fmt.Errorf("round %d: %w", e.round, err)
	}
	if obs != nil {
		pc.Lap(PhaseAggregate)
	}

	rec := RoundRecord{
		Round:        e.round,
		Selected:     selected,
		LearningRate: lr,
		TestAccuracy: math.NaN(),
		LocalLosses:  make([]float64, len(results)),
	}
	for i, r := range results {
		rec.LocalLosses[i] = r.loss
	}

	loss, err := e.globalLossOf(e.aggScratch)
	if err != nil {
		return RoundRecord{}, fmt.Errorf("round %d global loss: %w", e.round, err)
	}
	rec.TrainLoss = loss

	if e.test != nil {
		if e.testEval == nil {
			e.testEval = ml.NewEvaluator(e.evalParallel)
		}
		acc, err := e.testEval.Accuracy(e.aggScratch, e.test)
		if err != nil {
			return RoundRecord{}, fmt.Errorf("round %d accuracy: %w", e.round, err)
		}
		rec.TestAccuracy = acc
	}
	if obs != nil {
		pc.Lap(PhaseEvaluate)
	}

	// Commit model, round counter, and history together.
	if err := e.global.CopyFrom(e.aggScratch); err != nil {
		return RoundRecord{}, fmt.Errorf("round %d commit: %w", e.round, err)
	}
	e.round++
	e.history = append(e.history, rec)
	if e.observer != nil {
		e.observer(rec)
	}
	if obs != nil {
		st := pc.Finish(rec.Round)
		st.Workers = workers
		st.WorkerClaims = claims
		obs.ObserveRound(st)
	}
	return rec, nil
}

// ensureRoundScratch sizes the per-slot and per-worker reusable buffers for
// a round over k selected clients.
func (e *Engine) ensureRoundScratch(k int) {
	for len(e.localModels) < k {
		e.localModels = append(e.localModels, ml.NewModel(e.global.Classes(), e.global.Features(), e.global.Act))
	}
	workers := e.parallel
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	for len(e.sgds) < workers {
		e.sgds = append(e.sgds, nil)
	}
	if cap(e.results) < k {
		e.results = make([]localResult, k)
		e.updates = make([]Update, k)
	}
	e.results = e.results[:cap(e.results)]
	e.updates = e.updates[:cap(e.updates)]
}

// trainLocal copies the global model into slot scratch and runs E epochs of
// worker w's optimizer on one client's shard.
func (e *Engine) trainLocal(w, slot, client int, lr float64) localResult {
	local := e.localModels[slot]
	if err := local.CopyFrom(e.global); err != nil {
		return localResult{client: client, worker: w, err: err}
	}
	cfg := ml.SGDConfig{
		LearningRate: lr,
		BatchSize:    e.cfg.BatchSize,
		ProximalMu:   e.cfg.ProximalMu,
		// Mini-batch order must not depend on goroutine scheduling or pool
		// size: derive the seed from (run seed, client, round).
		Seed: e.cfg.Seed ^ uint64(client)<<32 ^ uint64(e.round),
	}
	var err error
	if e.sgds[w] == nil {
		e.sgds[w], err = ml.NewSGD(cfg)
	} else {
		err = e.sgds[w].Reset(cfg)
	}
	if err != nil {
		return localResult{client: client, worker: w, err: err}
	}
	sgd := e.sgds[w]
	if e.cfg.ProximalMu > 0 {
		// The FedProx anchor is this round's immutable global snapshot.
		sgd.SetProximalRef(e.global)
	}
	loss, err := sgd.TrainFinal(local, e.shards[client], e.cfg.LocalEpochs)
	if err != nil {
		return localResult{client: client, worker: w, err: err}
	}
	return localResult{client: client, worker: w, model: local, loss: loss}
}

// GlobalLoss evaluates the global objective F(ω) = Σ_k (n_k/n)·F_k(ω) over
// all shards.
func (e *Engine) GlobalLoss() (float64, error) {
	return e.globalLossOf(e.global)
}

// globalLossOf runs the shard-parallel map-reduce for F(ω) over up to
// evalParallel workers; see shardLossMap for the bit-identity and spawn-gate
// contracts.
func (e *Engine) globalLossOf(m *ml.Model) (float64, error) {
	return e.shardLoss.lossOf(m, e.shards, e.totalSamples, e.evalParallel)
}

// StopCondition inspects the history after each round and reports whether
// training should stop.
type StopCondition func(history []RoundRecord) bool

// MaxRounds stops after n rounds.
func MaxRounds(n int) StopCondition {
	return func(h []RoundRecord) bool { return len(h) >= n }
}

// TargetAccuracy stops once the latest test accuracy reaches a.
func TargetAccuracy(a float64) StopCondition {
	return func(h []RoundRecord) bool {
		return len(h) > 0 && h[len(h)-1].TestAccuracy >= a
	}
}

// TargetLoss stops once the latest global training loss falls to l.
func TargetLoss(l float64) StopCondition {
	return func(h []RoundRecord) bool {
		return len(h) > 0 && h[len(h)-1].TrainLoss <= l
	}
}

// AnyOf stops when any of the given conditions holds.
func AnyOf(conds ...StopCondition) StopCondition {
	return func(h []RoundRecord) bool {
		for _, c := range conds {
			if c(h) {
				return true
			}
		}
		return false
	}
}

// Run executes rounds until stop fires and returns the records produced by
// this call. A nil stop is rejected — it would loop forever.
func (e *Engine) Run(stop StopCondition) ([]RoundRecord, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrConfig)
	}
	start := len(e.history)
	for !stop(e.history) {
		if _, err := e.Round(); err != nil {
			return e.history[start:], err
		}
	}
	return e.history[start:], nil
}
