package fl

import (
	"fmt"
	"testing"

	"eefei/internal/dataset"
)

// benchShards builds the Table-II-scale substrate: 2000 synthetic samples
// split IID across 20 edge servers, plus a held-out test set.
func benchShards(b *testing.B) ([]*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 2000
	train, test, err := dataset.SynthesizePair(cfg, cfg)
	if err != nil {
		b.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, 20)
	if err != nil {
		b.Fatalf("Partition: %v", err)
	}
	return shards, test
}

// BenchmarkRoundTable2 is the end-to-end perf pin for the paper's Table-II
// configuration (K=10, E=40): one full FedAvg round including selection,
// parallel local training, aggregation, and global loss + test accuracy
// evaluation. BENCH_*.json tracks its ns/op and allocs/op across PRs.
func BenchmarkRoundTable2(b *testing.B) {
	shards, test := benchShards(b)
	engine, err := NewEngine(Config{
		ClientsPerRound: 10, LocalEpochs: 40, LearningRate: 0.01, Decay: 0.99, Seed: 1,
	}, shards, WithTestSet(test))
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	// Warmup round: fills scratch and the runtime's goroutine free lists so
	// allocs/op is the steady-state figure BENCH_*.json pins.
	if _, err := engine.Round(); err != nil {
		b.Fatalf("warmup Round: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Round(); err != nil {
			b.Fatalf("Round: %v", err)
		}
	}
}

// BenchmarkRoundMiniBatch exercises the mini-batch local-training path
// (shuffle buffer + permutation-slice batches).
func BenchmarkRoundMiniBatch(b *testing.B) {
	shards, _ := benchShards(b)
	engine, err := NewEngine(Config{
		ClientsPerRound: 10, LocalEpochs: 5, LearningRate: 0.05, BatchSize: 32, Seed: 1,
	}, shards)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	if _, err := engine.Round(); err != nil { // warmup: steady-state allocs
		b.Fatalf("warmup Round: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Round(); err != nil {
			b.Fatalf("Round: %v", err)
		}
	}
}

// BenchmarkAsyncStep is the asynchronous counterpart of BenchmarkRoundTable2:
// one steady-state virtual-time step — flush the pending local training, pop
// the completion queue, staleness-discounted mix, global loss + test accuracy
// on the scratch model, atomic commit, re-dispatch. The eval=1 variant is the
// fully sequential hot path whose allocs/op the regression gate pins at zero
// (the engine-side contract behind TestAsyncStepAllocationFree); eval=4 adds
// the pooled shard-loss map-reduce.
func BenchmarkAsyncStep(b *testing.B) {
	shards, test := benchShards(b)
	for _, eval := range []int{1, 4} {
		b.Run(fmt.Sprintf("eval=%d", eval), func(b *testing.B) {
			engine, err := NewAsyncEngine(AsyncConfig{
				LocalEpochs: 40, LearningRate: 0.01, Decay: 0.99, MixWeight: 0.6, Seed: 1,
			}, shards, test, WithAsyncParallelism(eval), WithAsyncEvalParallelism(eval))
			if err != nil {
				b.Fatalf("NewAsyncEngine: %v", err)
			}
			// Warmup: the first Step dispatches and trains the whole fleet;
			// a second settles every scratch buffer so allocs/op is the
			// steady-state figure BENCH_*.json pins.
			for i := 0; i < 2; i++ {
				if _, err := engine.Step(); err != nil {
					b.Fatalf("warmup Step: %v", err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Step(); err != nil {
					b.Fatalf("Step: %v", err)
				}
			}
		})
	}
}

// BenchmarkGlobalLoss measures the shard-parallel evaluation map-reduce on
// its own, sequential versus pooled.
func BenchmarkGlobalLoss(b *testing.B) {
	shards, _ := benchShards(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			engine, err := NewEngine(Config{
				ClientsPerRound: 10, LocalEpochs: 1, LearningRate: 0.05, Seed: 1,
			}, shards, WithEvalParallelism(workers))
			if err != nil {
				b.Fatalf("NewEngine: %v", err)
			}
			if _, err := engine.Round(); err != nil {
				b.Fatalf("warmup Round: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.GlobalLoss(); err != nil {
					b.Fatalf("GlobalLoss: %v", err)
				}
			}
		})
	}
}
