package fl

import (
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/ml"
)

// TestGlobalLossSpawnGate pins satellite #1 of the observability PR: the
// min-work spawn gate in globalLossOf (ml.GatedWorkers over totalSamples)
// only changes scheduling. At tiny shard counts/sizes — where the gate
// forces the map-reduce sequential — the global loss must be bit-identical
// to an engine configured with explicit sequential evaluation, and to one
// requesting far more workers than the gate will grant.
func TestGlobalLossSpawnGate(t *testing.T) {
	tests := []struct {
		name    string
		samples int
		shards  int
	}{
		{"tiny below gate", 300, 3}, // 300 < MinEvalRowsPerWorker: forced sequential
		{"one quota", ml.MinEvalRowsPerWorker, 2},
		{"two quotas few shards", 2 * ml.MinEvalRowsPerWorker, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := dataset.QuickSyntheticConfig()
			cfg.Samples = tt.samples
			train, test, err := dataset.SynthesizePair(cfg, cfg)
			if err != nil {
				t.Fatalf("SynthesizePair: %v", err)
			}
			shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, tt.shards)
			if err != nil {
				t.Fatalf("Partition: %v", err)
			}
			flCfg := quickConfig()
			flCfg.ClientsPerRound = tt.shards

			lossWith := func(evalWorkers int) float64 {
				engine, err := NewEngine(flCfg, shards, WithTestSet(test),
					WithEvalParallelism(evalWorkers))
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				if _, err := engine.Run(MaxRounds(2)); err != nil {
					t.Fatalf("Run: %v", err)
				}
				loss, err := engine.GlobalLoss()
				if err != nil {
					t.Fatalf("GlobalLoss: %v", err)
				}
				return loss
			}

			want := lossWith(1)
			for _, workers := range []int{2, 8, 64} {
				got := lossWith(workers)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("evalWorkers=%d: loss %v differs bit-wise from sequential %v",
						workers, got, want)
				}
			}
		})
	}
}
