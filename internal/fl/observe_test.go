package fl

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	tests := []struct {
		p    Phase
		want string
	}{
		{PhaseSelect, "select"},
		{PhaseTrain, "train"},
		{PhaseAggregate, "aggregate"},
		{PhaseEvaluate, "evaluate"},
		{Phase(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Phase(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

// TestObserverStats checks the contents of the per-round records: every
// phase timed, totals covering the phases, occupancy summing to K, and
// memstats deltas present when sampling is on.
func TestObserverStats(t *testing.T) {
	shards, test := quickShards(t, 10)
	var stats []RoundStats
	engine, err := NewEngine(quickConfig(), shards,
		WithTestSet(test),
		WithParallelism(4),
		WithRoundObserver(FuncObserver(func(s RoundStats) {
			// WorkerClaims is only valid during the call: copy it.
			s.WorkerClaims = append([]int(nil), s.WorkerClaims...)
			stats = append(stats, s)
		})),
		WithMemSampling(),
	)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	const rounds = 3
	if _, err := engine.Run(MaxRounds(rounds)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(stats) != rounds {
		t.Fatalf("observed %d rounds, want %d", len(stats), rounds)
	}
	for i, s := range stats {
		if s.Round != i {
			t.Errorf("stats[%d].Round = %d", i, s.Round)
		}
		if s.Train <= 0 || s.Evaluate <= 0 {
			t.Errorf("round %d: train %v / evaluate %v not timed", i, s.Train, s.Evaluate)
		}
		if sum := s.Select + s.Train + s.Aggregate + s.Evaluate; s.Total < sum {
			t.Errorf("round %d: total %v below phase sum %v", i, s.Total, sum)
		}
		if s.RoundsPerSec <= 0 {
			t.Errorf("round %d: rounds/sec %v", i, s.RoundsPerSec)
		}
		if s.Workers != 4 {
			t.Errorf("round %d: workers = %d, want 4", i, s.Workers)
		}
		claimed := 0
		for _, c := range s.WorkerClaims {
			claimed += c
		}
		if claimed != quickConfig().ClientsPerRound {
			t.Errorf("round %d: claims %v sum to %d, want K=%d",
				i, s.WorkerClaims, claimed, quickConfig().ClientsPerRound)
		}
		if !s.MemSampled {
			t.Errorf("round %d: memstats not sampled despite WithMemSampling", i)
		}
		for p := PhaseSelect; p <= PhaseEvaluate; p++ {
			if s.PhaseDuration(p) < 0 {
				t.Errorf("round %d: %v duration negative", i, p)
			}
		}
	}
}

// TestObserverDeterminism pins the contract from DESIGN.md §7: attaching an
// observer (even with memstats sampling) must not change a single bit of
// the training trajectory.
func TestObserverDeterminism(t *testing.T) {
	shards, test := quickShards(t, 10)
	run := func(observed bool) ([]RoundRecord, []float64) {
		opts := []Option{WithTestSet(test), WithParallelism(3)}
		if observed {
			opts = append(opts,
				WithRoundObserver(FuncObserver(func(RoundStats) { time.Sleep(time.Millisecond) })),
				WithMemSampling(),
			)
		}
		engine, err := NewEngine(quickConfig(), shards, opts...)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := engine.Run(MaxRounds(4)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return engine.History(), append([]float64(nil), engine.Global().W.RawData()...)
	}
	plainHist, plainW := run(false)
	obsHist, obsW := run(true)
	if !reflect.DeepEqual(plainHist, obsHist) {
		t.Errorf("histories diverge with an observer attached:\n%+v\nvs\n%+v", plainHist, obsHist)
	}
	if !reflect.DeepEqual(plainW, obsW) {
		t.Error("global weights diverge bit-wise with an observer attached")
	}
}

// TestAsyncObserverDeterminism is the same contract for the async engine,
// including observed staleness-dropped steps.
func TestAsyncObserverDeterminism(t *testing.T) {
	shards, test := quickShards(t, 6)
	cfg := DefaultAsyncConfig()
	cfg.LocalEpochs = 2
	cfg.MaxStaleness = 2 // force some dropped steps into the observed stream
	run := func(observed bool) ([]AsyncUpdate, int) {
		engine, err := NewAsyncEngine(cfg, shards, test)
		if err != nil {
			t.Fatalf("NewAsyncEngine: %v", err)
		}
		dropped := 0
		if observed {
			engine.SetRoundObserver(FuncObserver(func(s RoundStats) { dropped += s.Dropped }))
			engine.SetMemSampling(true)
		}
		if _, err := engine.Run(MaxAsyncSteps(12)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return engine.History(), dropped
	}
	plain, _ := run(false)
	observed, obsDropped := run(true)
	if !reflect.DeepEqual(histNoNaN(plain), histNoNaN(observed)) {
		t.Errorf("async histories diverge with an observer attached")
	}
	wantDropped := 0
	for _, u := range plain {
		if !u.Applied {
			wantDropped++
		}
	}
	if obsDropped != wantDropped {
		t.Errorf("observer saw %d dropped steps, history has %d", obsDropped, wantDropped)
	}
}

// histNoNaN zeroes the NaN metric fields of dropped updates so DeepEqual
// can compare histories (NaN != NaN).
func histNoNaN(h []AsyncUpdate) []AsyncUpdate {
	out := append([]AsyncUpdate(nil), h...)
	for i := range out {
		if !out[i].Applied {
			out[i].TrainLoss, out[i].TestAccuracy = 0, 0
		}
	}
	return out
}

// TestObserverRace exercises the observer plumbing under the race detector:
// a mutating observer on an engine with Parallelism=4 (claims counters are
// written by pool workers and read by the observer), plus one shared
// TraceWriter observed by two concurrently-training engines.
func TestObserverRace(t *testing.T) {
	shards, test := quickShards(t, 10)
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)

	seen := make(map[int]int)
	var claims []int
	mutating := FuncObserver(func(s RoundStats) {
		seen[s.Round]++
		claims = append(claims[:0], s.WorkerClaims...)
		tw.ObserveRound(s)
	})

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := quickConfig()
			cfg.Seed = uint64(g + 1)
			opts := []Option{WithTestSet(test), WithParallelism(4), WithRoundObserver(tw)}
			if g == 0 {
				// Engine 0 carries the mutating observer; engine 1 writes to
				// the shared TraceWriter directly.
				opts[2] = WithRoundObserver(mutating)
			}
			engine, err := NewEngine(cfg, shards, opts...)
			if err != nil {
				t.Errorf("NewEngine: %v", err)
				return
			}
			if _, err := engine.Run(MaxRounds(3)); err != nil {
				t.Errorf("Run: %v", err)
			}
		}(g)
	}
	wg.Wait()
	if err := tw.Err(); err != nil {
		t.Fatalf("TraceWriter error: %v", err)
	}
	if tw.Lines() != 6 {
		t.Errorf("TraceWriter saw %d rounds, want 6", tw.Lines())
	}
	if len(seen) != 3 || len(claims) == 0 {
		t.Errorf("mutating observer state: rounds %v, claims %v", seen, claims)
	}
}

// TestTraceWriterJSONL decodes the sink's output and checks the schema
// documented in DESIGN.md §7.
func TestTraceWriterJSONL(t *testing.T) {
	shards, test := quickShards(t, 10)
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	engine, err := NewEngine(quickConfig(), shards, WithTestSet(test),
		WithRoundObserver(tw), WithMemSampling())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := engine.Run(MaxRounds(2)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		for _, key := range []string{"round", "select_ns", "train_ns", "aggregate_ns",
			"evaluate_ns", "total_ns", "rounds_per_sec", "workers", "mem_sampled"} {
			if _, ok := m[key]; !ok {
				t.Errorf("line %d missing %q: %s", i, key, line)
			}
		}
		if m["round"] != float64(i) {
			t.Errorf("line %d has round %v", i, m["round"])
		}
	}
	var s RoundStats
	if err := json.Unmarshal(lines[0], &s); err != nil {
		t.Fatalf("RoundStats round trip: %v", err)
	}
	if s.Total <= 0 || !s.MemSampled {
		t.Errorf("round-tripped stats lost data: %+v", s)
	}
}

// TestTraceWriterStickyError pins that a failing sink reports its first
// error and stops counting lines.
func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(failWriter{})
	tw.ObserveRound(RoundStats{Round: 0})
	tw.ObserveRound(RoundStats{Round: 1})
	if tw.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if tw.Lines() != 0 {
		t.Errorf("Lines = %d after failed writes, want 0", tw.Lines())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = errWriteType{}

type errWriteType struct{}

func (errWriteType) Error() string { return "sink closed" }

// TestTee pins the fan-out contract the -calibrate/-trace composition relies
// on: nils are skipped, a single live observer is returned unwrapped (no
// indirection on the hot path), and every live observer sees every record in
// order.
func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live observers must be nil")
	}
	var a, b []RoundStats
	fa := FuncObserver(func(s RoundStats) { a = append(a, s) })
	fb := FuncObserver(func(s RoundStats) { b = append(b, s) })
	if got := Tee(nil, fa); reflect.ValueOf(got).Pointer() != reflect.ValueOf(fa).Pointer() {
		t.Error("single live observer must be returned unwrapped")
	}
	tee := Tee(fa, nil, fb)
	for i := 0; i < 3; i++ {
		tee.ObserveRound(RoundStats{Round: i})
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("fan-out delivered %d/%d records, want 3/3", len(a), len(b))
	}
	for i := range a {
		if a[i].Round != i || b[i].Round != i {
			t.Errorf("record %d out of order: %d / %d", i, a[i].Round, b[i].Round)
		}
	}
}

// TestReadTraceRoundTrips pins the decoder against the writer: a TraceWriter
// stream decodes back to the observed records, blank lines are skipped,
// malformed lines error with their line number, and empty input is an empty
// (not error) result — callers wanting empty-is-error add their own check.
func TestReadTraceRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	want := []RoundStats{
		{Round: 0, Select: time.Millisecond, Train: 2 * time.Millisecond, Total: 4 * time.Millisecond},
		{Round: 1, Train: 3 * time.Millisecond, Dropped: 1, Total: 3 * time.Millisecond},
	}
	for _, s := range want {
		tw.ObserveRound(s)
	}
	buf.WriteString("\n   \n") // trailing blanks must be skipped
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Round != want[i].Round || got[i].Train != want[i].Train ||
			got[i].Dropped != want[i].Dropped || got[i].Total != want[i].Total {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	if _, err := ReadTrace(bytes.NewReader(nil)); err != nil {
		t.Errorf("empty input = %v, want nil error", err)
	}
	_, err = ReadTrace(bytes.NewReader([]byte("{\"round\":0}\nnot json")))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("line 2")) {
		t.Errorf("malformed line error = %v, want mention of line 2", err)
	}
}
