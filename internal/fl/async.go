package fl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// Asynchronous federated averaging (FedAsync-style): instead of synchronous
// rounds where K servers train in lockstep, every completed local training
// is applied to the global model immediately with a staleness-discounted
// mixing weight
//
//	ω ← (1 − α_s)·ω + α_s·ω_k,   α_s = α / (staleness + 1)
//
// where staleness counts how many global updates landed while client k was
// training. Asynchrony removes the synchronous-round straggler waste the
// heterogeneity ablation quantifies (the paper's Section II cites this
// line of work as the scheduling alternative).

// ErrAsync is returned (wrapped) for invalid async configurations.
var ErrAsync = errors.New("fl: invalid async config")

// AsyncConfig parameterizes an asynchronous run.
type AsyncConfig struct {
	// LocalEpochs is E, the local epochs per dispatched task.
	LocalEpochs int
	// LearningRate is the local SGD step size γ.
	LearningRate float64
	// Decay multiplies γ once per dispatched task.
	Decay float64
	// MixWeight is α, the base mixing weight of a fresh (staleness-0)
	// update. The synchronous mean with K=1 corresponds to α = 1.
	MixWeight float64
	// MaxStaleness drops updates older than this many global versions
	// (0 = never drop).
	MaxStaleness int
	// Activation selects the classifier head.
	Activation ml.Activation
	// Seed drives client scheduling.
	Seed uint64
}

// DefaultAsyncConfig mirrors the synchronous default's local work.
func DefaultAsyncConfig() AsyncConfig {
	return AsyncConfig{
		LocalEpochs:  40,
		LearningRate: 0.01,
		Decay:        0.99,
		MixWeight:    0.6,
		Activation:   ml.Softmax,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c AsyncConfig) Validate() error {
	if c.LocalEpochs < 1 {
		return fmt.Errorf("E=%d: %w", c.LocalEpochs, ErrAsync)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("learning rate %v: %w", c.LearningRate, ErrAsync)
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("decay %v: %w", c.Decay, ErrAsync)
	}
	if c.MixWeight <= 0 || c.MixWeight > 1 {
		return fmt.Errorf("mix weight %v outside (0,1]: %w", c.MixWeight, ErrAsync)
	}
	if c.MaxStaleness < 0 {
		return fmt.Errorf("max staleness %d: %w", c.MaxStaleness, ErrAsync)
	}
	return nil
}

// AsyncUpdate records one applied (or dropped) asynchronous update.
type AsyncUpdate struct {
	// Step is the global version after this update (1-based).
	Step int
	// Client is the edge server that trained.
	Client int
	// Staleness is how many global versions landed during its training.
	Staleness int
	// Applied is false when the update exceeded MaxStaleness.
	Applied bool
	// MixWeight is the effective α_s used (0 when dropped).
	MixWeight float64
	// TrainLoss is the global loss after the update (NaN when dropped and
	// no evaluation was performed).
	TrainLoss float64
	// TestAccuracy is the post-update accuracy (NaN without a test set).
	TestAccuracy float64
}

// AsyncEngine simulates asynchronous FL: a queue of in-flight local
// trainings completes in randomized order, each applying to the global
// model with a staleness discount. Completion order is drawn from the
// engine's RNG, so runs are deterministic per seed.
type AsyncEngine struct {
	cfg       AsyncConfig
	shards    []*dataset.Dataset
	global    *ml.Model
	test      *dataset.Dataset
	rng       *mat.RNG
	roundObs  RoundObserver
	sampleMem bool

	// inflight holds, per busy client, the global version it started from.
	inflight map[int]int
	version  int
	history  []AsyncUpdate
	tasks    int // dispatched tasks, drives decay
}

// NewAsyncEngine builds an engine over the shards; test may be nil.
func NewAsyncEngine(cfg AsyncConfig, shards []*dataset.Dataset, test *dataset.Dataset) (*AsyncEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards: %w", ErrAsync)
	}
	dim, classes := shards[0].Dim(), shards[0].Classes
	for i, s := range shards {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.Dim() != dim || s.Classes != classes {
			return nil, fmt.Errorf("shard %d shape mismatch: %w", i, ErrAsync)
		}
	}
	act := cfg.Activation
	if act == 0 {
		act = ml.Softmax
	}
	return &AsyncEngine{
		cfg:      cfg,
		shards:   shards,
		global:   ml.NewModel(classes, dim, act),
		test:     test,
		rng:      mat.NewRNG(cfg.Seed),
		inflight: make(map[int]int),
	}, nil
}

// Global returns the current global model.
func (e *AsyncEngine) Global() *ml.Model { return e.global }

// Version returns the number of applied global updates.
func (e *AsyncEngine) Version() int { return e.version }

// History returns all update records.
func (e *AsyncEngine) History() []AsyncUpdate { return e.history }

// SetRoundObserver attaches (or, with nil, detaches) a per-step
// observability sink. Each Step emits one RoundStats whose Round field is
// the step ordinal; a staleness-dropped update reports Dropped=1 and skips
// the train/aggregate/evaluate phases. Must not be called mid-Step.
func (e *AsyncEngine) SetRoundObserver(o RoundObserver) { e.roundObs = o }

// SetMemSampling toggles per-step memstats sampling (observed steps only).
func (e *AsyncEngine) SetMemSampling(on bool) { e.sampleMem = on }

// Step processes one completion: if no trainings are in flight, it first
// dispatches every idle client (all clients train continuously in the
// async model), then completes one uniformly at random.
func (e *AsyncEngine) Step() (AsyncUpdate, error) {
	obs := e.roundObs
	var pc PhaseClock
	if obs != nil {
		pc = NewPhaseClock(e.sampleMem)
	}
	// Keep every client busy: dispatch idle clients at the current version.
	for c := range e.shards {
		if _, busy := e.inflight[c]; !busy {
			e.inflight[c] = e.version
		}
	}
	// Complete a uniformly random in-flight task. Map iteration order is
	// not deterministic, so materialize and index via the RNG.
	busy := make([]int, 0, len(e.inflight))
	for c := range e.inflight {
		busy = append(busy, c)
	}
	sort.Ints(busy)
	client := busy[e.rng.Intn(len(busy))]
	startVersion := e.inflight[client]
	delete(e.inflight, client)

	staleness := e.version - startVersion
	upd := AsyncUpdate{
		Client:       client,
		Staleness:    staleness,
		TrainLoss:    math.NaN(),
		TestAccuracy: math.NaN(),
	}

	if obs != nil {
		pc.Lap(PhaseSelect)
	}

	if e.cfg.MaxStaleness > 0 && staleness > e.cfg.MaxStaleness {
		upd.Step = e.version
		e.history = append(e.history, upd)
		if obs != nil {
			st := pc.Finish(len(e.history) - 1)
			st.Workers = 1
			st.Dropped = 1
			obs.ObserveRound(st)
		}
		return upd, nil
	}

	// Local training from the (stale) snapshot the client actually had.
	// The model at dispatch time is approximated by the current global for
	// staleness 0 and by a staleness-discounted mix otherwise; training
	// always starts from the current global in this in-process simulation,
	// with the staleness discount applied at aggregation — the standard
	// FedAsync simulation shortcut.
	lr := e.cfg.LearningRate
	if e.cfg.Decay > 0 {
		lr *= math.Pow(e.cfg.Decay, float64(e.tasks))
	}
	e.tasks++
	local := e.global.Clone()
	sgd, err := ml.NewSGD(ml.SGDConfig{
		LearningRate: lr,
		Seed:         e.cfg.Seed ^ uint64(client)<<24 ^ uint64(e.tasks),
	})
	if err != nil {
		return AsyncUpdate{}, err
	}
	if _, err := sgd.Train(local, e.shards[client], e.cfg.LocalEpochs); err != nil {
		return AsyncUpdate{}, fmt.Errorf("async client %d: %w", client, err)
	}
	if obs != nil {
		pc.Lap(PhaseTrain)
	}

	alpha := e.cfg.MixWeight / float64(staleness+1)
	// ω ← (1−α)ω + α·ω_k
	e.global.Scale(1 - alpha)
	if err := e.global.AddScaled(alpha, local); err != nil {
		return AsyncUpdate{}, fmt.Errorf("async mix: %w", err)
	}
	e.version++
	if obs != nil {
		pc.Lap(PhaseAggregate)
	}

	upd.Applied = true
	upd.MixWeight = alpha
	upd.Step = e.version

	loss, err := e.globalLoss()
	if err != nil {
		return AsyncUpdate{}, err
	}
	upd.TrainLoss = loss
	if e.test != nil {
		acc, err := ml.Accuracy(e.global, e.test)
		if err != nil {
			return AsyncUpdate{}, err
		}
		upd.TestAccuracy = acc
	}
	if obs != nil {
		pc.Lap(PhaseEvaluate)
	}
	e.history = append(e.history, upd)
	if obs != nil {
		st := pc.Finish(len(e.history) - 1)
		st.Workers = 1
		obs.ObserveRound(st)
	}
	return upd, nil
}

// Run performs steps until the predicate over the history fires.
func (e *AsyncEngine) Run(stop func(history []AsyncUpdate) bool) ([]AsyncUpdate, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrAsync)
	}
	start := len(e.history)
	for !stop(e.history) {
		if _, err := e.Step(); err != nil {
			return e.history[start:], err
		}
	}
	return e.history[start:], nil
}

// globalLoss evaluates F(ω) over all shards, weighted by shard size.
func (e *AsyncEngine) globalLoss() (float64, error) {
	var weighted float64
	var total int
	for i, s := range e.shards {
		l, err := ml.Loss(e.global, s)
		if err != nil {
			return 0, fmt.Errorf("shard %d loss: %w", i, err)
		}
		weighted += l * float64(s.Len())
		total += s.Len()
	}
	return weighted / float64(total), nil
}

// MaxAsyncSteps stops after n steps (applied or dropped).
func MaxAsyncSteps(n int) func([]AsyncUpdate) bool {
	return func(h []AsyncUpdate) bool { return len(h) >= n }
}

// AsyncTargetAccuracy stops once an applied update reaches accuracy a.
func AsyncTargetAccuracy(a float64) func([]AsyncUpdate) bool {
	return func(h []AsyncUpdate) bool {
		return len(h) > 0 && h[len(h)-1].TestAccuracy >= a
	}
}
