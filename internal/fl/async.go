package fl

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// Asynchronous federated averaging (FedAsync-style): instead of synchronous
// rounds where K servers train in lockstep, every completed local training
// is applied to the global model immediately with a staleness-discounted
// mixing weight
//
//	ω ← (1 − α_s)·ω + α_s·ω_k,   α_s = α / (staleness + 1)
//
// where staleness counts how many global updates landed while client k was
// training. Asynchrony removes the synchronous-round straggler waste the
// heterogeneity ablation quantifies (the paper's Section II cites this
// line of work as the scheduling alternative).
//
// Completion order is driven by a deterministic virtual-time scheduler: each
// client owns a seeded duration stream (a per-client speed drawn once, a
// jitter factor drawn per dispatch) and completions pop off a min-heap keyed
// by (virtual time, client id). The order of applied versions — and
// therefore the global model — is a pure function of the seed, never of the
// worker-pool size or goroutine scheduling. Local training itself runs on
// the same bounded-pool / per-slot-scratch / atomic-commit architecture as
// Engine.Round; see DESIGN.md §7 "Async parity".

// ErrAsync is returned (wrapped) for invalid async configurations.
var ErrAsync = errors.New("fl: invalid async config")

// asyncSchedSalt decorrelates the virtual-time duration streams from the
// (seed, client, version) training streams that share cfg.Seed.
const asyncSchedSalt = 0xda3e39cb94b95bdb

// AsyncConfig parameterizes an asynchronous run.
type AsyncConfig struct {
	// LocalEpochs is E, the local epochs per dispatched task.
	LocalEpochs int
	// LearningRate is the local SGD step size γ at version 0.
	LearningRate float64
	// Decay schedules the learning rate against the global version: a task
	// dispatched at version v trains with γ·Decay^v. Zero disables decay.
	Decay float64
	// MixWeight is α, the base mixing weight of a fresh (staleness-0)
	// update. The synchronous mean with K=1 corresponds to α = 1.
	MixWeight float64
	// MaxStaleness drops updates older than this many global versions
	// (0 = never drop).
	MaxStaleness int
	// Activation selects the classifier head.
	Activation ml.Activation
	// Seed drives the virtual-time completion schedule and every client's
	// local training stream.
	Seed uint64
}

// DefaultAsyncConfig mirrors the synchronous default's local work.
func DefaultAsyncConfig() AsyncConfig {
	return AsyncConfig{
		LocalEpochs:  40,
		LearningRate: 0.01,
		Decay:        0.99,
		MixWeight:    0.6,
		Activation:   ml.Softmax,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c AsyncConfig) Validate() error {
	if c.LocalEpochs < 1 {
		return fmt.Errorf("E=%d: %w", c.LocalEpochs, ErrAsync)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("learning rate %v: %w", c.LearningRate, ErrAsync)
	}
	if math.IsInf(c.LearningRate, 0) || math.IsNaN(c.LearningRate) {
		return fmt.Errorf("learning rate %v: %w", c.LearningRate, ErrAsync)
	}
	if c.Decay < 0 || c.Decay > 1 || math.IsNaN(c.Decay) {
		return fmt.Errorf("decay %v: %w", c.Decay, ErrAsync)
	}
	if !(c.MixWeight > 0) || c.MixWeight > 1 {
		return fmt.Errorf("mix weight %v outside (0,1]: %w", c.MixWeight, ErrAsync)
	}
	if c.MaxStaleness < 0 {
		return fmt.Errorf("max staleness %d: %w", c.MaxStaleness, ErrAsync)
	}
	return nil
}

// AsyncUpdate records one applied (or dropped) asynchronous update.
type AsyncUpdate struct {
	// Step is the global version after this update (1-based).
	Step int
	// Client is the edge server that trained.
	Client int
	// Staleness is how many global versions landed during its training.
	Staleness int
	// Applied is false when the update exceeded MaxStaleness.
	Applied bool
	// MixWeight is the effective α_s used (0 when dropped).
	MixWeight float64
	// At is the virtual completion time of this update in scheduler units
	// (per-client seeded duration draws; see DESIGN.md §7 "Async parity").
	At float64
	// TrainLoss is the global loss after the update (NaN when dropped and
	// no evaluation was performed).
	TrainLoss float64
	// TestAccuracy is the post-update accuracy (NaN without a test set).
	TestAccuracy float64
}

// asyncEvent is one scheduled completion in the virtual-time queue.
type asyncEvent struct {
	at      float64
	client  int
	version int // global version at dispatch
}

// eventBefore orders the completion heap: virtual time first, client id as
// the deterministic tie-break.
func eventBefore(a, b asyncEvent) bool {
	return a.at < b.at || (a.at == b.at && a.client < b.client)
}

// asyncSlot carries one in-flight training's bookkeeping. worker records
// which pool worker trained the slot — observability only (WorkerClaims); it
// costs nothing to track, unlike a shared counter, which would have to be
// heap-allocated into the pool closure even on unobserved steps (same
// claims-tagging pattern as localResult).
type asyncSlot struct {
	worker int
	err    error
}

// AsyncOption customizes an AsyncEngine.
type AsyncOption func(*AsyncEngine)

// WithAsyncParallelism caps concurrent local-training workers; 1 forces
// sequential execution, 0 selects GOMAXPROCS. Results are bit-identical for
// every setting: a client's training stream is derived from
// (seed, client, version), never from which worker ran it.
func WithAsyncParallelism(n int) AsyncOption {
	return func(e *AsyncEngine) { e.parallel = n }
}

// WithAsyncEvalParallelism caps the workers used for post-update evaluation
// (global loss over the shards, accuracy over the test set); 1 forces
// sequential evaluation, 0 selects GOMAXPROCS. Results are bit-identical for
// every setting (shard-order and chunk-order reductions).
func WithAsyncEvalParallelism(n int) AsyncOption {
	return func(e *AsyncEngine) { e.evalParallel = n }
}

// AsyncEngine simulates asynchronous FL over a deterministic virtual-time
// scheduler: every client trains continuously; completions pop off a seeded
// event queue and each applies to the global model with a staleness
// discount.
//
// The steady-state Step is allocation-free with a nil observer: local
// training reuses per-client snapshot models and per-worker Reset-able SGDs
// (each owning its gradient accumulator and batched-forward chunk scratch),
// the event queue is a slice-backed heap that never grows past the fleet
// size, and the staleness-discounted mix lands in a scratch model that is
// committed only after evaluation succeeds — a failing step can never
// publish a half-applied global model.
type AsyncEngine struct {
	cfg          AsyncConfig
	shards       []*dataset.Dataset
	totalSamples int
	global       *ml.Model
	test         *dataset.Dataset
	roundObs     RoundObserver
	sampleMem    bool
	parallel     int
	evalParallel int

	// Virtual-time scheduler state. events is a min-heap over (at, client);
	// now is the time of the last popped completion; speed/durRNG hold each
	// client's seeded duration stream.
	events  []asyncEvent
	now     float64
	speed   []float64
	durRNG  []*mat.RNG
	started bool

	// Training scratch. locals holds each client's dispatch-time snapshot
	// (trained in place — indexed by client, the async analogue of the sync
	// engine's per-selection-slot models); dispatchV the version it was
	// dispatched at; pending the dispatched-but-untrained clients flushed
	// through the bounded pool at the start of every Step; sgds the
	// per-worker optimizers; slots the per-client worker/error tags.
	locals    []*ml.Model
	dispatchV []int
	pending   []int
	sgds      []*ml.SGD
	slots     []asyncSlot

	// Commit and evaluation scratch: the mix is formed and evaluated in
	// mixScratch and only then copied into global.
	mixScratch *ml.Model
	shardLoss  shardLossMap
	testEval   *ml.Evaluator

	version int
	history []AsyncUpdate
}

// NewAsyncEngine builds an engine over the shards; test may be nil.
func NewAsyncEngine(cfg AsyncConfig, shards []*dataset.Dataset, test *dataset.Dataset, opts ...AsyncOption) (*AsyncEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards: %w", ErrAsync)
	}
	dim, classes := shards[0].Dim(), shards[0].Classes
	for i, s := range shards {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.Dim() != dim || s.Classes != classes {
			return nil, fmt.Errorf("shard %d shape mismatch: %w", i, ErrAsync)
		}
	}
	act := cfg.Activation
	if act == 0 {
		act = ml.Softmax
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	e := &AsyncEngine{
		cfg:          cfg,
		shards:       shards,
		totalSamples: total,
		global:       ml.NewModel(classes, dim, act),
		test:         test,
		parallel:     runtime.GOMAXPROCS(0),
		evalParallel: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallel <= 0 {
		e.parallel = runtime.GOMAXPROCS(0)
	}
	if e.evalParallel <= 0 {
		e.evalParallel = runtime.GOMAXPROCS(0)
	}
	n := len(shards)
	e.locals = make([]*ml.Model, n)
	for c := range e.locals {
		e.locals[c] = ml.NewModel(classes, dim, act)
	}
	e.dispatchV = make([]int, n)
	e.pending = make([]int, 0, n)
	e.slots = make([]asyncSlot, n)
	e.events = make([]asyncEvent, 0, n)
	e.mixScratch = ml.NewModel(classes, dim, act)
	e.shardLoss.init(n)
	if test != nil {
		e.testEval = ml.NewEvaluator(e.evalParallel)
	}
	// Per-client duration streams, split off a dedicated scheduler RNG so
	// the completion schedule and the training streams never share draws.
	// Each client's mean task duration is fixed once in [0.5, 2.0) —
	// a 4× heterogeneity spread, the straggler population the paper's
	// Section II motivates asynchrony with.
	sched := mat.NewRNG(cfg.Seed ^ asyncSchedSalt)
	e.speed = make([]float64, n)
	e.durRNG = make([]*mat.RNG, n)
	for c := 0; c < n; c++ {
		e.durRNG[c] = sched.Split()
		e.speed[c] = 0.5 + 1.5*e.durRNG[c].Float64()
	}
	return e, nil
}

// Global returns the current global model.
func (e *AsyncEngine) Global() *ml.Model { return e.global }

// Version returns the number of applied global updates.
func (e *AsyncEngine) Version() int { return e.version }

// History returns all update records.
func (e *AsyncEngine) History() []AsyncUpdate { return e.history }

// SetRoundObserver attaches (or, with nil, detaches) a per-step
// observability sink. Each Step emits one RoundStats whose Round field is
// the step ordinal: the train phase covers the pool flush of pending local
// trainings (Workers/WorkerClaims report its fan-out), select the event-queue
// pop, aggregate the staleness-discounted mix, evaluate the post-update
// metrics. A staleness-dropped update reports Dropped=1 and skips the
// aggregate/evaluate phases. Must not be called mid-Step.
func (e *AsyncEngine) SetRoundObserver(o RoundObserver) { e.roundObs = o }

// SetMemSampling toggles per-step memstats sampling (observed steps only).
func (e *AsyncEngine) SetMemSampling(on bool) { e.sampleMem = on }

// dispatch hands client c the current global model: snapshot it into the
// client's local model, draw the task's virtual duration from the client's
// seeded stream, and schedule the completion. The client joins the pending
// list; its training runs on the worker pool at the start of the next Step.
func (e *AsyncEngine) dispatch(c int) error {
	if err := e.locals[c].CopyFrom(e.global); err != nil {
		return fmt.Errorf("dispatch client %d: %w", c, err)
	}
	e.dispatchV[c] = e.version
	dur := e.speed[c] * (0.5 + e.durRNG[c].Float64())
	e.pushEvent(asyncEvent{at: e.now + dur, client: c, version: e.version})
	e.pending = append(e.pending, c)
	return nil
}

// pushEvent inserts ev into the completion min-heap.
func (e *AsyncEngine) pushEvent(ev asyncEvent) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(e.events[i], e.events[parent]) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// popEvent removes and returns the earliest completion.
func (e *AsyncEngine) popEvent() asyncEvent {
	top := e.events[0]
	last := len(e.events) - 1
	e.events[0] = e.events[last]
	e.events = e.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && eventBefore(e.events[l], e.events[min]) {
			min = l
		}
		if r < last && eventBefore(e.events[r], e.events[min]) {
			min = r
		}
		if min == i {
			break
		}
		e.events[i], e.events[min] = e.events[min], e.events[i]
		i = min
	}
	return top
}

// trainLocal runs worker w's optimizer for E epochs over client c's shard,
// training the dispatch-time snapshot in place. The optimizer is reseeded
// from (seed, client, version) on every assignment, so the trajectory is
// identical whichever worker runs it and for any pool size; the learning
// rate decays against the global version the task was dispatched at.
func (e *AsyncEngine) trainLocal(w, c int) asyncSlot {
	v := e.dispatchV[c]
	lr := e.cfg.LearningRate
	if e.cfg.Decay > 0 {
		lr *= math.Pow(e.cfg.Decay, float64(v))
	}
	cfg := ml.SGDConfig{
		LearningRate: lr,
		Seed:         e.cfg.Seed ^ uint64(c)<<32 ^ uint64(v),
	}
	var err error
	if e.sgds[w] == nil {
		e.sgds[w], err = ml.NewSGD(cfg)
	} else {
		err = e.sgds[w].Reset(cfg)
	}
	if err != nil {
		return asyncSlot{worker: w, err: err}
	}
	if _, err := e.sgds[w].TrainFinal(e.locals[c], e.shards[c], e.cfg.LocalEpochs); err != nil {
		return asyncSlot{worker: w, err: err}
	}
	return asyncSlot{worker: w}
}

// flush trains every pending dispatch on the bounded worker pool. Workers
// claim pending slots off a shared atomic cursor; which worker trains which
// client is scheduling-dependent but harmless (see trainLocal). In steady
// state exactly one client is pending (the re-dispatch of the previous
// step's completion), so the flush runs inline and spawns nothing; the
// initial dispatch of the whole fleet — and any future batched dispatch —
// fans out across the pool.
func (e *AsyncEngine) flush(observed bool) (workers int, claims []int, err error) {
	n := len(e.pending)
	if n == 0 {
		return 0, nil, nil
	}
	workers = e.parallel
	if workers > n {
		workers = n
	}
	for len(e.sgds) < workers {
		e.sgds = append(e.sgds, nil)
	}
	if workers <= 1 {
		workers = 1
		for _, c := range e.pending {
			e.slots[c] = e.trainLocal(0, c)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					c := e.pending[i]
					e.slots[c] = e.trainLocal(w, c)
				}
			}(w)
		}
		wg.Wait()
	}
	// claims[w] counts the pending slots worker w trained — the pool
	// occupancy an observer sees. Built after the pool from the per-slot
	// worker tags so nothing observer-related is captured by (and therefore
	// heap-allocated into) the worker closure on unobserved steps.
	if observed {
		claims = make([]int, workers)
		for _, c := range e.pending {
			if e.slots[c].err == nil {
				claims[e.slots[c].worker]++
			}
		}
	}
	for _, c := range e.pending {
		if e.slots[c].err != nil {
			err = fmt.Errorf("async client %d: %w", c, e.slots[c].err)
			break
		}
	}
	e.pending = e.pending[:0]
	return workers, claims, err
}

// Step processes one virtual-time completion: flush any pending local
// trainings through the worker pool, pop the earliest completion off the
// event queue, and apply its staleness-discounted update.
//
// The update commits atomically: the mix is formed in a scratch model and
// evaluated there, and only if every stage succeeds are the global model,
// version counter, and history advanced together (and the client
// re-dispatched). A failed step leaves the model state exactly as it was.
func (e *AsyncEngine) Step() (AsyncUpdate, error) {
	// Observability is pay-for-use: with no observer attached the step
	// takes no timestamps and allocates nothing extra.
	obs := e.roundObs
	var pc PhaseClock
	if obs != nil {
		pc = NewPhaseClock(e.sampleMem)
	}
	// First step: every client starts training at version 0, time 0.
	if !e.started {
		e.started = true
		for c := range e.shards {
			if err := e.dispatch(c); err != nil {
				return AsyncUpdate{}, err
			}
		}
	}
	// Train phase: flush the pending dispatches. Every popped completion
	// was dispatched in an earlier Step, so its snapshot is trained by now.
	workers, claims, err := e.flush(obs != nil)
	if err != nil {
		return AsyncUpdate{}, err
	}
	if obs != nil {
		pc.Lap(PhaseTrain)
	}

	// Select phase: pop the earliest completion in virtual time.
	ev := e.popEvent()
	e.now = ev.at
	staleness := e.version - ev.version
	upd := AsyncUpdate{
		Client:       ev.client,
		Staleness:    staleness,
		At:           ev.at,
		TrainLoss:    math.NaN(),
		TestAccuracy: math.NaN(),
	}
	if obs != nil {
		pc.Lap(PhaseSelect)
	}

	if e.cfg.MaxStaleness > 0 && staleness > e.cfg.MaxStaleness {
		// Too stale: discard the trained update (the wasted local work is
		// the energy cost asynchrony pays here) and restart the client from
		// the current global.
		upd.Step = e.version
		if err := e.dispatch(ev.client); err != nil {
			return AsyncUpdate{}, err
		}
		e.history = append(e.history, upd)
		if obs != nil {
			st := pc.Finish(len(e.history) - 1)
			st.Workers = workers
			st.WorkerClaims = claims
			st.Dropped = 1
			obs.ObserveRound(st)
		}
		return upd, nil
	}

	// Aggregate phase: ω ← (1−α_s)·ω + α_s·ω_k in the scratch model; the
	// engine's state is untouched until the commit below.
	alpha := e.cfg.MixWeight / float64(staleness+1)
	if err := e.mixScratch.CopyFrom(e.global); err != nil {
		return AsyncUpdate{}, fmt.Errorf("async mix: %w", err)
	}
	e.mixScratch.Scale(1 - alpha)
	if err := e.mixScratch.AddScaled(alpha, e.locals[ev.client]); err != nil {
		return AsyncUpdate{}, fmt.Errorf("async mix: %w", err)
	}
	if obs != nil {
		pc.Lap(PhaseAggregate)
	}

	// Evaluate phase, still against the scratch model.
	loss, err := e.shardLoss.lossOf(e.mixScratch, e.shards, e.totalSamples, e.evalParallel)
	if err != nil {
		return AsyncUpdate{}, fmt.Errorf("async step %d: %w", e.version, err)
	}
	upd.TrainLoss = loss
	if e.test != nil {
		acc, err := e.testEval.Accuracy(e.mixScratch, e.test)
		if err != nil {
			return AsyncUpdate{}, fmt.Errorf("async step %d accuracy: %w", e.version, err)
		}
		upd.TestAccuracy = acc
	}
	if obs != nil {
		pc.Lap(PhaseEvaluate)
	}

	// Commit model, version, history, and the client's re-dispatch together.
	if err := e.global.CopyFrom(e.mixScratch); err != nil {
		return AsyncUpdate{}, fmt.Errorf("async commit: %w", err)
	}
	e.version++
	upd.Applied = true
	upd.MixWeight = alpha
	upd.Step = e.version
	if err := e.dispatch(ev.client); err != nil {
		return AsyncUpdate{}, err
	}
	e.history = append(e.history, upd)
	if obs != nil {
		st := pc.Finish(len(e.history) - 1)
		st.Workers = workers
		st.WorkerClaims = claims
		obs.ObserveRound(st)
	}
	return upd, nil
}

// Run performs steps until the predicate over the history fires.
func (e *AsyncEngine) Run(stop func(history []AsyncUpdate) bool) ([]AsyncUpdate, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrAsync)
	}
	start := len(e.history)
	for !stop(e.history) {
		if _, err := e.Step(); err != nil {
			return e.history[start:], err
		}
	}
	return e.history[start:], nil
}

// MaxAsyncSteps stops after n steps (applied or dropped).
func MaxAsyncSteps(n int) func([]AsyncUpdate) bool {
	return func(h []AsyncUpdate) bool { return len(h) >= n }
}

// AsyncTargetAccuracy stops once an applied update reaches accuracy a.
func AsyncTargetAccuracy(a float64) func([]AsyncUpdate) bool {
	return func(h []AsyncUpdate) bool {
		return len(h) > 0 && h[len(h)-1].TestAccuracy >= a
	}
}
