package fl

import (
	"fmt"
	"sync"

	"eefei/internal/dataset"
	"eefei/internal/ml"
)

// shardLossMap is the shard-parallel global-loss map-reduce shared by the
// synchronous Engine and the AsyncEngine: up to `workers` goroutines each own
// an ml.Evaluator (whose chunk-GEMM forward scratch is reused across rounds)
// and claim whole shards statically (worker w takes shards w, w+W, …); the
// weighted per-shard losses are reduced in shard order, so the value is
// bit-identical for every worker count. A min-work spawn gate
// (ml.GatedWorkers, à la mat.minRowsPerWorker) keeps tiny-shard evaluations
// sequential, where goroutine overhead would dominate the row work.
//
// The in-flight pass state (model, shards, worker count) lives on the struct
// rather than in closures so the sequential path — the one the async engine's
// 0-alloc Step pin exercises — performs no heap allocations after warm-up.
type shardLossMap struct {
	evals  []*ml.Evaluator
	losses []float64
	errs   []error

	// In-flight pass; valid only while lossOf runs.
	m       *ml.Model
	shards  []*dataset.Dataset
	workers int
}

// init sizes the per-shard reduction buffers for n shards.
func (s *shardLossMap) init(n int) {
	s.losses = make([]float64, n)
	s.errs = make([]error, n)
}

// lossOf evaluates the global objective F(ω) = Σ_k (n_k/n)·F_k(ω) of m over
// the shards, fanning out over at most `workers` goroutines (gated by total
// row work and the shard count).
func (s *shardLossMap) lossOf(m *ml.Model, shards []*dataset.Dataset, totalSamples, workers int) (float64, error) {
	workers = ml.GatedWorkers(totalSamples, workers)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers < 1 {
		workers = 1
	}
	for len(s.evals) < workers {
		s.evals = append(s.evals, ml.NewEvaluator(1))
	}
	s.m, s.shards, s.workers = m, shards, workers
	if workers == 1 {
		s.worker(0)
	} else {
		s.runParallel(workers)
	}
	s.m, s.shards = nil, nil
	var weighted float64
	for i, sh := range shards {
		if s.errs[i] != nil {
			return 0, fmt.Errorf("shard %d loss: %w", i, s.errs[i])
		}
		weighted += s.losses[i] * float64(sh.Len())
	}
	return weighted / float64(totalSamples), nil
}

// worker computes worker w's statically assigned shards of the in-flight
// pass. Static assignment gives each evaluator exactly one owner.
func (s *shardLossMap) worker(w int) {
	for i := w; i < len(s.shards); i += s.workers {
		s.losses[i], s.errs[i] = s.evals[w].Loss(s.m, s.shards[i])
	}
}

// runParallel fans the in-flight pass out over the given worker count. Kept
// out of line so the goroutine closures (and the WaitGroup) heap-allocate
// only when workers actually spawn; the sequential path stays
// allocation-free.
func (s *shardLossMap) runParallel(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w)
		}(w)
	}
	wg.Wait()
}
