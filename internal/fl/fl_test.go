package fl

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// quickShards builds a small federated setup: 2000 synthetic samples split
// IID across 10 servers, plus a test set.
func quickShards(t testing.TB, servers int) ([]*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 1000
	train, test, err := dataset.SynthesizePair(cfg, cfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, servers)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return shards, test
}

func quickConfig() Config {
	return Config{
		ClientsPerRound: 5,
		LocalEpochs:     5,
		LearningRate:    0.5,
		Decay:           0.99,
		Activation:      ml.Softmax,
		Seed:            1,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(*Config) {}, false},
		{"K zero", func(c *Config) { c.ClientsPerRound = 0 }, true},
		{"K above shards", func(c *Config) { c.ClientsPerRound = 11 }, true},
		{"E zero", func(c *Config) { c.LocalEpochs = 0 }, true},
		{"lr zero", func(c *Config) { c.LearningRate = 0 }, true},
		{"decay above one", func(c *Config) { c.Decay = 1.5 }, true},
		{"negative batch", func(c *Config) { c.BatchSize = -2 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := quickConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(10); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewEngineErrors(t *testing.T) {
	shards, _ := quickShards(t, 10)
	if _, err := NewEngine(quickConfig(), nil); !errors.Is(err, ErrConfig) {
		t.Errorf("no shards = %v, want ErrConfig", err)
	}
	// Mismatched shard shapes.
	bad := append([]*dataset.Dataset{}, shards...)
	other := &dataset.Dataset{X: mat.NewDense(5, 3), Labels: []int{0, 1, 0, 1, 0}, Classes: 2}
	bad[3] = other
	if _, err := NewEngine(quickConfig(), bad); !errors.Is(err, ErrConfig) {
		t.Errorf("mismatched shards = %v, want ErrConfig", err)
	}
}

func TestRoundBasics(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards, WithTestSet(test))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rec, err := e.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if rec.Round != 0 {
		t.Errorf("first round index = %d, want 0", rec.Round)
	}
	if len(rec.Selected) != 5 {
		t.Errorf("selected %d clients, want 5", len(rec.Selected))
	}
	if len(rec.LocalLosses) != 5 {
		t.Errorf("local losses = %d entries, want 5", len(rec.LocalLosses))
	}
	if math.IsNaN(rec.TestAccuracy) {
		t.Error("with a test set attached, accuracy must be reported")
	}
	if rec.LearningRate != 0.5 {
		t.Errorf("round-0 lr = %v, want 0.5", rec.LearningRate)
	}
	if e.Rounds() != 1 || len(e.History()) != 1 {
		t.Error("history bookkeeping wrong")
	}
}

func TestSelectionWithoutReplacement(t *testing.T) {
	shards, _ := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for r := 0; r < 5; r++ {
		rec, err := e.Round()
		if err != nil {
			t.Fatalf("Round: %v", err)
		}
		seen := make(map[int]bool)
		for _, c := range rec.Selected {
			if c < 0 || c >= 10 || seen[c] {
				t.Fatalf("round %d invalid selection %v", r, rec.Selected)
			}
			seen[c] = true
		}
	}
}

func TestLossDecreasesOverRounds(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards, WithTestSet(test))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	recs, err := e.Run(MaxRounds(15))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	first, last := recs[0], recs[len(recs)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("loss did not fall: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAccuracy <= first.TestAccuracy-0.01 {
		t.Errorf("accuracy regressed: %v -> %v", first.TestAccuracy, last.TestAccuracy)
	}
}

func TestFedAvgReachesGoodAccuracy(t *testing.T) {
	// The Fig.-4 substrate: federated training must reach solid test
	// accuracy on the synthetic digits.
	shards, test := quickShards(t, 10)
	cfg := quickConfig()
	cfg.LocalEpochs = 10
	e, err := NewEngine(cfg, shards, WithTestSet(test))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Run(AnyOf(TargetAccuracy(0.88), MaxRounds(60))); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := e.History()
	if final := h[len(h)-1].TestAccuracy; final < 0.85 {
		t.Errorf("final accuracy = %.3f after %d rounds, want >= 0.85", final, len(h))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []RoundRecord {
		shards, test := quickShards(t, 10)
		e, err := NewEngine(quickConfig(), shards, WithTestSet(test))
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		recs, err := e.Run(MaxRounds(5))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return recs
	}
	a, b := run(), run()
	for i := range a {
		if a[i].TrainLoss != b[i].TrainLoss || a[i].TestAccuracy != b[i].TestAccuracy {
			t.Fatalf("round %d diverged between identical runs", i)
		}
		for j := range a[i].Selected {
			if a[i].Selected[j] != b[i].Selected[j] {
				t.Fatalf("round %d selection diverged", i)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	shards, _ := quickShards(t, 10)
	runWith := func(parallel int) float64 {
		e, err := NewEngine(quickConfig(), shards, WithParallelism(parallel))
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		recs, err := e.Run(MaxRounds(3))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return recs[len(recs)-1].TrainLoss
	}
	if seq, par := runWith(1), runWith(8); seq != par {
		t.Errorf("parallel training diverged: seq %v vs par %v", seq, par)
	}
}

// TestRoundParallelBitIdentical is the engine-level equivalence pin: a fully
// sequential engine (one training worker, one eval worker) and a heavily
// pooled one must produce bit-identical histories — losses, accuracies, and
// per-client local losses — under the same seed. Mini-batch mode makes the
// check cover shuffle-stream placement too.
func TestRoundParallelBitIdentical(t *testing.T) {
	shards, test := quickShards(t, 10)
	for _, batch := range []int{0, 16} {
		run := func(train, eval int) []RoundRecord {
			cfg := quickConfig()
			cfg.BatchSize = batch
			e, err := NewEngine(cfg, shards, WithTestSet(test),
				WithParallelism(train), WithEvalParallelism(eval))
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			recs, err := e.Run(MaxRounds(4))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			return recs
		}
		seq, par := run(1, 1), run(8, 8)
		for i := range seq {
			if seq[i].TrainLoss != par[i].TrainLoss {
				t.Errorf("batch=%d round %d: TrainLoss seq %v != par %v", batch, i, seq[i].TrainLoss, par[i].TrainLoss)
			}
			if seq[i].TestAccuracy != par[i].TestAccuracy {
				t.Errorf("batch=%d round %d: TestAccuracy seq %v != par %v", batch, i, seq[i].TestAccuracy, par[i].TestAccuracy)
			}
			for j := range seq[i].LocalLosses {
				if seq[i].LocalLosses[j] != par[i].LocalLosses[j] {
					t.Errorf("batch=%d round %d client slot %d: local loss diverged", batch, i, j)
				}
			}
		}
	}
}

// TestGlobalLossParallelBitIdentical pins the shard map-reduce: the same
// trained model must evaluate to the exact same float for every eval worker
// count.
func TestGlobalLossParallelBitIdentical(t *testing.T) {
	shards, _ := quickShards(t, 10)
	lossWith := func(eval int) float64 {
		e, err := NewEngine(quickConfig(), shards, WithEvalParallelism(eval))
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := e.Run(MaxRounds(2)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		l, err := e.GlobalLoss()
		if err != nil {
			t.Fatalf("GlobalLoss: %v", err)
		}
		return l
	}
	want := lossWith(1)
	for _, eval := range []int{2, 3, 16} {
		if got := lossWith(eval); got != want {
			t.Errorf("GlobalLoss(eval=%d) = %v, want bit-identical %v", eval, got, want)
		}
	}
}

// corruptingAggregator scribbles into dst and then fails — the worst-case
// aggregator for commit atomicity.
type corruptingAggregator struct{}

func (corruptingAggregator) Aggregate(dst *ml.Model, _ []Update) error {
	dst.W.Fill(999)
	return errors.New("aggregator exploded")
}

// TestRoundCommitsAtomically: a failed round must leave the engine exactly
// as it was — model parameters, round counter, and history — even when the
// failing stage has already scribbled into the aggregation target.
func TestRoundCommitsAtomically(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards, WithTestSet(test))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Run(MaxRounds(2)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	before := e.Global().Clone()

	e.agg = corruptingAggregator{}
	if _, err := e.Round(); err == nil {
		t.Fatal("Round with failing aggregator must error")
	}
	if d := e.Global().ParamDistance(before); d != 0 {
		t.Errorf("failed round moved the global model by %v, want 0", d)
	}
	if e.Rounds() != 2 || len(e.History()) != 2 {
		t.Errorf("failed round advanced bookkeeping: rounds=%d history=%d, want 2/2", e.Rounds(), len(e.History()))
	}

	// The engine must still be able to complete rounds afterwards.
	e.agg = MeanAggregator{}
	rec, err := e.Round()
	if err != nil {
		t.Fatalf("Round after recovery: %v", err)
	}
	if rec.Round != 2 || e.Rounds() != 3 {
		t.Errorf("recovered round index = %d (rounds=%d), want 2 (3)", rec.Round, e.Rounds())
	}
}

func TestLearningRateDecaysPerRound(t *testing.T) {
	shards, _ := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	recs, err := e.Run(MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, rec := range recs {
		want := 0.5 * math.Pow(0.99, float64(i))
		if math.Abs(rec.LearningRate-want) > 1e-15 {
			t.Errorf("round %d lr = %v, want %v", i, rec.LearningRate, want)
		}
	}
}

func TestRoundRobinSelector(t *testing.T) {
	shards, _ := quickShards(t, 10)
	cfg := quickConfig()
	cfg.ClientsPerRound = 3
	e, err := NewEngine(cfg, shards, WithSelector(RoundRobinSelector{}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	r0, err := e.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	r1, err := e.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	want0, want1 := []int{0, 1, 2}, []int{3, 4, 5}
	for i := range want0 {
		if r0.Selected[i] != want0[i] || r1.Selected[i] != want1[i] {
			t.Fatalf("round-robin selections %v, %v; want %v, %v",
				r0.Selected, r1.Selected, want0, want1)
		}
	}
}

func TestObserverFires(t *testing.T) {
	shards, _ := quickShards(t, 10)
	var observed []int
	e, err := NewEngine(quickConfig(), shards, WithObserver(func(r RoundRecord) {
		observed = append(observed, r.Round)
	}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Run(MaxRounds(4)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(observed) != 4 || observed[3] != 3 {
		t.Errorf("observer saw %v, want [0 1 2 3]", observed)
	}
}

func TestStopConditions(t *testing.T) {
	h := []RoundRecord{{TrainLoss: 0.5, TestAccuracy: 0.8}}
	if !MaxRounds(1)(h) || MaxRounds(2)(h) {
		t.Error("MaxRounds wrong")
	}
	if !TargetAccuracy(0.8)(h) || TargetAccuracy(0.81)(h) {
		t.Error("TargetAccuracy wrong")
	}
	if !TargetLoss(0.5)(h) || TargetLoss(0.4)(h) {
		t.Error("TargetLoss wrong")
	}
	if !AnyOf(MaxRounds(5), TargetLoss(0.5))(h) {
		t.Error("AnyOf must fire when either condition holds")
	}
	if AnyOf()(h) {
		t.Error("empty AnyOf must not fire")
	}
	if TargetAccuracy(0.5)(nil) || TargetLoss(1)(nil) {
		t.Error("empty history must not satisfy target conditions")
	}
}

func TestRunNilStop(t *testing.T) {
	shards, _ := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Run(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil stop = %v, want ErrConfig", err)
	}
}

func TestMoreLocalEpochsFasterPerRoundProgress(t *testing.T) {
	// The paper's Fig. 4c/4d premise: larger E ⇒ fewer rounds to a given
	// loss. Compare loss after 5 rounds with E=1 vs E=10.
	lossAfter := func(localEpochs int) float64 {
		shards, _ := quickShards(t, 10)
		cfg := quickConfig()
		cfg.LocalEpochs = localEpochs
		e, err := NewEngine(cfg, shards)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		recs, err := e.Run(MaxRounds(5))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return recs[len(recs)-1].TrainLoss
	}
	small, large := lossAfter(1), lossAfter(10)
	if large >= small {
		t.Errorf("E=10 loss %v not better than E=1 loss %v after equal rounds", large, small)
	}
}
