package fl

import (
	"testing"

	"eefei/internal/mat"
)

func TestEnergyAwareSelectorPicksCheapest(t *testing.T) {
	s := EnergyAwareSelector{Samples: []int{500, 100, 300, 100, 900}}
	got := s.Select(nil, 5, 2, 0)
	// The two 100-sample servers (ids 1 and 3) must win.
	seen := map[int]bool{got[0]: true, got[1]: true}
	if !seen[1] || !seen[3] {
		t.Errorf("selected %v, want {1,3}", got)
	}
}

func TestEnergyAwareSelectorRotatesTies(t *testing.T) {
	s := EnergyAwareSelector{Samples: []int{100, 100, 100, 100}}
	first := s.Select(nil, 4, 2, 0)
	later := s.Select(nil, 4, 2, 2)
	same := first[0] == later[0] && first[1] == later[1]
	if same {
		t.Errorf("tie rotation inactive: round 0 %v vs round 2 %v", first, later)
	}
}

func TestEnergyAwareSelectorValidSet(t *testing.T) {
	s := EnergyAwareSelector{Samples: []int{5, 4, 3, 2, 1, 6, 7, 8}}
	for round := 0; round < 5; round++ {
		got := s.Select(nil, 8, 4, round)
		seen := make(map[int]bool)
		for _, id := range got {
			if id < 0 || id >= 8 || seen[id] {
				t.Fatalf("round %d: invalid selection %v", round, got)
			}
			seen[id] = true
		}
	}
}

func TestWeightedRandomSelectorDistribution(t *testing.T) {
	// Server 0 holds 10x the data of each other server; over many rounds it
	// must be selected far more often.
	s := WeightedRandomSelector{Samples: []int{1000, 100, 100, 100, 100}}
	rng := mat.NewRNG(1)
	counts := make([]int, 5)
	const rounds = 2000
	for r := 0; r < rounds; r++ {
		for _, id := range s.Select(rng, 5, 2, r) {
			counts[id]++
		}
	}
	if counts[0] < counts[1]*2 {
		t.Errorf("heavy server picked %d times vs %d — weighting inactive", counts[0], counts[1])
	}
}

func TestWeightedRandomSelectorNoDuplicates(t *testing.T) {
	s := WeightedRandomSelector{Samples: []int{1, 2, 3, 4, 5, 6}}
	rng := mat.NewRNG(2)
	for r := 0; r < 50; r++ {
		got := s.Select(rng, 6, 4, r)
		seen := make(map[int]bool)
		for _, id := range got {
			if id < 0 || id >= 6 || seen[id] {
				t.Fatalf("round %d: invalid selection %v", r, got)
			}
			seen[id] = true
		}
	}
}

func TestWeightedRandomSelectorFullSelection(t *testing.T) {
	s := WeightedRandomSelector{Samples: []int{3, 3, 3}}
	got := s.Select(mat.NewRNG(3), 3, 3, 0)
	if len(got) != 3 {
		t.Fatalf("full selection returned %v", got)
	}
}

func TestWeightedRandomSelectorMissingSamplesDefaults(t *testing.T) {
	// Shorter Samples than n must not panic; absent entries weigh 1.
	s := WeightedRandomSelector{Samples: []int{5}}
	got := s.Select(mat.NewRNG(4), 4, 2, 0)
	if len(got) != 2 {
		t.Fatalf("selection = %v", got)
	}
}

func TestEngineWithEnergyAwareSelector(t *testing.T) {
	shards, _ := quickShards(t, 10)
	samples := make([]int, len(shards))
	for i, s := range shards {
		samples[i] = s.Len()
	}
	e, err := NewEngine(quickConfig(), shards, WithSelector(EnergyAwareSelector{Samples: samples}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	recs, err := e.Run(MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recs[2].TrainLoss >= recs[0].TrainLoss {
		t.Error("energy-aware selection must still train")
	}
}
