package fl

import (
	"errors"
	"fmt"

	"eefei/internal/ml"
)

// ErrAggregate is returned (wrapped) when an aggregation cannot be formed.
var ErrAggregate = errors.New("fl: aggregation error")

// Update is one client's contribution to a round: its locally trained model
// and the size of the shard it trained on.
type Update struct {
	Client  int
	Model   *ml.Model
	Samples int
}

// Aggregator combines client updates into the next global model. The
// paper's Eq. (2) is the uniform mean (MeanAggregator); the classic
// McMahan-et-al. FedAvg weighting by n_k is WeightedAggregator. Both are
// exposed so experiments can quantify the difference (zero under the
// paper's equal-shard allocation).
type Aggregator interface {
	// Aggregate writes the combined parameters into dst (which the caller
	// pre-sizes to the model shape; previous contents are discarded).
	Aggregate(dst *ml.Model, updates []Update) error
}

// MeanAggregator implements the paper's Eq. (2): ω ← (1/K)·Σ ω_k.
type MeanAggregator struct{}

var _ Aggregator = MeanAggregator{}

// Aggregate implements Aggregator.
func (MeanAggregator) Aggregate(dst *ml.Model, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("no updates: %w", ErrAggregate)
	}
	dst.Zero()
	w := 1 / float64(len(updates))
	for _, u := range updates {
		if err := dst.AddScaled(w, u.Model); err != nil {
			return fmt.Errorf("mean of client %d: %w", u.Client, err)
		}
	}
	return nil
}

// WeightedAggregator weights each update by its shard size:
// ω ← Σ (n_k/n)·ω_k. With equal shards it coincides with MeanAggregator.
type WeightedAggregator struct{}

var _ Aggregator = WeightedAggregator{}

// Aggregate implements Aggregator.
func (WeightedAggregator) Aggregate(dst *ml.Model, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("no updates: %w", ErrAggregate)
	}
	total := 0
	for _, u := range updates {
		if u.Samples <= 0 {
			return fmt.Errorf("client %d reports %d samples: %w", u.Client, u.Samples, ErrAggregate)
		}
		total += u.Samples
	}
	dst.Zero()
	for _, u := range updates {
		if err := dst.AddScaled(float64(u.Samples)/float64(total), u.Model); err != nil {
			return fmt.Errorf("weighted mean of client %d: %w", u.Client, err)
		}
	}
	return nil
}

// TrimmedMeanAggregator drops the updates with the largest parameter
// distance from the coordinate-wise mean before averaging — a light
// robustness extension for deployments where a minority of edge servers may
// ship corrupted models (sensor faults, partial writes). Trim is the number
// of outliers removed from each round.
type TrimmedMeanAggregator struct {
	// Trim is how many of the most distant updates to discard. It must
	// leave at least one update.
	Trim int
}

var _ Aggregator = TrimmedMeanAggregator{}

// Aggregate implements Aggregator.
func (a TrimmedMeanAggregator) Aggregate(dst *ml.Model, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("no updates: %w", ErrAggregate)
	}
	if a.Trim < 0 || a.Trim >= len(updates) {
		return fmt.Errorf("trim %d of %d updates: %w", a.Trim, len(updates), ErrAggregate)
	}
	if a.Trim == 0 {
		return MeanAggregator{}.Aggregate(dst, updates)
	}
	// Mean of all updates.
	mean := ml.NewModel(dst.Classes(), dst.Features(), dst.Act)
	if err := (MeanAggregator{}).Aggregate(mean, updates); err != nil {
		return err
	}
	// Keep the len−Trim updates closest to the mean.
	type scored struct {
		u    Update
		dist float64
	}
	ss := make([]scored, len(updates))
	for i, u := range updates {
		ss[i] = scored{u: u, dist: u.Model.ParamDistance(mean)}
	}
	// Selection sort of the keepers (n is small — K ≤ tens).
	keep := len(updates) - a.Trim
	for i := 0; i < keep; i++ {
		minJ := i
		for j := i + 1; j < len(ss); j++ {
			if ss[j].dist < ss[minJ].dist {
				minJ = j
			}
		}
		ss[i], ss[minJ] = ss[minJ], ss[i]
	}
	kept := make([]Update, keep)
	for i := 0; i < keep; i++ {
		kept[i] = ss[i].u
	}
	return MeanAggregator{}.Aggregate(dst, kept)
}
