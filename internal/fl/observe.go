package fl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Per-round observability. The paper's contribution is an energy/time
// trade-off (Eq. 12 balances per-epoch compute B0·E against per-round upload
// B1), so the reproduction must be able to attribute wall-clock — and, when
// asked, heap traffic — to the individual phases of a coordination round.
// A RoundObserver receives one RoundStats per *completed* round; failed
// rounds leave no trace, matching the engines' atomic-commit semantics.
//
// The layer is strictly passive: observers see timings and counters only,
// never models or RNG state, so attaching one cannot perturb training.
// Same-seed runs with and without an observer are bit-identical (pinned by
// TestObserverDeterminism). With no observer attached the instrumented code
// paths collapse to a nil check — no clock reads, no allocations — keeping
// BenchmarkRoundTable2 at its committed ns/op and allocs/op pin.

// Phase identifies one stage of a federated round. The four phases map onto
// the paper's per-round activity segments (its waiting/download/train/upload
// energy phases live in internal/energy; these are the coordinator-side
// compute stages of this reproduction).
type Phase uint8

const (
	// PhaseSelect covers client selection plus per-round scratch sizing
	// (async: the virtual-time event-queue pop; networked: roster snapshot,
	// selection, and request encoding).
	PhaseSelect Phase = iota
	// PhaseTrain covers local training across the worker pool (async: the
	// flush of pending dispatches; networked: the request/reply exchange
	// with every selected edge, including in-round rejoin repair).
	PhaseTrain
	// PhaseAggregate covers building the update set and the aggregation
	// proper (paper Eq. 2; async: the staleness-discounted mix — skipped,
	// along with evaluate, on staleness-dropped steps).
	PhaseAggregate
	// PhaseEvaluate covers post-aggregation global loss and test accuracy.
	PhaseEvaluate
)

// String returns the lower-case phase name used in traces and logs.
func (p Phase) String() string {
	switch p {
	case PhaseSelect:
		return "select"
	case PhaseTrain:
		return "train"
	case PhaseAggregate:
		return "aggregate"
	case PhaseEvaluate:
		return "evaluate"
	}
	return "unknown"
}

// RoundStats is the observability record of one completed round. Durations
// serialize as integer nanoseconds (the _ns JSONL fields in DESIGN.md §7).
// Total is measured from round start to commit, so it also includes the
// commit/bookkeeping remainder: Total >= Select+Train+Aggregate+Evaluate.
type RoundStats struct {
	// Round is the zero-based round (synchronous engines) or step
	// (AsyncEngine) index.
	Round int `json:"round"`
	// Select, Train, Aggregate, Evaluate are the per-phase wall-clock
	// durations (see the Phase constants for exact boundaries).
	Select    time.Duration `json:"select_ns"`
	Train     time.Duration `json:"train_ns"`
	Aggregate time.Duration `json:"aggregate_ns"`
	Evaluate  time.Duration `json:"evaluate_ns"`
	// Total is the full round wall-clock, commit included.
	Total time.Duration `json:"total_ns"`
	// RoundsPerSec is 1/Total — the sustained round throughput this round
	// supports.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Workers is the training fan-out actually used (pool size after the
	// K cap; async: pool size of the step's pending-dispatch flush, 0 when
	// nothing was pending; networked: number of selected clients exchanged
	// with).
	Workers int `json:"workers"`
	// WorkerClaims is per-pool-worker occupancy: how many training slots
	// each worker claimed this round (synchronous: selection slots, sums to
	// K; async: pending dispatches flushed this step). Nil when the engine
	// has no pool (networked) or nothing was pending. The slice is only
	// valid for the duration of the ObserveRound call. Claims are the one
	// scheduling-dependent field: which worker trains which slot varies
	// with goroutine timing even though the trained models never do.
	WorkerClaims []int `json:"worker_claims,omitempty"`
	// MemSampled reports whether the engine sampled runtime.ReadMemStats
	// around the round (opt-in: SetMemSampling). The deltas below are
	// process-wide, so concurrent non-round work is included.
	MemSampled bool `json:"mem_sampled,omitempty"`
	// AllocBytes is the TotalAlloc delta across the round.
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// Mallocs is the Mallocs (heap object) delta across the round.
	Mallocs uint64 `json:"mallocs,omitempty"`
	// Dropped / Rejoins / Retries mirror the fault-tolerance telemetry of
	// the round record (networked rounds; for AsyncEngine, Dropped is 1
	// when the step's update was discarded for exceeding MaxStaleness).
	Dropped int `json:"dropped,omitempty"`
	Rejoins int `json:"rejoins,omitempty"`
	Retries int `json:"retries,omitempty"`
	// DownlinkBytes / UplinkBytes mirror the round record's measured
	// frame-byte counts (networked rounds only): coordinator→client
	// request bytes and client→coordinator reply bytes respectively.
	DownlinkBytes int64 `json:"downlink_bytes,omitempty"`
	UplinkBytes   int64 `json:"uplink_bytes,omitempty"`
	// The attempt/delivered pairs mirror the round record's datagram
	// transport counters (fldgram runs only): every packet transmission
	// the radio paid for vs the unique acknowledged packets, wire size
	// with datagram headers. attempted/delivered is the measured 1/p of
	// Eq. 4's geometric retransmission model.
	DownlinkAttemptBytes   int64 `json:"downlink_attempt_bytes,omitempty"`
	DownlinkDeliveredBytes int64 `json:"downlink_delivered_bytes,omitempty"`
	UplinkAttemptBytes     int64 `json:"uplink_attempt_bytes,omitempty"`
	UplinkDeliveredBytes   int64 `json:"uplink_delivered_bytes,omitempty"`
}

// PhaseDuration returns the duration recorded for phase p.
func (s RoundStats) PhaseDuration(p Phase) time.Duration {
	switch p {
	case PhaseSelect:
		return s.Select
	case PhaseTrain:
		return s.Train
	case PhaseAggregate:
		return s.Aggregate
	case PhaseEvaluate:
		return s.Evaluate
	}
	return 0
}

// RoundObserver receives per-round observability records. Implementations
// are called synchronously from the training loop after each commit, so slow
// observers lengthen the gap between rounds but never skew the per-phase
// timings (the clock stops before the call).
type RoundObserver interface {
	ObserveRound(RoundStats)
}

// FuncObserver adapts a plain function to the RoundObserver interface.
type FuncObserver func(RoundStats)

var _ RoundObserver = FuncObserver(nil)

// ObserveRound implements RoundObserver.
func (f FuncObserver) ObserveRound(s RoundStats) { f(s) }

// Tee fans each round record out to every non-nil observer in order — how a
// CLI attaches a trace writer and an energy calibrator to the same engine.
// Nil entries are skipped; with zero live observers Tee returns nil (so the
// engine keeps its no-observer fast path), and with exactly one it returns
// that observer unwrapped.
func Tee(obs ...RoundObserver) RoundObserver {
	live := make([]RoundObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeObserver(live)
}

type teeObserver []RoundObserver

// ObserveRound implements RoundObserver.
func (t teeObserver) ObserveRound(s RoundStats) {
	for _, o := range t {
		o.ObserveRound(s)
	}
}

// TraceWriter is a RoundObserver that appends one JSON line per round to w —
// the `-trace out.jsonl` sink of cmd/feisim and cmd/fedcoord (schema in
// DESIGN.md §7). It is safe for concurrent use by multiple engines; lines
// are written atomically under an internal mutex. Write errors are sticky:
// the first one stops further output and is reported by Err.
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
	err error
}

var _ RoundObserver = (*TraceWriter)(nil)

// NewTraceWriter returns a TraceWriter emitting JSONL records to w. The
// caller keeps ownership of w (and closes it, if it is a file).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// ObserveRound implements RoundObserver.
func (t *TraceWriter) ObserveRound(s RoundStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(s); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Lines returns how many records have been written.
func (t *TraceWriter) Lines() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first write error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadTrace decodes the JSONL a TraceWriter produced: one RoundStats per
// non-blank line. Malformed records are hard errors reporting the first bad
// line's number — a trace that half-parses silently would poison any energy
// accounting replayed from it.
func ReadTrace(r io.Reader) ([]RoundStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var stats []RoundStats
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s RoundStats
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		stats = append(stats, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return stats, nil
}

// PhaseClock accumulates the per-phase wall-clock of one in-flight round.
// The engines in this package and the networked coordinator in flnet keep
// one on the stack and only start it when an observer is attached, so the
// nil-observer path performs no clock or memstats reads.
type PhaseClock struct {
	sampleMem      bool
	start, mark    time.Time
	sel, train     time.Duration
	agg, eval      time.Duration
	mallocs0, buf0 uint64
}

// NewPhaseClock starts the round clock, optionally snapshotting memstats.
// runtime.ReadMemStats briefly stops the world, which is why allocation
// sampling is opt-in even with an observer attached.
func NewPhaseClock(sampleMem bool) PhaseClock {
	pc := PhaseClock{sampleMem: sampleMem}
	if sampleMem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		pc.mallocs0, pc.buf0 = ms.Mallocs, ms.TotalAlloc
	}
	now := time.Now()
	pc.start, pc.mark = now, now
	return pc
}

// Lap closes the current phase as p and opens the next one.
func (pc *PhaseClock) Lap(p Phase) {
	now := time.Now()
	d := now.Sub(pc.mark)
	pc.mark = now
	switch p {
	case PhaseSelect:
		pc.sel += d
	case PhaseTrain:
		pc.train += d
	case PhaseAggregate:
		pc.agg += d
	case PhaseEvaluate:
		pc.eval += d
	}
}

// Finish stops the clock and assembles the stats record for round.
func (pc *PhaseClock) Finish(round int) RoundStats {
	total := time.Since(pc.start)
	s := RoundStats{
		Round:     round,
		Select:    pc.sel,
		Train:     pc.train,
		Aggregate: pc.agg,
		Evaluate:  pc.eval,
		Total:     total,
	}
	if sec := total.Seconds(); sec > 0 {
		s.RoundsPerSec = 1 / sec
	}
	if pc.sampleMem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.MemSampled = true
		s.Mallocs = ms.Mallocs - pc.mallocs0
		s.AllocBytes = ms.TotalAlloc - pc.buf0
	}
	return s
}
