package fl

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/ml"
)

func modelWith(val float64) *ml.Model {
	m := ml.NewModel(2, 2, ml.Softmax)
	m.W.Fill(val)
	for i := range m.B {
		m.B[i] = val
	}
	return m
}

func TestMeanAggregator(t *testing.T) {
	dst := ml.NewModel(2, 2, ml.Softmax)
	updates := []Update{
		{Client: 0, Model: modelWith(1), Samples: 10},
		{Client: 1, Model: modelWith(3), Samples: 10},
	}
	if err := (MeanAggregator{}).Aggregate(dst, updates); err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if dst.W.At(0, 0) != 2 || dst.B[1] != 2 {
		t.Errorf("mean = %v / %v, want 2", dst.W.At(0, 0), dst.B[1])
	}
}

func TestMeanAggregatorEmpty(t *testing.T) {
	dst := ml.NewModel(2, 2, ml.Softmax)
	if err := (MeanAggregator{}).Aggregate(dst, nil); !errors.Is(err, ErrAggregate) {
		t.Errorf("empty = %v, want ErrAggregate", err)
	}
}

func TestWeightedAggregator(t *testing.T) {
	dst := ml.NewModel(2, 2, ml.Softmax)
	updates := []Update{
		{Client: 0, Model: modelWith(1), Samples: 30},
		{Client: 1, Model: modelWith(5), Samples: 10},
	}
	if err := (WeightedAggregator{}).Aggregate(dst, updates); err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	// (30·1 + 10·5)/40 = 2.
	if math.Abs(dst.W.At(1, 1)-2) > 1e-12 {
		t.Errorf("weighted mean = %v, want 2", dst.W.At(1, 1))
	}
}

func TestWeightedAggregatorEqualShardsMatchesMean(t *testing.T) {
	updates := []Update{
		{Client: 0, Model: modelWith(1), Samples: 7},
		{Client: 1, Model: modelWith(2), Samples: 7},
		{Client: 2, Model: modelWith(6), Samples: 7},
	}
	a := ml.NewModel(2, 2, ml.Softmax)
	b := ml.NewModel(2, 2, ml.Softmax)
	if err := (MeanAggregator{}).Aggregate(a, updates); err != nil {
		t.Fatalf("mean: %v", err)
	}
	if err := (WeightedAggregator{}).Aggregate(b, updates); err != nil {
		t.Fatalf("weighted: %v", err)
	}
	if a.ParamDistance(b) > 1e-12 {
		t.Error("equal shards must make weighted == mean (the paper's setting)")
	}
}

func TestWeightedAggregatorRejectsZeroSamples(t *testing.T) {
	dst := ml.NewModel(2, 2, ml.Softmax)
	updates := []Update{{Client: 0, Model: modelWith(1), Samples: 0}}
	if err := (WeightedAggregator{}).Aggregate(dst, updates); !errors.Is(err, ErrAggregate) {
		t.Errorf("zero samples = %v, want ErrAggregate", err)
	}
}

func TestTrimmedMeanDropsOutlier(t *testing.T) {
	dst := ml.NewModel(2, 2, ml.Softmax)
	updates := []Update{
		{Client: 0, Model: modelWith(1), Samples: 1},
		{Client: 1, Model: modelWith(1.2), Samples: 1},
		{Client: 2, Model: modelWith(0.9), Samples: 1},
		{Client: 3, Model: modelWith(1000), Samples: 1}, // corrupted
	}
	if err := (TrimmedMeanAggregator{Trim: 1}).Aggregate(dst, updates); err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if dst.W.At(0, 0) > 2 {
		t.Errorf("outlier survived: mean = %v", dst.W.At(0, 0))
	}
	want := (1 + 1.2 + 0.9) / 3
	if math.Abs(dst.W.At(0, 0)-want) > 1e-9 {
		t.Errorf("trimmed mean = %v, want %v", dst.W.At(0, 0), want)
	}
}

func TestTrimmedMeanValidation(t *testing.T) {
	dst := ml.NewModel(2, 2, ml.Softmax)
	one := []Update{{Client: 0, Model: modelWith(1), Samples: 1}}
	if err := (TrimmedMeanAggregator{Trim: 1}).Aggregate(dst, one); !errors.Is(err, ErrAggregate) {
		t.Errorf("trim-all = %v, want ErrAggregate", err)
	}
	if err := (TrimmedMeanAggregator{Trim: -1}).Aggregate(dst, one); !errors.Is(err, ErrAggregate) {
		t.Errorf("negative trim = %v, want ErrAggregate", err)
	}
	if err := (TrimmedMeanAggregator{Trim: 0}).Aggregate(dst, one); err != nil {
		t.Errorf("trim 0 must degrade to mean: %v", err)
	}
}

func TestEngineWithWeightedAggregator(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewEngine(quickConfig(), shards,
		WithTestSet(test), WithAggregator(WeightedAggregator{}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	recs, err := e.Run(MaxRounds(5))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recs[4].TrainLoss >= recs[0].TrainLoss {
		t.Error("weighted aggregation must still train")
	}
}

func TestEngineWithTrimmedAggregator(t *testing.T) {
	shards, _ := quickShards(t, 10)
	cfg := quickConfig()
	e, err := NewEngine(cfg, shards, WithAggregator(TrimmedMeanAggregator{Trim: 1}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	recs, err := e.Run(MaxRounds(5))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recs[4].TrainLoss >= recs[0].TrainLoss {
		t.Error("trimmed aggregation must still train")
	}
}

func TestFedProxTraining(t *testing.T) {
	shards, test := quickShards(t, 10)
	cfg := quickConfig()
	cfg.ProximalMu = 0.1
	e, err := NewEngine(cfg, shards, WithTestSet(test))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	recs, err := e.Run(MaxRounds(10))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recs[9].TrainLoss >= recs[0].TrainLoss {
		t.Error("FedProx must still reduce loss")
	}
}

func TestFedProxDampsDrift(t *testing.T) {
	// With a large µ the local models stay near the global snapshot, so the
	// post-round global step is smaller than plain FedAvg's.
	shards, _ := quickShards(t, 10)
	driftAfterOneRound := func(mu float64) float64 {
		cfg := quickConfig()
		cfg.ProximalMu = mu
		e, err := NewEngine(cfg, shards)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		before := e.Global().Clone()
		if _, err := e.Round(); err != nil {
			t.Fatalf("Round: %v", err)
		}
		return e.Global().ParamDistance(before)
	}
	plain := driftAfterOneRound(0)
	proximal := driftAfterOneRound(5)
	if proximal >= plain {
		t.Errorf("µ=5 drift %v not below plain drift %v", proximal, plain)
	}
}

func TestConfigRejectsNegativeMu(t *testing.T) {
	cfg := quickConfig()
	cfg.ProximalMu = -1
	if err := cfg.Validate(10); !errors.Is(err, ErrConfig) {
		t.Errorf("negative mu = %v, want ErrConfig", err)
	}
}
