package fl

import (
	"errors"
	"math"
	"testing"
)

func TestAsyncConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*AsyncConfig)
		wantErr bool
	}{
		{"default", func(*AsyncConfig) {}, false},
		{"zero epochs", func(c *AsyncConfig) { c.LocalEpochs = 0 }, true},
		{"zero lr", func(c *AsyncConfig) { c.LearningRate = 0 }, true},
		{"decay above one", func(c *AsyncConfig) { c.Decay = 2 }, true},
		{"zero mix", func(c *AsyncConfig) { c.MixWeight = 0 }, true},
		{"mix above one", func(c *AsyncConfig) { c.MixWeight = 1.5 }, true},
		{"negative staleness", func(c *AsyncConfig) { c.MaxStaleness = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultAsyncConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func asyncQuickConfig() AsyncConfig {
	return AsyncConfig{
		LocalEpochs:  5,
		LearningRate: 0.5,
		Decay:        0.995,
		MixWeight:    0.6,
		Seed:         1,
	}
}

func TestNewAsyncEngineErrors(t *testing.T) {
	if _, err := NewAsyncEngine(asyncQuickConfig(), nil, nil); !errors.Is(err, ErrAsync) {
		t.Errorf("no shards = %v, want ErrAsync", err)
	}
	cfg := asyncQuickConfig()
	cfg.LocalEpochs = 0
	shards, _ := quickShards(t, 4)
	if _, err := NewAsyncEngine(cfg, shards, nil); !errors.Is(err, ErrAsync) {
		t.Errorf("bad config = %v, want ErrAsync", err)
	}
}

func TestAsyncTrainingConverges(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, test)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	updates, err := e.Run(MaxAsyncSteps(60))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(updates) != 60 {
		t.Fatalf("updates = %d, want 60", len(updates))
	}
	first, last := updates[0], updates[len(updates)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("async loss did not fall: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAccuracy < 0.8 {
		t.Errorf("async accuracy = %v after 60 updates", last.TestAccuracy)
	}
}

func TestAsyncStalenessDiscount(t *testing.T) {
	shards, _ := quickShards(t, 10)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, nil)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	sawStale := false
	for i := 0; i < 40; i++ {
		upd, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !upd.Applied {
			t.Fatalf("update dropped with MaxStaleness=0: %+v", upd)
		}
		wantAlpha := 0.6 / float64(upd.Staleness+1)
		if math.Abs(upd.MixWeight-wantAlpha) > 1e-12 {
			t.Fatalf("mix weight %v for staleness %d, want %v",
				upd.MixWeight, upd.Staleness, wantAlpha)
		}
		if upd.Staleness > 0 {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("40 async steps over 10 clients should produce stale updates")
	}
}

func TestAsyncMaxStalenessDrops(t *testing.T) {
	shards, _ := quickShards(t, 10)
	cfg := asyncQuickConfig()
	cfg.MaxStaleness = 1
	e, err := NewAsyncEngine(cfg, shards, nil)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	dropped := 0
	for i := 0; i < 60; i++ {
		upd, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !upd.Applied {
			dropped++
			if upd.Staleness <= cfg.MaxStaleness {
				t.Fatalf("dropped update with staleness %d <= max %d", upd.Staleness, cfg.MaxStaleness)
			}
			if upd.MixWeight != 0 {
				t.Fatal("dropped update must carry zero mix weight")
			}
		}
	}
	if dropped == 0 {
		t.Error("MaxStaleness=1 over 10 clients should drop some updates")
	}
	// Version only counts applied updates.
	if e.Version() != 60-dropped {
		t.Errorf("version = %d, want %d", e.Version(), 60-dropped)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	run := func() float64 {
		shards, _ := quickShards(t, 8)
		e, err := NewAsyncEngine(asyncQuickConfig(), shards, nil)
		if err != nil {
			t.Fatalf("NewAsyncEngine: %v", err)
		}
		if _, err := e.Run(MaxAsyncSteps(20)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		h := e.History()
		return h[len(h)-1].TrainLoss
	}
	if run() != run() {
		t.Error("same-seed async runs must be identical")
	}
}

func TestAsyncRunNilStop(t *testing.T) {
	shards, _ := quickShards(t, 4)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, nil)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	if _, err := e.Run(nil); !errors.Is(err, ErrAsync) {
		t.Errorf("nil stop = %v, want ErrAsync", err)
	}
}

func TestAsyncTargetAccuracyStop(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, test)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	updates, err := e.Run(func(h []AsyncUpdate) bool {
		return AsyncTargetAccuracy(0.8)(h) || MaxAsyncSteps(150)(h)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	last := updates[len(updates)-1]
	if last.TestAccuracy < 0.8 && len(updates) < 150 {
		t.Errorf("stopped early at accuracy %v", last.TestAccuracy)
	}
}
