package fl

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"eefei/internal/ml"
)

func TestAsyncConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*AsyncConfig)
		wantErr bool
	}{
		{"default", func(*AsyncConfig) {}, false},
		{"zero epochs", func(c *AsyncConfig) { c.LocalEpochs = 0 }, true},
		{"zero lr", func(c *AsyncConfig) { c.LearningRate = 0 }, true},
		{"decay above one", func(c *AsyncConfig) { c.Decay = 2 }, true},
		{"zero mix", func(c *AsyncConfig) { c.MixWeight = 0 }, true},
		{"mix above one", func(c *AsyncConfig) { c.MixWeight = 1.5 }, true},
		{"negative staleness", func(c *AsyncConfig) { c.MaxStaleness = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultAsyncConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func asyncQuickConfig() AsyncConfig {
	return AsyncConfig{
		LocalEpochs:  5,
		LearningRate: 0.5,
		Decay:        0.995,
		MixWeight:    0.6,
		Seed:         1,
	}
}

func TestNewAsyncEngineErrors(t *testing.T) {
	if _, err := NewAsyncEngine(asyncQuickConfig(), nil, nil); !errors.Is(err, ErrAsync) {
		t.Errorf("no shards = %v, want ErrAsync", err)
	}
	cfg := asyncQuickConfig()
	cfg.LocalEpochs = 0
	shards, _ := quickShards(t, 4)
	if _, err := NewAsyncEngine(cfg, shards, nil); !errors.Is(err, ErrAsync) {
		t.Errorf("bad config = %v, want ErrAsync", err)
	}
}

func TestAsyncTrainingConverges(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, test)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	updates, err := e.Run(MaxAsyncSteps(60))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(updates) != 60 {
		t.Fatalf("updates = %d, want 60", len(updates))
	}
	first, last := updates[0], updates[len(updates)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("async loss did not fall: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if last.TestAccuracy < 0.8 {
		t.Errorf("async accuracy = %v after 60 updates", last.TestAccuracy)
	}
}

func TestAsyncStalenessDiscount(t *testing.T) {
	shards, _ := quickShards(t, 10)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, nil)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	sawStale := false
	for i := 0; i < 40; i++ {
		upd, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !upd.Applied {
			t.Fatalf("update dropped with MaxStaleness=0: %+v", upd)
		}
		wantAlpha := 0.6 / float64(upd.Staleness+1)
		if math.Abs(upd.MixWeight-wantAlpha) > 1e-12 {
			t.Fatalf("mix weight %v for staleness %d, want %v",
				upd.MixWeight, upd.Staleness, wantAlpha)
		}
		if upd.Staleness > 0 {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("40 async steps over 10 clients should produce stale updates")
	}
}

func TestAsyncMaxStalenessDrops(t *testing.T) {
	shards, _ := quickShards(t, 10)
	cfg := asyncQuickConfig()
	cfg.MaxStaleness = 1
	e, err := NewAsyncEngine(cfg, shards, nil)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	dropped := 0
	for i := 0; i < 60; i++ {
		upd, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !upd.Applied {
			dropped++
			if upd.Staleness <= cfg.MaxStaleness {
				t.Fatalf("dropped update with staleness %d <= max %d", upd.Staleness, cfg.MaxStaleness)
			}
			if upd.MixWeight != 0 {
				t.Fatal("dropped update must carry zero mix weight")
			}
		}
	}
	if dropped == 0 {
		t.Error("MaxStaleness=1 over 10 clients should drop some updates")
	}
	// Version only counts applied updates.
	if e.Version() != 60-dropped {
		t.Errorf("version = %d, want %d", e.Version(), 60-dropped)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	run := func() float64 {
		shards, _ := quickShards(t, 8)
		e, err := NewAsyncEngine(asyncQuickConfig(), shards, nil)
		if err != nil {
			t.Fatalf("NewAsyncEngine: %v", err)
		}
		if _, err := e.Run(MaxAsyncSteps(20)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		h := e.History()
		return h[len(h)-1].TrainLoss
	}
	if run() != run() {
		t.Error("same-seed async runs must be identical")
	}
}

// TestAsyncPoolBitIdentical is the async engine's pool-independence pin,
// mirroring TestRoundParallelBitIdentical: under one seed, worker counts
// {1, 2, 4, GOMAXPROCS} must yield byte-identical global weights and
// identical applied-version/staleness histories. The virtual-time event
// queue — not goroutine completion order — decides which update lands next,
// so the pool size can only change wall-clock, never the stream. MaxStaleness
// is set low enough that the matrix covers the drop path too.
func TestAsyncPoolBitIdentical(t *testing.T) {
	shards, test := quickShards(t, 10)
	cfg := asyncQuickConfig()
	cfg.MaxStaleness = 4
	run := func(workers int) ([]AsyncUpdate, *ml.Model) {
		e, err := NewAsyncEngine(cfg, shards, test,
			WithAsyncParallelism(workers), WithAsyncEvalParallelism(workers))
		if err != nil {
			t.Fatalf("NewAsyncEngine(workers=%d): %v", workers, err)
		}
		if _, err := e.Run(MaxAsyncSteps(30)); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return e.History(), e.Global()
	}
	refHist, refModel := run(1)
	drops := 0
	for _, u := range refHist {
		if !u.Applied {
			drops++
		}
	}
	if drops == 0 {
		t.Error("identity matrix should cover the staleness-drop path; none dropped")
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		hist, model := run(workers)
		if !reflect.DeepEqual(histNoNaN(refHist), histNoNaN(hist)) {
			t.Errorf("workers=%d: history diverged from sequential run", workers)
		}
		rw, mw := refModel.W.RawData(), model.W.RawData()
		for i := range rw {
			if math.Float64bits(rw[i]) != math.Float64bits(mw[i]) {
				t.Errorf("workers=%d: weight %d not bit-identical: %x vs %x",
					workers, i, math.Float64bits(rw[i]), math.Float64bits(mw[i]))
				break
			}
		}
		for i := range refModel.B {
			if math.Float64bits(refModel.B[i]) != math.Float64bits(model.B[i]) {
				t.Errorf("workers=%d: bias %d not bit-identical", workers, i)
				break
			}
		}
	}
}

// TestAsyncStepAllocationFree pins the steady-state hot path: once the fleet
// is dispatched and every scratch buffer is warm, a sequential Step with a
// nil observer performs zero heap allocations — local training reuses the
// per-client snapshot and the worker's Reset SGD, the event heap pops and
// pushes within capacity, the mix and both evaluations run in warm scratch.
func TestAsyncStepAllocationFree(t *testing.T) {
	shards, test := quickShards(t, 8)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, test,
		WithAsyncParallelism(1), WithAsyncEvalParallelism(1))
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatalf("warm-up Step: %v", err)
		}
	}
	const runs = 20
	// Pre-grow the history so append's amortized doubling — a bookkeeping
	// cost every engine in the repo accepts — stays out of the hot-path pin
	// (AllocsPerRun adds one warm-up call on top of runs).
	h := make([]AsyncUpdate, len(e.history), len(e.history)+runs+8)
	copy(h, e.history)
	e.history = h
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %v per run, want 0", allocs)
	}
}

// FuzzAsyncConfig drives arbitrary configurations through validation and a
// short run: invalid configs must wrap ErrAsync from both Validate and
// NewAsyncEngine, valid ones must survive six steps without panicking or
// producing non-finite weights, and every applied update must carry the
// exact staleness discount α/(s+1).
func FuzzAsyncConfig(f *testing.F) {
	shards, _ := quickShards(f, 4)
	// Seed corpus: the quick config, plain FedAsync corners (no decay, full
	// mix, tight staleness bound), and representative invalid configs.
	f.Add(5, 0.5, 0.995, 0.6, 0, uint64(1))
	f.Add(1, 0.01, 0.0, 1.0, 3, uint64(42))
	f.Add(2, 1.0, 1.0, 0.25, 1, uint64(7))
	f.Add(0, -1.0, 2.0, 0.0, -1, uint64(0))
	f.Add(5, math.Inf(1), 0.5, 0.5, 0, uint64(3))
	f.Fuzz(func(t *testing.T, epochs int, lr, decay, mix float64, maxStale int, seed uint64) {
		cfg := AsyncConfig{
			LocalEpochs:  epochs,
			LearningRate: lr,
			Decay:        decay,
			MixWeight:    mix,
			MaxStaleness: maxStale,
			Seed:         seed,
		}
		verr := cfg.Validate()
		e, nerr := NewAsyncEngine(cfg, shards, nil)
		if verr != nil {
			if !errors.Is(verr, ErrAsync) {
				t.Fatalf("invalid config error %v does not wrap ErrAsync", verr)
			}
			if !errors.Is(nerr, ErrAsync) {
				t.Fatalf("NewAsyncEngine accepted a config Validate rejects: %v", nerr)
			}
			return
		}
		if nerr != nil {
			t.Fatalf("NewAsyncEngine rejected a valid config: %v", nerr)
		}
		// Bound the run's cost (huge epoch counts) and keep the optimizer in
		// its numerically sane regime (softmax logits overflow by design at
		// extreme step sizes) without weakening the validation check above.
		if cfg.LocalEpochs > 6 || cfg.LearningRate > 2 {
			if cfg.LocalEpochs > 6 {
				cfg.LocalEpochs = 6
			}
			if cfg.LearningRate > 2 {
				cfg.LearningRate = 2
			}
			var err error
			e, err = NewAsyncEngine(cfg, shards, nil)
			if err != nil {
				t.Fatalf("clamped config rejected: %v", err)
			}
		}
		applied := 0
		for i := 0; i < 6; i++ {
			upd, err := e.Step()
			if err != nil {
				t.Fatalf("Step %d: %v", i, err)
			}
			if upd.Applied {
				applied++
				want := cfg.MixWeight / float64(upd.Staleness+1)
				if upd.MixWeight != want {
					t.Fatalf("step %d: mix %v for staleness %d, want %v",
						i, upd.MixWeight, upd.Staleness, want)
				}
				if math.IsNaN(upd.TrainLoss) || math.IsInf(upd.TrainLoss, 0) {
					t.Fatalf("step %d: non-finite loss %v", i, upd.TrainLoss)
				}
			} else if cfg.MaxStaleness == 0 {
				t.Fatalf("step %d dropped with MaxStaleness=0", i)
			}
		}
		if e.Version() != applied {
			t.Fatalf("version %d != applied count %d", e.Version(), applied)
		}
		for _, w := range e.Global().W.RawData() {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("non-finite weight %v", w)
			}
		}
		for _, b := range e.Global().B {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				t.Fatalf("non-finite bias %v", b)
			}
		}
	})
}

func TestAsyncRunNilStop(t *testing.T) {
	shards, _ := quickShards(t, 4)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, nil)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	if _, err := e.Run(nil); !errors.Is(err, ErrAsync) {
		t.Errorf("nil stop = %v, want ErrAsync", err)
	}
}

func TestAsyncTargetAccuracyStop(t *testing.T) {
	shards, test := quickShards(t, 10)
	e, err := NewAsyncEngine(asyncQuickConfig(), shards, test)
	if err != nil {
		t.Fatalf("NewAsyncEngine: %v", err)
	}
	updates, err := e.Run(func(h []AsyncUpdate) bool {
		return AsyncTargetAccuracy(0.8)(h) || MaxAsyncSteps(150)(h)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	last := updates[len(updates)-1]
	if last.TestAccuracy < 0.8 && len(updates) < 150 {
		t.Errorf("stopped early at accuracy %v", last.TestAccuracy)
	}
}
