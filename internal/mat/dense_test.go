package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = %d,%d, want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseData(t *testing.T) {
	m, err := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewDenseData: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewDenseData(2, 2, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short data error = %v, want ErrShape", err)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Errorf("At(1,2) = %v, want 42", got)
	}
	if got := m.Row(1)[2]; got != 42 {
		t.Errorf("Row(1)[2] = %v, want 42", got)
	}
}

func TestRowAliases(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(0)[1] = 7
	if m.At(0, 1) != 7 {
		t.Error("Row should alias matrix storage")
	}
}

func TestSetRow(t *testing.T) {
	m := NewDense(2, 3)
	if err := m.SetRow(1, []float64{1, 2, 3}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if m.At(1, 1) != 2 {
		t.Errorf("At(1,1) = %v, want 2", m.At(1, 1))
	}
	if err := m.SetRow(0, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("SetRow short = %v, want ErrShape", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewDense(2, 2)
	src.Fill(3)
	dst := NewDense(2, 2)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if dst.At(1, 1) != 3 {
		t.Errorf("At(1,1) = %v, want 3", dst.At(1, 1))
	}
	bad := NewDense(1, 2)
	if err := bad.CopyFrom(src); !errors.Is(err, ErrShape) {
		t.Errorf("CopyFrom mismatched = %v, want ErrShape", err)
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewDense(2, 2)
	a.Fill(2)
	b := NewDense(2, 2)
	b.Fill(1)
	a.Scale(3) // 6
	if err := a.Add(b); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if a.At(0, 0) != 7 {
		t.Errorf("after scale+add got %v, want 7", a.At(0, 0))
	}
	if err := a.Sub(b); err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if a.At(1, 1) != 6 {
		t.Errorf("after sub got %v, want 6", a.At(1, 1))
	}
	if err := a.AddScaled(1, NewDense(1, 1)); !errors.Is(err, ErrShape) {
		t.Errorf("AddScaled mismatched = %v, want ErrShape", err)
	}
}

func TestApply(t *testing.T) {
	m := NewDense(1, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.Apply(func(x float64) float64 { return x * x })
	want := []float64{1, 4, 9}
	for j, w := range want {
		if m.At(0, j) != w {
			t.Errorf("At(0,%d) = %v, want %v", j, m.At(0, j), w)
		}
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	if err := m.MulVec(dst, []float64{1, 1, 1}); err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", dst)
	}
	if err := m.MulVec(dst, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec bad len = %v, want ErrShape", err)
	}
}

func TestMulVecT(t *testing.T) {
	m, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	if err := m.MulVecT(dst, []float64{1, 1}); err != nil {
		t.Fatalf("MulVecT: %v", err)
	}
	want := []float64{5, 7, 9}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("MulVecT[%d] = %v, want %v", i, dst[i], w)
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewDense(2, 2)
	if err := Mul(dst, a, b); err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if dst.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, dst.At(i, j), want[i][j])
			}
		}
	}
	if err := Mul(dst, b, b); !errors.Is(err, ErrShape) {
		t.Errorf("Mul incompatible = %v, want ErrShape", err)
	}
}

func TestMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(7)
	a := randomDense(rng, 4, 6)
	b := randomDense(rng, 5, 6)
	got := NewDense(4, 5)
	if err := MulT(got, a, b); err != nil {
		t.Fatalf("MulT: %v", err)
	}
	want := NewDense(4, 5)
	if err := Mul(want, a, b.Transpose()); err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !got.Equal(want, 1e-12) {
		t.Error("MulT does not match Mul with explicit transpose")
	}
}

func TestMulTAMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(8)
	a := randomDense(rng, 6, 4)
	b := randomDense(rng, 6, 5)
	got := NewDense(4, 5)
	if err := MulTA(got, a, b); err != nil {
		t.Fatalf("MulTA: %v", err)
	}
	want := NewDense(4, 5)
	if err := Mul(want, a.Transpose(), b); err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !got.Equal(want, 1e-12) {
		t.Error("MulTA does not match Mul with explicit transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(9)
	m := randomDense(rng, 3, 7)
	if !m.Transpose().Transpose().Equal(m, 0) {
		t.Error("transpose twice must be identity")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := NewDenseData(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestStringForms(t *testing.T) {
	small := NewDense(1, 2)
	if s := small.String(); s == "" {
		t.Error("small String empty")
	}
	big := NewDense(100, 100)
	if s := big.String(); s == "" {
		t.Error("big String empty")
	}
}

// Property: matrix multiplication is associative within tolerance.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := randomDense(rng, 3, 4)
		b := randomDense(rng, 4, 5)
		c := randomDense(rng, 5, 2)
		ab := NewDense(3, 5)
		bc := NewDense(4, 2)
		left := NewDense(3, 2)
		right := NewDense(3, 2)
		if err := Mul(ab, a, b); err != nil {
			return false
		}
		if err := Mul(left, ab, c); err != nil {
			return false
		}
		if err := Mul(bc, b, c); err != nil {
			return false
		}
		if err := Mul(right, a, bc); err != nil {
			return false
		}
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: (A·x) computed by MulVec equals column of Mul against a 1-column
// matrix.
func TestMulVecConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := randomDense(rng, 5, 3)
		x := randomVec(rng, 3)
		viaVec := make([]float64, 5)
		if err := a.MulVec(viaVec, x); err != nil {
			return false
		}
		xm, _ := NewDenseData(3, 1, Clone(x))
		prod := NewDense(5, 1)
		if err := Mul(prod, a, xm); err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			if math.Abs(viaVec[i]-prod.At(i, 0)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomDense(rng *RNG, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormScaled(0, 1)
	}
	return m
}

func randomVec(rng *RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormScaled(0, 1)
	}
	return v
}
