package mat

import "sync"

// Cache-blocked and optionally parallel matrix kernels.
//
// Blocking tiles the shared operand so it is re-streamed from L1/L2 instead
// of main memory; parallel variants split output rows across workers. Both
// transformations preserve the per-element accumulation order (k ascending
// for every dst element, each output row owned by exactly one goroutine), so
// results are bit-for-bit identical between the sequential and parallel
// paths and across worker counts — the determinism contract the federated
// engine's equivalence tests pin.

const (
	// gemmBlockK is the number of B rows per panel; 64 rows × up to
	// gemmBlockJ cols of float64 fit comfortably in L2 alongside dst rows.
	gemmBlockK = 64
	// gemmBlockJ is the output-column tile width: 256 float64 = 2 KiB per
	// row slice, small enough that a dst row tile stays in L1 across the
	// whole k panel.
	gemmBlockJ = 256
	// minRowsPerWorker gates goroutine spawn: below this many output rows
	// per worker the synchronization overhead outweighs the parallelism.
	minRowsPerWorker = 8
)

// parallelRows invokes fn over a disjoint cover of [0, rows) from workers
// goroutines and waits for completion. workers <= 1 (or a row count too
// small to amortize spawn cost) degrades to a single inline call.
func parallelRows(rows, workers int, fn func(lo, hi int)) {
	if workers > rows/minRowsPerWorker {
		workers = rows / minRowsPerWorker
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRange computes dst rows [lo, hi) of dst = A·B with k- and j-blocking.
// Rows of dst in the range must be pre-zeroed.
func gemmRange(dst, a, b *Dense, lo, hi int) {
	for jc := 0; jc < b.cols; jc += gemmBlockJ {
		jHi := jc + gemmBlockJ
		if jHi > b.cols {
			jHi = b.cols
		}
		for kc := 0; kc < a.cols; kc += gemmBlockK {
			kHi := kc + gemmBlockK
			if kHi > a.cols {
				kHi = a.cols
			}
			for i := lo; i < hi; i++ {
				dstRow := dst.Row(i)[jc:jHi]
				aRow := a.Row(i)
				for k := kc; k < kHi; k++ {
					Axpy(dstRow, aRow[k], b.Row(k)[jc:jHi])
				}
			}
		}
	}
}

// MulWorkers computes dst = A·B using the cache-blocked kernel with output
// rows split across up to workers goroutines (workers <= 1 runs inline; 0 is
// treated as 1). Shapes follow Mul; dst must not alias A or B. The result is
// bit-identical to Mul for any worker count.
func MulWorkers(dst, a, b *Dense, workers int) error {
	if err := mulShapeCheck(dst, a, b); err != nil {
		return err
	}
	dst.Zero()
	parallelRows(a.rows, workers, func(lo, hi int) {
		gemmRange(dst, a, b, lo, hi)
	})
	return nil
}

// MulVecWorkers computes dst = M·x with rows split across up to workers
// goroutines. Shapes follow MulVec; dst may not alias x. The result is
// bit-identical to MulVec for any worker count.
func (m *Dense) MulVecWorkers(dst, x []float64, workers int) error {
	if len(x) != m.cols || len(dst) != m.rows {
		return mulVecShapeError(m, dst, x)
	}
	parallelRows(m.rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(m.Row(i), x)
		}
	})
	return nil
}
