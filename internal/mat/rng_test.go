package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions across 64 draws from distinct seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance = %v, want ≈%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d of 7 values seen", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(6)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want ≈1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := NewRNG(7)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(10, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.1 {
		t.Errorf("NormScaled mean = %v, want ≈10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := NewRNG(9)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample len = %d, want 4", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	// Full sample is a permutation.
	if got := r.Sample(5, 5); len(got) != 5 {
		t.Errorf("Sample(5,5) len = %d", len(got))
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3,4) must panic")
		}
	}()
	NewRNG(1).Sample(3, 4)
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(10)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(>1) must be true")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(11)
	n := 30000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(2)
		if v < 0 {
			t.Fatalf("Exponential < 0: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(2) mean = %v, want ≈0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) must panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(12)
	child := parent.Split()
	// The two streams should not be identical.
	same := 0
	for i := 0; i < 32; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between parent and child streams", same)
	}
}

func TestReseedMatchesNewRNG(t *testing.T) {
	r := NewRNG(99)
	r.Norm() // leave a cached Gaussian spare behind
	r.Reseed(1234)
	fresh := NewRNG(1234)
	for i := 0; i < 32; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatal("Reseed must reproduce NewRNG's stream exactly")
		}
	}
	r.Reseed(7)
	fresh = NewRNG(7)
	if r.Norm() != fresh.Norm() {
		t.Error("Reseed must discard the cached Gaussian spare")
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a, b := NewRNG(13), NewRNG(13)
	buf := make([]int, 17)
	for trial := 0; trial < 10; trial++ {
		p := a.Perm(17)
		b.PermInto(buf)
		for i := range p {
			if p[i] != buf[i] {
				t.Fatalf("trial %d: PermInto %v != Perm %v", trial, buf, p)
			}
		}
	}
}

// chiSquareCritical approximates the upper critical value of the χ²
// distribution via Wilson–Hilferty; z=3.09 corresponds to p ≈ 0.001.
func chiSquareCritical(df int) float64 {
	d := float64(df)
	const z = 3.09
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// chiSquareStat computes Σ (obs−exp)²/exp for equiprobable cells.
func chiSquareStat(counts []int, trials int) float64 {
	exp := float64(trials) / float64(len(counts))
	var stat float64
	for _, c := range counts {
		d := float64(c) - exp
		stat += d * d / exp
	}
	return stat
}

// TestIntnChiSquareSmall checks uniformity of Intn over small non-power-of-
// two bounds, the regime every client-selection draw lives in.
func TestIntnChiSquareSmall(t *testing.T) {
	for _, n := range []int{3, 7, 10, 23} {
		r := NewRNG(uint64(100 + n))
		const trials = 100000
		counts := make([]int, n)
		for i := 0; i < trials; i++ {
			counts[r.Intn(n)]++
		}
		if stat, crit := chiSquareStat(counts, trials), chiSquareCritical(n-1); stat > crit {
			t.Errorf("Intn(%d) χ² = %.1f > critical %.1f", n, stat, crit)
		}
	}
}

// TestIntnChiSquareHugeBound is the regression test for the modulo-bias bug
// class: with n = 3·2⁶¹, reducing Uint64 modulo n gives the three thirds of
// [0, n) probabilities 3/8, 3/8, 2/8 instead of 1/3 each (χ² ≈ 0.031·trials,
// astronomically over critical), while an unbiased bound keeps them
// equiprobable. Small-n bias is ~n/2⁶⁴ and invisible to any sampling test,
// so this is the bound where the bug class is actually falsifiable.
func TestIntnChiSquareHugeBound(t *testing.T) {
	const third = 1 << 61
	r := NewRNG(42)
	const trials = 30000
	var counts [3]int
	for i := 0; i < trials; i++ {
		counts[r.Intn(3*third)/third]++
	}
	if stat, crit := chiSquareStat(counts[:], trials), chiSquareCritical(2); stat > crit {
		t.Errorf("Intn(3<<61) χ² = %.1f > critical %.1f (counts %v): modulo-bias regression",
			stat, crit, counts)
	}
}

// TestPermChiSquare checks that every position of Perm(n) is marginally
// uniform over the n values.
func TestPermChiSquare(t *testing.T) {
	const n, trials = 6, 60000
	r := NewRNG(77)
	counts := make([][]int, n) // counts[pos][value]
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for i := 0; i < trials; i++ {
		for pos, v := range r.Perm(n) {
			counts[pos][v]++
		}
	}
	crit := chiSquareCritical(n - 1)
	for pos := range counts {
		if stat := chiSquareStat(counts[pos], trials); stat > crit {
			t.Errorf("Perm(%d) position %d χ² = %.1f > critical %.1f", n, pos, stat, crit)
		}
	}
}

// TestSampleChiSquare checks that every position of Sample(n, k) is
// marginally uniform over [0, n) — the property client selection relies on.
func TestSampleChiSquare(t *testing.T) {
	const n, k, trials = 10, 4, 60000
	r := NewRNG(88)
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	membership := make([]int, n)
	for i := 0; i < trials; i++ {
		for pos, v := range r.Sample(n, k) {
			counts[pos][v]++
			membership[v]++
		}
	}
	crit := chiSquareCritical(n - 1)
	for pos := range counts {
		if stat := chiSquareStat(counts[pos], trials); stat > crit {
			t.Errorf("Sample(%d,%d) position %d χ² = %.1f > critical %.1f", n, k, pos, stat, crit)
		}
	}
	// Each index should be selected in ≈ k/n of the trials.
	for v, c := range membership {
		got := float64(c) / float64(trials)
		if math.Abs(got-float64(k)/float64(n)) > 0.01 {
			t.Errorf("index %d membership frequency %.3f, want ≈ %.3f", v, got, float64(k)/float64(n))
		}
	}
}

// TestSampleMatchesPartialFisherYates pins Sample to the textbook partial
// Fisher–Yates over a materialized array, so the sparse map implementation
// cannot silently diverge from the dense reference.
func TestSampleMatchesPartialFisherYates(t *testing.T) {
	const n, k = 12, 5
	for seed := uint64(1); seed <= 20; seed++ {
		got := NewRNG(seed).Sample(n, k)
		ref := NewRNG(seed)
		a := make([]int, n)
		for i := range a {
			a[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + ref.Intn(n-i)
			a[i], a[j] = a[j], a[i]
		}
		for i := 0; i < k; i++ {
			if got[i] != a[i] {
				t.Fatalf("seed %d: sparse Sample %v != dense reference %v", seed, got, a[:k])
			}
		}
	}
}

// Property: Perm always returns a valid permutation for any size in [0, 64].
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 65)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
