package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions across 64 draws from distinct seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance = %v, want ≈%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d of 7 values seen", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(6)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want ≈1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := NewRNG(7)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(10, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.1 {
		t.Errorf("NormScaled mean = %v, want ≈10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := NewRNG(9)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample len = %d, want 4", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	// Full sample is a permutation.
	if got := r.Sample(5, 5); len(got) != 5 {
		t.Errorf("Sample(5,5) len = %d", len(got))
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3,4) must panic")
		}
	}()
	NewRNG(1).Sample(3, 4)
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(10)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(>1) must be true")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(11)
	n := 30000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(2)
		if v < 0 {
			t.Fatalf("Exponential < 0: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(2) mean = %v, want ≈0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) must panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(12)
	child := parent.Split()
	// The two streams should not be identical.
	same := 0
	for i := 0; i < 32; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between parent and child streams", same)
	}
}

// Property: Perm always returns a valid permutation for any size in [0, 64].
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 65)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
