package mat

import "fmt"

// Transposed-B GEMM kernels: dst = A·Bᵀ computed without materializing the
// transpose. This is the batched-inference shape — logits for a row-block of
// samples are X_chunk·Wᵀ with both operands stored row-major — and the reason
// it beats a per-row matvec loop is instruction-level parallelism, not a
// different arithmetic: the micro-kernel keeps four output elements in
// flight, so four independent accumulator chains hide the floating-point add
// latency that serializes a single dot product.
//
// Determinism contract (the same one Mul/MulWorkers honor): every output
// element dst[i][j] is accumulated in exactly the order of
// Dot(a.Row(i), b.Row(j)) — k ascending with Dot's 4-wide grouping — so the
// blocked, the parallel, and the naive per-row formulations are bit-for-bit
// identical. The federated engine's batched forward pass relies on this to
// stay bit-identical to the per-sample Model.Logits reference.

func mulTShapeError(dst, a, b *Dense) error {
	return fmt.Errorf("mulT %dx%d by (%dx%d)ᵀ into %dx%d: %w",
		a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols, ErrShape)
}

func mulTAShapeError(dst, a, b *Dense) error {
	return fmt.Errorf("addMulTA (%dx%d)ᵀ by %dx%d into %dx%d: %w",
		a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols, ErrShape)
}

// mulTShapeCheck validates dst = A·Bᵀ operand shapes.
func mulTShapeCheck(dst, a, b *Dense) error {
	if a.cols != b.cols {
		return mulTShapeError(dst, a, b)
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		return mulTShapeError(dst, a, b)
	}
	return nil
}

// mulTRange computes dst rows [lo, hi) of dst = A·Bᵀ. Rows are processed in
// blocks of four so that each b.Row(j) is streamed once per block while four
// accumulator chains run independently; the remainder rows fall back to Dot,
// which follows the identical per-element order.
func mulTRange(dst, a, b *Dense, lo, hi int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		for j := 0; j < b.rows; j++ {
			s0, s1, s2, s3 := dot4(a0, a1, a2, a3, b.Row(j))
			d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
		}
	}
	for ; i < hi; i++ {
		ar, dr := a.Row(i), dst.Row(i)
		for j := 0; j < b.rows; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
}

// dot4 returns the four dot products a0·b, a1·b, a2·b, a3·b. Each result is
// accumulated in exactly Dot's order (4-wide unrolled groups, k ascending,
// one accumulator per output), so every return value is bit-identical to the
// corresponding Dot call; the speedup comes purely from the four independent
// accumulation chains and the shared loads of b.
func dot4(a0, a1, a2, a3, b []float64) (s0, s1, s2, s3 float64) {
	n := len(b)
	// Re-slice the left operands to the shared length: panics on a shape bug
	// (as Dot would) and anchors the bounds-check elimination below.
	a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
	k := 0
	for ; k+8 <= n; k += 8 {
		// Two 4-wide groups per iteration: each is added to the accumulator
		// separately, in order, exactly as two successive Dot iterations.
		bs := b[k : k+8 : len(b)]
		x0, x1, x2, x3 := a0[k:k+8:n], a1[k:k+8:n], a2[k:k+8:n], a3[k:k+8:n]
		b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
		s0 += x0[0]*b0 + x0[1]*b1 + x0[2]*b2 + x0[3]*b3
		s1 += x1[0]*b0 + x1[1]*b1 + x1[2]*b2 + x1[3]*b3
		s2 += x2[0]*b0 + x2[1]*b1 + x2[2]*b2 + x2[3]*b3
		s3 += x3[0]*b0 + x3[1]*b1 + x3[2]*b2 + x3[3]*b3
		b4, b5, b6, b7 := bs[4], bs[5], bs[6], bs[7]
		s0 += x0[4]*b4 + x0[5]*b5 + x0[6]*b6 + x0[7]*b7
		s1 += x1[4]*b4 + x1[5]*b5 + x1[6]*b6 + x1[7]*b7
		s2 += x2[4]*b4 + x2[5]*b5 + x2[6]*b6 + x2[7]*b7
		s3 += x3[4]*b4 + x3[5]*b5 + x3[6]*b6 + x3[7]*b7
	}
	for ; k+4 <= n; k += 4 {
		// Fixed-length subslices let the compiler prove every constant index
		// in bounds — one check per operand per iteration instead of one per
		// load (the checks otherwise dominate the 16 multiply-adds).
		bs := b[k : k+4 : len(b)]
		x0, x1, x2, x3 := a0[k:k+4:n], a1[k:k+4:n], a2[k:k+4:n], a3[k:k+4:n]
		b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
		s0 += x0[0]*b0 + x0[1]*b1 + x0[2]*b2 + x0[3]*b3
		s1 += x1[0]*b0 + x1[1]*b1 + x1[2]*b2 + x1[3]*b3
		s2 += x2[0]*b0 + x2[1]*b1 + x2[2]*b2 + x2[3]*b3
		s3 += x3[0]*b0 + x3[1]*b1 + x3[2]*b2 + x3[3]*b3
	}
	for ; k < n; k++ {
		bk := b[k]
		s0 += a0[k] * bk
		s1 += a1[k] * bk
		s2 += a2[k] * bk
		s3 += a3[k] * bk
	}
	return s0, s1, s2, s3
}

// MulT computes dst = A·Bᵀ without forming the transpose. dst must be
// A.Rows × B.Rows and must not alias A or B. Each output element follows
// Dot's accumulation order, so the result is bit-identical to the naive
// per-row formulation and to MulTWorkers at any worker count.
func MulT(dst, a, b *Dense) error {
	if err := mulTShapeCheck(dst, a, b); err != nil {
		return err
	}
	mulTRange(dst, a, b, 0, a.rows)
	return nil
}

// MulTWorkers computes dst = A·Bᵀ with output rows split across up to
// workers goroutines (workers <= 1 runs inline). Shapes follow MulT; dst
// must not alias A or B. The result is bit-identical to MulT for any worker
// count: each output row has exactly one owner and row-block boundaries
// never change an element's accumulation order.
func MulTWorkers(dst, a, b *Dense, workers int) error {
	if err := mulTShapeCheck(dst, a, b); err != nil {
		return err
	}
	parallelRows(a.rows, workers, func(lo, hi int) {
		mulTRange(dst, a, b, lo, hi)
	})
	return nil
}

// AddMulTA accumulates dst += Aᵀ·(alpha·B): for every row r of A and B,
// dst[i][j] += (alpha·a[r][i]) · b[r][j]. This is the blocked backward
// kernel of the softmax gradient — A holds per-sample deltas (rows×classes),
// B the sample block (rows×features), and dst the classes×features gradient
// accumulator receiving the scaled outer-product updates.
//
// Per-element accumulation order is r ascending with each contribution
// computed as (alpha·a[r][i])·b[r][j], and contributions whose coefficient
// is exactly zero are skipped — precisely the semantics of the sequential
// per-sample formulation `for r { Axpy(dst.Row(i), alpha*a[r][i], b.Row(r)) }`,
// so the blocked result is bit-identical to it.
func AddMulTA(dst, a, b *Dense, alpha float64) error {
	if a.rows != b.rows {
		return mulTAShapeError(dst, a, b)
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		return mulTAShapeError(dst, a, b)
	}
	r := 0
	for ; r+4 <= a.rows; r += 4 {
		a0, a1, a2, a3 := a.Row(r), a.Row(r+1), a.Row(r+2), a.Row(r+3)
		b0, b1, b2, b3 := b.Row(r), b.Row(r+1), b.Row(r+2), b.Row(r+3)
		for i := 0; i < a.cols; i++ {
			c0, c1, c2, c3 := alpha*a0[i], alpha*a1[i], alpha*a2[i], alpha*a3[i]
			dr := dst.Row(i)
			if c0 != 0 && c1 != 0 && c2 != 0 && c3 != 0 {
				// Fused four-sample update: dst row elements are loaded and
				// stored once per block instead of once per sample. The four
				// adds land in sample order, matching the Axpy sequence
				// below bit for bit. Re-slicing the other operands to
				// len(b0) lets the compiler drop their per-load bounds
				// checks (and panics early on a shape bug, as Axpy would).
				dr, y1, y2, y3 := dr[:len(b0)], b1[:len(b0)], b2[:len(b0)], b3[:len(b0)]
				for j, v := range b0 {
					w := dr[j]
					w += c0 * v
					w += c1 * y1[j]
					w += c2 * y2[j]
					w += c3 * y3[j]
					dr[j] = w
				}
			} else {
				// A zero coefficient must contribute nothing at all (Axpy's
				// alpha==0 skip — adding 0·x would still flip -0 to +0), so
				// blocks containing one fall back to the sequential updates.
				Axpy(dr, c0, b0)
				Axpy(dr, c1, b1)
				Axpy(dr, c2, b2)
				Axpy(dr, c3, b3)
			}
		}
	}
	for ; r < a.rows; r++ {
		ar, br := a.Row(r), b.Row(r)
		for i, av := range ar {
			Axpy(dst.Row(i), alpha*av, br)
		}
	}
	return nil
}
