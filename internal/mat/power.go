package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrIterate is returned (wrapped) when an iterative routine cannot make
// progress.
var ErrIterate = errors.New("mat: iteration failed")

// LargestEigenvalueSym estimates the largest eigenvalue of a symmetric
// positive-semidefinite matrix by power iteration, to relative tolerance
// tol. Used to bound the smoothness constant L of the logistic loss, whose
// Hessian is dominated by XᵀX/(4n).
func LargestEigenvalueSym(a *Dense, tol float64, maxIter int, seed uint64) (float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		return 0, fmt.Errorf("power iteration on %dx%d: %w", a.Rows(), a.Cols(), ErrShape)
	}
	if n == 0 {
		return 0, fmt.Errorf("empty matrix: %w", ErrShape)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	rng := NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Norm()
	}
	if norm := Norm2(v); norm > 0 {
		Scale(v, 1/norm)
	} else {
		v[0] = 1
	}
	next := make([]float64, n)
	var lambda float64
	for iter := 0; iter < maxIter; iter++ {
		if err := a.MulVec(next, v); err != nil {
			return 0, err
		}
		norm := Norm2(next)
		if norm == 0 {
			// v is in the null space; the matrix may be zero.
			return 0, nil
		}
		newLambda := Dot(v, next) // Rayleigh quotient with normalized v
		Scale(next, 1/norm)
		copy(v, next)
		if iter > 0 && math.Abs(newLambda-lambda) <= tol*math.Max(1, math.Abs(newLambda)) {
			return newLambda, nil
		}
		lambda = newLambda
	}
	return lambda, fmt.Errorf("power iteration after %d steps: %w", maxIter, ErrNoConvergePower)
}

// ErrNoConvergePower is returned (wrapped) when power iteration exhausts
// its budget; the best estimate is still returned.
var ErrNoConvergePower = errors.New("mat: power iteration did not converge")

// GramLargestEigenvalue estimates the largest eigenvalue of XᵀX/n for a
// data matrix X (n×d) without materializing the d×d Gram matrix: power
// iteration with matrix-vector products through X.
func GramLargestEigenvalue(x *Dense, tol float64, maxIter int, seed uint64) (float64, error) {
	n, d := x.Rows(), x.Cols()
	if n == 0 || d == 0 {
		return 0, fmt.Errorf("empty data matrix: %w", ErrShape)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	rng := NewRNG(seed)
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.Norm()
	}
	if norm := Norm2(v); norm > 0 {
		Scale(v, 1/norm)
	} else {
		v[0] = 1
	}
	xv := make([]float64, n)
	xtxv := make([]float64, d)
	var lambda float64
	for iter := 0; iter < maxIter; iter++ {
		if err := x.MulVec(xv, v); err != nil {
			return 0, err
		}
		if err := x.MulVecT(xtxv, xv); err != nil {
			return 0, err
		}
		Scale(xtxv, 1/float64(n))
		norm := Norm2(xtxv)
		if norm == 0 {
			return 0, nil
		}
		newLambda := Dot(v, xtxv)
		Scale(xtxv, 1/norm)
		copy(v, xtxv)
		if iter > 0 && math.Abs(newLambda-lambda) <= tol*math.Max(1, math.Abs(newLambda)) {
			return newLambda, nil
		}
		lambda = newLambda
	}
	return lambda, fmt.Errorf("gram power iteration after %d steps: %w", maxIter, ErrNoConvergePower)
}
