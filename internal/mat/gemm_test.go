package mat

import (
	"fmt"
	"testing"
)

// naiveMul is the obviously-correct triple loop the blocked kernel is
// checked against (values compared exactly for small sizes, where both
// orders accumulate few enough terms that rounding differences would be a
// logic bug, and within tolerance for larger ones).
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomSeededDense(r, c int, seed uint64) *Dense {
	rng := NewRNG(seed)
	m := NewDense(r, c)
	for i := range m.RawData() {
		m.RawData()[i] = rng.Norm()
	}
	return m
}

func TestMulBlockedMatchesNaive(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 33},
		{65, 70, 300},   // crosses both the k and j block boundaries
		{128, 200, 257}, // uneven tail in every dimension
	}
	for _, s := range shapes {
		a, b := randomSeededDense(s.m, s.k, 1), randomSeededDense(s.k, s.n, 2)
		dst := NewDense(s.m, s.n)
		if err := Mul(dst, a, b); err != nil {
			t.Fatalf("Mul %v: %v", s, err)
		}
		if want := naiveMul(a, b); !dst.Equal(want, 1e-9) {
			t.Errorf("blocked Mul diverges from naive reference at %v", s)
		}
	}
}

func TestMulWorkersBitIdentical(t *testing.T) {
	a, b := randomSeededDense(130, 97, 3), randomSeededDense(97, 260, 4)
	want := NewDense(130, 260)
	if err := Mul(want, a, b); err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		got := NewDense(130, 260)
		if err := MulWorkers(got, a, b, workers); err != nil {
			t.Fatalf("MulWorkers(%d): %v", workers, err)
		}
		for i, v := range got.RawData() {
			if v != want.RawData()[i] {
				t.Fatalf("MulWorkers(%d) not bit-identical to Mul at flat index %d", workers, i)
			}
		}
	}
}

func TestMulWorkersShapeErrors(t *testing.T) {
	if err := MulWorkers(NewDense(2, 2), NewDense(2, 3), NewDense(4, 2), 2); err == nil {
		t.Error("inner-dimension mismatch must error")
	}
	if err := MulWorkers(NewDense(3, 2), NewDense(2, 3), NewDense(3, 2), 2); err == nil {
		t.Error("dst shape mismatch must error")
	}
}

func TestMulVecWorkersBitIdentical(t *testing.T) {
	m := randomSeededDense(301, 129, 5)
	x := make([]float64, 129)
	rng := NewRNG(6)
	for i := range x {
		x[i] = rng.Norm()
	}
	want := make([]float64, 301)
	if err := m.MulVec(want, x); err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	for _, workers := range []int{0, 1, 2, 5, 32} {
		got := make([]float64, 301)
		if err := m.MulVecWorkers(got, x, workers); err != nil {
			t.Fatalf("MulVecWorkers(%d): %v", workers, err)
		}
		for i, v := range got {
			if v != want[i] {
				t.Fatalf("MulVecWorkers(%d) not bit-identical to MulVec at row %d", workers, i)
			}
		}
	}
	if err := m.MulVecWorkers(make([]float64, 3), x, 2); err == nil {
		t.Error("dst length mismatch must error")
	}
}

func BenchmarkGEMM(b *testing.B) {
	for _, n := range []int{64, 256} {
		a, c := randomSeededDense(n, n, 1), randomSeededDense(n, n, 2)
		dst := NewDense(n, n)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				if err := MulWorkers(dst, a, c, workers); err != nil { // warmup
					b.Fatalf("warmup MulWorkers: %v", err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := MulWorkers(dst, a, c, workers); err != nil {
						b.Fatalf("MulWorkers: %v", err)
					}
				}
			})
		}
	}
}

func BenchmarkMatVec(b *testing.B) {
	m := randomSeededDense(1024, 784, 1)
	x := make([]float64, 784)
	dst := make([]float64, 1024)
	rng := NewRNG(2)
	for i := range x {
		x[i] = rng.Norm()
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if err := m.MulVecWorkers(dst, x, workers); err != nil { // warmup
				b.Fatalf("warmup MulVecWorkers: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.MulVecWorkers(dst, x, workers); err != nil {
					b.Fatalf("MulVecWorkers: %v", err)
				}
			}
		})
	}
}

func BenchmarkRNGSample(b *testing.B) {
	r := NewRNG(1)
	for _, size := range []struct{ n, k int }{{20, 10}, {100000, 10}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", size.n, size.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Sample(size.n, size.k)
			}
		})
	}
}
