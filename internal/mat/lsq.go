package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned (wrapped) when a linear system is singular or so
// ill-conditioned the factorization breaks down.
var ErrSingular = errors.New("mat: singular system")

// SolveCholesky solves the symmetric positive-definite system A·x = b in
// place using a Cholesky factorization. A is overwritten with its factor and
// b with the solution. Returns ErrSingular when A is not positive definite.
func SolveCholesky(a *Dense, b []float64) error {
	n := a.rows
	if a.cols != n {
		return fmt.Errorf("cholesky of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	if len(b) != n {
		return fmt.Errorf("cholesky rhs len %d for n=%d: %w", len(b), n, ErrShape)
	}
	// Factor A = L·Lᵀ (lower triangle of a holds L).
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			l := a.At(j, k)
			d -= l * l
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("pivot %d = %g: %w", j, d, ErrSingular)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	// Forward solve L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a.At(i, k) * b[k]
		}
		b[i] = s / a.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a.At(k, i) * b[k]
		}
		b[i] = s / a.At(i, i)
	}
	return nil
}

// LeastSquares solves min_x ‖A·x − b‖₂ for a tall (or square) matrix A via
// the normal equations AᵀA·x = Aᵀb with a Cholesky solve. It is fast and
// adequate for the well-conditioned two- and three-parameter fits the energy
// model needs; use QRLeastSquares when conditioning is a concern.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("lsq rhs len %d for %d rows: %w", len(b), a.rows, ErrShape)
	}
	if a.rows < a.cols {
		return nil, fmt.Errorf("lsq underdetermined %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	ata := NewDense(a.cols, a.cols)
	if err := MulTA(ata, a, a); err != nil {
		return nil, fmt.Errorf("normal equations: %w", err)
	}
	atb := make([]float64, a.cols)
	if err := a.MulVecT(atb, b); err != nil {
		return nil, fmt.Errorf("normal equations rhs: %w", err)
	}
	if err := SolveCholesky(ata, atb); err != nil {
		return nil, fmt.Errorf("normal equations solve: %w", err)
	}
	return atb, nil
}

// QRLeastSquares solves min_x ‖A·x − b‖₂ using Householder QR. It is slower
// than LeastSquares but numerically robust for ill-conditioned designs.
// A and b are not modified.
func QRLeastSquares(a *Dense, b []float64) ([]float64, error) {
	m, n := a.rows, a.cols
	if len(b) != m {
		return nil, fmt.Errorf("qr lsq rhs len %d for %d rows: %w", len(b), m, ErrShape)
	}
	if m < n {
		return nil, fmt.Errorf("qr lsq underdetermined %dx%d: %w", m, n, ErrShape)
	}
	r := a.Clone()
	y := Clone(b)
	// Householder reduction applied simultaneously to r and y.
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, fmt.Errorf("column %d is zero: %w", k, ErrSingular)
		}
		// Choose the reflector sign to avoid cancellation in v_k = 1 + x_k/norm.
		if r.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		// Apply the reflector to the right-hand side.
		var s float64
		for i := k; i < m; i++ {
			s += r.At(i, k) * y[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * r.At(i, k)
		}
		// The reflector maps the column to −norm·e_k, so the R diagonal is −norm.
		r.Set(k, k, -norm)
	}
	// Back-substitute R·x = y[:n]. The upper triangle above the diagonal of r
	// holds R; the diagonal entries were overwritten with the true R diagonal.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("zero diagonal at %d: %w", i, ErrSingular)
		}
		x[i] = s / d
	}
	return x, nil
}

// PolyFit fits a polynomial of the given degree to points (xs, ys) by least
// squares and returns coefficients lowest-order first.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("polyfit %d xs vs %d ys: %w", len(xs), len(ys), ErrShape)
	}
	if degree < 0 {
		return nil, fmt.Errorf("polyfit degree %d: %w", degree, ErrShape)
	}
	design := NewDense(len(xs), degree+1)
	for i, x := range xs {
		p := 1.0
		for j := 0; j <= degree; j++ {
			design.Set(i, j, p)
			p *= x
		}
	}
	return QRLeastSquares(design, ys)
}
