package mat

import (
	"errors"
	"math"
	"testing"
)

func TestLargestEigenvalueSymDiagonal(t *testing.T) {
	a, _ := NewDenseData(3, 3, []float64{
		5, 0, 0,
		0, 2, 0,
		0, 0, 1,
	})
	lambda, err := LargestEigenvalueSym(a, 1e-10, 0, 1)
	if err != nil {
		t.Fatalf("LargestEigenvalueSym: %v", err)
	}
	if math.Abs(lambda-5) > 1e-6 {
		t.Errorf("lambda = %v, want 5", lambda)
	}
}

func TestLargestEigenvalueSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	lambda, err := LargestEigenvalueSym(a, 1e-12, 0, 2)
	if err != nil {
		t.Fatalf("LargestEigenvalueSym: %v", err)
	}
	if math.Abs(lambda-3) > 1e-8 {
		t.Errorf("lambda = %v, want 3", lambda)
	}
}

func TestLargestEigenvalueSymZeroMatrix(t *testing.T) {
	lambda, err := LargestEigenvalueSym(NewDense(4, 4), 1e-9, 0, 1)
	if err != nil {
		t.Fatalf("zero matrix: %v", err)
	}
	if lambda != 0 {
		t.Errorf("lambda = %v, want 0", lambda)
	}
}

func TestLargestEigenvalueSymErrors(t *testing.T) {
	if _, err := LargestEigenvalueSym(NewDense(2, 3), 1e-9, 0, 1); !errors.Is(err, ErrShape) {
		t.Errorf("non-square = %v, want ErrShape", err)
	}
	if _, err := LargestEigenvalueSym(NewDense(0, 0), 1e-9, 0, 1); !errors.Is(err, ErrShape) {
		t.Errorf("empty = %v, want ErrShape", err)
	}
}

func TestGramLargestEigenvalueMatchesExplicit(t *testing.T) {
	rng := NewRNG(5)
	x := randomDense(rng, 30, 6)
	viaGram, err := GramLargestEigenvalue(x, 1e-10, 0, 3)
	if err != nil {
		t.Fatalf("GramLargestEigenvalue: %v", err)
	}
	// Explicit XᵀX/n.
	gram := NewDense(6, 6)
	if err := MulTA(gram, x, x); err != nil {
		t.Fatalf("MulTA: %v", err)
	}
	gram.Scale(1.0 / 30)
	explicit, err := LargestEigenvalueSym(gram, 1e-10, 0, 3)
	if err != nil {
		t.Fatalf("LargestEigenvalueSym: %v", err)
	}
	if math.Abs(viaGram-explicit) > 1e-6*(1+explicit) {
		t.Errorf("gram path %v vs explicit %v", viaGram, explicit)
	}
}

func TestGramLargestEigenvalueRankOne(t *testing.T) {
	// X with identical rows u: XᵀX/n = uuᵀ has top eigenvalue ‖u‖².
	u := []float64{1, 2, 2} // ‖u‖² = 9
	x := NewDense(10, 3)
	for i := 0; i < 10; i++ {
		copy(x.Row(i), u)
	}
	lambda, err := GramLargestEigenvalue(x, 1e-12, 0, 1)
	if err != nil {
		t.Fatalf("GramLargestEigenvalue: %v", err)
	}
	if math.Abs(lambda-9) > 1e-8 {
		t.Errorf("lambda = %v, want 9", lambda)
	}
}

func TestGramLargestEigenvalueErrors(t *testing.T) {
	if _, err := GramLargestEigenvalue(NewDense(0, 3), 1e-9, 0, 1); !errors.Is(err, ErrShape) {
		t.Errorf("empty = %v, want ErrShape", err)
	}
}
