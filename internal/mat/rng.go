package mat

import (
	"math"
	"math/bits"
)

// RNG is a small deterministic random source (SplitMix64 for the state walk,
// xorshift-style output) with the distributions the simulators need. It is
// not safe for concurrent use; give each goroutine its own RNG, typically by
// calling Split.
//
// We deliberately avoid math/rand so that generated traces and datasets are
// reproducible byte-for-byte across Go releases (math/rand's Source
// algorithms are stable, but rand.Rand method behaviour around Float64 and
// NormFloat64 has shifted historically between rand and rand/v2).
type RNG struct {
	state uint64
	// spare caches the second Gaussian from the Box–Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns an RNG seeded with seed. Distinct seeds yield uncorrelated
// streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds do not produce small first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Split derives an independent child RNG; the parent advances one step.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Reseed reinitializes the receiver in place to the stream NewRNG(seed)
// would produce, discarding any cached Gaussian spare. It lets long-lived
// owners (worker pools, reusable optimizers) jump to a deterministic stream
// without allocating a fresh RNG.
func (r *RNG) Reseed(seed uint64) {
	r.state = seed
	r.spare = 0
	r.hasSpare = false
	r.Uint64()
	r.Uint64()
}

// Uint64 returns the next 64 uniformly random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
//
// The bound is applied with Lemire's multiply-shift rejection method, which
// is exactly uniform for every n (the previous modulo reduction favoured
// small residues for non-power-of-two n by up to 2⁻⁴⁰ per value at IoT-fleet
// sizes — small, but a bias the chi-square tests now reject permanently).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with non-positive bound")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// Reject the sliver of the 64-bit range that maps unevenly:
		// 2^64 mod n values, at most one retry every 2^64/n draws.
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Norm returns a standard Gaussian sample (Box–Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormScaled returns mean + stddev·Norm().
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// allocation-free, so epoch loops can reuse one shuffle buffer.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics when k > n or k < 0.
//
// It runs a sparse partial Fisher–Yates shuffle: only the k virtually
// swapped positions are materialized in a map, so drawing K clients out of
// an n-device fleet is O(k) time and space instead of the former O(n)
// full-permutation shuffle — Sample runs every round in both fl and flnet.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("mat: Sample k out of range")
	}
	out := make([]int, k)
	displaced := make(map[int]int, k)
	for i := 0; i < k; i++ {
		// Virtual array a[0..n-1] starts as identity; swap a[i] with a[j],
		// j uniform in [i, n), and emit the value landing at position i.
		j := i + r.Intn(n-i)
		vi, okI := displaced[i]
		if !okI {
			vi = i
		}
		vj, okJ := displaced[j]
		if !okJ {
			vj = j
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exponential returns an exponentially distributed sample with the given
// rate (mean 1/rate). It panics when rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("mat: Exponential with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}
