package mat

import "math"

// RNG is a small deterministic random source (SplitMix64 for the state walk,
// xorshift-style output) with the distributions the simulators need. It is
// not safe for concurrent use; give each goroutine its own RNG, typically by
// calling Split.
//
// We deliberately avoid math/rand so that generated traces and datasets are
// reproducible byte-for-byte across Go releases (math/rand's Source
// algorithms are stable, but rand.Rand method behaviour around Float64 and
// NormFloat64 has shifted historically between rand and rand/v2).
type RNG struct {
	state uint64
	// spare caches the second Gaussian from the Box–Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns an RNG seeded with seed. Distinct seeds yield uncorrelated
// streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds do not produce small first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Split derives an independent child RNG; the parent advances one step.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard Gaussian sample (Box–Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormScaled returns mean + stddev·Norm().
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics when k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("mat: Sample k out of range")
	}
	return r.Perm(n)[:k]
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exponential returns an exponentially distributed sample with the given
// rate (mean 1/rate). It panics when rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("mat: Exponential with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}
