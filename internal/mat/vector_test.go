package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"single", []float64{2}, []float64{3}, 6},
		{"unrolled", []float64{1, 2, 3, 4, 5}, []float64{5, 4, 3, 2, 1}, 35},
		{"negatives", []float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(dst, 2, []float64{1, 1, 1})
	want := []float64{3, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// alpha==0 must be a no-op even with NaN inputs.
	dst2 := []float64{1}
	Axpy(dst2, 0, []float64{math.NaN()})
	if dst2[0] != 1 {
		t.Error("Axpy with alpha=0 must not touch dst")
	}
}

func TestScaleVec(t *testing.T) {
	x := []float64{1, -2}
	Scale(x, -3)
	if x[0] != -3 || x[1] != 6 {
		t.Errorf("Scale = %v, want [-3 6]", x)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum of squares would overflow here; scaled accumulation must not.
	x := []float64{1e200, 1e200}
	want := math.Sqrt2 * 1e200
	if got := Norm2(x); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestSumMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Sum(x); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := Mean(x); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(x); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate Mean/Variance must be 0")
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		name string
		x    []float64
		want int
	}{
		{"empty", nil, -1},
		{"single", []float64{5}, 0},
		{"middle", []float64{1, 9, 2}, 1},
		{"tie lowest index", []float64{3, 3}, 0},
		{"negative", []float64{-5, -1, -9}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ArgMax(tt.x); got != tt.want {
				t.Errorf("ArgMax = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestSubVecAndClone(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	dst := make([]float64, 2)
	SubVec(dst, a, b)
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("SubVec = %v, want [3 4]", dst)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] != 5 {
		t.Error("Clone must copy")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

// Property: Cauchy–Schwarz |a·b| <= ‖a‖‖b‖.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := randomVec(rng, 16)
		b := randomVec(rng, 16)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Norm2 on a+b.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := randomVec(rng, 8)
		b := randomVec(rng, 8)
		sum := Clone(a)
		Axpy(sum, 1, b)
		return Norm2(sum) <= Norm2(a)+Norm2(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
