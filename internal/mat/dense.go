// Package mat provides the small dense linear-algebra kernel used by the
// machine-learning substrate: row-major float64 matrices, vector helpers,
// Householder-QR and normal-equation least squares, and deterministic random
// sources. It is intentionally minimal — just what a linear classifier and
// the energy-model fitting need — and depends only on the standard library.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) whenever operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty 0×0 matrix. Use NewDense to allocate a sized
// matrix; methods never reallocate the receiver's backing storage unless
// documented otherwise.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c matrix of zeros.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) without copying.
func NewDenseData(r, c int, data []float64) (*Dense, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("wrap %dx%d with %d values: %w", r, c, len(data), ErrShape)
	}
	return &Dense{rows: r, cols: c, data: data}, nil
}

// Dims returns the matrix dimensions (rows, cols).
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns the i-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// RawData returns the backing row-major storage. Mutations are visible to the
// matrix; callers that need an independent copy should use Clone.
func (m *Dense) RawData() []float64 { return m.data }

// SetRow copies src into row i.
func (m *Dense) SetRow(i int, src []float64) error {
	if len(src) != m.cols {
		return fmt.Errorf("set row of length %d into %d columns: %w", len(src), m.cols, ErrShape)
	}
	copy(m.Row(i), src)
	return nil
}

// SliceRows returns a view of rows [lo, hi) sharing the receiver's storage:
// mutations through the view are visible in the parent and vice versa. The
// view is returned by value so hot paths can take its address without a heap
// allocation. Out-of-range bounds panic, mirroring slice semantics.
func (m *Dense) SliceRows(lo, hi int) Dense {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("mat: slice rows [%d,%d) of %dx%d", lo, hi, m.rows, m.cols))
	}
	return Dense{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols : hi*m.cols]}
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into the receiver. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("copy %dx%d into %dx%d: %w", src.rows, src.cols, m.rows, m.cols, ErrShape)
	}
	copy(m.data, src.data)
	return nil
}

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled adds s*other to the receiver in place (receiver += s·other).
func (m *Dense) AddScaled(s float64, other *Dense) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("add %dx%d to %dx%d: %w", other.rows, other.cols, m.rows, m.cols, ErrShape)
	}
	for i, v := range other.data {
		m.data[i] += s * v
	}
	return nil
}

// Add adds other to the receiver in place.
func (m *Dense) Add(other *Dense) error { return m.AddScaled(1, other) }

// Sub subtracts other from the receiver in place.
func (m *Dense) Sub(other *Dense) error { return m.AddScaled(-1, other) }

// Apply replaces each element x with f(x).
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// MulVec computes dst = M·x. dst must have length Rows and x length Cols;
// dst may not alias x.
func (m *Dense) MulVec(dst, x []float64) error {
	if len(x) != m.cols || len(dst) != m.rows {
		return mulVecShapeError(m, dst, x)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return nil
}

func mulVecShapeError(m *Dense, dst, x []float64) error {
	return fmt.Errorf("mulvec %dx%d by len %d into len %d: %w", m.rows, m.cols, len(x), len(dst), ErrShape)
}

// MulVecT computes dst = Mᵀ·x (length-Cols result) without forming the
// transpose. dst may not alias x.
func (m *Dense) MulVecT(dst, x []float64) error {
	if len(x) != m.rows || len(dst) != m.cols {
		return fmt.Errorf("mulvecT %dx%d by len %d into len %d: %w", m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		Axpy(dst, x[i], m.Row(i))
	}
	return nil
}

// Mul computes dst = A·B. dst must be preallocated with shape
// A.Rows × B.Cols and must not alias A or B. The implementation is the
// cache-blocked kernel in gemm.go; MulWorkers is the parallel variant and
// produces bit-identical results.
func Mul(dst, a, b *Dense) error {
	if err := mulShapeCheck(dst, a, b); err != nil {
		return err
	}
	dst.Zero()
	gemmRange(dst, a, b, 0, a.rows)
	return nil
}

func mulShapeCheck(dst, a, b *Dense) error {
	if a.cols != b.rows {
		return fmt.Errorf("mul %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("mul into %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	return nil
}

// MulTA computes dst = Aᵀ·B. dst must be A.Cols × B.Cols and must not alias
// A or B.
func MulTA(dst, a, b *Dense) error {
	if a.rows != b.rows {
		return fmt.Errorf("mulTA (%dx%d)ᵀ by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		return fmt.Errorf("mulTA into %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.cols, b.cols, ErrShape)
	}
	dst.Zero()
	for r := 0; r < a.rows; r++ {
		aRow := a.Row(r)
		bRow := b.Row(r)
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			Axpy(dst.Row(i), av, bRow)
		}
	}
	return nil
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ m_ij²).
func (m *Dense) FrobeniusNorm() float64 {
	return Norm2(m.data)
}

// Equal reports whether m and other have identical shape and elements within
// absolute tolerance tol.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense{%dx%d, fro=%.4g}", m.rows, m.cols, m.FrobeniusNorm())
	}
	s := fmt.Sprintf("Dense{%dx%d:", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf(" %v", m.Row(i))
	}
	return s + "}"
}
