package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSolveCholeskyKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]] is SPD; solve A x = [10, 8] → x = [1.75, 1.5].
	a, _ := NewDenseData(2, 2, []float64{4, 2, 2, 3})
	b := []float64{10, 8}
	if err := SolveCholesky(a, b); err != nil {
		t.Fatalf("SolveCholesky: %v", err)
	}
	if math.Abs(b[0]-1.75) > 1e-12 || math.Abs(b[1]-1.5) > 1e-12 {
		t.Errorf("solution = %v, want [1.75 1.5]", b)
	}
}

func TestSolveCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	err := SolveCholesky(a, []float64{1, 1})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("indefinite error = %v, want ErrSingular", err)
	}
}

func TestSolveCholeskyShapeErrors(t *testing.T) {
	if err := SolveCholesky(NewDense(2, 3), []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Errorf("non-square = %v, want ErrShape", err)
	}
	if err := SolveCholesky(NewDense(2, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("bad rhs = %v, want ErrShape", err)
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2x + 1 exactly.
	design, _ := NewDenseData(3, 2, []float64{
		1, 1,
		2, 1,
		3, 1,
	})
	y := []float64{3, 5, 7}
	coef, err := LeastSquares(design, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(coef[0]-2) > 1e-10 || math.Abs(coef[1]-1) > 1e-10 {
		t.Errorf("coef = %v, want [2 1]", coef)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy y = 3x − 2, residuals should be small and symmetric.
	xs := []float64{0, 1, 2, 3, 4, 5}
	noise := []float64{0.1, -0.1, 0.05, -0.05, 0.02, -0.02}
	design := NewDense(len(xs), 2)
	y := make([]float64, len(xs))
	for i, x := range xs {
		design.Set(i, 0, x)
		design.Set(i, 1, 1)
		y[i] = 3*x - 2 + noise[i]
	}
	coef, err := LeastSquares(design, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(coef[0]-3) > 0.05 || math.Abs(coef[1]+2) > 0.1 {
		t.Errorf("coef = %v, want approx [3 -2]", coef)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(NewDense(2, 3), []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Errorf("underdetermined = %v, want ErrShape", err)
	}
	if _, err := LeastSquares(NewDense(3, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("bad rhs = %v, want ErrShape", err)
	}
}

func TestQRLeastSquaresMatchesNormalEquations(t *testing.T) {
	rng := NewRNG(11)
	design := randomDense(rng, 20, 4)
	y := randomVec(rng, 20)
	viaQR, err := QRLeastSquares(design, y)
	if err != nil {
		t.Fatalf("QRLeastSquares: %v", err)
	}
	viaNE, err := LeastSquares(design, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	for i := range viaQR {
		if math.Abs(viaQR[i]-viaNE[i]) > 1e-8 {
			t.Errorf("coef[%d]: QR %v vs NE %v", i, viaQR[i], viaNE[i])
		}
	}
}

func TestQRLeastSquaresDoesNotMutateInputs(t *testing.T) {
	rng := NewRNG(12)
	design := randomDense(rng, 6, 2)
	orig := design.Clone()
	y := randomVec(rng, 6)
	yOrig := Clone(y)
	if _, err := QRLeastSquares(design, y); err != nil {
		t.Fatalf("QRLeastSquares: %v", err)
	}
	if !design.Equal(orig, 0) {
		t.Error("QRLeastSquares mutated the design matrix")
	}
	for i := range y {
		if y[i] != yOrig[i] {
			t.Fatal("QRLeastSquares mutated the rhs")
		}
	}
}

func TestQRLeastSquaresSingularColumn(t *testing.T) {
	design := NewDense(3, 2) // first column all zero
	design.Set(0, 1, 1)
	design.Set(1, 1, 1)
	design.Set(2, 1, 1)
	if _, err := QRLeastSquares(design, []float64{1, 1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero column = %v, want ErrSingular", err)
	}
}

func TestPolyFit(t *testing.T) {
	// y = x² − 2x + 3.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x*x - 2*x + 3
	}
	coef, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	want := []float64{3, -2, 1}
	for i, w := range want {
		if math.Abs(coef[i]-w) > 1e-8 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], w)
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); !errors.Is(err, ErrShape) {
		t.Errorf("mismatched = %v, want ErrShape", err)
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); !errors.Is(err, ErrShape) {
		t.Errorf("negative degree = %v, want ErrShape", err)
	}
}

// Property: the least-squares residual is orthogonal to the column space,
// i.e. Aᵀ(A x̂ − y) ≈ 0.
func TestLeastSquaresResidualOrthogonalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := randomDense(rng, 12, 3)
		y := randomVec(rng, 12)
		x, err := QRLeastSquares(a, y)
		if err != nil {
			return true // singular random draw; skip
		}
		resid := make([]float64, 12)
		if err := a.MulVec(resid, x); err != nil {
			return false
		}
		SubVec(resid, resid, y)
		grad := make([]float64, 3)
		if err := a.MulVecT(grad, resid); err != nil {
			return false
		}
		return NormInf(grad) < 1e-8*(1+Norm2(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
