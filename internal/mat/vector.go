package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise because it sits on the hottest path and the
// caller is expected to have validated shapes at the matrix boundary.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot of len %d and %d", len(a), len(b)))
	}
	var s float64
	// 4-way unroll: measurably faster than the naive loop for the 784-wide
	// rows the classifier uses, and bit-for-bit deterministic.
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += alpha*x element-wise. Lengths must match.
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: axpy of len %d into %d", len(x), len(dst)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies each element of x by alpha in place.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow the same
// way the reference BLAS dnrm2 does (scaled accumulation).
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the maximum absolute value in x (0 for empty x).
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x (0 for fewer than 2 values).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// ArgMax returns the index of the largest element of x (-1 for empty x).
// Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Clone returns an independent copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SubVec computes dst = a - b element-wise; dst may alias a or b.
func SubVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("mat: subvec lens %d, %d into %d", len(a), len(b), len(dst)))
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
