package mat

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// mulTReference is the naive per-element formulation the blocked kernel must
// match bit for bit: dst[i][j] = Dot(a.Row(i), b.Row(j)).
func mulTReference(dst, a, b *Dense) {
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Rows(); j++ {
			dst.Set(i, j, Dot(a.Row(i), b.Row(j)))
		}
	}
}

// addMulTAReference is the sequential per-sample outer-product accumulation
// AddMulTA must reproduce exactly, Axpy zero-skip included.
func addMulTAReference(dst, a, b *Dense, alpha float64) {
	for r := 0; r < a.Rows(); r++ {
		ar, br := a.Row(r), b.Row(r)
		for i, av := range ar {
			Axpy(dst.Row(i), alpha*av, br)
		}
	}
}

func TestMulTMatchesDotReferenceBitIdentical(t *testing.T) {
	// Shapes cover every micro-kernel regime: row tails 1–3 past the 4-row
	// blocks, k tails past Dot's 4-wide unroll, and single-row/column edges.
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {1, 10, 64}, {2, 3, 5}, {3, 10, 7}, {4, 10, 64},
		{5, 10, 63}, {7, 1, 4}, {8, 16, 65}, {13, 10, 64}, {256, 10, 64},
		{31, 9, 786},
	}
	for _, s := range shapes {
		a := randomSeededDense(s.m, s.k, uint64(s.m*1000+s.k))
		b := randomSeededDense(s.n, s.k, uint64(s.n*7777+s.k))
		want := NewDense(s.m, s.n)
		mulTReference(want, a, b)
		got := NewDense(s.m, s.n)
		if err := MulT(got, a, b); err != nil {
			t.Fatalf("MulT(%dx%d·(%dx%d)ᵀ): %v", s.m, s.k, s.n, s.k, err)
		}
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.n; j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("shape %v: element (%d,%d) = %v differs bitwise from Dot reference %v",
						s, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		for _, workers := range []int{2, 3, 8, 64} {
			par := NewDense(s.m, s.n)
			if err := MulTWorkers(par, a, b, workers); err != nil {
				t.Fatalf("MulTWorkers(%d): %v", workers, err)
			}
			for i := range par.data {
				if math.Float64bits(par.data[i]) != math.Float64bits(want.data[i]) {
					t.Fatalf("shape %v workers=%d: element %d differs bitwise from reference", s, workers, i)
				}
			}
		}
	}
}

func TestMulTShapeErrors(t *testing.T) {
	a, b := NewDense(3, 4), NewDense(2, 5)
	if err := MulT(NewDense(3, 2), a, b); !errors.Is(err, ErrShape) {
		t.Errorf("inner-dim mismatch = %v, want ErrShape", err)
	}
	b = NewDense(2, 4)
	if err := MulT(NewDense(2, 2), a, b); !errors.Is(err, ErrShape) {
		t.Errorf("dst mismatch = %v, want ErrShape", err)
	}
	if err := MulTWorkers(NewDense(2, 2), a, b, 4); !errors.Is(err, ErrShape) {
		t.Errorf("workers dst mismatch = %v, want ErrShape", err)
	}
}

func TestAddMulTAMatchesAxpyReferenceBitIdentical(t *testing.T) {
	shapes := []struct{ rows, p, q int }{
		{1, 1, 1}, {2, 10, 64}, {3, 3, 3}, {4, 10, 64}, {5, 10, 63},
		{9, 2, 7}, {200, 10, 64}, {257, 4, 33},
	}
	for _, s := range shapes {
		a := randomSeededDense(s.rows, s.p, uint64(s.rows*31+s.p))
		b := randomSeededDense(s.rows, s.q, uint64(s.rows*97+s.q))
		// Inject exact zeros so the fused path's zero-coefficient fallback is
		// exercised mid-block, not only in the tail.
		for i := 0; i < len(a.data); i += 5 {
			a.data[i] = 0
		}
		want := randomSeededDense(s.p, s.q, 12345)
		got := want.Clone()
		addMulTAReference(want, a, b, 0.25)
		if err := AddMulTA(got, a, b, 0.25); err != nil {
			t.Fatalf("AddMulTA(%v): %v", s, err)
		}
		for i := range got.data {
			if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
				t.Fatalf("shape %v: element %d = %v differs bitwise from Axpy reference %v",
					s, i, got.data[i], want.data[i])
			}
		}
	}
}

// TestAddMulTAZeroCoefficientKeepsNegativeZero pins the Axpy-skip contract:
// a zero coefficient contributes nothing at all, so a -0 already in the
// accumulator must survive (adding +0·x would flip it to +0).
func TestAddMulTAZeroCoefficientKeepsNegativeZero(t *testing.T) {
	const rows, p, q = 4, 1, 2 // one full 4-row block, zero coefficient inside
	a := NewDense(rows, p)
	b := NewDense(rows, q)
	for r := 0; r < rows; r++ {
		a.Set(r, 0, 0) // every coefficient exactly zero
		b.Set(r, 0, -3.5)
		b.Set(r, 1, 2.5)
	}
	dst := NewDense(p, q)
	dst.Set(0, 0, math.Copysign(0, -1))
	if err := AddMulTA(dst, a, b, 1); err != nil {
		t.Fatalf("AddMulTA: %v", err)
	}
	if math.Signbit(dst.At(0, 0)) != true {
		t.Errorf("zero coefficients flipped -0 to +0: got %v", dst.At(0, 0))
	}
}

func TestAddMulTAShapeErrors(t *testing.T) {
	a, b := NewDense(3, 2), NewDense(4, 5)
	if err := AddMulTA(NewDense(2, 5), a, b, 1); !errors.Is(err, ErrShape) {
		t.Errorf("row mismatch = %v, want ErrShape", err)
	}
	b = NewDense(3, 5)
	if err := AddMulTA(NewDense(2, 4), a, b, 1); !errors.Is(err, ErrShape) {
		t.Errorf("dst mismatch = %v, want ErrShape", err)
	}
}

func TestSliceRows(t *testing.T) {
	m := randomSeededDense(6, 3, 9)
	v := m.SliceRows(2, 5)
	if v.Rows() != 3 || v.Cols() != 3 {
		t.Fatalf("view dims = %dx%d, want 3x3", v.Rows(), v.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v.At(i, j) != m.At(i+2, j) {
				t.Fatalf("view (%d,%d) = %v, want parent %v", i, j, v.At(i, j), m.At(i+2, j))
			}
		}
	}
	v.Set(0, 0, 42)
	if m.At(2, 0) != 42 {
		t.Error("view mutation not visible in parent")
	}
	if empty := m.SliceRows(4, 4); empty.Rows() != 0 {
		t.Errorf("empty view has %d rows", empty.Rows())
	}
	for _, bad := range [][2]int{{-1, 2}, {3, 2}, {0, 7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SliceRows(%d, %d) must panic", bad[0], bad[1])
				}
			}()
			m.SliceRows(bad[0], bad[1])
		}()
	}
}

// TestSliceRowsAllocationFree pins that taking a view and running the blocked
// kernel through it performs zero heap allocations — the evaluator's chunk
// loop depends on the view staying on the stack.
func TestSliceRowsAllocationFree(t *testing.T) {
	x := randomSeededDense(64, 32, 1)
	w := randomSeededDense(10, 32, 2)
	dst := NewDense(64, 10)
	allocs := testing.AllocsPerRun(100, func() {
		xv := x.SliceRows(8, 40)
		dv := dst.SliceRows(0, 32)
		if err := MulT(&dv, &xv, w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SliceRows+MulT allocates %v per run, want 0", allocs)
	}
}

func BenchmarkMatMulT(b *testing.B) {
	// 256×features by classes×features is the evaluator's chunk-GEMM shape;
	// 64 features is quick-synthetic scale, 784 is MNIST scale.
	for _, features := range []int{64, 784} {
		a := randomSeededDense(256, features, 1)
		w := randomSeededDense(10, features, 2)
		dst := NewDense(256, 10)
		b.Run(fmt.Sprintf("features=%d", features), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := MulT(dst, a, w); err != nil {
					b.Fatalf("MulT: %v", err)
				}
			}
		})
	}
}

func BenchmarkMatAddMulTA(b *testing.B) {
	for _, features := range []int{64, 784} {
		delta := randomSeededDense(256, 10, 3)
		x := randomSeededDense(256, features, 4)
		grad := NewDense(10, features)
		b.Run(fmt.Sprintf("features=%d", features), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := AddMulTA(grad, delta, x, 0.005); err != nil {
					b.Fatalf("AddMulTA: %v", err)
				}
			}
		})
	}
}
