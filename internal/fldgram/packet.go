package fldgram

import (
	"encoding/binary"
	"hash/crc32"
)

// Packet layout (big-endian), headerLen = 20 bytes:
//
//	[0]     type    (pktData | pktAck | pktFin)
//	[1]     flags   (flagFrameEnd: last fragment of one Write)
//	[2:4]   payload length
//	[4:8]   sequence number (data: fragment seq; ack: highest in-order
//	        fragment received)
//	[8:16]  sender's cumulative attempted data bytes, headers included
//	[16:20] CRC-32C over header[0:16] ++ payload
//
// The CRC turns "never deliver a corrupted frame" into a checkable
// property: a truncated, bit-flipped, or mis-split datagram fails the
// checksum and is dropped, leaving the ARQ to retransmit.
const (
	headerLen = 20

	pktData = 0x44 // 'D'
	pktAck  = 0x41 // 'A'
	pktFin  = 0x46 // 'F'

	flagFrameEnd = 0x01
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodePacket appends one packet to buf and returns the extended slice.
// The CRC covers header bytes [0:16] and the payload, skipping its own slot.
func encodePacket(buf []byte, typ, flags byte, seq uint32, attemptBytes uint64, payload []byte) []byte {
	var zero [headerLen]byte
	off := len(buf)
	buf = append(buf, zero[:]...)
	buf = append(buf, payload...)
	pkt := buf[off:]
	pkt[0] = typ
	pkt[1] = flags
	binary.BigEndian.PutUint16(pkt[2:4], uint16(len(payload)))
	binary.BigEndian.PutUint32(pkt[4:8], seq)
	binary.BigEndian.PutUint64(pkt[8:16], attemptBytes)
	crc := crc32.Checksum(pkt[:16], crcTable)
	crc = crc32.Update(crc, crcTable, pkt[headerLen:])
	binary.BigEndian.PutUint32(pkt[16:20], crc)
	return buf
}

// decodePacket validates one datagram and splits it into its parts. ok is
// false for any malformed packet: short, length mismatch, unknown type, or
// checksum failure. payload aliases pkt.
func decodePacket(pkt []byte) (typ, flags byte, seq uint32, attemptBytes uint64, payload []byte, ok bool) {
	if len(pkt) < headerLen {
		return 0, 0, 0, 0, nil, false
	}
	typ = pkt[0]
	if typ != pktData && typ != pktAck && typ != pktFin {
		return 0, 0, 0, 0, nil, false
	}
	n := int(binary.BigEndian.Uint16(pkt[2:4]))
	if len(pkt) != headerLen+n {
		return 0, 0, 0, 0, nil, false
	}
	want := binary.BigEndian.Uint32(pkt[16:20])
	crc := crc32.Checksum(pkt[:16], crcTable)
	crc = crc32.Update(crc, crcTable, pkt[headerLen:])
	if crc != want {
		return 0, 0, 0, 0, nil, false
	}
	flags = pkt[1]
	seq = binary.BigEndian.Uint32(pkt[4:8])
	attemptBytes = binary.BigEndian.Uint64(pkt[8:16])
	return typ, flags, seq, attemptBytes, pkt[headerLen:], true
}

// reassembler is the receive half of one Conn: it accepts raw datagrams in
// any order and exposes a strictly in-order byte stream. Stop-and-wait on
// the sender side means at most one new fragment is in flight, so the
// reassembler only ever appends (seq == next), re-acknowledges a duplicate
// (seq < next), or rejects (seq ahead, corrupt, truncated). It never
// delivers bytes from a packet that fails the CRC, and it never delivers a
// fragment twice.
type reassembler struct {
	// next is the next in-order data sequence number expected.
	next uint32
	// buf holds delivered in-order stream bytes awaiting Read.
	buf []byte
	// finSeen is set when a FIN packet arrives: the peer is gone.
	finSeen bool
	// peerAttemptBytes is the highest cumulative attempted-byte counter
	// seen in any valid header from the peer.
	peerAttemptBytes uint64

	// Counters (all monotone):
	deliveredPackets int64 // unique data packets delivered in order
	deliveredBytes   int64 // their wire size, headers included
	dupPackets       int64 // retransmissions/duplicates of delivered data
	aheadPackets     int64 // data ahead of next (reordered past the window)
	invalidPackets   int64 // short/corrupt/unknown datagrams
}

// absorb processes one raw datagram. ack reports whether an acknowledgment
// is owed and ackSeq its sequence number (the highest in-order fragment
// received, i.e. next−1).
func (ra *reassembler) absorb(pkt []byte) (ackSeq uint32, ack bool) {
	typ, _, seq, attemptBytes, payload, ok := decodePacket(pkt)
	if !ok {
		ra.invalidPackets++
		return 0, false
	}
	if attemptBytes > ra.peerAttemptBytes {
		ra.peerAttemptBytes = attemptBytes
	}
	switch typ {
	case pktFin:
		ra.finSeen = true
		return 0, false
	case pktAck:
		// ACKs are the sender's business; the Conn routes them before
		// calling absorb. Seeing one here (e.g. under fuzzing) is a no-op.
		return 0, false
	}
	switch {
	case seq == ra.next:
		ra.buf = append(ra.buf, payload...)
		ra.next++
		ra.deliveredPackets++
		ra.deliveredBytes += int64(len(pkt))
		return seq, true
	case seq < ra.next:
		// Duplicate of an already-delivered fragment: its ACK was lost or
		// slow. Re-acknowledge the current in-order frontier.
		ra.dupPackets++
		return ra.next - 1, true
	default:
		// Ahead of the in-order frontier. A stop-and-wait sender never has
		// more than one new fragment outstanding, so this is a reordered
		// stray; dropping it forces a retransmission.
		ra.aheadPackets++
		return 0, false
	}
}

// read moves up to len(p) delivered bytes into p.
func (ra *reassembler) read(p []byte) int {
	n := copy(p, ra.buf)
	if n > 0 {
		rest := copy(ra.buf, ra.buf[n:])
		ra.buf = ra.buf[:rest]
	}
	return n
}
