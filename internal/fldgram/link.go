package fldgram

import (
	"fmt"
	"net"
	"sync"
)

// PacketLink is a raw unreliable datagram carrier under one Conn: it moves
// whole packets with no delivery, ordering, or integrity guarantees. The
// Conn's ARQ supplies all three. ReadPacket blocks until a packet or an
// error; Close must unblock it.
type PacketLink interface {
	// WritePacket sends one datagram. Best-effort: a full carrier may drop
	// it silently (the ARQ retransmits).
	WritePacket(p []byte) error
	// ReadPacket copies the next datagram into buf and returns its length.
	// Datagrams longer than buf are truncated (and then fail the CRC).
	ReadPacket(buf []byte) (int, error)
	Close() error
	LocalAddr() net.Addr
	RemoteAddr() net.Addr
}

// pipeAddr is the address of an in-memory pipe endpoint.
type pipeAddr struct{ name string }

func (a pipeAddr) Network() string { return "fldgram.pipe" }
func (a pipeAddr) String() string  { return a.name }

// chanLink is one direction pair of an in-memory packet pipe. The channel
// buffer stands in for the carrier's queue: a stop-and-wait sender keeps at
// most a handful of packets in flight, so the buffer never fills in
// practice, but a full buffer drops the packet — datagram semantics, not
// backpressure.
type chanLink struct {
	in, out   chan []byte
	local     pipeAddr
	remote    pipeAddr
	closeOnce sync.Once
	closed    chan struct{}
	peerDone  chan struct{}
}

// pipeQueueLen is the per-direction packet queue of a Pipe.
const pipeQueueLen = 512

// Pipe returns two connected datagram endpoints running entirely in
// memory, with each side configured independently (MTU, chaos, meter).
// Both configs are validated; Pipe panics on an invalid one, as this is a
// test/bench constructor.
func Pipe(cfgA, cfgB Config) (*Conn, *Conn) {
	for _, cfg := range []Config{cfgA, cfgB} {
		if err := cfg.Validate(); err != nil {
			panic(fmt.Sprintf("fldgram.Pipe: %v", err))
		}
	}
	ab := make(chan []byte, pipeQueueLen)
	ba := make(chan []byte, pipeQueueLen)
	closedA := make(chan struct{})
	closedB := make(chan struct{})
	la := &chanLink{
		in: ba, out: ab,
		local: pipeAddr{"pipe:a"}, remote: pipeAddr{"pipe:b"},
		closed: closedA, peerDone: closedB,
	}
	lb := &chanLink{
		in: ab, out: ba,
		local: pipeAddr{"pipe:b"}, remote: pipeAddr{"pipe:a"},
		closed: closedB, peerDone: closedA,
	}
	return newConn(la, cfgA, 0), newConn(lb, cfgB, 1)
}

func (l *chanLink) WritePacket(p []byte) error {
	select {
	case <-l.closed:
		return errClosed
	case <-l.peerDone:
		// Peer gone: the datagram would be lost on a real carrier too.
		return nil
	default:
	}
	pkt := append([]byte(nil), p...)
	select {
	case l.out <- pkt:
	default:
		// Queue full: drop, like any saturated carrier.
	}
	return nil
}

func (l *chanLink) ReadPacket(buf []byte) (int, error) {
	select {
	case pkt := <-l.in:
		return copy(buf, pkt), nil
	case <-l.closed:
		// Drain packets that raced with Close.
		select {
		case pkt := <-l.in:
			return copy(buf, pkt), nil
		default:
			return 0, errClosed
		}
	}
}

func (l *chanLink) Close() error {
	l.closeOnce.Do(func() { close(l.closed) })
	return nil
}

func (l *chanLink) LocalAddr() net.Addr  { return l.local }
func (l *chanLink) RemoteAddr() net.Addr { return l.remote }
