package fldgram

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// udpLink is the dialer-side carrier: a connected UDP socket.
type udpLink struct {
	uc *net.UDPConn
}

func (l *udpLink) WritePacket(p []byte) error {
	_, err := l.uc.Write(p)
	return err
}

func (l *udpLink) ReadPacket(buf []byte) (int, error) {
	return l.uc.Read(buf)
}

func (l *udpLink) Close() error         { return l.uc.Close() }
func (l *udpLink) LocalAddr() net.Addr  { return l.uc.LocalAddr() }
func (l *udpLink) RemoteAddr() net.Addr { return l.uc.RemoteAddr() }

// Dialer returns a dial function in the shape flnet.EdgeConfig.Dial
// expects, producing datagram Conns over UDP. Conns draw chaos streams
// from cfg.Seed and a per-dial index, so redials (flnet's reconnect loop)
// see fresh, still-deterministic fault sequences.
func Dialer(cfg Config) (func(addr string, timeout time.Duration) (net.Conn, error), error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	next := 0
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		raddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("resolve %s: %w", addr, err)
		}
		uc, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		idx := next
		next++
		mu.Unlock()
		return newConn(&udpLink{uc: uc}, cfg, idx), nil
	}, nil
}

// muxLink is one peer's receive queue on a shared listener socket; writes
// go straight out the socket to the peer's address.
type muxLink struct {
	l      *Listener
	remote *net.UDPAddr
	in     chan []byte
	once   sync.Once
	closed chan struct{}
}

// muxQueueLen bounds one peer's inbound queue; overflow drops packets
// (datagram semantics — the peer's ARQ retransmits).
const muxQueueLen = 512

func (ml *muxLink) WritePacket(p []byte) error {
	_, err := ml.l.pc.WriteToUDP(p, ml.remote)
	return err
}

func (ml *muxLink) ReadPacket(buf []byte) (int, error) {
	select {
	case pkt := <-ml.in:
		n := copy(buf, pkt)
		ml.l.putBuf(pkt)
		return n, nil
	case <-ml.closed:
		return 0, errClosed
	case <-ml.l.done:
		return 0, errClosed
	}
}

// Close detaches this peer from the mux; the shared socket stays open.
func (ml *muxLink) Close() error {
	ml.once.Do(func() {
		close(ml.closed)
		ml.l.forget(ml.remote.String())
	})
	return nil
}

func (ml *muxLink) LocalAddr() net.Addr  { return ml.l.pc.LocalAddr() }
func (ml *muxLink) RemoteAddr() net.Addr { return ml.remote }

// Listener is a net.Listener over one UDP socket: inbound datagrams are
// demultiplexed by source address, and each new source becomes a pending
// Conn for Accept. Closing an accepted Conn detaches that peer (a
// subsequent datagram from the same address would open a fresh Conn —
// which is how flnet redials land on a new connection).
type Listener struct {
	pc  *net.UDPConn
	cfg Config

	mu    sync.Mutex
	peers map[string]*muxLink
	next  int // conn creation index, seeds chaos streams

	acceptCh chan *Conn
	done     chan struct{}
	once     sync.Once

	bufPool sync.Pool
}

// acceptBacklog bounds conns awaiting Accept.
const acceptBacklog = 128

// Listen opens a datagram listener on the given UDP address.
func Listen(addr string, cfg Config) (*Listener, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %s: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		pc:       pc,
		cfg:      cfg,
		peers:    make(map[string]*muxLink),
		acceptCh: make(chan *Conn, acceptBacklog),
		done:     make(chan struct{}),
	}
	l.bufPool.New = func() any { return make([]byte, maxMTU+1) }
	go l.readLoop()
	return l, nil
}

func (l *Listener) putBuf(b []byte) {
	l.bufPool.Put(b[:cap(b)]) //nolint:staticcheck // []byte in a Pool is fine here
}

// readLoop demultiplexes the socket into per-peer queues, spawning a Conn
// for each new source address.
func (l *Listener) readLoop() {
	for {
		buf := l.bufPool.Get().([]byte)
		n, raddr, err := l.pc.ReadFromUDP(buf)
		if err != nil {
			l.putBuf(buf)
			select {
			case <-l.done:
			default:
				l.Close()
			}
			return
		}
		key := raddr.String()
		var rejected *Conn
		l.mu.Lock()
		ml, ok := l.peers[key]
		if !ok {
			ml = &muxLink{
				l:      l,
				remote: raddr,
				in:     make(chan []byte, muxQueueLen),
				closed: make(chan struct{}),
			}
			idx := l.next
			l.next++
			conn := newConn(ml, l.cfg, idx)
			select {
			case l.acceptCh <- conn:
				l.peers[key] = ml
			default:
				// Accept backlog full: refuse by dropping both the conn and
				// the packet; the peer's ARQ will retry. Close outside l.mu
				// — it re-enters via forget.
				rejected = conn
				ml = nil
			}
		}
		l.mu.Unlock()
		if rejected != nil {
			rejected.Close()
		}
		if ml == nil {
			l.putBuf(buf)
			continue
		}
		select {
		case ml.in <- buf[:n]:
		default:
			l.putBuf(buf) // queue full: carrier drop
		}
	}
}

// forget detaches a peer address from the mux.
func (l *Listener) forget(key string) {
	l.mu.Lock()
	delete(l.peers, key)
	l.mu.Unlock()
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("listener closed: %w", ErrTransport)
	}
}

// Close implements net.Listener: the socket closes and every peer Conn's
// receive side fails.
func (l *Listener) Close() error {
	var err error
	l.once.Do(func() {
		close(l.done)
		err = l.pc.Close()
		// Drain conns never accepted so their recv loops exit.
		for {
			select {
			case c := <-l.acceptCh:
				c.Close()
			default:
				return
			}
		}
	})
	return err
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.pc.LocalAddr() }
