package fldgram

import (
	"testing"
)

// BenchmarkPacketCodec prices the per-datagram fixed cost of the transport:
// one encode (header fill + CRC-32C over header and payload) and one decode
// (validation + CRC check) of an MTU-sized data packet, into a reused buffer
// — 0 allocs/op is the pin, matching the Conn's scratch-buffer discipline.
func BenchmarkPacketCodec(b *testing.B) {
	payload := make([]byte, DefaultMTU-headerLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	buf := make([]byte, 0, DefaultMTU)
	b.SetBytes(int64(DefaultMTU))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = encodePacket(buf[:0], pktData, flagFrameEnd, uint32(i), uint64(i), payload)
		if _, _, _, _, _, ok := decodePacket(buf); !ok {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkConnFrameLossless measures one 8 KiB frame end to end through the
// in-memory pipe at loss 0: fragmentation into MTU-sized packets, the
// stop-and-wait ACK per fragment, reassembly, and the frame-end boundary.
func BenchmarkConnFrameLossless(b *testing.B) {
	a, c := Pipe(Config{Seed: 1}, Config{Seed: 2})
	defer a.Close()
	defer c.Close()
	frame := make([]byte, 8192)
	for i := range frame {
		frame[i] = byte(i)
	}
	got := make([]byte, len(frame))
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(frame))
		for i := 0; i < b.N; i++ {
			if _, err := readFull(c, buf); err != nil {
				done <- err
				return
			}
			if _, err := c.Write(buf); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Write(frame); err != nil {
			b.Fatalf("write: %v", err)
		}
		if _, err := readFull(a, got); err != nil {
			b.Fatalf("read: %v", err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatalf("echo: %v", err)
	}
}

// readFull reads exactly len(p) bytes (io.ReadFull without the interface
// indirection, so the benchmark loop stays allocation-free).
func readFull(c *Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
