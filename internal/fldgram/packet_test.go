package fldgram

import (
	"bytes"
	"testing"
)

func TestPacketRoundTrip(t *testing.T) {
	payload := []byte("federated edge intelligence")
	pkt := encodePacket(nil, pktData, flagFrameEnd, 42, 1<<40+7, payload)
	if len(pkt) != headerLen+len(payload) {
		t.Fatalf("packet length %d, want %d", len(pkt), headerLen+len(payload))
	}
	typ, flags, seq, ab, got, ok := decodePacket(pkt)
	if !ok {
		t.Fatal("decodePacket rejected a valid packet")
	}
	if typ != pktData || flags != flagFrameEnd || seq != 42 || ab != 1<<40+7 {
		t.Fatalf("decoded (%x, %x, %d, %d)", typ, flags, seq, ab)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestPacketRejectsMutations(t *testing.T) {
	pkt := encodePacket(nil, pktData, 0, 7, 999, []byte("abcdefgh"))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated header", func(p []byte) []byte { return p[:headerLen-1] }},
		{"truncated payload", func(p []byte) []byte { return p[:len(p)-1] }},
		{"extended", func(p []byte) []byte { return append(p, 0) }},
		{"empty", func(p []byte) []byte { return nil }},
		{"type flip", func(p []byte) []byte { p[0] = 'X'; return p }},
		{"flag flip", func(p []byte) []byte { p[1] ^= 0x80; return p }},
		{"length flip", func(p []byte) []byte { p[2] ^= 1; return p }},
		{"seq flip", func(p []byte) []byte { p[5] ^= 1; return p }},
		{"counter flip", func(p []byte) []byte { p[12] ^= 1; return p }},
		{"crc flip", func(p []byte) []byte { p[17] ^= 1; return p }},
		{"payload flip", func(p []byte) []byte { p[headerLen+3] ^= 1; return p }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), pkt...))
			if _, _, _, _, _, ok := decodePacket(mutated); ok {
				t.Fatal("decodePacket accepted a mutated packet")
			}
		})
	}
}

func TestReassemblerInOrder(t *testing.T) {
	var ra reassembler
	var want []byte
	for seq := uint32(0); seq < 5; seq++ {
		payload := bytes.Repeat([]byte{byte('a' + seq)}, 3)
		want = append(want, payload...)
		pkt := encodePacket(nil, pktData, 0, seq, 0, payload)
		ackSeq, ack := ra.absorb(pkt)
		if !ack || ackSeq != seq {
			t.Fatalf("seq %d: ack=%v ackSeq=%d", seq, ack, ackSeq)
		}
	}
	got := make([]byte, len(want))
	if n := ra.read(got); n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("read %d bytes %q, want %q", n, got[:n], want)
	}
	if ra.deliveredPackets != 5 || ra.dupPackets != 0 {
		t.Fatalf("delivered=%d dup=%d", ra.deliveredPackets, ra.dupPackets)
	}
}

func TestReassemblerDupAndAhead(t *testing.T) {
	var ra reassembler
	p0 := encodePacket(nil, pktData, 0, 0, 0, []byte("one"))
	p1 := encodePacket(nil, pktData, 0, 1, 0, []byte("two"))
	p2 := encodePacket(nil, pktData, 0, 2, 0, []byte("three"))

	// Ahead of the frontier: rejected, no ack.
	if _, ack := ra.absorb(p1); ack {
		t.Fatal("acked a packet ahead of the frontier")
	}
	if _, ack := ra.absorb(p0); !ack {
		t.Fatal("in-order packet not acked")
	}
	// Duplicate: re-acked at the frontier, not delivered twice.
	if ackSeq, ack := ra.absorb(p0); !ack || ackSeq != 0 {
		t.Fatalf("dup: ack=%v seq=%d", ack, ackSeq)
	}
	if _, ack := ra.absorb(p1); !ack {
		t.Fatal("in-order packet not acked")
	}
	if _, ack := ra.absorb(p2); !ack {
		t.Fatal("in-order packet not acked")
	}
	buf := make([]byte, 64)
	n := ra.read(buf)
	if got, want := string(buf[:n]), "onetwothree"; got != want {
		t.Fatalf("stream %q, want %q", got, want)
	}
	if ra.dupPackets != 1 || ra.aheadPackets != 1 || ra.deliveredPackets != 3 {
		t.Fatalf("dup=%d ahead=%d delivered=%d", ra.dupPackets, ra.aheadPackets, ra.deliveredPackets)
	}
}

func TestReassemblerTracksPeerAttempts(t *testing.T) {
	var ra reassembler
	ra.absorb(encodePacket(nil, pktData, 0, 0, 100, nil))
	ra.absorb(encodePacket(nil, pktData, 0, 0, 90, nil)) // stale dup: counter must not regress
	if ra.peerAttemptBytes != 100 {
		t.Fatalf("peerAttemptBytes=%d, want 100", ra.peerAttemptBytes)
	}
	ra.absorb(encodePacket(nil, pktFin, 0, 1, 250, nil))
	if !ra.finSeen || ra.peerAttemptBytes != 250 {
		t.Fatalf("finSeen=%v peerAttemptBytes=%d", ra.finSeen, ra.peerAttemptBytes)
	}
}
