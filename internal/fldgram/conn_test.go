package fldgram

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"eefei/internal/mat"
)

// fill writes a deterministic pseudo-random payload of n bytes.
func fill(n int, seed uint64) []byte {
	rng := mat.NewRNG(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Uint64())
	}
	return b
}

// echo pumps every frame-sized read back to the writer. The fixed read
// size stands in for flnet's length-prefix framing.
func echo(t *testing.T, c net.Conn, frame, count int) {
	t.Helper()
	buf := make([]byte, frame)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("echo read %d: %v", i, err)
			return
		}
		if _, err := c.Write(buf); err != nil {
			t.Errorf("echo write %d: %v", i, err)
			return
		}
	}
}

func testRoundTrip(t *testing.T, a, b net.Conn, frame, count int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		echo(t, b, frame, count)
	}()
	buf := make([]byte, frame)
	for i := 0; i < count; i++ {
		msg := fill(frame, uint64(i)+1)
		if _, err := a.Write(msg); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := io.ReadFull(a, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf, msg) {
			t.Fatalf("frame %d corrupted in transit", i)
		}
	}
	wg.Wait()
}

func TestConnReliableRoundTrip(t *testing.T) {
	a, b := Pipe(Config{}, Config{})
	defer a.Close()
	defer b.Close()
	// Frames both below and far above the MTU.
	testRoundTrip(t, a, b, 70000, 3)

	s := a.Stats()
	if s.TxAttempts != s.TxDelivered {
		t.Fatalf("reliable link: %d attempts for %d delivered", s.TxAttempts, s.TxDelivered)
	}
	if s.TxAttemptBytes != s.TxDeliveredBytes {
		t.Fatalf("reliable link: %d attempt bytes, %d delivered bytes", s.TxAttemptBytes, s.TxDeliveredBytes)
	}
}

func TestConnLossyRoundTrip(t *testing.T) {
	const p = 0.7
	cfg := Config{Seed: 11, SuccessProb: p}
	a, b := Pipe(cfg, cfg)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b, 32<<10, 8)

	// Both directions saw loss; each side's attempts/delivered must sit
	// near the geometric 1/p (exact distribution, finite-sample tolerance).
	for name, s := range map[string]Stats{"a": a.Stats(), "b": b.Stats()} {
		if s.TxDelivered == 0 {
			t.Fatalf("%s: nothing delivered", name)
		}
		ratio := float64(s.TxAttemptBytes) / float64(s.TxDeliveredBytes)
		if math.Abs(ratio-1/p) > 0.15 {
			t.Errorf("%s: attempts/delivered = %.3f, want ≈ %.3f", name, ratio, 1/p)
		}
		if s.RxDupPackets != 0 {
			// Injected drops never reach the carrier, and ACKs are
			// reliable, so no retransmission can arrive as a duplicate.
			t.Errorf("%s: %d dup packets on a loss-only link", name, s.RxDupPackets)
		}
	}
}

func TestConnDupAndReorder(t *testing.T) {
	cfg := Config{Seed: 5, DupProb: 0.2, ReorderProb: 0.1, RTO: 20 * time.Millisecond}
	a, b := Pipe(cfg, cfg)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b, 8<<10, 6)

	sa, sb := a.Stats(), b.Stats()
	if sa.RxDupPackets+sb.RxDupPackets == 0 {
		t.Error("expected duplicate deliveries with DupProb=0.2")
	}
	// Reordering must never corrupt or reorder the stream (asserted by
	// testRoundTrip); strays ahead of the frontier are dropped and retried.
	if sa.RxInvalidPackets+sb.RxInvalidPackets != 0 {
		t.Errorf("invalid packets on a corruption-free link: %d/%d",
			sa.RxInvalidPackets, sb.RxInvalidPackets)
	}
}

func TestConnAckLossRecovers(t *testing.T) {
	cfg := Config{Seed: 3, AckSuccessProb: 0.6, RTO: 10 * time.Millisecond}
	a, b := Pipe(cfg, cfg)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b, 4<<10, 4)
	sa, sb := a.Stats(), b.Stats()
	// Lost ACKs force genuine retransmissions, which arrive as duplicates.
	if sa.TxAttempts == sa.TxDelivered && sb.TxAttempts == sb.TxDelivered &&
		sa.RxDupPackets+sb.RxDupPackets == 0 {
		t.Error("expected retransmissions under ACK loss")
	}
}

// TestConnAttemptCountersDeterministic pins the determinism contract: same
// seed, same byte stream → identical attempt/delivery counters, because
// injected drops are decided before the carrier and never wait on a clock.
func TestConnAttemptCountersDeterministic(t *testing.T) {
	run := func() (Stats, Stats) {
		cfgA := Config{Seed: 99, SuccessProb: 0.8}
		cfgB := Config{Seed: 42, SuccessProb: 0.8}
		a, b := Pipe(cfgA, cfgB)
		defer a.Close()
		defer b.Close()
		testRoundTrip(t, a, b, 16<<10, 5)
		return a.Stats(), b.Stats()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("same-seed counters differ:\n a: %+v\nvs %+v\n b: %+v\nvs %+v", a1, a2, b1, b2)
	}
	if a1.TxAttempts == a1.TxDelivered {
		t.Fatal("lossy run recorded no retransmissions; chaos not engaged")
	}
}

// TestConnPeerAttemptCounter verifies the header-carried cumulative counter:
// after a request/reply exchange each side knows the other's attempted
// bytes exactly.
func TestConnPeerAttemptCounter(t *testing.T) {
	cfg := Config{Seed: 7, SuccessProb: 0.75}
	a, b := Pipe(cfg, cfg)
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b, 16<<10, 4)

	sa, sb := a.Stats(), b.Stats()
	if sa.PeerAttemptBytes != sb.TxAttemptBytes {
		t.Errorf("a sees peer attempts %d, b spent %d", sa.PeerAttemptBytes, sb.TxAttemptBytes)
	}
	if sb.PeerAttemptBytes != sa.TxAttemptBytes {
		t.Errorf("b sees peer attempts %d, a spent %d", sb.PeerAttemptBytes, sa.TxAttemptBytes)
	}
	if sa.RxDeliveredBytes != sb.TxDeliveredBytes {
		t.Errorf("a received %d delivered bytes, b delivered %d", sa.RxDeliveredBytes, sb.TxDeliveredBytes)
	}
}

func TestConnMeterAggregates(t *testing.T) {
	m := &Meter{}
	cfg := Config{Seed: 21, SuccessProb: 0.8, Meter: m}
	a, b := Pipe(cfg, Config{})
	defer a.Close()
	defer b.Close()
	testRoundTrip(t, a, b, 8<<10, 3)
	s := a.Stats()
	attempts, attemptBytes, delivered, deliveredBytes := m.Totals()
	if attempts != s.TxAttempts || attemptBytes != s.TxAttemptBytes ||
		delivered != s.TxDelivered || deliveredBytes != s.TxDeliveredBytes {
		t.Fatalf("meter %d/%d/%d/%d != conn stats %+v", attempts, attemptBytes, delivered, deliveredBytes, s)
	}
	// Nil meter must be inert.
	var nilMeter *Meter
	nilMeter.addAttempt(1)
	nilMeter.addDelivered(1)
	if a, ab, d, db := nilMeter.Totals(); a+ab+d+db != 0 {
		t.Fatal("nil meter reported totals")
	}
}

func TestConnCloseUnblocksPeerRead(t *testing.T) {
	a, b := Pipe(Config{}, Config{})
	defer b.Close()
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("peer read after close: %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read still blocked after close")
	}
	// Writing into a closed peer fails rather than hanging.
	if _, err := b.Write(make([]byte, 64)); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestConnDeadlines(t *testing.T) {
	a, b := Pipe(Config{}, Config{})
	defer a.Close()
	defer b.Close()

	a.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline: %v", err)
	}
	// Clearing the deadline revives the conn.
	a.SetReadDeadline(time.Time{})
	go func() { b.Write([]byte("x")) }()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(a, buf); err != nil || buf[0] != 'x' {
		t.Fatalf("read after clearing deadline: %v %q", err, buf)
	}

	// A write deadline binds even when every attempt is injected-dropped
	// (SuccessProb so small the ARQ would spin through its attempt budget).
	c, d := Pipe(Config{Seed: 1, SuccessProb: 1e-9, MaxAttempts: 1 << 20}, Config{})
	defer c.Close()
	defer d.Close()
	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := c.Write(make([]byte, 100)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("write past deadline: %v", err)
	}
}

func TestConnMaxAttemptsExhausted(t *testing.T) {
	a, b := Pipe(Config{Seed: 8, SuccessProb: 1e-12, MaxAttempts: 16}, Config{})
	defer a.Close()
	defer b.Close()
	_, err := a.Write(make([]byte, 10))
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want attempt exhaustion wrapping ErrTransport, got %v", err)
	}
	s := a.Stats()
	if s.TxAttempts != 16 || s.TxDelivered != 0 {
		t.Fatalf("attempts=%d delivered=%d, want 16/0", s.TxAttempts, s.TxDelivered)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"explicit defaults", Config{MTU: DefaultMTU, RTO: DefaultRTO, MaxAttempts: DefaultMaxAttempts}, true},
		{"lossy", Config{SuccessProb: 0.9, DupProb: 0.1, ReorderProb: 0.1}, true},
		{"mtu too small", Config{MTU: 63}, false},
		{"mtu too large", Config{MTU: maxMTU + 1}, false},
		{"negative rto", Config{RTO: -time.Second}, false},
		{"negative attempts", Config{MaxAttempts: -1}, false},
		{"success prob > 1", Config{SuccessProb: 1.5}, false},
		{"negative success prob", Config{SuccessProb: -0.1}, false},
		{"dup prob 1", Config{DupProb: 1}, false},
		{"reorder prob 1", Config{ReorderProb: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && !errors.Is(err, ErrTransport) {
				t.Fatalf("want ErrTransport, got %v", err)
			}
		})
	}
}

func TestUDPListenerDialerRoundTrip(t *testing.T) {
	cfg := Config{Seed: 31, SuccessProb: 0.85}
	ln, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	acceptCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		acceptCh <- c
	}()

	dial, err := Dialer(cfg)
	if err != nil {
		t.Fatalf("dialer: %v", err)
	}
	a, err := dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer a.Close()
	// The listener only learns of the peer from its first datagram.
	if _, err := a.Write([]byte("hello over udp")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	var b net.Conn
	select {
	case b = <-acceptCh:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	defer b.Close()
	buf := make([]byte, 14)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "hello over udp" {
		t.Fatalf("server read: %v %q", err, buf)
	}
	testRoundTrip(t, a, b, 8<<10, 4)

	// Lossy both ways over a real socket: counters still near 1/p.
	s := a.(*Conn).Stats()
	ratio := float64(s.TxAttemptBytes) / float64(s.TxDeliveredBytes)
	if math.Abs(ratio-1/0.85) > 0.2 {
		t.Errorf("attempts/delivered over UDP = %.3f, want ≈ %.3f", ratio, 1/0.85)
	}
}

func TestUDPListenerClosePendingConns(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dial, _ := Dialer(Config{})
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.Write([]byte("wake"))
	time.Sleep(20 * time.Millisecond)
	if err := ln.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := ln.Accept(); !errors.Is(err, ErrTransport) {
		t.Fatalf("accept after close: %v", err)
	}
}
