package fldgram

import (
	"bytes"
	"testing"

	"eefei/internal/mat"
)

// FuzzReassembly drives the receive half of a Conn with a script of
// hostile datagrams — duplicated, reordered, truncated, bit-flipped,
// overlapping, and raw garbage — interleaved with valid fragments of a
// known stream. The properties:
//
//  1. absorb never panics, whatever the datagram;
//  2. the delivered stream is always an exact prefix of the true in-order
//     stream — no corrupted, duplicated, or reordered byte is ever handed
//     to Read;
//  3. the in-order frontier only advances on valid in-sequence fragments,
//     and the delivered byte count matches it exactly.
//
// The checked-in seed corpus (testdata/fuzz/FuzzReassembly) covers each
// mutation class; `go test` replays it on every run, and verify.sh runs a
// short live fuzz on top.
func FuzzReassembly(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7}) // in order
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 2})             // duplicates
	f.Add([]byte{0, 3, 0, 1, 0, 0, 0, 2, 0, 1, 0, 3})             // reordered
	f.Add([]byte{1, 5, 1, 19, 0, 0, 1, 7, 0, 1})                  // truncations
	f.Add([]byte{2, 9, 0, 0, 2, 33, 0, 1, 2, 250})                // bit flips
	f.Add([]byte{4, 0, 0, 0, 4, 3, 0, 1, 4, 255})                 // overlapping
	f.Add([]byte{3, 200, 3, 0, 3, 7, 0, 0, 3, 19, 0, 1})          // raw garbage

	f.Fuzz(func(t *testing.T, script []byte) {
		// Ground truth: 8 fragments of varied sizes from a fixed RNG.
		const frags = 8
		rng := mat.NewRNG(1)
		payloads := make([][]byte, frags)
		packets := make([][]byte, frags)
		var want []byte
		for i := range payloads {
			p := make([]byte, 1+i*37)
			for j := range p {
				p[j] = byte(rng.Uint64())
			}
			payloads[i] = p
			want = append(want, p...)
			packets[i] = encodePacket(nil, pktData, 0, uint32(i), uint64(i)*100, p)
		}

		var ra reassembler
		var delivered []byte
		for pos := 0; pos+1 < len(script); pos += 2 {
			op, arg := script[pos], script[pos+1]
			var pkt []byte
			switch op % 5 {
			case 0: // a valid fragment, possibly out of order or duplicated
				pkt = packets[int(arg)%frags]
			case 1: // truncated at an arbitrary point
				src := packets[int(arg)%frags]
				pkt = src[:int(arg)%(len(src)+1)]
			case 2: // one byte flipped anywhere in the packet
				src := append([]byte(nil), packets[int(arg)%frags]...)
				src[int(arg)%len(src)] ^= arg | 1
				pkt = src
			case 3: // raw garbage lifted from the script itself
				n := int(arg)
				if n > len(script)-pos {
					n = len(script) - pos
				}
				pkt = script[pos : pos+n]
			case 4: // two fragments glued into one datagram (overlap)
				pkt = append(append([]byte(nil), packets[int(arg)%frags]...),
					packets[(int(arg)+1)%frags]...)
			}
			ra.absorb(pkt)
			if n := len(ra.buf); n > 0 {
				tmp := make([]byte, n)
				ra.read(tmp)
				delivered = append(delivered, tmp...)
			}
		}

		if !bytes.HasPrefix(want, delivered) {
			t.Fatalf("delivered %d bytes that are not a prefix of the true stream", len(delivered))
		}
		if int(ra.next) > frags {
			t.Fatalf("frontier %d advanced past the %d real fragments", ra.next, frags)
		}
		expect := 0
		for i := 0; i < int(ra.next); i++ {
			expect += len(payloads[i])
		}
		if len(delivered) != expect {
			t.Fatalf("delivered %d bytes, frontier %d implies %d", len(delivered), ra.next, expect)
		}
		if ra.deliveredPackets != int64(ra.next) {
			t.Fatalf("deliveredPackets %d != frontier %d", ra.deliveredPackets, ra.next)
		}
	})
}
