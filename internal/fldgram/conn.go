package fldgram

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"eefei/internal/faultnet"
)

// errPeerClosed reports a write against a peer that sent FIN.
var errPeerClosed = fmt.Errorf("peer closed: %w", ErrTransport)

// Stats is a snapshot of one Conn's packet accounting. The Tx side counts
// data packets only (ACKs and FINs ride for free in the energy model — the
// paper prices sample upload attempts, and the 20-byte ACK is noise next to
// kilobyte fragments, but AckPackets records how many were sent).
type Stats struct {
	// TxAttempts / TxAttemptBytes count every data-packet transmission,
	// retransmissions and injected drops included — the radio spent the
	// energy whether or not the carrier delivered.
	TxAttempts     int64
	TxAttemptBytes int64
	// TxDelivered / TxDeliveredBytes count unique acknowledged fragments
	// (wire size, header included).
	TxDelivered      int64
	TxDeliveredBytes int64
	// Rx counters mirror the receive side: unique in-order data packets
	// delivered to Read, duplicates re-acknowledged, strays ahead of the
	// in-order frontier, and datagrams that failed validation.
	RxDelivered      int64
	RxDeliveredBytes int64
	RxDupPackets     int64
	RxAheadPackets   int64
	RxInvalidPackets int64
	// AckPackets counts acknowledgments sent (including injected-dropped
	// ones).
	AckPackets int64
	// PeerAttemptBytes is the peer's cumulative attempted data bytes as
	// last reported in a packet header.
	PeerAttemptBytes int64
}

// Conn is a reliable net.Conn over an unreliable PacketLink: MTU
// fragmentation, CRC-validated reassembly, and a stop-and-wait ARQ with
// per-attempt accounting. One goroutine owns the link's receive side; Write
// calls are serialized internally. Read supports a single reader at a time
// (concurrent readers would race for the same in-order stream anyway).
type Conn struct {
	link PacketLink
	cfg  Config
	// payload is the data capacity of one fragment.
	payload   int
	dataChaos *faultnet.PacketInjector
	ackChaos  *faultnet.PacketInjector
	meter     *Meter

	// writeMu serializes Write calls (one fragment in flight at a time).
	writeMu   sync.Mutex
	txScratch []byte

	// sendMu serializes link.WritePacket across the writer goroutine and
	// the receive loop's ACKs, and guards the reorder hold-back slot.
	sendMu     sync.Mutex
	ackScratch []byte
	held       []byte
	heldValid  bool

	mu      sync.Mutex
	cond    *sync.Cond
	ra      reassembler
	txSeq   uint32 // next data sequence number to assign
	txAcked uint64 // fragments acknowledged (cumulative)
	stats   Stats
	readDL  time.Time
	writeDL time.Time
	err     error // sticky receive-loop failure
	closed  bool

	ackTimer *time.Timer
	rdTimer  *time.Timer
}

// newConn wraps a PacketLink. idx distinguishes sibling conns of one
// endpoint so each draws independent chaos streams from cfg.Seed. cfg must
// already be validated.
func newConn(link PacketLink, cfg Config, idx int) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{link: link, cfg: cfg, payload: cfg.MTU - headerLen, meter: cfg.Meter}
	c.cond = sync.NewCond(&c.mu)
	c.ackTimer = stoppedTimer(c.wakeAll)
	c.rdTimer = stoppedTimer(c.wakeAll)
	if p := lossProb(cfg.SuccessProb); p > 0 || cfg.DupProb > 0 || cfg.ReorderProb > 0 {
		c.dataChaos = mustPacketInjector(faultnet.PacketConfig{
			Seed:        mixSeed(cfg.Seed, idx, 1),
			LossProb:    p,
			DupProb:     cfg.DupProb,
			ReorderProb: cfg.ReorderProb,
		})
	}
	if p := lossProb(cfg.AckSuccessProb); p > 0 {
		c.ackChaos = mustPacketInjector(faultnet.PacketConfig{
			Seed:     mixSeed(cfg.Seed, idx, 2),
			LossProb: p,
		})
	}
	go c.recvLoop()
	return c
}

// mixSeed derives an uncorrelated stream seed per (conn, direction),
// following faultnet's splitmix-style mixer.
func mixSeed(seed uint64, idx int, stream uint64) uint64 {
	z := seed + uint64(idx+1)*0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	return z ^ (z >> 27)
}

func mustPacketInjector(cfg faultnet.PacketConfig) *faultnet.PacketInjector {
	pi, err := faultnet.NewPacketInjector(cfg)
	if err != nil {
		panic(fmt.Sprintf("fldgram: %v", err)) // Config.Validate bounds the probabilities
	}
	return pi
}

// stoppedTimer returns a disarmed timer firing f when Reset.
func stoppedTimer(f func()) *time.Timer {
	t := time.AfterFunc(time.Hour, f)
	t.Stop()
	return t
}

// wakeAll broadcasts under the state lock, so a wakeup can never slip into
// the window between a waiter's condition check and its cond.Wait.
func (c *Conn) wakeAll() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// recvLoop owns the link's receive side until the link dies.
func (c *Conn) recvLoop() {
	buf := make([]byte, maxMTU+1)
	for {
		n, err := c.link.ReadPacket(buf)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.process(buf[:n])
	}
}

// process routes one raw datagram: ACKs feed the send side, everything else
// goes through the reassembler (which also validates and counts garbage).
func (c *Conn) process(pkt []byte) {
	if len(pkt) > 0 && pkt[0] == pktAck {
		_, _, seq, attemptBytes, _, ok := decodePacket(pkt)
		c.mu.Lock()
		if !ok {
			c.ra.invalidPackets++
			c.mu.Unlock()
			return
		}
		if attemptBytes > c.ra.peerAttemptBytes {
			c.ra.peerAttemptBytes = attemptBytes
		}
		if a := uint64(seq) + 1; a > c.txAcked {
			c.txAcked = a
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	ackSeq, ack := c.ra.absorb(pkt)
	c.cond.Broadcast()
	c.mu.Unlock()
	if ack {
		c.sendAck(ackSeq)
	}
}

// sendAck acknowledges the in-order frontier, carrying this side's
// cumulative attempted bytes so the peer can meter our spend.
func (c *Conn) sendAck(seq uint32) {
	c.mu.Lock()
	cum := uint64(c.stats.TxAttemptBytes)
	c.stats.AckPackets++
	c.mu.Unlock()
	drop := false
	if c.ackChaos != nil {
		drop = c.ackChaos.Next().Drop
	}
	if drop {
		return
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.ackScratch = encodePacket(c.ackScratch[:0], pktAck, 0, seq, cum, nil)
	c.link.WritePacket(c.ackScratch)
}

// sendData puts one data packet on the carrier, applying the injected
// duplication/reorder fate. A held packet is released by the next send.
func (c *Conn) sendData(pkt []byte, fate faultnet.PacketFate) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if fate.Hold {
		c.held = append(c.held[:0], pkt...)
		c.heldValid = true
		return
	}
	c.link.WritePacket(pkt)
	if fate.Dup {
		c.link.WritePacket(pkt)
	}
	if c.heldValid {
		c.heldValid = false
		c.link.WritePacket(c.held)
	}
}

// Write fragments p into MTU-sized data packets and delivers each through
// the ARQ. It returns only when every byte is acknowledged (or the conn
// fails), so the flnet frame protocol's write-then-await-reply sequencing
// holds unchanged over a lossy carrier.
func (c *Conn) Write(p []byte) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	written := 0
	for written < len(p) {
		frag := p[written:]
		var flags byte
		if len(frag) <= c.payload {
			flags = flagFrameEnd
		} else {
			frag = frag[:c.payload]
		}
		c.mu.Lock()
		seq := c.txSeq
		c.txSeq++
		c.mu.Unlock()
		if err := c.writeFragment(seq, flags, frag); err != nil {
			return written, err
		}
		written += len(frag)
	}
	return written, nil
}

// writeFragment runs the stop-and-wait ARQ for one fragment: transmit,
// await the cumulative ACK, retransmit on RTO — except that an
// injected-dropped attempt skips both the carrier and the RTO wait, since
// the drop decision already happened on "the radio" and no ACK can come.
func (c *Conn) writeFragment(seq uint32, flags byte, frag []byte) error {
	pktLen := headerLen + len(frag)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return errClosed
		}
		if c.err != nil {
			err := c.err
			c.mu.Unlock()
			return err
		}
		if c.ra.finSeen {
			c.mu.Unlock()
			return errPeerClosed
		}
		if c.txAcked > uint64(seq) {
			// A late ACK (after an RTO-triggered loop) already covered this
			// fragment.
			c.deliveredLocked(pktLen)
			c.mu.Unlock()
			return nil
		}
		deadline := c.writeDL
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			c.mu.Unlock()
			return os.ErrDeadlineExceeded
		}
		c.stats.TxAttempts++
		c.stats.TxAttemptBytes += int64(pktLen)
		cum := uint64(c.stats.TxAttemptBytes)
		c.mu.Unlock()
		c.meter.addAttempt(pktLen)

		var fate faultnet.PacketFate
		if c.dataChaos != nil {
			fate = c.dataChaos.Next()
		}
		if fate.Drop {
			// Retransmit immediately: attempt counted, energy spent, no wait.
			continue
		}
		c.txScratch = encodePacket(c.txScratch[:0], pktData, flags, seq, cum, frag)
		c.sendData(c.txScratch, fate)
		acked, err := c.awaitAck(seq)
		if err != nil {
			return err
		}
		if acked {
			c.mu.Lock()
			c.deliveredLocked(pktLen)
			c.mu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("fragment %d after %d attempts: %w", seq, c.cfg.MaxAttempts, errAttempts)
}

func (c *Conn) deliveredLocked(pktLen int) {
	c.stats.TxDelivered++
	c.stats.TxDeliveredBytes += int64(pktLen)
	c.meter.addDelivered(pktLen)
}

// awaitAck blocks until the cumulative ACK covers seq, the RTO expires
// (acked=false: retransmit), or the conn fails.
func (c *Conn) awaitAck(seq uint32) (acked bool, err error) {
	rtoAt := time.Now().Add(c.cfg.RTO)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.txAcked > uint64(seq) {
			return true, nil
		}
		if c.closed {
			return false, errClosed
		}
		if c.err != nil {
			return false, c.err
		}
		if c.ra.finSeen {
			return false, errPeerClosed
		}
		now := time.Now()
		if !c.writeDL.IsZero() && !now.Before(c.writeDL) {
			return false, os.ErrDeadlineExceeded
		}
		if !now.Before(rtoAt) {
			return false, nil
		}
		wake := rtoAt
		if !c.writeDL.IsZero() && c.writeDL.Before(wake) {
			wake = c.writeDL
		}
		c.ackTimer.Reset(wake.Sub(now))
		c.cond.Wait()
	}
}

// Read returns in-order reassembled stream bytes.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.ra.buf) > 0 {
			if len(p) == 0 {
				return 0, nil
			}
			return c.ra.read(p), nil
		}
		if c.closed {
			return 0, errClosed
		}
		if c.ra.finSeen {
			return 0, io.EOF
		}
		if c.err != nil {
			return 0, c.err
		}
		now := time.Now()
		if !c.readDL.IsZero() {
			if !now.Before(c.readDL) {
				return 0, os.ErrDeadlineExceeded
			}
			c.rdTimer.Reset(c.readDL.Sub(now))
		}
		c.cond.Wait()
	}
}

// Close sends a best-effort FIN (twice, bypassing injected loss — UDP has
// no EOF, and a silently vanished peer would otherwise pin the remote Read
// until its deadline) and tears down the link, unblocking all waiters.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	seq := c.txSeq
	cum := uint64(c.stats.TxAttemptBytes)
	c.cond.Broadcast()
	c.mu.Unlock()

	c.sendMu.Lock()
	if c.heldValid {
		c.heldValid = false
		c.link.WritePacket(c.held)
	}
	fin := encodePacket(nil, pktFin, 0, seq, cum, nil)
	c.link.WritePacket(fin)
	c.link.WritePacket(fin)
	c.sendMu.Unlock()
	return c.link.Close()
}

// Stats returns a snapshot of the packet accounting.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.RxDelivered = c.ra.deliveredPackets
	s.RxDeliveredBytes = c.ra.deliveredBytes
	s.RxDupPackets = c.ra.dupPackets
	s.RxAheadPackets = c.ra.aheadPackets
	s.RxInvalidPackets = c.ra.invalidPackets
	s.PeerAttemptBytes = int64(c.ra.peerAttemptBytes)
	return s
}

// DgramCounters exposes the four counters flnet meters per round:
// this side's attempted and delivered (acknowledged) data bytes, the peer's
// cumulative attempted data bytes as last reported, and the unique data
// bytes received. flnet type-asserts for exactly this method, keeping the
// packages decoupled.
func (c *Conn) DgramCounters() (txAttemptBytes, txDeliveredBytes, peerAttemptBytes, rxDeliveredBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.TxAttemptBytes, c.stats.TxDeliveredBytes,
		int64(c.ra.peerAttemptBytes), c.ra.deliveredBytes
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.link.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.link.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}
