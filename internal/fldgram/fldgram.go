// Package fldgram is a datagram-shaped transport for the federated wire
// path: an NB-IoT-flavoured lossy link under the reliable byte stream that
// internal/flnet's protocol expects. It exists to close the loop on the
// paper's Eq. 4 — the claim that delivering data over an unreliable radio
// costs ρ/p per delivered unit, a geometric number of constant-cost
// attempts — against bytes actually put on a link, rather than against the
// analytic constant alone.
//
// The shape:
//
//   - Every Write is one frame, fragmented into MTU-sized datagrams with a
//     20-byte header (type, flags, length, sequence number, the sender's
//     cumulative attempted-byte counter, and a CRC-32C over the packet).
//   - A stop-and-wait ARQ delivers fragments in order: each data packet is
//     retransmitted until the peer's cumulative ACK covers it, so with a
//     per-attempt delivery probability p the attempt count per fragment is
//     exactly the geometric distribution of iot.Unlicensed, and
//     attempted/delivered bytes converge to 1/p.
//   - Loss, duplication, and reordering are injected deterministically by
//     seeded faultnet.PacketInjector streams owned by each Conn. An
//     injected drop is decided at the sender before the packet touches the
//     carrier: the attempt is counted (and priced — the radio transmitted),
//     the send and the RTO wait are both skipped, and the ARQ retransmits
//     immediately. Attempt counts are therefore a pure function of the
//     seed and the byte stream, independent of timing, and tests run at
//     memory speed. The real RTO only covers genuine carrier loss.
//   - Both ends count attempted and delivered bytes, and every packet
//     header carries the sender's cumulative attempted bytes, so a
//     receiver knows the peer's spend without touching the payload
//     protocol. flnet snapshots these counters around each round to
//     surface attempted-vs-delivered bytes in round records and traces.
//
// Carriers: Pipe wires two Conns through in-memory channels (deterministic
// tests), and Listen/Dialer run the same Conn over a UDP socket (the
// cmd/fedcoord and cmd/fededge `-transport dgram` path).
package fldgram

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Defaults for Config fields left zero.
const (
	// DefaultMTU is the default datagram size cap, header included —
	// conservative for UDP over Ethernet without fragmentation.
	DefaultMTU = 1200
	// DefaultRTO is the default retransmission timeout for genuine
	// (non-injected) carrier loss.
	DefaultRTO = 250 * time.Millisecond
	// DefaultMaxAttempts is the default per-fragment attempt cap before
	// the connection is declared lost.
	DefaultMaxAttempts = 256

	// minMTU leaves room for the header plus a useful payload.
	minMTU = 64
	// maxMTU is the largest UDP payload.
	maxMTU = 65507
)

// ErrTransport is returned (wrapped) for invalid configurations and failed
// transport operations.
var ErrTransport = errors.New("fldgram: transport error")

// errClosed reports use of a closed Conn.
var errClosed = fmt.Errorf("connection closed: %w", ErrTransport)

// errAttempts reports a fragment that exhausted its attempt budget.
var errAttempts = fmt.Errorf("max attempts exhausted: %w", ErrTransport)

// Config describes one endpoint of a datagram transport. The zero value is
// a reliable link at the defaults above.
type Config struct {
	// MTU caps each datagram, header included. 0 = DefaultMTU; otherwise
	// it must lie in [64, 65507]. The two ends of a link may differ: a
	// receiver accepts any datagram up to the UDP maximum.
	MTU int
	// RTO is the retransmission timeout for packets that were genuinely
	// sent and not acknowledged. 0 = DefaultRTO.
	RTO time.Duration
	// MaxAttempts caps transmissions per fragment; exceeding it fails the
	// connection. 0 = DefaultMaxAttempts.
	MaxAttempts int
	// Seed drives the injected-fault decisions. Each Conn derives
	// independent per-direction streams from it and its creation index.
	Seed uint64
	// SuccessProb, when in (0,1), is the per-attempt delivery probability
	// for data packets: each attempt is dropped with probability
	// 1−SuccessProb by a seeded faultnet.PacketInjector. 0 or 1 = reliable.
	SuccessProb float64
	// AckSuccessProb is the same for ACK packets. ACK loss costs extra
	// data retransmissions, inflating measured attempts/delivered above
	// the 1/p of data loss alone — keep it at 1 (the default) when
	// validating Eq. 4, which models data-attempt loss only.
	AckSuccessProb float64
	// DupProb duplicates data packets with the given probability.
	DupProb float64
	// ReorderProb holds a data packet back one slot (swapped with its
	// successor) with the given probability.
	ReorderProb float64
	// Meter, when non-nil, accumulates attempt/delivery totals across
	// every Conn of this endpoint (all conns of a Listener, or all conns
	// made by a Dialer).
	Meter *Meter
}

// withDefaults fills zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.MTU == 0 {
		cfg.MTU = DefaultMTU
	}
	if cfg.RTO == 0 {
		cfg.RTO = DefaultRTO
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	return cfg
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	cfg = cfg.withDefaults()
	if cfg.MTU < minMTU || cfg.MTU > maxMTU {
		return fmt.Errorf("mtu %d outside [%d, %d]: %w", cfg.MTU, minMTU, maxMTU, ErrTransport)
	}
	if cfg.RTO < 0 {
		return fmt.Errorf("rto %v negative: %w", cfg.RTO, ErrTransport)
	}
	if cfg.MaxAttempts < 1 {
		return fmt.Errorf("max attempts %d < 1: %w", cfg.MaxAttempts, ErrTransport)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"success", cfg.SuccessProb}, {"ack success", cfg.AckSuccessProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("%s probability %v outside [0,1]: %w", p.name, p.v, ErrTransport)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"dup", cfg.DupProb}, {"reorder", cfg.ReorderProb}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("%s probability %v outside [0,1): %w", p.name, p.v, ErrTransport)
		}
	}
	return nil
}

// ResolveSuccessProb resolves the CLI-level -transport/-loss/-success-prob
// triple shared by fedcoord and fededge to the effective per-attempt
// delivery probability: 1 on the stream transport (where the datagram knobs
// are rejected as meaningless), and p = 1-loss or the explicit success
// probability on dgram. Setting both contradictory knobs is an error.
func ResolveSuccessProb(transport string, loss, successProb float64) (float64, error) {
	switch transport {
	case "stream":
		if loss != 0 || successProb != 0 {
			return 1, fmt.Errorf("-loss/-success-prob require -transport dgram: %w", ErrTransport)
		}
		return 1, nil
	case "dgram":
	default:
		return 1, fmt.Errorf("unknown -transport %q (stream or dgram): %w", transport, ErrTransport)
	}
	if loss != 0 && successProb != 0 {
		return 1, fmt.Errorf("set -loss or -success-prob, not both: %w", ErrTransport)
	}
	if loss < 0 || loss >= 1 {
		return 1, fmt.Errorf("-loss %v outside [0,1): %w", loss, ErrTransport)
	}
	if successProb < 0 || successProb > 1 {
		return 1, fmt.Errorf("-success-prob %v outside (0,1]: %w", successProb, ErrTransport)
	}
	if successProb != 0 {
		return successProb, nil
	}
	return 1 - loss, nil
}

// lossProb converts a success probability knob to an injected loss
// probability (0 and 1 both mean reliable).
func lossProb(successProb float64) float64 {
	if successProb <= 0 || successProb >= 1 {
		return 0
	}
	return 1 - successProb
}

// Meter accumulates data-packet attempt/delivery totals across the Conns of
// one endpoint. All methods are safe for concurrent use and tolerate a nil
// receiver, mirroring flnet.WireCounters.
type Meter struct {
	txAttempts      atomic.Int64
	txAttemptBytes  atomic.Int64
	txDelivered     atomic.Int64
	txDeliveredByte atomic.Int64
}

// addAttempt records one transmitted data packet of n bytes.
func (m *Meter) addAttempt(n int) {
	if m == nil {
		return
	}
	m.txAttempts.Add(1)
	m.txAttemptBytes.Add(int64(n))
}

// addDelivered records one acknowledged data packet of n bytes.
func (m *Meter) addDelivered(n int) {
	if m == nil {
		return
	}
	m.txDelivered.Add(1)
	m.txDeliveredByte.Add(int64(n))
}

// Totals reports packets and bytes attempted (every transmission, injected
// drops included) and delivered (unique acknowledged packets). Zero on a
// nil receiver.
func (m *Meter) Totals() (attempts, attemptBytes, delivered, deliveredBytes int64) {
	if m == nil {
		return 0, 0, 0, 0
	}
	return m.txAttempts.Load(), m.txAttemptBytes.Load(),
		m.txDelivered.Load(), m.txDeliveredByte.Load()
}
