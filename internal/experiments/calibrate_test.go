package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"eefei/internal/energy"
)

// TestCompareCalibrationNoiseless pins the closed loop: with zero jitter the
// synthesized round timings ARE the analytic model, so every phase's measured
// joules must match the DeviceModel's closed form and the refit must recover
// the canonical Pi time model exactly.
func TestCompareCalibrationNoiseless(t *testing.T) {
	setup := quickSetup(t)
	res, err := CompareCalibration(setup, 3, 10, 4, 0, 1)
	if err != nil {
		t.Fatalf("CompareCalibration: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d phase rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AnalyticJoules <= 0 {
			t.Errorf("%v analytic joules = %v, want > 0", row.Phase, row.AnalyticJoules)
		}
		if rel := math.Abs(row.MeasuredJoules-row.AnalyticJoules) / row.AnalyticJoules; rel > 1e-9 {
			t.Errorf("%v measured %v vs analytic %v (rel %v)", row.Phase,
				row.MeasuredJoules, row.AnalyticJoules, rel)
		}
	}
	tm := energy.DefaultPiTimeModel()
	// The least-squares refit round-trips through float seconds, so allow a
	// couple of nanoseconds of Duration truncation.
	within := func(a, b time.Duration) bool {
		d := a - b
		return d >= -2 && d <= 2
	}
	if !within(res.Refit.TrainPerSample, tm.TrainPerSample) || !within(res.Refit.TrainPerEpoch, tm.TrainPerEpoch) {
		t.Errorf("noiseless refit %+v != canonical %+v", res.Refit, tm)
	}
	for _, d := range res.Drift {
		if math.Abs(d.Pct) > 1e-6 {
			t.Errorf("%v noiseless drift = %v%%, want 0", d.Phase, d.Pct)
		}
	}
}

// TestCompareCalibrationJitterBounded: with j% uniform jitter, per-phase
// deltas stay within a few standard errors, and the refit stays near the
// canonical model.
func TestCompareCalibrationJitterBounded(t *testing.T) {
	setup := quickSetup(t)
	res, err := CompareCalibration(setup, 4, 10, 5, 0.02, 7)
	if err != nil {
		t.Fatalf("CompareCalibration: %v", err)
	}
	for _, row := range res.Rows {
		if math.Abs(row.DeltaPct) > 2.0 {
			t.Errorf("%v delta %v%% exceeds the 2%% jitter bound", row.Phase, row.DeltaPct)
		}
	}
	tm := energy.DefaultPiTimeModel()
	if rel := math.Abs(res.Refit.TrainPerSample.Seconds()-tm.TrainPerSample.Seconds()) /
		tm.TrainPerSample.Seconds(); rel > 0.10 {
		t.Errorf("refit per-sample %v drifted %v from canonical %v",
			res.Refit.TrainPerSample, rel, tm.TrainPerSample)
	}
}

func TestCompareCalibrationValidation(t *testing.T) {
	setup := quickSetup(t)
	if _, err := CompareCalibration(setup, 0, 10, 5, 0, 1); err == nil {
		t.Error("K=0 must error")
	}
	if _, err := CompareCalibration(setup, 1, 10, 5, 1.5, 1); err == nil {
		t.Error("jitter >= 1 must error")
	}
}

func TestCalibrationRender(t *testing.T) {
	setup := quickSetup(t)
	res, err := CompareCalibration(setup, 2, 10, 2, 0.01, 3)
	if err != nil {
		t.Fatalf("CompareCalibration: %v", err)
	}
	var out strings.Builder
	if err := res.Render(&out); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"measured vs analytic", "train", "refit time model", "drift"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}
