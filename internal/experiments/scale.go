// Package experiments reproduces every table and figure of the paper's
// evaluation section (Section VI). Each experiment has a harness returning
// structured rows/series and a renderer printing them the way the paper
// reports them; cmd/experiments and the repository-root benchmarks drive
// both. Experiments run at three scales: Quick (8×8 synthetic digits, 20
// servers × 100 samples — seconds on a laptop), Paper (28×28, 20 servers
// × 3000 samples, the prototype's dimensions), and Full (28×28, 100 servers
// × 600 of the 60k samples — the opt-in (K, E) sweep substrate, K up to 100).
package experiments

import (
	"errors"
	"fmt"

	"eefei/internal/core"
	"eefei/internal/dataset"
	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/iot"
	"eefei/internal/ml"
	"eefei/internal/sim"
)

// ErrExperiment is returned (wrapped) for invalid experiment parameters.
var ErrExperiment = errors.New("experiments: invalid setup")

// Scale selects the experiment size.
type Scale int

const (
	// Quick runs on the reduced synthetic dataset; all tests and default
	// benches use it.
	Quick Scale = iota + 1
	// Paper runs at the prototype's dimensions (28×28 MNIST-scale, 3000
	// samples per server); minutes of CPU.
	Paper
	// Full is the sweep-scale tier: the 60k-sample MNIST-shape dataset
	// spread over 100 edge servers so K can sweep the whole 1..100 grid.
	// Setup alone allocates hundreds of MB and a single (K, E) cell takes
	// minutes, so everything Full-scale is opt-in (EEFEI_FULL_SCALE=1).
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Paper:
		return "paper"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "paper":
		return Paper, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("scale %q (want quick|paper|full): %w", s, ErrExperiment)
	}
}

// Setup bundles everything a training-based experiment needs.
type Setup struct {
	Scale   Scale
	Servers int
	// Shards are the per-server datasets.
	Shards []*dataset.Dataset
	// Test is the held-out evaluation set.
	Test *dataset.Dataset
	// AccuracyTarget is the "92%"-style stop threshold appropriate for the
	// scale.
	AccuracyTarget float64
	// RoundCap bounds runaway runs.
	RoundCap int
	// LearningRate, Decay are the SGD schedule.
	LearningRate, Decay float64

	// calibrated caches the CalibrateProblem output (the fit is
	// deterministic per setup).
	calibrated *core.Problem
	// fStar caches the centralized F(ω*) estimate.
	fStar *float64
}

// NewSetup builds the shared substrate for a scale.
func NewSetup(scale Scale) (*Setup, error) {
	var dcfg dataset.SyntheticConfig
	s := &Setup{Scale: scale, Servers: 20, Decay: 0.99}
	switch scale {
	case Quick:
		dcfg = dataset.QuickSyntheticConfig()
		dcfg.Samples = 2000
		// Noise 0.42 puts the accuracy ceiling near 0.90 so the 0.89 target
		// sits in the slow-approach regime where the paper's K/E trade-offs
		// appear (E=1 needs ~170 rounds, E=20 ~17 — the Fig. 4d U-shape).
		dcfg.Noise = 0.42
		s.AccuracyTarget = 0.89
		s.RoundCap = 300
		s.LearningRate = 0.1
	case Paper:
		dcfg = dataset.DefaultSyntheticConfig()
		s.AccuracyTarget = 0.92
		s.RoundCap = 1000
		s.LearningRate = 0.01
	case Full:
		dcfg = dataset.DefaultSyntheticConfig()
		s.Servers = 100
		s.AccuracyTarget = 0.92
		s.RoundCap = 500
		s.LearningRate = 0.01
	default:
		return nil, fmt.Errorf("scale %v: %w", scale, ErrExperiment)
	}
	testSamples, err := testSplitSamples(dcfg.Samples)
	if err != nil {
		return nil, fmt.Errorf("%v scale: %w", scale, err)
	}
	testCfg := dcfg
	testCfg.Samples = testSamples
	var train, test *dataset.Dataset
	if scale == Full {
		// The 60k×784 generation is the dominant setup cost at Full scale;
		// the per-row-stream generator fills it on every core.
		train, test, err = dataset.SynthesizePairParallel(dcfg, testCfg, 0)
	} else {
		train, test, err = dataset.SynthesizePair(dcfg, testCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("synthesize %v data: %w", scale, err)
	}
	shards, err := dataset.EqualShards(train, s.Servers, 1)
	if err != nil {
		return nil, fmt.Errorf("shard %v data: %w", scale, err)
	}
	s.Shards = shards
	s.Test = test
	return s, nil
}

// testSplitSamples returns the held-out test-set size for a training-set
// size, Samples/6 like the paper's 60k/10k split, floored at 1 so tiny
// configs never produce an empty test set (a 0-row test set only surfaced
// later as an opaque evaluator error). Degenerate sizes are an explicit
// error.
func testSplitSamples(trainSamples int) (int, error) {
	if trainSamples < 1 {
		return 0, fmt.Errorf("degenerate dataset config: %d training samples: %w", trainSamples, ErrExperiment)
	}
	n := trainSamples / 6
	if n < 1 {
		n = 1
	}
	return n, nil
}

// SamplesPerServer returns n_k (uniform shards).
func (s *Setup) SamplesPerServer() int {
	if len(s.Shards) == 0 {
		return 0
	}
	return s.Shards[0].Len()
}

// flConfig builds the engine config for one (K, E) cell.
func (s *Setup) flConfig(k, e int, seed uint64) fl.Config {
	return fl.Config{
		ClientsPerRound: k,
		LocalEpochs:     e,
		LearningRate:    s.LearningRate,
		Decay:           s.Decay,
		Activation:      ml.Softmax,
		Seed:            seed,
	}
}

// simConfig builds the simulator config for one (K, E) cell.
func (s *Setup) simConfig(k, e int, seed uint64) sim.Config {
	return sim.Config{
		Servers:   s.Servers,
		FL:        s.flConfig(k, e, seed),
		Device:    energy.DefaultPiDeviceModel(),
		Uplink:    iot.DefaultNBIoTConfig(),
		Preloaded: true,
		Seed:      seed,
	}
}

// RunTraining runs a simulated federated training at (K, E) until the
// accuracy target or the round cap, returning the result.
func (s *Setup) RunTraining(k, e int, seed uint64) (*sim.Result, error) {
	return s.RunTrainingWith(k, e, seed, RunOptions{})
}

// RunOptions tunes a single training run beyond the setup defaults. The
// zero value reproduces RunTraining exactly.
type RunOptions struct {
	// RoundCap overrides the setup's round cap when > 0 — how sweep cells
	// and the full-scale smoke keep individual runs bounded.
	RoundCap int
	// AccuracyTarget overrides the setup's stop threshold when > 0.
	AccuracyTarget float64
	// Observer receives per-round observability records (phase timings);
	// nil keeps the engine's no-observer fast path.
	Observer fl.RoundObserver
}

// RunTrainingWith is RunTraining with per-run overrides.
func (s *Setup) RunTrainingWith(k, e int, seed uint64, opts RunOptions) (*sim.Result, error) {
	cfg := s.simConfig(k, e, seed)
	cfg.Observer = opts.Observer
	system, err := sim.New(cfg, s.Shards, s.Test)
	if err != nil {
		return nil, fmt.Errorf("K=%d E=%d: %w", k, e, err)
	}
	target := opts.AccuracyTarget
	if target <= 0 {
		target = s.AccuracyTarget
	}
	cap := opts.RoundCap
	if cap <= 0 {
		cap = s.RoundCap
	}
	res, err := system.Run(fl.AnyOf(fl.TargetAccuracy(target), fl.MaxRounds(cap)))
	if err != nil {
		return nil, fmt.Errorf("K=%d E=%d: %w", k, e, err)
	}
	return res, nil
}

// RoundsToAccuracy extracts the first round index (1-based count) at which
// the history reaches the accuracy target, or -1 if it never does.
func RoundsToAccuracy(history []fl.RoundRecord, target float64) int {
	for i, rec := range history {
		if rec.TestAccuracy >= target {
			return i + 1
		}
	}
	return -1
}
