package experiments

import (
	"fmt"
	"io"
	"time"

	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/sim"
)

// Figure3Result reproduces Fig. 3: the power trace of one edge server over
// two rounds of global coordination, segmented into the four phases with
// their mean powers.
type Figure3Result struct {
	// Trace is the 1 kHz power capture.
	Trace *energy.Trace
	// Segments are the recovered phase intervals.
	Segments []energy.Interval
	// Reports are the per-phase aggregates (duration, joules, mean watts).
	Reports []energy.PhaseReport
	// Rounds is the number of coordination rounds the segmentation counts
	// (the paper shows two).
	Rounds int
	// PaperWatts are the published mean phase powers for comparison.
	PaperWatts map[energy.Phase]float64
}

// Figure3 runs two federated rounds in the simulator with full
// participation, reconstructs edge server 0's power trace, and analyses it
// exactly as the paper does with its POWER-Z captures.
func Figure3(setup *Setup, seed uint64) (*Figure3Result, error) {
	cfg := setup.simConfig(setup.Servers, 40, seed) // all servers selected, E=40
	system, err := sim.New(cfg, setup.Shards, setup.Test)
	if err != nil {
		return nil, fmt.Errorf("figure 3: %w", err)
	}
	res, err := system.Run(fl.MaxRounds(2))
	if err != nil {
		return nil, fmt.Errorf("figure 3 run: %w", err)
	}
	trace, err := system.TraceServer(res.History, 0, 2, seed+1)
	if err != nil {
		return nil, fmt.Errorf("figure 3 trace: %w", err)
	}
	seg, err := energy.NewSegmenter(cfg.Device.Power, 10)
	if err != nil {
		return nil, fmt.Errorf("figure 3 segmenter: %w", err)
	}
	segments, err := seg.Segment(trace)
	if err != nil {
		return nil, fmt.Errorf("figure 3 segmentation: %w", err)
	}
	reports, err := seg.Report(trace)
	if err != nil {
		return nil, fmt.Errorf("figure 3 report: %w", err)
	}
	return &Figure3Result{
		Trace:    trace,
		Segments: segments,
		Reports:  reports,
		Rounds:   energy.CountRounds(segments),
		PaperWatts: map[energy.Phase]float64{
			energy.PhaseWaiting:  3.600,
			energy.PhaseDownload: 4.286,
			energy.PhaseTrain:    5.553,
			energy.PhaseUpload:   5.015,
		},
	}, nil
}

// Render writes the per-phase summary and a coarse ASCII rendering of the
// trace itself.
func (r *Figure3Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 3 — edge-server power over %d rounds (%.2f s, %d samples)\n",
		r.Rounds, r.Trace.Duration().Seconds(), len(r.Trace.Samples)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %10s %12s %12s\n",
		"phase", "dur (s)", "joules", "mean W", "paper W"); err != nil {
		return err
	}
	for _, rep := range r.Reports {
		if _, err := fmt.Fprintf(w, "%-10s %10.3f %10.3f %12.3f %12.3f\n",
			rep.Phase, rep.Duration.Seconds(), rep.Joules, rep.MeanWatts, r.PaperWatts[rep.Phase]); err != nil {
			return err
		}
	}
	// Downsampled sparkline: 60 buckets over the trace.
	const buckets = 60
	if _, err := fmt.Fprint(w, "trace: "); err != nil {
		return err
	}
	total := r.Trace.Duration()
	for b := 0; b < buckets; b++ {
		from := time.Duration(float64(total) * float64(b) / buckets)
		to := time.Duration(float64(total) * float64(b+1) / buckets)
		mean := r.Trace.MeanPowerBetween(from, to)
		if _, err := fmt.Fprint(w, sparkGlyph(mean)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// sparkGlyph maps a power level to a height glyph between the idle and
// training levels.
func sparkGlyph(watts float64) string {
	glyphs := []string{"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}
	lo, hi := 3.5, 5.7
	frac := (watts - lo) / (hi - lo)
	idx := int(frac * float64(len(glyphs)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(glyphs) {
		idx = len(glyphs) - 1
	}
	return glyphs[idx]
}
