package experiments

import (
	"fmt"
	"io"
	"math"

	"eefei/internal/core"
	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/iot"
	"eefei/internal/ml"
	"eefei/internal/sim"
)

// maxSweep returns the largest E the theory curve must stay feasible for.
func maxSweep(es []int, pinnedE int) int {
	out := pinnedE
	for _, e := range es {
		if e > out {
			out = e
		}
	}
	if out < 100 {
		out = 100
	}
	return out
}

// EnergyCurvePoint is one point of the Fig. 5/6 energy curves.
type EnergyCurvePoint struct {
	// Param is the swept value (K for Fig. 5, E for Fig. 6).
	Param int
	// MeasuredJoules is the simulated-prototype energy to train to the
	// accuracy target (the paper's "real traces" dashed line).
	MeasuredJoules float64
	// TheoryJoules is the bound-based Ê of Eq. (12) (the solid line).
	TheoryJoules float64
	// EmpiricalRounds is the measured T to reach the target (-1 if the cap
	// was hit first).
	EmpiricalRounds int
	// TheoryRounds is the bound's T* for this configuration.
	TheoryRounds float64
	// FinalAccuracy is the accuracy when the run stopped.
	FinalAccuracy float64
}

// Figure5Result reproduces Fig. 5: total energy vs K at pinned E, theory vs
// measurement, with both K* markers.
type Figure5Result struct {
	Points  []EnergyCurvePoint
	PinnedE int
	// KStarTheory is from Eq. (15) on the calibrated problem.
	KStarTheory int
	// KStarMeasured is the argmin of the measured curve.
	KStarMeasured int
	// Problem is the calibrated problem used for the theory curve.
	Problem core.Problem
}

// Figure6Result reproduces Fig. 6: total energy vs E at pinned K, theory vs
// measurement, both E* markers, and the headline saving versus (K=1, E=1).
type Figure6Result struct {
	Points  []EnergyCurvePoint
	PinnedK int
	// EStarTheory is from the corrected Eq. (17) on the calibrated problem.
	EStarTheory int
	// EStarMeasured is the argmin of the measured curve.
	EStarMeasured int
	// MeasuredSavings is 1 − min(measured)/measured(E=1) — the paper
	// reports 49.8% at paper scale.
	MeasuredSavings float64
	// TheorySavings is the same ratio on the theory curve.
	TheorySavings float64
	Problem       core.Problem
}

// SweepConfig tunes the energy sweeps; zero values select the paper's
// settings.
type SweepConfig struct {
	// Ks is the Fig.-5 sweep (default 1,2,5,10,20).
	Ks []int
	// Es is the Fig.-6 sweep (default 1,5,10,20,40,60,100).
	Es []int
	// PinnedE is the Fig.-5 local epoch count (default 40).
	PinnedE int
	// PinnedK is the Fig.-6 client count (default 1, the IID optimum).
	PinnedK int
}

func (c *SweepConfig) defaults() {
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 2, 5, 10, 20}
	}
	if len(c.Es) == 0 {
		c.Es = []int{1, 5, 10, 20, 40, 60, 100}
	}
	if c.PinnedE <= 0 {
		c.PinnedE = 40
	}
	if c.PinnedK <= 0 {
		c.PinnedK = 1
	}
}

// sweepRun is the outcome of one measured training at a sweep point.
type sweepRun struct {
	k, e     int
	result   *sim.Result
	rounds   int // rounds to target, -1 when capped
	measured float64
}

// runSweep trains at each (k, e) cell and returns the runs.
func runSweep(setup *Setup, cells [][2]int) ([]sweepRun, error) {
	runs := make([]sweepRun, 0, len(cells))
	for _, cell := range cells {
		k, e := cell[0], cell[1]
		res, err := setup.RunTraining(k, e, 1)
		if err != nil {
			return nil, fmt.Errorf("sweep (K=%d,E=%d): %w", k, e, err)
		}
		runs = append(runs, sweepRun{
			k: k, e: e,
			result:   res,
			rounds:   RoundsToAccuracy(res.History, setup.AccuracyTarget),
			measured: res.TotalJoules(),
		})
	}
	return runs, nil
}

// FStar estimates the global minimum loss F(ω*) by long centralized
// full-batch training over the union of all shards. The estimate is cached
// on the setup: it must sit at or below every loss a federated run can
// reach, so it trains an order of magnitude longer than the experiments do.
func FStar(setup *Setup, epochs int) (float64, error) {
	if epochs <= 0 {
		if setup.fStar != nil {
			return *setup.fStar, nil
		}
		epochs = 2000
	}
	union, err := concatShards(setup)
	if err != nil {
		return 0, err
	}
	model := ml.NewModel(union.Classes, union.Dim(), ml.Softmax)
	sgd, err := ml.NewSGD(ml.SGDConfig{LearningRate: setup.LearningRate, Decay: 0.9995, DecayEvery: 1})
	if err != nil {
		return 0, fmt.Errorf("f* sgd: %w", err)
	}
	if _, err := sgd.Train(model, union, epochs); err != nil {
		return 0, fmt.Errorf("f* training: %w", err)
	}
	loss, err := ml.Loss(model, union)
	if err != nil {
		return 0, fmt.Errorf("f* loss: %w", err)
	}
	if epochs == 2000 {
		setup.fStar = &loss
	}
	return loss, nil
}

// CalibrateProblem closes the measurement → model loop the paper performs
// between Sections IV and VI: it trains a small, well-conditioned grid of
// (K, E) cells for a fixed number of rounds (so K, E and T all vary in the
// data), estimates F* by centralized training, fits the bound constants to
// the observed loss-gap trajectories, and derives scale-appropriate energy
// params. The target gap ε is taken from a reference run's gap at the
// accuracy target, floored so every configuration with K ≥ 1 and E ≤ eMax
// stays feasible (otherwise the theory curve would be +Inf at swept points).
// The result is cached on the Setup.
func CalibrateProblem(setup *Setup, eMax int) (core.Problem, error) {
	if setup.calibrated != nil {
		return *setup.calibrated, nil
	}
	if eMax < 1 {
		eMax = 100
	}
	fStar, err := FStar(setup, 0)
	if err != nil {
		return core.Problem{}, err
	}

	// Calibration grid: K and E both vary; every run goes a fixed 12 rounds
	// so the trajectories sample many T values.
	grid := [][2]int{{1, 1}, {1, 8}, {1, 64}, {4, 1}, {4, 8}, {4, 32}, {16, 3}}
	const calibrationRounds = 12
	var obs []core.GapObservation
	for _, cell := range grid {
		k, e := cell[0], cell[1]
		system, err := sim.New(setup.simConfig(k, e, 2), setup.Shards, setup.Test)
		if err != nil {
			return core.Problem{}, fmt.Errorf("calibrate (K=%d,E=%d): %w", k, e, err)
		}
		res, err := system.Run(fl.MaxRounds(calibrationRounds))
		if err != nil {
			return core.Problem{}, fmt.Errorf("calibrate run (K=%d,E=%d): %w", k, e, err)
		}
		for t, rec := range res.History {
			gap := rec.TrainLoss - fStar
			if gap <= 0 {
				continue
			}
			obs = append(obs, core.GapObservation{K: k, E: e, T: t + 1, Gap: gap})
		}
	}
	// Fit A0 and A1 with an explicit intercept so the irreducible
	// noise-floor gap does not masquerade as a 1/K dependence. The A2 term
	// is deliberately left out of the regression: within short calibration
	// runs, large E *reduces* the gap (more local work per round), and the
	// drift penalty only shows up asymptotically — we pin A2 from
	// to-target reference runs below instead.
	a0, a1, err := fitA0A1(obs)
	if err != nil {
		return core.Problem{}, fmt.Errorf("calibrate bound: %w", err)
	}
	bound := core.BoundConstants{A0: a0, A1: a1}

	// Pin (ε, A2) so the theory reproduces two empirical reference points
	// exactly: T*(K,E) = T_emp at (4, 8) and at (1, 64). From Eq. (11),
	// each gives ε = A1/K + A2(E−1) + A0/(T_emp·E); two equations, two
	// unknowns.
	t1, err := roundsToTarget(setup, 4, 8)
	if err != nil {
		return core.Problem{}, err
	}
	t2, err := roundsToTarget(setup, 1, 64)
	if err != nil {
		return core.Problem{}, err
	}
	base1 := bound.A1/4 + bound.A0/(float64(t1)*8)
	base2 := bound.A1/1 + bound.A0/(float64(t2)*64)
	bound.A2 = (base2 - base1) / (7 - 63) // negative slope → positive A2 when ref2 is "harder"
	if bound.A2 < 0 {
		bound.A2 = 0
	}
	eps := base1 + bound.A2*7

	// Feasibility floor: slack at (K=1, E=eMax) must stay positive.
	if floor := (bound.A1 + bound.A2*float64(eMax-1)) * 1.25; eps < floor {
		eps = floor
	}

	params, err := core.NewEnergyParams(energy.DefaultPiDeviceModel(), iot.DefaultNBIoTConfig(),
		setup.SamplesPerServer(), true)
	if err != nil {
		return core.Problem{}, fmt.Errorf("calibrate energy: %w", err)
	}
	p := core.Problem{Bound: bound, Energy: params, Epsilon: eps, Servers: setup.Servers}
	if err := p.Validate(); err != nil {
		return core.Problem{}, fmt.Errorf("calibrated problem: %w", err)
	}
	setup.calibrated = &p
	return p, nil
}

// Figure5 runs the K-sweep and assembles theory vs measurement.
func Figure5(setup *Setup, cfg SweepConfig) (*Figure5Result, error) {
	cfg.defaults()
	cells := make([][2]int, 0, len(cfg.Ks))
	for _, k := range cfg.Ks {
		cells = append(cells, [2]int{k, cfg.PinnedE})
	}
	runs, err := runSweep(setup, cells)
	if err != nil {
		return nil, err
	}
	problem, err := CalibrateProblem(setup, maxSweep(cfg.Es, cfg.PinnedE))
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{PinnedE: cfg.PinnedE, Problem: problem}
	bestMeasured := math.Inf(1)
	for _, r := range runs {
		pt := EnergyCurvePoint{
			Param:           r.k,
			MeasuredJoules:  r.measured,
			TheoryJoules:    problem.Objective(float64(r.k), float64(cfg.PinnedE)),
			EmpiricalRounds: r.rounds,
			FinalAccuracy:   r.result.FinalAccuracy,
		}
		if t, err := problem.TStar(float64(r.k), float64(cfg.PinnedE)); err == nil {
			pt.TheoryRounds = t
		} else {
			pt.TheoryRounds = math.NaN()
		}
		if r.measured < bestMeasured {
			bestMeasured = r.measured
			res.KStarMeasured = r.k
		}
		res.Points = append(res.Points, pt)
	}
	if kStar, err := problem.OptimalK(float64(cfg.PinnedE)); err == nil {
		res.KStarTheory = int(math.Round(kStar))
	} else {
		res.KStarTheory = -1
	}
	return res, nil
}

// Figure6 runs the E-sweep and assembles theory vs measurement plus the
// headline savings.
func Figure6(setup *Setup, cfg SweepConfig) (*Figure6Result, error) {
	cfg.defaults()
	cells := make([][2]int, 0, len(cfg.Es))
	for _, e := range cfg.Es {
		cells = append(cells, [2]int{cfg.PinnedK, e})
	}
	runs, err := runSweep(setup, cells)
	if err != nil {
		return nil, err
	}
	problem, err := CalibrateProblem(setup, maxSweep(cfg.Es, cfg.PinnedE))
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{PinnedK: cfg.PinnedK, Problem: problem}
	bestMeasured := math.Inf(1)
	var baselineMeasured, baselineTheory float64
	var bestTheory = math.Inf(1)
	for _, r := range runs {
		pt := EnergyCurvePoint{
			Param:           r.e,
			MeasuredJoules:  r.measured,
			TheoryJoules:    problem.Objective(float64(cfg.PinnedK), float64(r.e)),
			EmpiricalRounds: r.rounds,
			FinalAccuracy:   r.result.FinalAccuracy,
		}
		if t, err := problem.TStar(float64(cfg.PinnedK), float64(r.e)); err == nil {
			pt.TheoryRounds = t
		} else {
			pt.TheoryRounds = math.NaN()
		}
		if r.e == 1 {
			baselineMeasured = r.measured
			baselineTheory = pt.TheoryJoules
		}
		if r.measured < bestMeasured {
			bestMeasured = r.measured
			res.EStarMeasured = r.e
		}
		if pt.TheoryJoules < bestTheory {
			bestTheory = pt.TheoryJoules
		}
		res.Points = append(res.Points, pt)
	}
	if eStar, err := problem.OptimalE(float64(cfg.PinnedK)); err == nil && !math.IsInf(eStar, 1) {
		res.EStarTheory = int(math.Round(eStar))
	} else {
		res.EStarTheory = -1
	}
	if baselineMeasured > 0 {
		res.MeasuredSavings = 1 - bestMeasured/baselineMeasured
	} else {
		res.MeasuredSavings = math.NaN()
	}
	if baselineTheory > 0 && !math.IsInf(baselineTheory, 1) {
		res.TheorySavings = 1 - bestTheory/baselineTheory
	} else {
		res.TheorySavings = math.NaN()
	}
	return res, nil
}

// Render writes the Fig.-5 table.
func (r *Figure5Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 5 — energy vs K (E=%d): theory (Eq.12) vs simulated measurement\n", r.PinnedE); err != nil {
		return err
	}
	if err := renderEnergyPoints(w, "K", r.Points); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "K*: theory %d, measured %d (paper: 1 under IID)\n",
		r.KStarTheory, r.KStarMeasured)
	return err
}

// Render writes the Fig.-6 table.
func (r *Figure6Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 6 — energy vs E (K=%d): theory (Eq.12) vs simulated measurement\n", r.PinnedK); err != nil {
		return err
	}
	if err := renderEnergyPoints(w, "E", r.Points); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "E*: theory %d, measured %d; savings vs E=1: measured %.1f%%, theory %.1f%% (paper: 49.8%%)\n",
		r.EStarTheory, r.EStarMeasured, 100*r.MeasuredSavings, 100*r.TheorySavings)
	return err
}

func renderEnergyPoints(w io.Writer, param string, pts []EnergyCurvePoint) error {
	if _, err := fmt.Fprintf(w, "%4s %14s %14s %10s %10s %10s\n",
		param, "measured (J)", "theory (J)", "T emp", "T*", "final acc"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%4d %14.2f %14.2f %10d %10.1f %10.4f\n",
			p.Param, p.MeasuredJoules, p.TheoryJoules, p.EmpiricalRounds, p.TheoryRounds, p.FinalAccuracy); err != nil {
			return err
		}
	}
	return nil
}
