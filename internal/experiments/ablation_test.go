package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestLabelSkewAblationShiftsOptimalK(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	setup := quickSetup(t)
	ks := []int{1, 8}
	points, err := LabelSkewAblation(setup, []float64{0, 0.9}, ks, 10)
	if err != nil {
		t.Fatalf("LabelSkewAblation: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	iid, skewed := points[0], points[1]
	// Under heavy skew, single-client rounds see biased gradients: K=1 must
	// need several times the IID round count (or miss the target entirely).
	iidT, skewT := iid.RoundsByK[1], skewed.RoundsByK[1]
	if skewT > 0 && iidT > 0 && skewT < 2*iidT {
		t.Errorf("skewed K=1 needed %d rounds vs IID %d — expected skew to hurt badly", skewT, iidT)
	}
	// Averaging more clients per round must mitigate the skew: K=8 reaches
	// the target in fewer rounds than K=1 does.
	if k8 := skewed.RoundsByK[8]; skewT > 0 && k8 > 0 && k8 >= skewT {
		t.Errorf("under alpha=0.9, K=8 took %d rounds vs K=1's %d — averaging did not help", k8, skewT)
	}
	var buf bytes.Buffer
	if err := RenderSkew(&buf, points, ks); err != nil {
		t.Fatalf("RenderSkew: %v", err)
	}
	if !strings.Contains(buf.String(), "label skew") {
		t.Error("render missing title")
	}
}

func TestQuantizationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	setup := quickSetup(t)
	points, err := QuantizationAblation(setup)
	if err != nil {
		t.Fatalf("QuantizationAblation: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3 (float64, 16-bit, 8-bit)", len(points))
	}
	full, q16, q8 := points[0], points[1], points[2]
	if !(q8.Bytes < q16.Bytes && q16.Bytes < full.Bytes) {
		t.Errorf("byte ordering wrong: %d, %d, %d", full.Bytes, q16.Bytes, q8.Bytes)
	}
	if !(q8.UploadJoules < q16.UploadJoules && q16.UploadJoules < full.UploadJoules) {
		t.Error("upload energy must shrink with the payload")
	}
	// ~8x compression at 8 bits.
	if ratio := float64(full.Bytes) / float64(q8.Bytes); ratio < 6 {
		t.Errorf("8-bit compression ratio = %.1f, want > 6", ratio)
	}
	// Accuracy must survive quantization nearly unchanged.
	if q8.Accuracy < full.Accuracy-0.02 {
		t.Errorf("8-bit accuracy %.4f dropped more than 2%% below %.4f", q8.Accuracy, full.Accuracy)
	}
	var buf bytes.Buffer
	if err := RenderQuant(&buf, points); err != nil {
		t.Fatalf("RenderQuant: %v", err)
	}
	if !strings.Contains(buf.String(), "quantized") {
		t.Error("render missing title")
	}
}

func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("training repetitions")
	}
	setup := quickSetup(t)
	sum, err := SeedStability(setup, 4, 10, 3)
	if err != nil {
		t.Fatalf("SeedStability: %v", err)
	}
	if sum.N != 3 || sum.Mean <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	// Seed noise should be moderate relative to the mean at this config.
	if sum.StdDev > sum.Mean {
		t.Errorf("energy noise (σ=%v) exceeds the mean (%v)", sum.StdDev, sum.Mean)
	}
}

func TestCSVWriters(t *testing.T) {
	setup := quickSetup(t)

	t1, err := Table1(1)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, t1); err != nil {
		t.Fatalf("WriteTable1CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 13 { // header + 12 rows
		t.Errorf("table1 csv lines = %d, want 13", len(lines))
	}
	if !strings.HasPrefix(lines[0], "epochs,samples") {
		t.Errorf("table1 csv header = %q", lines[0])
	}

	f3, err := Figure3(setup, 1)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	buf.Reset()
	if err := WriteTraceCSV(&buf, f3); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(f3.Trace.Samples)+1 {
		t.Errorf("trace csv lines = %d, want %d", got, len(f3.Trace.Samples)+1)
	}

	// Energy-curve CSV from synthetic points.
	buf.Reset()
	pts := []EnergyCurvePoint{{Param: 1, MeasuredJoules: 2.5, TheoryJoules: 1.25, EmpiricalRounds: 7, TheoryRounds: 6.5, FinalAccuracy: 0.9}}
	if err := WriteEnergyCurveCSV(&buf, "K", pts); err != nil {
		t.Fatalf("WriteEnergyCurveCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "K,measured_joules") || !strings.Contains(buf.String(), "2.5") {
		t.Errorf("energy csv = %q", buf.String())
	}
}

func TestFigure4CSV(t *testing.T) {
	r := &Figure4Result{
		FixedE: []Figure4Series{{Label: "K=1,E=40", K: 1, E: 40, Loss: []float64{2, 1}, Accuracy: []float64{0.5, 0.8}}},
	}
	var buf bytes.Buffer
	if err := WriteFigure4CSV(&buf, r); err != nil {
		t.Fatalf("WriteFigure4CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("fig4 csv lines = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[1], "\"K=1,E=40\"") && !strings.Contains(lines[1], "K=1,E=40") {
		t.Errorf("fig4 csv row = %q", lines[1])
	}
}

func TestCompareAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison")
	}
	setup := quickSetup(t)
	cmp, err := CompareAsync(setup, 4, 5, 0.6)
	if err != nil {
		t.Fatalf("CompareAsync: %v", err)
	}
	if cmp.SyncRounds <= 0 || cmp.AsyncUpdates <= 0 {
		t.Fatalf("degenerate comparison: %+v", cmp)
	}
	if cmp.SyncFinalAccuracy < setup.AccuracyTarget-0.05 {
		t.Errorf("sync never got close to target: %v", cmp.SyncFinalAccuracy)
	}
	if cmp.AsyncFinalAccuracy < setup.AccuracyTarget-0.05 {
		t.Errorf("async never got close to target: %v", cmp.AsyncFinalAccuracy)
	}
	if cmp.SyncJoules <= 0 || cmp.AsyncJoules <= 0 {
		t.Error("energies must be positive")
	}
	var buf bytes.Buffer
	if err := cmp.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "async") {
		t.Error("render missing async row")
	}
}
