package experiments

import (
	"fmt"
	"io"
	"time"

	"eefei/internal/energy"
)

// Table1Row is one row of Table I: the duration of local-training step (3)
// for a given (E, n_k), simulated by our calibrated device model next to the
// paper's measured value.
type Table1Row struct {
	Epochs  int
	Samples int
	// SimSeconds is the duration our device model produces, measured from a
	// recorded power trace (not read off the analytic law, so the full
	// meter → trace → segmentation pipeline is exercised).
	SimSeconds float64
	// PaperSeconds is the published measurement.
	PaperSeconds float64
}

// Table1Result is the full reproduction of Table I plus the least-squares
// coefficient fits (Section VI-B) from both data sources.
type Table1Result struct {
	Rows []Table1Row
	// SimC0, SimC1 are fitted from our simulated measurements.
	SimC0, SimC1 float64
	// PaperC0, PaperC1 are fitted from the paper's own rows (the paper
	// reports 7.79e-5 and 3.34e-3).
	PaperC0, PaperC1 float64
}

// Table1 reproduces Table I: it "measures" step-(3) durations with the
// simulated 1 kHz meter for every (E, n_k) combination of the paper and fits
// the c0/c1 energy coefficients from the resulting observations.
func Table1(seed uint64) (*Table1Result, error) {
	dm := energy.DefaultPiDeviceModel()
	meter, err := energy.NewMeter(dm.Power, 1000, seed)
	if err != nil {
		return nil, fmt.Errorf("table 1 meter: %w", err)
	}
	paperRows := energy.PaperTableI()
	res := &Table1Result{Rows: make([]Table1Row, 0, len(paperRows))}
	var simObs []energy.TrainObservation
	for _, p := range paperRows {
		obs, err := energy.MeasureTraining(meter, dm.Time, p.Epochs, p.Samples)
		if err != nil {
			return nil, fmt.Errorf("table 1 E=%d n=%d: %w", p.Epochs, p.Samples, err)
		}
		simObs = append(simObs, obs)
		res.Rows = append(res.Rows, Table1Row{
			Epochs:       p.Epochs,
			Samples:      p.Samples,
			SimSeconds:   obs.Duration.Seconds(),
			PaperSeconds: p.Duration.Seconds(),
		})
	}
	res.SimC0, res.SimC1, err = energy.FitCoefficients(simObs)
	if err != nil {
		return nil, fmt.Errorf("table 1 sim fit: %w", err)
	}
	res.PaperC0, res.PaperC1, err = energy.FitCoefficients(paperRows)
	if err != nil {
		return nil, fmt.Errorf("table 1 paper fit: %w", err)
	}
	return res, nil
}

// Render writes the table in the paper's layout plus the fit summary.
func (r *Table1Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table I — duration of local training step (3)\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %6s %14s %14s %8s\n", "E", "n_k", "sim (s)", "paper (s)", "Δ%"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		delta := 100 * (row.SimSeconds - row.PaperSeconds) / row.PaperSeconds
		if _, err := fmt.Fprintf(w, "%4d %6d %14.4f %14.4f %+7.1f\n",
			row.Epochs, row.Samples, row.SimSeconds, row.PaperSeconds, delta); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"fit  c0: sim %.3e  paper-rows %.3e  (published 7.79e-05)\n"+
			"fit  c1: sim %.3e  paper-rows %.3e  (published 3.34e-03)\n",
		r.SimC0, r.PaperC0, r.SimC1, r.PaperC1)
	return err
}

// Table2Row is one line of Table II, the simulation configuration echo.
type Table2Row struct{ Key, Value string }

// Table2 reproduces Table II verbatim: the model/training configuration the
// evaluation uses.
func Table2() []Table2Row {
	return []Table2Row{
		{"Model Type", "Multinomial Logistic Regression"},
		{"Input Size", "784*1"},
		{"Output Size", "10*1"},
		{"Activation Function", "Sigmoid"},
		{"Optimizer", "SGD, learning rate 0.01 with decay rate 0.99"},
	}
}

// RenderTable2 writes Table II.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	if _, err := fmt.Fprintln(w, "Table II — simulation configuration"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-22s %s\n", r.Key, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// Table1Durations exposes the analytic duration law for external sweeps.
func Table1Durations(epochs, samples int) time.Duration {
	return energy.DefaultPiTimeModel().TrainDuration(epochs, samples)
}
