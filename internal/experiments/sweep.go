package experiments

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eefei/internal/energy"
	"eefei/internal/fl"
)

// The (K, E) sweep subsystem: a grid of federated training cells executed on
// a bounded worker pool, checkpointed to JSONL after every completed cell,
// and reduced to an energy/accuracy Pareto frontier (frontier.go). Three
// contracts, all pinned by tests:
//
//   - Bit-identity: every cell trains from a seed derived only from
//     (SweepSpec.Seed, K, E), so any worker count — including 1 — produces
//     byte-identical checkpoints and frontiers (the same contract
//     fl.Engine.Round honors for its training pool).
//   - Grid-order checkpoints: cells are flushed in grid order (K-major),
//     regardless of completion order, so the checkpoint file is itself
//     deterministic and any prefix of it is a valid resume point.
//   - Resume: a sweep restarted from a checkpoint prefix recomputes only the
//     missing cells and reproduces the uninterrupted artifacts
//     byte-for-byte.

// Axis and grid bounds — parse-time guards so a malformed grid string can
// never allocate an unbounded cell list.
const (
	// maxSweepAxis bounds the number of values on one grid axis.
	maxSweepAxis = 4096
	// maxSweepEpochs bounds E (local epochs per round).
	maxSweepEpochs = 10000
)

// SweepSpec describes a (K, E) sweep grid. Build one with ParseSweepGrid or
// by hand; RunSweep validates it against the setup's server count.
type SweepSpec struct {
	// Ks, Es are the grid axes; cells run K-major (for each K, every E).
	Ks []int `json:"ks"`
	Es []int `json:"es"`
	// Seed is the base seed every per-cell seed derives from.
	Seed uint64 `json:"seed"`
	// RoundCap overrides the setup's per-run round cap when > 0.
	RoundCap int `json:"round_cap,omitempty"`
	// AccuracyTarget overrides the setup's stop threshold when > 0.
	AccuracyTarget float64 `json:"accuracy_target,omitempty"`
}

// Validate checks the grid against a server count. Errors wrap
// ErrExperiment and always report the first offending value in grid order,
// so rejection is deterministic.
func (s *SweepSpec) Validate(servers int) error {
	if servers < 1 {
		return fmt.Errorf("sweep: %d servers: %w", servers, ErrExperiment)
	}
	if len(s.Ks) == 0 || len(s.Es) == 0 {
		return fmt.Errorf("sweep: grid needs at least one K and one E value: %w", ErrExperiment)
	}
	if len(s.Ks) > maxSweepAxis || len(s.Es) > maxSweepAxis {
		return fmt.Errorf("sweep: axis of %d/%d values exceeds %d: %w",
			len(s.Ks), len(s.Es), maxSweepAxis, ErrExperiment)
	}
	seenK := make(map[int]bool, len(s.Ks))
	for _, k := range s.Ks {
		if k < 1 || k > servers {
			return fmt.Errorf("sweep: K=%d out of range [1,%d]: %w", k, servers, ErrExperiment)
		}
		if seenK[k] {
			return fmt.Errorf("sweep: duplicate K=%d: %w", k, ErrExperiment)
		}
		seenK[k] = true
	}
	seenE := make(map[int]bool, len(s.Es))
	for _, e := range s.Es {
		if e < 1 || e > maxSweepEpochs {
			return fmt.Errorf("sweep: E=%d out of range [1,%d]: %w", e, maxSweepEpochs, ErrExperiment)
		}
		if seenE[e] {
			return fmt.Errorf("sweep: duplicate E=%d: %w", e, ErrExperiment)
		}
		seenE[e] = true
	}
	if s.RoundCap < 0 {
		return fmt.Errorf("sweep: round cap %d: %w", s.RoundCap, ErrExperiment)
	}
	if s.AccuracyTarget < 0 || s.AccuracyTarget > 1 {
		return fmt.Errorf("sweep: accuracy target %v outside [0,1]: %w", s.AccuracyTarget, ErrExperiment)
	}
	return nil
}

// ParseSweepGrid parses the CLI grid syntax:
//
//	K=1,5,10,50,100;E=1,5,20
//
// Both axes are required, in either order. Elements are positive integers
// or inclusive ranges a..b (K=1..100 is the full paper grid). Duplicate
// values, duplicate axes, and unknown axes are rejected; all errors wrap
// ErrExperiment. Seed and overrides are left at zero for the caller.
func ParseSweepGrid(grid string) (SweepSpec, error) {
	var spec SweepSpec
	for _, part := range strings.Split(grid, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return SweepSpec{}, fmt.Errorf("sweep grid %q: empty section: %w", grid, ErrExperiment)
		}
		axis, list, ok := strings.Cut(part, "=")
		if !ok {
			return SweepSpec{}, fmt.Errorf("sweep grid section %q: want axis=v1,v2,…: %w", part, ErrExperiment)
		}
		vals, err := parseSweepAxis(list)
		if err != nil {
			return SweepSpec{}, fmt.Errorf("sweep grid section %q: %w", part, err)
		}
		switch strings.TrimSpace(axis) {
		case "K":
			if spec.Ks != nil {
				return SweepSpec{}, fmt.Errorf("sweep grid %q: duplicate K axis: %w", grid, ErrExperiment)
			}
			spec.Ks = vals
		case "E":
			if spec.Es != nil {
				return SweepSpec{}, fmt.Errorf("sweep grid %q: duplicate E axis: %w", grid, ErrExperiment)
			}
			spec.Es = vals
		default:
			return SweepSpec{}, fmt.Errorf("sweep grid section %q: unknown axis (want K or E): %w", part, ErrExperiment)
		}
	}
	if spec.Ks == nil || spec.Es == nil {
		return SweepSpec{}, fmt.Errorf("sweep grid %q: need both a K= and an E= axis: %w", grid, ErrExperiment)
	}
	for _, axis := range []struct {
		name string
		vals []int
	}{{"K", spec.Ks}, {"E", spec.Es}} {
		seen := make(map[int]bool, len(axis.vals))
		for _, v := range axis.vals {
			if seen[v] {
				return SweepSpec{}, fmt.Errorf("sweep grid %q: duplicate %s=%d: %w", grid, axis.name, v, ErrExperiment)
			}
			seen[v] = true
		}
	}
	return spec, nil
}

// parseSweepAxis expands one comma-separated value list ("1,5,10" or
// "1..100" or a mix).
func parseSweepAxis(list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		lo, hi := tok, tok
		if a, b, ok := strings.Cut(tok, ".."); ok {
			lo, hi = strings.TrimSpace(a), strings.TrimSpace(b)
		}
		first, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("value %q: %v: %w", tok, err, ErrExperiment)
		}
		last, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("value %q: %v: %w", tok, err, ErrExperiment)
		}
		if first < 1 || last < 1 {
			return nil, fmt.Errorf("value %q: sweep values must be >= 1: %w", tok, ErrExperiment)
		}
		if last < first {
			return nil, fmt.Errorf("range %q: descending: %w", tok, ErrExperiment)
		}
		if last-first+1 > maxSweepAxis || len(out)+(last-first+1) > maxSweepAxis {
			return nil, fmt.Errorf("axis exceeds %d values: %w", maxSweepAxis, ErrExperiment)
		}
		for v := first; v <= last; v++ {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty axis: %w", ErrExperiment)
	}
	return out, nil
}

// SweepCell identifies one grid cell and its derived seed.
type SweepCell struct {
	Index int
	K, E  int
	Seed  uint64
}

// Cells expands the grid in its canonical K-major order.
func (s SweepSpec) Cells() []SweepCell {
	out := make([]SweepCell, 0, len(s.Ks)*len(s.Es))
	for _, k := range s.Ks {
		for _, e := range s.Es {
			out = append(out, SweepCell{Index: len(out), K: k, E: e, Seed: cellSeed(s.Seed, k, e)})
		}
	}
	return out
}

// cellSeed derives the per-cell training seed from (base, K, E) alone —
// never from scheduling — via a SplitMix64 finalizer, so parallel execution
// is bit-identical to sequential.
func cellSeed(base uint64, k, e int) uint64 {
	z := base ^ uint64(k)<<32 ^ uint64(uint32(e))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CellResult is the recorded outcome of one sweep cell — one JSONL
// checkpoint line. All fields are deterministic functions of the cell seed
// and the setup (wall-clock here is the simulator's virtual time).
type CellResult struct {
	// Index is the cell's position in the canonical grid order.
	Index int `json:"index"`
	// K, E are the cell's hyper-parameters; Seed is its derived seed.
	K    int    `json:"k"`
	E    int    `json:"e"`
	Seed uint64 `json:"seed"`
	// Rounds is how many rounds ran; RoundsToTarget is the first round
	// reaching the accuracy target (-1 when the cap hit first).
	Rounds         int `json:"rounds"`
	RoundsToTarget int `json:"rounds_to_target"`
	// FinalAccuracy / FinalLoss are the last round's metrics.
	FinalAccuracy float64 `json:"final_accuracy"`
	FinalLoss     float64 `json:"final_loss"`
	// TotalJoules is the run's full energy-ledger total (plus IoT
	// collection); PhaseJoules breaks it down by ledger phase, keyed by the
	// canonical phase names energy.Calibrator uses.
	TotalJoules      float64            `json:"total_joules"`
	PhaseJoules      map[string]float64 `json:"phase_joules"`
	CollectionJoules float64            `json:"collection_joules,omitempty"`
	// WallClockSeconds is the simulated (virtual) training time.
	WallClockSeconds float64 `json:"wall_clock_seconds"`
}

// SweepProgress is one progress report: cell Done-1 just committed.
type SweepProgress struct {
	// Done / Total count committed vs. grid cells (resumed cells included).
	Done, Total int
	// Cell is the result that just committed (grid order).
	Cell CellResult
	// Elapsed is real time since RunSweep started; ETA extrapolates it over
	// the remaining cells (resumed cells excluded from the rate).
	Elapsed, ETA time.Duration
}

// SweepObserver watches a sweep complete cell by cell — the hook that makes
// multi-hour full-scale runs watchable. Observers are called in grid order
// under the sweep's commit lock: a slow observer delays checkpointing but
// never the training workers' determinism.
type SweepObserver interface {
	ObserveCell(SweepProgress)
}

// SweepObserverFunc adapts a function to SweepObserver.
type SweepObserverFunc func(SweepProgress)

// ObserveCell implements SweepObserver.
func (f SweepObserverFunc) ObserveCell(p SweepProgress) { f(p) }

// SweepOptions configures RunSweep beyond the spec.
type SweepOptions struct {
	// Workers bounds the cell pool (<= 0: GOMAXPROCS). Any value produces
	// byte-identical artifacts.
	Workers int
	// Checkpoint, when non-nil, receives one JSON line per cell in grid
	// order — resumed cells are re-emitted first, so the sink always holds
	// a complete prefix of the grid and an interrupted sweep can resume
	// from it without recomputation.
	Checkpoint io.Writer
	// Resume is a previously checkpointed prefix (ReadSweepCheckpoint);
	// those cells are trusted and skipped. It must match this spec's grid
	// exactly or RunSweep errors.
	Resume []CellResult
	// Observer receives per-cell progress.
	Observer SweepObserver
	// RoundObserver is attached to every cell's engine (per-round phase
	// timings; a fl.TraceWriter makes the sweep traceable). With Workers >
	// 1 cells run concurrently, so it must be safe for concurrent use.
	RoundObserver fl.RoundObserver
}

// SweepResult is a completed sweep.
type SweepResult struct {
	Spec SweepSpec
	// Cells holds every cell result in grid order.
	Cells []CellResult
}

// RunSweep executes the spec's grid over the setup. Cells run on a bounded
// worker pool; results commit (checkpoint + observer) strictly in grid
// order. Cancelling ctx stops the sweep at the next cell boundary with an
// error wrapping ctx.Err(); everything committed by then remains valid for
// resumption.
func RunSweep(ctx context.Context, setup *Setup, spec SweepSpec, opts SweepOptions) (*SweepResult, error) {
	if setup == nil {
		return nil, fmt.Errorf("sweep: nil setup: %w", ErrExperiment)
	}
	if err := spec.Validate(setup.Servers); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cells := spec.Cells()
	if err := validateResume(cells, opts.Resume); err != nil {
		return nil, err
	}
	total := len(cells)
	results := make([]*CellResult, total)
	var enc *json.Encoder
	if opts.Checkpoint != nil {
		enc = json.NewEncoder(opts.Checkpoint)
	}
	resumed := len(opts.Resume)
	for i := range opts.Resume {
		r := opts.Resume[i]
		results[i] = &r
		if enc != nil {
			if err := enc.Encode(&r); err != nil {
				return nil, fmt.Errorf("sweep: checkpoint resumed cell %d: %w", i, err)
			}
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := time.Now()
	var (
		mu          sync.Mutex
		next        = resumed // next grid index to flush
		firstErr    error
		firstErrIdx = total + 1
		cursor      atomic.Int64
		wg          sync.WaitGroup
	)
	cursor.Store(int64(resumed))
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if i < firstErrIdx {
			firstErrIdx, firstErr = i, err
		}
		cancel()
	}
	commit := func(i int, r *CellResult) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = r
		for next < total && results[next] != nil {
			if enc != nil {
				if err := enc.Encode(results[next]); err != nil {
					if next < firstErrIdx {
						firstErrIdx = next
						firstErr = fmt.Errorf("sweep: checkpoint cell %d: %w", next, err)
					}
					cancel()
					return
				}
			}
			cell := *results[next]
			next++
			if opts.Observer != nil {
				p := SweepProgress{Done: next, Total: total, Cell: cell, Elapsed: time.Since(start)}
				if fresh := next - resumed; fresh > 0 && next < total {
					p.ETA = p.Elapsed / time.Duration(fresh) * time.Duration(total-next)
				}
				opts.Observer.ObserveCell(p)
			}
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if remaining := total - resumed; workers > remaining {
		workers = remaining
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= total {
					return
				}
				r, err := runSweepCell(setup, spec, cells[i], opts.RoundObserver)
				if err != nil {
					fail(i, fmt.Errorf("sweep cell %d (K=%d,E=%d): %w", i, cells[i].K, cells[i].E, err))
					return
				}
				commit(i, r)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if next < total {
		return nil, fmt.Errorf("sweep interrupted after %d/%d cells: %w", next, total, ctx.Err())
	}
	out := make([]CellResult, total)
	for i, r := range results {
		out[i] = *r
	}
	return &SweepResult{Spec: spec, Cells: out}, nil
}

// runSweepCell trains one cell and reduces the run to its checkpoint record.
func runSweepCell(setup *Setup, spec SweepSpec, c SweepCell, obs fl.RoundObserver) (*CellResult, error) {
	res, err := setup.RunTrainingWith(c.K, c.E, c.Seed, RunOptions{
		RoundCap:       spec.RoundCap,
		AccuracyTarget: spec.AccuracyTarget,
		Observer:       obs,
	})
	if err != nil {
		return nil, err
	}
	target := spec.AccuracyTarget
	if target <= 0 {
		target = setup.AccuracyTarget
	}
	phases := make(map[string]float64, len(energy.Phases))
	for _, p := range energy.Phases {
		phases[p.String()] = res.Ledger.Phase(p)
	}
	return &CellResult{
		Index:            c.Index,
		K:                c.K,
		E:                c.E,
		Seed:             c.Seed,
		Rounds:           len(res.History),
		RoundsToTarget:   RoundsToAccuracy(res.History, target),
		FinalAccuracy:    res.FinalAccuracy,
		FinalLoss:        res.FinalLoss,
		TotalJoules:      res.TotalJoules(),
		PhaseJoules:      phases,
		CollectionJoules: res.CollectionJoules,
		WallClockSeconds: res.WallClock.Seconds(),
	}, nil
}

// validateResume checks a checkpointed prefix against the grid: cell i of
// the checkpoint must be grid cell i with the same (K, E, seed) — resuming
// under a different spec or base seed is an error, not silent corruption.
func validateResume(cells []SweepCell, resume []CellResult) error {
	if len(resume) > len(cells) {
		return fmt.Errorf("sweep: checkpoint has %d cells, grid only %d: %w",
			len(resume), len(cells), ErrExperiment)
	}
	for i, r := range resume {
		c := cells[i]
		if r.Index != i || r.K != c.K || r.E != c.E || r.Seed != c.Seed {
			return fmt.Errorf("sweep: checkpoint cell %d is (index=%d,K=%d,E=%d,seed=%d), grid expects (index=%d,K=%d,E=%d,seed=%d): %w",
				i, r.Index, r.K, r.E, r.Seed, c.Index, c.K, c.E, c.Seed, ErrExperiment)
		}
	}
	return nil
}

// ReadSweepCheckpoint decodes a checkpoint JSONL stream: one CellResult per
// non-blank line. Malformed records are hard errors reporting the first bad
// line — a half-parsed checkpoint would silently recompute (or worse, skip)
// cells on resume.
func ReadSweepCheckpoint(r io.Reader) ([]CellResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var cells []CellResult
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var c CellResult
		if err := json.Unmarshal([]byte(text), &c); err != nil {
			return nil, fmt.Errorf("sweep checkpoint line %d: %v: %w", line, err, ErrExperiment)
		}
		cells = append(cells, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cells, nil
}
