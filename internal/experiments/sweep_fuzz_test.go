package experiments

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzSweepConfig drives grid parsing and sweep-spec validation with
// arbitrary input: whatever the bytes, parsing never panics, every
// rejection wraps ErrExperiment, accepted grids re-parse identically
// (deterministic acceptance), and accepted-then-validated specs obey the
// documented invariants (positive, deduplicated, in-range values).
func FuzzSweepConfig(f *testing.F) {
	for _, seed := range []string{
		"K=1,5,10,50,100;E=1,5,20",
		"K=1..100;E=1",
		"E=1;K=2",
		" K = 1 , 2 ; E = 3 ",
		"K=1..2,5;E=1,2..4",
		"",
		"K=;E=",
		"K=0;E=1",
		"K=1,1;E=2",
		"K=1;E=1;K=2",
		"K=2..1;E=1",
		"K=1..99999;E=1",
		"K=99999999999999999999;E=1",
		"Q=7;E=1",
		"K=1;;E=2",
		"K=1..3/2;E=1",
		"K==1;E=1",
		"K=1;E=10001",
		"K=-1;E=1",
		"K=1\x00;E=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, grid string) {
		spec, err := ParseSweepGrid(grid)
		if err != nil {
			if !errors.Is(err, ErrExperiment) {
				t.Fatalf("ParseSweepGrid(%q) error %v does not wrap ErrExperiment", grid, err)
			}
			// Rejection must be deterministic.
			if _, err2 := ParseSweepGrid(grid); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("ParseSweepGrid(%q) rejection not deterministic: %v vs %v", grid, err, err2)
			}
			return
		}
		// Accepted grids re-parse identically.
		again, err2 := ParseSweepGrid(grid)
		if err2 != nil || !reflect.DeepEqual(spec, again) {
			t.Fatalf("ParseSweepGrid(%q) not deterministic: %+v/%v vs %+v/%v", grid, spec, err, again, err2)
		}
		// Parse-accepted specs hold the parser's invariants: non-empty
		// axes of deduplicated positive values within the axis cap.
		for _, axis := range [][]int{spec.Ks, spec.Es} {
			if len(axis) == 0 || len(axis) > maxSweepAxis {
				t.Fatalf("ParseSweepGrid(%q) axis size %d escaped the cap", grid, len(axis))
			}
			seen := map[int]bool{}
			for _, v := range axis {
				if v < 1 {
					t.Fatalf("ParseSweepGrid(%q) accepted value %d", grid, v)
				}
				if seen[v] {
					t.Fatalf("ParseSweepGrid(%q) accepted duplicate %d", grid, v)
				}
				seen[v] = true
			}
		}
		// Validation against a 100-server setup either accepts or rejects
		// with ErrExperiment — never panics, and deterministically.
		if verr := spec.Validate(100); verr != nil {
			if !errors.Is(verr, ErrExperiment) {
				t.Fatalf("Validate error %v does not wrap ErrExperiment", verr)
			}
			if verr2 := spec.Validate(100); verr2 == nil || verr2.Error() != verr.Error() {
				t.Fatalf("Validate rejection not deterministic: %v vs %v", verr, verr2)
			}
		} else {
			// Accepted specs expand to a well-formed cell grid with
			// collision-free scheduling-independent seeds.
			cells := spec.Cells()
			if len(cells) != len(spec.Ks)*len(spec.Es) {
				t.Fatalf("Cells() = %d for %d×%d grid", len(cells), len(spec.Ks), len(spec.Es))
			}
			for i, c := range cells {
				if c.Index != i || c.Seed != cellSeed(spec.Seed, c.K, c.E) {
					t.Fatalf("cell %d malformed: %+v", i, c)
				}
			}
		}
	})
}
