package experiments

import (
	"os"
	"testing"

	"eefei/internal/fl"
	"eefei/internal/sim"
)

// TestPaperScaleSmoke exercises the prototype-scale path (28×28 images,
// 60 000 samples, 20 servers × 3000) end-to-end: dataset synthesis,
// sharding, and one federated round with energy accounting. It allocates
// ~0.5 GB and takes tens of seconds, so it only runs when explicitly
// requested:
//
//	EEFEI_PAPER_SCALE=1 go test ./internal/experiments/ -run PaperScaleSmoke -v
func TestPaperScaleSmoke(t *testing.T) {
	if os.Getenv("EEFEI_PAPER_SCALE") == "" {
		t.Skip("set EEFEI_PAPER_SCALE=1 to run the prototype-scale smoke test")
	}
	setup, err := NewSetup(Paper)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	if setup.SamplesPerServer() != 3000 {
		t.Fatalf("samples per server = %d, want 3000 (paper allocation)", setup.SamplesPerServer())
	}
	if setup.Shards[0].Dim() != 784 {
		t.Fatalf("dim = %d, want 784", setup.Shards[0].Dim())
	}
	system, err := sim.New(setup.simConfig(10, 1, 1), setup.Shards, setup.Test)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := system.Run(fl.MaxRounds(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One round of K=10, E=1 on 3000-sample shards must post the analytic
	// per-round energy.
	if res.Ledger.Rounds() < 1 {
		t.Fatal("no rounds recorded")
	}
	if res.TotalJoules() <= 0 {
		t.Fatal("no energy recorded")
	}
}
