package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestFullScaleSweepSmoke exercises the Full tier end-to-end: the
// 60k-sample, 100-server setup, a K=100 sweep cell through the checkpointed
// runner, and the frontier CSV artifact. Setup alone allocates ~1 GB and
// the cell takes minutes of CPU, so it is double-gated — skipped under
// -short and unless explicitly requested:
//
//	EEFEI_FULL_SCALE=1 go test ./internal/experiments -run FullScaleSweep -v -timeout 30m
func TestFullScaleSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	if os.Getenv("EEFEI_FULL_SCALE") == "" {
		t.Skip("set EEFEI_FULL_SCALE=1 to run the full-scale sweep smoke test")
	}
	setup, err := NewSetup(Full)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	if setup.Servers != 100 || len(setup.Shards) != 100 {
		t.Fatalf("servers = %d, shards = %d, want 100", setup.Servers, len(setup.Shards))
	}
	if got := setup.SamplesPerServer(); got != 600 {
		t.Fatalf("samples per server = %d, want 600 (60k/100)", got)
	}
	if setup.Shards[0].Dim() != 784 {
		t.Fatalf("dim = %d, want 784", setup.Shards[0].Dim())
	}
	if setup.Test.Len() != 10000 {
		t.Fatalf("test set = %d, want 10000", setup.Test.Len())
	}

	// One K=100 cell (every server selected), capped at 2 rounds: the
	// acceptance smoke for "a ≥60k-sample, K=100 cell end-to-end".
	spec := SweepSpec{Ks: []int{100}, Es: []int{1}, Seed: 1, RoundCap: 2}
	var ckpt bytes.Buffer
	res, err := RunSweep(context.Background(), setup, spec, SweepOptions{Checkpoint: &ckpt})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	cell := res.Cells[0]
	if cell.K != 100 || cell.Rounds != 2 {
		t.Fatalf("cell ran (K=%d, rounds=%d), want (100, 2)", cell.K, cell.Rounds)
	}
	if cell.TotalJoules <= 0 || cell.PhaseJoules["train"] <= 0 {
		t.Fatalf("no energy recorded: %+v", cell)
	}
	if cell.FinalAccuracy <= 0.1 {
		t.Errorf("accuracy %v after 2 rounds of K=100 — below the 10-class chance floor", cell.FinalAccuracy)
	}

	frontier, err := ComputeFrontier(res.Cells)
	if err != nil {
		t.Fatalf("ComputeFrontier: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "frontier.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrontierCSV(f, frontier); err != nil {
		t.Fatalf("WriteFrontierCSV: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("frontier csv missing (%v)", err)
	}
	// The checkpoint must resume-validate against its own spec.
	cells, err := ReadSweepCheckpoint(&ckpt)
	if err != nil || len(cells) != 1 {
		t.Fatalf("checkpoint = %d cells, err %v", len(cells), err)
	}
}
