package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers so the figure data can be replotted with external tooling.
// Each writer emits a header row followed by one record per data point.

// WriteTable1CSV emits E, n_k, simulated and paper durations.
func WriteTable1CSV(w io.Writer, r *Table1Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"epochs", "samples", "sim_seconds", "paper_seconds"}); err != nil {
		return fmt.Errorf("table1 csv header: %w", err)
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Epochs),
			strconv.Itoa(row.Samples),
			formatF(row.SimSeconds),
			formatF(row.PaperSeconds),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table1 csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceCSV emits the raw power samples of a Fig.-3 trace.
func WriteTraceCSV(w io.Writer, r *Figure3Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "watts"}); err != nil {
		return fmt.Errorf("trace csv header: %w", err)
	}
	for _, s := range r.Trace.Samples {
		if err := cw.Write([]string{formatF(s.T.Seconds()), formatF(s.Watts)}); err != nil {
			return fmt.Errorf("trace csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV emits round-by-round loss and accuracy for every series.
func WriteFigure4CSV(w io.Writer, r *Figure4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "k", "e", "round", "loss", "accuracy"}); err != nil {
		return fmt.Errorf("fig4 csv header: %w", err)
	}
	emit := func(series []Figure4Series) error {
		for _, s := range series {
			for i := range s.Loss {
				rec := []string{
					s.Label,
					strconv.Itoa(s.K),
					strconv.Itoa(s.E),
					strconv.Itoa(i),
					formatF(s.Loss[i]),
					formatF(s.Accuracy[i]),
				}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("fig4 csv row: %w", err)
				}
			}
		}
		return nil
	}
	if err := emit(r.FixedE); err != nil {
		return err
	}
	if err := emit(r.FixedK); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteEnergyCurveCSV emits the Fig.-5/6 theory-vs-measured points.
func WriteEnergyCurveCSV(w io.Writer, param string, pts []EnergyCurvePoint) error {
	cw := csv.NewWriter(w)
	header := []string{param, "measured_joules", "theory_joules", "empirical_rounds", "theory_rounds", "final_accuracy"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("energy csv header: %w", err)
	}
	for _, p := range pts {
		rec := []string{
			strconv.Itoa(p.Param),
			formatF(p.MeasuredJoules),
			formatF(p.TheoryJoules),
			strconv.Itoa(p.EmpiricalRounds),
			formatF(p.TheoryRounds),
			formatF(p.FinalAccuracy),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("energy csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFrontierCSV emits every sweep cell (grid order) with its energy
// breakdown and frontier membership — the recorded energy/accuracy
// frontier artifact of a (K, E) sweep.
func WriteFrontierCSV(w io.Writer, f *FrontierResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"k", "e", "seed", "rounds", "rounds_to_target",
		"final_accuracy", "final_loss", "total_joules",
		"waiting_joules", "download_joules", "train_joules", "upload_joules",
		"collection_joules", "wall_clock_seconds", "on_front",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("frontier csv header: %w", err)
	}
	for _, p := range f.Points {
		rec := []string{
			strconv.Itoa(p.K),
			strconv.Itoa(p.E),
			strconv.FormatUint(p.Seed, 10),
			strconv.Itoa(p.Rounds),
			strconv.Itoa(p.RoundsToTarget),
			formatF(p.FinalAccuracy),
			formatF(p.FinalLoss),
			formatF(p.TotalJoules),
			formatF(p.PhaseJoules["waiting"]),
			formatF(p.PhaseJoules["download"]),
			formatF(p.PhaseJoules["train"]),
			formatF(p.PhaseJoules["upload"]),
			formatF(p.CollectionJoules),
			formatF(p.WallClockSeconds),
			strconv.FormatBool(p.OnFront),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("frontier csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}
