package experiments

import (
	"fmt"

	"eefei/internal/core"
	"eefei/internal/dataset"
	"eefei/internal/mat"
)

// fitA0A1 least-squares fits gap ≈ A0/(TE) + A1/K + C (intercept C absorbs
// the empirical noise floor and is discarded; A2 is pinned separately).
func fitA0A1(obs []core.GapObservation) (a0, a1 float64, err error) {
	if len(obs) < 3 {
		return 0, 0, fmt.Errorf("%d gap observations, need >= 3: %w", len(obs), ErrExperiment)
	}
	design := mat.NewDense(len(obs), 3)
	y := make([]float64, len(obs))
	for i, o := range obs {
		design.Set(i, 0, 1/float64(o.T*o.E))
		design.Set(i, 1, 1/float64(o.K))
		design.Set(i, 2, 1)
		y[i] = o.Gap
	}
	coef, err := mat.QRLeastSquares(design, y)
	if err != nil {
		return 0, 0, fmt.Errorf("A0/A1 fit: %w", err)
	}
	const floor = 1e-9
	a0, a1 = coef[0], coef[1]
	if a0 < floor {
		a0 = floor
	}
	if a1 < floor {
		a1 = floor
	}
	return a0, a1, nil
}

// roundsToTarget trains (k, e) to the setup's accuracy target and returns
// the empirical round count (the round cap when never reached).
func roundsToTarget(setup *Setup, k, e int) (int, error) {
	res, err := setup.RunTraining(k, e, 2)
	if err != nil {
		return 0, fmt.Errorf("reference (K=%d,E=%d): %w", k, e, err)
	}
	if t := RoundsToAccuracy(res.History, setup.AccuracyTarget); t > 0 {
		return t, nil
	}
	return len(res.History), nil
}

// concatShards stacks all shards back into one dataset (for centralized F*
// estimation).
func concatShards(setup *Setup) (*dataset.Dataset, error) {
	if len(setup.Shards) == 0 {
		return nil, fmt.Errorf("no shards: %w", ErrExperiment)
	}
	if len(setup.Shards) == 1 {
		return setup.Shards[0], nil
	}
	total := 0
	for _, s := range setup.Shards {
		total += s.Len()
	}
	dim := setup.Shards[0].Dim()
	out := &dataset.Dataset{
		X:       mat.NewDense(total, dim),
		Labels:  make([]int, 0, total),
		Classes: setup.Shards[0].Classes,
	}
	row := 0
	for _, s := range setup.Shards {
		for i := 0; i < s.Len(); i++ {
			copy(out.X.Row(row), s.X.Row(i))
			out.Labels = append(out.Labels, s.Labels[i])
			row++
		}
	}
	return out, nil
}

// UnionDataset exposes the concatenated shards (for reference-model
// training in cmd/experiments).
func UnionDataset(setup *Setup) (*dataset.Dataset, error) {
	return concatShards(setup)
}
