package experiments

import (
	"fmt"
	"io"
	"math"

	"eefei/internal/energy"
	"eefei/internal/fl"
)

// AsyncComparison pits synchronous FedAvg against the asynchronous
// staleness-weighted variant at equal local work per update, measuring how
// much total client compute each needs to reach the accuracy target and
// what that costs with the calibrated device model. Async rounds carry no
// waiting phase (nobody blocks on a straggler), which is its energy
// advantage; its disadvantage is staleness-discounted progress.
type AsyncComparison struct {
	// SyncRounds is the synchronous rounds to target (K clients each).
	SyncRounds int
	// SyncClientUpdates is SyncRounds × K.
	SyncClientUpdates int
	// SyncJoules is the simulated prototype energy (with waiting).
	SyncJoules float64
	// AsyncUpdates is the applied async updates to target.
	AsyncUpdates int
	// AsyncDropped counts updates discarded for exceeding MaxStaleness
	// (wasted local work the async scheduler paid for).
	AsyncDropped int
	// AsyncJoules is the projected async energy: per-update train +
	// download + upload, no waiting phase.
	AsyncJoules float64
	// AsyncFinalAccuracy, SyncFinalAccuracy are the accuracies when each
	// run stopped.
	AsyncFinalAccuracy, SyncFinalAccuracy float64
}

// CompareAsync runs both schedulers at the same K-ish work shape: sync uses
// (k, e); async dispatches to all servers and applies e-epoch updates one
// at a time with mixing weight mix.
func CompareAsync(setup *Setup, k, e int, mix float64) (*AsyncComparison, error) {
	out := &AsyncComparison{}

	// Synchronous reference.
	syncRes, err := setup.RunTraining(k, e, 1)
	if err != nil {
		return nil, fmt.Errorf("sync run: %w", err)
	}
	out.SyncRounds = RoundsToAccuracy(syncRes.History, setup.AccuracyTarget)
	if out.SyncRounds < 0 {
		out.SyncRounds = len(syncRes.History)
	}
	out.SyncClientUpdates = out.SyncRounds * k
	out.SyncJoules = syncRes.TotalJoules()
	out.SyncFinalAccuracy = syncRes.FinalAccuracy

	// Asynchronous run. The async engine decays the learning rate against
	// the global version, which advances once per applied update — roughly
	// |shards|× faster than a synchronous round of fleet time — so the sync
	// per-round decay is rescaled to its per-version equivalent. Without
	// this the schedule collapses the step size hundreds of versions before
	// the staleness-discounted mixing (α_s = α/(s+1), steady-state
	// s ≈ |shards|−1) has moved the global model anywhere.
	decay := setup.Decay
	if decay > 0 {
		decay = math.Pow(decay, 1/float64(len(setup.Shards)))
	}
	acfg := fl.AsyncConfig{
		LocalEpochs:  e,
		LearningRate: setup.LearningRate,
		Decay:        decay,
		MixWeight:    mix,
		Seed:         1,
	}
	engine, err := fl.NewAsyncEngine(acfg, setup.Shards, setup.Test)
	if err != nil {
		return nil, fmt.Errorf("async engine: %w", err)
	}
	cap := setup.RoundCap * k
	updates, err := engine.Run(func(h []fl.AsyncUpdate) bool {
		return fl.AsyncTargetAccuracy(setup.AccuracyTarget)(h) || fl.MaxAsyncSteps(cap)(h)
	})
	if err != nil {
		return nil, fmt.Errorf("async run: %w", err)
	}
	out.AsyncUpdates = len(updates)
	for _, u := range updates {
		if !u.Applied {
			out.AsyncDropped++
		}
	}
	if n := len(updates); n > 0 {
		out.AsyncFinalAccuracy = updates[n-1].TestAccuracy
	}

	// Async energy: every applied update pays download + train + upload but
	// no synchronized waiting.
	dm := energy.DefaultPiDeviceModel()
	n := setup.SamplesPerServer()
	perUpdate := dm.DownloadEnergy() + dm.TrainEnergy(e, n) + dm.UploadEnergy()
	out.AsyncJoules = float64(out.AsyncUpdates) * perUpdate
	return out, nil
}

// Render writes the comparison.
func (c *AsyncComparison) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation — synchronous FedAvg vs asynchronous staleness-weighted updates"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"  sync : %4d rounds  (%4d client updates)  %8.1f J  final acc %.4f\n"+
			"  async: %4d updates (%4d stale-dropped)  %8.1f J  final acc %.4f\n",
		c.SyncRounds, c.SyncClientUpdates, c.SyncJoules, c.SyncFinalAccuracy,
		c.AsyncUpdates, c.AsyncDropped, c.AsyncJoules, c.AsyncFinalAccuracy)
	return err
}
