package experiments

import (
	"fmt"
	"io"
	"math"

	"eefei/internal/core"
)

// TheoryCurves renders the paper-scale theoretical Fig. 5/6 curves directly
// from the calibrated default problem — no training involved. This is the
// apples-to-apples comparison against the paper's published solid lines,
// complementing the quick-scale measured sweeps of Figure5/Figure6.
type TheoryCurves struct {
	// Problem is the paper-scale calibrated problem.
	Problem core.Problem
	// KCurve holds Ê(K, PinnedE) for K = 1…N.
	KCurve []EnergyCurvePoint
	// ECurve holds Ê(PinnedK, E) over the feasible E range.
	ECurve []EnergyCurvePoint
	// PinnedE, PinnedK mirror the paper's figures (E=40, K=1).
	PinnedE, PinnedK int
	// Plan is the jointly optimal configuration with its savings.
	Plan core.Plan
}

// PaperTheoryCurves evaluates the default (prototype-calibrated) problem.
func PaperTheoryCurves() (*TheoryCurves, error) {
	p := core.DefaultProblem()
	plan, err := core.Solve(p, core.DefaultPlannerConfig())
	if err != nil {
		return nil, fmt.Errorf("theory plan: %w", err)
	}
	out := &TheoryCurves{Problem: p, PinnedE: 40, PinnedK: 1, Plan: plan}
	for k := 1; k <= p.Servers; k++ {
		pt := EnergyCurvePoint{Param: k, MeasuredJoules: math.NaN()}
		pt.TheoryJoules = p.Objective(float64(k), float64(out.PinnedE))
		if t, err := p.TStar(float64(k), float64(out.PinnedE)); err == nil {
			pt.TheoryRounds = t
		} else {
			pt.TheoryRounds = math.NaN()
		}
		out.KCurve = append(out.KCurve, pt)
	}
	eMax := int(p.EMax(float64(out.PinnedK)))
	for _, e := range spacedInts(1, eMax-1, 16) {
		pt := EnergyCurvePoint{Param: e, MeasuredJoules: math.NaN()}
		pt.TheoryJoules = p.Objective(float64(out.PinnedK), float64(e))
		if t, err := p.TStar(float64(out.PinnedK), float64(e)); err == nil {
			pt.TheoryRounds = t
		} else {
			pt.TheoryRounds = math.NaN()
		}
		out.ECurve = append(out.ECurve, pt)
	}
	return out, nil
}

// spacedInts returns up to n distinct integers spread over [lo, hi],
// denser near lo (log-ish spacing suits the hyperbolic curves).
func spacedInts(lo, hi, n int) []int {
	if hi < lo {
		hi = lo
	}
	var out []int
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		v := lo + int(math.Round((math.Pow(float64(hi-lo)+1, frac) - 1))) // geometric
		if v > hi {
			v = hi
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Render writes both curves and the headline plan.
func (t *TheoryCurves) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Paper-scale theory (A=%v, B=(%.4g, %.4g), ε=%g, N=%d)\n",
		t.Problem.Bound, t.Problem.Energy.B0, t.Problem.Energy.B1,
		t.Problem.Epsilon, t.Problem.Servers); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Fig. 5 theory — Ê(K, E=%d):\n%4s %12s %10s\n", t.PinnedE, "K", "Ê (J)", "T*"); err != nil {
		return err
	}
	for _, p := range t.KCurve {
		if _, err := fmt.Fprintf(w, "%4d %12.1f %10.1f\n", p.Param, p.TheoryJoules, p.TheoryRounds); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "Fig. 6 theory — Ê(K=%d, E):\n%4s %12s %10s\n", t.PinnedK, "E", "Ê (J)", "T*"); err != nil {
		return err
	}
	for _, p := range t.ECurve {
		if _, err := fmt.Fprintf(w, "%4d %12.1f %10.1f\n", p.Param, p.TheoryJoules, p.TheoryRounds); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "optimum: K*=%d E*=%d T*=%d, Ê=%.1f J, saving vs (1,1) = %.1f%% (paper: 49.8%%)\n",
		t.Plan.K, t.Plan.E, t.Plan.T, t.Plan.PredictedJoules, 100*t.Plan.Savings())
	return err
}
