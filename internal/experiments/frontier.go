package experiments

import (
	"fmt"
	"io"
	"sort"
)

// The frontier extractor reduces a sweep's cell results to the paper's
// central artifact (Section VI, Table II / Fig. 4 read jointly): the
// energy/accuracy trade-off surface over (K, E) and its Pareto front —
// the cells no other cell beats on both energy (less) and accuracy (more).

// FrontierPoint is one cell annotated with its frontier membership.
type FrontierPoint struct {
	CellResult
	// OnFront reports whether no other cell dominates this one.
	OnFront bool `json:"on_front"`
}

// FrontierResult is the reduced sweep: every cell in grid order plus the
// extracted Pareto front.
type FrontierResult struct {
	// Points holds all cells in grid order, annotated.
	Points []FrontierPoint
	// Front holds the Pareto-optimal cells sorted by energy ascending
	// (ties: accuracy descending, then grid index).
	Front []FrontierPoint
}

// dominates reports whether q beats p: no worse on both axes, strictly
// better on at least one.
func dominates(q, p *CellResult) bool {
	if q.TotalJoules > p.TotalJoules || q.FinalAccuracy < p.FinalAccuracy {
		return false
	}
	return q.TotalJoules < p.TotalJoules || q.FinalAccuracy > p.FinalAccuracy
}

// ComputeFrontier extracts the energy/accuracy Pareto front from a sweep's
// cells. The input order is preserved in Points; the function is pure, so
// identical cell sets always produce identical artifacts.
func ComputeFrontier(cells []CellResult) (*FrontierResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("frontier: no cells: %w", ErrExperiment)
	}
	res := &FrontierResult{Points: make([]FrontierPoint, len(cells))}
	for i := range cells {
		dominated := false
		for j := range cells {
			if i != j && dominates(&cells[j], &cells[i]) {
				dominated = true
				break
			}
		}
		res.Points[i] = FrontierPoint{CellResult: cells[i], OnFront: !dominated}
		if !dominated {
			res.Front = append(res.Front, res.Points[i])
		}
	}
	sort.SliceStable(res.Front, func(a, b int) bool {
		fa, fb := &res.Front[a], &res.Front[b]
		if fa.TotalJoules != fb.TotalJoules {
			return fa.TotalJoules < fb.TotalJoules
		}
		if fa.FinalAccuracy != fb.FinalAccuracy {
			return fa.FinalAccuracy > fb.FinalAccuracy
		}
		return fa.Index < fb.Index
	})
	return res, nil
}

// Render writes the sweep table (grid order, frontier cells starred) and a
// frontier summary.
func (f *FrontierResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Sweep frontier — energy vs accuracy over (K, E), %d cells\n", len(f.Points)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %5s %7s %9s %10s %10s %14s %12s %6s\n",
		"K", "E", "rounds", "T@target", "final acc", "final loss", "energy (J)", "sim time (s)", "front"); err != nil {
		return err
	}
	for _, p := range f.Points {
		marker := ""
		if p.OnFront {
			marker = "*"
		}
		if _, err := fmt.Fprintf(w, "%4d %5d %7d %9d %10.4f %10.4f %14.2f %12.1f %6s\n",
			p.K, p.E, p.Rounds, p.RoundsToTarget, p.FinalAccuracy, p.FinalLoss,
			p.TotalJoules, p.WallClockSeconds, marker); err != nil {
			return err
		}
	}
	if len(f.Front) == 0 {
		return nil
	}
	lowest := f.Front[0]
	best := f.Front[0]
	for _, p := range f.Front[1:] {
		if p.FinalAccuracy > best.FinalAccuracy {
			best = p
		}
	}
	_, err := fmt.Fprintf(w,
		"Pareto front: %d of %d cells; min energy %.2f J at (K=%d,E=%d, acc %.4f); max accuracy %.4f at (K=%d,E=%d, %.2f J)\n",
		len(f.Front), len(f.Points), lowest.TotalJoules, lowest.K, lowest.E, lowest.FinalAccuracy,
		best.FinalAccuracy, best.K, best.E, best.TotalJoules)
	return err
}
