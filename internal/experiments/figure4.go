package experiments

import (
	"fmt"
	"io"
	"math"
)

// Figure4Series is one curve of Fig. 4: loss and accuracy per round for a
// fixed (K, E) combination.
type Figure4Series struct {
	Label    string
	K, E     int
	Loss     []float64
	Accuracy []float64
	// RoundsToTarget is the 1-based round count at which the series first
	// reaches the setup's accuracy target, or -1.
	RoundsToTarget int
	// LocalGradientRounds is E × RoundsToTarget, the total local compute
	// the paper tallies in its Fig.-4d discussion (5600 / 3600 / 6000).
	LocalGradientRounds int
}

// Figure4Result holds both halves of Fig. 4.
type Figure4Result struct {
	// FixedE sweeps K with E pinned (Fig. 4a/4b).
	FixedE []Figure4Series
	// FixedK sweeps E with K pinned (Fig. 4c/4d).
	FixedK []Figure4Series
	// PinnedE and PinnedK document the pinned values (paper: E=40, K=10).
	PinnedE, PinnedK int
	// Target is the accuracy threshold used for RoundsToTarget.
	Target float64
}

// Figure4Ks and Figure4Es are the paper's sweep values.
var (
	Figure4Ks = []int{1, 5, 10, 20}
	Figure4Es = []int{1, 20, 40, 100}
)

// Figure4 runs the full convergence study: the K-sweep at E=40 and the
// E-sweep at K=10, each training to the accuracy target (or the cap).
func Figure4(setup *Setup) (*Figure4Result, error) {
	res := &Figure4Result{PinnedE: 40, PinnedK: 10, Target: setup.AccuracyTarget}
	for _, k := range Figure4Ks {
		s, err := figure4Series(setup, k, res.PinnedE)
		if err != nil {
			return nil, err
		}
		res.FixedE = append(res.FixedE, s)
	}
	for _, e := range Figure4Es {
		s, err := figure4Series(setup, res.PinnedK, e)
		if err != nil {
			return nil, err
		}
		res.FixedK = append(res.FixedK, s)
	}
	return res, nil
}

func figure4Series(setup *Setup, k, e int) (Figure4Series, error) {
	run, err := setup.RunTraining(k, e, 1)
	if err != nil {
		return Figure4Series{}, fmt.Errorf("figure 4 (K=%d,E=%d): %w", k, e, err)
	}
	s := Figure4Series{
		Label: fmt.Sprintf("K=%d,E=%d", k, e),
		K:     k,
		E:     e,
	}
	for _, rec := range run.History {
		s.Loss = append(s.Loss, rec.TrainLoss)
		s.Accuracy = append(s.Accuracy, rec.TestAccuracy)
	}
	s.RoundsToTarget = RoundsToAccuracy(run.History, setup.AccuracyTarget)
	if s.RoundsToTarget > 0 {
		s.LocalGradientRounds = e * s.RoundsToTarget
	} else {
		s.LocalGradientRounds = -1
	}
	return s, nil
}

// Render prints the headline numbers of each series plus downsampled
// loss/accuracy curves.
func (r *Figure4Result) Render(w io.Writer) error {
	write := func(title string, series []Figure4Series) error {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %12s\n",
			"series", "rounds", "last loss", "last acc", "T@target", "E·T@target"); err != nil {
			return err
		}
		for _, s := range series {
			lastLoss, lastAcc := math.NaN(), math.NaN()
			if n := len(s.Loss); n > 0 {
				lastLoss, lastAcc = s.Loss[n-1], s.Accuracy[n-1]
			}
			if _, err := fmt.Fprintf(w, "%-12s %8d %10.4f %10.4f %10d %12d\n",
				s.Label, len(s.Loss), lastLoss, lastAcc, s.RoundsToTarget, s.LocalGradientRounds); err != nil {
				return err
			}
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, "  %-12s loss %s\n", s.Label, sparkSeries(s.Loss, true)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "  %-12s acc  %s\n", s.Label, sparkSeries(s.Accuracy, false)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(fmt.Sprintf("Figure 4a/4b — fixed E=%d, sweep K (target %.2f)", r.PinnedE, r.Target), r.FixedE); err != nil {
		return err
	}
	return write(fmt.Sprintf("Figure 4c/4d — fixed K=%d, sweep E (target %.2f)", r.PinnedK, r.Target), r.FixedK)
}

// sparkSeries downsamples a series to 40 glyphs; invert renders smaller
// values taller (for losses).
func sparkSeries(xs []float64, invert bool) string {
	if len(xs) == 0 {
		return "(empty)"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	const buckets = 40
	glyphs := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, 0, buckets)
	for b := 0; b < buckets; b++ {
		i := b * len(xs) / buckets
		frac := (xs[i] - lo) / (hi - lo)
		if invert {
			frac = 1 - frac
		}
		idx := int(frac * float64(len(glyphs)-1))
		out = append(out, glyphs[idx])
	}
	return string(out)
}
