package experiments

import (
	"fmt"
	"io"
	"time"

	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/mat"
)

// Measured-vs-analytic calibration comparison: the experiment a deployment
// runs to decide whether the analytic Pi device model it planned with still
// matches what the fleet reports. Per-device-round phase timings are drawn
// from the analytic TimeModel with a bounded relative jitter (the measurement
// noise a real coordinator sees), replayed through an energy.Calibrator, and
// the resulting measured ledger is compared phase by phase against the
// DeviceModel's closed-form joules. A second calibrator is fed one round per
// Table-I (E, n) shape so the two-coefficient training-law refit is
// identifiable, yielding the recovered TimeModel and its per-phase drift.

// CalibrationRow compares one phase's measured and analytic energy for the
// whole run.
type CalibrationRow struct {
	Phase energy.Phase
	// MeasuredJoules is what the Calibrator accumulated from the jittered
	// round timings.
	MeasuredJoules float64
	// AnalyticJoules is the DeviceModel's closed-form prediction for the same
	// K devices × rounds.
	AnalyticJoules float64
	// DeltaPct is 100·(Measured−Analytic)/Analytic.
	DeltaPct float64
}

// CalibrationResult is a full measured-vs-analytic comparison.
type CalibrationResult struct {
	K, E, Rounds int
	Samples      int
	// Jitter is the relative measurement-noise amplitude applied to every
	// phase duration.
	Jitter float64
	Rows   []CalibrationRow
	// Refit is the TimeModel recovered from measured Table-I-grid rounds.
	Refit energy.TimeModel
	// Drift compares the refit feed's measured means against the analytic
	// model per phase.
	Drift []energy.PhaseDrift
}

// roundStats prices one device-round of shape (e, n) under tm, with every
// phase duration scaled by a relative jitter drawn from rng in [−j, +j].
func roundStats(tm energy.TimeModel, e, n int, j float64, rng *mat.RNG) fl.RoundStats {
	jit := func(d time.Duration) time.Duration {
		if j <= 0 {
			return d
		}
		return time.Duration(float64(d) * (1 + j*(2*rng.Float64()-1)))
	}
	s := fl.RoundStats{
		Select:    jit(tm.Waiting),
		Train:     jit(tm.TrainDuration(e, n)),
		Aggregate: jit(tm.Upload),
		Evaluate:  jit(tm.Download),
	}
	s.Total = s.Select + s.Train + s.Aggregate + s.Evaluate
	return s
}

// CompareCalibration runs the measured-vs-analytic comparison for a (K, E)
// configuration over the given number of global rounds. jitter is the
// relative noise amplitude (0 reproduces the analytic model exactly; the
// paper's meter noise is on the order of 1%).
func CompareCalibration(setup *Setup, k, e, rounds int, jitter float64, seed uint64) (*CalibrationResult, error) {
	if k < 1 || e < 1 || rounds < 1 {
		return nil, fmt.Errorf("calibration comparison needs K, E, rounds >= 1 (got %d, %d, %d)", k, e, rounds)
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("jitter %v out of [0, 1)", jitter)
	}
	dm := energy.DefaultPiDeviceModel()
	n := setup.SamplesPerServer()
	rng := mat.NewRNG(seed)

	// Feed K device-rounds per global round at the run's (E, n) shape.
	cal, err := energy.NewCalibrator(dm.Power, e, n)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rounds; r++ {
		for d := 0; d < k; d++ {
			cal.ObserveRound(roundStats(dm.Time, e, n, jitter, rng))
		}
	}

	deviceRounds := float64(k * rounds)
	led := cal.Ledger()
	analytic := map[energy.Phase]float64{
		energy.PhaseWaiting:  dm.Power.Energy(energy.PhaseWaiting, dm.Time.Waiting),
		energy.PhaseDownload: dm.DownloadEnergy(),
		energy.PhaseTrain:    dm.TrainEnergy(e, n),
		energy.PhaseUpload:   dm.UploadEnergy(),
	}
	res := &CalibrationResult{K: k, E: e, Rounds: rounds, Samples: n, Jitter: jitter}
	for _, p := range energy.Phases {
		row := CalibrationRow{
			Phase:          p,
			MeasuredJoules: led.Phase(p),
			AnalyticJoules: analytic[p] * deviceRounds,
		}
		if row.AnalyticJoules > 0 {
			row.DeltaPct = 100 * (row.MeasuredJoules - row.AnalyticJoules) / row.AnalyticJoules
		}
		res.Rows = append(res.Rows, row)
	}

	// Refit feed: one jittered round per Table-I (E, n) shape makes the
	// two-coefficient training law identifiable.
	refitCal, err := energy.NewCalibrator(dm.Power, 1, 0)
	if err != nil {
		return nil, err
	}
	for _, row := range energy.PaperTableI() {
		if err := refitCal.SetRoundShape(row.Epochs, row.Samples); err != nil {
			return nil, err
		}
		refitCal.ObserveRound(roundStats(dm.Time, row.Epochs, row.Samples, jitter, rng))
	}
	res.Refit, err = refitCal.Refit()
	if err != nil {
		return nil, fmt.Errorf("refit: %w", err)
	}
	res.Drift = refitCal.Drift(dm.Time)
	return res, nil
}

// Render writes the comparison tables.
func (r *CalibrationResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"Calibration — measured vs analytic energy (K=%d, E=%d, n=%d, %d rounds, jitter %.1f%%)\n",
		r.K, r.E, r.Samples, r.Rounds, 100*r.Jitter)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-9s %14s %14s %8s\n", "phase", "measured (J)", "analytic (J)", "Δ%"); err != nil {
		return err
	}
	var m, a float64
	for _, row := range r.Rows {
		m += row.MeasuredJoules
		a += row.AnalyticJoules
		if _, err := fmt.Fprintf(w, "%-9s %14.4f %14.4f %+7.2f\n",
			row.Phase, row.MeasuredJoules, row.AnalyticJoules, row.DeltaPct); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-9s %14.4f %14.4f\n", "total", m, a); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"refit time model: per-sample %v, per-epoch %v, download %v, upload %v, waiting %v\n",
		r.Refit.TrainPerSample, r.Refit.TrainPerEpoch, r.Refit.Download, r.Refit.Upload, r.Refit.Waiting); err != nil {
		return err
	}
	for _, d := range r.Drift {
		if _, err := fmt.Fprintf(w, "  %-9s measured %12v  modeled %12v  drift %+6.2f%%\n",
			d.Phase, d.Measured, d.Modeled, d.Pct); err != nil {
			return err
		}
	}
	return nil
}
