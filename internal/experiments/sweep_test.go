package experiments

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"eefei/internal/fl"
)

// -update regenerates the checked-in sweep golden files:
//
//	go test ./internal/experiments -run SweepGolden -update
var updateGolden = flag.Bool("update", false, "rewrite sweep golden files")

// goldenSweepSpec is the checked-in 3×3 quick-scale grid. RoundCap keeps
// each cell at exactly 4 rounds so the golden run stays fast under -race.
func goldenSweepSpec() SweepSpec {
	return SweepSpec{Ks: []int{1, 2, 4}, Es: []int{1, 2, 5}, Seed: 7, RoundCap: 4}
}

// runGoldenSweep executes the golden spec and returns (checkpoint JSONL,
// frontier CSV) bytes.
func runGoldenSweep(t *testing.T, workers int, resume []CellResult) ([]byte, []byte, *SweepResult) {
	t.Helper()
	var ckpt bytes.Buffer
	res, err := RunSweep(context.Background(), quickSetup(t), goldenSweepSpec(), SweepOptions{
		Workers:    workers,
		Checkpoint: &ckpt,
		Resume:     resume,
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	frontier, err := ComputeFrontier(res.Cells)
	if err != nil {
		t.Fatalf("ComputeFrontier: %v", err)
	}
	var csv bytes.Buffer
	if err := WriteFrontierCSV(&csv, frontier); err != nil {
		t.Fatalf("WriteFrontierCSV: %v", err)
	}
	return ckpt.Bytes(), csv.Bytes(), res
}

func TestSweepGolden(t *testing.T) {
	ckpt, csv, res := runGoldenSweep(t, 2, nil)
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(res.Cells))
	}
	ckptPath := filepath.Join("testdata", "sweep_quick_3x3.golden.jsonl")
	csvPath := filepath.Join("testdata", "frontier_quick_3x3.golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckptPath, ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantCkpt, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatalf("golden checkpoint: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(ckpt, wantCkpt) {
		t.Errorf("checkpoint differs from golden\ngot:\n%s\nwant:\n%s", ckpt, wantCkpt)
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("golden frontier: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("frontier csv differs from golden\ngot:\n%s\nwant:\n%s", csv, wantCSV)
	}
	// The golden checkpoint must round-trip through the reader.
	cells, err := ReadSweepCheckpoint(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatalf("ReadSweepCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(cells, res.Cells) {
		t.Error("checkpoint round-trip lost information")
	}
}

func TestSweepWorkerCountBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated sweep runs")
	}
	baseCkpt, baseCSV, _ := runGoldenSweep(t, 1, nil)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		ckpt, csv, _ := runGoldenSweep(t, w, nil)
		if !bytes.Equal(ckpt, baseCkpt) {
			t.Errorf("workers=%d checkpoint differs from sequential", w)
		}
		if !bytes.Equal(csv, baseCSV) {
			t.Errorf("workers=%d frontier differs from sequential", w)
		}
	}
}

// TestSweepResumeBitIdentical kills a sequential sweep after cell 4 commits
// and asserts the resumed run reproduces the uninterrupted checkpoint and
// frontier byte-for-byte.
func TestSweepResumeBitIdentical(t *testing.T) {
	fullCkpt, fullCSV, _ := runGoldenSweep(t, 1, nil)

	// Interrupted run: cancel from the observer once 4 cells have
	// committed. With workers=1 the cancellation point is deterministic —
	// the worker checks the context before claiming cell 5.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var partial bytes.Buffer
	_, err := RunSweep(ctx, quickSetup(t), goldenSweepSpec(), SweepOptions{
		Workers:    1,
		Checkpoint: &partial,
		Observer: SweepObserverFunc(func(p SweepProgress) {
			if p.Done == 4 {
				cancel()
			}
		}),
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v, want context.Canceled", err)
	}
	if got := strings.Count(partial.String(), "\n"); got != 4 {
		t.Fatalf("interrupted checkpoint has %d cells, want 4", got)
	}
	wantPrefix := bytes.Join(bytes.SplitAfterN(fullCkpt, []byte("\n"), 5)[:4], nil)
	if !bytes.Equal(partial.Bytes(), wantPrefix) {
		t.Fatalf("interrupted checkpoint is not a prefix of the full one\ngot:\n%s\nwant:\n%s",
			partial.Bytes(), wantPrefix)
	}

	// Resume from the partial checkpoint: only the 5 missing cells rerun,
	// and the artifacts match the uninterrupted run exactly.
	resume, err := ReadSweepCheckpoint(bytes.NewReader(partial.Bytes()))
	if err != nil {
		t.Fatalf("ReadSweepCheckpoint: %v", err)
	}
	if len(resume) != 4 {
		t.Fatalf("resume cells = %d, want 4", len(resume))
	}
	ckpt, csv, _ := runGoldenSweep(t, 2, resume)
	if !bytes.Equal(ckpt, fullCkpt) {
		t.Errorf("resumed checkpoint differs from uninterrupted run\ngot:\n%s\nwant:\n%s", ckpt, fullCkpt)
	}
	if !bytes.Equal(csv, fullCSV) {
		t.Error("resumed frontier differs from uninterrupted run")
	}
}

func TestSweepResumeEveryPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("9 resumed sweeps")
	}
	fullCkpt, _, full := runGoldenSweep(t, 1, nil)
	for n := 0; n <= len(full.Cells); n++ {
		ckpt, _, res := runGoldenSweep(t, 2, full.Cells[:n])
		if !bytes.Equal(ckpt, fullCkpt) {
			t.Errorf("resume from prefix %d: checkpoint differs", n)
		}
		if !reflect.DeepEqual(res.Cells, full.Cells) {
			t.Errorf("resume from prefix %d: cells differ", n)
		}
	}
}

func TestSweepResumeMismatchRejected(t *testing.T) {
	_, _, full := runGoldenSweep(t, 2, nil)
	bad := full.Cells[:2]
	bad[1].Seed++
	_, err := RunSweep(context.Background(), quickSetup(t), goldenSweepSpec(), SweepOptions{Resume: bad})
	if !errors.Is(err, ErrExperiment) {
		t.Errorf("mismatched resume error = %v, want ErrExperiment", err)
	}
	tooMany := make([]CellResult, 10)
	_, err = RunSweep(context.Background(), quickSetup(t), goldenSweepSpec(), SweepOptions{Resume: tooMany})
	if !errors.Is(err, ErrExperiment) {
		t.Errorf("oversized resume error = %v, want ErrExperiment", err)
	}
}

func TestSweepObserverProgress(t *testing.T) {
	var dones []int
	var lastTotal int
	spec := SweepSpec{Ks: []int{1, 2}, Es: []int{1}, Seed: 3, RoundCap: 2}
	res, err := RunSweep(context.Background(), quickSetup(t), spec, SweepOptions{
		Workers: 2,
		Observer: SweepObserverFunc(func(p SweepProgress) {
			dones = append(dones, p.Done)
			lastTotal = p.Total
			if p.Elapsed < 0 || p.ETA < 0 {
				t.Errorf("negative timing: elapsed %v eta %v", p.Elapsed, p.ETA)
			}
		}),
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	if !reflect.DeepEqual(dones, []int{1, 2}) || lastTotal != 2 {
		t.Errorf("observer saw dones=%v total=%d, want [1 2] / 2", dones, lastTotal)
	}
}

func TestSweepRoundObserverThreaded(t *testing.T) {
	var rounds atomic.Int64
	spec := SweepSpec{Ks: []int{1, 2}, Es: []int{1}, Seed: 3, RoundCap: 3}
	res, err := RunSweep(context.Background(), quickSetup(t), spec, SweepOptions{
		Workers:       2,
		RoundObserver: fl.FuncObserver(func(fl.RoundStats) { rounds.Add(1) }),
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	want := 0
	for _, c := range res.Cells {
		want += c.Rounds
	}
	if got := int(rounds.Load()); got != want {
		t.Errorf("round observer saw %d rounds, cells ran %d", got, want)
	}
}

func TestParseSweepGrid(t *testing.T) {
	tests := []struct {
		grid    string
		wantKs  []int
		wantEs  []int
		wantErr bool
	}{
		{grid: "K=1,5,10,50,100;E=1,5,20", wantKs: []int{1, 5, 10, 50, 100}, wantEs: []int{1, 5, 20}},
		{grid: "E=1;K=2", wantKs: []int{2}, wantEs: []int{1}},
		{grid: " K = 1 , 2 ; E = 3 ", wantKs: []int{1, 2}, wantEs: []int{3}},
		{grid: "K=1..4;E=2", wantKs: []int{1, 2, 3, 4}, wantEs: []int{2}},
		{grid: "K=1..2,5;E=1", wantKs: []int{1, 2, 5}, wantEs: []int{1}},
		{grid: "", wantErr: true},
		{grid: "K=1,2", wantErr: true},                      // missing E
		{grid: "E=1,2", wantErr: true},                      // missing K
		{grid: "K=1;E=1;K=2", wantErr: true},                // duplicate axis
		{grid: "K=1,1;E=2", wantErr: true},                  // duplicate value
		{grid: "K=1..3,2;E=1", wantErr: true},               // range overlaps literal
		{grid: "K=0;E=1", wantErr: true},                    // below range
		{grid: "K=-3;E=1", wantErr: true},                   // negative
		{grid: "K=2..1;E=1", wantErr: true},                 // descending range
		{grid: "K=1..99999;E=1", wantErr: true},             // axis cap
		{grid: "K=x;E=1", wantErr: true},                    // not a number
		{grid: "K=1;;E=2", wantErr: true},                   // empty section
		{grid: "K=1;E=", wantErr: true},                     // empty axis
		{grid: "Q=1;E=1", wantErr: true},                    // unknown axis
		{grid: "K=99999999999999999999;E=1", wantErr: true}, // overflow
	}
	for _, tc := range tests {
		spec, err := ParseSweepGrid(tc.grid)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSweepGrid(%q) succeeded, want error", tc.grid)
			} else if !errors.Is(err, ErrExperiment) {
				t.Errorf("ParseSweepGrid(%q) error %v does not wrap ErrExperiment", tc.grid, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSweepGrid(%q): %v", tc.grid, err)
			continue
		}
		if !reflect.DeepEqual(spec.Ks, tc.wantKs) || !reflect.DeepEqual(spec.Es, tc.wantEs) {
			t.Errorf("ParseSweepGrid(%q) = K%v E%v, want K%v E%v",
				tc.grid, spec.Ks, spec.Es, tc.wantKs, tc.wantEs)
		}
	}
}

func TestSweepSpecValidate(t *testing.T) {
	ok := SweepSpec{Ks: []int{1, 20}, Es: []int{1, 100}}
	if err := ok.Validate(20); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name    string
		spec    SweepSpec
		servers int
	}{
		{"empty ks", SweepSpec{Es: []int{1}}, 20},
		{"empty es", SweepSpec{Ks: []int{1}}, 20},
		{"k above servers", SweepSpec{Ks: []int{21}, Es: []int{1}}, 20},
		{"k zero", SweepSpec{Ks: []int{0}, Es: []int{1}}, 20},
		{"dup k", SweepSpec{Ks: []int{3, 3}, Es: []int{1}}, 20},
		{"e zero", SweepSpec{Ks: []int{1}, Es: []int{0}}, 20},
		{"e huge", SweepSpec{Ks: []int{1}, Es: []int{maxSweepEpochs + 1}}, 20},
		{"dup e", SweepSpec{Ks: []int{1}, Es: []int{2, 2}}, 20},
		{"negative cap", SweepSpec{Ks: []int{1}, Es: []int{1}, RoundCap: -1}, 20},
		{"bad target", SweepSpec{Ks: []int{1}, Es: []int{1}, AccuracyTarget: 1.5}, 20},
		{"no servers", SweepSpec{Ks: []int{1}, Es: []int{1}}, 0},
	}
	for _, tc := range tests {
		if err := tc.spec.Validate(tc.servers); !errors.Is(err, ErrExperiment) {
			t.Errorf("%s: error = %v, want ErrExperiment", tc.name, err)
		}
	}
}

func TestSweepCells(t *testing.T) {
	spec := SweepSpec{Ks: []int{2, 1}, Es: []int{5, 3}, Seed: 9}
	cells := spec.Cells()
	want := [][2]int{{2, 5}, {2, 3}, {1, 5}, {1, 3}}
	if len(cells) != len(want) {
		t.Fatalf("cells = %d, want %d", len(cells), len(want))
	}
	seeds := map[uint64]bool{}
	for i, c := range cells {
		if c.Index != i || c.K != want[i][0] || c.E != want[i][1] {
			t.Errorf("cell %d = (%d,%d,%d), want (%d,%d,%d)", i, c.Index, c.K, c.E, i, want[i][0], want[i][1])
		}
		if c.Seed != cellSeed(9, c.K, c.E) {
			t.Errorf("cell %d seed not derived from (base,K,E)", i)
		}
		if seeds[c.Seed] {
			t.Errorf("cell %d seed collides", i)
		}
		seeds[c.Seed] = true
	}
	// The derivation is part of the checkpoint contract: pin two values so
	// an accidental change fails loudly rather than silently invalidating
	// every checked-in checkpoint.
	if got := cellSeed(7, 1, 1); got != 1563153243576382911 {
		t.Errorf("cellSeed(7,1,1) = %d, want 1563153243576382911", got)
	}
	if got := cellSeed(0, 100, 20); got != 2661282958356151324 {
		t.Errorf("cellSeed(0,100,20) = %d, want 2661282958356151324", got)
	}
}

func TestReadSweepCheckpointErrors(t *testing.T) {
	if _, err := ReadSweepCheckpoint(strings.NewReader("{\"index\":0}\nnot json\n")); err == nil {
		t.Error("malformed line must error")
	} else if !strings.Contains(err.Error(), "line 2") || !errors.Is(err, ErrExperiment) {
		t.Errorf("error %v should name line 2 and wrap ErrExperiment", err)
	}
	cells, err := ReadSweepCheckpoint(strings.NewReader("\n\n"))
	if err != nil || len(cells) != 0 {
		t.Errorf("blank checkpoint = %v cells, err %v", cells, err)
	}
}

func TestComputeFrontier(t *testing.T) {
	if _, err := ComputeFrontier(nil); !errors.Is(err, ErrExperiment) {
		t.Errorf("empty cells error = %v, want ErrExperiment", err)
	}
	cells := []CellResult{
		{Index: 0, K: 1, E: 1, TotalJoules: 10, FinalAccuracy: 0.90}, // dominated by 2
		{Index: 1, K: 1, E: 2, TotalJoules: 5, FinalAccuracy: 0.80},  // front (cheapest)
		{Index: 2, K: 2, E: 1, TotalJoules: 8, FinalAccuracy: 0.95},  // front (best acc)
		{Index: 3, K: 2, E: 2, TotalJoules: 9, FinalAccuracy: 0.95},  // dominated by 2
		{Index: 4, K: 4, E: 1, TotalJoules: 8, FinalAccuracy: 0.95},  // tie with 2: both on front
	}
	f, err := ComputeFrontier(cells)
	if err != nil {
		t.Fatalf("ComputeFrontier: %v", err)
	}
	wantFront := map[int]bool{1: true, 2: true, 4: true}
	for i, p := range f.Points {
		if p.OnFront != wantFront[i] {
			t.Errorf("cell %d OnFront = %v, want %v", i, p.OnFront, wantFront[i])
		}
	}
	if len(f.Front) != 3 {
		t.Fatalf("front size = %d, want 3", len(f.Front))
	}
	// Energy-ascending, tie broken by index.
	if f.Front[0].Index != 1 || f.Front[1].Index != 2 || f.Front[2].Index != 4 {
		t.Errorf("front order = %d,%d,%d, want 1,2,4", f.Front[0].Index, f.Front[1].Index, f.Front[2].Index)
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{"Pareto front: 3 of 5 cells", "min energy 5.00 J at (K=1,E=2", "max accuracy 0.9500 at (K=2,E=1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestRunTrainingWithOverrides(t *testing.T) {
	setup := quickSetup(t)
	// An unreachable target must stop exactly at the overridden cap.
	res, err := setup.RunTrainingWith(2, 1, 1, RunOptions{RoundCap: 3, AccuracyTarget: 0.9999})
	if err != nil {
		t.Fatalf("RunTrainingWith: %v", err)
	}
	if len(res.History) != 3 {
		t.Errorf("rounds = %d, want the cap 3", len(res.History))
	}
	// Observer threading through sim: one record per round, and attaching
	// one must not perturb the run.
	seen := 0
	obs, err := setup.RunTrainingWith(2, 1, 1, RunOptions{
		RoundCap:       3,
		AccuracyTarget: 0.9999,
		Observer:       fl.FuncObserver(func(fl.RoundStats) { seen++ }),
	})
	if err != nil {
		t.Fatalf("RunTrainingWith observer: %v", err)
	}
	if seen != 3 {
		t.Errorf("observer saw %d rounds, want 3", seen)
	}
	if obs.FinalLoss != res.FinalLoss || obs.FinalAccuracy != res.FinalAccuracy {
		t.Error("observer perturbed the run")
	}
}
