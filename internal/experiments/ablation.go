package experiments

import (
	"fmt"
	"io"
	"math"

	"eefei/internal/dataset"
	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/ml"
	"eefei/internal/sim"
	"eefei/internal/stats"
)

// This file holds the ablations EXPERIMENTS.md reports beyond the paper's
// own figures: the non-IID (label-skew) effect on the optimal K, the
// quantized-upload energy extension, and the multi-seed stability of the
// measured optima.

// SkewPoint is one row of the label-skew ablation.
type SkewPoint struct {
	// Alpha is the label-skew intensity (0 = IID, the paper's setting).
	Alpha float64
	// RoundsByK maps each probed K to its empirical rounds-to-target
	// (-1 when the cap was hit).
	RoundsByK map[int]int
	// EnergyByK maps each probed K to its measured training energy.
	EnergyByK map[int]float64
	// BestK is the measured-energy argmin.
	BestK int
}

// LabelSkewAblation re-runs the K sweep under increasingly non-IID shards.
// The paper predicts (Fig. 5 discussion) that K* = 1 is an artifact of
// identical shard distributions; with skewed shards single-client rounds
// see biased gradients and a larger K pays off.
func LabelSkewAblation(setup *Setup, alphas []float64, ks []int, pinnedE int) ([]SkewPoint, error) {
	if len(alphas) == 0 {
		alphas = []float64{0, 0.5, 0.9}
	}
	if len(ks) == 0 {
		ks = []int{1, 4, 16}
	}
	if pinnedE <= 0 {
		pinnedE = 10
	}
	// Rebuild the unsharded dataset once.
	union, err := concatShards(setup)
	if err != nil {
		return nil, err
	}
	var out []SkewPoint
	for _, alpha := range alphas {
		var shards []*dataset.Dataset
		if alpha == 0 {
			shards = setup.Shards
		} else {
			shards, err = dataset.LabelSkewPartitioner{Alpha: alpha, Seed: 1}.Partition(union, setup.Servers)
			if err != nil {
				return nil, fmt.Errorf("skew %.2f: %w", alpha, err)
			}
		}
		pt := SkewPoint{
			Alpha:     alpha,
			RoundsByK: make(map[int]int),
			EnergyByK: make(map[int]float64),
		}
		best := math.Inf(1)
		for _, k := range ks {
			cfg := setup.simConfig(k, pinnedE, 1)
			system, err := sim.New(cfg, shards, setup.Test)
			if err != nil {
				return nil, fmt.Errorf("skew %.2f K=%d: %w", alpha, k, err)
			}
			res, err := system.Run(fl.AnyOf(
				fl.TargetAccuracy(setup.AccuracyTarget), fl.MaxRounds(setup.RoundCap)))
			if err != nil {
				return nil, fmt.Errorf("skew %.2f K=%d run: %w", alpha, k, err)
			}
			pt.RoundsByK[k] = RoundsToAccuracy(res.History, setup.AccuracyTarget)
			pt.EnergyByK[k] = res.TotalJoules()
			// Runs that never hit the target lose to any run that did.
			effective := pt.EnergyByK[k]
			if pt.RoundsByK[k] < 0 {
				effective = math.Inf(1)
			}
			if effective < best {
				best = effective
				pt.BestK = k
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderSkew writes the label-skew ablation table.
func RenderSkew(w io.Writer, points []SkewPoint, ks []int) error {
	if _, err := fmt.Fprintln(w, "Ablation — label skew vs optimal K (paper: K*=1 under IID only)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s", "alpha"); err != nil {
		return err
	}
	for _, k := range ks {
		if _, err := fmt.Fprintf(w, " %8s %8s", fmt.Sprintf("T(K=%d)", k), fmt.Sprintf("J(K=%d)", k)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " %6s\n", "bestK"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%6.2f", p.Alpha); err != nil {
			return err
		}
		for _, k := range ks {
			if _, err := fmt.Fprintf(w, " %8d %8.1f", p.RoundsByK[k], p.EnergyByK[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " %6d\n", p.BestK); err != nil {
			return err
		}
	}
	return nil
}

// QuantPoint is one row of the quantized-upload ablation.
type QuantPoint struct {
	// Label names the codec ("float64", "16-bit", "8-bit").
	Label string
	// Bytes is the upload payload size for the experiment's model shape.
	Bytes int
	// UploadJoules is the projected per-round upload energy at that size
	// (energy scales with air time, which scales with bytes).
	UploadJoules float64
	// Accuracy is the test accuracy of the (de)quantized trained model.
	Accuracy float64
}

// QuantizationAblation trains one model federatedly, then measures how
// much upload energy per round each codec saves and what it costs in
// accuracy. Upload energy is prorated from the device model's full-precision
// upload phase by the byte ratio.
func QuantizationAblation(setup *Setup) ([]QuantPoint, error) {
	res, err := setup.RunTraining(5, 10, 1)
	if err != nil {
		return nil, fmt.Errorf("quantization training: %w", err)
	}
	_ = res
	// Train a fresh reference model centrally for a clean accuracy read.
	engine, err := fl.NewEngine(setup.flConfig(5, 10, 1), setup.Shards, fl.WithTestSet(setup.Test))
	if err != nil {
		return nil, err
	}
	if _, err := engine.Run(fl.AnyOf(fl.TargetAccuracy(setup.AccuracyTarget), fl.MaxRounds(setup.RoundCap))); err != nil {
		return nil, err
	}
	model := engine.Global()

	dm := energy.DefaultPiDeviceModel()
	fullBytes := 4 + 12 + model.ParamCount()*8
	fullUpload := dm.UploadEnergy()
	fullAcc, err := ml.Accuracy(model, setup.Test)
	if err != nil {
		return nil, err
	}
	out := []QuantPoint{{
		Label:        "float64",
		Bytes:        fullBytes,
		UploadJoules: fullUpload,
		Accuracy:     fullAcc,
	}}
	for _, bits := range []ml.QuantBits{ml.Quant16, ml.Quant8} {
		data, err := ml.QuantizeModel(model, bits)
		if err != nil {
			return nil, fmt.Errorf("quantize %d: %w", bits, err)
		}
		back, err := ml.DequantizeModel(data)
		if err != nil {
			return nil, fmt.Errorf("dequantize %d: %w", bits, err)
		}
		acc, err := ml.Accuracy(back, setup.Test)
		if err != nil {
			return nil, err
		}
		out = append(out, QuantPoint{
			Label:        fmt.Sprintf("%d-bit", bits),
			Bytes:        len(data),
			UploadJoules: fullUpload * float64(len(data)) / float64(fullBytes),
			Accuracy:     acc,
		})
	}
	return out, nil
}

// RenderQuant writes the quantization ablation table.
func RenderQuant(w io.Writer, points []QuantPoint) error {
	if _, err := fmt.Fprintln(w, "Ablation — quantized model uploads (extension: e^U scales with bytes)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %14s %10s\n", "codec", "bytes", "upload J/round", "accuracy"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-10s %10d %14.4f %10.4f\n",
			p.Label, p.Bytes, p.UploadJoules, p.Accuracy); err != nil {
			return err
		}
	}
	return nil
}

// SeedStability reruns the measured Fig.-6 E-optimum across seeds and
// summarizes the energy at a fixed configuration, quantifying how much of
// the measured curve is seed noise.
func SeedStability(setup *Setup, k, e, seeds int) (stats.Summary, error) {
	if seeds <= 0 {
		seeds = 5
	}
	return stats.Repeat(stats.Seeds(1, seeds), func(seed uint64) (float64, error) {
		res, err := setup.RunTraining(k, e, seed)
		if err != nil {
			return 0, err
		}
		if RoundsToAccuracy(res.History, setup.AccuracyTarget) < 0 {
			return 0, fmt.Errorf("seed %d never reached the target", seed)
		}
		return res.TotalJoules(), nil
	})
}
