package experiments

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"eefei/internal/energy"
)

// sharedSetup caches the Quick setup across tests in this package — the
// synthetic dataset generation is pure so sharing is safe.
var sharedSetup *Setup

func quickSetup(t *testing.T) *Setup {
	t.Helper()
	if sharedSetup == nil {
		s, err := NewSetup(Quick)
		if err != nil {
			t.Fatalf("NewSetup: %v", err)
		}
		sharedSetup = s
	}
	return sharedSetup
}

func TestParseScale(t *testing.T) {
	cases := []struct {
		in      string
		want    Scale
		wantErr bool
	}{
		{in: "quick", want: Quick},
		{in: "paper", want: Paper},
		{in: "full", want: Full},
		{in: "huge", wantErr: true},
		{in: "", wantErr: true},
		{in: "Quick", wantErr: true}, // parsing is case-sensitive
		{in: "full ", wantErr: true},
	}
	for _, tc := range cases {
		s, err := ParseScale(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseScale(%q) = %v, want error", tc.in, s)
			} else if !errors.Is(err, ErrExperiment) {
				t.Errorf("ParseScale(%q) error %v does not wrap ErrExperiment", tc.in, err)
			}
			continue
		}
		if err != nil || s != tc.want {
			t.Errorf("ParseScale(%q) = %v, %v, want %v", tc.in, s, err, tc.want)
		}
	}
}

func TestScaleStringRoundTrip(t *testing.T) {
	for _, s := range []Scale{Quick, Paper, Full} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%v.String()) = %v, %v, want identity", s, got, err)
		}
	}
	if Scale(9).String() == "" {
		t.Error("unknown Scale must still render a diagnostic string")
	}
}

func TestTestSplitSamples(t *testing.T) {
	cases := []struct {
		train   int
		want    int
		wantErr bool
	}{
		{train: 60000, want: 10000},
		{train: 2000, want: 333},
		{train: 6, want: 1},
		{train: 5, want: 1}, // 5/6 would floor to 0 — clamped to 1
		{train: 1, want: 1},
		{train: 0, wantErr: true},
		{train: -6, wantErr: true},
	}
	for _, tc := range cases {
		got, err := testSplitSamples(tc.train)
		if tc.wantErr {
			if err == nil {
				t.Errorf("testSplitSamples(%d) = %d, want error", tc.train, got)
			} else if !errors.Is(err, ErrExperiment) {
				t.Errorf("testSplitSamples(%d) error %v does not wrap ErrExperiment", tc.train, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("testSplitSamples(%d) = %d, %v, want %d", tc.train, got, err, tc.want)
		}
	}
}

func TestNewSetupQuick(t *testing.T) {
	s := quickSetup(t)
	if s.Servers != 20 || len(s.Shards) != 20 {
		t.Fatalf("servers = %d, shards = %d, want 20", s.Servers, len(s.Shards))
	}
	if s.SamplesPerServer() != 100 {
		t.Errorf("samples per server = %d, want 100", s.SamplesPerServer())
	}
	if s.Test.Len() == 0 {
		t.Error("test set empty")
	}
}

func TestTable1ReproducesPaperDurations(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		rel := math.Abs(row.SimSeconds-row.PaperSeconds) / row.PaperSeconds
		if rel > 0.10 {
			t.Errorf("E=%d n=%d: sim %.4f vs paper %.4f (%.0f%% off)",
				row.Epochs, row.Samples, row.SimSeconds, row.PaperSeconds, 100*rel)
		}
	}
	// The published fits.
	if math.Abs(res.PaperC0-7.79e-5)/7.79e-5 > 0.05 {
		t.Errorf("paper-row c0 fit = %.3g, want ≈7.79e-5", res.PaperC0)
	}
	if math.Abs(res.SimC0-7.79e-5)/7.79e-5 > 0.05 {
		t.Errorf("sim c0 fit = %.3g, want ≈7.79e-5", res.SimC0)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("render missing title")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 5 {
		t.Fatalf("Table II rows = %d, want 5", len(rows))
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatalf("RenderTable2: %v", err)
	}
	for _, want := range []string{"Multinomial Logistic Regression", "784*1", "decay rate 0.99"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFigure3PhasePattern(t *testing.T) {
	res, err := Figure3(quickSetup(t), 1)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (the Fig. 3 capture)", res.Rounds)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("phases = %d, want 4", len(res.Reports))
	}
	for _, rep := range res.Reports {
		want := res.PaperWatts[rep.Phase]
		if math.Abs(rep.MeanWatts-want) > 0.06 {
			t.Errorf("%v mean = %.3f W, want ≈%.3f W", rep.Phase, rep.MeanWatts, want)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFigure4ShapesAtReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	setup := quickSetup(t)
	// Reduced sweep (subset of the paper's values) keeps the test fast while
	// still probing both trade-off directions.
	fixedE := []Figure4Series{}
	for _, k := range []int{1, 10} {
		s, err := figure4Series(setup, k, 10)
		if err != nil {
			t.Fatalf("series K=%d: %v", k, err)
		}
		fixedE = append(fixedE, s)
	}
	for _, s := range fixedE {
		if len(s.Loss) == 0 {
			t.Fatalf("%s produced no rounds", s.Label)
		}
		if s.Loss[len(s.Loss)-1] >= s.Loss[0] {
			t.Errorf("%s loss did not fall", s.Label)
		}
		if s.RoundsToTarget <= 0 {
			t.Errorf("%s never hit the target", s.Label)
		}
	}
	// E sweep at fixed K: more local epochs per round ⇒ fewer rounds.
	small, err := figure4Series(setup, 5, 1)
	if err != nil {
		t.Fatalf("series E=1: %v", err)
	}
	large, err := figure4Series(setup, 5, 10)
	if err != nil {
		t.Fatalf("series E=10: %v", err)
	}
	if small.RoundsToTarget > 0 && large.RoundsToTarget > 0 &&
		large.RoundsToTarget >= small.RoundsToTarget {
		t.Errorf("E=10 took %d rounds, E=1 took %d — expected fewer with more local epochs",
			large.RoundsToTarget, small.RoundsToTarget)
	}
}

func TestFStarIsLowerBound(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	setup := quickSetup(t)
	fStar, err := FStar(setup, 120)
	if err != nil {
		t.Fatalf("FStar: %v", err)
	}
	if fStar <= 0 || fStar > math.Log(10) {
		t.Errorf("F* = %v, want in (0, ln 10)", fStar)
	}
	// A short federated run must sit above F*.
	run, err := setup.RunTraining(5, 5, 1)
	if err != nil {
		t.Fatalf("RunTraining: %v", err)
	}
	if run.FinalLoss <= fStar-1e-6 {
		t.Errorf("federated loss %v beat centralized F* %v", run.FinalLoss, fStar)
	}
}

func TestFigure6ReducedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	setup := quickSetup(t)
	res, err := Figure6(setup, SweepConfig{
		Es:      []int{1, 5, 20},
		PinnedK: 2,
	})
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	// Measured energy at the best E must beat E=1: the paper's core claim.
	if res.MeasuredSavings <= 0 {
		t.Errorf("measured savings = %v, want > 0 (E>1 must beat E=1)", res.MeasuredSavings)
	}
	if res.EStarMeasured == 1 {
		t.Error("measured E* = 1 contradicts the paper's trade-off")
	}
	// Theory curve must be finite on the sweep.
	for _, p := range res.Points {
		if math.IsInf(p.TheoryJoules, 0) || math.IsNaN(p.TheoryJoules) {
			t.Errorf("theory energy at E=%d is %v", p.Param, p.TheoryJoules)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("render missing title")
	}
}

func TestFigure5ReducedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	setup := quickSetup(t)
	res, err := Figure5(setup, SweepConfig{
		Ks:      []int{1, 5, 10},
		PinnedE: 10,
	})
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	// Under IID shards the measured optimum should be small K (the paper
	// finds K*=1); at minimum, K=10 must not win.
	if res.KStarMeasured == 10 {
		t.Errorf("measured K* = 10; expected a small K under IID")
	}
	for _, p := range res.Points {
		if p.EmpiricalRounds <= 0 {
			t.Errorf("K=%d never reached the target", p.Param)
		}
		if p.MeasuredJoules <= 0 {
			t.Errorf("K=%d measured %v J", p.Param, p.MeasuredJoules)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestRoundsToAccuracy(t *testing.T) {
	hist := []struct{ acc float64 }{{0.5}, {0.7}, {0.9}, {0.95}}
	_ = hist
	// Build fl.RoundRecord-compatible history via the real type.
	res, err := quickSetup(t).RunTraining(2, 2, 1)
	if err != nil {
		t.Fatalf("RunTraining: %v", err)
	}
	if got := RoundsToAccuracy(res.History, 2.0); got != -1 {
		t.Errorf("unreachable target = %d, want -1", got)
	}
	if got := RoundsToAccuracy(res.History, -1); got != 1 {
		t.Errorf("trivial target = %d, want 1", got)
	}
}

func TestSparkHelpers(t *testing.T) {
	if s := sparkSeries(nil, false); s != "(empty)" {
		t.Errorf("empty series = %q", s)
	}
	if s := sparkSeries([]float64{1, 1, 1}, false); len(s) == 0 {
		t.Error("constant series must render")
	}
	if g := sparkGlyph(0); g == "" {
		t.Error("below-range glyph empty")
	}
	if g := sparkGlyph(10); g == "" {
		t.Error("above-range glyph empty")
	}
}

func TestLedgerPhasesPresentInRun(t *testing.T) {
	setup := quickSetup(t)
	res, err := setup.RunTraining(3, 2, 1)
	if err != nil {
		t.Fatalf("RunTraining: %v", err)
	}
	for _, p := range energy.Phases {
		if res.Ledger.Phase(p) <= 0 {
			t.Errorf("phase %v has no energy", p)
		}
	}
}

func TestPaperTheoryCurves(t *testing.T) {
	res, err := PaperTheoryCurves()
	if err != nil {
		t.Fatalf("PaperTheoryCurves: %v", err)
	}
	if len(res.KCurve) != 20 {
		t.Fatalf("K curve has %d points, want 20", len(res.KCurve))
	}
	// Fig. 5 shape: monotone increasing in K for the IID calibration.
	for i := 1; i < len(res.KCurve); i++ {
		if res.KCurve[i].TheoryJoules <= res.KCurve[i-1].TheoryJoules {
			t.Fatalf("K curve not increasing at K=%d", res.KCurve[i].Param)
		}
	}
	// Fig. 6 shape: U with an interior minimum near E*=43.
	minE, minJ := 0, math.Inf(1)
	for _, p := range res.ECurve {
		if p.TheoryJoules < minJ {
			minE, minJ = p.Param, p.TheoryJoules
		}
	}
	first, last := res.ECurve[0], res.ECurve[len(res.ECurve)-1]
	if !(minJ < first.TheoryJoules && minJ < last.TheoryJoules) {
		t.Error("E curve is not U-shaped")
	}
	if minE < 20 || minE > 80 {
		t.Errorf("E-curve minimum at %d, want in [20,80]", minE)
	}
	if s := res.Plan.Savings(); math.Abs(s-0.498) > 0.03 {
		t.Errorf("savings = %v, want ≈0.498", s)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Fig. 6 theory") {
		t.Error("render missing E curve")
	}
}

func TestSpacedInts(t *testing.T) {
	xs := spacedInts(1, 100, 10)
	if xs[0] != 1 {
		t.Errorf("first = %d, want 1", xs[0])
	}
	seen := map[int]bool{}
	prev := 0
	for _, v := range xs {
		if v < 1 || v > 100 || seen[v] || v <= prev {
			t.Fatalf("bad spacing %v", xs)
		}
		seen[v] = true
		prev = v
	}
	if got := spacedInts(5, 3, 4); len(got) == 0 || got[0] != 5 {
		t.Errorf("degenerate range = %v", got)
	}
}

func TestFigure4FullHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig.-4 sweep")
	}
	setup := quickSetup(t)
	res, err := Figure4(setup)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(res.FixedE) != len(Figure4Ks) || len(res.FixedK) != len(Figure4Es) {
		t.Fatalf("series counts = %d/%d, want %d/%d",
			len(res.FixedE), len(res.FixedK), len(Figure4Ks), len(Figure4Es))
	}
	// Fig.-4b behaviour: T@target non-increasing in K (allowing equality).
	prev := 1 << 30
	for _, s := range res.FixedE {
		if s.RoundsToTarget <= 0 {
			t.Fatalf("%s never reached the target", s.Label)
		}
		if s.RoundsToTarget > prev {
			t.Errorf("%s took %d rounds, more than the smaller-K series (%d)",
				s.Label, s.RoundsToTarget, prev)
		}
		prev = s.RoundsToTarget
	}
	// Fig.-4d behaviour: E·T at some interior E beats both extremes.
	first := res.FixedK[0].LocalGradientRounds
	last := res.FixedK[len(res.FixedK)-1].LocalGradientRounds
	bestInterior := 1 << 30
	for _, s := range res.FixedK[1 : len(res.FixedK)-1] {
		if s.LocalGradientRounds > 0 && s.LocalGradientRounds < bestInterior {
			bestInterior = s.LocalGradientRounds
		}
	}
	if !(bestInterior < first && bestInterior < last) {
		t.Errorf("E·T not U-shaped: ends %d/%d, best interior %d", first, last, bestInterior)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 4a/4b") {
		t.Error("render missing title")
	}
}
