package core

import (
	"errors"
	"math"
	"testing"
)

func TestSolveDefaultProblem(t *testing.T) {
	plan, err := Solve(DefaultProblem(), DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Paper Fig. 5: K* = 1 under IID shards.
	if plan.K != 1 {
		t.Errorf("K = %d, want 1", plan.K)
	}
	// Paper Fig. 6 region: E* in the tens.
	if plan.E < 20 || plan.E > 80 {
		t.Errorf("E = %d, want in [20,80]", plan.E)
	}
	if plan.T < 1 {
		t.Errorf("T = %d, want >= 1", plan.T)
	}
	if plan.Iterations < 1 {
		t.Error("ACS must iterate at least once")
	}
	// Headline: ≈49.8% saving versus (K=1, E=1).
	if s := plan.Savings(); math.Abs(s-0.498) > 0.03 {
		t.Errorf("savings = %.3f, want ≈0.498 (paper headline)", s)
	}
}

func TestSolveMatchesGridSearch(t *testing.T) {
	p := DefaultProblem()
	acs, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	grid, err := SolveGrid(p, int(p.EMax(1))+1)
	if err != nil {
		t.Fatalf("SolveGrid: %v", err)
	}
	// ACS on a biconvex problem with closed-form steps should find the
	// global integer optimum here (single basin).
	if acs.PredictedJoules > grid.PredictedJoules*(1+1e-6) {
		t.Errorf("ACS %v J worse than grid %v J (K,E)=(%d,%d) vs (%d,%d)",
			acs.PredictedJoules, grid.PredictedJoules, acs.K, acs.E, grid.K, grid.E)
	}
}

func TestSolveNumericAgreesWithClosedForm(t *testing.T) {
	p := DefaultProblem()
	closed, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	numeric, err := SolveNumeric(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("SolveNumeric: %v", err)
	}
	if closed.K != numeric.K {
		t.Errorf("K: closed %d vs numeric %d", closed.K, numeric.K)
	}
	if diff := math.Abs(float64(closed.E - numeric.E)); diff > 1 {
		t.Errorf("E: closed %d vs numeric %d", closed.E, numeric.E)
	}
	if rel := math.Abs(closed.PredictedJoules-numeric.PredictedJoules) / closed.PredictedJoules; rel > 1e-3 {
		t.Errorf("objective: closed %v vs numeric %v", closed.PredictedJoules, numeric.PredictedJoules)
	}
}

func TestSolveRespectsECap(t *testing.T) {
	p := DefaultProblem()
	p.Bound.A2 = 0 // unbounded E-slice
	cfg := DefaultPlannerConfig()
	cfg.ECap = 50
	plan, err := Solve(p, cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if plan.E > 50 {
		t.Errorf("E = %d exceeded cap 50", plan.E)
	}
}

func TestSolveInvalidProblem(t *testing.T) {
	p := DefaultProblem()
	p.Epsilon = 0
	if _, err := Solve(p, DefaultPlannerConfig()); !errors.Is(err, ErrParams) {
		t.Errorf("invalid problem = %v, want ErrParams", err)
	}
}

func TestSolveInfeasibleInitialPoint(t *testing.T) {
	p := DefaultProblem()
	cfg := DefaultPlannerConfig()
	cfg.InitialK = 1
	cfg.InitialE = p.EMax(1) + 10 // outside the feasible strip
	if _, err := Solve(p, cfg); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible start = %v, want ErrInfeasible", err)
	}
}

func TestPlanSavingsEdgeCases(t *testing.T) {
	if !math.IsNaN((Plan{BaselineJoules: 0, PredictedJoules: 1}).Savings()) {
		t.Error("zero baseline must yield NaN savings")
	}
	s := (Plan{BaselineJoules: 10, PredictedJoules: 5}).Savings()
	if s != 0.5 {
		t.Errorf("Savings = %v, want 0.5", s)
	}
}

func TestIntegerPlanIsFeasible(t *testing.T) {
	p := DefaultProblem()
	plan, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !p.Feasible(float64(plan.K), float64(plan.E)) {
		t.Errorf("integer plan (K=%d,E=%d) infeasible", plan.K, plan.E)
	}
	// Scheduled T rounds must actually reach ε per the bound.
	gap := p.Bound.Gap(float64(plan.K), float64(plan.E), float64(plan.T))
	if gap > p.Epsilon*(1+1e-9) {
		t.Errorf("bound gap at integer plan = %v exceeds ε = %v", gap, p.Epsilon)
	}
}

func TestSolveGridValidation(t *testing.T) {
	p := DefaultProblem()
	p.Servers = 0
	if _, err := SolveGrid(p, 10); err == nil {
		t.Error("invalid problem must be rejected")
	}
}

func TestSolveOnNonIIDLikeProblem(t *testing.T) {
	// Larger gradient variance (non-IID shards) inflates A1, pushing K*
	// above 1 — the behaviour the paper predicts when datasets differ.
	p := DefaultProblem()
	p.Bound.A1 = 0.4
	plan, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if plan.K < 2 {
		t.Errorf("K = %d with inflated A1, want > 1", plan.K)
	}
	// Cross-check optimality against the grid.
	grid, err := SolveGrid(p, int(p.EMax(float64(p.Servers)))+1)
	if err != nil {
		t.Fatalf("SolveGrid: %v", err)
	}
	if plan.PredictedJoules > grid.PredictedJoules*(1+0.01) {
		t.Errorf("ACS %v J vs grid %v J", plan.PredictedJoules, grid.PredictedJoules)
	}
}

func TestSolveIntegerMatchesGrid(t *testing.T) {
	problems := []Problem{
		DefaultProblem(),
		func() Problem {
			p := DefaultProblem()
			p.Bound.A1 = 0.4 // interior K*
			return p
		}(),
		{Bound: BoundConstants{A0: 50, A1: 0.3, A2: 1e-3},
			Energy: EnergyParams{B0: 0.1, B1: 0.4}, Epsilon: 0.2, Servers: 12},
	}
	for i, p := range problems {
		ip, err := SolveInteger(p, DefaultPlannerConfig())
		if err != nil {
			t.Fatalf("problem %d: SolveInteger: %v", i, err)
		}
		eMax := int(p.EMax(1))
		if eMax < 1 || eMax > 5000 {
			eMax = 5000
		}
		grid, err := SolveGrid(p, eMax)
		if err != nil {
			t.Fatalf("problem %d: SolveGrid: %v", i, err)
		}
		if ip.PredictedJoules > grid.PredictedJoules*(1+1e-9) {
			t.Errorf("problem %d: integer ACS %v J (K=%d,E=%d) vs grid %v J (K=%d,E=%d)",
				i, ip.PredictedJoules, ip.K, ip.E, grid.PredictedJoules, grid.K, grid.E)
		}
		if !p.Feasible(float64(ip.K), float64(ip.E)) {
			t.Errorf("problem %d: integer plan infeasible", i)
		}
	}
}

func TestSolveIntegerAgreesWithContinuous(t *testing.T) {
	p := DefaultProblem()
	cont, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	disc, err := SolveInteger(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("SolveInteger: %v", err)
	}
	if cont.K != disc.K {
		t.Errorf("K: continuous-then-round %d vs integer %d", cont.K, disc.K)
	}
	if math.Abs(float64(cont.E-disc.E)) > 1 {
		t.Errorf("E: continuous-then-round %d vs integer %d", cont.E, disc.E)
	}
}

func TestSolveIntegerValidation(t *testing.T) {
	p := DefaultProblem()
	p.Epsilon = 0
	if _, err := SolveInteger(p, DefaultPlannerConfig()); err == nil {
		t.Error("invalid problem must be rejected")
	}
}
