// Package core implements the paper's primary contribution: the EE-FEI
// energy-consumption model (Eqs. 4–6, 12), the local-SGD convergence bound
// it rests on (Eq. 10, from Khaled–Mishchenko–Richtárik 2020), the
// closed-form partial optimizers K*(E) and E*(K) (Eq. 15 and the corrected
// Eq. 17 — see DESIGN.md §1 for the re-derivation), the required-rounds
// formula T*(K,E) (Eq. 11), and the Alternate-Convex-Search planner
// (Algorithm 1) that jointly minimizes total training energy.
package core

import (
	"errors"
	"fmt"

	"eefei/internal/energy"
	"eefei/internal/iot"
	"eefei/internal/mat"
)

// ErrParams is returned (wrapped) for invalid model constants.
var ErrParams = errors.New("core: invalid parameters")

// ErrInfeasible is returned (wrapped) when the convergence constraint
// (Eq. 13c) cannot be satisfied on the requested domain.
var ErrInfeasible = errors.New("core: convergence constraint infeasible")

// BoundConstants are the aggregated constants of the convergence bound
// (paper Eq. 10):
//
//	E[F(ω̄_T) − F(ω*)] ≤ A0/(T·E) + A1/K + A2·(E−1)
//
// with A0 = α0‖ω0−ω*‖²/γ, A1 = α1·γ·σ² and A2 = α2·γ²·L·σ².
type BoundConstants struct {
	A0, A1, A2 float64
}

// Validate checks positivity (A2 may be zero for homogeneous-gradient
// regimes; A0 and A1 must be positive for the bound to be meaningful).
func (b BoundConstants) Validate() error {
	if b.A0 <= 0 || b.A1 <= 0 || b.A2 < 0 {
		return fmt.Errorf("bound constants %+v: %w", b, ErrParams)
	}
	return nil
}

// Gap evaluates the right-hand side of Eq. (10) for a given (K, E, T).
func (b BoundConstants) Gap(k, e, t float64) float64 {
	return b.A0/(t*e) + b.A1/k + b.A2*(e-1)
}

// PhysicalConstants are the raw quantities behind the aggregate bound
// constants, exposed so experiments can explore the γ/σ²/L dependence.
type PhysicalConstants struct {
	// Alpha0, Alpha1, Alpha2 are the bound's universal constants.
	Alpha0, Alpha1, Alpha2 float64
	// InitialDistanceSq is ‖ω0 − ω*‖².
	InitialDistanceSq float64
	// LearningRate is γ.
	LearningRate float64
	// GradientVarianceAtOpt is σ², the variance of stochastic gradients at
	// the optimum.
	GradientVarianceAtOpt float64
	// Smoothness is L.
	Smoothness float64
}

// Aggregate folds the physical constants into (A0, A1, A2).
func (p PhysicalConstants) Aggregate() (BoundConstants, error) {
	if p.LearningRate <= 0 || p.InitialDistanceSq <= 0 || p.GradientVarianceAtOpt < 0 ||
		p.Smoothness < 0 || p.Alpha0 <= 0 || p.Alpha1 < 0 || p.Alpha2 < 0 {
		return BoundConstants{}, fmt.Errorf("physical constants %+v: %w", p, ErrParams)
	}
	return BoundConstants{
		A0: p.Alpha0 * p.InitialDistanceSq / p.LearningRate,
		A1: p.Alpha1 * p.LearningRate * p.GradientVarianceAtOpt,
		A2: p.Alpha2 * p.LearningRate * p.LearningRate * p.Smoothness * p.GradientVarianceAtOpt,
	}, nil
}

// DefaultBoundConstants are calibrated so the theory reproduces the paper's
// empirical findings on the prototype's scale: T*(K=10, E=40) ≈ 97 rounds to
// the target (Fig. 4d shows ≈90), K* = 1 under IID shards (Fig. 5), E* ≈ 43
// (Fig. 6 region), and ≈49.8% energy saving versus (K=1, E=1).
func DefaultBoundConstants() BoundConstants {
	return BoundConstants{A0: 300, A1: 0.01, A2: 4e-5}
}

// EnergyParams aggregate the per-round energy law of Eq. (12):
//
//	per-server, per-round energy = B0·E + B1
//	B0 = c0·n̄ + c1          (compute energy per local epoch)
//	B1 = ρ·n̄ + e^U          (data collection + model upload per round)
type EnergyParams struct {
	B0, B1 float64
}

// Validate checks positivity.
func (p EnergyParams) Validate() error {
	if p.B0 <= 0 || p.B1 <= 0 {
		return fmt.Errorf("energy params %+v: %w", p, ErrParams)
	}
	return nil
}

// PerRound returns B0·E + B1, the energy one selected server spends per
// global round.
func (p EnergyParams) PerRound(e float64) float64 {
	return p.B0*e + p.B1
}

// NewEnergyParams derives (B0, B1) from the device energy model, the IoT
// uplink, and the per-server sample count n̄. Set preloaded to true to model
// the paper's prototype, where the dataset is pre-loaded on each edge server
// and the ρ·n̄ data-collection term vanishes.
func NewEnergyParams(dm energy.DeviceModel, uplink iot.UplinkConfig, samplesPerServer int, preloaded bool) (EnergyParams, error) {
	if err := dm.Validate(); err != nil {
		return EnergyParams{}, fmt.Errorf("device model: %w", err)
	}
	if err := uplink.Validate(); err != nil {
		return EnergyParams{}, fmt.Errorf("uplink: %w", err)
	}
	if samplesPerServer <= 0 {
		return EnergyParams{}, fmt.Errorf("samples per server %d: %w", samplesPerServer, ErrParams)
	}
	c0, c1 := dm.Coefficients()
	b1 := dm.UploadEnergy()
	if !preloaded {
		b1 += uplink.CollectionEnergy(samplesPerServer)
	}
	return EnergyParams{
		B0: c0*float64(samplesPerServer) + c1,
		B1: b1,
	}, nil
}

// DefaultEnergyParams mirrors the prototype: Pi-4B device model, NB-IoT
// uplink, 3000 samples per server, data pre-loaded.
func DefaultEnergyParams() EnergyParams {
	p, err := NewEnergyParams(energy.DefaultPiDeviceModel(), iot.DefaultNBIoTConfig(), 3000, true)
	if err != nil {
		// The defaults are compile-time constants; failure here is a bug.
		panic(fmt.Sprintf("core: default energy params: %v", err))
	}
	return p
}

// GapObservation is one empirical convergence measurement: a federated run
// with parameters (K, E) that reached optimality gap Gap after T rounds.
// FitBoundConstants recovers (A0, A1, A2) from a set of these.
type GapObservation struct {
	K, E, T int
	Gap     float64
}

// FitBoundConstantsIntercept fits gap ≈ A0/(TE) + A1/K + A2(E−1) + C by
// least squares. The intercept C absorbs the irreducible part of the
// empirical loss gap (the noise floor a real training run converges to),
// which would otherwise be dumped into the near-constant 1/K feature and
// inflate A1. Callers targeting a gap ε should compare against ε − C.
func FitBoundConstantsIntercept(obs []GapObservation) (BoundConstants, float64, error) {
	if len(obs) < 4 {
		return BoundConstants{}, 0, fmt.Errorf("%d observations, need >= 4: %w", len(obs), ErrParams)
	}
	design := mat.NewDense(len(obs), 4)
	y := make([]float64, len(obs))
	for i, o := range obs {
		if o.K <= 0 || o.E <= 0 || o.T <= 0 {
			return BoundConstants{}, 0, fmt.Errorf("observation %d has non-positive parameters: %w", i, ErrParams)
		}
		design.Set(i, 0, 1/float64(o.T*o.E))
		design.Set(i, 1, 1/float64(o.K))
		design.Set(i, 2, float64(o.E-1))
		design.Set(i, 3, 1)
		y[i] = o.Gap
	}
	coef, err := mat.QRLeastSquares(design, y)
	if err != nil {
		return BoundConstants{}, 0, fmt.Errorf("bound fit: %w", err)
	}
	const floor = 1e-12
	b := BoundConstants{A0: coef[0], A1: coef[1], A2: coef[2]}
	if b.A0 < floor {
		b.A0 = floor
	}
	if b.A1 < floor {
		b.A1 = floor
	}
	if b.A2 < 0 {
		b.A2 = 0
	}
	return b, coef[3], nil
}

// FitBoundConstants least-squares fits the bound constants to empirical
// convergence data using the feature map [1/(TE), 1/K, (E−1)] of Eq. (10).
// Negative fitted values are clamped to a small positive floor, since the
// bound requires non-negative constants.
func FitBoundConstants(obs []GapObservation) (BoundConstants, error) {
	if len(obs) < 3 {
		return BoundConstants{}, fmt.Errorf("%d observations, need >= 3: %w", len(obs), ErrParams)
	}
	design := mat.NewDense(len(obs), 3)
	y := make([]float64, len(obs))
	for i, o := range obs {
		if o.K <= 0 || o.E <= 0 || o.T <= 0 {
			return BoundConstants{}, fmt.Errorf("observation %d has non-positive parameters: %w", i, ErrParams)
		}
		design.Set(i, 0, 1/float64(o.T*o.E))
		design.Set(i, 1, 1/float64(o.K))
		design.Set(i, 2, float64(o.E-1))
		y[i] = o.Gap
	}
	coef, err := mat.QRLeastSquares(design, y)
	if err != nil {
		return BoundConstants{}, fmt.Errorf("bound fit: %w", err)
	}
	const floor = 1e-12
	b := BoundConstants{A0: coef[0], A1: coef[1], A2: coef[2]}
	if b.A0 < floor {
		b.A0 = floor
	}
	if b.A1 < floor {
		b.A1 = floor
	}
	if b.A2 < 0 {
		b.A2 = 0
	}
	return b, nil
}
