package core

import (
	"fmt"
	"math"
)

// Problem is the energy-minimization problem of Eq. (13):
//
//	min_{K,E}  Ê(K,E) = T*(K,E) · K · (B0·E + B1)
//	s.t.       εK − A1 − A2·K·(E−1) > 0,  1 ≤ K ≤ N,  E ≥ 1
//
// where T* is the tight-constraint round count of Eq. (11).
type Problem struct {
	// Bound are the convergence-bound constants (A0, A1, A2).
	Bound BoundConstants
	// Energy are the per-round energy constants (B0, B1).
	Energy EnergyParams
	// Epsilon is the target optimality gap ε of constraint (3b).
	Epsilon float64
	// Servers is N, the total number of edge servers.
	Servers int
}

// DefaultProblem is the calibrated prototype-scale problem: 20 edge servers,
// target gap 0.08.
func DefaultProblem() Problem {
	return Problem{
		Bound:   DefaultBoundConstants(),
		Energy:  DefaultEnergyParams(),
		Epsilon: 0.08,
		Servers: 20,
	}
}

// Validate checks all constants and that the problem is feasible at all
// (some (K,E) in the box satisfies Eq. 13c — K=N, E=1 is the easiest point).
func (p Problem) Validate() error {
	if err := p.Bound.Validate(); err != nil {
		return err
	}
	if err := p.Energy.Validate(); err != nil {
		return err
	}
	if p.Epsilon <= 0 {
		return fmt.Errorf("epsilon %v: %w", p.Epsilon, ErrParams)
	}
	if p.Servers < 1 {
		return fmt.Errorf("servers %d: %w", p.Servers, ErrParams)
	}
	if !p.Feasible(float64(p.Servers), 1) {
		return fmt.Errorf("even (K=N=%d, E=1) violates εK − A1 > 0: %w", p.Servers, ErrInfeasible)
	}
	return nil
}

// slack returns εK − A1 − A2·K·(E−1), the left side of constraint (13c).
func (p Problem) slack(k, e float64) float64 {
	return p.Epsilon*k - p.Bound.A1 - p.Bound.A2*k*(e-1)
}

// Feasible reports whether (K, E) satisfies the convergence constraint and
// the box bounds.
func (p Problem) Feasible(k, e float64) bool {
	return k >= 1 && k <= float64(p.Servers) && e >= 1 && p.slack(k, e) > 0
}

// TStar returns T*(K,E) = A0·K / ((εK − A1 − A2·K(E−1))·E), the continuous
// number of global rounds that makes the bound exactly ε (Eq. 11). It
// returns ErrInfeasible when the constraint slack is non-positive.
func (p Problem) TStar(k, e float64) (float64, error) {
	s := p.slack(k, e)
	if s <= 0 {
		return 0, fmt.Errorf("T*(%v,%v): slack %v: %w", k, e, s, ErrInfeasible)
	}
	return p.Bound.A0 * k / (s * e), nil
}

// Objective evaluates Ê(K,E) of Eq. (12): the bound-tight total energy.
// Infeasible points evaluate to +Inf so that minimizers avoid them.
func (p Problem) Objective(k, e float64) float64 {
	t, err := p.TStar(k, e)
	if err != nil {
		return math.Inf(1)
	}
	return t * k * p.Energy.PerRound(e)
}

// EnergyForRounds returns the energy of running exactly t rounds at (K, E):
// t·K·(B0E + B1). Unlike Objective it takes the round count as given —
// used when comparing against empirically measured T.
func (p Problem) EnergyForRounds(k, e, t float64) float64 {
	return t * k * p.Energy.PerRound(e)
}

// EMax returns the exclusive upper bound of the feasible E range at fixed K
// (from rearranging Eq. 13c): E < (εK − A1 + A2·K)/(A2·K). For A2 = 0 the
// range is unbounded and +Inf is returned.
func (p Problem) EMax(k float64) float64 {
	if p.Bound.A2 == 0 {
		return math.Inf(1)
	}
	return (p.Epsilon*k - p.Bound.A1 + p.Bound.A2*k) / (p.Bound.A2 * k)
}

// KMin returns the exclusive lower bound of the feasible K range at fixed E:
// K > A1 / (ε − A2(E−1)). When the denominator is non-positive no K is
// feasible and +Inf is returned.
func (p Problem) KMin(e float64) float64 {
	den := p.Epsilon - p.Bound.A2*(e-1)
	if den <= 0 {
		return math.Inf(1)
	}
	return p.Bound.A1 / den
}

// OptimalK returns the continuous minimizer of Ê(·, E) for fixed E
// (Eq. 15): K* = 2A1/(ε − A2(E−1)), clamped into the feasible interval
// (KMin(E), N]. It returns ErrInfeasible when no feasible K exists.
func (p Problem) OptimalK(e float64) (float64, error) {
	den := p.Epsilon - p.Bound.A2*(e-1)
	if den <= 0 {
		return 0, fmt.Errorf("K*(E=%v): ε − A2(E−1) = %v: %w", e, den, ErrInfeasible)
	}
	kStar := 2 * p.Bound.A1 / den
	// Clamp to the box. The unclamped stationary point 2A1/den always sits
	// strictly above the feasibility threshold A1/den, so clamping to 1 is
	// safe whenever 1 itself is feasible.
	if kStar < 1 {
		kStar = 1
	}
	if kStar > float64(p.Servers) {
		kStar = float64(p.Servers)
	}
	if !p.Feasible(kStar, e) {
		return 0, fmt.Errorf("K*(E=%v) clamped to %v is infeasible: %w", e, kStar, ErrInfeasible)
	}
	return kStar, nil
}

// OptimalE returns the continuous minimizer of Ê(K, ·) for fixed K. The
// published Eq. (17) is garbled; we use the re-derived stationary condition
// of the strictly convex slice (DESIGN.md §1): with
//
//	a = B0, b = B1, c = εK − A1 + A2K, d = A2K
//
// the minimizer of (aE + b)/(cE − dE²) solves a·d·E² + 2·b·d·E − b·c = 0:
//
//	E* = (−b·d + sqrt(b·d·(b·d + a·c))) / (a·d)
//
// clamped into [1, EMax(K)). For A2 = 0 the objective is strictly
// decreasing in E, so E* is unbounded; we return +Inf and callers must cap
// it. ErrInfeasible is returned when no feasible E exists at this K.
func (p Problem) OptimalE(k float64) (float64, error) {
	a, b := p.Energy.B0, p.Energy.B1
	c := p.Epsilon*k - p.Bound.A1 + p.Bound.A2*k
	d := p.Bound.A2 * k
	if p.Epsilon*k-p.Bound.A1 <= 0 {
		// Even E=1 violates Eq. 13c at this K.
		return 0, fmt.Errorf("E*(K=%v): εK − A1 = %v: %w", k, p.Epsilon*k-p.Bound.A1, ErrInfeasible)
	}
	if d == 0 {
		return math.Inf(1), nil
	}
	bd := b * d
	eStar := (-bd + math.Sqrt(bd*(bd+a*c))) / (a * d)
	if eStar < 1 {
		eStar = 1
	}
	// The stationary point always lies strictly inside (0, c/d); numerical
	// round-off aside, no upper clamp is needed, but guard anyway.
	if eMax := c / d; eStar >= eMax {
		eStar = math.Nextafter(eMax, 0) // just inside the open interval
	}
	if !p.Feasible(k, eStar) {
		return 0, fmt.Errorf("E*(K=%v) = %v is infeasible: %w", k, eStar, ErrInfeasible)
	}
	return eStar, nil
}

// SecondDerivativeK returns ∂²Ê/∂K² at (k, e), the quantity Lemma 1 proves
// positive on the feasible domain. Exposed for the property tests that
// verify biconvexity numerically.
func (p Problem) SecondDerivativeK(k, e float64) float64 {
	const h = 1e-4
	return (p.Objective(k+h, e) - 2*p.Objective(k, e) + p.Objective(k-h, e)) / (h * h)
}

// SecondDerivativeE returns ∂²Ê/∂E² at (k, e) (Lemma 2).
func (p Problem) SecondDerivativeE(k, e float64) float64 {
	const h = 1e-4
	return (p.Objective(k, e+h) - 2*p.Objective(k, e) + p.Objective(k, e-h)) / (h * h)
}
