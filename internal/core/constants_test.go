package core

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/energy"
	"eefei/internal/iot"
)

func TestBoundConstantsValidate(t *testing.T) {
	if err := DefaultBoundConstants().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []BoundConstants{
		{A0: 0, A1: 1, A2: 1},
		{A0: 1, A1: 0, A2: 1},
		{A0: 1, A1: 1, A2: -1},
	}
	for _, b := range bad {
		if err := b.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("%+v: err = %v, want ErrParams", b, err)
		}
	}
}

func TestGapEquation10(t *testing.T) {
	b := BoundConstants{A0: 10, A1: 2, A2: 0.5}
	// A0/(TE) + A1/K + A2(E−1) = 10/20 + 2/4 + 0.5·1 = 1.5
	if got := b.Gap(4, 2, 10); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Gap = %v, want 1.5", got)
	}
}

func TestGapMonotonicity(t *testing.T) {
	b := DefaultBoundConstants()
	base := b.Gap(5, 10, 50)
	if b.Gap(10, 10, 50) >= base {
		t.Error("gap must shrink as K grows")
	}
	if b.Gap(5, 10, 100) >= base {
		t.Error("gap must shrink as T grows")
	}
	// E has two competing terms; at large E the A2 term dominates and the
	// gap grows.
	if b.Gap(5, 1e6, 50) <= base {
		t.Error("gap must eventually grow with E")
	}
}

func TestPhysicalConstantsAggregate(t *testing.T) {
	p := PhysicalConstants{
		Alpha0:                4,
		Alpha1:                2,
		Alpha2:                8,
		InitialDistanceSq:     9,
		LearningRate:          0.5,
		GradientVarianceAtOpt: 3,
		Smoothness:            2,
	}
	b, err := p.Aggregate()
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if math.Abs(b.A0-72) > 1e-12 { // 4·9/0.5
		t.Errorf("A0 = %v, want 72", b.A0)
	}
	if math.Abs(b.A1-3) > 1e-12 { // 2·0.5·3
		t.Errorf("A1 = %v, want 3", b.A1)
	}
	if math.Abs(b.A2-12) > 1e-12 { // 8·0.25·2·3
		t.Errorf("A2 = %v, want 12", b.A2)
	}
	p.LearningRate = 0
	if _, err := p.Aggregate(); !errors.Is(err, ErrParams) {
		t.Errorf("zero lr = %v, want ErrParams", err)
	}
}

func TestEnergyParamsPerRound(t *testing.T) {
	p := EnergyParams{B0: 2, B1: 3}
	if got := p.PerRound(5); got != 13 {
		t.Errorf("PerRound(5) = %v, want 13", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (EnergyParams{B0: 0, B1: 1}).Validate(); !errors.Is(err, ErrParams) {
		t.Error("B0=0 must be invalid")
	}
}

func TestNewEnergyParamsPreloaded(t *testing.T) {
	dm := energy.DefaultPiDeviceModel()
	up := iot.DefaultNBIoTConfig()
	p, err := NewEnergyParams(dm, up, 3000, true)
	if err != nil {
		t.Fatalf("NewEnergyParams: %v", err)
	}
	c0, c1 := dm.Coefficients()
	wantB0 := c0*3000 + c1
	if math.Abs(p.B0-wantB0) > 1e-12 {
		t.Errorf("B0 = %v, want %v", p.B0, wantB0)
	}
	if math.Abs(p.B1-dm.UploadEnergy()) > 1e-12 {
		t.Errorf("preloaded B1 = %v, want upload energy %v", p.B1, dm.UploadEnergy())
	}
}

func TestNewEnergyParamsWithCollection(t *testing.T) {
	dm := energy.DefaultPiDeviceModel()
	up := iot.DefaultNBIoTConfig()
	pre, err := NewEnergyParams(dm, up, 3000, true)
	if err != nil {
		t.Fatalf("NewEnergyParams: %v", err)
	}
	full, err := NewEnergyParams(dm, up, 3000, false)
	if err != nil {
		t.Fatalf("NewEnergyParams: %v", err)
	}
	wantExtra := up.CollectionEnergy(3000)
	if math.Abs(full.B1-pre.B1-wantExtra) > 1e-9 {
		t.Errorf("collection term = %v, want %v", full.B1-pre.B1, wantExtra)
	}
}

func TestNewEnergyParamsErrors(t *testing.T) {
	dm := energy.DefaultPiDeviceModel()
	up := iot.DefaultNBIoTConfig()
	if _, err := NewEnergyParams(dm, up, 0, true); !errors.Is(err, ErrParams) {
		t.Errorf("zero samples = %v, want ErrParams", err)
	}
	dm.Power.Train = -1
	if _, err := NewEnergyParams(dm, up, 100, true); err == nil {
		t.Error("bad device model must be rejected")
	}
	up.SampleBytes = 0
	if _, err := NewEnergyParams(energy.DefaultPiDeviceModel(), up, 100, true); err == nil {
		t.Error("bad uplink must be rejected")
	}
}

func TestFitBoundConstantsRecoversKnownModel(t *testing.T) {
	truth := BoundConstants{A0: 120, A1: 0.05, A2: 3e-4}
	var obs []GapObservation
	for _, k := range []int{1, 2, 5, 10, 20} {
		for _, e := range []int{1, 10, 40, 100} {
			for _, tt := range []int{10, 50, 200} {
				obs = append(obs, GapObservation{
					K: k, E: e, T: tt,
					Gap: truth.Gap(float64(k), float64(e), float64(tt)),
				})
			}
		}
	}
	got, err := FitBoundConstants(obs)
	if err != nil {
		t.Fatalf("FitBoundConstants: %v", err)
	}
	if math.Abs(got.A0-truth.A0)/truth.A0 > 1e-6 ||
		math.Abs(got.A1-truth.A1)/truth.A1 > 1e-6 ||
		math.Abs(got.A2-truth.A2)/truth.A2 > 1e-6 {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitBoundConstantsErrors(t *testing.T) {
	if _, err := FitBoundConstants(nil); !errors.Is(err, ErrParams) {
		t.Errorf("no observations = %v, want ErrParams", err)
	}
	bad := []GapObservation{{K: 0, E: 1, T: 1}, {K: 1, E: 1, T: 1}, {K: 2, E: 1, T: 1}}
	if _, err := FitBoundConstants(bad); !errors.Is(err, ErrParams) {
		t.Errorf("K=0 observation = %v, want ErrParams", err)
	}
}

func TestFitBoundConstantsClampsNegatives(t *testing.T) {
	// Gaps that decrease with (E−1) would fit a negative A2; the fit must
	// clamp it to zero.
	obs := []GapObservation{
		{K: 1, E: 1, T: 10, Gap: 1.0},
		{K: 1, E: 10, T: 10, Gap: 0.05},
		{K: 2, E: 20, T: 10, Gap: 0.01},
		{K: 5, E: 40, T: 20, Gap: 0.001},
	}
	b, err := FitBoundConstants(obs)
	if err != nil {
		t.Fatalf("FitBoundConstants: %v", err)
	}
	if b.A2 < 0 || b.A0 <= 0 || b.A1 <= 0 {
		t.Errorf("fit not clamped: %+v", b)
	}
}

func TestFitBoundConstantsInterceptRecoversShiftedModel(t *testing.T) {
	// Data generated with a constant noise-floor offset: the plain fit
	// would corrupt A1, the intercept fit must recover the true constants.
	truth := BoundConstants{A0: 80, A1: 0.2, A2: 5e-4}
	const floor = 0.35
	var obs []GapObservation
	for _, k := range []int{1, 2, 4, 8, 16} {
		for _, e := range []int{1, 4, 16, 64} {
			for _, tt := range []int{5, 20, 80} {
				obs = append(obs, GapObservation{
					K: k, E: e, T: tt,
					Gap: truth.Gap(float64(k), float64(e), float64(tt)) + floor,
				})
			}
		}
	}
	got, c, err := FitBoundConstantsIntercept(obs)
	if err != nil {
		t.Fatalf("FitBoundConstantsIntercept: %v", err)
	}
	if math.Abs(c-floor) > 1e-6 {
		t.Errorf("intercept = %v, want %v", c, floor)
	}
	if math.Abs(got.A0-truth.A0)/truth.A0 > 1e-6 ||
		math.Abs(got.A1-truth.A1)/truth.A1 > 1e-6 ||
		math.Abs(got.A2-truth.A2)/truth.A2 > 1e-4 {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitBoundConstantsInterceptErrors(t *testing.T) {
	if _, _, err := FitBoundConstantsIntercept(nil); !errors.Is(err, ErrParams) {
		t.Errorf("no observations = %v, want ErrParams", err)
	}
	bad := []GapObservation{{K: 0, E: 1, T: 1}, {K: 1, E: 1, T: 1}, {K: 2, E: 1, T: 1}, {K: 3, E: 1, T: 1}}
	if _, _, err := FitBoundConstantsIntercept(bad); !errors.Is(err, ErrParams) {
		t.Errorf("K=0 = %v, want ErrParams", err)
	}
}
