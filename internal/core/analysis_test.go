package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"eefei/internal/energy"
)

func TestSensitivityBasics(t *testing.T) {
	rows, err := Sensitivity(DefaultProblem(), 0.1)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	// 6 constants × 2 signs.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byName := map[string][]SensitivityRow{}
	for _, r := range rows {
		byName[r.Constant] = append(byName[r.Constant], r)
	}
	// A0 scales the objective linearly: elasticity ≈ 1 on both sides.
	for _, r := range byName["A0"] {
		if math.Abs(r.Elasticity-1) > 0.05 {
			t.Errorf("A0 elasticity = %v, want ≈1", r.Elasticity)
		}
	}
	// Epsilon up → cheaper training (negative elasticity).
	for _, r := range byName["Epsilon"] {
		if !math.IsNaN(r.Elasticity) && r.Elasticity >= 0 {
			t.Errorf("Epsilon elasticity = %v, want < 0", r.Elasticity)
		}
	}
	// B0/B1 raise energy when raised.
	for _, name := range []string{"B0", "B1"} {
		for _, r := range byName[name] {
			if !math.IsNaN(r.Elasticity) && r.Elasticity <= 0 {
				t.Errorf("%s elasticity = %v, want > 0", name, r.Elasticity)
			}
		}
	}
}

func TestSensitivityDeltaValidation(t *testing.T) {
	if _, err := Sensitivity(DefaultProblem(), 0); !errors.Is(err, ErrParams) {
		t.Errorf("delta 0 = %v, want ErrParams", err)
	}
	if _, err := Sensitivity(DefaultProblem(), 1.5); !errors.Is(err, ErrParams) {
		t.Errorf("delta 1.5 = %v, want ErrParams", err)
	}
}

func TestSensitivitySurvivesInfeasiblePerturbation(t *testing.T) {
	p := DefaultProblem()
	// Make ε barely feasible even at K=N, so ε×0.5 breaks the whole box.
	p.Epsilon = p.Bound.A1 / float64(p.Servers) * 1.3
	rows, err := Sensitivity(p, 0.5)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	sawNaN := false
	for _, r := range rows {
		if math.IsNaN(r.Joules) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Error("expected at least one infeasible perturbation row")
	}
}

func TestPlanDuration(t *testing.T) {
	plan := Plan{K: 1, E: 40, T: 100}
	tm := energy.DefaultPiTimeModel()
	got := PlanDuration(plan, tm, 3000)
	want := 100 * tm.RoundDuration(40, 3000)
	if got != want {
		t.Errorf("PlanDuration = %v, want %v", got, want)
	}
}

func TestParetoFrontierProperties(t *testing.T) {
	p := DefaultProblem()
	tm := energy.DefaultPiTimeModel()
	frontier, err := ParetoFrontier(p, tm, 3000, 200)
	if err != nil {
		t.Fatalf("ParetoFrontier: %v", err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// Energy ascending, time strictly descending along the frontier.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].Joules < frontier[i-1].Joules {
			t.Fatalf("frontier not energy-sorted at %d", i)
		}
		if frontier[i].Elapsed >= frontier[i-1].Elapsed {
			t.Fatalf("frontier point %d does not improve time", i)
		}
	}
	// The energy-optimal plan's cost must equal the frontier's cheapest
	// point (same integer optimum).
	plan, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	cheapest := frontier[0]
	planJ := p.EnergyForRounds(float64(plan.K), float64(plan.E), float64(plan.T))
	if cheapest.Joules > planJ*(1+1e-9) {
		t.Errorf("frontier cheapest %v J worse than planner %v J", cheapest.Joules, planJ)
	}
	// No frontier point is dominated by any other.
	for i, a := range frontier {
		for j, b := range frontier {
			if i == j {
				continue
			}
			if b.Joules <= a.Joules && b.Elapsed <= a.Elapsed &&
				(b.Joules < a.Joules || b.Elapsed < a.Elapsed) {
				t.Fatalf("frontier point %d dominated by %d", i, j)
			}
		}
	}
}

func TestParetoFrontierValidation(t *testing.T) {
	p := DefaultProblem()
	p.Epsilon = 0
	if _, err := ParetoFrontier(p, energy.DefaultPiTimeModel(), 100, 10); err == nil {
		t.Error("invalid problem must be rejected")
	}
	bad := energy.TimeModel{}
	if _, err := ParetoFrontier(DefaultProblem(), bad, 100, 10); err == nil {
		t.Error("invalid time model must be rejected")
	}
}

func TestEnergyBreakdown(t *testing.T) {
	p := DefaultProblem()
	b, err := EnergyBreakdown(p, 1, 43)
	if err != nil {
		t.Fatalf("EnergyBreakdown: %v", err)
	}
	if math.Abs(b.Total-p.Objective(1, 43))/b.Total > 1e-12 {
		t.Errorf("breakdown total %v != objective %v", b.Total, p.Objective(1, 43))
	}
	if b.ComputeShare <= 0 || b.ComputeShare >= 1 {
		t.Errorf("compute share = %v, want in (0,1)", b.ComputeShare)
	}
	// At E=43 with the default constants compute dominates communication.
	if b.ComputeJoules <= b.CommJoules {
		t.Errorf("compute %v should exceed comm %v at E=43", b.ComputeJoules, b.CommJoules)
	}
	// At E=1 the relation flips: communication per epoch dominates.
	b1, err := EnergyBreakdown(p, 1, 1)
	if err != nil {
		t.Fatalf("EnergyBreakdown: %v", err)
	}
	if b1.ComputeShare >= b.ComputeShare {
		t.Error("compute share must grow with E")
	}
	if _, err := EnergyBreakdown(p, 1, 1e6); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible cell = %v, want ErrInfeasible", err)
	}
}

func TestParetoTimeEnergyTension(t *testing.T) {
	// The fastest frontier point must use more energy than the cheapest one
	// (otherwise there is no trade-off and the frontier would be a single
	// point).
	frontier, err := ParetoFrontier(DefaultProblem(), energy.DefaultPiTimeModel(), 3000, 200)
	if err != nil {
		t.Fatalf("ParetoFrontier: %v", err)
	}
	if len(frontier) < 2 {
		t.Skip("degenerate frontier")
	}
	first, last := frontier[0], frontier[len(frontier)-1]
	if !(last.Joules > first.Joules && last.Elapsed < first.Elapsed) {
		t.Errorf("no energy/time tension: %+v vs %+v", first, last)
	}
	_ = time.Nanosecond
}
