package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"eefei/internal/mat"
	"eefei/internal/optim"
)

func TestDefaultProblemValid(t *testing.T) {
	if err := DefaultProblem().Validate(); err != nil {
		t.Fatalf("default problem invalid: %v", err)
	}
}

func TestProblemValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"zero epsilon", func(p *Problem) { p.Epsilon = 0 }},
		{"zero servers", func(p *Problem) { p.Servers = 0 }},
		{"bad bound", func(p *Problem) { p.Bound.A0 = 0 }},
		{"bad energy", func(p *Problem) { p.Energy.B0 = 0 }},
		{"globally infeasible", func(p *Problem) { p.Bound.A1 = 1e9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultProblem()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestTStarMatchesEquation11(t *testing.T) {
	p := DefaultProblem()
	k, e := 10.0, 40.0
	got, err := p.TStar(k, e)
	if err != nil {
		t.Fatalf("TStar: %v", err)
	}
	b := p.Bound
	want := b.A0 * k / ((p.Epsilon*k - b.A1 - b.A2*k*(e-1)) * e)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("TStar = %v, want %v", got, want)
	}
	// Calibration check: at the paper's (K=10, E=40) the theory should land
	// near the ≈90 rounds Fig. 4d reports for 0.9 accuracy.
	if got < 60 || got > 140 {
		t.Errorf("TStar(10,40) = %v, want in the Fig.-4d neighbourhood [60,140]", got)
	}
}

func TestTStarSaturatesBound(t *testing.T) {
	// Substituting T* back into the bound must give exactly ε.
	p := DefaultProblem()
	for _, kc := range []float64{1, 5, 20} {
		for _, ec := range []float64{1, 10, 100} {
			tStar, err := p.TStar(kc, ec)
			if err != nil {
				continue // infeasible corner
			}
			gap := p.Bound.Gap(kc, ec, tStar)
			if math.Abs(gap-p.Epsilon)/p.Epsilon > 1e-9 {
				t.Errorf("Gap(K=%v,E=%v,T*) = %v, want ε=%v", kc, ec, gap, p.Epsilon)
			}
		}
	}
}

func TestTStarInfeasible(t *testing.T) {
	p := DefaultProblem()
	// Slack at huge E is negative.
	if _, err := p.TStar(10, 1e9); !errors.Is(err, ErrInfeasible) {
		t.Errorf("huge E = %v, want ErrInfeasible", err)
	}
	if !math.IsInf(p.Objective(10, 1e9), 1) {
		t.Error("infeasible objective must be +Inf")
	}
}

func TestFeasibleRegion(t *testing.T) {
	p := DefaultProblem()
	if !p.Feasible(10, 40) {
		t.Error("(10,40) must be feasible")
	}
	if p.Feasible(0.5, 10) {
		t.Error("K below 1 must be infeasible")
	}
	if p.Feasible(25, 10) {
		t.Error("K above N must be infeasible")
	}
	if p.Feasible(10, 0.5) {
		t.Error("E below 1 must be infeasible")
	}
	eMax := p.EMax(10)
	if p.Feasible(10, eMax+1) {
		t.Error("E above EMax must be infeasible")
	}
	if !p.Feasible(10, eMax-1) {
		t.Error("E just below EMax must be feasible")
	}
}

func TestEMaxAndKMinConsistency(t *testing.T) {
	p := DefaultProblem()
	k := 7.0
	eMax := p.EMax(k)
	// slack(k, EMax) must be ~0 from above.
	if s := p.slack(k, eMax); math.Abs(s) > 1e-9 {
		t.Errorf("slack at EMax = %v, want 0", s)
	}
	e := 50.0
	kMin := p.KMin(e)
	if s := p.slack(kMin, e); math.Abs(s) > 1e-12 {
		t.Errorf("slack at KMin = %v, want 0", s)
	}
	// A2 = 0 → unbounded E.
	p2 := p
	p2.Bound.A2 = 0
	if !math.IsInf(p2.EMax(3), 1) {
		t.Error("EMax with A2=0 must be +Inf")
	}
	// Denominator non-positive → no feasible K.
	if !math.IsInf(p.KMin(1e9), 1) {
		t.Error("KMin at huge E must be +Inf")
	}
}

func TestLemma1ConvexInK(t *testing.T) {
	// Numeric second derivative in K must be positive across the feasible
	// slice (Lemma 1).
	p := DefaultProblem()
	for _, e := range []float64{1, 10, 40, 100} {
		for _, k := range []float64{1.5, 3, 7, 15, 19} {
			if !p.Feasible(k, e) {
				continue
			}
			if d2 := p.SecondDerivativeK(k, e); d2 <= 0 {
				t.Errorf("∂²Ê/∂K² at (K=%v,E=%v) = %v, want > 0", k, e, d2)
			}
		}
	}
}

func TestLemma2ConvexInE(t *testing.T) {
	p := DefaultProblem()
	for _, k := range []float64{1, 5, 10, 20} {
		eMax := p.EMax(k)
		for _, frac := range []float64{0.05, 0.2, 0.5, 0.8} {
			e := 1 + frac*(eMax-1)
			if !p.Feasible(k, e) {
				continue
			}
			if d2 := p.SecondDerivativeE(k, e); d2 <= 0 {
				t.Errorf("∂²Ê/∂E² at (K=%v,E=%v) = %v, want > 0", k, e, d2)
			}
		}
	}
}

func TestOptimalKMatchesEquation15(t *testing.T) {
	p := DefaultProblem()
	// Make the interior solution land inside [1, N] by inflating A1.
	p.Bound.A1 = 0.3
	e := 10.0
	kStar, err := p.OptimalK(e)
	if err != nil {
		t.Fatalf("OptimalK: %v", err)
	}
	want := 2 * p.Bound.A1 / (p.Epsilon - p.Bound.A2*(e-1))
	if want >= 1 && want <= float64(p.Servers) {
		if math.Abs(kStar-want)/want > 1e-12 {
			t.Errorf("K* = %v, want Eq.15 value %v", kStar, want)
		}
	}
	// Cross-check against golden-section on the K-slice.
	lo := math.Max(1, p.KMin(e)*1.000001)
	numeric, err := optim.GoldenSection(func(k float64) float64 { return p.Objective(k, e) },
		lo, float64(p.Servers), 1e-10)
	if err != nil {
		t.Fatalf("GoldenSection: %v", err)
	}
	if math.Abs(kStar-numeric) > 1e-4 {
		t.Errorf("closed-form K* = %v, numeric %v", kStar, numeric)
	}
}

func TestOptimalKClampsToOne(t *testing.T) {
	// Default calibration has tiny A1 ⇒ K* = 1, the paper's Fig.-5 result.
	p := DefaultProblem()
	kStar, err := p.OptimalK(40)
	if err != nil {
		t.Fatalf("OptimalK: %v", err)
	}
	if kStar != 1 {
		t.Errorf("K*(E=40) = %v, want 1 (paper Fig. 5)", kStar)
	}
}

func TestOptimalKClampsToN(t *testing.T) {
	p := DefaultProblem()
	p.Bound.A1 = 10 * p.Epsilon // interior K* far above N
	kStar, err := p.OptimalK(1)
	if err != nil {
		t.Fatalf("OptimalK: %v", err)
	}
	if kStar != float64(p.Servers) {
		t.Errorf("K* = %v, want clamp at N=%d", kStar, p.Servers)
	}
}

func TestOptimalKInfeasible(t *testing.T) {
	p := DefaultProblem()
	if _, err := p.OptimalK(1e9); !errors.Is(err, ErrInfeasible) {
		t.Errorf("huge E = %v, want ErrInfeasible", err)
	}
}

func TestOptimalEMatchesNumericMinimum(t *testing.T) {
	// The corrected closed form must agree with golden-section on the
	// E-slice for a spread of K (this is the check that catches the paper's
	// Eq.-17 typo).
	p := DefaultProblem()
	for _, k := range []float64{1, 2, 5, 10, 20} {
		eStar, err := p.OptimalE(k)
		if err != nil {
			t.Fatalf("OptimalE(%v): %v", k, err)
		}
		hi := p.EMax(k) * (1 - 1e-9)
		numeric, err := optim.GoldenSection(func(e float64) float64 { return p.Objective(k, e) },
			1, hi, 1e-10)
		if err != nil {
			t.Fatalf("GoldenSection: %v", err)
		}
		if math.Abs(eStar-numeric) > 1e-3*(1+numeric) {
			t.Errorf("K=%v: closed-form E* = %v, numeric %v", k, eStar, numeric)
		}
	}
}

func TestOptimalECalibration(t *testing.T) {
	// At K=1 the calibrated default problem should place E* in the paper's
	// Fig.-6 region (tens of epochs).
	p := DefaultProblem()
	eStar, err := p.OptimalE(1)
	if err != nil {
		t.Fatalf("OptimalE: %v", err)
	}
	if eStar < 20 || eStar > 80 {
		t.Errorf("E*(K=1) = %v, want in [20,80]", eStar)
	}
}

func TestOptimalEInfeasibleK(t *testing.T) {
	p := DefaultProblem()
	p.Bound.A1 = 1 // εK − A1 ≤ 0 for all K ≤ N=20 at ε=0.08 ⇒ need K > 12.5
	if _, err := p.OptimalE(10); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible K = %v, want ErrInfeasible", err)
	}
	if _, err := p.OptimalE(15); err != nil {
		t.Errorf("K=15 should be feasible: %v", err)
	}
}

func TestOptimalEUnboundedWhenA2Zero(t *testing.T) {
	p := DefaultProblem()
	p.Bound.A2 = 0
	eStar, err := p.OptimalE(5)
	if err != nil {
		t.Fatalf("OptimalE: %v", err)
	}
	if !math.IsInf(eStar, 1) {
		t.Errorf("E* with A2=0 = %v, want +Inf", eStar)
	}
}

func TestEnergyForRounds(t *testing.T) {
	p := DefaultProblem()
	got := p.EnergyForRounds(10, 40, 90)
	want := 90.0 * 10 * p.Energy.PerRound(40)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("EnergyForRounds = %v, want %v", got, want)
	}
}

// Property: on random feasible problems, the closed-form partial minimizers
// never lose to a golden-section search of the same slice.
func TestClosedFormsOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mat.NewRNG(seed)
		p := Problem{
			Bound: BoundConstants{
				A0: 10 + 500*rng.Float64(),
				A1: 0.001 + 0.2*rng.Float64(),
				A2: 1e-5 + 1e-3*rng.Float64(),
			},
			Energy: EnergyParams{
				B0: 0.01 + rng.Float64(),
				B1: 0.01 + rng.Float64(),
			},
			Epsilon: 0.05 + 0.3*rng.Float64(),
			Servers: 5 + rng.Intn(30),
		}
		if p.Validate() != nil {
			return true // skip infeasible draws
		}
		e := 1 + rng.Float64()*math.Min(50, math.Max(1, p.EMax(float64(p.Servers))-1))
		kStar, err := p.OptimalK(e)
		if err != nil {
			return true
		}
		lo := math.Max(1, p.KMin(e)*1.000001)
		kNum, err := optim.GoldenSection(func(k float64) float64 { return p.Objective(k, e) },
			lo, float64(p.Servers), 1e-9)
		if err != nil {
			return true
		}
		// Closed form must be at least as good as the numeric minimizer.
		return p.Objective(kStar, e) <= p.Objective(kNum, e)*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
