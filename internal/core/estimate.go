package core

import (
	"fmt"

	"eefei/internal/dataset"
	"eefei/internal/mat"
	"eefei/internal/ml"
)

// This file estimates the *physical* quantities behind the convergence
// bound directly from a dataset and a trained reference model, so the
// planner can be driven from first principles instead of a fitted
// aggregate:
//
//	σ²  — variance of per-client stochastic gradients at the optimum
//	      (the bound's σ² ≜ (1/K)·Σ_k E‖∇f(ω*, z_k)‖², paper Prop. 1)
//	L   — smoothness of the logistic loss, bounded by λmax(XᵀX/n)·c + λ_reg,
//	      with c = 1/4 for the sigmoid head and c = 1/2 for softmax
//	‖ω0−ω*‖² — distance from the zero initialization to the optimum.

// EstimateOptions tunes the estimators.
type EstimateOptions struct {
	// PowerTol is the power-iteration tolerance (default 1e-8).
	PowerTol float64
	// PowerMaxIter bounds the power iteration (default 500).
	PowerMaxIter int
	// Seed drives the power-iteration start vector.
	Seed uint64
}

func (o *EstimateOptions) defaults() {
	if o.PowerTol <= 0 {
		o.PowerTol = 1e-8
	}
	if o.PowerMaxIter <= 0 {
		o.PowerMaxIter = 500
	}
}

// EstimateGradientVariance computes σ² at the given model (intended to be a
// near-optimal reference): the mean over shards of the squared norm of each
// shard's full gradient. At the true optimum the global gradient vanishes
// but per-shard gradients do not; their dispersion is exactly what the
// bound's A1 term penalizes small K for.
func EstimateGradientVariance(reference *ml.Model, shards []*dataset.Dataset) (float64, error) {
	if len(shards) == 0 {
		return 0, fmt.Errorf("no shards: %w", ErrParams)
	}
	var sum float64
	for i, s := range shards {
		g, err := ml.GradientNorm(reference, s)
		if err != nil {
			return 0, fmt.Errorf("shard %d gradient: %w", i, err)
		}
		sum += g * g
	}
	return sum / float64(len(shards)), nil
}

// EstimateSmoothness bounds the logistic loss's smoothness constant L via
// the top eigenvalue of the empirical second-moment matrix XᵀX/n over the
// union of the shards: L ≤ c·λmax, with c = 1/2 for the softmax head
// (conservative multi-class bound) and c = 1/4 for per-class sigmoids.
func EstimateSmoothness(shards []*dataset.Dataset, act ml.Activation, opts EstimateOptions) (float64, error) {
	opts.defaults()
	if len(shards) == 0 {
		return 0, fmt.Errorf("no shards: %w", ErrParams)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	dim := shards[0].Dim()
	x := mat.NewDense(total, dim)
	row := 0
	for _, s := range shards {
		for i := 0; i < s.Len(); i++ {
			copy(x.Row(row), s.X.Row(i))
			row++
		}
	}
	lambda, err := mat.GramLargestEigenvalue(x, opts.PowerTol, opts.PowerMaxIter, opts.Seed)
	if err != nil {
		return 0, fmt.Errorf("smoothness eigenvalue: %w", err)
	}
	c := 0.5
	if act == ml.Sigmoid {
		c = 0.25
	}
	return c * lambda, nil
}

// EstimateInitialDistance returns ‖ω0 − ω*‖² for the zero initialization
// the engines use: simply the squared parameter norm of the reference
// optimum.
func EstimateInitialDistance(reference *ml.Model) float64 {
	zero := ml.NewModel(reference.Classes(), reference.Features(), reference.Act)
	d := reference.ParamDistance(zero)
	return d * d
}

// EstimatePhysical assembles a PhysicalConstants from data: the caller
// supplies the near-optimal reference model (e.g. from long centralized
// training), the shards, the learning rate γ, and the α-constants of the
// bound (universal constants of [14]; 1 is the conventional choice when
// unspecified).
func EstimatePhysical(reference *ml.Model, shards []*dataset.Dataset, learningRate float64,
	alpha0, alpha1, alpha2 float64, opts EstimateOptions) (PhysicalConstants, error) {
	if learningRate <= 0 {
		return PhysicalConstants{}, fmt.Errorf("learning rate %v: %w", learningRate, ErrParams)
	}
	sigmaSq, err := EstimateGradientVariance(reference, shards)
	if err != nil {
		return PhysicalConstants{}, err
	}
	smooth, err := EstimateSmoothness(shards, reference.Act, opts)
	if err != nil {
		return PhysicalConstants{}, err
	}
	return PhysicalConstants{
		Alpha0:                alpha0,
		Alpha1:                alpha1,
		Alpha2:                alpha2,
		InitialDistanceSq:     EstimateInitialDistance(reference),
		LearningRate:          learningRate,
		GradientVarianceAtOpt: sigmaSq,
		Smoothness:            smooth,
	}, nil
}
