package core

import (
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/energy"
	"eefei/internal/iot"
)

// These tests pin the cross-module identities that make the reproduction
// hang together: the aggregate Eq.-(12) constants must agree exactly with
// the device model they were derived from, and executing an integer plan
// must actually satisfy the convergence bound it was planned against.

func TestEnergyParamsMatchDeviceModelIdentity(t *testing.T) {
	dm := energy.DefaultPiDeviceModel()
	up := iot.DefaultNBIoTConfig()
	const n = 3000
	params, err := NewEnergyParams(dm, up, n, true)
	if err != nil {
		t.Fatalf("NewEnergyParams: %v", err)
	}
	// B0·E + B1 must equal TrainEnergy(E, n) + UploadEnergy for every E:
	// that is exactly the paper's per-round modelled energy (Eqs. 4–6 with
	// ρ·n dropped for preloaded data).
	for _, e := range []int{1, 10, 40, 100, 500} {
		lhs := params.PerRound(float64(e))
		rhs := dm.TrainEnergy(e, n) + dm.UploadEnergy()
		if math.Abs(lhs-rhs)/rhs > 1e-12 {
			t.Errorf("E=%d: B0E+B1 = %v, device model %v", e, lhs, rhs)
		}
	}
	// With data collection, the ρ·n term shifts B1 by exactly e^I(n).
	collect, err := NewEnergyParams(dm, up, n, false)
	if err != nil {
		t.Fatalf("NewEnergyParams: %v", err)
	}
	if diff := collect.B1 - params.B1; math.Abs(diff-up.CollectionEnergy(n)) > 1e-9 {
		t.Errorf("collection shift = %v, want e^I = %v", diff, up.CollectionEnergy(n))
	}
}

func TestPlanExecutionSatisfiesBound(t *testing.T) {
	// For a grid of problems: run the planner, then check that executing
	// the integer plan (T rounds at K, E) drives the bound below ε and that
	// Ê at the plan equals T*·K·(B0E+B1) recomputed from scratch.
	problems := []Problem{
		DefaultProblem(),
		{Bound: BoundConstants{A0: 50, A1: 0.3, A2: 1e-3},
			Energy: EnergyParams{B0: 0.1, B1: 0.4}, Epsilon: 0.2, Servers: 12},
		{Bound: BoundConstants{A0: 1000, A1: 0.02, A2: 1e-5},
			Energy: EnergyParams{B0: 0.5, B1: 0.1}, Epsilon: 0.05, Servers: 40},
	}
	for i, p := range problems {
		plan, err := Solve(p, DefaultPlannerConfig())
		if err != nil {
			t.Fatalf("problem %d: Solve: %v", i, err)
		}
		gap := p.Bound.Gap(float64(plan.K), float64(plan.E), float64(plan.T))
		if gap > p.Epsilon*(1+1e-9) {
			t.Errorf("problem %d: executing the plan leaves gap %v > ε %v", i, gap, p.Epsilon)
		}
		tStar, err := p.TStar(float64(plan.K), float64(plan.E))
		if err != nil {
			t.Fatalf("problem %d: TStar: %v", i, err)
		}
		recomputed := tStar * float64(plan.K) * p.Energy.PerRound(float64(plan.E))
		if math.Abs(recomputed-plan.PredictedJoules)/plan.PredictedJoules > 1e-9 {
			t.Errorf("problem %d: Ê mismatch %v vs %v", i, recomputed, plan.PredictedJoules)
		}
	}
}

func TestDefaultSyntheticConfigMatchesPaperDims(t *testing.T) {
	// Indirect but cheap: the default (paper-scale) generator config must
	// describe MNIST's shape without being instantiated here.
	cfg := defaultPaperDatasetConfig()
	if cfg.Samples != 60000 || cfg.Classes != 10 || cfg.Side != 28 {
		t.Errorf("paper dataset config = %+v, want MNIST dims", cfg)
	}
}

// defaultPaperDatasetConfig avoids importing dataset at the top level of the
// other tests; it just mirrors dataset.DefaultSyntheticConfig.
func defaultPaperDatasetConfig() struct{ Samples, Classes, Side int } {
	cfg := dataset.DefaultSyntheticConfig()
	return struct{ Samples, Classes, Side int }{cfg.Samples, cfg.Classes, cfg.Side}
}
