package core

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/ml"
)

// estimateFixture trains a reference model on a small synthetic dataset and
// returns it with its IID shards.
func estimateFixture(t *testing.T) (*ml.Model, []*dataset.Dataset) {
	t.Helper()
	cfg := dataset.QuickSyntheticConfig()
	cfg.Samples = 600
	d, err := dataset.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(d, 6)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	model := ml.NewModel(d.Classes, d.Dim(), ml.Softmax)
	sgd, err := ml.NewSGD(ml.SGDConfig{LearningRate: 0.3, Decay: 0.999, DecayEvery: 1})
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	if _, err := sgd.Train(model, d, 300); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return model, shards
}

func TestEstimateGradientVariance(t *testing.T) {
	model, shards := estimateFixture(t)
	sigmaSq, err := EstimateGradientVariance(model, shards)
	if err != nil {
		t.Fatalf("EstimateGradientVariance: %v", err)
	}
	if sigmaSq <= 0 {
		t.Fatalf("σ² = %v, want > 0 (per-shard gradients never vanish exactly)", sigmaSq)
	}
	// Per-shard gradients at a near-optimum are small: σ² well below the
	// squared gradient norm of the untrained model.
	zero := ml.NewModel(model.Classes(), model.Features(), model.Act)
	zeroSigma, err := EstimateGradientVariance(zero, shards)
	if err != nil {
		t.Fatalf("EstimateGradientVariance(zero): %v", err)
	}
	if sigmaSq >= zeroSigma {
		t.Errorf("σ² at optimum (%v) not below σ² at init (%v)", sigmaSq, zeroSigma)
	}
	if _, err := EstimateGradientVariance(model, nil); !errors.Is(err, ErrParams) {
		t.Errorf("no shards = %v, want ErrParams", err)
	}
}

func TestEstimateSmoothness(t *testing.T) {
	model, shards := estimateFixture(t)
	_ = model
	lSoftmax, err := EstimateSmoothness(shards, ml.Softmax, EstimateOptions{Seed: 1})
	if err != nil {
		t.Fatalf("EstimateSmoothness: %v", err)
	}
	if lSoftmax <= 0 {
		t.Fatalf("L = %v, want > 0", lSoftmax)
	}
	// Pixels live in [0,1] over 64 features: λmax(XᵀX/n) ≤ 64, so L ≤ 32.
	if lSoftmax > 32 {
		t.Errorf("L = %v exceeds the trivial bound 32", lSoftmax)
	}
	lSigmoid, err := EstimateSmoothness(shards, ml.Sigmoid, EstimateOptions{Seed: 1})
	if err != nil {
		t.Fatalf("EstimateSmoothness sigmoid: %v", err)
	}
	if math.Abs(lSigmoid-lSoftmax/2) > 1e-9 {
		t.Errorf("sigmoid L = %v, want half of softmax %v", lSigmoid, lSoftmax)
	}
	if _, err := EstimateSmoothness(nil, ml.Softmax, EstimateOptions{}); !errors.Is(err, ErrParams) {
		t.Errorf("no shards = %v, want ErrParams", err)
	}
}

func TestEstimateInitialDistance(t *testing.T) {
	model, _ := estimateFixture(t)
	d := EstimateInitialDistance(model)
	if d <= 0 {
		t.Fatalf("distance = %v, want > 0", d)
	}
	zero := ml.NewModel(model.Classes(), model.Features(), model.Act)
	if EstimateInitialDistance(zero) != 0 {
		t.Error("distance of the zero model must be 0")
	}
}

func TestEstimatePhysicalProducesUsableProblem(t *testing.T) {
	model, shards := estimateFixture(t)
	phys, err := EstimatePhysical(model, shards, 0.1, 1, 1, 1, EstimateOptions{Seed: 1})
	if err != nil {
		t.Fatalf("EstimatePhysical: %v", err)
	}
	bound, err := phys.Aggregate()
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if err := bound.Validate(); err != nil {
		t.Fatalf("estimated bound invalid: %v", err)
	}
	// The estimated constants must admit a feasible, solvable problem for
	// a reachable ε.
	p := Problem{
		Bound:   bound,
		Energy:  DefaultEnergyParams(),
		Epsilon: bound.A1 * 1.5, // comfortably feasible at moderate K
		Servers: len(shards),
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("estimated problem invalid: %v", err)
	}
	plan, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		t.Fatalf("Solve on estimated constants: %v", err)
	}
	if plan.K < 1 || plan.E < 1 || plan.T < 1 {
		t.Errorf("degenerate plan %+v", plan)
	}
}

func TestEstimatePhysicalValidation(t *testing.T) {
	model, shards := estimateFixture(t)
	if _, err := EstimatePhysical(model, shards, 0, 1, 1, 1, EstimateOptions{}); !errors.Is(err, ErrParams) {
		t.Errorf("zero lr = %v, want ErrParams", err)
	}
}
