package core

import (
	"fmt"
	"math"

	"eefei/internal/optim"
)

// Plan is the output of the EE-FEI planner: the jointly optimized training
// parameters and their predicted cost.
type Plan struct {
	// K and E are the integer parameters to deploy.
	K, E int
	// T is the integer number of global rounds to schedule (⌈T*⌉, at
	// least 1).
	T int
	// ContinuousK, ContinuousE, ContinuousT are the relaxed optimizer
	// outputs before integer rounding.
	ContinuousK, ContinuousE, ContinuousT float64
	// PredictedJoules is Ê at the integer plan.
	PredictedJoules float64
	// BaselineJoules is Ê at (K=1, E=1), the naive configuration the paper
	// compares against for its 49.8% headline.
	BaselineJoules float64
	// Iterations is the number of ACS alternations performed.
	Iterations int
}

// Savings returns the fractional energy reduction of the plan versus the
// (K=1, E=1) baseline, e.g. 0.498 for the paper's headline number. NaN when
// the baseline is infeasible.
func (p Plan) Savings() float64 {
	if p.BaselineJoules <= 0 || math.IsInf(p.BaselineJoules, 0) {
		return math.NaN()
	}
	return 1 - p.PredictedJoules/p.BaselineJoules
}

// PlannerConfig tunes the ACS run of Algorithm 1.
type PlannerConfig struct {
	// Residual is ξ, the objective-change threshold that stops the
	// alternation.
	Residual float64
	// MaxIterations bounds the alternation count.
	MaxIterations int
	// InitialK, InitialE seed the search; zero values select (N, 1), a
	// feasible corner.
	InitialK, InitialE float64
	// ECap bounds E when A2 = 0 makes the E-slice unbounded. Zero selects
	// 10000.
	ECap float64
}

// DefaultPlannerConfig returns ξ = 1e-9·scale-free and 100 iterations.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{Residual: 1e-9, MaxIterations: 100}
}

// Solve runs Algorithm 1: Alternate Convex Search with the closed-form
// partial minimizers, then refines to the best feasible integer neighbours.
func Solve(p Problem, cfg PlannerConfig) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if cfg.Residual <= 0 {
		cfg.Residual = 1e-9
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	eCap := cfg.ECap
	if eCap <= 0 {
		eCap = 10000
	}
	k0 := cfg.InitialK
	if k0 < 1 || k0 > float64(p.Servers) {
		k0 = float64(p.Servers)
	}
	e0 := cfg.InitialE
	if e0 < 1 {
		e0 = 1
	}
	if !p.Feasible(k0, e0) {
		return Plan{}, fmt.Errorf("initial point (%v,%v): %w", k0, e0, ErrInfeasible)
	}

	problem := optim.ACSProblem{
		Objective: p.Objective,
		MinimizeX: func(e float64) float64 {
			k, err := p.OptimalK(e)
			if err != nil {
				return k0 // keep the previous-feasible fallback
			}
			return k
		},
		MinimizeY: func(k float64) float64 {
			e, err := p.OptimalE(k)
			if err != nil {
				return 1
			}
			if math.IsInf(e, 1) || e > eCap {
				return eCap
			}
			return e
		},
	}
	res, err := optim.ACS(problem, k0, e0, cfg.Residual, cfg.MaxIterations)
	if err != nil {
		return Plan{}, fmt.Errorf("algorithm 1: %w", err)
	}

	plan, err := integerize(p, res.X, res.Y)
	if err != nil {
		return Plan{}, err
	}
	plan.Iterations = res.Iterations
	plan.BaselineJoules = p.Objective(1, 1)
	return plan, nil
}

// integerize rounds a continuous solution to the best feasible integer
// neighbour and fills in the plan.
func integerize(p Problem, kc, ec float64) (Plan, error) {
	bestVal := math.Inf(1)
	var bestK, bestE int
	for _, k := range []int{int(math.Floor(kc)), int(math.Ceil(kc))} {
		for _, e := range []int{int(math.Floor(ec)), int(math.Ceil(ec))} {
			kk, ee := clampInt(k, 1, p.Servers), maxInt(e, 1)
			if !p.Feasible(float64(kk), float64(ee)) {
				continue
			}
			if v := p.Objective(float64(kk), float64(ee)); v < bestVal {
				bestVal, bestK, bestE = v, kk, ee
			}
		}
	}
	if math.IsInf(bestVal, 1) {
		return Plan{}, fmt.Errorf("no feasible integer neighbour of (%v,%v): %w", kc, ec, ErrInfeasible)
	}
	tStar, err := p.TStar(float64(bestK), float64(bestE))
	if err != nil {
		return Plan{}, err
	}
	tInt := int(math.Ceil(tStar))
	if tInt < 1 {
		tInt = 1
	}
	ct, err := p.TStar(kc, ec)
	if err != nil {
		// The continuous point can sit on the feasibility boundary after
		// capping; report the integer T* instead.
		ct = tStar
	}
	return Plan{
		K:               bestK,
		E:               bestE,
		T:               tInt,
		ContinuousK:     kc,
		ContinuousE:     ec,
		ContinuousT:     ct,
		PredictedJoules: bestVal,
	}, nil
}

// SolveGrid exhaustively minimizes the integer problem over the full box
// [1,N]×[1,eMax], the brute-force baseline used by the ACS ablation bench.
func SolveGrid(p Problem, eMax int) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if eMax < 1 {
		eMax = 1
	}
	best, err := optim.GridSearch2D(
		func(k, e int) float64 { return p.Objective(float64(k), float64(e)) },
		func(k, e int) bool { return p.Feasible(float64(k), float64(e)) },
		1, p.Servers, 1, eMax,
	)
	if err != nil {
		return Plan{}, fmt.Errorf("grid plan: %w", err)
	}
	tStar, err := p.TStar(float64(best.X), float64(best.Y))
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		K:               best.X,
		E:               best.Y,
		T:               maxInt(int(math.Ceil(tStar)), 1),
		ContinuousK:     float64(best.X),
		ContinuousE:     float64(best.Y),
		ContinuousT:     tStar,
		PredictedJoules: best.Value,
		BaselineJoules:  p.Objective(1, 1),
	}, nil
}

// SolveNumeric runs ACS with numeric golden-section partial minimizers
// instead of the closed forms — the ablation that validates Eqs. (15)/(17).
func SolveNumeric(p Problem, cfg PlannerConfig) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if cfg.Residual <= 0 {
		cfg.Residual = 1e-9
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	eCap := cfg.ECap
	if eCap <= 0 {
		eCap = 10000
	}
	k0 := float64(p.Servers)
	problem := optim.ACSProblem{
		Objective: p.Objective,
		MinimizeX: func(e float64) float64 {
			lo := math.Max(1, p.KMin(e)*(1+1e-9))
			hi := float64(p.Servers)
			if lo >= hi {
				return hi
			}
			k, err := optim.GoldenSection(func(k float64) float64 { return p.Objective(k, e) }, lo, hi, 1e-9)
			if err != nil {
				return hi
			}
			return k
		},
		MinimizeY: func(k float64) float64 {
			hi := p.EMax(k)
			if math.IsInf(hi, 1) || hi > eCap {
				hi = eCap
			}
			hi *= 1 - 1e-9 // stay strictly inside the open feasibility bound
			if hi <= 1 {
				return 1
			}
			e, err := optim.GoldenSection(func(e float64) float64 { return p.Objective(k, e) }, 1, hi, 1e-9)
			if err != nil {
				return 1
			}
			return e
		},
	}
	res, err := optim.ACS(problem, k0, 1, cfg.Residual, cfg.MaxIterations)
	if err != nil {
		return Plan{}, fmt.Errorf("numeric ACS: %w", err)
	}
	plan, err := integerize(p, res.X, res.Y)
	if err != nil {
		return Plan{}, err
	}
	plan.Iterations = res.Iterations
	plan.BaselineJoules = p.Objective(1, 1)
	return plan, nil
}

func clampInt(v, lo, hi int) int {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SolveInteger runs ACS directly in the integer domain: each alternation
// step exactly minimizes the objective over the feasible integer slice with
// ternary search (optim.MinimizeInt), avoiding the continuous relaxation
// and its final rounding step. It is slightly more expensive per step than
// the closed forms but returns a certified integer coordinate-wise optimum.
func SolveInteger(p Problem, cfg PlannerConfig) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if cfg.Residual <= 0 {
		cfg.Residual = 1e-9
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	eCap := int(cfg.ECap)
	if eCap <= 0 {
		eCap = 10000
	}

	k, e := p.Servers, 1
	value := p.Objective(float64(k), float64(e))
	iterations := 0
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		iterations++
		// K-step: exact integer minimization over the feasible K range.
		kLo := 1
		if km := p.KMin(float64(e)); !math.IsInf(km, 1) {
			if int(math.Floor(km))+1 > kLo {
				kLo = int(math.Floor(km)) + 1
			}
		}
		if kLo > p.Servers {
			return Plan{}, fmt.Errorf("integer ACS: no feasible K at E=%d: %w", e, ErrInfeasible)
		}
		bestK, _, err := optim.MinimizeInt(func(kk int) float64 {
			return p.Objective(float64(kk), float64(e))
		}, kLo, p.Servers)
		if err != nil {
			return Plan{}, fmt.Errorf("integer ACS K-step: %w", err)
		}
		k = bestK

		// E-step: exact integer minimization over the feasible E range.
		eHi := eCap
		if em := p.EMax(float64(k)); !math.IsInf(em, 1) {
			if int(math.Ceil(em))-1 < eHi {
				eHi = int(math.Ceil(em)) - 1
			}
		}
		if eHi < 1 {
			return Plan{}, fmt.Errorf("integer ACS: no feasible E at K=%d: %w", k, ErrInfeasible)
		}
		bestE, bestVal, err := optim.MinimizeInt(func(ee int) float64 {
			return p.Objective(float64(k), float64(ee))
		}, 1, eHi)
		if err != nil {
			return Plan{}, fmt.Errorf("integer ACS E-step: %w", err)
		}
		e = bestE

		if math.Abs(value-bestVal) <= cfg.Residual {
			value = bestVal
			break
		}
		value = bestVal
	}

	tStar, err := p.TStar(float64(k), float64(e))
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		K:               k,
		E:               e,
		T:               maxInt(int(math.Ceil(tStar)), 1),
		ContinuousK:     float64(k),
		ContinuousE:     float64(e),
		ContinuousT:     tStar,
		PredictedJoules: value,
		BaselineJoules:  p.Objective(1, 1),
		Iterations:      iterations,
	}, nil
}
