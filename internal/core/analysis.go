package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"eefei/internal/energy"
)

// This file contains the planner-side analyses that go beyond the paper's
// evaluation but fall out of its model: parameter sensitivity (how fragile
// is the plan to mis-calibrated constants?), predicted wall-clock time of a
// plan (the paper optimizes energy only; deployments also care about
// latency), the energy/time Pareto frontier, and the per-term energy
// breakdown used in EXPERIMENTS.md.

// SensitivityRow reports how the optimal plan responds to a relative
// perturbation of one model constant.
type SensitivityRow struct {
	// Constant names the perturbed quantity (A0, A1, A2, B0, B1, Epsilon).
	Constant string
	// Delta is the applied relative perturbation (e.g. +0.1 for +10%).
	Delta float64
	// K, E are the re-optimized integer parameters.
	K, E int
	// Joules is the re-optimized predicted energy.
	Joules float64
	// Elasticity is d(ln Ê)/d(ln constant): the % energy change per %
	// constant change.
	Elasticity float64
}

// Sensitivity re-solves the problem with each constant perturbed by ±delta
// and reports the resulting plans, baselined against the unperturbed plan.
// It answers the calibration question the paper leaves open: which of the
// fitted constants must be measured carefully, and which barely matter.
func Sensitivity(p Problem, delta float64) ([]SensitivityRow, error) {
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sensitivity delta %v outside (0,1): %w", delta, ErrParams)
	}
	base, err := Solve(p, DefaultPlannerConfig())
	if err != nil {
		return nil, fmt.Errorf("sensitivity baseline: %w", err)
	}
	perturb := []struct {
		name  string
		apply func(*Problem, float64)
	}{
		{"A0", func(q *Problem, f float64) { q.Bound.A0 *= f }},
		{"A1", func(q *Problem, f float64) { q.Bound.A1 *= f }},
		{"A2", func(q *Problem, f float64) { q.Bound.A2 *= f }},
		{"B0", func(q *Problem, f float64) { q.Energy.B0 *= f }},
		{"B1", func(q *Problem, f float64) { q.Energy.B1 *= f }},
		{"Epsilon", func(q *Problem, f float64) { q.Epsilon *= f }},
	}
	var rows []SensitivityRow
	for _, pt := range perturb {
		for _, sign := range []float64{+1, -1} {
			q := p
			d := sign * delta
			pt.apply(&q, 1+d)
			plan, err := Solve(q, DefaultPlannerConfig())
			if err != nil {
				// A perturbation can make the problem infeasible (e.g. ε
				// down, A1 up); report it as a NaN-energy row rather than
				// aborting the whole analysis.
				rows = append(rows, SensitivityRow{
					Constant: pt.name, Delta: d, K: -1, E: -1,
					Joules: math.NaN(), Elasticity: math.NaN(),
				})
				continue
			}
			elasticity := (plan.PredictedJoules/base.PredictedJoules - 1) / d
			rows = append(rows, SensitivityRow{
				Constant:   pt.name,
				Delta:      d,
				K:          plan.K,
				E:          plan.E,
				Joules:     plan.PredictedJoules,
				Elasticity: elasticity,
			})
		}
	}
	return rows, nil
}

// PlanDuration predicts the wall-clock time of executing a plan on devices
// described by tm with n samples per server: T sequential rounds, each
// lasting one full waiting→download→train→upload cycle (the K selected
// servers run in parallel, so K does not lengthen a round).
func PlanDuration(plan Plan, tm energy.TimeModel, samplesPerServer int) time.Duration {
	return time.Duration(plan.T) * tm.RoundDuration(plan.E, samplesPerServer)
}

// ParetoPoint is one energy/time trade-off on the frontier.
type ParetoPoint struct {
	K, E    int
	T       int
	Joules  float64
	Elapsed time.Duration
}

// ParetoFrontier enumerates the feasible integer (K, E) box and returns the
// non-dominated energy/time points, sorted by increasing energy. eMax
// bounds the E axis (clamped to the feasibility limit).
func ParetoFrontier(p Problem, tm energy.TimeModel, samplesPerServer, eMax int) ([]ParetoPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	if eMax < 1 {
		eMax = 1
	}
	var candidates []ParetoPoint
	for k := 1; k <= p.Servers; k++ {
		for e := 1; e <= eMax; e++ {
			kf, ef := float64(k), float64(e)
			if !p.Feasible(kf, ef) {
				continue
			}
			tStar, err := p.TStar(kf, ef)
			if err != nil {
				continue
			}
			t := int(math.Ceil(tStar))
			if t < 1 {
				t = 1
			}
			candidates = append(candidates, ParetoPoint{
				K: k, E: e, T: t,
				Joules:  p.EnergyForRounds(kf, ef, float64(t)),
				Elapsed: time.Duration(t) * tm.RoundDuration(e, samplesPerServer),
			})
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("no feasible point: %w", ErrInfeasible)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Joules != candidates[j].Joules {
			return candidates[i].Joules < candidates[j].Joules
		}
		return candidates[i].Elapsed < candidates[j].Elapsed
	})
	// Sweep: keep points whose elapsed time strictly improves on everything
	// cheaper.
	var frontier []ParetoPoint
	best := time.Duration(math.MaxInt64)
	for _, c := range candidates {
		if c.Elapsed < best {
			frontier = append(frontier, c)
			best = c.Elapsed
		}
	}
	return frontier, nil
}

// Breakdown decomposes the predicted energy of running (K, E) to the bound
// target into its model terms.
type Breakdown struct {
	K, E int
	// TStar is the continuous round count.
	TStar float64
	// ComputeJoules is the T·K·B0·E compute term.
	ComputeJoules float64
	// CommJoules is the T·K·B1 data-collection + upload term.
	CommJoules float64
	// Total is their sum (= Objective).
	Total float64
	// ComputeShare is ComputeJoules/Total.
	ComputeShare float64
}

// EnergyBreakdown splits Ê(K, E) into compute and communication parts —
// the trade-off the paper's Fig. 6 discussion is about.
func EnergyBreakdown(p Problem, k, e int) (Breakdown, error) {
	kf, ef := float64(k), float64(e)
	tStar, err := p.TStar(kf, ef)
	if err != nil {
		return Breakdown{}, err
	}
	compute := tStar * kf * p.Energy.B0 * ef
	comm := tStar * kf * p.Energy.B1
	return Breakdown{
		K: k, E: e,
		TStar:         tStar,
		ComputeJoules: compute,
		CommJoules:    comm,
		Total:         compute + comm,
		ComputeShare:  compute / (compute + comm),
	}, nil
}
