package dataset

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"eefei/internal/mat"
)

// SyntheticConfig controls the synthetic MNIST-like generator.
//
// The generator draws, per class, a fixed "prototype digit" — a sparse
// blob pattern on a Side×Side grid — and then produces samples as
// prototype + pixel noise, clipped to [0, 1] like normalized gray-scale
// images. The task is linearly separable up to the noise level, matching the
// regime where multinomial logistic regression reaches the paper's ~92%
// accuracy after enough federated rounds.
type SyntheticConfig struct {
	// Samples is the total number of samples to generate.
	Samples int
	// Classes is the number of digit classes (paper: 10).
	Classes int
	// Side is the image side length (paper: 28, features = Side²). Smaller
	// sides make tests fast while preserving the learning dynamics.
	Side int
	// Noise is the per-pixel Gaussian noise standard deviation. Around
	// 0.25–0.35 yields accuracy curves shaped like the paper's Fig. 4.
	Noise float64
	// BlobsPerClass is how many bright blobs compose each prototype.
	BlobsPerClass int
	// Seed makes generation fully deterministic.
	Seed uint64
}

// DefaultSyntheticConfig mirrors the paper's MNIST setup at full scale:
// 28×28 images, 10 classes.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Samples:       60000,
		Classes:       10,
		Side:          28,
		Noise:         0.30,
		BlobsPerClass: 4,
		Seed:          1,
	}
}

// QuickSyntheticConfig is a reduced-scale config for tests and quick benches:
// 8×8 images keep every matrix 64-wide so federated training runs in
// milliseconds while exhibiting the same convergence trade-offs.
func QuickSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Samples:       2000,
		Classes:       10,
		Side:          8,
		Noise:         0.30,
		BlobsPerClass: 3,
		Seed:          1,
	}
}

// Synthesize generates a dataset according to cfg. Identical configs produce
// identical datasets.
func Synthesize(cfg SyntheticConfig) (*Dataset, error) {
	if cfg.Samples <= 0 || cfg.Classes <= 0 || cfg.Side <= 0 {
		return nil, fmt.Errorf("dataset: invalid synthetic config %+v", cfg)
	}
	if cfg.BlobsPerClass <= 0 {
		cfg.BlobsPerClass = 3
	}
	dim := cfg.Side * cfg.Side
	protoRNG := mat.NewRNG(cfg.Seed)
	prototypes := make([]*mat.Dense, cfg.Classes)
	for c := range prototypes {
		prototypes[c] = classPrototype(protoRNG, cfg.Side, cfg.BlobsPerClass)
	}

	sampleRNG := protoRNG.Split()
	out := &Dataset{
		X:       mat.NewDense(cfg.Samples, dim),
		Labels:  make([]int, cfg.Samples),
		Classes: cfg.Classes,
	}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes // perfectly balanced classes, like MNIST approximately is
		out.Labels[i] = c
		row := out.X.Row(i)
		proto := prototypes[c].RawData()
		for j := range row {
			row[j] = mat.Clamp(proto[j]+sampleRNG.NormScaled(0, cfg.Noise), 0, 1)
		}
	}
	// Shuffle so that class order carries no information for partitioners.
	out.Shuffle(sampleRNG.Split())
	return out, nil
}

// SynthesizePair generates a train/test split the way the paper uses MNIST
// (60k train, 10k test): the test set comes from the same prototypes with an
// independent noise stream.
func SynthesizePair(train, test SyntheticConfig) (*Dataset, *Dataset, error) {
	if train.Seed == test.Seed {
		// Same seed would reuse the sample noise stream; the prototypes must
		// match but the noise must not, so nudge the test stream.
		test.Seed = train.Seed
	}
	tr, err := Synthesize(train)
	if err != nil {
		return nil, nil, fmt.Errorf("synthesize train: %w", err)
	}
	// The test set must share prototypes: regenerate with the same seed and
	// discard the train-noise prefix by drawing a fresh split stream.
	te, err := synthesizeWithOffset(test, train.Seed, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("synthesize test: %w", err)
	}
	return tr, te, nil
}

// synthesizeWithOffset is Synthesize with the same prototypes as seed but an
// offset noise stream, so train and test sets are i.i.d. draws from the same
// class-conditional distribution.
func synthesizeWithOffset(cfg SyntheticConfig, protoSeed uint64, offset uint64) (*Dataset, error) {
	if cfg.Samples <= 0 || cfg.Classes <= 0 || cfg.Side <= 0 {
		return nil, fmt.Errorf("dataset: invalid synthetic config %+v", cfg)
	}
	if cfg.BlobsPerClass <= 0 {
		cfg.BlobsPerClass = 3
	}
	dim := cfg.Side * cfg.Side
	protoRNG := mat.NewRNG(protoSeed)
	prototypes := make([]*mat.Dense, cfg.Classes)
	for c := range prototypes {
		prototypes[c] = classPrototype(protoRNG, cfg.Side, cfg.BlobsPerClass)
	}
	sampleRNG := mat.NewRNG(protoSeed ^ (0xabcdef<<8 + offset))
	out := &Dataset{
		X:       mat.NewDense(cfg.Samples, dim),
		Labels:  make([]int, cfg.Samples),
		Classes: cfg.Classes,
	}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		out.Labels[i] = c
		row := out.X.Row(i)
		proto := prototypes[c].RawData()
		for j := range row {
			row[j] = mat.Clamp(proto[j]+sampleRNG.NormScaled(0, cfg.Noise), 0, 1)
		}
	}
	out.Shuffle(sampleRNG.Split())
	return out, nil
}

// SynthesizeParallel generates the same class-conditional distribution as
// Synthesize, but each row draws its noise from an independent stream
// derived from (seed, stream, row), so generation fans out across workers
// and is bit-identical for every worker count (including 1). The stream
// layout necessarily differs from Synthesize's single sequential walk, so
// the two generators produce different — equally distributed — datasets for
// the same config; large-N callers (the Full experiment tier, 60k×784)
// use this path, the committed quick/paper artifacts keep the original.
// workers <= 0 selects GOMAXPROCS.
func SynthesizeParallel(cfg SyntheticConfig, workers int) (*Dataset, error) {
	return synthesizeRowStreams(cfg, cfg.Seed, 0, workers)
}

// SynthesizePairParallel mirrors SynthesizePair for the per-row-stream
// generator: train and test share prototypes (both derive them from
// train.Seed) but draw disjoint noise streams.
func SynthesizePairParallel(train, test SyntheticConfig, workers int) (*Dataset, *Dataset, error) {
	tr, err := synthesizeRowStreams(train, train.Seed, 0, workers)
	if err != nil {
		return nil, nil, fmt.Errorf("synthesize train: %w", err)
	}
	te, err := synthesizeRowStreams(test, train.Seed, 1, workers)
	if err != nil {
		return nil, nil, fmt.Errorf("synthesize test: %w", err)
	}
	return tr, te, nil
}

// rowStreamSeed hashes (seed, stream, row) into the seed of that row's
// private noise RNG (SplitMix64 finalizer, same constants as mat.RNG).
func rowStreamSeed(seed, stream, row uint64) uint64 {
	z := seed ^ (stream+1)*0x9e3779b97f4a7c15 ^ row*0xbf58476d1ce4e5b9
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// synthesizeRowStreams fills every row from its own derived RNG; rows are
// claimed in fixed-size chunks off an atomic cursor so any pool size writes
// exactly the same bytes.
func synthesizeRowStreams(cfg SyntheticConfig, protoSeed, stream uint64, workers int) (*Dataset, error) {
	if cfg.Samples <= 0 || cfg.Classes <= 0 || cfg.Side <= 0 {
		return nil, fmt.Errorf("dataset: invalid synthetic config %+v", cfg)
	}
	if cfg.BlobsPerClass <= 0 {
		cfg.BlobsPerClass = 3
	}
	dim := cfg.Side * cfg.Side
	protoRNG := mat.NewRNG(protoSeed)
	prototypes := make([]*mat.Dense, cfg.Classes)
	for c := range prototypes {
		prototypes[c] = classPrototype(protoRNG, cfg.Side, cfg.BlobsPerClass)
	}
	out := &Dataset{
		X:       mat.NewDense(cfg.Samples, dim),
		Labels:  make([]int, cfg.Samples),
		Classes: cfg.Classes,
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const chunk = 256
	nChunks := (cfg.Samples + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(cursor.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				lo, hi := ci*chunk, (ci+1)*chunk
				if hi > cfg.Samples {
					hi = cfg.Samples
				}
				for i := lo; i < hi; i++ {
					rng := mat.NewRNG(rowStreamSeed(protoSeed, stream, uint64(i)))
					c := i % cfg.Classes
					out.Labels[i] = c
					row := out.X.Row(i)
					proto := prototypes[c].RawData()
					for j := range row {
						row[j] = mat.Clamp(proto[j]+rng.NormScaled(0, cfg.Noise), 0, 1)
					}
				}
			}
		}()
	}
	wg.Wait()
	out.Shuffle(mat.NewRNG(rowStreamSeed(protoSeed, stream, uint64(cfg.Samples)+0x5157)))
	return out, nil
}

// classPrototype paints BlobsPerClass Gaussian bright blobs at random
// positions on a Side×Side canvas, producing an MNIST-digit-like intensity
// pattern in [0, 1].
func classPrototype(rng *mat.RNG, side, blobs int) *mat.Dense {
	img := mat.NewDense(side, side)
	sigma := float64(side) / 7
	for b := 0; b < blobs; b++ {
		cx := 1 + rng.Float64()*float64(side-2)
		cy := 1 + rng.Float64()*float64(side-2)
		amp := 0.6 + 0.4*rng.Float64()
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				dx := float64(x) - cx
				dy := float64(y) - cy
				v := img.At(y, x) + amp*math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
				img.Set(y, x, mat.Clamp(v, 0, 1))
			}
		}
	}
	return img
}
