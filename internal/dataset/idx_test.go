package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestIDXImagesRoundTrip(t *testing.T) {
	cfg := QuickSyntheticConfig()
	cfg.Samples = 50
	d, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, d.X, cfg.Side); err != nil {
		t.Fatalf("WriteIDXImages: %v", err)
	}
	back, err := ReadIDXImages(&buf)
	if err != nil {
		t.Fatalf("ReadIDXImages: %v", err)
	}
	if back.Rows() != d.X.Rows() || back.Cols() != d.X.Cols() {
		t.Fatalf("round-trip shape %dx%d, want %dx%d", back.Rows(), back.Cols(), d.X.Rows(), d.X.Cols())
	}
	// Quantization to bytes loses at most 1/255 ≈ 0.004 per pixel.
	if !back.Equal(d.X, 1.0/254) {
		t.Error("round-trip pixels deviate beyond quantization error")
	}
}

func TestIDXLabelsRoundTrip(t *testing.T) {
	labels := []int{0, 1, 2, 9, 5, 5}
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, labels); err != nil {
		t.Fatalf("WriteIDXLabels: %v", err)
	}
	back, err := ReadIDXLabels(&buf)
	if err != nil {
		t.Fatalf("ReadIDXLabels: %v", err)
	}
	if len(back) != len(labels) {
		t.Fatalf("len = %d, want %d", len(back), len(labels))
	}
	for i := range labels {
		if back[i] != labels[i] {
			t.Errorf("label[%d] = %d, want %d", i, back[i], labels[i])
		}
	}
}

func TestWriteIDXLabelsRejectsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, []int{256}); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("WriteIDXLabels(256) = %v, want ErrIDXFormat", err)
	}
	if err := WriteIDXLabels(&buf, []int{-1}); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("WriteIDXLabels(-1) = %v, want ErrIDXFormat", err)
	}
}

func TestReadIDXBadMagic(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"truncated magic", []byte{0, 0}},
		{"nonzero prefix", []byte{1, 0, 0x08, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"wrong dtype", []byte{0, 0, 0x0d, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"wrong ndim", []byte{0, 0, 0x08, 2, 0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadIDXImages(bytes.NewReader(tt.data)); err == nil {
				t.Error("malformed stream must error")
			}
		})
	}
}

func TestReadIDXTruncatedPayload(t *testing.T) {
	// Header promises 2 images of 2x2 but payload has only 3 bytes.
	data := []byte{
		0, 0, 0x08, 3,
		0, 0, 0, 2,
		0, 0, 0, 2,
		0, 0, 0, 2,
		1, 2, 3,
	}
	if _, err := ReadIDXImages(bytes.NewReader(data)); err == nil {
		t.Error("truncated payload must error")
	}
}

func TestReadIDXSizeCap(t *testing.T) {
	// A header claiming an enormous tensor must be rejected before allocation.
	data := []byte{
		0, 0, 0x08, 3,
		0xff, 0xff, 0xff, 0xff,
		0, 0, 0, 28,
		0, 0, 0, 28,
	}
	if _, err := ReadIDXImages(bytes.NewReader(data)); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("oversized header = %v, want ErrIDXFormat", err)
	}
}

func TestLoadMNISTFromGeneratedFiles(t *testing.T) {
	// Full loop: write synthetic data in MNIST's own container format, read
	// it back with the real-file loader.
	dir := t.TempDir()
	cfg := QuickSyntheticConfig()
	cfg.Samples = 40
	d, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	imgPath := filepath.Join(dir, "images.idx3-ubyte")
	lblPath := filepath.Join(dir, "labels.idx1-ubyte")

	imgFile, err := os.Create(imgPath)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := WriteIDXImages(imgFile, d.X, cfg.Side); err != nil {
		t.Fatalf("WriteIDXImages: %v", err)
	}
	imgFile.Close()

	lblFile, err := os.Create(lblPath)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := WriteIDXLabels(lblFile, d.Labels); err != nil {
		t.Fatalf("WriteIDXLabels: %v", err)
	}
	lblFile.Close()

	loaded, err := LoadMNIST(imgPath, lblPath)
	if err != nil {
		t.Fatalf("LoadMNIST: %v", err)
	}
	if loaded.Len() != 40 || loaded.Classes != 10 {
		t.Errorf("loaded Len=%d Classes=%d", loaded.Len(), loaded.Classes)
	}
	for i := range d.Labels {
		if loaded.Labels[i] != d.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, loaded.Labels[i], d.Labels[i])
		}
	}
}

func TestLoadMNISTMissingFiles(t *testing.T) {
	if _, err := LoadMNIST("/nonexistent/img", "/nonexistent/lbl"); err == nil {
		t.Error("missing files must error")
	}
}
