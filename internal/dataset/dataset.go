// Package dataset provides the classification datasets the FEI experiments
// train on: a deterministic synthetic MNIST-like generator (the paper's MNIST
// substitution — see DESIGN.md §2), a parser for the real MNIST IDX file
// format for when the genuine files are available, and the IID / label-skew
// partitioners that split a dataset across edge servers.
package dataset

import (
	"errors"
	"fmt"

	"eefei/internal/mat"
)

// ErrEmpty is returned (wrapped) for operations on empty datasets.
var ErrEmpty = errors.New("dataset: empty dataset")

// Dataset is an in-memory labelled classification dataset. X is n×d
// (one sample per row), Labels holds the class index of each row, and
// Classes the number of distinct classes.
type Dataset struct {
	X       *mat.Dense
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int {
	if d == nil || d.X == nil {
		return 0
	}
	return d.X.Rows()
}

// Dim returns the feature dimension.
func (d *Dataset) Dim() int {
	if d == nil || d.X == nil {
		return 0
	}
	return d.X.Cols()
}

// Validate checks internal consistency: label count matches row count and
// every label is inside [0, Classes).
func (d *Dataset) Validate() error {
	if d.Len() == 0 {
		return ErrEmpty
	}
	if len(d.Labels) != d.X.Rows() {
		return fmt.Errorf("dataset: %d labels for %d rows", len(d.Labels), d.X.Rows())
	}
	if d.Classes <= 0 {
		return fmt.Errorf("dataset: classes = %d", d.Classes)
	}
	for i, y := range d.Labels {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("dataset: label %d at row %d outside [0,%d)", y, i, d.Classes)
		}
	}
	return nil
}

// Subset returns a view-dataset containing the given rows (copied, so the
// subset is independent of the parent).
func (d *Dataset) Subset(rows []int) (*Dataset, error) {
	if d.Len() == 0 {
		return nil, ErrEmpty
	}
	out := &Dataset{
		X:       mat.NewDense(len(rows), d.Dim()),
		Labels:  make([]int, len(rows)),
		Classes: d.Classes,
	}
	for i, r := range rows {
		if r < 0 || r >= d.Len() {
			return nil, fmt.Errorf("dataset: row %d outside [0,%d)", r, d.Len())
		}
		copy(out.X.Row(i), d.X.Row(r))
		out.Labels[i] = d.Labels[r]
	}
	return out, nil
}

// Head returns the first n samples (or all of them when n exceeds Len).
func (d *Dataset) Head(n int) (*Dataset, error) {
	if n > d.Len() {
		n = d.Len()
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return d.Subset(rows)
}

// Shuffle permutes the samples in place using the supplied RNG.
func (d *Dataset) Shuffle(rng *mat.RNG) {
	n := d.Len()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		ri, rj := d.X.Row(i), d.X.Row(j)
		for k := range ri {
			ri[k], rj[k] = rj[k], ri[k]
		}
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	}
}

// ClassCounts returns a histogram of label occurrences.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}
