package dataset

import (
	"errors"
	"testing"

	"eefei/internal/mat"
)

func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	x, err := mat.NewDenseData(4, 2, []float64{
		1, 2,
		3, 4,
		5, 6,
		7, 8,
	})
	if err != nil {
		t.Fatalf("NewDenseData: %v", err)
	}
	return &Dataset{X: x, Labels: []int{0, 1, 0, 1}, Classes: 2}
}

func TestLenDim(t *testing.T) {
	d := tinyDataset(t)
	if d.Len() != 4 || d.Dim() != 2 {
		t.Errorf("Len,Dim = %d,%d, want 4,2", d.Len(), d.Dim())
	}
	var nilDS *Dataset
	if nilDS.Len() != 0 || nilDS.Dim() != 0 {
		t.Error("nil dataset must have Len=Dim=0")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Dataset)
		wantErr bool
	}{
		{"valid", func(*Dataset) {}, false},
		{"label count mismatch", func(d *Dataset) { d.Labels = d.Labels[:2] }, true},
		{"label out of range", func(d *Dataset) { d.Labels[0] = 2 }, true},
		{"negative label", func(d *Dataset) { d.Labels[0] = -1 }, true},
		{"zero classes", func(d *Dataset) { d.Classes = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tinyDataset(t)
			tt.mutate(d)
			if err := d.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	empty := &Dataset{}
	if err := empty.Validate(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Validate = %v, want ErrEmpty", err)
	}
}

func TestSubset(t *testing.T) {
	d := tinyDataset(t)
	sub, err := d.Subset([]int{2, 0})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.Len() != 2 {
		t.Fatalf("subset Len = %d, want 2", sub.Len())
	}
	if sub.X.At(0, 0) != 5 || sub.Labels[0] != 0 {
		t.Errorf("subset row 0 = %v label %d, want [5 6] label 0", sub.X.Row(0), sub.Labels[0])
	}
	if sub.X.At(1, 1) != 2 || sub.Labels[1] != 0 {
		t.Errorf("subset row 1 = %v label %d", sub.X.Row(1), sub.Labels[1])
	}
	// Subset must be independent of the parent.
	sub.X.Set(0, 0, 99)
	if d.X.At(2, 0) != 5 {
		t.Error("Subset must copy data")
	}
	if _, err := d.Subset([]int{4}); err == nil {
		t.Error("out-of-range Subset must error")
	}
}

func TestHead(t *testing.T) {
	d := tinyDataset(t)
	h, err := d.Head(2)
	if err != nil {
		t.Fatalf("Head: %v", err)
	}
	if h.Len() != 2 || h.X.At(1, 0) != 3 {
		t.Errorf("Head(2) wrong: len %d, At(1,0)=%v", h.Len(), h.X.At(1, 0))
	}
	over, err := d.Head(10)
	if err != nil {
		t.Fatalf("Head(10): %v", err)
	}
	if over.Len() != 4 {
		t.Errorf("Head(10) len = %d, want 4", over.Len())
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	d := tinyDataset(t)
	// Tag each row's first feature with its original label so pairing can be
	// checked after shuffling.
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, float64(d.Labels[i]))
	}
	d.Shuffle(mat.NewRNG(3))
	for i := 0; i < d.Len(); i++ {
		if int(d.X.At(i, 0)) != d.Labels[i] {
			t.Fatalf("row %d decoupled from its label after shuffle", i)
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := tinyDataset(t)
	b := tinyDataset(t)
	a.Shuffle(mat.NewRNG(5))
	b.Shuffle(mat.NewRNG(5))
	for i := 0; i < a.Len(); i++ {
		if a.Labels[i] != b.Labels[i] || a.X.At(i, 0) != b.X.At(i, 0) {
			t.Fatal("same-seed shuffles must agree")
		}
	}
}

func TestClassCounts(t *testing.T) {
	d := tinyDataset(t)
	counts := d.ClassCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("ClassCounts = %v, want [2 2]", counts)
	}
}
