package dataset

import (
	"math"
	"testing"

	"eefei/internal/mat"
)

func TestSynthesizeShape(t *testing.T) {
	cfg := QuickSyntheticConfig()
	d, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if d.Len() != cfg.Samples {
		t.Errorf("Len = %d, want %d", d.Len(), cfg.Samples)
	}
	if d.Dim() != cfg.Side*cfg.Side {
		t.Errorf("Dim = %d, want %d", d.Dim(), cfg.Side*cfg.Side)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSynthesizePixelRange(t *testing.T) {
	d, err := Synthesize(QuickSyntheticConfig())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for _, v := range d.X.RawData() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := QuickSyntheticConfig()
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !a.X.Equal(b.X, 0) {
		t.Error("same config must produce identical pixels")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same config must produce identical labels")
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	cfg := QuickSyntheticConfig()
	a, _ := Synthesize(cfg)
	cfg.Seed = 2
	b, _ := Synthesize(cfg)
	if a.X.Equal(b.X, 0) {
		t.Error("different seeds must produce different pixels")
	}
}

func TestSynthesizeBalancedClasses(t *testing.T) {
	d, err := Synthesize(QuickSyntheticConfig())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	counts := d.ClassCounts()
	want := d.Len() / d.Classes
	for c, n := range counts {
		if n != want {
			t.Errorf("class %d count = %d, want %d", c, n, want)
		}
	}
}

func TestSynthesizeRejectsBadConfig(t *testing.T) {
	bad := []SyntheticConfig{
		{Samples: 0, Classes: 10, Side: 8},
		{Samples: 10, Classes: 0, Side: 8},
		{Samples: 10, Classes: 10, Side: 0},
	}
	for _, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
}

func TestSynthesizeClassesAreSeparable(t *testing.T) {
	// Nearest-prototype classification on held-out samples should beat 70%:
	// the prototypes plus bounded noise make classes mostly separable, the
	// precondition for the paper's ~92% logistic-regression accuracy.
	cfg := QuickSyntheticConfig()
	cfg.Samples = 1000
	train, test, err := SynthesizePair(cfg, cfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	// Class means from train.
	means := mat.NewDense(cfg.Classes, train.Dim())
	counts := make([]float64, cfg.Classes)
	for i := 0; i < train.Len(); i++ {
		mat.Axpy(means.Row(train.Labels[i]), 1, train.X.Row(i))
		counts[train.Labels[i]]++
	}
	for c := 0; c < cfg.Classes; c++ {
		mat.Scale(means.Row(c), 1/counts[c])
	}
	correct := 0
	diff := make([]float64, train.Dim())
	for i := 0; i < test.Len(); i++ {
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < cfg.Classes; c++ {
			mat.SubVec(diff, test.X.Row(i), means.Row(c))
			if d := mat.Norm2(diff); d < bestDist {
				best, bestDist = c, d
			}
		}
		if best == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.70 {
		t.Errorf("nearest-prototype accuracy = %.3f, want >= 0.70", acc)
	}
}

func TestSynthesizePairSharesPrototypes(t *testing.T) {
	// Train/test class means must be close (same prototypes), while the
	// individual samples differ (independent noise).
	cfg := QuickSyntheticConfig()
	cfg.Samples = 1000
	train, test, err := SynthesizePair(cfg, cfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	if train.X.Equal(test.X, 1e-9) {
		t.Error("train and test must not be identical")
	}
	trainMean := classMean(train, 0)
	testMean := classMean(test, 0)
	mat.SubVec(trainMean, trainMean, testMean)
	if dist := mat.Norm2(trainMean); dist > 0.1*float64(train.Dim()) {
		t.Errorf("class-0 means differ by %v; prototypes not shared?", dist)
	}
}

func TestSynthesizeParallelBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := QuickSyntheticConfig()
	cfg.Samples = 1003 // not a multiple of the chunk size, to cover the tail
	base, err := SynthesizeParallel(cfg, 1)
	if err != nil {
		t.Fatalf("SynthesizeParallel(1): %v", err)
	}
	for _, workers := range []int{2, 3, 8, 0} { // 0 = GOMAXPROCS
		d, err := SynthesizeParallel(cfg, workers)
		if err != nil {
			t.Fatalf("SynthesizeParallel(%d): %v", workers, err)
		}
		if !d.X.Equal(base.X, 0) {
			t.Fatalf("workers=%d pixels differ from workers=1", workers)
		}
		for i := range d.Labels {
			if d.Labels[i] != base.Labels[i] {
				t.Fatalf("workers=%d labels differ from workers=1", workers)
			}
		}
	}
}

func TestSynthesizeParallelBalancedAndValid(t *testing.T) {
	cfg := QuickSyntheticConfig()
	d, err := SynthesizeParallel(cfg, 4)
	if err != nil {
		t.Fatalf("SynthesizeParallel: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	want := d.Len() / d.Classes
	for c, n := range d.ClassCounts() {
		if n != want {
			t.Errorf("class %d count = %d, want %d", c, n, want)
		}
	}
	for _, v := range d.X.RawData() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

func TestSynthesizePairParallelSharesPrototypes(t *testing.T) {
	cfg := QuickSyntheticConfig()
	cfg.Samples = 1000
	train, test, err := SynthesizePairParallel(cfg, cfg, 4)
	if err != nil {
		t.Fatalf("SynthesizePairParallel: %v", err)
	}
	if train.X.Equal(test.X, 1e-9) {
		t.Error("train and test must not be identical")
	}
	trainMean := classMean(train, 0)
	testMean := classMean(test, 0)
	mat.SubVec(trainMean, trainMean, testMean)
	if dist := mat.Norm2(trainMean); dist > 0.1*float64(train.Dim()) {
		t.Errorf("class-0 means differ by %v; prototypes not shared?", dist)
	}
}

func TestSynthesizePairParallelDeterministic(t *testing.T) {
	cfg := QuickSyntheticConfig()
	a1, b1, err := SynthesizePairParallel(cfg, cfg, 2)
	if err != nil {
		t.Fatalf("SynthesizePairParallel: %v", err)
	}
	a2, b2, err := SynthesizePairParallel(cfg, cfg, 7)
	if err != nil {
		t.Fatalf("SynthesizePairParallel: %v", err)
	}
	if !a1.X.Equal(a2.X, 0) || !b1.X.Equal(b2.X, 0) {
		t.Error("pair synthesis must be bit-identical across worker counts")
	}
}

func TestSynthesizeParallelRejectsBadConfig(t *testing.T) {
	bad := []SyntheticConfig{
		{Samples: 0, Classes: 10, Side: 8},
		{Samples: 10, Classes: 0, Side: 8},
		{Samples: 10, Classes: 10, Side: 0},
	}
	for _, cfg := range bad {
		if _, err := SynthesizeParallel(cfg, 2); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
		if _, _, err := SynthesizePairParallel(cfg, cfg, 2); err == nil {
			t.Errorf("pair config %+v must be rejected", cfg)
		}
	}
}

func classMean(d *Dataset, class int) []float64 {
	mean := make([]float64, d.Dim())
	var n float64
	for i := 0; i < d.Len(); i++ {
		if d.Labels[i] != class {
			continue
		}
		mat.Axpy(mean, 1, d.X.Row(i))
		n++
	}
	if n > 0 {
		mat.Scale(mean, 1/n)
	}
	return mean
}
