package dataset

import (
	"fmt"
	"sort"

	"eefei/internal/mat"
)

// A Partitioner splits a dataset across edge servers. The paper uniformly
// allocates 60 000 samples to 20 servers (3 000 each, IID); the label-skew
// partitioner is the standard non-IID extension we use for the ablation in
// EXPERIMENTS.md.
type Partitioner interface {
	// Partition returns one shard per server. Every sample is assigned to
	// exactly one shard.
	Partition(d *Dataset, servers int) ([]*Dataset, error)
}

// IIDPartitioner deals samples round-robin after a seeded shuffle, producing
// shards with near-identical class distributions (the paper's setting).
type IIDPartitioner struct {
	// Seed drives the shuffle; identical seeds give identical shards.
	Seed uint64
}

var _ Partitioner = IIDPartitioner{}

// Partition implements Partitioner.
func (p IIDPartitioner) Partition(d *Dataset, servers int) ([]*Dataset, error) {
	if err := checkPartitionArgs(d, servers); err != nil {
		return nil, err
	}
	perm := mat.NewRNG(p.Seed).Perm(d.Len())
	buckets := make([][]int, servers)
	for i, row := range perm {
		s := i % servers
		buckets[s] = append(buckets[s], row)
	}
	return subsets(d, buckets)
}

// LabelSkewPartitioner gives each server a biased class mix: a fraction
// Alpha of each shard comes from the server's "home" classes (assigned
// round-robin) and the remainder is drawn IID. Alpha=0 degenerates to IID;
// Alpha=1 is pathological single-class shards.
type LabelSkewPartitioner struct {
	// Alpha in [0,1] is the fraction of each shard drawn from home classes.
	Alpha float64
	// Seed drives all random choices.
	Seed uint64
}

var _ Partitioner = LabelSkewPartitioner{}

// Partition implements Partitioner.
func (p LabelSkewPartitioner) Partition(d *Dataset, servers int) ([]*Dataset, error) {
	if err := checkPartitionArgs(d, servers); err != nil {
		return nil, err
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return nil, fmt.Errorf("dataset: label-skew alpha %v outside [0,1]", p.Alpha)
	}
	rng := mat.NewRNG(p.Seed)

	// Index rows by class, shuffled within class.
	byClass := make([][]int, d.Classes)
	for row, y := range d.Labels {
		byClass[y] = append(byClass[y], row)
	}
	for _, rows := range byClass {
		shuffleInts(rng, rows)
	}

	shardSize := d.Len() / servers
	homePerShard := int(p.Alpha * float64(shardSize))
	buckets := make([][]int, servers)

	// Draw home-class samples: server s prefers class s mod Classes, walking
	// forward when its home class runs dry.
	cursor := make([]int, d.Classes)
	for s := 0; s < servers; s++ {
		home := s % d.Classes
		for len(buckets[s]) < homePerShard {
			c, ok := nextNonEmptyClass(byClass, cursor, home)
			if !ok {
				break
			}
			buckets[s] = append(buckets[s], byClass[c][cursor[c]])
			cursor[c]++
		}
	}

	// Pool the remaining rows and deal them round-robin.
	var rest []int
	for c, rows := range byClass {
		rest = append(rest, rows[cursor[c]:]...)
	}
	shuffleInts(rng, rest)
	for i, row := range rest {
		s := i % servers
		buckets[s] = append(buckets[s], row)
	}
	return subsets(d, buckets)
}

// nextNonEmptyClass finds the first class with rows remaining, starting from
// the preferred class and wrapping.
func nextNonEmptyClass(byClass [][]int, cursor []int, preferred int) (int, bool) {
	n := len(byClass)
	for off := 0; off < n; off++ {
		c := (preferred + off) % n
		if cursor[c] < len(byClass[c]) {
			return c, true
		}
	}
	return 0, false
}

// EqualShards splits d into exactly servers shards of size Len/servers,
// truncating any remainder, matching the paper's "3000 samples per edge
// server" allocation.
func EqualShards(d *Dataset, servers int, seed uint64) ([]*Dataset, error) {
	if err := checkPartitionArgs(d, servers); err != nil {
		return nil, err
	}
	per := d.Len() / servers
	if per == 0 {
		return nil, fmt.Errorf("dataset: %d samples cannot fill %d shards", d.Len(), servers)
	}
	perm := mat.NewRNG(seed).Perm(d.Len())
	buckets := make([][]int, servers)
	for s := 0; s < servers; s++ {
		b := make([]int, per)
		copy(b, perm[s*per:(s+1)*per])
		sort.Ints(b) // deterministic row order inside a shard
		buckets[s] = b
	}
	return subsets(d, buckets)
}

func checkPartitionArgs(d *Dataset, servers int) error {
	if d.Len() == 0 {
		return ErrEmpty
	}
	if servers <= 0 {
		return fmt.Errorf("dataset: %d servers", servers)
	}
	if servers > d.Len() {
		return fmt.Errorf("dataset: %d servers for %d samples", servers, d.Len())
	}
	return nil
}

func subsets(d *Dataset, buckets [][]int) ([]*Dataset, error) {
	out := make([]*Dataset, len(buckets))
	for s, rows := range buckets {
		shard, err := d.Subset(rows)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		out[s] = shard
	}
	return out, nil
}

func shuffleInts(rng *mat.RNG, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
