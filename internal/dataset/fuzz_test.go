package dataset

import (
	"bytes"
	"testing"
)

// Fuzzers for the IDX parsers: arbitrary files must never panic or allocate
// unboundedly.

func FuzzReadIDXImages(f *testing.F) {
	cfg := QuickSyntheticConfig()
	cfg.Samples = 3
	cfg.Side = 4
	d, err := Synthesize(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := WriteIDXImages(&good, d.X, cfg.Side); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0x08, 3, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 42})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadIDXImages(bytes.NewReader(data))
		if err == nil {
			if m.Rows() < 0 || m.Cols() < 0 {
				t.Fatal("accepted images with negative dims")
			}
			for _, v := range m.RawData() {
				if v < 0 || v > 1 {
					t.Fatalf("pixel %v outside [0,1]", v)
				}
			}
		}
	})
}

func FuzzReadIDXLabels(f *testing.F) {
	var good bytes.Buffer
	if err := WriteIDXLabels(&good, []int{0, 1, 9}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0x08, 1, 0, 0, 0, 2, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		labels, err := ReadIDXLabels(bytes.NewReader(data))
		if err == nil {
			for _, y := range labels {
				if y < 0 || y > 255 {
					t.Fatalf("label %d outside byte range", y)
				}
			}
		}
	})
}
