package dataset

import (
	"errors"
	"testing"
	"testing/quick"
)

func syntheticForPartition(t *testing.T, samples int) *Dataset {
	t.Helper()
	cfg := QuickSyntheticConfig()
	cfg.Samples = samples
	cfg.Side = 4 // tiny features; partition tests don't train
	d, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return d
}

func TestIIDPartitionCoversAllSamples(t *testing.T) {
	d := syntheticForPartition(t, 100)
	shards, err := IIDPartitioner{Seed: 1}.Partition(d, 7)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != d.Len() {
		t.Errorf("shards hold %d samples, want %d", total, d.Len())
	}
}

func TestIIDPartitionBalanced(t *testing.T) {
	d := syntheticForPartition(t, 100)
	shards, err := IIDPartitioner{Seed: 1}.Partition(d, 10)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	for i, s := range shards {
		if s.Len() != 10 {
			t.Errorf("shard %d size = %d, want 10", i, s.Len())
		}
	}
}

func TestIIDPartitionNearUniformClasses(t *testing.T) {
	d := syntheticForPartition(t, 1000)
	shards, err := IIDPartitioner{Seed: 2}.Partition(d, 5)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	for i, s := range shards {
		counts := s.ClassCounts()
		want := s.Len() / d.Classes
		for c, n := range counts {
			if n < want/2 || n > want*2 {
				t.Errorf("shard %d class %d count = %d, want ≈%d", i, c, n, want)
			}
		}
	}
}

func TestIIDPartitionDeterministic(t *testing.T) {
	d := syntheticForPartition(t, 60)
	a, _ := IIDPartitioner{Seed: 9}.Partition(d, 4)
	b, _ := IIDPartitioner{Seed: 9}.Partition(d, 4)
	for s := range a {
		if a[s].Len() != b[s].Len() {
			t.Fatal("same seed must give same shard sizes")
		}
		for i := range a[s].Labels {
			if a[s].Labels[i] != b[s].Labels[i] {
				t.Fatal("same seed must give identical shards")
			}
		}
	}
}

func TestLabelSkewAlphaZeroIsLegal(t *testing.T) {
	d := syntheticForPartition(t, 200)
	shards, err := LabelSkewPartitioner{Alpha: 0, Seed: 1}.Partition(d, 4)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != d.Len() {
		t.Errorf("alpha=0 shards hold %d, want %d", total, d.Len())
	}
}

func TestLabelSkewConcentratesHomeClass(t *testing.T) {
	d := syntheticForPartition(t, 1000)
	shards, err := LabelSkewPartitioner{Alpha: 0.8, Seed: 3}.Partition(d, 10)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	for s, shard := range shards {
		home := s % d.Classes
		counts := shard.ClassCounts()
		frac := float64(counts[home]) / float64(shard.Len())
		if frac < 0.5 {
			t.Errorf("shard %d home-class fraction = %.2f, want >= 0.5", s, frac)
		}
	}
}

func TestLabelSkewRejectsBadAlpha(t *testing.T) {
	d := syntheticForPartition(t, 100)
	for _, alpha := range []float64{-0.1, 1.1} {
		if _, err := (LabelSkewPartitioner{Alpha: alpha}).Partition(d, 2); err == nil {
			t.Errorf("alpha %v must be rejected", alpha)
		}
	}
}

func TestLabelSkewCoversAllSamples(t *testing.T) {
	d := syntheticForPartition(t, 500)
	shards, err := LabelSkewPartitioner{Alpha: 0.5, Seed: 4}.Partition(d, 7)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != d.Len() {
		t.Errorf("shards hold %d samples, want %d", total, d.Len())
	}
}

func TestEqualShards(t *testing.T) {
	d := syntheticForPartition(t, 103)
	shards, err := EqualShards(d, 10, 5)
	if err != nil {
		t.Fatalf("EqualShards: %v", err)
	}
	if len(shards) != 10 {
		t.Fatalf("got %d shards, want 10", len(shards))
	}
	for i, s := range shards {
		if s.Len() != 10 {
			t.Errorf("shard %d size = %d, want 10 (remainder truncated)", i, s.Len())
		}
	}
}

func TestEqualShardsDisjoint(t *testing.T) {
	d := syntheticForPartition(t, 100)
	// Tag each row with its index so disjointness is checkable.
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, float64(i))
	}
	shards, err := EqualShards(d, 4, 6)
	if err != nil {
		t.Fatalf("EqualShards: %v", err)
	}
	seen := make(map[int]bool)
	for _, s := range shards {
		for i := 0; i < s.Len(); i++ {
			id := int(s.X.At(i, 0))
			if seen[id] {
				t.Fatalf("sample %d appears in two shards", id)
			}
			seen[id] = true
		}
	}
}

func TestPartitionArgErrors(t *testing.T) {
	d := syntheticForPartition(t, 10)
	if _, err := (IIDPartitioner{}).Partition(&Dataset{}, 2); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty dataset = %v, want ErrEmpty", err)
	}
	if _, err := (IIDPartitioner{}).Partition(d, 0); err == nil {
		t.Error("0 servers must error")
	}
	if _, err := (IIDPartitioner{}).Partition(d, 11); err == nil {
		t.Error("more servers than samples must error")
	}
	if _, err := EqualShards(d, 11, 0); err == nil {
		t.Error("EqualShards with more servers than samples must error")
	}
}

// Property: IID partitioning never loses or duplicates samples for any
// server count that divides into the dataset.
func TestIIDPartitionConservationProperty(t *testing.T) {
	cfg := QuickSyntheticConfig()
	cfg.Samples = 120
	cfg.Side = 3
	d, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, float64(i))
	}
	f := func(seed uint64, serversRaw uint8) bool {
		servers := 1 + int(serversRaw%20)
		shards, err := IIDPartitioner{Seed: seed}.Partition(d, servers)
		if err != nil {
			return false
		}
		seen := make(map[int]int)
		for _, s := range shards {
			for i := 0; i < s.Len(); i++ {
				seen[int(s.X.At(i, 0))]++
			}
		}
		if len(seen) != d.Len() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
