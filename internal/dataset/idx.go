package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"eefei/internal/mat"
)

// The IDX format is the container MNIST ships in: a big-endian magic word
// (0x00 0x00 <dtype> <ndim>) followed by ndim uint32 dimension sizes and the
// raw payload. We support the unsigned-byte dtype (0x08), which is what the
// canonical train-images/train-labels files use.

// ErrIDXFormat is returned (wrapped) for malformed IDX streams.
var ErrIDXFormat = errors.New("dataset: malformed IDX stream")

const (
	idxTypeUint8 = 0x08
	// maxIDXElements caps allocations so a corrupt header cannot OOM us.
	maxIDXElements = 1 << 28
)

// ReadIDXImages parses an IDX 3-D unsigned-byte tensor (images × rows × cols)
// and returns the images as an n×(rows·cols) matrix scaled to [0, 1].
func ReadIDXImages(r io.Reader) (*mat.Dense, error) {
	br := bufio.NewReader(r)
	dims, err := readIDXHeader(br, 3)
	if err != nil {
		return nil, fmt.Errorf("images header: %w", err)
	}
	n, rows, cols := dims[0], dims[1], dims[2]
	// Bound each dimension before multiplying so the product cannot
	// overflow int and sneak past the cap.
	if n > maxIDXElements || rows > maxIDXElements || cols > maxIDXElements ||
		(rows != 0 && cols != 0 && n > maxIDXElements/(rows*cols)) {
		return nil, fmt.Errorf("images %dx%dx%d exceed size cap: %w", n, rows, cols, ErrIDXFormat)
	}
	raw := make([]byte, n*rows*cols)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("images payload: %w", err)
	}
	out := mat.NewDense(n, rows*cols)
	data := out.RawData()
	for i, b := range raw {
		data[i] = float64(b) / 255
	}
	return out, nil
}

// ReadIDXLabels parses an IDX 1-D unsigned-byte tensor of class labels.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	br := bufio.NewReader(r)
	dims, err := readIDXHeader(br, 1)
	if err != nil {
		return nil, fmt.Errorf("labels header: %w", err)
	}
	n := dims[0]
	if n > maxIDXElements {
		return nil, fmt.Errorf("labels count %d exceeds size cap: %w", n, ErrIDXFormat)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("labels payload: %w", err)
	}
	labels := make([]int, n)
	for i, b := range raw {
		labels[i] = int(b)
	}
	return labels, nil
}

// LoadMNIST reads a real MNIST dataset from the canonical pair of IDX files.
// Classes is fixed at 10.
func LoadMNIST(imagesPath, labelsPath string) (*Dataset, error) {
	imgFile, err := os.Open(imagesPath)
	if err != nil {
		return nil, fmt.Errorf("open images: %w", err)
	}
	defer imgFile.Close()
	x, err := ReadIDXImages(imgFile)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", imagesPath, err)
	}

	lblFile, err := os.Open(labelsPath)
	if err != nil {
		return nil, fmt.Errorf("open labels: %w", err)
	}
	defer lblFile.Close()
	labels, err := ReadIDXLabels(lblFile)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", labelsPath, err)
	}

	if len(labels) != x.Rows() {
		return nil, fmt.Errorf("%d labels for %d images: %w", len(labels), x.Rows(), ErrIDXFormat)
	}
	d := &Dataset{X: x, Labels: labels, Classes: 10}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("validate MNIST: %w", err)
	}
	return d, nil
}

// WriteIDXImages serializes images (n×(side²), values in [0,1]) as an IDX
// 3-D unsigned-byte tensor. It is the inverse of ReadIDXImages and lets the
// synthetic generator emit files any MNIST loader can read.
func WriteIDXImages(w io.Writer, images *mat.Dense, side int) error {
	if images.Cols() != side*side {
		return fmt.Errorf("images have %d features, want %d: %w", images.Cols(), side*side, ErrIDXFormat)
	}
	bw := bufio.NewWriter(w)
	header := []uint32{uint32(images.Rows()), uint32(side), uint32(side)}
	if err := writeIDXHeader(bw, 3, header); err != nil {
		return err
	}
	data := images.RawData()
	for _, v := range data {
		if err := bw.WriteByte(byte(mat.Clamp(v, 0, 1)*255 + 0.5)); err != nil {
			return fmt.Errorf("write pixel: %w", err)
		}
	}
	return bw.Flush()
}

// WriteIDXLabels serializes labels as an IDX 1-D unsigned-byte tensor.
func WriteIDXLabels(w io.Writer, labels []int) error {
	bw := bufio.NewWriter(w)
	if err := writeIDXHeader(bw, 1, []uint32{uint32(len(labels))}); err != nil {
		return err
	}
	for i, y := range labels {
		if y < 0 || y > 255 {
			return fmt.Errorf("label %d at %d outside byte range: %w", y, i, ErrIDXFormat)
		}
		if err := bw.WriteByte(byte(y)); err != nil {
			return fmt.Errorf("write label: %w", err)
		}
	}
	return bw.Flush()
}

func readIDXHeader(r io.Reader, wantDims int) ([]int, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, fmt.Errorf("magic %x: %w", magic, ErrIDXFormat)
	}
	if magic[2] != idxTypeUint8 {
		return nil, fmt.Errorf("dtype 0x%02x unsupported: %w", magic[2], ErrIDXFormat)
	}
	if int(magic[3]) != wantDims {
		return nil, fmt.Errorf("ndim %d, want %d: %w", magic[3], wantDims, ErrIDXFormat)
	}
	dims := make([]int, wantDims)
	for i := range dims {
		var d uint32
		if err := binary.Read(r, binary.BigEndian, &d); err != nil {
			return nil, fmt.Errorf("dim %d: %w", i, err)
		}
		dims[i] = int(d)
	}
	return dims, nil
}

func writeIDXHeader(w io.Writer, ndim int, dims []uint32) error {
	if _, err := w.Write([]byte{0, 0, idxTypeUint8, byte(ndim)}); err != nil {
		return fmt.Errorf("write magic: %w", err)
	}
	for _, d := range dims {
		if err := binary.Write(w, binary.BigEndian, d); err != nil {
			return fmt.Errorf("write dim: %w", err)
		}
	}
	return nil
}
