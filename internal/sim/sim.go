// Package sim is the digital twin of the paper's hardware prototype: it
// couples the FedAvg engine (internal/fl) with the calibrated device energy
// model (internal/energy) and the IoT uplink model (internal/iot) under a
// virtual clock, producing the same artifacts the authors extract from their
// 20-Raspberry-Pi testbed — per-phase energy ledgers, wall-clock time, and
// 1 kHz power traces of individual edge servers (Fig. 3).
package sim

import (
	"errors"
	"fmt"
	"time"

	"eefei/internal/dataset"
	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/iot"
)

// ErrSim is returned (wrapped) for invalid simulator configurations.
var ErrSim = errors.New("sim: invalid config")

// Config assembles a full FEI system.
type Config struct {
	// Servers is N, the number of edge servers.
	Servers int
	// FL carries the federated hyper-parameters (K, E, learning rate…).
	FL fl.Config
	// Device is the edge-server power/time model.
	Device energy.DeviceModel
	// Uplink is the IoT fleet configuration feeding each edge server.
	Uplink iot.UplinkConfig
	// Preloaded mirrors the prototype: datasets sit on the servers already
	// and the per-round data-collection energy is zero. When false, every
	// round each selected server first collects its n_k samples from its
	// IoT fleet, paying ρ·n_k (Eq. 4).
	Preloaded bool
	// Seed drives the IoT collection randomness.
	Seed uint64
	// Observer, when non-nil, is attached to the FL engine as its
	// per-round observability sink (phase timings, worker claims). It is
	// strictly passive: same-seed runs with and without one are
	// bit-identical.
	Observer fl.RoundObserver
}

// DefaultConfig mirrors the paper's prototype: 20 servers, Pi-4B device
// model, NB-IoT uplink, preloaded data.
func DefaultConfig() Config {
	return Config{
		Servers:   20,
		FL:        fl.DefaultConfig(),
		Device:    energy.DefaultPiDeviceModel(),
		Uplink:    iot.DefaultNBIoTConfig(),
		Preloaded: true,
		Seed:      1,
	}
}

// RoundEnergy is the energy/time record of one global round.
type RoundEnergy struct {
	// Round is the zero-based round index.
	Round int
	// Joules is the total energy all selected servers spent this round,
	// including IoT collection when data is not preloaded.
	Joules float64
	// CollectionJoules is the IoT data-collection part of Joules.
	CollectionJoules float64
	// Duration is the wall-clock length of the round (servers run in
	// lockstep, so it equals the per-server round duration).
	Duration time.Duration
}

// Result is a completed simulated training run.
type Result struct {
	// History holds the FL round records (loss, accuracy, selection).
	History []fl.RoundRecord
	// Rounds holds the per-round energy records, parallel to History.
	Rounds []RoundEnergy
	// Ledger aggregates energy by phase across the whole run. IoT
	// collection energy is tracked separately in CollectionJoules.
	Ledger *energy.Ledger
	// CollectionJoules is the total IoT data-collection energy.
	CollectionJoules float64
	// WallClock is the total virtual time elapsed.
	WallClock time.Duration
	// FinalAccuracy is the last round's test accuracy (NaN without a test
	// set).
	FinalAccuracy float64
	// FinalLoss is the last round's global training loss.
	FinalLoss float64
}

// TotalJoules returns ledger energy plus IoT collection energy.
func (r *Result) TotalJoules() float64 {
	return r.Ledger.Total() + r.CollectionJoules
}

// System is a runnable FEI simulation.
type System struct {
	cfg     Config
	engine  *fl.Engine
	fleets  []*iot.Fleet
	samples []int // per-server shard sizes
}

// New builds a system over pre-partitioned shards (one per edge server) and
// an optional test set.
func New(cfg Config, shards []*dataset.Dataset, test *dataset.Dataset) (*System, error) {
	if cfg.Servers != len(shards) {
		return nil, fmt.Errorf("%d servers for %d shards: %w", cfg.Servers, len(shards), ErrSim)
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, fmt.Errorf("device model: %w", err)
	}
	if err := cfg.Uplink.Validate(); err != nil {
		return nil, fmt.Errorf("uplink: %w", err)
	}
	var opts []fl.Option
	if test != nil {
		opts = append(opts, fl.WithTestSet(test))
	}
	if cfg.Observer != nil {
		opts = append(opts, fl.WithRoundObserver(cfg.Observer))
	}
	engine, err := fl.NewEngine(cfg.FL, shards, opts...)
	if err != nil {
		return nil, fmt.Errorf("fl engine: %w", err)
	}
	fleets := make([]*iot.Fleet, len(shards))
	samples := make([]int, len(shards))
	for i, s := range shards {
		fleet, err := iot.NewFleet(cfg.Uplink, 1+s.Len()/10, cfg.Seed+uint64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("fleet %d: %w", i, err)
		}
		fleets[i] = fleet
		samples[i] = s.Len()
	}
	return &System{cfg: cfg, engine: engine, fleets: fleets, samples: samples}, nil
}

// Engine exposes the underlying FL engine (read-only use intended).
func (s *System) Engine() *fl.Engine { return s.engine }

// Run executes federated rounds until stop fires, accounting energy along
// the way.
func (s *System) Run(stop fl.StopCondition) (*Result, error) {
	if stop == nil {
		return nil, fmt.Errorf("nil stop condition: %w", ErrSim)
	}
	res := &Result{Ledger: energy.NewLedger()}
	for !stop(s.engine.History()) {
		rec, err := s.engine.Round()
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", len(res.History), err)
		}
		re, err := s.accountRound(rec, res.Ledger)
		if err != nil {
			return nil, err
		}
		res.History = append(res.History, rec)
		res.Rounds = append(res.Rounds, re)
		res.CollectionJoules += re.CollectionJoules
		res.WallClock += re.Duration
	}
	if n := len(res.History); n > 0 {
		res.FinalAccuracy = res.History[n-1].TestAccuracy
		res.FinalLoss = res.History[n-1].TrainLoss
	}
	return res, nil
}

// accountRound posts one FL round's energy to the ledger and returns the
// round record.
func (s *System) accountRound(rec fl.RoundRecord, ledger *energy.Ledger) (RoundEnergy, error) {
	dm := s.cfg.Device
	e := s.cfg.FL.LocalEpochs
	re := RoundEnergy{Round: rec.Round}
	var maxDur time.Duration
	for _, server := range rec.Selected {
		n := s.samples[server]
		if !s.cfg.Preloaded {
			j, err := s.fleets[server].Collect(n)
			if err != nil {
				return RoundEnergy{}, fmt.Errorf("server %d collect: %w", server, err)
			}
			re.CollectionJoules += j
		}
		ledger.Add(energy.PhaseWaiting, dm.WaitingEnergy())
		ledger.Add(energy.PhaseDownload, dm.DownloadEnergy())
		ledger.Add(energy.PhaseTrain, dm.TrainEnergy(e, n))
		ledger.Add(energy.PhaseUpload, dm.UploadEnergy())
		re.Joules += dm.RoundEnergy(e, n)
		if d := dm.Time.RoundDuration(e, n); d > maxDur {
			maxDur = d
		}
	}
	re.Joules += re.CollectionJoules
	re.Duration = maxDur
	ledger.AddRound()
	return re, nil
}

// TraceServer reconstructs the 1 kHz power trace one edge server would have
// produced over the given rounds of a completed run (Fig. 3): four-phase
// activity in rounds where it was selected, idle waiting otherwise.
// history must come from this system's run; rounds selects how many leading
// rounds to render.
func (s *System) TraceServer(history []fl.RoundRecord, server, rounds int, meterSeed uint64) (*energy.Trace, error) {
	if server < 0 || server >= s.cfg.Servers {
		return nil, fmt.Errorf("server %d of %d: %w", server, s.cfg.Servers, ErrSim)
	}
	if rounds > len(history) {
		rounds = len(history)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("no rounds to trace: %w", ErrSim)
	}
	tm := s.cfg.Device.Time
	e := s.cfg.FL.LocalEpochs
	n := s.samples[server]
	roundDur := tm.RoundDuration(e, n)

	var schedule []energy.Interval
	var cursor time.Duration
	for r := 0; r < rounds; r++ {
		if containsInt(history[r].Selected, server) {
			for _, p := range energy.Phases {
				d := tm.PhaseDuration(p, e, n)
				schedule = append(schedule, energy.Interval{Phase: p, Start: cursor, End: cursor + d})
				cursor += d
			}
		} else {
			schedule = append(schedule, energy.Interval{
				Phase: energy.PhaseWaiting, Start: cursor, End: cursor + roundDur,
			})
			cursor += roundDur
		}
	}
	meter, err := energy.NewMeter(s.cfg.Device.Power, 1000, meterSeed)
	if err != nil {
		return nil, fmt.Errorf("meter: %w", err)
	}
	trace, err := meter.Record(schedule)
	if err != nil {
		return nil, fmt.Errorf("trace server %d: %w", server, err)
	}
	return trace, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// AnalyticRoundJoules returns the deterministic per-round energy of one
// selected server under this config — the quantity Eq. (12)'s B0·E + B1
// approximates (plus the waiting/download overheads the paper folds into
// its baseline).
func (s *System) AnalyticRoundJoules() float64 {
	n := 0
	if len(s.samples) > 0 {
		n = s.samples[0]
	}
	j := s.cfg.Device.RoundEnergy(s.cfg.FL.LocalEpochs, n)
	if !s.cfg.Preloaded {
		j += s.cfg.Uplink.CollectionEnergy(n)
	}
	return j
}
