package sim

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/energy"
)

func TestNewDeviceFleetHomogeneous(t *testing.T) {
	nominal := energy.DefaultPiDeviceModel()
	fleet, err := NewDeviceFleet(nominal, 5, Heterogeneity{})
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	if fleet.Size() != 5 {
		t.Fatalf("size = %d", fleet.Size())
	}
	for i := 0; i < 5; i++ {
		dm := fleet.Device(i)
		if dm.Power.Train != nominal.Power.Train {
			t.Errorf("device %d power differs with zero spread", i)
		}
		if dm.Time.TrainPerSample != nominal.Time.TrainPerSample {
			t.Errorf("device %d speed differs with zero spread", i)
		}
	}
}

func TestNewDeviceFleetSpread(t *testing.T) {
	nominal := energy.DefaultPiDeviceModel()
	fleet, err := NewDeviceFleet(nominal, 50, Heterogeneity{SpeedSpread: 0.2, PowerSpread: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	varied := false
	for i := 0; i < fleet.Size(); i++ {
		dm := fleet.Device(i)
		ratio := float64(dm.Time.TrainPerSample) / float64(nominal.Time.TrainPerSample)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("device %d speed factor %v outside clamp [0.5,2]", i, ratio)
		}
		if ratio != 1 {
			varied = true
		}
		if err := dm.Validate(); err != nil {
			t.Errorf("device %d invalid: %v", i, err)
		}
	}
	if !varied {
		t.Error("nonzero spread produced an identical fleet")
	}
}

func TestNewDeviceFleetDeterministic(t *testing.T) {
	nominal := energy.DefaultPiDeviceModel()
	h := Heterogeneity{SpeedSpread: 0.3, Seed: 9}
	a, err := NewDeviceFleet(nominal, 10, h)
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	b, err := NewDeviceFleet(nominal, 10, h)
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	for i := 0; i < 10; i++ {
		if a.Device(i).Time.TrainPerSample != b.Device(i).Time.TrainPerSample {
			t.Fatal("same seed must realize the same fleet")
		}
	}
}

func TestNewDeviceFleetValidation(t *testing.T) {
	nominal := energy.DefaultPiDeviceModel()
	if _, err := NewDeviceFleet(nominal, 0, Heterogeneity{}); !errors.Is(err, ErrSim) {
		t.Errorf("0 devices = %v, want ErrSim", err)
	}
	if _, err := NewDeviceFleet(nominal, 3, Heterogeneity{SpeedSpread: 2}); !errors.Is(err, ErrSim) {
		t.Errorf("spread 2 = %v, want ErrSim", err)
	}
	bad := nominal
	bad.Power.Train = 0
	if _, err := NewDeviceFleet(bad, 3, Heterogeneity{}); err == nil {
		t.Error("invalid nominal model must be rejected")
	}
}

func TestStragglersHomogeneousNoWaste(t *testing.T) {
	fleet, err := NewDeviceFleet(energy.DefaultPiDeviceModel(), 4, Heterogeneity{})
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	samples := []int{100, 100, 100, 100}
	rep, err := fleet.Stragglers([]int{0, 1, 2, 3}, 10, samples)
	if err != nil {
		t.Fatalf("Stragglers: %v", err)
	}
	if rep.IdleWasteJoules != 0 {
		t.Errorf("homogeneous equal shards wasted %v J", rep.IdleWasteJoules)
	}
	if rep.ActiveJoules <= 0 || rep.RoundDuration <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestStragglersHeterogeneousWaste(t *testing.T) {
	fleet, err := NewDeviceFleet(energy.DefaultPiDeviceModel(), 8,
		Heterogeneity{SpeedSpread: 0.4, Seed: 3})
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	samples := make([]int, 8)
	for i := range samples {
		samples[i] = 2000
	}
	rep, err := fleet.Stragglers([]int{0, 1, 2, 3, 4, 5, 6, 7}, 40, samples)
	if err != nil {
		t.Fatalf("Stragglers: %v", err)
	}
	if rep.IdleWasteJoules <= 0 {
		t.Error("heterogeneous fleet must waste idle energy on stragglers")
	}
	// The slowest device defines the round duration.
	var slowest float64
	for i := 0; i < 8; i++ {
		if d := fleet.Device(i).Time.RoundDuration(40, 2000).Seconds(); d > slowest {
			slowest = d
		}
	}
	if math.Abs(rep.RoundDuration.Seconds()-slowest) > 1e-9 {
		t.Errorf("round duration %v != slowest device %v", rep.RoundDuration.Seconds(), slowest)
	}
}

func TestStragglersErrors(t *testing.T) {
	fleet, err := NewDeviceFleet(energy.DefaultPiDeviceModel(), 2, Heterogeneity{})
	if err != nil {
		t.Fatalf("NewDeviceFleet: %v", err)
	}
	if _, err := fleet.Stragglers(nil, 1, nil); !errors.Is(err, ErrSim) {
		t.Errorf("empty selection = %v, want ErrSim", err)
	}
	if _, err := fleet.Stragglers([]int{5}, 1, nil); !errors.Is(err, ErrSim) {
		t.Errorf("out-of-range server = %v, want ErrSim", err)
	}
}

func TestStragglerWasteGrowsWithSpread(t *testing.T) {
	samples := make([]int, 10)
	for i := range samples {
		samples[i] = 2000
	}
	sel := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	waste := func(spread float64) float64 {
		fleet, err := NewDeviceFleet(energy.DefaultPiDeviceModel(), 10,
			Heterogeneity{SpeedSpread: spread, Seed: 5})
		if err != nil {
			t.Fatalf("NewDeviceFleet: %v", err)
		}
		rep, err := fleet.Stragglers(sel, 40, samples)
		if err != nil {
			t.Fatalf("Stragglers: %v", err)
		}
		return rep.IdleWasteJoules
	}
	if w1, w2 := waste(0.1), waste(0.4); w2 <= w1 {
		t.Errorf("waste at spread 0.4 (%v) not above spread 0.1 (%v)", w2, w1)
	}
}
