package sim

import (
	"fmt"
	"time"

	"eefei/internal/energy"
	"eefei/internal/mat"
)

// The paper's prototype is homogeneous (20 identical Pi 4Bs). Real edge
// fleets are not: silicon lottery, thermal throttling and battery state
// spread both speed and power draw. This file extends the simulator with
// per-server heterogeneity so the synchronous-round cost of stragglers —
// every selected server waits for the slowest — can be measured.

// Heterogeneity describes the fleet spread as log-normal-ish multiplicative
// factors around the nominal device model.
type Heterogeneity struct {
	// SpeedSpread is the relative standard deviation of per-server training
	// speed (0 = homogeneous). A server with factor f takes f× the nominal
	// training time.
	SpeedSpread float64
	// PowerSpread is the relative standard deviation of per-server power
	// draw across all phases.
	PowerSpread float64
	// Seed makes the fleet assignment deterministic.
	Seed uint64
}

// Validate checks the spreads.
func (h Heterogeneity) Validate() error {
	if h.SpeedSpread < 0 || h.SpeedSpread > 1 {
		return fmt.Errorf("speed spread %v outside [0,1]: %w", h.SpeedSpread, ErrSim)
	}
	if h.PowerSpread < 0 || h.PowerSpread > 1 {
		return fmt.Errorf("power spread %v outside [0,1]: %w", h.PowerSpread, ErrSim)
	}
	return nil
}

// DeviceFleet holds the per-server device models realized from a nominal
// model plus heterogeneity.
type DeviceFleet struct {
	models []energy.DeviceModel
}

// NewDeviceFleet draws n per-server device models. Factors are clamped to
// [0.5, 2] so no draw is degenerate.
func NewDeviceFleet(nominal energy.DeviceModel, n int, h Heterogeneity) (*DeviceFleet, error) {
	if err := nominal.Validate(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("fleet of %d devices: %w", n, ErrSim)
	}
	rng := mat.NewRNG(h.Seed)
	fleet := &DeviceFleet{models: make([]energy.DeviceModel, n)}
	for i := range fleet.models {
		speed := mat.Clamp(1+rng.NormScaled(0, h.SpeedSpread), 0.5, 2)
		power := mat.Clamp(1+rng.NormScaled(0, h.PowerSpread), 0.5, 2)
		dm := nominal
		dm.Time.TrainPerSample = time.Duration(float64(dm.Time.TrainPerSample) * speed)
		dm.Time.TrainPerEpoch = time.Duration(float64(dm.Time.TrainPerEpoch) * speed)
		dm.Power.Waiting *= power
		dm.Power.Download *= power
		dm.Power.Train *= power
		dm.Power.Upload *= power
		fleet.models[i] = dm
	}
	return fleet, nil
}

// Device returns server i's realized device model.
func (f *DeviceFleet) Device(i int) energy.DeviceModel {
	return f.models[i]
}

// Size returns the fleet size.
func (f *DeviceFleet) Size() int { return len(f.models) }

// StragglerReport quantifies the synchronous-round penalty of a selection:
// the energy all faster servers waste idling while the slowest finishes.
type StragglerReport struct {
	// RoundDuration is the slowest selected server's round time (which is
	// the synchronous round's wall-clock length).
	RoundDuration time.Duration
	// ActiveJoules is the energy the selected servers spend doing work.
	ActiveJoules float64
	// IdleWasteJoules is the extra energy faster servers burn waiting for
	// the straggler at their waiting-phase power.
	IdleWasteJoules float64
}

// Stragglers computes the report for one round: each selected server trains
// E epochs over its sample count; all wait for the slowest.
func (f *DeviceFleet) Stragglers(selected []int, epochs int, samples []int) (StragglerReport, error) {
	if len(selected) == 0 {
		return StragglerReport{}, fmt.Errorf("empty selection: %w", ErrSim)
	}
	var rep StragglerReport
	durs := make([]time.Duration, len(selected))
	for i, s := range selected {
		if s < 0 || s >= len(f.models) {
			return StragglerReport{}, fmt.Errorf("server %d of %d: %w", s, len(f.models), ErrSim)
		}
		n := 0
		if s < len(samples) {
			n = samples[s]
		}
		durs[i] = f.models[s].Time.RoundDuration(epochs, n)
		if durs[i] > rep.RoundDuration {
			rep.RoundDuration = durs[i]
		}
	}
	for i, s := range selected {
		n := 0
		if s < len(samples) {
			n = samples[s]
		}
		rep.ActiveJoules += f.models[s].RoundEnergy(epochs, n)
		idle := rep.RoundDuration - durs[i]
		rep.IdleWasteJoules += f.models[s].Power.Energy(energy.PhaseWaiting, idle)
	}
	return rep, nil
}
