package sim

import (
	"errors"
	"math"
	"testing"

	"eefei/internal/dataset"
	"eefei/internal/energy"
	"eefei/internal/fl"
	"eefei/internal/ml"
)

// quickSystem builds a 10-server system on the reduced synthetic dataset.
func quickSystem(t *testing.T, mutate func(*Config)) (*System, *dataset.Dataset) {
	t.Helper()
	dcfg := dataset.QuickSyntheticConfig()
	dcfg.Samples = 1000
	train, test, err := dataset.SynthesizePair(dcfg, dcfg)
	if err != nil {
		t.Fatalf("SynthesizePair: %v", err)
	}
	shards, err := dataset.IIDPartitioner{Seed: 1}.Partition(train, 10)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Servers = 10
	cfg.FL = fl.Config{
		ClientsPerRound: 4,
		LocalEpochs:     5,
		LearningRate:    0.5,
		Decay:           0.99,
		Activation:      ml.Softmax,
		Seed:            1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := New(cfg, shards, test)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys, test
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := New(cfg, nil, nil); !errors.Is(err, ErrSim) {
		t.Errorf("no shards = %v, want ErrSim", err)
	}
}

func TestRunAccountsEnergyPerRound(t *testing.T) {
	sys, _ := quickSystem(t, nil)
	res, err := sys.Run(fl.MaxRounds(5))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.History) != 5 || len(res.Rounds) != 5 {
		t.Fatalf("history %d, rounds %d, want 5 each", len(res.History), len(res.Rounds))
	}
	// Each round: K=4 servers, 100 samples each, E=5.
	want := 4 * sys.cfg.Device.RoundEnergy(5, 100)
	for i, re := range res.Rounds {
		if math.Abs(re.Joules-want)/want > 1e-9 {
			t.Errorf("round %d joules = %v, want %v", i, re.Joules, want)
		}
		if re.CollectionJoules != 0 {
			t.Errorf("preloaded run has collection energy %v", re.CollectionJoules)
		}
		if re.Duration != sys.cfg.Device.Time.RoundDuration(5, 100) {
			t.Errorf("round %d duration = %v", i, re.Duration)
		}
	}
	if res.Ledger.Rounds() != 5 {
		t.Errorf("ledger rounds = %d, want 5", res.Ledger.Rounds())
	}
	if math.Abs(res.TotalJoules()-5*want)/(5*want) > 1e-9 {
		t.Errorf("total = %v, want %v", res.TotalJoules(), 5*want)
	}
}

func TestLedgerPhaseBreakdown(t *testing.T) {
	sys, _ := quickSystem(t, nil)
	res, err := sys.Run(fl.MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	dm := sys.cfg.Device
	// 3 rounds × 4 servers ×  per-phase energy.
	if got, want := res.Ledger.Phase(energy.PhaseTrain), 12*dm.TrainEnergy(5, 100); math.Abs(got-want) > 1e-9 {
		t.Errorf("train ledger = %v, want %v", got, want)
	}
	if got, want := res.Ledger.Phase(energy.PhaseUpload), 12*dm.UploadEnergy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("upload ledger = %v, want %v", got, want)
	}
}

func TestRunWithIoTCollection(t *testing.T) {
	sysPre, _ := quickSystem(t, nil)
	resPre, err := sysPre.Run(fl.MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sysCollect, _ := quickSystem(t, func(c *Config) { c.Preloaded = false })
	resCollect, err := sysCollect.Run(fl.MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resCollect.CollectionJoules <= 0 {
		t.Fatal("collection energy must be positive when not preloaded")
	}
	// Licensed band: collection energy is deterministic ρ·n per selection.
	want := 3 * 4 * sysCollect.cfg.Uplink.CollectionEnergy(100)
	if math.Abs(resCollect.CollectionJoules-want)/want > 1e-9 {
		t.Errorf("collection = %v, want %v", resCollect.CollectionJoules, want)
	}
	if resCollect.TotalJoules() <= resPre.TotalJoules() {
		t.Error("collecting data must cost more than preloaded")
	}
}

func TestTrainingConvergesInSim(t *testing.T) {
	sys, _ := quickSystem(t, nil)
	res, err := sys.Run(fl.AnyOf(fl.TargetAccuracy(0.85), fl.MaxRounds(60)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FinalAccuracy < 0.8 {
		t.Errorf("final accuracy = %v, want >= 0.8", res.FinalAccuracy)
	}
	if res.FinalLoss >= res.History[0].TrainLoss {
		t.Error("loss must decrease")
	}
	if res.WallClock <= 0 {
		t.Error("virtual wall clock must advance")
	}
}

func TestTraceServerReproducesFig3Pattern(t *testing.T) {
	sys, _ := quickSystem(t, func(c *Config) {
		// Full participation so the traced server is active every round.
		c.FL.ClientsPerRound = 10
	})
	res, err := sys.Run(fl.MaxRounds(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	trace, err := sys.TraceServer(res.History, 0, 2, 9)
	if err != nil {
		t.Fatalf("TraceServer: %v", err)
	}
	seg, err := energy.NewSegmenter(sys.cfg.Device.Power, 10)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	segments, err := seg.Segment(trace)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}
	if got := energy.CountRounds(segments); got != 2 {
		t.Errorf("trace shows %d rounds, want 2 (the Fig. 3 pattern)", got)
	}
	// Mean powers per phase near the paper's levels.
	reports, err := seg.Report(trace)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if len(reports) != 4 {
		t.Errorf("want all 4 phases in an active-server trace, got %d", len(reports))
	}
}

func TestTraceServerIdleWhenNotSelected(t *testing.T) {
	sys, _ := quickSystem(t, func(c *Config) {
		c.FL.ClientsPerRound = 1
	})
	res, err := sys.Run(fl.MaxRounds(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Find a server never selected in the first 4 rounds.
	selected := make(map[int]bool)
	for _, rec := range res.History {
		for _, s := range rec.Selected {
			selected[s] = true
		}
	}
	idle := -1
	for s := 0; s < 10; s++ {
		if !selected[s] {
			idle = s
			break
		}
	}
	if idle == -1 {
		t.Skip("every server was selected; selection randomness left no idle server")
	}
	trace, err := sys.TraceServer(res.History, idle, 4, 3)
	if err != nil {
		t.Fatalf("TraceServer: %v", err)
	}
	if mp := trace.MeanPower(); math.Abs(mp-sys.cfg.Device.Power.Waiting) > 0.05 {
		t.Errorf("idle server mean power = %v, want ≈%v", mp, sys.cfg.Device.Power.Waiting)
	}
}

func TestTraceServerErrors(t *testing.T) {
	sys, _ := quickSystem(t, nil)
	res, err := sys.Run(fl.MaxRounds(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := sys.TraceServer(res.History, 99, 1, 1); !errors.Is(err, ErrSim) {
		t.Errorf("bad server = %v, want ErrSim", err)
	}
	if _, err := sys.TraceServer(nil, 0, 1, 1); !errors.Is(err, ErrSim) {
		t.Errorf("no history = %v, want ErrSim", err)
	}
}

func TestRunNilStop(t *testing.T) {
	sys, _ := quickSystem(t, nil)
	if _, err := sys.Run(nil); !errors.Is(err, ErrSim) {
		t.Errorf("nil stop = %v, want ErrSim", err)
	}
}

func TestAnalyticRoundJoules(t *testing.T) {
	sys, _ := quickSystem(t, nil)
	want := sys.cfg.Device.RoundEnergy(5, 100)
	if got := sys.AnalyticRoundJoules(); math.Abs(got-want) > 1e-12 {
		t.Errorf("AnalyticRoundJoules = %v, want %v", got, want)
	}
	sysC, _ := quickSystem(t, func(c *Config) { c.Preloaded = false })
	wantC := want + sysC.cfg.Uplink.CollectionEnergy(100)
	if got := sysC.AnalyticRoundJoules(); math.Abs(got-wantC) > 1e-9 {
		t.Errorf("with collection = %v, want %v", got, wantC)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		sys, _ := quickSystem(t, nil)
		res, err := sys.Run(fl.MaxRounds(4))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.TotalJoules() + res.FinalLoss
	}
	if run() != run() {
		t.Error("identical configs must produce identical simulations")
	}
}

func TestConfigObserverThreaded(t *testing.T) {
	var rounds []int
	sys, _ := quickSystem(t, func(cfg *Config) {
		cfg.Observer = fl.FuncObserver(func(s fl.RoundStats) {
			rounds = append(rounds, s.Round)
		})
	})
	res, err := sys.Run(fl.MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rounds) != 3 {
		t.Fatalf("observer saw %d rounds, want 3", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Errorf("observer round %d = %d, want %d", i, r, i)
		}
	}

	// A passive observer must not perturb the simulation.
	plain, _ := quickSystem(t, nil)
	base, err := plain.Run(fl.MaxRounds(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FinalLoss != base.FinalLoss || res.TotalJoules() != base.TotalJoules() {
		t.Error("attaching an observer changed the simulation result")
	}
}
