package energy

import (
	"errors"
	"math"
	"testing"
	"time"
)

func recordedRounds(t *testing.T, rounds int, noise float64, seed uint64) (*Trace, TimeModel) {
	t.Helper()
	pm := DefaultPiPowerModel()
	pm.NoiseStdDev = noise
	m, err := NewMeter(pm, 1000, seed)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	tm := DefaultPiTimeModel()
	trace, err := m.Record(RoundSchedule(tm, 40, 2000, rounds))
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	return trace, tm
}

func TestSegmentRecoversSchedule(t *testing.T) {
	trace, tm := recordedRounds(t, 2, 0, 1)
	seg, err := NewSegmenter(DefaultPiPowerModel(), 0)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	segments, err := seg.Segment(trace)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}
	if len(segments) != 8 {
		t.Fatalf("got %d segments, want 8", len(segments))
	}
	for i, s := range segments {
		if s.Phase != Phases[i%4] {
			t.Errorf("segment %d phase = %v, want %v", i, s.Phase, Phases[i%4])
		}
	}
	// Training segment duration must be close to the model's law.
	wantTrain := tm.TrainDuration(40, 2000)
	gotTrain := segments[2].Duration()
	if math.Abs(gotTrain.Seconds()-wantTrain.Seconds()) > 0.01 {
		t.Errorf("train segment = %v, want ≈%v", gotTrain, wantTrain)
	}
}

func TestSegmentTolneratesNoise(t *testing.T) {
	// Realistic meter noise (0.05 W) must not fragment the phases: canonical
	// levels are ≥ 0.4 W apart.
	trace, _ := recordedRounds(t, 2, 0.05, 7)
	seg, err := NewSegmenter(DefaultPiPowerModel(), 10)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	segments, err := seg.Segment(trace)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}
	if len(segments) != 8 {
		t.Errorf("noisy trace fragmented into %d segments, want 8", len(segments))
	}
	if CountRounds(segments) != 2 {
		t.Errorf("CountRounds = %d, want 2", CountRounds(segments))
	}
}

func TestReportMatchesPaperPhasePowers(t *testing.T) {
	// The per-phase mean powers recovered from a noisy trace must land on
	// the paper's numbers: 3.6 / 4.286 / 5.553 / 5.015 W.
	trace, _ := recordedRounds(t, 3, 0.05, 21)
	seg, err := NewSegmenter(DefaultPiPowerModel(), 10)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	reports, err := seg.Report(trace)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d phase reports, want 4", len(reports))
	}
	want := map[Phase]float64{
		PhaseWaiting:  3.600,
		PhaseDownload: 4.286,
		PhaseTrain:    5.553,
		PhaseUpload:   5.015,
	}
	for _, r := range reports {
		if math.Abs(r.MeanWatts-want[r.Phase]) > 0.05 {
			t.Errorf("%v mean power = %.3f W, want ≈%.3f W", r.Phase, r.MeanWatts, want[r.Phase])
		}
		if r.Joules <= 0 || r.Duration <= 0 {
			t.Errorf("%v report has non-positive totals: %+v", r.Phase, r)
		}
	}
}

func TestReportEnergySumsToTraceEnergy(t *testing.T) {
	trace, _ := recordedRounds(t, 2, 0, 3)
	seg, err := NewSegmenter(DefaultPiPowerModel(), 0)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	reports, err := seg.Report(trace)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	var sum float64
	for _, r := range reports {
		sum += r.Joules
	}
	if total := trace.Energy(); math.Abs(sum-total)/total > 0.02 {
		t.Errorf("phase energies sum to %v, trace total %v", sum, total)
	}
}

func TestSegmentEmptyTrace(t *testing.T) {
	seg, err := NewSegmenter(DefaultPiPowerModel(), 0)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	if _, err := seg.Segment(&Trace{SampleRate: 1000}); !errors.Is(err, ErrTrace) {
		t.Errorf("empty trace = %v, want ErrTrace", err)
	}
}

func TestNewSegmenterRejectsBadModel(t *testing.T) {
	pm := DefaultPiPowerModel()
	pm.Upload = -1
	if _, err := NewSegmenter(pm, 0); err == nil {
		t.Error("bad power model must be rejected")
	}
}

func TestMinRunAbsorbsGlitches(t *testing.T) {
	// A trace with a single-sample spike inside a long waiting stretch must
	// segment as pure waiting.
	samples := make([]Sample, 100)
	for i := range samples {
		w := 3.6
		if i == 50 {
			w = 5.553 // one glitch sample
		}
		samples[i] = Sample{T: time.Duration(i) * time.Millisecond, Watts: w}
	}
	trace := &Trace{SampleRate: 1000, Samples: samples}
	seg, err := NewSegmenter(DefaultPiPowerModel(), 5)
	if err != nil {
		t.Fatalf("NewSegmenter: %v", err)
	}
	segments, err := seg.Segment(trace)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}
	if len(segments) != 1 || segments[0].Phase != PhaseWaiting {
		t.Errorf("glitch not absorbed: %+v", segments)
	}
}

// TestSegmentEdgeRuns audits minRun absorption at the trace boundaries: a
// leading glitch run (no preceding phase) merges forward into the phase that
// follows, a trailing glitch merges backward into the phase before it, and a
// trace that is one single short run keeps its observed label — edge glitch
// absorption must never drop or mislabel the first or last interval.
func TestSegmentEdgeRuns(t *testing.T) {
	const ms = time.Millisecond
	mk := func(counts []int, phases []Phase) *Trace {
		tr := &Trace{SampleRate: 1000}
		i := 0
		for r, c := range counts {
			for k := 0; k < c; k++ {
				tr.Samples = append(tr.Samples, Sample{
					T: time.Duration(i) * ms, Watts: DefaultPiPowerModel().Power(phases[r]),
				})
				i++
			}
		}
		return tr
	}
	cases := []struct {
		name   string
		counts []int
		phases []Phase
		minRun int
		want   []Phase
	}{
		{
			name:   "leading glitch absorbed forward",
			counts: []int{3, 50}, phases: []Phase{PhaseTrain, PhaseWaiting},
			minRun: 5, want: []Phase{PhaseWaiting},
		},
		{
			name:   "trailing glitch absorbed backward",
			counts: []int{50, 3}, phases: []Phase{PhaseWaiting, PhaseTrain},
			minRun: 5, want: []Phase{PhaseWaiting},
		},
		{
			name:   "interior glitch absorbed backward",
			counts: []int{20, 3, 20}, phases: []Phase{PhaseWaiting, PhaseTrain, PhaseWaiting},
			minRun: 5, want: []Phase{PhaseWaiting},
		},
		{
			name:   "whole trace one short run keeps its label",
			counts: []int{3}, phases: []Phase{PhaseUpload},
			minRun: 5, want: []Phase{PhaseUpload},
		},
		{
			name:   "two short runs merge to the trailing label",
			counts: []int{3, 4}, phases: []Phase{PhaseTrain, PhaseDownload},
			minRun: 5, want: []Phase{PhaseDownload},
		},
		{
			name:   "long runs at both edges untouched",
			counts: []int{20, 20}, phases: []Phase{PhaseDownload, PhaseTrain},
			minRun: 5, want: []Phase{PhaseDownload, PhaseTrain},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := mk(tc.counts, tc.phases)
			seg, err := NewSegmenter(DefaultPiPowerModel(), tc.minRun)
			if err != nil {
				t.Fatalf("NewSegmenter: %v", err)
			}
			segments, err := seg.Segment(trace)
			if err != nil {
				t.Fatalf("Segment: %v", err)
			}
			if len(segments) != len(tc.want) {
				t.Fatalf("got %d segments %+v, want %d", len(segments), segments, len(tc.want))
			}
			for i, s := range segments {
				if s.Phase != tc.want[i] {
					t.Errorf("segment %d phase = %v, want %v", i, s.Phase, tc.want[i])
				}
			}
			// Coverage invariant: segmentation spans exactly the sampled range.
			first, last := trace.Samples[0].T, trace.Samples[len(trace.Samples)-1].T
			if segments[0].Start != first || segments[len(segments)-1].End != last {
				t.Errorf("segments cover [%v, %v], trace spans [%v, %v]",
					segments[0].Start, segments[len(segments)-1].End, first, last)
			}
		})
	}
}

func TestCountRoundsEdgeCases(t *testing.T) {
	if CountRounds(nil) != 0 {
		t.Error("no segments → 0 rounds")
	}
	oneRound := []Interval{
		{Phase: PhaseWaiting}, {Phase: PhaseDownload}, {Phase: PhaseTrain}, {Phase: PhaseUpload},
	}
	if CountRounds(oneRound) != 1 {
		t.Error("trailing upload must count as a round")
	}
}
