package energy

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"eefei/internal/mat"
)

// ErrFit is returned (wrapped) when a coefficient fit cannot be performed.
var ErrFit = errors.New("energy: fit failed")

// TrainObservation is one measured training run: E epochs over n samples
// took Duration and consumed Joules (training phase only). Table I of the
// paper is a set of these with the durations listed and energy implied by
// the 5.553 W training power.
type TrainObservation struct {
	Epochs   int
	Samples  int
	Duration time.Duration
	Joules   float64
}

// FitCoefficients recovers the paper's (c0, c1) from measured training
// energies by least squares on the model e = c0·E·n + c1·E. This is the fit
// that produced c0 = 7.79e-5 and c1 = 3.34e-3 in Section VI-B.
func FitCoefficients(obs []TrainObservation) (c0, c1 float64, err error) {
	if len(obs) < 2 {
		return 0, 0, fmt.Errorf("%d observations, need >= 2: %w", len(obs), ErrFit)
	}
	design := mat.NewDense(len(obs), 2)
	y := make([]float64, len(obs))
	for i, o := range obs {
		if o.Epochs <= 0 {
			return 0, 0, fmt.Errorf("observation %d has E=%d: %w", i, o.Epochs, ErrFit)
		}
		design.Set(i, 0, float64(o.Epochs)*float64(o.Samples))
		design.Set(i, 1, float64(o.Epochs))
		y[i] = o.Joules
	}
	coef, err := mat.QRLeastSquares(design, y)
	if err != nil {
		return 0, 0, fmt.Errorf("coefficient fit: %w", err)
	}
	return coef[0], coef[1], nil
}

// FitDurations recovers the duration law t = a0·E·n + a1·E from measured
// step-(3) durations, exactly the Table-I fit.
func FitDurations(obs []TrainObservation) (perSample, perEpoch time.Duration, err error) {
	if len(obs) < 2 {
		return 0, 0, fmt.Errorf("%d observations, need >= 2: %w", len(obs), ErrFit)
	}
	design := mat.NewDense(len(obs), 2)
	y := make([]float64, len(obs))
	for i, o := range obs {
		if o.Epochs <= 0 {
			return 0, 0, fmt.Errorf("observation %d has E=%d: %w", i, o.Epochs, ErrFit)
		}
		design.Set(i, 0, float64(o.Epochs)*float64(o.Samples))
		design.Set(i, 1, float64(o.Epochs))
		y[i] = o.Duration.Seconds()
	}
	coef, err := mat.QRLeastSquares(design, y)
	if err != nil {
		return 0, 0, fmt.Errorf("duration fit: %w", err)
	}
	return time.Duration(coef[0] * float64(time.Second)),
		time.Duration(coef[1] * float64(time.Second)), nil
}

// MeasureTraining generates a measured-style observation by recording a
// training-phase trace with the given meter and integrating it — the
// software analogue of clamping the POWER-Z onto a Pi and running E epochs.
func MeasureTraining(meter *Meter, tm TimeModel, epochs, samples int) (TrainObservation, error) {
	dur := tm.TrainDuration(epochs, samples)
	trace, err := meter.Record([]Interval{{Phase: PhaseTrain, Start: 0, End: dur}})
	if err != nil {
		return TrainObservation{}, fmt.Errorf("measure training: %w", err)
	}
	return TrainObservation{
		Epochs:   epochs,
		Samples:  samples,
		Duration: dur,
		Joules:   trace.Energy(),
	}, nil
}

// PaperTableI returns the twelve (E, n_k, duration) rows of the paper's
// Table I verbatim, with energy filled in from the 5.553 W training power.
// Experiments use it as ground truth to compare our simulated durations
// against.
func PaperTableI() []TrainObservation {
	const trainWatts = 5.553
	rows := []struct {
		e, n int
		sec  float64
	}{
		{10, 100, 0.0197}, {10, 500, 0.0749}, {10, 1000, 0.1471}, {10, 2000, 0.2855},
		{20, 100, 0.0403}, {20, 500, 0.1508}, {20, 1000, 0.2912}, {20, 2000, 0.5721},
		{40, 100, 0.0799}, {40, 500, 0.3026}, {40, 1000, 0.5554}, {40, 2000, 1.1451},
	}
	out := make([]TrainObservation, len(rows))
	for i, r := range rows {
		d := time.Duration(r.sec * float64(time.Second))
		out[i] = TrainObservation{
			Epochs:   r.e,
			Samples:  r.n,
			Duration: d,
			Joules:   trainWatts * r.sec,
		}
	}
	return out
}

// Ledger accumulates energy by phase across a whole training run; the
// simulator posts every phase of every device round here, giving the
// experiment harness a single place to read totals from.
type Ledger struct {
	joules map[Phase]float64
	// rounds counts completed global coordination rounds.
	rounds int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{joules: make(map[Phase]float64)}
}

// Add posts j joules of phase p.
func (l *Ledger) Add(p Phase, j float64) {
	l.joules[p] += j
}

// AddRound increments the completed-round counter.
func (l *Ledger) AddRound() { l.rounds++ }

// Rounds returns how many rounds have been posted.
func (l *Ledger) Rounds() int { return l.rounds }

// Phase returns the accumulated joules for one phase.
func (l *Ledger) Phase(p Phase) float64 { return l.joules[p] }

// Total returns the accumulated joules across all phases. Phases are summed
// in a fixed order (canonical Phases first, any other keys ascending):
// ranging over the map directly would randomize the float addition order and
// make the last bits of the total differ between identical runs.
func (l *Ledger) Total() float64 {
	var t float64
	for _, p := range Phases {
		t += l.joules[p]
	}
	var extras []Phase
	for p := range l.joules {
		if !slices.Contains(Phases, p) {
			extras = append(extras, p)
		}
	}
	slices.Sort(extras)
	for _, p := range extras {
		t += l.joules[p]
	}
	return t
}

// Merge adds every entry of other into l.
func (l *Ledger) Merge(other *Ledger) {
	for p, j := range other.joules {
		l.joules[p] += j
	}
	l.rounds += other.rounds
}

// String summarizes the ledger.
func (l *Ledger) String() string {
	return fmt.Sprintf("Ledger{rounds=%d wait=%.2fJ down=%.2fJ train=%.2fJ up=%.2fJ total=%.2fJ}",
		l.rounds, l.Phase(PhaseWaiting), l.Phase(PhaseDownload),
		l.Phase(PhaseTrain), l.Phase(PhaseUpload), l.Total())
}
