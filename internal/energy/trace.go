package energy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"eefei/internal/mat"
)

// ErrTrace is returned (wrapped) for malformed traces or sampling configs.
var ErrTrace = errors.New("energy: invalid trace")

// Sample is one meter reading: elapsed time since trace start and
// instantaneous power.
type Sample struct {
	// T is the offset from the start of the trace.
	T time.Duration
	// Watts is the instantaneous power reading.
	Watts float64
}

// Trace is a time-ordered sequence of power samples, the digital twin of a
// POWER-Z KM001C capture.
type Trace struct {
	// SampleRate is the nominal sampling frequency in Hz (paper: 1000).
	SampleRate float64
	// Samples are the readings in ascending time order.
	Samples []Sample
}

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].T
}

// Energy integrates the trace with the trapezoid rule and returns joules.
func (t *Trace) Energy() float64 {
	return t.EnergyBetween(0, t.Duration())
}

// EnergyBetween integrates power over [from, to] with the trapezoid rule.
// Boundaries are clamped to the trace extent.
func (t *Trace) EnergyBetween(from, to time.Duration) float64 {
	if len(t.Samples) < 2 || to <= from {
		return 0
	}
	var joules float64
	for i := 1; i < len(t.Samples); i++ {
		a, b := t.Samples[i-1], t.Samples[i]
		if b.T <= from || a.T >= to {
			continue
		}
		// Clip the segment to [from, to], interpolating power linearly.
		lo, hi := a, b
		if lo.T < from {
			lo = Sample{T: from, Watts: interp(a, b, from)}
		}
		if hi.T > to {
			hi = Sample{T: to, Watts: interp(a, b, to)}
		}
		dt := (hi.T - lo.T).Seconds()
		joules += 0.5 * (lo.Watts + hi.Watts) * dt
	}
	return joules
}

// MeanPower returns the average power over the whole trace in watts. The
// divisor is the span the samples actually cover (last − first): Energy()
// integrates nothing before the first sample, so a trace whose capture
// starts at T0 > 0 — which Validate accepts — must not have its mean diluted
// by the uncovered [0, T0) lead-in (Duration() still reports the last
// sample's offset, matching the schedule-anchored uses elsewhere).
func (t *Trace) MeanPower() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	span := (t.Samples[len(t.Samples)-1].T - t.Samples[0].T).Seconds()
	if span == 0 {
		return 0
	}
	return t.Energy() / span
}

// MeanPowerBetween returns average power over [from, to] in watts.
func (t *Trace) MeanPowerBetween(from, to time.Duration) float64 {
	d := (to - from).Seconds()
	if d <= 0 {
		return 0
	}
	return t.EnergyBetween(from, to) / d
}

func interp(a, b Sample, at time.Duration) float64 {
	span := (b.T - a.T).Seconds()
	if span == 0 {
		return a.Watts
	}
	frac := (at - a.T).Seconds() / span
	return a.Watts + frac*(b.Watts-a.Watts)
}

// Validate checks ordering and sanity of the trace.
func (t *Trace) Validate() error {
	if t.SampleRate <= 0 {
		return fmt.Errorf("sample rate %v: %w", t.SampleRate, ErrTrace)
	}
	for i := 1; i < len(t.Samples); i++ {
		if t.Samples[i].T < t.Samples[i-1].T {
			return fmt.Errorf("samples out of order at %d: %w", i, ErrTrace)
		}
	}
	for i, s := range t.Samples {
		if s.Watts < 0 || math.IsNaN(s.Watts) {
			return fmt.Errorf("bad power %v at sample %d: %w", s.Watts, i, ErrTrace)
		}
	}
	return nil
}

// Interval is a labelled span of a schedule or a segmented trace.
type Interval struct {
	Phase Phase
	Start time.Duration
	End   time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Meter synthesizes traces from phase schedules the way a physical power
// meter would record them: fixed-rate sampling of the scheduled phase power
// plus Gaussian measurement noise.
type Meter struct {
	power PowerModel
	rate  float64
	rng   *mat.RNG
}

// NewMeter returns a meter sampling at rate Hz with the given power model.
func NewMeter(power PowerModel, rate float64, seed uint64) (*Meter, error) {
	if err := power.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("sample rate %v: %w", rate, ErrTrace)
	}
	return &Meter{power: power, rate: rate, rng: mat.NewRNG(seed)}, nil
}

// Record samples a schedule of phase intervals into a trace. Intervals must
// be contiguous and ascending; gaps are treated as waiting.
func (m *Meter) Record(schedule []Interval) (*Trace, error) {
	if len(schedule) == 0 {
		return nil, fmt.Errorf("empty schedule: %w", ErrTrace)
	}
	sorted := make([]Interval, len(schedule))
	copy(sorted, schedule)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, iv := range sorted {
		if iv.End < iv.Start {
			return nil, fmt.Errorf("interval %d ends before it starts: %w", i, ErrTrace)
		}
	}
	end := sorted[len(sorted)-1].End
	step := time.Duration(float64(time.Second) / m.rate)
	if step <= 0 {
		return nil, fmt.Errorf("sample rate %v too high: %w", m.rate, ErrTrace)
	}
	trace := &Trace{SampleRate: m.rate}
	cursor := 0
	for ts := time.Duration(0); ts <= end; ts += step {
		// Interval ends are inclusive so the sample landing exactly on a
		// boundary reads the finishing phase, matching how a real meter's
		// last in-phase sample behaves.
		for cursor < len(sorted) && sorted[cursor].End < ts {
			cursor++
		}
		watts := m.power.Waiting // gaps read as idle
		if cursor < len(sorted) && sorted[cursor].Start <= ts {
			watts = m.power.Power(sorted[cursor].Phase)
		}
		if m.power.NoiseStdDev > 0 {
			watts += m.rng.NormScaled(0, m.power.NoiseStdDev)
			if watts < 0 {
				watts = 0
			}
		}
		trace.Samples = append(trace.Samples, Sample{T: ts, Watts: watts})
	}
	return trace, nil
}

// RoundSchedule builds the per-round phase schedule of one edge server
// (waiting → download → train → upload, repeated rounds times), the pattern
// Fig. 3 shows for two rounds.
func RoundSchedule(tm TimeModel, epochs, samples, rounds int) []Interval {
	var out []Interval
	var cursor time.Duration
	for r := 0; r < rounds; r++ {
		for _, p := range Phases {
			d := tm.PhaseDuration(p, epochs, samples)
			out = append(out, Interval{Phase: p, Start: cursor, End: cursor + d})
			cursor += d
		}
	}
	return out
}
