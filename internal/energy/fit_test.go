package energy

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestFitCoefficientsRecoversPaperValues(t *testing.T) {
	// Fitting the paper's own Table I must reproduce the published
	// c0 = 7.79e-5 and c1 = 3.34e-3 (Section VI-B) within a few percent.
	c0, c1, err := FitCoefficients(PaperTableI())
	if err != nil {
		t.Fatalf("FitCoefficients: %v", err)
	}
	if math.Abs(c0-7.79e-5)/7.79e-5 > 0.05 {
		t.Errorf("c0 = %.4g, want within 5%% of 7.79e-5", c0)
	}
	if math.Abs(c1-3.34e-3)/3.34e-3 > 0.25 {
		// The intercept is small relative to the slope term, so the fit is
		// looser here — the paper's own fit carries the same sensitivity.
		t.Errorf("c1 = %.4g, want within 25%% of 3.34e-3", c1)
	}
}

func TestFitDurationsRecoversTimeModel(t *testing.T) {
	tm := DefaultPiTimeModel()
	var obs []TrainObservation
	for _, e := range []int{10, 20, 40} {
		for _, n := range []int{100, 500, 1000, 2000} {
			obs = append(obs, TrainObservation{
				Epochs:   e,
				Samples:  n,
				Duration: tm.TrainDuration(e, n),
			})
		}
	}
	perSample, perEpoch, err := FitDurations(obs)
	if err != nil {
		t.Fatalf("FitDurations: %v", err)
	}
	if math.Abs(perSample.Seconds()-tm.TrainPerSample.Seconds())/tm.TrainPerSample.Seconds() > 0.01 {
		t.Errorf("perSample = %v, want %v", perSample, tm.TrainPerSample)
	}
	if math.Abs(perEpoch.Seconds()-tm.TrainPerEpoch.Seconds())/tm.TrainPerEpoch.Seconds() > 0.01 {
		t.Errorf("perEpoch = %v, want %v", perEpoch, tm.TrainPerEpoch)
	}
}

func TestFitRejectsDegenerateInput(t *testing.T) {
	if _, _, err := FitCoefficients(nil); !errors.Is(err, ErrFit) {
		t.Errorf("no observations = %v, want ErrFit", err)
	}
	bad := []TrainObservation{{Epochs: 0, Samples: 10}, {Epochs: 1, Samples: 10}}
	if _, _, err := FitCoefficients(bad); !errors.Is(err, ErrFit) {
		t.Errorf("zero epochs = %v, want ErrFit", err)
	}
	if _, _, err := FitDurations(bad); !errors.Is(err, ErrFit) {
		t.Errorf("FitDurations zero epochs = %v, want ErrFit", err)
	}
}

func TestMeasureTrainingClosesTheLoop(t *testing.T) {
	// Measure synthetic runs with the meter, fit, and compare against the
	// device model's analytic coefficients — the full calibration loop.
	dm := DefaultPiDeviceModel()
	dm.Power.NoiseStdDev = 0.02
	meter, err := NewMeter(dm.Power, 1000, 5)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	var obs []TrainObservation
	for _, e := range []int{10, 20, 40} {
		for _, n := range []int{100, 500, 1000, 2000} {
			o, err := MeasureTraining(meter, dm.Time, e, n)
			if err != nil {
				t.Fatalf("MeasureTraining: %v", err)
			}
			obs = append(obs, o)
		}
	}
	c0, c1, err := FitCoefficients(obs)
	if err != nil {
		t.Fatalf("FitCoefficients: %v", err)
	}
	wantC0, wantC1 := dm.Coefficients()
	if math.Abs(c0-wantC0)/wantC0 > 0.05 {
		t.Errorf("measured c0 = %.4g, want ≈%.4g", c0, wantC0)
	}
	if math.Abs(c1-wantC1)/wantC1 > 0.30 {
		t.Errorf("measured c1 = %.4g, want ≈%.4g", c1, wantC1)
	}
}

func TestPaperTableIShape(t *testing.T) {
	rows := PaperTableI()
	if len(rows) != 12 {
		t.Fatalf("Table I has %d rows, want 12", len(rows))
	}
	// Spot-check the corners against the published table.
	first, last := rows[0], rows[11]
	if first.Epochs != 10 || first.Samples != 100 || first.Duration != time.Duration(0.0197*float64(time.Second)) {
		t.Errorf("first row = %+v", first)
	}
	if last.Epochs != 40 || last.Samples != 2000 {
		t.Errorf("last row = %+v", last)
	}
	// Energy consistency: joules = 5.553 × seconds.
	for _, r := range rows {
		if math.Abs(r.Joules-5.553*r.Duration.Seconds()) > 1e-9 {
			t.Errorf("row %+v joules inconsistent", r)
		}
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Add(PhaseTrain, 2)
	l.Add(PhaseTrain, 3)
	l.Add(PhaseUpload, 1)
	l.AddRound()
	if l.Phase(PhaseTrain) != 5 {
		t.Errorf("train = %v, want 5", l.Phase(PhaseTrain))
	}
	if l.Total() != 6 {
		t.Errorf("total = %v, want 6", l.Total())
	}
	if l.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", l.Rounds())
	}

	other := NewLedger()
	other.Add(PhaseWaiting, 4)
	other.AddRound()
	l.Merge(other)
	if l.Total() != 10 || l.Rounds() != 2 {
		t.Errorf("after merge: total=%v rounds=%d", l.Total(), l.Rounds())
	}
	if l.String() == "" {
		t.Error("String must render")
	}
}

// TestLedgerTotalDeterministic pins that Total sums phases in a fixed order.
// The phase values are chosen so that float addition order changes the last
// bits; ranging over the map (whose iteration order is randomized per range)
// would make repeated Total calls on one ledger disagree — the bug that made
// same-config simulations differ in their energy totals.
func TestLedgerTotalDeterministic(t *testing.T) {
	l := NewLedger()
	l.Add(PhaseWaiting, 1e16)
	l.Add(PhaseDownload, 1.1)
	l.Add(PhaseTrain, -1e16)
	l.Add(PhaseUpload, 0.3)
	want := ((l.Phase(PhaseWaiting) + l.Phase(PhaseDownload)) + l.Phase(PhaseTrain)) + l.Phase(PhaseUpload)
	for i := 0; i < 100; i++ {
		if got := l.Total(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("call %d: Total = %x, want canonical-order sum %x",
				i, math.Float64bits(got), math.Float64bits(want))
		}
	}
	// Out-of-enum phases still count, after the canonical four.
	l.Add(Phase(99), 2.5)
	l.Add(Phase(42), 1.5)
	want = ((want + l.Phase(Phase(42))) + l.Phase(Phase(99)))
	for i := 0; i < 100; i++ {
		if got := l.Total(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("call %d with extras: Total = %v, want %v", i, got, want)
		}
	}
}
