package energy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func noiselessMeter(t *testing.T) *Meter {
	t.Helper()
	pm := DefaultPiPowerModel()
	pm.NoiseStdDev = 0
	m, err := NewMeter(pm, 1000, 1)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	return m
}

func TestNewMeterValidation(t *testing.T) {
	pm := DefaultPiPowerModel()
	if _, err := NewMeter(pm, 0, 1); !errors.Is(err, ErrTrace) {
		t.Errorf("zero rate = %v, want ErrTrace", err)
	}
	pm.Train = -1
	if _, err := NewMeter(pm, 1000, 1); err == nil {
		t.Error("invalid power model must be rejected")
	}
}

func TestRecordConstantPhase(t *testing.T) {
	m := noiselessMeter(t)
	trace, err := m.Record([]Interval{{Phase: PhaseTrain, Start: 0, End: time.Second}})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := trace.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 1 second at 1 kHz → 1001 samples including both endpoints.
	if len(trace.Samples) != 1001 {
		t.Errorf("samples = %d, want 1001", len(trace.Samples))
	}
	// Energy of 5.553 W for 1 s is 5.553 J.
	if got := trace.Energy(); math.Abs(got-5.553) > 1e-9 {
		t.Errorf("Energy = %v, want 5.553", got)
	}
	if got := trace.MeanPower(); math.Abs(got-5.553) > 1e-9 {
		t.Errorf("MeanPower = %v, want 5.553", got)
	}
}

func TestRecordEmptySchedule(t *testing.T) {
	m := noiselessMeter(t)
	if _, err := m.Record(nil); !errors.Is(err, ErrTrace) {
		t.Errorf("empty schedule = %v, want ErrTrace", err)
	}
}

func TestRecordRejectsInvertedInterval(t *testing.T) {
	m := noiselessMeter(t)
	bad := []Interval{{Phase: PhaseTrain, Start: time.Second, End: 0}}
	if _, err := m.Record(bad); !errors.Is(err, ErrTrace) {
		t.Errorf("inverted interval = %v, want ErrTrace", err)
	}
}

func TestEnergyBetweenSubInterval(t *testing.T) {
	m := noiselessMeter(t)
	trace, err := m.Record([]Interval{{Phase: PhaseWaiting, Start: 0, End: 2 * time.Second}})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	// Half the window → half the energy (3.6 W × 1 s).
	got := trace.EnergyBetween(500*time.Millisecond, 1500*time.Millisecond)
	if math.Abs(got-3.6) > 1e-9 {
		t.Errorf("EnergyBetween = %v, want 3.6", got)
	}
	// Degenerate and inverted windows.
	if trace.EnergyBetween(time.Second, time.Second) != 0 {
		t.Error("zero-width window must integrate to 0")
	}
	if trace.EnergyBetween(2*time.Second, time.Second) != 0 {
		t.Error("inverted window must integrate to 0")
	}
}

func TestEnergyAdditivity(t *testing.T) {
	m := noiselessMeter(t)
	sched := RoundSchedule(DefaultPiTimeModel(), 10, 500, 1)
	trace, err := m.Record(sched)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	mid := trace.Duration() / 2
	left := trace.EnergyBetween(0, mid)
	right := trace.EnergyBetween(mid, trace.Duration())
	if math.Abs(left+right-trace.Energy()) > 1e-9 {
		t.Errorf("split integration %v + %v != total %v", left, right, trace.Energy())
	}
}

func TestRoundScheduleStructure(t *testing.T) {
	tm := DefaultPiTimeModel()
	sched := RoundSchedule(tm, 20, 1000, 2)
	if len(sched) != 8 {
		t.Fatalf("schedule has %d intervals, want 8 (4 phases × 2 rounds)", len(sched))
	}
	// Contiguity.
	for i := 1; i < len(sched); i++ {
		if sched[i].Start != sched[i-1].End {
			t.Fatalf("gap between interval %d and %d", i-1, i)
		}
	}
	// Phase cycle.
	for i, iv := range sched {
		if iv.Phase != Phases[i%4] {
			t.Errorf("interval %d phase = %v, want %v", i, iv.Phase, Phases[i%4])
		}
	}
	// Training interval length matches the law.
	if got := sched[2].Duration(); got != tm.TrainDuration(20, 1000) {
		t.Errorf("train interval = %v, want %v", got, tm.TrainDuration(20, 1000))
	}
}

func TestRecordedRoundEnergyMatchesDeviceModel(t *testing.T) {
	// Integrating a noiseless recorded round must equal the analytic
	// DeviceModel.RoundEnergy within discretization error.
	dm := DefaultPiDeviceModel()
	dm.Power.NoiseStdDev = 0
	m, err := NewMeter(dm.Power, 10000, 1)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	sched := RoundSchedule(dm.Time, 10, 1000, 1)
	trace, err := m.Record(sched)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	got := trace.Energy()
	want := dm.RoundEnergy(10, 1000)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("trace energy %v vs analytic %v (>1%% apart)", got, want)
	}
}

func TestNoisyTraceMeanConverges(t *testing.T) {
	pm := DefaultPiPowerModel() // 0.05 W noise
	m, err := NewMeter(pm, 1000, 42)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	trace, err := m.Record([]Interval{{Phase: PhaseTrain, Start: 0, End: 5 * time.Second}})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if got := trace.MeanPower(); math.Abs(got-5.553) > 0.01 {
		t.Errorf("noisy mean power = %v, want ≈5.553", got)
	}
}

// TestMeanPowerOffsetStart is the regression pin for the span bug: a trace
// whose first sample sits at T0 > 0 (Validate accepts it) must average over
// the covered span (last − first), not the last-sample offset — dividing by
// Duration() reported a constant 5 W capture that starts at 1 s as 2.5 W.
func TestMeanPowerOffsetStart(t *testing.T) {
	offset := &Trace{SampleRate: 1000, Samples: []Sample{
		{T: time.Second, Watts: 5},
		{T: 1500 * time.Millisecond, Watts: 5},
		{T: 2 * time.Second, Watts: 5},
	}}
	if err := offset.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := offset.MeanPower(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean power of constant 5 W trace starting at 1s = %v, want 5", got)
	}
	// A trace anchored at t=0 is unchanged by the fix.
	anchored := &Trace{SampleRate: 1000, Samples: []Sample{
		{T: 0, Watts: 5}, {T: time.Second, Watts: 5},
	}}
	if got := anchored.MeanPower(); math.Abs(got-5) > 1e-12 {
		t.Errorf("anchored mean power = %v, want 5", got)
	}
	// Degenerate spans report 0 instead of dividing by zero.
	single := &Trace{SampleRate: 1000, Samples: []Sample{{T: time.Second, Watts: 5}}}
	if got := single.MeanPower(); got != 0 {
		t.Errorf("single-sample mean power = %v, want 0", got)
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{SampleRate: 1000, Samples: []Sample{{0, 1}, {time.Millisecond, 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	outOfOrder := &Trace{SampleRate: 1000, Samples: []Sample{{time.Millisecond, 1}, {0, 2}}}
	if err := outOfOrder.Validate(); !errors.Is(err, ErrTrace) {
		t.Errorf("out of order = %v, want ErrTrace", err)
	}
	negPower := &Trace{SampleRate: 1000, Samples: []Sample{{0, -1}}}
	if err := negPower.Validate(); !errors.Is(err, ErrTrace) {
		t.Errorf("negative power = %v, want ErrTrace", err)
	}
	badRate := &Trace{SampleRate: 0}
	if err := badRate.Validate(); !errors.Is(err, ErrTrace) {
		t.Errorf("bad rate = %v, want ErrTrace", err)
	}
}

func TestEmptyTraceDegenerates(t *testing.T) {
	tr := &Trace{SampleRate: 1000}
	if tr.Duration() != 0 || tr.Energy() != 0 || tr.MeanPower() != 0 {
		t.Error("empty trace must report zeros")
	}
}

// Property: trace energy is non-negative and bounded by maxPower × duration.
func TestEnergyBoundsProperty(t *testing.T) {
	f := func(seed uint64, epochsRaw, samplesRaw uint8) bool {
		epochs := 1 + int(epochsRaw%40)
		samples := 10 + int(samplesRaw)*10
		pm := DefaultPiPowerModel()
		m, err := NewMeter(pm, 200, seed)
		if err != nil {
			return false
		}
		sched := RoundSchedule(DefaultPiTimeModel(), epochs, samples, 1)
		trace, err := m.Record(sched)
		if err != nil {
			return false
		}
		e := trace.Energy()
		maxP := pm.Train + 5*pm.NoiseStdDev
		return e >= 0 && e <= maxP*trace.Duration().Seconds()*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeanPowerBetween(t *testing.T) {
	m := noiselessMeter(t)
	// One second of waiting followed by one second of training.
	trace, err := m.Record([]Interval{
		{Phase: PhaseWaiting, Start: 0, End: time.Second},
		{Phase: PhaseTrain, Start: time.Second, End: 2 * time.Second},
	})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if got := trace.MeanPowerBetween(0, time.Second); math.Abs(got-3.6) > 0.01 {
		t.Errorf("waiting window mean = %v, want ≈3.6", got)
	}
	if got := trace.MeanPowerBetween(time.Second+time.Millisecond, 2*time.Second); math.Abs(got-5.553) > 0.01 {
		t.Errorf("training window mean = %v, want ≈5.553", got)
	}
	if trace.MeanPowerBetween(time.Second, time.Second) != 0 {
		t.Error("zero-width window must report 0")
	}
}

func TestEnergyBetweenInterpolatesOffSampleBoundaries(t *testing.T) {
	// Windows that start and end between samples exercise the linear
	// interpolation path.
	trace := &Trace{SampleRate: 10, Samples: []Sample{
		{T: 0, Watts: 0},
		{T: time.Second, Watts: 10},
	}}
	// ∫ over [0.25s, 0.75s] of the ramp P(t)=10t is [5t²] = 5(0.5625−0.0625) = 2.5.
	got := trace.EnergyBetween(250*time.Millisecond, 750*time.Millisecond)
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("interpolated energy = %v, want 2.5", got)
	}
}
