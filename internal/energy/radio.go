package energy

import (
	"errors"
	"fmt"
	"time"
)

// Bytes→joules pricing. The analytic TimeModel charges upload/download as
// fixed per-round durations — an estimate made before a single byte moves.
// With the networked wire path counting actual frame bytes per round
// (fl.RoundRecord.DownlinkBytes/UplinkBytes), transfer energy can instead be
// priced from the measured volume: a RadioModel holds the effective link
// rates and radio-phase power draws, so e^U = P_up · bytes·8/rate — the
// quantity both Zeng et al. and Xiao et al. treat as the first-order energy
// knob, and the number that actually moves when the protocol quantizes
// updates or sends residual downlinks.

// ErrRadioModel is returned (wrapped) for invalid radio-model parameters.
var ErrRadioModel = errors.New("energy: invalid radio model")

// RadioModel prices bytes on the air: effective link rates in each
// direction plus the device's power draw while the radio is active in that
// direction. Energy is power × airtime with airtime = bytes·8/rate — the
// linear-in-bytes law the paper's upload-energy term e^U assumes.
type RadioModel struct {
	// UplinkBitsPerSec and DownlinkBitsPerSec are the effective (goodput)
	// link rates in bits per second.
	UplinkBitsPerSec, DownlinkBitsPerSec float64
	// TxPowerWatts and RxPowerWatts are the device power draws while
	// uploading and downloading, in watts.
	TxPowerWatts, RxPowerWatts float64
}

// DefaultWiFiRadioModel returns rates and powers consistent with the
// paper's Raspberry Pi prototype on shared WiFi: the powers are the
// measured upload (5.015 W) and download (4.286 W) phase draws, and the
// rates are chosen so the default ~63 kB logistic-regression model
// reproduces the analytic DefaultPiTimeModel's 52 ms upload and 60 ms
// download. Pricing measured bytes with this model therefore agrees with
// the analytic ledger on the seed protocol and diverges exactly where the
// wire path actually sends fewer bytes.
func DefaultWiFiRadioModel() RadioModel {
	return RadioModel{
		UplinkBitsPerSec:   63000 * 8 / 0.052, // ≈ 9.69 Mbit/s
		DownlinkBitsPerSec: 63000 * 8 / 0.060, // = 8.40 Mbit/s
		TxPowerWatts:       5.015,
		RxPowerWatts:       4.286,
	}
}

// Validate checks rates and powers are positive.
func (rm RadioModel) Validate() error {
	if rm.UplinkBitsPerSec <= 0 || rm.DownlinkBitsPerSec <= 0 {
		return fmt.Errorf("link rates %v/%v bit/s: %w",
			rm.UplinkBitsPerSec, rm.DownlinkBitsPerSec, ErrRadioModel)
	}
	if rm.TxPowerWatts <= 0 || rm.RxPowerWatts <= 0 {
		return fmt.Errorf("radio powers %v/%v W: %w",
			rm.TxPowerWatts, rm.RxPowerWatts, ErrRadioModel)
	}
	return nil
}

// UploadTime returns the airtime to upload the given bytes.
func (rm RadioModel) UploadTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / rm.UplinkBitsPerSec * float64(time.Second))
}

// DownloadTime returns the airtime to download the given bytes.
func (rm RadioModel) DownloadTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / rm.DownlinkBitsPerSec * float64(time.Second))
}

// UploadEnergy returns the joules to upload the given bytes:
// P_tx · bytes·8/rate.
func (rm RadioModel) UploadEnergy(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return rm.TxPowerWatts * float64(bytes) * 8 / rm.UplinkBitsPerSec
}

// DownloadEnergy returns the joules to download the given bytes.
func (rm RadioModel) DownloadEnergy(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return rm.RxPowerWatts * float64(bytes) * 8 / rm.DownlinkBitsPerSec
}
