package energy

import (
	"errors"
	"math"
	"testing"
	"time"

	"eefei/internal/fl"
)

func TestRadioModelValidate(t *testing.T) {
	good := DefaultWiFiRadioModel()
	if err := good.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []RadioModel{
		{UplinkBitsPerSec: 0, DownlinkBitsPerSec: 1e6, TxPowerWatts: 1, RxPowerWatts: 1},
		{UplinkBitsPerSec: 1e6, DownlinkBitsPerSec: -1, TxPowerWatts: 1, RxPowerWatts: 1},
		{UplinkBitsPerSec: 1e6, DownlinkBitsPerSec: 1e6, TxPowerWatts: 0, RxPowerWatts: 1},
		{UplinkBitsPerSec: 1e6, DownlinkBitsPerSec: 1e6, TxPowerWatts: 1, RxPowerWatts: -2},
	}
	for i, rm := range bad {
		if err := rm.Validate(); !errors.Is(err, ErrRadioModel) {
			t.Errorf("case %d: want ErrRadioModel, got %v", i, err)
		}
	}
}

func TestRadioModelEnergyLinearInBytes(t *testing.T) {
	rm := RadioModel{
		UplinkBitsPerSec:   8e6,
		DownlinkBitsPerSec: 4e6,
		TxPowerWatts:       5,
		RxPowerWatts:       4,
	}
	// 1e6 bytes at 8 Mbit/s is exactly 1 s of airtime at 5 W.
	if got := rm.UploadEnergy(1e6); math.Abs(got-5) > 1e-9 {
		t.Errorf("UploadEnergy(1e6) = %v, want 5", got)
	}
	// 1e6 bytes at 4 Mbit/s is 2 s at 4 W.
	if got := rm.DownloadEnergy(1e6); math.Abs(got-8) > 1e-9 {
		t.Errorf("DownloadEnergy(1e6) = %v, want 8", got)
	}
	if got := rm.UploadEnergy(2e6); math.Abs(got-2*rm.UploadEnergy(1e6)) > 1e-9 {
		t.Errorf("upload energy not linear: %v", got)
	}
	for _, b := range []int64{0, -1} {
		if rm.UploadEnergy(b) != 0 || rm.DownloadEnergy(b) != 0 {
			t.Errorf("bytes=%d: want zero energy", b)
		}
	}
	if got, want := rm.UploadTime(1e6), time.Second; got != want {
		t.Errorf("UploadTime(1e6) = %v, want %v", got, want)
	}
	if got, want := rm.DownloadTime(1e6), 2*time.Second; got != want {
		t.Errorf("DownloadTime(1e6) = %v, want %v", got, want)
	}
}

// TestDefaultWiFiRadioModelMatchesPiTimeModel pins the calibration promise of
// DefaultWiFiRadioModel: pricing the canonical ~63 kB model transfer
// reproduces the analytic DefaultPiTimeModel's upload/download durations, so
// byte-priced ledgers agree with analytic ones on the seed protocol.
func TestDefaultWiFiRadioModelMatchesPiTimeModel(t *testing.T) {
	rm := DefaultWiFiRadioModel()
	tm := DefaultPiTimeModel()
	const modelBytes = 63000
	if got, want := rm.UploadTime(modelBytes), tm.Upload; absDur(got-want) > time.Millisecond {
		t.Errorf("UploadTime(%d) = %v, want ~%v", int64(modelBytes), got, want)
	}
	if got, want := rm.DownloadTime(modelBytes), tm.Download; absDur(got-want) > time.Millisecond {
		t.Errorf("DownloadTime(%d) = %v, want ~%v", int64(modelBytes), got, want)
	}
	pm := DefaultPiPowerModel()
	wantUp := pm.Energy(PhaseUpload, tm.Upload)
	if got := rm.UploadEnergy(modelBytes); math.Abs(got-wantUp) > 0.01 {
		t.Errorf("UploadEnergy(%d) = %v, want ~%v (analytic)", int64(modelBytes), got, wantUp)
	}
}

// TestCalibratorRadioPricing checks WithRadioModel swaps the upload/download
// pricing to measured bytes (split across the round's workers) while leaving
// the other phases and byte-less rounds on duration pricing.
func TestCalibratorRadioPricing(t *testing.T) {
	rm := RadioModel{
		UplinkBitsPerSec:   8e6,
		DownlinkBitsPerSec: 8e6,
		TxPowerWatts:       5,
		RxPowerWatts:       4,
	}
	pm := DefaultPiPowerModel()
	cal, err := NewCalibrator(pm, 1, 10, WithRadioModel(rm))
	if err != nil {
		t.Fatal(err)
	}
	s := fl.RoundStats{
		Round:         0,
		Select:        10 * time.Millisecond,
		Train:         20 * time.Millisecond,
		Aggregate:     30 * time.Millisecond, // maps to upload
		Evaluate:      40 * time.Millisecond, // maps to download
		Total:         100 * time.Millisecond,
		Workers:       2,
		UplinkBytes:   4e6, // 2e6 per worker → 2 s airtime at 8 Mbit/s → 10 J
		DownlinkBytes: 2e6, // 1e6 per worker → 1 s at 4 W → 4 J
	}
	cal.ObserveRound(s)
	led := cal.Ledger()
	if got := led.Phase(PhaseUpload); math.Abs(got-10) > 1e-9 {
		t.Errorf("upload = %v J, want 10 (byte-priced)", got)
	}
	if got := led.Phase(PhaseDownload); math.Abs(got-4) > 1e-9 {
		t.Errorf("download = %v J, want 4 (byte-priced)", got)
	}
	if got, want := led.Phase(PhaseTrain), pm.Energy(PhaseTrain, s.Train); math.Abs(got-want) > 1e-9 {
		t.Errorf("train = %v J, want %v (duration-priced)", got, want)
	}

	// A record with no byte telemetry must fall back to duration pricing.
	cal2, err := NewCalibrator(pm, 1, 10, WithRadioModel(rm))
	if err != nil {
		t.Fatal(err)
	}
	s2 := s
	s2.UplinkBytes, s2.DownlinkBytes = 0, 0
	cal2.ObserveRound(s2)
	if got, want := cal2.Ledger().Phase(PhaseUpload), pm.Energy(PhaseUpload, s.Aggregate); math.Abs(got-want) > 1e-9 {
		t.Errorf("byte-less upload = %v J, want %v (duration fallback)", got, want)
	}
}

// TestCalibratorPricesAttemptedBytes checks that when a round carries datagram
// attempt counters, the radio phases are priced from attempted bytes — every
// transmission the radio made, retransmissions included — not from the frame
// bytes the application saw. This is the measured side of Eq. 4's ρ/p
// inflation: at success probability p, attempted ≈ delivered/p, and the ledger
// must charge for the attempts.
func TestCalibratorPricesAttemptedBytes(t *testing.T) {
	rm := RadioModel{
		UplinkBitsPerSec:   8e6,
		DownlinkBitsPerSec: 8e6,
		TxPowerWatts:       5,
		RxPowerWatts:       4,
	}
	cal, err := NewCalibrator(DefaultPiPowerModel(), 1, 10, WithRadioModel(rm))
	if err != nil {
		t.Fatal(err)
	}
	s := fl.RoundStats{
		Round:     0,
		Aggregate: 30 * time.Millisecond, // maps to upload
		Evaluate:  40 * time.Millisecond, // maps to download
		Total:     70 * time.Millisecond,
		Workers:   2,
		// Frame bytes as delivered by the transport...
		UplinkBytes:   4e6,
		DownlinkBytes: 2e6,
		// ...but the radio attempted twice as many (p = 0.5): these must win.
		UplinkAttemptBytes:   8e6, // 4e6 per worker → 4 s at 5 W → 20 J
		DownlinkAttemptBytes: 4e6, // 2e6 per worker → 2 s at 4 W → 8 J
	}
	cal.ObserveRound(s)
	led := cal.Ledger()
	if got := led.Phase(PhaseUpload); math.Abs(got-20) > 1e-9 {
		t.Errorf("upload = %v J, want 20 (attempted-byte-priced)", got)
	}
	if got := led.Phase(PhaseDownload); math.Abs(got-8) > 1e-9 {
		t.Errorf("download = %v J, want 8 (attempted-byte-priced)", got)
	}
}

func TestNewCalibratorRejectsBadRadioModel(t *testing.T) {
	_, err := NewCalibrator(DefaultPiPowerModel(), 1, 10,
		WithRadioModel(RadioModel{}))
	if !errors.Is(err, ErrRadioModel) {
		t.Fatalf("want ErrRadioModel, got %v", err)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
