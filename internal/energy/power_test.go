package energy

import (
	"math"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseWaiting:  "waiting",
		PhaseDownload: "download",
		PhaseTrain:    "train",
		PhaseUpload:   "upload",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase must still print")
	}
}

func TestDefaultPiPowerModelMatchesPaper(t *testing.T) {
	pm := DefaultPiPowerModel()
	if pm.Waiting != 3.6 || pm.Download != 4.286 || pm.Train != 5.553 || pm.Upload != 5.015 {
		t.Errorf("default powers %+v do not match the paper's Section VI-B", pm)
	}
	if err := pm.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPowerModelValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*PowerModel)
		wantErr bool
	}{
		{"default", func(*PowerModel) {}, false},
		{"zero waiting", func(pm *PowerModel) { pm.Waiting = 0 }, true},
		{"negative train", func(pm *PowerModel) { pm.Train = -1 }, true},
		{"negative noise", func(pm *PowerModel) { pm.NoiseStdDev = -0.1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pm := DefaultPiPowerModel()
			tt.mutate(&pm)
			if err := pm.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPowerAndEnergy(t *testing.T) {
	pm := DefaultPiPowerModel()
	if pm.Power(PhaseTrain) != 5.553 {
		t.Errorf("Power(train) = %v", pm.Power(PhaseTrain))
	}
	if pm.Power(Phase(0)) != 0 {
		t.Error("unknown phase power must be 0")
	}
	j := pm.Energy(PhaseTrain, 2*time.Second)
	if math.Abs(j-11.106) > 1e-9 {
		t.Errorf("Energy = %v, want 11.106", j)
	}
}

func TestTrainDurationLinearLaw(t *testing.T) {
	tm := DefaultPiTimeModel()
	// Doubling samples roughly doubles per-epoch time minus overhead;
	// doubling epochs exactly doubles total time.
	d1 := tm.TrainDuration(10, 1000)
	d2 := tm.TrainDuration(20, 1000)
	if d2 != 2*d1 {
		t.Errorf("doubling E: %v -> %v, want exact doubling", d1, d2)
	}
	dSmall := tm.TrainDuration(10, 100)
	if dSmall >= d1 {
		t.Error("fewer samples must take less time")
	}
	if tm.TrainDuration(0, 100) != 0 || tm.TrainDuration(10, 0) != 10*tm.TrainPerEpoch {
		t.Error("degenerate inputs mishandled")
	}
}

func TestDefaultTimeModelReproducesTableI(t *testing.T) {
	// The calibrated defaults must reproduce the paper's Table-I durations
	// within 10% on every row.
	tm := DefaultPiTimeModel()
	for _, row := range PaperTableI() {
		got := tm.TrainDuration(row.Epochs, row.Samples).Seconds()
		want := row.Duration.Seconds()
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("E=%d n=%d: simulated %.4fs vs paper %.4fs (%.1f%% off)",
				row.Epochs, row.Samples, got, want, rel*100)
		}
	}
}

func TestPhaseAndRoundDuration(t *testing.T) {
	tm := DefaultPiTimeModel()
	var sum time.Duration
	for _, p := range Phases {
		sum += tm.PhaseDuration(p, 10, 500)
	}
	if sum != tm.RoundDuration(10, 500) {
		t.Error("RoundDuration must equal the sum of phases")
	}
	if tm.PhaseDuration(Phase(0), 1, 1) != 0 {
		t.Error("unknown phase duration must be 0")
	}
}

func TestTimeModelValidate(t *testing.T) {
	tm := DefaultPiTimeModel()
	if err := tm.Validate(); err != nil {
		t.Errorf("default Validate: %v", err)
	}
	bad := tm
	bad.Download = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative duration must fail")
	}
	zero := TimeModel{}
	if err := zero.Validate(); err == nil {
		t.Error("zero training time must fail")
	}
}

func TestDeviceModelCoefficientsMatchPaper(t *testing.T) {
	// The headline calibration: c0 ≈ 7.79e-5 and c1 ≈ 3.34e-3 (Section VI-B).
	dm := DefaultPiDeviceModel()
	c0, c1 := dm.Coefficients()
	if math.Abs(c0-7.79e-5)/7.79e-5 > 0.01 {
		t.Errorf("c0 = %.4g, want within 1%% of 7.79e-5", c0)
	}
	if math.Abs(c1-3.34e-3)/3.34e-3 > 0.01 {
		t.Errorf("c1 = %.4g, want within 1%% of 3.34e-3", c1)
	}
}

func TestTrainEnergyEquation5(t *testing.T) {
	// e_k^P(E, n) must equal c0·E·n + c1·E exactly (paper Eq. 5).
	dm := DefaultPiDeviceModel()
	c0, c1 := dm.Coefficients()
	for _, tc := range []struct{ e, n int }{{1, 1}, {10, 100}, {40, 2000}, {100, 3000}} {
		got := dm.TrainEnergy(tc.e, tc.n)
		want := c0*float64(tc.e)*float64(tc.n) + c1*float64(tc.e)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("TrainEnergy(%d,%d) = %v, want %v", tc.e, tc.n, got, want)
		}
	}
}

func TestRoundEnergyComposition(t *testing.T) {
	dm := DefaultPiDeviceModel()
	total := dm.RoundEnergy(10, 500)
	parts := dm.WaitingEnergy() + dm.DownloadEnergy() + dm.TrainEnergy(10, 500) + dm.UploadEnergy()
	if math.Abs(total-parts) > 1e-12 {
		t.Errorf("RoundEnergy = %v, parts sum to %v", total, parts)
	}
	if dm.UploadEnergy() <= 0 || dm.DownloadEnergy() <= 0 {
		t.Error("upload/download energies must be positive")
	}
}

func TestDeviceModelValidate(t *testing.T) {
	dm := DefaultPiDeviceModel()
	if err := dm.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	dm.Power.Train = 0
	if err := dm.Validate(); err == nil {
		t.Error("invalid power half must fail")
	}
}
